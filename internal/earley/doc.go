package earley

import (
	"errors"
	"fmt"

	"ipg/internal/cancel"
	"ipg/internal/forest"
	"ipg/internal/grammar"
)

// Doc is a retained-chart document session: the editor-style workload
// where one token stream is parsed, edited, and reparsed many times.
// It keeps the full Earley chart of its last parse and, on reparse
// after an edit, reuses every item set strictly left of the leftmost
// damaged token verbatim — item set i depends only on tokens[0..i-1]
// and the grammar, so a splice at token k leaves sets 0..k valid and
// only sets k+1.. are re-driven. The resumed chart (and therefore the
// parse result and forest) is identical to a from-scratch parse of the
// edited text.
//
// A Doc is not safe for concurrent use; callers serialize access (the
// registry session layer holds a per-session mutex).
type Doc struct {
	p          *Parser
	buildTrees bool
	tokens     []grammar.Symbol
	w          *Workspace
	prog       *program // compiled view the retained chart was built with

	damage int // leftmost damaged token since last reparse; -1 = clean
	valid  bool
	res    Result

	lastReused, lastRebuilt int
	reparses, fullReparses  uint64
	setsReused, setsRebuilt uint64

	// Retained forest state (buildTrees mode). memo entries whose span
	// ends at or before memoEnd are still valid for the current tokens;
	// stale entries are purged at the next tree build.
	b         *builder
	memoEnd   int32
	root      *forest.Node
	treeValid bool
}

// ErrSplice reports an out-of-range or malformed splice; the document
// is left unchanged.
var ErrSplice = errors.New("earley: splice out of range")

// OpenDoc opens a document session over input (a trailing end marker is
// accepted and dropped). With buildTrees, reparses record completions
// so Tree can rebuild the packed forest incrementally; without, the
// recognition path keeps the Leo memo. The Doc owns its workspace and
// copies input, so the caller's slice may be reused.
func (p *Parser) OpenDoc(input []grammar.Symbol, buildTrees bool) *Doc {
	if n := len(input); n > 0 && input[n-1] == grammar.EOF {
		input = input[:n-1]
	}
	return &Doc{
		p:          p,
		buildTrees: buildTrees,
		tokens:     append([]grammar.Symbol(nil), input...),
		w:          new(Workspace),
		damage:     0,
		memoEnd:    -1,
	}
}

// Len returns the current token count.
func (d *Doc) Len() int { return len(d.tokens) }

// Tokens returns the current token stream (not a copy; do not mutate).
func (d *Doc) Tokens() []grammar.Symbol { return d.tokens }

// Splice replaces tokens[at:at+removed] with insert, recording at as
// damage. The end marker cannot be inserted. A same-length splice on a
// warm document performs no allocation.
func (d *Doc) Splice(at, removed int, insert []grammar.Symbol) error {
	if at < 0 || removed < 0 || at > len(d.tokens) || removed > len(d.tokens)-at {
		return fmt.Errorf("%w: at=%d remove=%d len=%d", ErrSplice, at, removed, len(d.tokens))
	}
	for _, s := range insert {
		if s == grammar.EOF {
			return fmt.Errorf("%w: cannot insert end marker", ErrSplice)
		}
	}
	switch {
	case removed >= len(insert):
		copy(d.tokens[at:], insert)
		copy(d.tokens[at+len(insert):], d.tokens[at+removed:])
		d.tokens = d.tokens[:len(d.tokens)-removed+len(insert)]
	default:
		old := len(d.tokens)
		d.tokens = append(d.tokens, insert[removed:]...)
		copy(d.tokens[at+len(insert):], d.tokens[at+removed:old])
		copy(d.tokens[at:], insert)
	}
	if d.damage < 0 || at < d.damage {
		d.damage = at
	}
	if int32(at) < d.memoEnd {
		d.memoEnd = int32(at)
	}
	return nil
}

// Reparse brings the chart up to date with the current tokens and
// returns the recognition result. With no damage since the last call it
// returns the cached result and expands nothing; after an edit at
// leftmost token k it reuses sets 0..min(k, built-1) and re-drives the
// rest; after a grammar change it reparses from scratch. A warm
// same-length reparse allocates nothing.
func (d *Doc) Reparse() Result {
	res, _ := d.ReparseCancel(nil)
	return res
}

// ReparseCancel is Reparse with a cancellation flag polled at the chart
// drive's per-set checkpoints. An aborted reparse returns the
// *cancel.Error and leaves the document needing a from-scratch drive on
// its next reparse (the retained chart stops mid-set at the abort
// point, so it cannot be resumed).
func (d *Doc) ReparseCancel(fl *cancel.Flag) (Result, error) {
	pr := d.p.program()
	if d.valid && d.prog == pr && d.damage < 0 {
		d.lastReused, d.lastRebuilt = len(d.w.bounds)-1, 0
		return d.res, nil
	}
	start := 0
	if d.valid && d.prog == pr {
		keep := d.damage
		if m := len(d.w.bounds) - 2; keep > m {
			keep = m
		}
		start = keep + 1
	} else if d.prog != pr {
		// Grammar moved: every retained structure (chart, forest memo,
		// hash-consed nodes) refers to the old rule set.
		d.resetForest()
	}
	res, err := d.p.run(pr, d.tokens, d.w, d.buildTrees, start, fl)
	if err != nil {
		d.valid = false
		d.treeValid = false
		return res, err
	}
	d.res = res
	d.prog = pr
	d.valid = true
	d.treeValid = false
	d.damage = -1
	d.lastReused = start
	d.lastRebuilt = len(d.w.bounds) - 1 - start
	d.reparses++
	if start == 0 {
		d.fullReparses++
	}
	d.setsReused += uint64(d.lastReused)
	d.setsRebuilt += uint64(d.lastRebuilt)
	return d.res, nil
}

// Tree reparses if needed and builds the packed forest of the current
// tokens, reusing every memoized forest node whose span lies entirely
// left of all edits since the last build. Only valid on a Doc opened
// with buildTrees.
func (d *Doc) Tree() (Result, error) { return d.TreeCancel(nil) }

// TreeCancel is Tree with a cancellation flag; both the chart drive and
// the forest walk poll it. Memoized forest nodes completed before an
// abort stay valid and are reused by the next build.
func (d *Doc) TreeCancel(fl *cancel.Flag) (Result, error) {
	if !d.buildTrees {
		return Result{}, errors.New("earley: Tree on a recognition-only document")
	}
	res, err := d.ReparseCancel(fl)
	if err != nil {
		return res, err
	}
	if d.treeValid {
		res.Root = d.root
		res.Forest = d.b.f
		return res, nil
	}
	if d.b == nil {
		d.b = &builder{
			f:      forest.NewForest(),
			memo:   map[span]*forest.Node{},
			onPath: map[span]bool{},
		}
	}
	d.b.pr, d.b.w, d.b.input, d.b.fl = d.prog, d.w, d.tokens, fl
	res.Forest = d.b.f
	if !res.Accepted {
		return res, nil
	}
	// Purge memo entries reaching into the damaged region; survivors are
	// reused as-is, so the rebuild touches only spans the edits moved.
	for key := range d.b.memo {
		if key.j > d.memoEnd {
			delete(d.b.memo, key)
		}
	}
	root, err := d.b.build()
	if err != nil {
		return Result{}, err
	}
	d.root = root
	d.treeValid = true
	d.memoEnd = int32(len(d.tokens))
	res.Root = root
	return res, nil
}

// ForestNodes returns the retained forest's node count (0 without
// trees). Incremental rebuilds share prefix nodes but keep superseded
// suffix nodes alive, so a long-lived heavily edited session grows its
// forest; ResetForest reclaims it.
func (d *Doc) ForestNodes() int {
	if d.b == nil {
		return 0
	}
	return d.b.f.NodeCount()
}

// ResetForest drops the retained forest and memo; the next Tree call
// rebuilds from scratch into a fresh forest.
func (d *Doc) ResetForest() { d.resetForest() }

func (d *Doc) resetForest() {
	d.b = nil
	d.root = nil
	d.treeValid = false
	d.memoEnd = -1
}

// DocStats is a point-in-time accounting snapshot of a document
// session's incremental-reuse behavior.
type DocStats struct {
	// Tokens is the current document length; Sets and Items size the
	// retained chart.
	Tokens int
	Sets   int
	Items  int
	// Reparses counts chart drives (FullReparses of which started from
	// set 0); a clean Reparse that returned the cached result counts as
	// neither.
	Reparses     uint64
	FullReparses uint64
	// SetsReused/SetsRebuilt accumulate, over all reparses, how many
	// item sets were kept verbatim vs re-expanded; LastReused and
	// LastRebuilt are the same split for the most recent call.
	SetsReused  uint64
	SetsRebuilt uint64
	LastReused  int
	LastRebuilt int
	// ForestNodes sizes the retained forest (trees mode only).
	ForestNodes int
}

// Stats returns the session's reuse accounting.
func (d *Doc) Stats() DocStats {
	sets := len(d.w.bounds) - 1
	if sets < 0 {
		sets = 0
	}
	return DocStats{
		Tokens:       len(d.tokens),
		Sets:         sets,
		Items:        len(d.w.items),
		Reparses:     d.reparses,
		FullReparses: d.fullReparses,
		SetsReused:   d.setsReused,
		SetsRebuilt:  d.setsRebuilt,
		LastReused:   d.lastReused,
		LastRebuilt:  d.lastRebuilt,
		ForestNodes:  d.ForestNodes(),
	}
}

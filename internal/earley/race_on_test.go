//go:build race

package earley

// raceEnabled reports that the race detector is active; allocation
// assertions are skipped because instrumentation changes sync.Pool
// behavior and allocation counts.
const raceEnabled = true

package earley

import (
	"math/rand"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/forest"
	"ipg/internal/grammar"
)

// docChartEqual asserts the doc's retained chart is byte-identical to
// the chart a from-scratch parse of the same tokens builds.
func docChartEqual(t *testing.T, d *Doc, p *Parser) {
	t.Helper()
	w := new(Workspace)
	pr := p.program()
	p.run(pr, d.tokens, w, d.buildTrees, 0, nil)
	if len(w.items) != len(d.w.items) || len(w.bounds) != len(d.w.bounds) {
		t.Fatalf("chart shape diverged: doc %d items/%d bounds, fresh %d/%d",
			len(d.w.items), len(d.w.bounds), len(w.items), len(w.bounds))
	}
	for i := range w.items {
		if w.items[i] != d.w.items[i] {
			t.Fatalf("item %d diverged: doc %+v, fresh %+v", i, d.w.items[i], w.items[i])
		}
	}
	for i := range w.bounds {
		if w.bounds[i] != d.w.bounds[i] {
			t.Fatalf("bound %d diverged: doc %d, fresh %d", i, d.w.bounds[i], w.bounds[i])
		}
	}
}

// TestDocSpliceMatchesFresh drives random splices through a document
// session and checks every reparse — result, diagnostics, chart and
// rendered forest — against a from-scratch parse of the edited text.
// parenBooleans extends the Fig 4.1(a) booleans with grouping, giving
// edits a nested constituent structure to damage.
func parenBooleans() *grammar.Grammar {
	return grammar.MustParse(`
B ::= "true"
B ::= "false"
B ::= B "or" B
B ::= B "and" B
B ::= "(" B ")"
START ::= B
`)
}

func TestDocSpliceMatchesFresh(t *testing.T) {
	g := parenBooleans()
	p := New(g)
	vocab := []grammar.Symbol{}
	for _, name := range []string{"true", "false", "and", "or", "(", ")"} {
		s, ok := g.Symbols().Lookup(name)
		if !ok {
			t.Fatalf("missing terminal %q", name)
		}
		vocab = append(vocab, s)
	}
	rng := rand.New(rand.NewSource(7))
	d := p.OpenDoc(fixtures.Tokens(g, "true or false and true"), true)
	for step := 0; step < 200; step++ {
		at := rng.Intn(d.Len() + 1)
		remove := 0
		if at < d.Len() {
			remove = rng.Intn(d.Len() - at + 1)
		}
		insert := make([]grammar.Symbol, rng.Intn(4))
		for i := range insert {
			insert[i] = vocab[rng.Intn(len(vocab))]
		}
		if d.Len()-remove+len(insert) > 64 {
			insert = insert[:0]
		}
		if err := d.Splice(at, remove, insert); err != nil {
			t.Fatalf("step %d: splice(%d,%d,%d tokens): %v", step, at, remove, len(insert), err)
		}
		got := d.Reparse()
		want, err := p.Parse(d.Tokens(), &Options{BuildTrees: true})
		if err != nil {
			t.Fatalf("step %d: fresh parse: %v", step, err)
		}
		if got.Accepted != want.Accepted || got.ErrorPos != want.ErrorPos ||
			got.Stats.Items != want.Stats.Items {
			t.Fatalf("step %d (at=%d remove=%d ins=%d): doc %+v, fresh %+v",
				step, at, remove, len(insert), got, want)
		}
		docChartEqual(t, d, p)
		if want.Accepted {
			tree, err := d.Tree()
			if err != nil {
				t.Fatalf("step %d: doc tree: %v", step, err)
			}
			dc, err1 := forest.TreeCount(tree.Root)
			fc, err2 := forest.TreeCount(want.Root)
			if err1 != nil || err2 != nil || dc != fc {
				t.Fatalf("step %d: tree counts %v (%v) vs %v (%v)", step, dc, err1, fc, err2)
			}
			if ds, fs := forest.String(tree.Root, g.Symbols()), forest.String(want.Root, g.Symbols()); ds != fs {
				t.Fatalf("step %d: forests diverge:\ndoc:   %s\nfresh: %s", step, ds, fs)
			}
		}
	}
}

// TestDocPrefixReuseAccounting pins the damage/reuse invariant: after a
// splice at token k, every item set strictly left of the resume point
// is kept verbatim (not re-expanded), and the reuse counters say so.
func TestDocPrefixReuseAccounting(t *testing.T) {
	g := parenBooleans()
	p := New(g)
	toks := fixtures.Tokens(g, "true or false and true or ( false ) and true")
	trueSym, _ := g.Symbols().Lookup("true")
	falseSym, _ := g.Symbols().Lookup("false")

	for k := 0; k < len(toks); k++ {
		d := p.OpenDoc(toks, false)
		d.Reparse()
		prevSets := d.Stats().Sets
		prefix := append([]item(nil), d.w.items[:d.w.bounds[min(k+1, prevSets)]]...)

		repl := trueSym
		if toks[k] == trueSym {
			repl = falseSym
		}
		if err := d.Splice(k, 1, []grammar.Symbol{repl}); err != nil {
			t.Fatal(err)
		}
		d.Reparse()
		st := d.Stats()
		wantReused := min(k, prevSets-1) + 1
		if st.LastReused != wantReused {
			t.Fatalf("k=%d: LastReused = %d, want %d", k, st.LastReused, wantReused)
		}
		if st.LastRebuilt != st.Sets-wantReused {
			t.Fatalf("k=%d: LastRebuilt = %d, want %d", k, st.LastRebuilt, st.Sets-wantReused)
		}
		for i, it := range prefix {
			if d.w.items[i] != it {
				t.Fatalf("k=%d: reused item %d was rewritten: %+v vs %+v", k, i, d.w.items[i], it)
			}
		}
		docChartEqual(t, d, p)
	}
}

// TestDocCleanReparseExpandsNothing: two consecutive reparses with no
// edit in between must not re-expand any set.
func TestDocCleanReparseExpandsNothing(t *testing.T) {
	g := fixtures.Booleans()
	p := New(g)
	d := p.OpenDoc(fixtures.Tokens(g, "true or false and true"), false)
	first := d.Reparse()
	rebuilt := d.Stats().SetsRebuilt
	second := d.Reparse()
	st := d.Stats()
	if st.SetsRebuilt != rebuilt {
		t.Fatalf("clean reparse rebuilt %d sets", st.SetsRebuilt-rebuilt)
	}
	if st.LastRebuilt != 0 || st.LastReused != st.Sets {
		t.Fatalf("clean reparse accounting: LastReused=%d LastRebuilt=%d (sets=%d)",
			st.LastReused, st.LastRebuilt, st.Sets)
	}
	if first.Accepted != second.Accepted || first.Stats != second.Stats {
		t.Fatalf("clean reparse changed the result: %+v vs %+v", first, second)
	}
}

// TestDocEditReparseAllocFree: a warm same-length edit plus reparse on
// a warm session performs no heap allocation.
func TestDocEditReparseAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	g := parenBooleans()
	p := New(g)
	toks := fixtures.Tokens(g, "true or false and true or ( false ) and true")
	trueSym, _ := g.Symbols().Lookup("true")
	falseSym, _ := g.Symbols().Lookup("false")
	d := p.OpenDoc(toks, false)
	d.Reparse()
	at := len(toks) - 1
	repl := [2][]grammar.Symbol{{trueSym}, {falseSym}}
	i := 0
	// Warm both replacement charts before measuring.
	for ; i < 4; i++ {
		if err := d.Splice(at, 1, repl[i%2]); err != nil {
			t.Fatal(err)
		}
		d.Reparse()
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := d.Splice(at, 1, repl[i%2]); err != nil {
			t.Fatal(err)
		}
		if res := d.Reparse(); !res.Accepted {
			t.Fatal("edited document rejected")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("warm 1-token edit reparse: %.1f allocs/op, want 0", allocs)
	}
}

// TestDocGrammarChangeForcesFullReparse: a rule update invalidates the
// retained chart; the next reparse starts from set 0 and reflects the
// new grammar.
func TestDocGrammarChangeForcesFullReparse(t *testing.T) {
	g := grammar.MustParse(`
START ::= E
E ::= E "+" "x" | "x"
`)
	p := New(g)
	d := p.OpenDoc(fixtures.Tokens(g, "x + x"), false)
	if res := d.Reparse(); !res.Accepted {
		t.Fatal("baseline rejected")
	}
	g.Symbols().MustIntern("y", grammar.Terminal)
	mod, err := grammar.Parse(`E ::= "y"`, g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddAll(mod); err != nil {
		t.Fatal(err)
	}
	ySym, _ := g.Symbols().Lookup("y")
	if err := d.Splice(0, 1, []grammar.Symbol{ySym}); err != nil {
		t.Fatal(err)
	}
	full := d.Stats().FullReparses
	if res := d.Reparse(); !res.Accepted {
		t.Fatal("'y + x' rejected after rule update")
	}
	if d.Stats().FullReparses != full+1 {
		t.Fatal("grammar change did not force a full reparse")
	}
	docChartEqual(t, d, p)
}

// TestDocTreePrefixNodesShared: an edit right of a constituent must
// hand back the very same forest node for it (pointer identity), the
// incremental analogue of SPPF sharing.
func TestDocTreePrefixNodesShared(t *testing.T) {
	g := parenBooleans()
	p := New(g)
	toks := fixtures.Tokens(g, "( true or false ) and true or true")
	falseSym, _ := g.Symbols().Lookup("false")
	d := p.OpenDoc(toks, true)
	res, err := d.Tree()
	if err != nil || !res.Accepted {
		t.Fatalf("baseline: %v accepted=%v", err, res.Accepted)
	}
	// The parenthesized group spans tokens [0,5): find its memo node.
	var before *forest.Node
	var key span
	for k, n := range d.b.memo {
		if k.i == 0 && k.j == 5 {
			before, key = n, k
			break
		}
	}
	if before == nil {
		t.Fatal("no memoized node spans the parenthesized prefix")
	}
	if err := d.Splice(len(toks)-1, 1, []grammar.Symbol{falseSym}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Tree(); err != nil {
		t.Fatal(err)
	}
	if after := d.b.memo[key]; after != before {
		t.Fatalf("prefix node rebuilt: %p -> %p", before, after)
	}
}

// TestDocSpliceRejectsBadOffsets pins the validation surface.
func TestDocSpliceRejectsBadOffsets(t *testing.T) {
	g := fixtures.Booleans()
	p := New(g)
	d := p.OpenDoc(fixtures.Tokens(g, "true or false"), false)
	for _, tc := range []struct{ at, remove int }{
		{-1, 0}, {0, -1}, {4, 0}, {0, 4}, {2, 2},
	} {
		if err := d.Splice(tc.at, tc.remove, nil); err == nil {
			t.Errorf("Splice(%d,%d) accepted out-of-range edit", tc.at, tc.remove)
		}
	}
	if err := d.Splice(0, 0, []grammar.Symbol{grammar.EOF}); err == nil {
		t.Error("Splice accepted an end-marker insertion")
	}
	if d.Len() != 3 {
		t.Fatalf("failed splices mutated the document: len=%d", d.Len())
	}
}

package earley

import (
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/forest"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// FuzzEarleyParse differentially fuzzes the overhauled Earley engine
// against the GSS parser on the ambiguous Booleans grammar: byte
// strings map to token streams (including ill-formed ones), and for
// every input the two general CF algorithms must agree on acceptance,
// on the error position shape, and — for accepted inputs — on the
// number of packed derivations. CI runs this for 60s per trigger and
// uploads any crasher as an artifact.
func FuzzEarleyParse(f *testing.F) {
	f.Add("")
	f.Add("\x00")
	f.Add("\x00\x02\x01")
	f.Add("\x00\x02\x01\x03\x00\x02\x00")
	f.Add("\x02\x02\x02")
	f.Add("\x00\x03\x01\x03\x00\x03\x01\x03\x00")

	g := fixtures.Booleans()
	terms := []grammar.Symbol{
		g.Symbols().MustIntern("true", grammar.Terminal),
		g.Symbols().MustIntern("false", grammar.Terminal),
		g.Symbols().MustIntern("or", grammar.Terminal),
		g.Symbols().MustIntern("and", grammar.Terminal),
	}
	auto := lr.New(g)
	auto.GenerateAll()
	p := New(g)

	f.Fuzz(func(t *testing.T, s string) {
		// Cap the token count: ambiguity is Catalan-many in the input
		// length, and the fuzzer's job is shape coverage, not scale.
		if len(s) > 16 {
			s = s[:16]
		}
		toks := make([]grammar.Symbol, 0, len(s))
		for i := 0; i < len(s); i++ {
			toks = append(toks, terms[int(s[i])%len(terms)])
		}

		gRes, err := glr.Parse(auto, toks, &glr.Options{Engine: glr.GSS})
		if err != nil {
			t.Fatalf("glr: %v", err)
		}
		eRes, err := p.Parse(toks, &Options{BuildTrees: true})
		if err != nil {
			t.Fatalf("earley: %v", err)
		}
		if eRes.Accepted != gRes.Accepted {
			t.Fatalf("acceptance diverges: earley=%v glr=%v on %s",
				eRes.Accepted, gRes.Accepted, g.Symbols().NamesOf(toks))
		}
		if !eRes.Accepted {
			if rec := p.Recognize(toks); rec {
				t.Fatalf("recognize/parse diverge on %s", g.Symbols().NamesOf(toks))
			}
			return
		}
		eCount, err1 := forest.TreeCount(eRes.Root)
		gCount, err2 := forest.TreeCount(gRes.Root)
		if err1 != nil || err2 != nil || eCount != gCount {
			t.Fatalf("derivation counts diverge on %s: earley %d (%v), glr %d (%v)",
				g.Symbols().NamesOf(toks), eCount, err1, gCount, err2)
		}
		yield, err := forest.Yield(eRes.Root)
		if err != nil {
			t.Fatalf("yield: %v", err)
		}
		if len(yield) != len(toks) {
			t.Fatalf("yield length %d != input length %d", len(yield), len(toks))
		}
		for i := range yield {
			if yield[i] != toks[i] {
				t.Fatalf("yield diverges from input at %d on %s", i, g.Symbols().NamesOf(toks))
			}
		}
	})
}

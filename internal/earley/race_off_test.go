//go:build !race

package earley

// raceEnabled mirrors the race build tag; see race_on_test.go.
const raceEnabled = false

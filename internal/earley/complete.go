package earley

import "ipg/internal/grammar"

// Cursor is a prefix-completion reader: it maintains the chart of a
// viable prefix and answers "which terminals may come next" by scanning
// the final item set — the grammar-driven answer, no table required.
// Feeding a token extends the chart incrementally through the document
// machinery (every earlier item set is reused verbatim), so advancing
// by one token costs one item set; restoring to an earlier position
// truncates instead of reparsing.
//
// The Leo right-recursion memo only ever short-circuits items whose dot
// is at the end of their rule, so the scannable-terminal scan below is
// unaffected by it.
//
// A Cursor is not safe for concurrent use; the engine layer serializes
// access and guards against grammar changes.
type Cursor struct {
	d *Doc
	// seen is the generation-stamped dedup scratch of Accepts.
	seen []uint32
	gen  uint32
}

// OpenCursor opens a completion cursor at the empty prefix.
func (p *Parser) OpenCursor() *Cursor {
	d := p.OpenDoc(nil, false)
	d.Reparse()
	return &Cursor{d: d}
}

// Pos returns the cursor position (tokens fed so far). Positions double
// as checkpoints: any earlier position can be restored.
func (c *Cursor) Pos() int { return c.d.Len() }

// complete reports whether the chart covers every prefix position with
// a nonempty final set (always true while the viable-prefix invariant
// holds; false only if the grammar derives no sentences at all).
func (c *Cursor) complete() bool {
	n := c.d.Len()
	w := c.d.w
	return len(w.bounds) == n+2 && w.bounds[n+1] > w.bounds[n]
}

// Accepts calls emit once for every terminal that can extend the
// current prefix to a longer viable prefix, plus the end marker when
// the prefix is already a complete sentence.
func (c *Cursor) Accepts(emit func(grammar.Symbol)) {
	d := c.d
	if d.res.Accepted {
		emit(grammar.EOF)
	}
	if !c.complete() {
		return
	}
	pr := d.prog
	if len(c.seen) < pr.numSyms {
		c.seen = make([]uint32, pr.numSyms)
	}
	c.gen++
	if c.gen == 0 {
		clear(c.seen)
		c.gen = 1
	}
	w := d.w
	start, end := w.setSpan(d.Len())
	for j := start; j < end; j++ {
		it := w.items[j]
		r := pr.rules[it.rule]
		if int(it.dot) >= len(r.Rhs) {
			continue
		}
		sym := r.Rhs[it.dot]
		if pr.isNT[sym] || c.seen[sym] == c.gen {
			continue
		}
		c.seen[sym] = c.gen
		emit(sym)
	}
}

// AtEnd reports whether the current prefix is a complete sentence (the
// end marker is acceptable).
func (c *Cursor) AtEnd() bool { return c.d.res.Accepted }

// scannable reports whether some item in the final set has t after its
// dot — the exact condition for prefix·t to remain a viable prefix.
func (c *Cursor) scannable(t grammar.Symbol) bool {
	if !c.complete() {
		return false
	}
	d := c.d
	pr := d.prog
	w := d.w
	start, end := w.setSpan(d.Len())
	for j := start; j < end; j++ {
		it := w.items[j]
		r := pr.rules[it.rule]
		if int(it.dot) < len(r.Rhs) && r.Rhs[it.dot] == t {
			return true
		}
	}
	return false
}

// Feed advances the cursor by one terminal, reporting false — and
// leaving the cursor unchanged — when t cannot extend the prefix. A
// successful feed re-drives exactly one item set.
func (c *Cursor) Feed(t grammar.Symbol) bool {
	if t == grammar.EOF || !c.scannable(t) {
		return false
	}
	n := c.d.Len()
	var one [1]grammar.Symbol
	one[0] = t
	if c.d.Splice(n, 0, one[:]) != nil {
		return false
	}
	c.d.Reparse()
	return true
}

// Restore rewinds the cursor to an earlier position (a value previously
// returned by Pos): the chart is truncated, never reparsed. Reports
// false when pos is out of range.
func (c *Cursor) Restore(pos int) bool {
	n := c.d.Len()
	if pos < 0 || pos > n {
		return false
	}
	if pos == n {
		return true
	}
	if c.d.Splice(pos, n-pos, nil) != nil {
		return false
	}
	c.d.Reparse()
	return true
}

// Stats exposes the underlying chart accounting (sets reused vs rebuilt
// across feeds and restores).
func (c *Cursor) Stats() DocStats { return c.d.Stats() }

package earley

import (
	"fmt"

	"ipg/internal/cancel"
	"ipg/internal/forest"
	"ipg/internal/grammar"
)

// Forest construction from a completed chart. The recognizer (run with
// buildTrees) records every completed constituent as a (lhs, rule, end)
// record on its origin set's list; the builder walks those records top
// down from the START rules, enumerating for each rule application the
// split points its right-hand side admits, memoizing one shared node
// per (symbol, start, end) — the same sharing discipline as an SPPF.
// Rule nodes are hash-consed by the target forest and alternatives are
// packed into ambiguity nodes, so on unambiguous inputs the result is
// node-identical to the tree the LR engines build, and on ambiguous
// inputs derivation counts agree with the GSS engine's packed forest.

// span identifies one derived constituent.
type span struct {
	sym  grammar.Symbol
	i, j int32
}

type builder struct {
	pr    *program
	w     *Workspace
	input []grammar.Symbol
	f     *forest.Forest

	memo   map[span]*forest.Node
	onPath map[span]bool

	// children is the reusable child-tuple stack of the split
	// enumeration (forest.Rule copies tuples, so reuse is safe).
	children []*forest.Node

	// fl is the parse's cancellation flag (nil = never cancels),
	// polled once per constituent so a pathological ambiguous forest
	// walk stays abortable.
	fl *cancel.Flag
}

// buildForest assembles the packed forest of an accepted parse. Like
// the LR engines, the START rule itself is not represented: a unit
// START application unwraps to its right-hand side's node, so all
// engines render identical trees.
func buildForest(pr *program, w *Workspace, input []grammar.Symbol, f *forest.Forest, fl *cancel.Flag) (*forest.Node, error) {
	b := &builder{
		pr: pr, w: w, input: input, f: f,
		memo:   map[span]*forest.Node{},
		onPath: map[span]bool{},
		fl:     fl,
	}
	return b.build()
}

// build walks the completion index from the START rules. The builder's
// memo may carry entries from a previous build of the same document
// prefix (document sessions): any span the caller left in it is trusted
// as-is, which is what makes an incremental tree rebuild touch only
// nodes whose spans intersect the edit.
func (b *builder) build() (*forest.Node, error) {
	pr, w, f := b.pr, b.w, b.f
	n := int32(len(b.input))
	start := pr.g.Start()
	var alts []*forest.Node
	for c := w.compHead[0]; c >= 0; c = w.comps[c].next {
		rec := w.comps[c]
		if rec.lhs != start || rec.end != n {
			continue
		}
		r := pr.rules[rec.rule]
		err := b.enum(rec.rule, 0, 0, n, func(children []*forest.Node) {
			if len(children) == 1 {
				alts = append(alts, children[0])
				return
			}
			alts = append(alts, f.Rule(r, children))
		})
		if err != nil {
			return nil, err
		}
	}
	if len(alts) == 0 {
		return nil, fmt.Errorf("earley: internal: accepted input yields no derivation")
	}
	return f.Ambiguity(alts...), nil
}

// buildSym returns the shared node deriving sym over input[i:j],
// packing every recorded rule application as an alternative.
func (b *builder) buildSym(sym grammar.Symbol, i, j int32) (*forest.Node, error) {
	if b.fl.Hit() {
		return nil, b.fl.Err(int(i), len(b.input), uint64(len(b.memo)))
	}
	key := span{sym, i, j}
	if n, ok := b.memo[key]; ok {
		return n, nil
	}
	if b.onPath[key] {
		// sym derives itself over the same span: infinitely many
		// derivations, no finite forest.
		return nil, ErrCyclic
	}
	b.onPath[key] = true
	defer delete(b.onPath, key)

	var alts []*forest.Node
	for c := b.w.compHead[i]; c >= 0; c = b.w.comps[c].next {
		rec := b.w.comps[c]
		if rec.lhs != sym || rec.end != j {
			continue
		}
		r := b.pr.rules[rec.rule]
		err := b.enum(rec.rule, 0, i, j, func(children []*forest.Node) {
			alts = append(alts, b.f.Rule(r, children))
		})
		if err != nil {
			return nil, err
		}
	}
	if len(alts) == 0 {
		return nil, fmt.Errorf("earley: internal: no derivation for %s over [%d,%d)",
			b.pr.g.Symbols().Name(sym), i, j)
	}
	node := b.f.Ambiguity(alts...)
	b.memo[key] = node
	return node, nil
}

// enum enumerates the child tuples of rule ri spanning input[k:j] with
// the first q children already on the stack, emitting each complete
// tuple. Terminals anchor split points exactly; nonterminal ends come
// from the completion records of the child's origin set, pruned to
// those that leave the remaining right-hand side room to fit.
func (b *builder) enum(ri int32, q int, k, j int32, emit func([]*forest.Node)) error {
	r := b.pr.rules[ri]
	if q == len(r.Rhs) {
		if k == j {
			emit(b.children[len(b.children)-q:])
		}
		return nil
	}
	sym := r.Rhs[q]
	if !b.pr.isNT[sym] {
		if k < j && b.input[k] == sym {
			b.children = append(b.children, b.f.Leaf(sym, int(k)))
			err := b.enum(ri, q+1, k+1, j, emit)
			b.children = b.children[:len(b.children)-1]
			return err
		}
		return nil
	}
	// Distinct end positions for sym starting at k (several rules may
	// complete the same span; each span is built—and memoized—once).
	// The suffix bound keeps the walk on feasible splits only, which is
	// also what makes an on-path revisit of (sym, span) a true cycle.
	suffixMin := b.pr.minSuffix[ri][q+1]
	for c := b.w.compHead[k]; c >= 0; c = b.w.comps[c].next {
		rec := b.w.comps[c]
		if rec.lhs != sym || rec.end+suffixMin > j {
			continue
		}
		if b.seenEnd(k, sym, rec.end, c) {
			continue
		}
		child, err := b.buildSym(sym, k, rec.end)
		if err != nil {
			return err
		}
		b.children = append(b.children, child)
		err = b.enum(ri, q+1, rec.end, j, emit)
		b.children = b.children[:len(b.children)-1]
		if err != nil {
			return err
		}
	}
	return nil
}

// seenEnd reports whether an earlier record in origin set k's list
// already covered (sym, end) — those duplicates would only rebuild the
// same memoized child and re-emit identical tuples.
func (b *builder) seenEnd(k int32, sym grammar.Symbol, end, upto int32) bool {
	for c := b.w.compHead[k]; c >= 0 && c != upto; c = b.w.comps[c].next {
		if rec := b.w.comps[c]; rec.lhs == sym && rec.end == end {
			return true
		}
	}
	return false
}

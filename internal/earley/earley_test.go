package earley

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipg/internal/fixtures"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

func TestBooleans(t *testing.T) {
	g := fixtures.Booleans()
	p := New(g)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"true", true},
		{"true or false and true", true},
		{"true or", false},
		{"", false},
	} {
		if got := p.Recognize(fixtures.Tokens(g, tc.input)); got != tc.want {
			t.Errorf("Recognize(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestEpsilonAndNullable(t *testing.T) {
	g := grammar.MustParse(`
START ::= A B
A ::= "a" | ε
B ::= "b" B | ε
`)
	p := New(g)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"", true},
		{"a", true},
		{"b b b", true},
		{"a b", true},
		{"b a", false},
	} {
		if got := p.Recognize(fixtures.Tokens(g, tc.input)); got != tc.want {
			t.Errorf("Recognize(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestHiddenLeftRecursion(t *testing.T) {
	g := grammar.MustParse(`
START ::= S
S ::= B S "a" | "a"
B ::= ε
`)
	p := New(g)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"a", true},
		{"a a a", true},
		{"", false},
	} {
		if got := p.Recognize(fixtures.Tokens(g, tc.input)); got != tc.want {
			t.Errorf("Recognize(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestCyclicGrammar(t *testing.T) {
	// Earley handles cyclic grammars (infinitely ambiguous) fine as a
	// recognizer.
	g := grammar.MustParse(`
START ::= A
A ::= A | "x"
`)
	p := New(g)
	if !p.Recognize(fixtures.Tokens(g, "x")) {
		t.Error("cyclic grammar should still recognize 'x'")
	}
}

func TestStatsGrow(t *testing.T) {
	g := fixtures.Booleans()
	p := New(g)
	_, small := p.RecognizeStats(fixtures.Tokens(g, "true"))
	_, large := p.RecognizeStats(fixtures.Tokens(g, "true or true or true or true"))
	if small.Items >= large.Items {
		t.Errorf("longer input should create more items: %d vs %d", small.Items, large.Items)
	}
	if small.Sets != 2 {
		t.Errorf("Sets = %d, want 2", small.Sets)
	}
}

// Property: Earley agrees with the GSS parallel LR parser on random
// grammars — the two general CF algorithms recognize the same language.
func TestAgreesWithGLR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grammar.Random(grammar.RandConfig{Nonterminals: 3, Terminals: 3, Rules: 7, EpsilonProb: 0.15}, rng)
		p := New(g)
		auto := lr.New(g)
		auto.GenerateAll()
		for i := 0; i < 10; i++ {
			var input []grammar.Symbol
			if sent, ok := g.RandomSentence(rng, 7); ok && rng.Intn(2) == 0 {
				input = sent
			} else {
				terms := g.Symbols().Terminals()
				for j := 0; j < rng.Intn(5); j++ {
					s := terms[rng.Intn(len(terms))]
					if s != grammar.EOF {
						input = append(input, s)
					}
				}
			}
			wantEarley := p.Recognize(input)
			gotGLR, err := glr.Recognize(auto, input, glr.GSS)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if wantEarley != gotGLR {
				t.Fatalf("seed %d: earley=%v glr=%v on %s\n%s",
					seed, wantEarley, gotGLR, g.Symbols().NamesOf(input), g.String())
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRecognizeDiag(t *testing.T) {
	g := fixtures.Booleans()
	p := New(g)
	if ok, _, errPos, _ := p.RecognizeDiag(fixtures.Tokens(g, "true or false")); !ok || errPos != -1 {
		t.Fatalf("accepted sentence: ok=%v errPos=%d, want true, -1", ok, errPos)
	}
	for _, tc := range []struct {
		input   string
		wantPos int
	}{
		{"true or or", 2},
		{"or true", 0},
		{"true or", 2}, // proper prefix: dies at end of input
	} {
		ok, _, errPos, expected := p.RecognizeDiag(fixtures.Tokens(g, tc.input))
		if ok {
			t.Errorf("RecognizeDiag(%q) accepted", tc.input)
			continue
		}
		if errPos != tc.wantPos {
			t.Errorf("RecognizeDiag(%q) errPos = %d, want %d", tc.input, errPos, tc.wantPos)
		}
		if len(expected) == 0 {
			t.Errorf("RecognizeDiag(%q) reported no expected terminals", tc.input)
		}
	}
}

// Package earley implements Earley's general context-free parsing
// algorithm [Ear70], the grammar-driven extreme of Fig 2.1 and the
// comparison the paper's authors wanted for section 7 but omitted ("we
// expect Earley's algorithm to have better generation performance, but a
// much inferior parsing performance"). There is no generation phase at
// all: every parse derives its information from the grammar, which is
// exactly what makes the algorithm flexible — a rule update costs
// nothing beyond the grammar mutation itself.
//
// The implementation uses the standard predictor/scanner/completer with
// the Aycock–Horspool nullable-prediction fix (epsilon rules are handled
// correctly), plus:
//
//   - a compiled grammar view (program) cached per grammar version, so
//     steady-state parses touch flat arrays instead of maps;
//   - a pooled, arena-backed chart (Workspace): dense per-set item
//     storage with a generation-stamped dedup table, mirroring
//     glr.Workspace — a warm parse allocates nothing in its token loop;
//   - Leo's right-recursion optimization [Leo91] on the recognition
//     path, making right-recursive grammars linear instead of quadratic;
//   - forest construction: completed items are threaded back through an
//     SPPF-style builder into internal/forest, producing trees
//     node-identical to the LR engines' on unambiguous inputs and a
//     packed forest on ambiguous ones.
package earley

import (
	"errors"
	"sync/atomic"

	"ipg/internal/cancel"
	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/obs"
)

// Stats counts parser work.
type Stats struct {
	// Items is the total number of Earley items created.
	Items int
	// Sets is the number of item sets (input length + 1).
	Sets int
	// Leo counts completions short-circuited by the Leo right-recursion
	// memo (recognition path only; tree building keeps the full chart).
	Leo int
}

// Result is the outcome of one Earley parse, shaped like glr.Result so
// the engine layer pays no translation cost.
type Result struct {
	// Accepted reports whether the input is a sentence of the grammar.
	Accepted bool
	// Root is the parse forest root (nil unless accepted and tree
	// building was requested). Ambiguous inputs pack all derivations.
	Root *forest.Node
	// Forest is the forest Root lives in (nil when tree building is
	// off).
	Forest *forest.Forest
	// ErrorPos is the index of the first token no item could scan
	// (len(input) when the sentence is a proper prefix); -1 when
	// accepted.
	ErrorPos int
	// Expected lists the terminals that would have allowed progress at
	// ErrorPos (sorted by symbol).
	Expected []grammar.Symbol
	// Stats holds work counters.
	Stats Stats
}

// Options configures one parse. The zero value recognizes only, with a
// pooled workspace.
type Options struct {
	// BuildTrees requests forest construction. Tree-building parses keep
	// the full chart (the Leo shortcut is off) and record completions.
	BuildTrees bool
	// Forest supplies an existing forest to build into (optional).
	Forest *forest.Forest
	// Workspace supplies reusable chart storage; nil borrows one from an
	// internal sync.Pool. A workspace serves one parse at a time.
	Workspace *Workspace
	// Trace, when non-nil, receives the parse's lifecycle stage
	// timings: the chart pass under obs.StageTable and forest
	// construction under obs.StageForest. The split lives here because
	// only the parser knows where the chart ends and the forest walk
	// begins; a nil Trace costs one pointer check.
	Trace *obs.ParseTrace
	// Cancel, when non-nil, is polled once per item set in the chart
	// drive and once per constituent in forest construction; a fired
	// flag aborts the parse with a *cancel.Error. Nil costs one
	// pointer check per checkpoint.
	Cancel *cancel.Flag
}

func (o *Options) cancelFlag() *cancel.Flag {
	if o == nil {
		return nil
	}
	return o.Cancel
}

func (o *Options) trace() *obs.ParseTrace {
	if o == nil {
		return nil
	}
	return o.Trace
}

func (o *Options) trees() bool { return o != nil && o.BuildTrees }

func (o *Options) forest() *forest.Forest {
	if o != nil && o.Forest != nil {
		return o.Forest
	}
	return forest.NewForest()
}

// ErrCyclic is returned by tree-building parses of cyclic grammars
// (A ::= A): such grammars derive sentences in infinitely many ways, so
// no finite packed forest exists. Recognition still works.
var ErrCyclic = errors.New("earley: cyclic derivation (grammar not finitely ambiguous)")

// Parser is an Earley parser for a grammar. It keeps no table: the
// compiled grammar view is re-derived whenever the grammar's version
// moves, so rule updates adapt automatically — the flexibility end of
// the Fig 2.1 spectrum.
//
// Concurrent parses through one Parser are safe as long as grammar
// mutations are excluded by the caller (the engine layer brackets them
// with a reader/writer lock).
type Parser struct {
	g    *grammar.Grammar
	prog atomic.Pointer[program]
}

// New returns a parser for g. No precomputation is performed; the
// compiled view is built on first use.
func New(g *grammar.Grammar) *Parser { return &Parser{g: g} }

// Parse runs one Earley parse. A trailing end marker ($) is accepted
// and ignored, so EOF-terminated token streams pass through unchanged.
func (p *Parser) Parse(input []grammar.Symbol, opts *Options) (Result, error) {
	if n := len(input); n > 0 && input[n-1] == grammar.EOF {
		input = input[:n-1]
	}
	w := opts.workspace()
	if w.pooled {
		defer releaseWorkspace(w)
	}
	pr := p.program()
	buildTrees := opts.trees()
	tr := opts.trace()
	fl := opts.cancelFlag()

	tr.BeginStage(obs.StageTable)
	res, err := p.run(pr, input, w, buildTrees, 0, fl)
	tr.EndStage(obs.StageTable)
	if err != nil {
		return res, err
	}
	if !buildTrees {
		return res, nil
	}
	res.Forest = opts.forest()
	if !res.Accepted {
		// Match the LL engine's shape: a tree-building rejection still
		// carries its (empty) forest.
		return res, nil
	}
	tr.BeginStage(obs.StageForest)
	root, err := buildForest(pr, w, input, res.Forest, fl)
	tr.EndStage(obs.StageForest)
	if err != nil {
		return Result{}, err
	}
	res.Root = root
	return res, nil
}

// Recognize reports whether input (terminals, end marker optional) is a
// sentence of the grammar.
func (p *Parser) Recognize(input []grammar.Symbol) bool {
	res, _ := p.Parse(input, nil)
	return res.Accepted
}

// RecognizeStats is Recognize with work counters.
func (p *Parser) RecognizeStats(input []grammar.Symbol) (bool, Stats) {
	res, _ := p.Parse(input, nil)
	return res.Accepted, res.Stats
}

// RecognizeDiag reports acceptance plus a rejection diagnostic in the
// shape the LR engines produce: errPos is the index of the first token
// no item could scan (len(input) when the sentence is a proper prefix),
// and expected lists the terminals that would have allowed progress
// there. errPos is -1 for accepted inputs.
func (p *Parser) RecognizeDiag(input []grammar.Symbol) (ok bool, stats Stats, errPos int, expected []grammar.Symbol) {
	res, _ := p.Parse(input, nil)
	return res.Accepted, res.Stats, res.ErrorPos, res.Expected
}

// program returns the compiled view of the current grammar, rebuilding
// it when the grammar version has moved. The rebuild is proportional to
// the grammar size — the "modification cost" of the Earley row in
// Fig 2.1, paid once per update batch instead of per parse.
func (p *Parser) program() *program {
	if pr := p.prog.Load(); pr != nil && pr.version == p.g.Version() {
		return pr
	}
	pr := compile(p.g)
	p.prog.Store(pr)
	return pr
}

// program is the compiled grammar view: flat, symbol-indexed arrays
// replacing the map lookups of the grammar on the parse hot path.
type program struct {
	g       *grammar.Grammar
	version uint64

	// rules indexes every live rule; items refer to rules by index.
	rules []*grammar.Rule
	// rulesFor[sym] lists the indices of rules with left-hand side sym.
	rulesFor [][]int32
	// nullable[sym] reports whether sym derives the empty string.
	nullable []bool
	// isNT[sym] reports whether sym is a nonterminal.
	isNT []bool
	// startRules are the indices of the START rules.
	startRules []int32
	// minSuffix[r][q] is a lower bound on the token width of rule r's
	// right-hand-side suffix Rhs[q:] (terminals count 1, nonterminals 0
	// when nullable, else 1). The forest builder prunes split points
	// whose remaining suffix cannot fit the remaining span — which also
	// makes the cyclic-derivation check exact.
	minSuffix [][]int32
	// numSyms is the symbol-array length (max symbol id + 1).
	numSyms int
}

func compile(g *grammar.Grammar) *program {
	numSyms := g.Symbols().Len() + 1
	pr := &program{
		g:        g,
		version:  g.Version(),
		rules:    g.Rules(),
		rulesFor: make([][]int32, numSyms),
		nullable: make([]bool, numSyms),
		isNT:     make([]bool, numSyms),
		numSyms:  numSyms,
	}
	for _, s := range g.Symbols().Nonterminals() {
		pr.isNT[s] = true
	}
	for s := range g.Nullable() {
		pr.nullable[s] = true
	}
	pr.minSuffix = make([][]int32, len(pr.rules))
	for i, r := range pr.rules {
		pr.rulesFor[r.Lhs] = append(pr.rulesFor[r.Lhs], int32(i))
		suf := make([]int32, len(r.Rhs)+1)
		for q := len(r.Rhs) - 1; q >= 0; q-- {
			w := int32(1)
			if s := r.Rhs[q]; pr.isNT[s] && pr.nullable[s] {
				w = 0
			}
			suf[q] = suf[q+1] + w
		}
		pr.minSuffix[i] = suf
	}
	pr.startRules = pr.rulesFor[g.Start()]
	return pr
}

// Package earley implements Earley's general context-free parsing
// algorithm [Ear70], the grammar-driven baseline of Fig 2.1 and the
// comparison the paper's authors wanted for section 7 but omitted ("we
// expect Earley's algorithm to have better generation performance, but a
// much inferior parsing performance"). There is no generation phase at
// all: every parse step recomputes its information from the grammar,
// which is exactly what makes the algorithm flexible but slow.
//
// The implementation uses the standard predictor/scanner/completer with
// the Aycock–Horspool nullable-prediction fix, so epsilon rules are
// handled correctly.
package earley

import (
	"fmt"
	"sort"

	"ipg/internal/grammar"
)

// item is a dotted rule with its origin position.
type item struct {
	rule   *grammar.Rule
	dot    int
	origin int
}

func (it item) key() string {
	return fmt.Sprintf("%s@%d@%d", it.rule.Key(), it.dot, it.origin)
}

func (it item) atEnd() bool { return it.dot == it.rule.Len() }

func (it item) afterDot() grammar.Symbol {
	if it.atEnd() {
		return grammar.NoSymbol
	}
	return it.rule.Rhs[it.dot]
}

// Stats counts parser work.
type Stats struct {
	// Items is the total number of Earley items created.
	Items int
	// Sets is the number of item sets (input length + 1).
	Sets int
}

// Parser is an Earley recognizer for a grammar. It keeps no state between
// parses and adapts to grammar modifications automatically — the
// flexibility end of the Fig 2.1 spectrum.
type Parser struct {
	g *grammar.Grammar
}

// New returns a parser for g. No precomputation is performed beyond the
// nullable set, which is re-derived on every parse to preserve the
// "grammar-driven" cost model.
func New(g *grammar.Grammar) *Parser { return &Parser{g: g} }

// Recognize reports whether input (terminals, no end marker) is a
// sentence of the grammar.
func (p *Parser) Recognize(input []grammar.Symbol) bool {
	ok, _ := p.recognize(input)
	return ok
}

// RecognizeStats is Recognize with work counters.
func (p *Parser) RecognizeStats(input []grammar.Symbol) (bool, Stats) {
	ok, stats, _, _ := p.recognizeDiag(input)
	return ok, stats
}

// RecognizeDiag reports acceptance plus a rejection diagnostic in the shape
// the LR engines produce: errPos is the index of the first token no item
// could scan (len(input) when the sentence is a proper prefix), and
// expected lists the terminals that would have allowed progress there.
// errPos is -1 for accepted inputs.
func (p *Parser) RecognizeDiag(input []grammar.Symbol) (ok bool, stats Stats, errPos int, expected []grammar.Symbol) {
	return p.recognizeDiag(input)
}

func (p *Parser) recognize(input []grammar.Symbol) (bool, Stats) {
	ok, stats, _, _ := p.recognizeDiag(input)
	return ok, stats
}

func (p *Parser) recognizeDiag(input []grammar.Symbol) (bool, Stats, int, []grammar.Symbol) {
	g := p.g
	nullable := g.Nullable()
	n := len(input)

	sets := make([][]item, n+1)
	seen := make([]map[string]bool, n+1)
	for i := range seen {
		seen[i] = map[string]bool{}
	}
	var stats Stats
	stats.Sets = n + 1

	add := func(i int, it item) {
		k := it.key()
		if seen[i][k] {
			return
		}
		seen[i][k] = true
		sets[i] = append(sets[i], it)
		stats.Items++
	}

	for _, r := range g.RulesFor(g.Start()) {
		add(0, item{rule: r, dot: 0, origin: 0})
	}

	for i := 0; i <= n; i++ {
		// Worklist: sets[i] grows while scanning it.
		for j := 0; j < len(sets[i]); j++ {
			it := sets[i][j]
			switch sym := it.afterDot(); {
			case sym == grammar.NoSymbol:
				// Completer: advance items in the origin set waiting on
				// this rule's left-hand side.
				for _, wait := range sets[it.origin] {
					if wait.afterDot() == it.rule.Lhs {
						add(i, item{rule: wait.rule, dot: wait.dot + 1, origin: wait.origin})
					}
				}
			case g.Symbols().Kind(sym) == grammar.Nonterminal:
				// Predictor.
				for _, r := range g.RulesFor(sym) {
					add(i, item{rule: r, dot: 0, origin: i})
				}
				// Aycock–Horspool: a nullable nonterminal may be skipped
				// outright.
				if nullable.Has(sym) {
					add(i, item{rule: it.rule, dot: it.dot + 1, origin: it.origin})
				}
			default:
				// Scanner.
				if i < n && input[i] == sym {
					add(i+1, item{rule: it.rule, dot: it.dot + 1, origin: it.origin})
				}
			}
		}
	}

	for _, it := range sets[n] {
		if it.rule.Lhs == g.Start() && it.atEnd() && it.origin == 0 {
			return true, stats, -1, nil
		}
	}

	// Rejected: the parse died at the last set still holding items — the
	// token at that index could not be scanned by any of them (or, when
	// every set is populated, the sentence stopped one derivation short).
	last := n
	for last > 0 && len(sets[last]) == 0 {
		last--
	}
	seenExp := map[grammar.Symbol]bool{}
	var expected []grammar.Symbol
	for _, it := range sets[last] {
		sym := it.afterDot()
		if sym == grammar.NoSymbol || g.Symbols().Kind(sym) != grammar.Terminal || seenExp[sym] {
			continue
		}
		seenExp[sym] = true
		expected = append(expected, sym)
	}
	sort.Slice(expected, func(i, j int) bool { return expected[i] < expected[j] })
	return false, stats, last, expected
}

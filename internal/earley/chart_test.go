package earley

import (
	"errors"
	"strings"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/forest"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// TestEarleyRecognizeAllocFree pins the chart-overhaul claim: a
// steady-state recognition pass over a pooled (or caller-held) chart
// does zero heap allocations — the Earley analog of the GSS and
// deterministic engines' gates in internal/glr.
func TestEarleyRecognizeAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts and sync.Pool behavior")
	}
	g := fixtures.Booleans()
	p := New(g)
	input := append(fixtures.Tokens(g, "true or false and true or true"), grammar.EOF)
	held := &Options{Workspace: new(Workspace)}
	for i := 0; i < 3; i++ {
		if res, err := p.Parse(input, held); err != nil || !res.Accepted {
			t.Fatalf("warm-up: %v %v", res.Accepted, err)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		res, err := p.Parse(input, held)
		if err != nil || !res.Accepted {
			t.Fatalf("parse: %v %v", res.Accepted, err)
		}
	}); avg != 0 {
		t.Errorf("steady-state recognize with held workspace allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if !p.Recognize(input) {
			t.Fatal("rejected")
		}
	}); avg != 0 {
		t.Errorf("steady-state recognize with pooled workspace allocates %.2f allocs/op, want 0", avg)
	}
}

// TestLeoRightRecursionLinear checks the Leo memo: on a plain
// right-recursive grammar the chart must stay linear in the input (the
// textbook behavior without Leo is a quadratic completion cascade).
func TestLeoRightRecursionLinear(t *testing.T) {
	g := grammar.MustParse(`
START ::= E
E ::= "x" E | "x"
`)
	p := New(g)
	x, _ := g.Symbols().Lookup("x")
	input := func(n int) []grammar.Symbol {
		out := make([]grammar.Symbol, n)
		for i := range out {
			out[i] = x
		}
		return out
	}
	ok1, s1 := p.RecognizeStats(input(50))
	ok2, s2 := p.RecognizeStats(input(100))
	if !ok1 || !ok2 {
		t.Fatal("right-recursive sentences rejected")
	}
	if s2.Leo == 0 {
		t.Error("Leo memo never used on a right-recursive grammar")
	}
	// Linear: doubling the input roughly doubles the items. Without Leo
	// the 100-token chart holds ~4x the items of the 50-token one.
	if s2.Items > s1.Items*5/2 {
		t.Errorf("items not linear under right recursion: %d at n=50, %d at n=100", s1.Items, s2.Items)
	}
}

// TestLeoDoesNotChangeDiagnostics compares recognition outcomes and
// rejection diagnostics with and without the Leo shortcut (tree-building
// runs keep the full chart) across accept and reject sentences.
func TestLeoDoesNotChangeDiagnostics(t *testing.T) {
	g := grammar.MustParse(`
START ::= E
E ::= "x" E | "y" E "z" | "x"
`)
	p := New(g)
	for _, text := range []string{
		"x", "x x x", "y x z", "y y x z z", "y x x z", "", "z", "x z", "y x", "y z",
	} {
		toks := fixtures.Tokens(g, text)
		rec, _ := p.Parse(toks, nil)
		tree, err := p.Parse(toks, &Options{BuildTrees: true})
		if err != nil {
			t.Fatalf("%q: tree parse: %v", text, err)
		}
		if rec.Accepted != tree.Accepted || rec.ErrorPos != tree.ErrorPos {
			t.Errorf("%q: Leo path (ok=%v pos=%d) vs full chart (ok=%v pos=%d)",
				text, rec.Accepted, rec.ErrorPos, tree.Accepted, tree.ErrorPos)
		}
		if len(rec.Expected) != len(tree.Expected) {
			t.Errorf("%q: expected sets diverge: %v vs %v", text, rec.Expected, tree.Expected)
		}
	}
}

// TestParseTreesMatchGLR: on an ambiguous grammar the packed forest
// must represent exactly the derivations the GSS engine packs, and on
// every sentence the rendered forests must coincide.
func TestParseTreesMatchGLR(t *testing.T) {
	g := fixtures.Booleans()
	p := New(g)
	auto := lr.New(g)
	auto.GenerateAll()
	for _, text := range []string{
		"true",
		"true or false",
		"true or false and true",
		"true and true or false and true",
		"true or true or true or true",
	} {
		toks := fixtures.Tokens(g, text)
		eRes, err := p.Parse(toks, &Options{BuildTrees: true})
		if err != nil || !eRes.Accepted || eRes.Root == nil {
			t.Fatalf("%q: earley parse: ok=%v err=%v", text, eRes.Accepted, err)
		}
		gRes, err := glr.Parse(auto, toks, &glr.Options{Engine: glr.GSS})
		if err != nil || !gRes.Accepted {
			t.Fatalf("%q: glr parse: %v %v", text, gRes.Accepted, err)
		}
		eCount, err1 := forest.TreeCount(eRes.Root)
		gCount, err2 := forest.TreeCount(gRes.Root)
		if err1 != nil || err2 != nil || eCount != gCount {
			t.Errorf("%q: derivation counts diverge: earley %d (%v), glr %d (%v)",
				text, eCount, err1, gCount, err2)
		}
		if e, g2 := forest.String(eRes.Root, g.Symbols()), forest.String(gRes.Root, g.Symbols()); e != g2 {
			t.Errorf("%q: rendered forests diverge\nearley: %s\nglr:    %s", text, e, g2)
		}
	}
}

// TestParseNullableTrees exercises forest construction through epsilon
// rules and Aycock–Horspool skips: the yield of every tree must equal
// the input.
func TestParseNullableTrees(t *testing.T) {
	g := grammar.MustParse(`
START ::= A B
A ::= "a" | ε
B ::= "b" B | ε
`)
	p := New(g)
	for _, text := range []string{"", "a", "b b b", "a b b"} {
		toks := fixtures.Tokens(g, text)
		res, err := p.Parse(toks, &Options{BuildTrees: true})
		if err != nil || !res.Accepted || res.Root == nil {
			t.Fatalf("%q: ok=%v root=%v err=%v", text, res.Accepted, res.Root, err)
		}
		yield, err := forest.Yield(res.Root)
		if err != nil {
			t.Fatalf("%q: yield: %v", text, err)
		}
		if len(yield) != len(toks) {
			t.Errorf("%q: yield %v does not match input %v", text,
				g.Symbols().NamesOf(yield), g.Symbols().NamesOf(toks))
		}
	}
}

// TestCyclicGrammarTreesError: cyclic grammars have no finite packed
// forest; tree building reports that while recognition keeps working.
func TestCyclicGrammarTreesError(t *testing.T) {
	g := grammar.MustParse(`
START ::= A
A ::= A | "x"
`)
	p := New(g)
	toks := fixtures.Tokens(g, "x")
	if !p.Recognize(toks) {
		t.Fatal("cyclic grammar should still recognize 'x'")
	}
	if _, err := p.Parse(toks, &Options{BuildTrees: true}); !errors.Is(err, ErrCyclic) {
		t.Fatalf("tree building on a cyclic grammar: err = %v, want ErrCyclic", err)
	}
}

// TestWorkspaceReuseMatchesFresh guards chart recycling: a parse
// through a heavily reused workspace must produce exactly the result a
// fresh one does.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	g := fixtures.Booleans()
	p := New(g)
	ws := new(Workspace)
	for _, text := range []string{
		"true",
		"true or false",
		"true or false and true or true",
		"true or or true", // rejected
		"",                // rejected
	} {
		toks := fixtures.Tokens(g, text)
		reused, err1 := p.Parse(toks, &Options{BuildTrees: true, Workspace: ws})
		fresh, err2 := p.Parse(toks, &Options{BuildTrees: true, Workspace: new(Workspace)})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%q: err mismatch %v vs %v", text, err1, err2)
		}
		if reused.Accepted != fresh.Accepted || reused.ErrorPos != fresh.ErrorPos ||
			reused.Stats.Items != fresh.Stats.Items {
			t.Errorf("%q: reused %+v vs fresh %+v", text, reused, fresh)
		}
		if (reused.Root == nil) != (fresh.Root == nil) {
			t.Errorf("%q: root nil-ness differs", text)
		}
		if reused.Root != nil {
			r1 := forest.String(reused.Root, g.Symbols())
			r2 := forest.String(fresh.Root, g.Symbols())
			if r1 != r2 {
				t.Errorf("%q: forests diverge:\nreused: %s\nfresh:  %s", text, r1, r2)
			}
		}
	}
}

// TestGrammarVersionRecompiles: a rule update must be visible on the
// very next parse (the compiled view is version-stamped).
func TestGrammarVersionRecompiles(t *testing.T) {
	g := grammar.MustParse(`
START ::= E
E ::= "x"
`)
	p := New(g)
	g.Symbols().MustIntern("y", grammar.Terminal)
	if p.Recognize(fixtures.Tokens(g, "y")) {
		t.Fatal("accepted 'y' before the rule existed")
	}
	mod, err := grammar.Parse(`E ::= "y"`, g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddRule(mod.Rules()[0]); err != nil {
		t.Fatal(err)
	}
	if !p.Recognize(fixtures.Tokens(g, "y")) {
		t.Fatal("rule update not visible to the next parse")
	}
	if _, err := g.DeleteRule(mod.Rules()[0]); err != nil {
		t.Fatal(err)
	}
	if p.Recognize(fixtures.Tokens(g, "y")) {
		t.Fatal("rule deletion not visible to the next parse")
	}
}

// TestEOFTerminatedInput: the end marker is accepted and ignored, so
// EOF-terminated token streams (the service's zero-alloc convention)
// parse identically to bare ones.
func TestEOFTerminatedInput(t *testing.T) {
	g := fixtures.Booleans()
	p := New(g)
	bare := fixtures.Tokens(g, "true or false")
	term := append(append([]grammar.Symbol(nil), bare...), grammar.EOF)
	if got, want := p.Recognize(term), p.Recognize(bare); got != want {
		t.Fatalf("EOF-terminated %v, bare %v", got, want)
	}
	res, err := p.Parse(term, &Options{BuildTrees: true})
	if err != nil || !res.Accepted {
		t.Fatalf("EOF-terminated tree parse: %v %v", res.Accepted, err)
	}
	if s := forest.String(res.Root, g.Symbols()); !strings.Contains(s, "or") {
		t.Fatalf("unexpected tree %s", s)
	}
}

package earley

import (
	"sort"
	"sync"

	"ipg/internal/cancel"
	"ipg/internal/faultinject"
	"ipg/internal/grammar"
)

// item is a dotted rule with its origin position. Rules are referenced
// by index into the program's rule array, so an item is three machine
// words of plain data — the chart never holds pointers.
type item struct {
	rule   int32
	dot    int32
	origin int32
}

// Workspace is the reusable chart of one Earley parse, mirroring
// glr.Workspace: all item sets live in one dense, set-partitioned slice,
// membership is a generation-stamped open-addressed table, and the Leo
// memo, waiter-counting scratch and completion index are flat arrays
// rewound per parse. On a steady-state parse (same grammar, similar
// input sizes) the token loop does no heap allocation.
//
// A Workspace may be used by one parse at a time. Callers either supply
// one through Options.Workspace (and own its lifetime), or leave it nil
// and the parser borrows one from an internal sync.Pool.
type Workspace struct {
	// items holds every Earley item, set by set; bounds[i] is the index
	// where set i starts (len(bounds) = processed sets + 1, the last
	// entry closing the final set).
	items  []item
	bounds []int32
	// scanBuf stages the scanner's additions to set i+1 while set i is
	// still being processed.
	scanBuf []item

	// Dedup table for the set under construction: open addressing with
	// generation stamps, so moving to the next set is one counter
	// increment. Scanned items bypass the table — an item with a
	// terminal before its dot can only arise from the (injective)
	// scanner, never from the predictor, completer or nullable skip.
	tabItems []item
	tabGen   []uint32
	gen      uint32

	// Leo memo: per-set (symbol, topmost item) entries with spans in
	// leoBounds, chained transitively at install time.
	leo       []leoEntry
	leoBounds []int32

	// Waiter-counting scratch for Leo eligibility, symbol-indexed and
	// generation-stamped (shares gen with the dedup table).
	waitGen   []uint32
	waitCount []int32
	waitItem  []int32
	waitSyms  []grammar.Symbol

	// Completion index for forest building: compHead[origin] heads a
	// linked list of completion records through comps (tree-building
	// parses only).
	comps    []compRec
	compHead []int32

	pooled bool
}

// leoEntry memoizes the topmost item of a deterministic reduction path:
// completing sym in the entry's set adds top directly, skipping the
// intermediate completions of a right-recursive chain.
type leoEntry struct {
	sym grammar.Symbol
	top item
}

// compRec records one completed constituent for the forest builder:
// lhs was derived by rule over [origin, end), where origin is implied
// by the compHead list the record lives on.
type compRec struct {
	lhs  grammar.Symbol
	rule int32
	end  int32
	next int32
}

// wsPool recycles workspaces for callers that do not manage their own.
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

func (o *Options) workspace() *Workspace {
	if o != nil && o.Workspace != nil {
		o.Workspace.pooled = false
		return o.Workspace
	}
	w := wsPool.Get().(*Workspace)
	w.pooled = true
	return w
}

func releaseWorkspace(w *Workspace) { wsPool.Put(w) }

// begin readies the workspace for one parse over n input tokens against
// a grammar with numSyms symbols. Capacities are kept, so steady-state
// reuse allocates nothing.
func (w *Workspace) begin(n, numSyms int, buildTrees bool) {
	w.items = w.items[:0]
	w.bounds = append(w.bounds[:0], 0)
	w.scanBuf = w.scanBuf[:0]
	w.leo = w.leo[:0]
	w.leoBounds = append(w.leoBounds[:0], 0)
	w.comps = w.comps[:0]

	if len(w.tabItems) == 0 {
		w.tabItems = make([]item, 256)
		w.tabGen = make([]uint32, 256)
	}
	if len(w.waitGen) < numSyms {
		w.waitGen = make([]uint32, numSyms)
		w.waitCount = make([]int32, numSyms)
		w.waitItem = make([]int32, numSyms)
	}
	w.waitSyms = w.waitSyms[:0]
	w.gen++
	if w.gen == 0 {
		clear(w.tabGen)
		clear(w.waitGen)
		w.gen = 1
	}

	if buildTrees {
		if cap(w.compHead) < n+1 {
			w.compHead = make([]int32, n+1)
		}
		w.compHead = w.compHead[:n+1]
		for i := range w.compHead {
			w.compHead[i] = -1
		}
	}
}

// resume rewinds the chart to its first keep+1 item sets (sets 0..keep
// stay closed and untouched), dropping every item, Leo entry and
// completion record at or beyond set keep+1 so a reparse can re-drive
// from there. Item set i depends only on tokens[0..i-1] and the
// grammar, so after an edit whose leftmost damaged token is k, sets
// 0..k are reusable verbatim — this is the damage/reuse invariant the
// document-session layer builds on. n is the new input length (the
// completion index must cover origins 0..n). Capacities are kept, so a
// warm truncate-and-redrive allocates nothing.
func (w *Workspace) resume(keep, n, numSyms int, buildTrees bool) {
	w.items = w.items[:w.bounds[keep+1]]
	w.bounds = w.bounds[:keep+2]
	w.scanBuf = w.scanBuf[:0]
	// Leo memo: populated one span per processed set on recognition
	// parses (tree-building charts leave it empty, guarded by length).
	if len(w.leoBounds) > keep+2 {
		w.leoBounds = w.leoBounds[:keep+2]
	}
	if len(w.leoBounds) == keep+2 {
		w.leo = w.leo[:w.leoBounds[keep+1]]
	}

	if len(w.waitGen) < numSyms {
		w.waitGen = make([]uint32, numSyms)
		w.waitCount = make([]int32, numSyms)
		w.waitItem = make([]int32, numSyms)
	}
	w.waitSyms = w.waitSyms[:0]
	w.gen++
	if w.gen == 0 {
		clear(w.tabGen)
		clear(w.waitGen)
		w.gen = 1
	}

	if buildTrees {
		// Completion records are appended while their end set is being
		// processed, so ends are nondecreasing and the survivors form a
		// prefix. Survivor next-links only point at earlier (smaller)
		// indices, so they stay valid; heads just need to skip past the
		// cut. Origins beyond keep only ever complete past set keep, so
		// their lists empty out entirely.
		cut := int32(sort.Search(len(w.comps), func(i int) bool { return w.comps[i].end > int32(keep) }))
		for o := 0; o <= keep && o < len(w.compHead); o++ {
			h := w.compHead[o]
			for h >= cut {
				h = w.comps[h].next
			}
			w.compHead[o] = h
		}
		w.comps = w.comps[:cut]
		if cap(w.compHead) < n+1 {
			old := w.compHead
			w.compHead = make([]int32, n+1)
			copy(w.compHead, old[:keep+1])
		}
		w.compHead = w.compHead[:n+1]
		for o := keep + 1; o <= n; o++ {
			w.compHead[o] = -1
		}
	}
}

// rescan re-runs the scanner of finalized set k against input[k],
// staging set k+1 exactly as the original drive would have. Iterating
// the finalized set preserves the original staging order, so a resumed
// chart is byte-identical to a from-scratch parse of the edited input.
func (w *Workspace) rescan(pr *program, input []grammar.Symbol, k int) {
	sym := input[k]
	if int(sym) < len(pr.isNT) && pr.isNT[sym] {
		return
	}
	start, end := w.setSpan(k)
	for j := start; j < end; j++ {
		it := w.items[j]
		r := pr.rules[it.rule]
		if int(it.dot) < len(r.Rhs) && r.Rhs[it.dot] == sym {
			w.scanBuf = append(w.scanBuf, item{rule: it.rule, dot: it.dot + 1, origin: it.origin})
		}
	}
}

// nextSet closes the current set and seeds the next one from the
// scanner staging buffer. The dedup table generation advances; staged
// items need no table entries (see the Workspace comment).
func (w *Workspace) nextSet() {
	w.items = append(w.items, w.scanBuf...)
	w.scanBuf = w.scanBuf[:0]
	w.gen++
	if w.gen == 0 {
		clear(w.tabGen)
		clear(w.waitGen)
		w.gen = 1
	}
}

// hash mixes an item into a table index (Fibonacci hashing over the
// packed fields).
func (w *Workspace) hash(it item) uint32 {
	h := uint64(uint32(it.rule))<<42 ^ uint64(uint32(it.dot))<<21 ^ uint64(uint32(it.origin))
	h *= 0x9E3779B97F4A7C15
	return uint32(h>>32) & uint32(len(w.tabItems)-1)
}

// insert adds it to the current set's dedup table, reporting whether it
// was absent. The table grows (rehashing only live-generation entries)
// when half full.
func (w *Workspace) insert(it item) bool {
	if w.tabFill() {
		w.growTable()
	}
	i := w.hash(it)
	for {
		if w.tabGen[i] != w.gen {
			w.tabItems[i] = it
			w.tabGen[i] = w.gen
			return true
		}
		if w.tabItems[i] == it {
			return false
		}
		i = (i + 1) & uint32(len(w.tabItems)-1)
	}
}

// tabFill reports whether the current set's table occupancy crossed the
// growth threshold (half the slots).
func (w *Workspace) tabFill() bool {
	// The current set's live entries are exactly the items added to it
	// that did not come from the scanner; bounding by the set size is a
	// cheap overestimate that keeps the load factor safe.
	curStart := int(w.bounds[len(w.bounds)-1])
	return len(w.items)-curStart >= len(w.tabItems)/2
}

func (w *Workspace) growTable() {
	old := w.tabItems
	oldGen := w.tabGen
	w.tabItems = make([]item, 2*len(old))
	w.tabGen = make([]uint32, 2*len(old))
	for i, g := range oldGen {
		if g != w.gen {
			continue
		}
		it := old[i]
		j := w.hash(it)
		for w.tabGen[j] == w.gen {
			j = (j + 1) & uint32(len(w.tabItems)-1)
		}
		w.tabItems[j] = it
		w.tabGen[j] = w.gen
	}
}

// add inserts it into the set under construction unless present.
func (w *Workspace) add(it item) {
	if w.insert(it) {
		w.items = append(w.items, it)
	}
}

// setSpan returns the [start, end) item-index span of finalized set i.
func (w *Workspace) setSpan(i int) (int32, int32) {
	return w.bounds[i], w.bounds[i+1]
}

// leoLookup resolves the Leo memo for completing sym whose origin is
// finalized set i (entries per set are few; linear scan beats a map).
func (w *Workspace) leoLookup(i int, sym grammar.Symbol) (item, bool) {
	if i+1 >= len(w.leoBounds) {
		return item{}, false
	}
	for _, e := range w.leo[w.leoBounds[i]:w.leoBounds[i+1]] {
		if e.sym == sym {
			return e.top, true
		}
	}
	return item{}, false
}

// finalizeLeo computes set i's Leo entries: for every nonterminal A
// with exactly one waiting item in the set, that item being penultimate
// ([B ::= α·A]), the memo maps A to the (transitively chained) topmost
// completed item — so a right-recursive completion cascade collapses to
// one step per set instead of one per chain link.
func (w *Workspace) finalizeLeo(pr *program, i int) {
	start, end := w.bounds[len(w.bounds)-2], w.bounds[len(w.bounds)-1]
	w.waitSyms = w.waitSyms[:0]
	for j := start; j < end; j++ {
		it := w.items[j]
		r := pr.rules[it.rule]
		if int(it.dot) == len(r.Rhs) {
			continue
		}
		sym := r.Rhs[it.dot]
		if !pr.isNT[sym] {
			continue
		}
		if w.waitGen[sym] != w.gen {
			w.waitGen[sym] = w.gen
			w.waitCount[sym] = 0
			w.waitSyms = append(w.waitSyms, sym)
		}
		w.waitCount[sym]++
		w.waitItem[sym] = j
	}
	for _, sym := range w.waitSyms {
		if w.waitCount[sym] != 1 {
			continue
		}
		it := w.items[w.waitItem[sym]]
		r := pr.rules[it.rule]
		if int(it.dot) != len(r.Rhs)-1 {
			continue
		}
		top := item{rule: it.rule, dot: it.dot + 1, origin: it.origin}
		// Transitive chaining: if the waiter's own completion is itself
		// Leo-deterministic, adopt its topmost item.
		if chained, ok := w.leoLookup(int(it.origin), r.Lhs); ok {
			top = chained
		} else if int(it.origin) == i {
			// An intra-set chain head installed earlier this pass.
			for _, e := range w.leo[w.leoBounds[i]:] {
				if e.sym == r.Lhs {
					top = e.top
					break
				}
			}
		}
		w.leo = append(w.leo, leoEntry{sym: sym, top: top})
	}
	w.leoBounds = append(w.leoBounds, int32(len(w.leo)))
}

// run executes the recognizer over input, leaving the chart in w for an
// optional forest-building pass. Diagnostics match the LR engines'
// shape.
//
// start is the index of the first item set to (re)process. Zero is a
// from-scratch parse. A positive start resumes an edited document: the
// caller guarantees w holds a chart whose sets 0..start-1 are valid for
// input (they were built over an identical token prefix by this same
// program); run truncates everything from set start on, re-scans set
// start-1 against the new input and drives forward. The resumed chart
// is identical to what a from-scratch parse of input would build.
func (p *Parser) run(pr *program, input []grammar.Symbol, w *Workspace, buildTrees bool, start int, fl *cancel.Flag) (Result, error) {
	n := len(input)
	res := Result{ErrorPos: -1}
	res.Stats.Sets = n + 1

	last := 0 // last set that held items (failure diagnostics)
	if start == 0 {
		w.begin(n, pr.numSyms, buildTrees)
		for _, ri := range pr.startRules {
			w.add(item{rule: ri, dot: 0, origin: 0})
		}
	} else {
		w.resume(start-1, n, pr.numSyms, buildTrees)
		for i := start - 1; i > 0; i-- {
			if w.bounds[i+1] > w.bounds[i] {
				last = i
				break
			}
		}
		if start <= n && w.bounds[start] > w.bounds[start-1] {
			w.rescan(pr, input, start-1)
			w.nextSet()
		} else {
			// Set start-1 is empty — the retained chart died there, and
			// a from-scratch parse would never open a set beyond it — or
			// the kept prefix already covers the whole input. Either
			// way the chart is final as truncated.
			start = n + 1
		}
	}
	for i := start; i <= n; i++ {
		// Per-item-set cancellation checkpoint (one nil check when
		// unarmed). On abort the chart is mid-drive; callers must not
		// treat it as valid for resumption.
		if fl.Hit() {
			res.Stats.Items = len(w.items)
			return res, fl.Err(i, n, uint64(len(w.items)))
		}
		if faultinject.Armed() {
			faultinject.Step(faultinject.SiteDriveToken, i, fl)
		}
		curStart := w.bounds[len(w.bounds)-1]
		if int32(len(w.items)) > curStart {
			last = i
		}
		for j := curStart; j < int32(len(w.items)); j++ {
			it := w.items[j]
			r := pr.rules[it.rule]
			if int(it.dot) == len(r.Rhs) {
				w.complete(pr, it, i, buildTrees, &res.Stats)
				continue
			}
			sym := r.Rhs[it.dot]
			if pr.isNT[sym] {
				// Predictor.
				for _, ri := range pr.rulesFor[sym] {
					w.add(item{rule: ri, dot: 0, origin: int32(i)})
				}
				// Aycock–Horspool: a nullable nonterminal may be skipped
				// outright.
				if pr.nullable[sym] {
					w.add(item{rule: it.rule, dot: it.dot + 1, origin: it.origin})
				}
			} else if i < n && input[i] == sym {
				// Scanner: set i+1 additions are staged and need no
				// dedup (see Workspace).
				w.scanBuf = append(w.scanBuf, item{rule: it.rule, dot: it.dot + 1, origin: it.origin})
			}
		}
		w.bounds = append(w.bounds, int32(len(w.items)))
		if !buildTrees {
			w.finalizeLeo(pr, i)
		}
		if i == n || (len(w.scanBuf) == 0 && int32(len(w.items)) == curStart) {
			// Accept test, or no progress possible: later sets stay empty.
			break
		}
		w.nextSet()
	}
	res.Stats.Items = len(w.items)

	// Accept: a completed START rule spanning the whole input.
	if len(w.bounds) == n+2 {
		start, end := w.setSpan(n)
		for j := start; j < end; j++ {
			it := w.items[j]
			if it.origin != 0 {
				continue
			}
			r := pr.rules[it.rule]
			if r.Lhs == pr.g.Start() && int(it.dot) == len(r.Rhs) {
				res.Accepted = true
				return res, nil
			}
		}
	}

	// Rejected: the parse died at the last set still holding items — the
	// token at that index could not be scanned by any of them (or, when
	// every set is populated, the sentence stopped one derivation short).
	res.ErrorPos = last
	seenExp := map[grammar.Symbol]bool{}
	lo := w.bounds[last]
	end := int32(len(w.items))
	if last+1 < len(w.bounds) {
		end = w.bounds[last+1]
	}
	for j := lo; j < end; j++ {
		it := w.items[j]
		r := pr.rules[it.rule]
		if int(it.dot) == len(r.Rhs) {
			continue
		}
		sym := r.Rhs[it.dot]
		if pr.isNT[sym] || seenExp[sym] {
			continue
		}
		seenExp[sym] = true
		res.Expected = append(res.Expected, sym)
	}
	sort.Slice(res.Expected, func(i, j int) bool { return res.Expected[i] < res.Expected[j] })
	return res, nil
}

// complete advances the items of the origin set waiting on the
// completed rule's left-hand side — or, on the recognition path, jumps
// straight to the memoized topmost item when the origin set's Leo entry
// applies.
func (w *Workspace) complete(pr *program, it item, i int, buildTrees bool, stats *Stats) {
	r := pr.rules[it.rule]
	o := int(it.origin)
	if buildTrees {
		w.comps = append(w.comps, compRec{lhs: r.Lhs, rule: it.rule, end: int32(i), next: w.compHead[o]})
		w.compHead[o] = int32(len(w.comps) - 1)
	} else if o < i {
		if top, ok := w.leoLookup(o, r.Lhs); ok {
			stats.Leo++
			w.add(top)
			return
		}
	}
	start := w.bounds[o]
	end := int32(len(w.items))
	if o+1 < len(w.bounds) {
		end = w.bounds[o+1]
	}
	for j := start; j < end; j++ {
		wt := w.items[j]
		wr := pr.rules[wt.rule]
		if int(wt.dot) < len(wr.Rhs) && wr.Rhs[wt.dot] == r.Lhs {
			w.add(item{rule: wt.rule, dot: wt.dot + 1, origin: wt.origin})
		}
	}
}

// Package obs is the service's dependency-free observability layer:
// Prometheus text-format metrics exposition (prom.go), pooled
// sampling-gated parse-lifecycle tracing with lock-free ring retention
// (this file), structured-logging helpers and request-ID propagation
// (log.go), and pprof profile-label attribution (profile.go).
//
// The package sits below every other layer of the service — engine,
// registry and serve all feed it — so it depends on nothing but the
// standard library, and its hot-path surface is built to disappear:
// a nil *ParseTrace is a valid no-op receiver for every method, and a
// disabled Tracer hands out exactly that, so code under test for
// 0 allocs/op can keep its trace calls compiled in.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one phase of the parse lifecycle. Stages accumulate:
// a stage may be entered more than once per parse (e.g. StageForest is
// fed by both the engine's forest construction and the registry's
// disambiguation-filter pass) and the span records the total.
type Stage uint8

const (
	// StageTokenize is scanning/token resolution (registry).
	StageTokenize Stage = iota
	// StageAdmit is admission control: rate limiting + concurrency gate.
	StageAdmit
	// StageSelect is engine selection — auto entries may re-probe here.
	StageSelect
	// StageTable is table/chart work: the LR drive or Earley chart pass,
	// including lazy state expansion on the GLR path.
	StageTable
	// StageForest is forest construction, filtering and counting.
	StageForest
	// StageRender is human-facing rendering (expected sets, bracketed
	// forests) in the serve layer.
	StageRender
	// StageSplice is edit application on a document session: offset
	// validation plus tokenizing and splicing the inserted text.
	StageSplice
	// StageReuse is the incremental reparse of a document session —
	// chart truncation to the damage point plus the resumed drive.
	StageReuse
	// StageRepair is incremental table repair on a rule update: the
	// affected-state damage computation plus the in-place splice (or the
	// full regeneration a declined repair falls back to).
	StageRepair
	// StageComplete is completion-cursor work: accept-set queries plus
	// cursor feeds/restores on a prefix-completion request.
	StageComplete

	// NumStages is the number of lifecycle stages.
	NumStages = 10
)

// String names the stage as used in trace JSON and logs.
func (s Stage) String() string {
	switch s {
	case StageTokenize:
		return "tokenize"
	case StageAdmit:
		return "admit"
	case StageSelect:
		return "select"
	case StageTable:
		return "table"
	case StageForest:
		return "forest"
	case StageRender:
		return "render"
	case StageSplice:
		return "splice"
	case StageReuse:
		return "reuse"
	case StageRepair:
		return "repair"
	case StageComplete:
		return "complete"
	default:
		return "unknown"
	}
}

// Span is one finished parse's lifecycle record as retained in a ring.
type Span struct {
	// ID is the capture sequence number (monotonic per tracer).
	ID uint64
	// RequestID is the HTTP request the parse served ("" outside HTTP).
	RequestID string
	// Grammar and Engine attribute the parse to a tenant and backend.
	Grammar string
	Engine  string
	// Start is when the parse was admitted to tracing.
	Start time.Time
	// Total is the end-to-end duration; Stages breaks it down (stages
	// not on the path — e.g. render for recognize-only parses — are 0;
	// time between stages, like lock waits, appears only in Total).
	Total  time.Duration
	Stages [NumStages]time.Duration
	// Accepted/Err describe the outcome.
	Accepted bool
	Err      string
	// RepairedStates and RepairFallbacks describe table repairs absorbed
	// during the span (rule-update requests): how many states the
	// in-place splices touched, and how many updates declined repair and
	// regenerated instead. Zero for plain parses.
	RepairedStates  int
	RepairFallbacks int
	// Canceled is the cancellation reason when the parse was aborted
	// mid-drive ("" for completed parses); Panicked marks a parse whose
	// engine panicked and was quarantined into a structured error.
	Canceled string
	Panicked bool
	// Sampled marks spans captured by the 1-in-N sampler; Slow marks
	// spans retained because Total crossed the slow-parse threshold.
	// A span can be both.
	Sampled bool
	Slow    bool
}

// ParseTrace is the in-flight recorder for one parse. Obtain one from
// Tracer.StartParse, mark stages as the parse moves through its
// lifecycle, and call Finish exactly once. All methods are safe on a
// nil receiver (the disabled-tracing fast path), and traces are pooled,
// so steady-state tracing performs no allocations.
type ParseTrace struct {
	tracer *Tracer
	span   Span
	starts [NumStages]time.Time
	done   bool
}

// BeginStage marks entry into stage s. No-op on a nil trace.
func (t *ParseTrace) BeginStage(s Stage) {
	if t == nil {
		return
	}
	t.starts[s] = time.Now()
}

// EndStage accumulates the time since the matching BeginStage into
// stage s. Unmatched EndStage calls are ignored. No-op on a nil trace.
func (t *ParseTrace) EndStage(s Stage) {
	if t == nil || t.starts[s].IsZero() {
		return
	}
	t.span.Stages[s] += time.Since(t.starts[s])
	t.starts[s] = time.Time{}
}

// AddRepair accumulates one table repair's outcome into the span: the
// states the in-place splice touched and whether the repair declined
// and fell back to regeneration. No-op on a nil trace.
func (t *ParseTrace) AddRepair(states, fallbacks int) {
	if t == nil {
		return
	}
	t.span.RepairedStates += states
	t.span.RepairFallbacks += fallbacks
}

// MarkCanceled records that the parse was aborted mid-drive with the
// given cancellation reason. No-op on a nil trace.
func (t *ParseTrace) MarkCanceled(reason string) {
	if t == nil {
		return
	}
	t.span.Canceled = reason
}

// MarkPanicked records that the parse's engine panicked and the panic
// was quarantined into a structured error. No-op on a nil trace.
func (t *ParseTrace) MarkPanicked() {
	if t == nil {
		return
	}
	t.span.Panicked = true
}

// SetEngine records the concrete backend that served the parse (auto
// entries call it after selection). No-op on a nil trace.
func (t *ParseTrace) SetEngine(engine string) {
	if t == nil {
		return
	}
	t.span.Engine = engine
}

// Finish completes the trace: the span is retained in the sampled ring
// when the parse was sampled, and in the slow ring when its total
// crossed the tracer's slow-parse threshold (outliers are always kept,
// sampled or not). It reports which retentions happened, so callers can
// log slow parses. Safe on a nil trace (reports false, false) and
// idempotent.
func (t *ParseTrace) Finish(accepted bool, err error) (sampled, slow bool) {
	_, sampled, slow = t.FinishSpan(accepted, err)
	return sampled, slow
}

// FinishSpan is Finish for callers that need the completed span — e.g.
// to log a slow parse with its stage breakdown. The returned copy is
// taken before the trace goes back to its pool, so it stays valid after
// the trace is reused. The zero Span is returned for nil or
// already-finished traces.
func (t *ParseTrace) FinishSpan(accepted bool, err error) (sp Span, sampled, slow bool) {
	if t == nil || t.done {
		return Span{}, false, false
	}
	t.done = true
	t.span.Total = time.Since(t.span.Start)
	t.span.Accepted = accepted
	if err != nil {
		t.span.Err = err.Error()
	}
	sampled, slow = t.tracer.finish(t)
	// Copy before the pool put: once pooled, a concurrent StartParse may
	// reuse t and overwrite the span.
	sp = t.span
	t.tracer.pool.Put(t)
	return sp, sampled, slow
}

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// SampleEvery captures every Nth parse into the sampled ring
	// (1 = every parse, 0 = sampling off).
	SampleEvery int
	// SlowThreshold retains any parse at least this slow in the slow
	// ring, sampled or not (0 = slow capture off).
	SlowThreshold time.Duration
	// RingSize bounds the sampled ring (default 256); the slow ring is
	// a quarter of it (min 16).
	RingSize int
}

// Tracer owns the parse-lifecycle capture machinery: a pool of
// in-flight traces and two lock-free rings of finished spans (sampled
// and slow). A Tracer with neither sampling nor a slow threshold is
// disabled: StartParse returns nil and the parse path pays only a nil
// check. A nil *Tracer behaves as disabled too.
type Tracer struct {
	sampleEvery atomic.Int64
	slowNS      atomic.Int64

	seq      atomic.Uint64 // StartParse admissions, drives the sampler
	captured atomic.Uint64 // spans retained in the sampled ring
	slowSeen atomic.Uint64 // spans retained in the slow ring
	spanSeq  atomic.Uint64 // span ID source

	sampled *spanRing
	slow    *spanRing
	pool    sync.Pool
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = 256
	}
	slowSize := size / 4
	if slowSize < 16 {
		slowSize = 16
	}
	tr := &Tracer{
		sampled: newSpanRing(size),
		slow:    newSpanRing(slowSize),
	}
	tr.pool.New = func() any { return new(ParseTrace) }
	tr.sampleEvery.Store(int64(cfg.SampleEvery))
	tr.slowNS.Store(int64(cfg.SlowThreshold))
	return tr
}

// Enabled reports whether any capture (sampling or slow retention) is
// on. Safe on a nil tracer.
func (tr *Tracer) Enabled() bool {
	return tr != nil && (tr.sampleEvery.Load() > 0 || tr.slowNS.Load() > 0)
}

// SampleEvery returns the sampling period (0 = off). Safe on nil.
func (tr *Tracer) SampleEvery() int {
	if tr == nil {
		return 0
	}
	return int(tr.sampleEvery.Load())
}

// SlowThreshold returns the slow-parse threshold (0 = off). Safe on nil.
func (tr *Tracer) SlowThreshold() time.Duration {
	if tr == nil {
		return 0
	}
	return time.Duration(tr.slowNS.Load())
}

// StartParse begins tracing one parse. It returns nil — the universal
// no-op trace — when the tracer is disabled; otherwise the trace comes
// from a pool, so the unsampled-but-measured path stays allocation-free
// in steady state. Callers must Finish the returned trace.
func (tr *Tracer) StartParse(grammar, engine, requestID string) *ParseTrace {
	if !tr.Enabled() {
		return nil
	}
	n := tr.seq.Add(1)
	every := tr.sampleEvery.Load()
	sampled := every > 0 && n%uint64(every) == 0
	if !sampled && tr.slowNS.Load() <= 0 {
		return nil
	}
	t := tr.pool.Get().(*ParseTrace)
	*t = ParseTrace{tracer: tr}
	t.span.Grammar = grammar
	t.span.Engine = engine
	t.span.RequestID = requestID
	t.span.Sampled = sampled
	t.span.Start = time.Now()
	return t
}

func (tr *Tracer) finish(t *ParseTrace) (sampled, slow bool) {
	sampled = t.span.Sampled
	if slowNS := tr.slowNS.Load(); slowNS > 0 && int64(t.span.Total) >= slowNS {
		slow = true
	}
	t.span.Slow = slow
	if sampled || slow {
		t.span.ID = tr.spanSeq.Add(1)
	}
	if sampled {
		tr.captured.Add(1)
		tr.sampled.put(&t.span)
	}
	if slow {
		tr.slowSeen.Add(1)
		tr.slow.put(&t.span)
	}
	// The caller (FinishSpan) returns t to the pool after copying the
	// span out.
	return sampled, slow
}

// TracerStats are the tracer's lifetime counters for stats endpoints
// and /metrics.
type TracerStats struct {
	// Started counts parses admitted to StartParse while enabled.
	Started uint64
	// Captured counts spans retained in the sampled ring; Slow counts
	// spans retained in the slow ring.
	Captured uint64
	Slow     uint64
}

// Stats samples the tracer's counters. Safe on a nil tracer.
func (tr *Tracer) Stats() TracerStats {
	if tr == nil {
		return TracerStats{}
	}
	return TracerStats{
		Started:  tr.seq.Load(),
		Captured: tr.captured.Load(),
		Slow:     tr.slowSeen.Load(),
	}
}

// Snapshot returns the retained spans — slow outliers and sampled
// parses merged, newest first — optionally filtered by grammar
// (""  = all) and truncated to max (<=0 = no limit). Safe on a nil
// tracer (returns nil).
func (tr *Tracer) Snapshot(grammar string, max int) []Span {
	if tr == nil {
		return nil
	}
	spans := tr.slow.collect(nil)
	spans = tr.sampled.collect(spans)
	out := spans[:0]
	seen := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if grammar != "" && s.Grammar != grammar {
			continue
		}
		if seen[s.ID] { // a span can sit in both rings
			continue
		}
		seen[s.ID] = true
		out = append(out, s)
	}
	// Newest first: IDs are monotonic. Insertion sort — rings are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID > out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// spanRing is a fixed-capacity lock-free ring of spans. Writers claim a
// slot round-robin and publish with a per-slot seqlock (odd sequence =
// write in progress); readers retry slots caught mid-write. Writes are
// rare (sampled or slow parses only), so contention on a slot is
// effectively nil, but correctness never depends on that.
type spanRing struct {
	next  atomic.Uint64
	slots []ringSlot
}

type ringSlot struct {
	seq  atomic.Uint64
	span Span
}

func newSpanRing(size int) *spanRing {
	return &spanRing{slots: make([]ringSlot, size)}
}

func (r *spanRing) put(s *Span) {
	slot := &r.slots[(r.next.Add(1)-1)%uint64(len(r.slots))]
	for {
		v := slot.seq.Load()
		if v&1 == 0 && slot.seq.CompareAndSwap(v, v+1) {
			break // claimed
		}
	}
	slot.span = *s
	slot.seq.Add(1)
}

// collect appends consistent copies of the ring's occupied slots to out.
func (r *spanRing) collect(out []Span) []Span {
	for i := range r.slots {
		slot := &r.slots[i]
		for {
			v := slot.seq.Load()
			if v == 0 { // never written
				break
			}
			if v&1 == 1 { // mid-write; retry
				continue
			}
			s := slot.span
			if slot.seq.Load() == v {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

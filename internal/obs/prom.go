package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// This file is a hand-rolled Prometheus text-format (version 0.0.4)
// exposition writer — no client library, no external deps. The serve
// layer's /metrics endpoint gathers its families on each scrape from
// the registry's existing counters, so no instrumentation state lives
// here: the writer only knows how to render families, samples, label
// escaping and cumulative histogram series correctly.

// MetricType is a Prometheus family type.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// PromWriter streams Prometheus text format. Errors stick: the first
// write failure is remembered and reported by Flush.
type PromWriter struct {
	w   *bufio.Writer
	err error
}

// NewPromWriter wraps w for exposition writing.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

// Flush flushes buffered output and returns the first error seen.
func (p *PromWriter) Flush() error {
	if ferr := p.w.Flush(); p.err == nil {
		p.err = ferr
	}
	return p.err
}

func (p *PromWriter) print(s string) {
	if p.err != nil {
		return
	}
	_, p.err = p.w.WriteString(s)
}

// Family starts a metric family: the # HELP and # TYPE header lines.
// Samples for the family follow via the returned handle. Declare each
// family exactly once per exposition.
func (p *PromWriter) Family(name string, typ MetricType, help string) *Family {
	p.print("# HELP " + name + " " + escapeHelp(help) + "\n")
	p.print("# TYPE " + name + " " + string(typ) + "\n")
	return &Family{p: p, name: name}
}

// Family is a declared metric family accepting samples.
type Family struct {
	p    *PromWriter
	name string
}

// Sample emits one series sample. labels are alternating name/value
// pairs ("grammar", "calc", "engine", "lalr").
func (f *Family) Sample(value float64, labels ...string) {
	f.p.print(f.name + renderLabels(labels) + " " + formatFloat(value) + "\n")
}

// Histogram emits one full histogram series: cumulative _bucket lines
// for each upper bound (a final +Inf bucket is added), then _sum and
// _count. bounds[i] is the inclusive upper bound of counts[i] (counts
// are per-bucket, not cumulative; this method accumulates). Any
// observations beyond the last bound belong in overflow.
func (f *Family) Histogram(bounds []float64, counts []uint64, overflow uint64, sum float64, count uint64, labels ...string) {
	var cum uint64
	for i, bound := range bounds {
		cum += counts[i]
		f.p.print(f.name + `_bucket` + renderLabels(append(labels, "le", formatFloat(bound))) +
			" " + strconv.FormatUint(cum, 10) + "\n")
	}
	f.p.print(f.name + `_bucket` + renderLabels(append(labels, "le", "+Inf")) +
		" " + strconv.FormatUint(count, 10) + "\n")
	f.p.print(f.name + "_sum" + renderLabels(labels) + " " + formatFloat(sum) + "\n")
	f.p.print(f.name + "_count" + renderLabels(labels) + " " + strconv.FormatUint(count, 10) + "\n")
	_ = overflow // implied by count - cum; the +Inf bucket covers it
}

func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline (quotes are
// legal in help text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

package obs

import (
	"context"
	"runtime/pprof"
)

// WithProfileLabels runs f with pprof labels attributing the work to a
// grammar and engine, so CPU profiles of a multi-tenant service split
// by tenant (`go tool pprof -tag_focus=grammar=calc ...`). Labeling
// allocates a label set per call, so callers gate it behind a flag
// (the registry's SetProfileLabels) and the zero-alloc warm path never
// takes this function.
func WithProfileLabels(ctx context.Context, grammar, engine string, f func()) {
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels("grammar", grammar, "engine", engine), func(context.Context) { f() })
}

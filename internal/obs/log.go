package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// This file holds the structured-logging side of the observability
// layer: slog construction from the cmds' -log-level/-log-json flags,
// and request-ID generation/propagation so one request's log lines and
// trace spans correlate from the HTTP handler down through the
// registry and engine layers.

// ParseLevel reads a -log-level flag value.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NewLogger builds a slog.Logger writing to w at level, as JSON lines
// when jsonFormat is set and logfmt-style text otherwise.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// NopLogger returns a logger that discards everything — the default
// for library layers until a cmd wires a real one in.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// reqSeq numbers requests within this process; reqEpoch distinguishes
// processes so IDs do not collide across restarts.
var (
	reqSeq   atomic.Uint64
	reqEpoch = func() string {
		return strconv.FormatUint(uint64(time.Now().UnixNano())^uint64(os.Getpid())<<32, 36)
	}()
)

// NewRequestID mints a process-unique request ID (epoch-seq).
func NewRequestID() string {
	return reqEpoch + "-" + strconv.FormatUint(reqSeq.Add(1), 10)
}

// requestIDKey is the context key for request-ID propagation.
type requestIDKey struct{}

// WithRequestID attaches a request ID to ctx; the serve layer calls it
// in the HTTP middleware, and everything downstream (registry, engine,
// pprof labels, trace spans) can read it back with RequestID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID attached to ctx ("" when none).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

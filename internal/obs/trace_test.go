package obs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracerIsNil(t *testing.T) {
	var nilTracer *Tracer
	if nilTracer.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr := nilTracer.StartParse("g", "e", "r"); tr != nil {
		t.Error("nil tracer handed out a trace")
	}
	if spans := nilTracer.Snapshot("", 0); spans != nil {
		t.Error("nil tracer returned spans")
	}

	off := NewTracer(TracerConfig{})
	if off.Enabled() {
		t.Error("zero-config tracer reports enabled")
	}
	if tr := off.StartParse("g", "e", "r"); tr != nil {
		t.Error("disabled tracer handed out a trace")
	}

	// Every ParseTrace method must be a no-op on nil — the disabled
	// fast path keeps trace calls compiled into the hot path.
	var tr *ParseTrace
	tr.BeginStage(StageTable)
	tr.EndStage(StageTable)
	tr.SetEngine("glr")
	if s, sl := tr.Finish(true, nil); s || sl {
		t.Error("nil trace finished as captured")
	}
}

func TestSamplingOneInN(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 3, RingSize: 64})
	captured := 0
	for i := 0; i < 12; i++ {
		pt := tr.StartParse("calc", "lalr", "")
		if pt == nil {
			continue
		}
		pt.BeginStage(StageTable)
		pt.EndStage(StageTable)
		if sampled, _ := pt.Finish(true, nil); sampled {
			captured++
		}
	}
	if captured != 4 {
		t.Errorf("1-in-3 sampling captured %d of 12, want 4", captured)
	}
	spans := tr.Snapshot("", 0)
	if len(spans) != 4 {
		t.Fatalf("snapshot holds %d spans, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].ID > spans[i-1].ID {
			t.Error("snapshot not newest-first")
		}
	}
	if st := tr.Stats(); st.Captured != 4 || st.Started != 12 {
		t.Errorf("stats = %+v, want Captured 4, Started 12", st)
	}
}

func TestSlowParseAlwaysRetained(t *testing.T) {
	// Sampling effectively never fires; the slow threshold must retain
	// the outlier anyway.
	tr := NewTracer(TracerConfig{SampleEvery: 1 << 30, SlowThreshold: time.Microsecond})
	pt := tr.StartParse("calc", "glr", "req-1")
	if pt == nil {
		t.Fatal("slow-capture tracer refused a trace")
	}
	pt.BeginStage(StageTable)
	time.Sleep(2 * time.Millisecond)
	pt.EndStage(StageTable)
	sampled, slow := pt.Finish(false, errors.New("boom"))
	if sampled || !slow {
		t.Fatalf("finish = sampled %v slow %v, want false true", sampled, slow)
	}
	spans := tr.Snapshot("calc", 10)
	if len(spans) != 1 {
		t.Fatalf("want the one slow span, got %d", len(spans))
	}
	s := spans[0]
	if !s.Slow || s.Sampled || s.Err != "boom" || s.RequestID != "req-1" || s.Engine != "glr" {
		t.Errorf("slow span = %+v", s)
	}
	if s.Stages[StageTable] <= 0 || s.Total < s.Stages[StageTable] {
		t.Errorf("stage accounting: table %v total %v", s.Stages[StageTable], s.Total)
	}
	if got := tr.Snapshot("other", 0); len(got) != 0 {
		t.Errorf("grammar filter leaked %d spans", len(got))
	}
}

func TestStagesAccumulateAcrossReentry(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1})
	pt := tr.StartParse("g", "e", "")
	pt.BeginStage(StageForest)
	time.Sleep(time.Millisecond)
	pt.EndStage(StageForest)
	first := pt.span.Stages[StageForest]
	pt.BeginStage(StageForest)
	time.Sleep(time.Millisecond)
	pt.EndStage(StageForest)
	if pt.span.Stages[StageForest] <= first {
		t.Error("re-entered stage did not accumulate")
	}
	pt.EndStage(StageRender) // unmatched End must be ignored
	if pt.span.Stages[StageRender] != 0 {
		t.Error("unmatched EndStage recorded time")
	}
	pt.Finish(true, nil)
	if s, sl := pt.Finish(true, nil); s || sl {
		t.Error("double Finish retained again")
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1, RingSize: 16})
	for i := 0; i < 100; i++ {
		pt := tr.StartParse("g", "e", "")
		pt.Finish(true, nil)
	}
	spans := tr.Snapshot("", 0)
	if len(spans) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(spans))
	}
	if spans[0].ID != 100 || spans[15].ID != 85 {
		t.Errorf("ring kept IDs %d..%d, want 100..85", spans[0].ID, spans[15].ID)
	}
}

// TestConcurrentTraceAndSnapshot drives writers and readers together;
// run under -race it proves the seqlock ring publication.
func TestConcurrentTraceAndSnapshot(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1, SlowThreshold: time.Nanosecond, RingSize: 32})
	var writers sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				pt := tr.StartParse("g", "e", "r")
				pt.BeginStage(StageTable)
				pt.EndStage(StageTable)
				pt.Finish(i%2 == 0, nil)
			}
		}()
	}
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range tr.Snapshot("", 0) {
					if s.Grammar != "g" {
						t.Error("torn span escaped the seqlock")
						return
					}
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if st := tr.Stats(); st.Captured != 2000 {
		t.Errorf("captured %d, want 2000", st.Captured)
	}
}

// TestTraceAllocFree pins the tracing hot path's allocation budget:
// a disabled tracer costs nothing, and an enabled-but-unsampled parse
// (pool-recycled trace, slow-threshold measurement on) stays at zero
// steady-state allocations — the warm path's contract.
func TestTraceAllocFree(t *testing.T) {
	var nilTracer *Tracer
	if n := testing.AllocsPerRun(100, func() {
		pt := nilTracer.StartParse("g", "e", "")
		pt.BeginStage(StageTable)
		pt.EndStage(StageTable)
		pt.Finish(true, nil)
	}); n != 0 {
		t.Errorf("disabled tracer path allocates %v/op, want 0", n)
	}

	tr := NewTracer(TracerConfig{SampleEvery: 1 << 30, SlowThreshold: time.Hour})
	// Warm the pool.
	pt := tr.StartParse("g", "e", "")
	pt.Finish(true, nil)
	if n := testing.AllocsPerRun(100, func() {
		pt := tr.StartParse("g", "e", "")
		pt.BeginStage(StageAdmit)
		pt.EndStage(StageAdmit)
		pt.BeginStage(StageTable)
		pt.EndStage(StageTable)
		pt.Finish(true, nil)
	}); n != 0 {
		t.Errorf("enabled-unsampled trace path allocates %v/op, want 0", n)
	}
}

package obs

import (
	"strings"
	"testing"
)

func TestPromWriterFamiliesAndEscaping(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	c := pw.Family("ipg_parses_served_total", TypeCounter, "Parses served.")
	c.Sample(3, "grammar", "calc", "engine", "lalr")
	c.Sample(0, "grammar", `we"ird\name`+"\n", "engine", "glr")
	g := pw.Family("ipg_grammars", TypeGauge, `Registered grammars \ "live".`)
	g.Sample(2.5)
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP ipg_parses_served_total Parses served.\n",
		"# TYPE ipg_parses_served_total counter\n",
		`ipg_parses_served_total{grammar="calc",engine="lalr"} 3` + "\n",
		`ipg_parses_served_total{grammar="we\"ird\\name\n",engine="glr"} 0` + "\n",
		"# TYPE ipg_grammars gauge\n",
		`# HELP ipg_grammars Registered grammars \\ "live".` + "\n",
		"ipg_grammars 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestPromWriterHistogramCumulative(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	h := pw.Family("ipg_parse_latency_seconds", TypeHistogram, "Latency.")
	// Per-bucket counts 2,0,3 with bounds .001/.01/.1; 1 overflow obs.
	h.Histogram([]float64{0.001, 0.01, 0.1}, []uint64{2, 0, 3}, 1, 0.42, 6, "grammar", "calc")
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`ipg_parse_latency_seconds_bucket{grammar="calc",le="0.001"} 2`,
		`ipg_parse_latency_seconds_bucket{grammar="calc",le="0.01"} 2`,
		`ipg_parse_latency_seconds_bucket{grammar="calc",le="0.1"} 5`,
		`ipg_parse_latency_seconds_bucket{grammar="calc",le="+Inf"} 6`,
		`ipg_parse_latency_seconds_sum{grammar="calc"} 0.42`,
		`ipg_parse_latency_seconds_count{grammar="calc"} 6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative bucket lines must be monotonically non-decreasing and
	// end at the count — the property Prometheus rejects violations of.
	if strings.Count(out, "_bucket") != 4 {
		t.Errorf("want 4 bucket lines, got %d:\n%s", strings.Count(out, "_bucket"), out)
	}
}

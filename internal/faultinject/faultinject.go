// Package faultinject is a deterministic fault-injection harness for
// exercising the service's failure paths in tests and CI chaos runs:
// injected delays (to make a parse deliberately slow enough to hit its
// deadline), panics (to trip the quarantine breaker), write errors
// (to exercise snapshot retry), and cancellation at chosen token
// positions.
//
// Hooks are compiled into production code but atomically gated: when
// no fault is armed, a hook is a single atomic load. Faults are keyed
// by site name and fire deterministically — an optional position gate
// (At) and a shot budget (Times) make "panic on the next 3 parses,
// then recover" expressible without wall-clock or randomness.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipg/internal/cancel"
)

// Kind selects the effect of an armed fault.
type Kind uint8

const (
	// Delay sleeps for Fault.Delay at each fire.
	Delay Kind = iota
	// Panic panics with a recognizable message.
	Panic
	// Error makes Fire return ErrInjected.
	Error
	// Cancel fires the cancellation flag passed to Step.
	Cancel
)

func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case Panic:
		return "panic"
	case Error:
		return "error"
	case Cancel:
		return "cancel"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ErrInjected is returned by Fire for Error-kind faults.
var ErrInjected = errors.New("faultinject: injected error")

// Fault describes one armed fault.
type Fault struct {
	// Kind selects the effect.
	Kind Kind
	// Delay is the sleep duration for Delay faults.
	Delay time.Duration
	// At gates position-aware sites: the fault fires only when the
	// position passed to Step is >= At. Ignored by Fire.
	At int
	// Times bounds how often the fault fires; 0 means unlimited.
	// Exhausted faults go inert (the site recovers), which is how the
	// chaos harness expresses "panic three times, then heal".
	Times int64
}

type armedFault struct {
	f         Fault
	remaining atomic.Int64 // <0 = unlimited
	fired     atomic.Uint64
}

// take claims one shot; false when the budget is exhausted.
func (a *armedFault) take() bool {
	for {
		r := a.remaining.Load()
		if r < 0 {
			a.fired.Add(1)
			return true
		}
		if r == 0 {
			return false
		}
		if a.remaining.CompareAndSwap(r, r-1) {
			a.fired.Add(1)
			return true
		}
	}
}

var (
	armed  atomic.Bool
	mu     sync.RWMutex
	faults = map[string]*armedFault{}
)

// Armed reports whether any fault is armed. This is the hot-path gate:
// hooks bail out on a single atomic load when it is false.
func Armed() bool { return armed.Load() }

// Set arms fault f at site, replacing any previous fault there.
func Set(site string, f Fault) {
	a := &armedFault{f: f}
	if f.Times > 0 {
		a.remaining.Store(f.Times)
	} else {
		a.remaining.Store(-1)
	}
	mu.Lock()
	faults[site] = a
	armed.Store(true)
	mu.Unlock()
}

// Clear disarms the fault at site, if any.
func Clear(site string) {
	mu.Lock()
	delete(faults, site)
	armed.Store(len(faults) > 0)
	mu.Unlock()
}

// Reset disarms every fault and zeroes all counters.
func Reset() {
	mu.Lock()
	faults = map[string]*armedFault{}
	armed.Store(false)
	mu.Unlock()
}

func lookup(site string) *armedFault {
	mu.RLock()
	a := faults[site]
	mu.RUnlock()
	return a
}

// Fire triggers the fault armed at site, if any: Delay sleeps, Panic
// panics, Error returns ErrInjected. Position-gated kinds (Cancel) do
// nothing here — they only make sense at Step sites. Callers must
// check Armed() first so disabled builds pay one atomic load.
func Fire(site string) error {
	a := lookup(site)
	if a == nil {
		return nil
	}
	switch a.f.Kind {
	case Delay:
		if a.take() {
			time.Sleep(a.f.Delay)
		}
	case Panic:
		if a.take() {
			panic(fmt.Sprintf("faultinject: panic at %s", site))
		}
	case Error:
		if a.take() {
			return fmt.Errorf("%w (site %s)", ErrInjected, site)
		}
	}
	return nil
}

// Step triggers position-aware faults from a drive-loop checkpoint:
// Delay sleeps at every position >= At (making the parse deterministic
// slow from that point), Cancel fires fl with cancel.Injected once
// position reaches At. Callers must check Armed() first.
func Step(site string, pos int, fl *cancel.Flag) {
	a := lookup(site)
	if a == nil || pos < a.f.At {
		return
	}
	switch a.f.Kind {
	case Delay:
		if a.take() {
			time.Sleep(a.f.Delay)
		}
	case Cancel:
		if a.take() {
			fl.Cancel(cancel.Injected)
		}
	case Panic:
		if a.take() {
			panic(fmt.Sprintf("faultinject: panic at %s pos %d", site, pos))
		}
	}
}

// SiteCount reports how often one armed site has fired.
type SiteCount struct {
	Site  string
	Kind  Kind
	Fired uint64
}

// Stats returns fire counts for all armed sites, sorted by site name,
// for the ipg_fault_injections_total metrics family.
func Stats() []SiteCount {
	mu.RLock()
	out := make([]SiteCount, 0, len(faults))
	for site, a := range faults {
		out = append(out, SiteCount{Site: site, Kind: a.f.Kind, Fired: a.fired.Load()})
	}
	mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Parse decodes a -fault flag value of the form
//
//	site=kind[,d=DURATION][,at=N][,n=N]
//
// e.g. "drive.token=delay,d=1ms", "dispatch.parse=panic,n=3",
// "snapshot.save=error,n=2", "drive.token=cancel,at=50".
func Parse(spec string) (site string, f Fault, err error) {
	eq := strings.IndexByte(spec, '=')
	if eq <= 0 {
		return "", f, fmt.Errorf("faultinject: spec %q: want site=kind[,opts]", spec)
	}
	site = spec[:eq]
	parts := strings.Split(spec[eq+1:], ",")
	switch parts[0] {
	case "delay":
		f.Kind = Delay
	case "panic":
		f.Kind = Panic
	case "error":
		f.Kind = Error
	case "cancel":
		f.Kind = Cancel
	default:
		return "", f, fmt.Errorf("faultinject: spec %q: unknown kind %q", spec, parts[0])
	}
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return "", f, fmt.Errorf("faultinject: spec %q: bad option %q", spec, p)
		}
		switch k {
		case "d":
			d, derr := time.ParseDuration(v)
			if derr != nil {
				return "", f, fmt.Errorf("faultinject: spec %q: %v", spec, derr)
			}
			f.Delay = d
		case "at":
			n, nerr := strconv.Atoi(v)
			if nerr != nil {
				return "", f, fmt.Errorf("faultinject: spec %q: %v", spec, nerr)
			}
			f.At = n
		case "n":
			n, nerr := strconv.ParseInt(v, 10, 64)
			if nerr != nil {
				return "", f, fmt.Errorf("faultinject: spec %q: %v", spec, nerr)
			}
			f.Times = n
		default:
			return "", f, fmt.Errorf("faultinject: spec %q: unknown option %q", spec, k)
		}
	}
	if f.Kind == Delay && f.Delay <= 0 {
		return "", f, fmt.Errorf("faultinject: spec %q: delay needs d=DURATION", spec)
	}
	return site, f, nil
}

// Canonical site names. Production hooks reference these constants so
// tests and the -fault flag agree on spelling.
const (
	// SiteDispatch fires at engine dispatch, before the drive starts.
	SiteDispatch = "dispatch.parse"
	// SiteDriveToken fires at every drive-loop token checkpoint on
	// all engines (position-aware).
	SiteDriveToken = "drive.token"
	// SiteSnapshotSave fires before each snapshot store write.
	SiteSnapshotSave = "snapshot.save"
)

package core

import (
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/lr"
)

// TestPublishedActionsAllocFree pins the published-state ACTION path:
// once a state is expanded, looking up its actions through the
// append-style API is one atomic load plus appends into the caller's
// buffer — no heap allocation, no lock.
func TestPublishedActionsAllocFree(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)
	tr, _ := g.Symbols().Lookup("true")
	start := gen.Start()
	gen.Actions(start, tr) // expand + publish the start state
	if !start.Published() {
		t.Fatal("start state not published after Actions")
	}
	buf := make([]lr.Action, 0, 8)
	avg := testing.AllocsPerRun(200, func() {
		buf = gen.AppendActions(buf[:0], start, tr)
		if len(buf) == 0 {
			t.Fatal("no actions on published state")
		}
	})
	if avg != 0 {
		t.Errorf("published-path AppendActions allocates %.2f allocs/op, want 0", avg)
	}
}

// TestParseSessionAllocFree pins the batched-counter session: bracketing
// a parse and driving the table through it must not allocate, so pooled
// sessions give an allocation-free service hot path.
func TestParseSessionAllocFree(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)
	tr, _ := g.Symbols().Lookup("true")
	gen.Actions(gen.Start(), tr)
	var sess ParseSession
	buf := make([]lr.Action, 0, 8)
	avg := testing.AllocsPerRun(200, func() {
		sess.Begin(gen)
		buf = sess.AppendActions(buf[:0], gen.Start(), tr)
		sess.End()
	})
	if avg != 0 {
		t.Errorf("ParseSession parse bracket allocates %.2f allocs/op, want 0", avg)
	}
}

// TestParseSessionCounters checks the flush: local counts surface in the
// generator's shared counters exactly once, at End.
func TestParseSessionCounters(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)
	tr, _ := g.Symbols().Lookup("true")
	var sess ParseSession
	sess.Begin(gen)
	var buf []lr.Action
	buf = sess.AppendActions(buf, gen.Start(), tr)
	_ = buf
	mid := gen.Counters()
	if mid.ActionCalls != 0 || mid.ParsesServed != 0 {
		t.Fatalf("counters flushed early: %+v", mid)
	}
	sess.End()
	after := gen.Counters()
	if after.ActionCalls != 1 || after.ParsesServed != 1 {
		t.Fatalf("counters after End: %+v, want 1 action call and 1 parse", after)
	}
	// The first call expanded the state, so it cannot be a cache hit;
	// a second session over the published state must count one hit.
	sess.Begin(gen)
	buf = sess.AppendActions(buf[:0], gen.Start(), tr)
	sess.End()
	final := gen.Counters()
	if final.CacheHits != 1 || final.ActionCalls != 2 {
		t.Fatalf("counters after warm session: %+v, want 2 calls / 1 hit", final)
	}
}

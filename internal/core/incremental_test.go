package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"ipg/internal/fixtures"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// mustRule builds a rule from names: first the LHS, then the RHS. Symbols
// must already exist or be terminals to intern.
func mustRule(t *testing.T, g *grammar.Grammar, lhs string, rhs ...string) *grammar.Rule {
	t.Helper()
	l, ok := g.Symbols().Lookup(lhs)
	if !ok {
		t.Fatalf("unknown lhs %q", lhs)
	}
	syms := make([]grammar.Symbol, len(rhs))
	for i, name := range rhs {
		s, ok := g.Symbols().Lookup(name)
		if !ok {
			s = g.Symbols().MustIntern(name, grammar.Terminal)
		}
		syms[i] = s
	}
	return grammar.NewRule(l, syms...)
}

// TestFig61AddUnknown reproduces Fig 6.1/6.4/6.5: adding 'B ::= unknown'
// to the fully generated booleans graph invalidates exactly the states
// with a transition on B (0, the or-state and the and-state); re-expanding
// the start state re-establishes its old connections and creates the new
// unknown-successor.
func TestFig61AddUnknown(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, &Options{SweepThreshold: -1})
	gen.Pregenerate()
	if gen.Automaton().Len() != 8 {
		t.Fatalf("full booleans graph has %d states, want 8", gen.Automaton().Len())
	}

	syms := g.Symbols()
	b, _ := syms.Lookup("B")
	tr, _ := syms.Lookup("true")
	fa, _ := syms.Lookup("false")
	or, _ := syms.Lookup("or")
	and, _ := syms.Lookup("and")

	s0 := gen.Start()
	s1 := s0.Transitions[b]
	s2 := s0.Transitions[tr]
	s3 := s0.Transitions[fa]
	s4 := s1.Transitions[or]
	s5 := s1.Transitions[and]
	s6 := s4.Transitions[b]
	s7 := s5.Transitions[b]

	if err := gen.AddRule(mustRule(t, g, "B", "unknown")); err != nil {
		t.Fatal(err)
	}

	// Fig 6.4: exactly 0, 4 and 5 are invalidated (they had a transition
	// for B); the rest keeps its type.
	for _, tc := range []struct {
		s    *lr.State
		want lr.StateType
	}{
		{s0, lr.Dirty}, {s4, lr.Dirty}, {s5, lr.Dirty},
		{s1, lr.Complete}, {s2, lr.Complete}, {s3, lr.Complete},
		{s6, lr.Complete}, {s7, lr.Complete},
	} {
		if tc.s.Type != tc.want {
			t.Errorf("state %d type = %v, want %v", tc.s.ID, tc.s.Type, tc.want)
		}
	}

	// Fig 6.5: re-expansion of 0 re-establishes the connections with 1, 2
	// and 3 (same objects!) and creates the initial unknown-successor.
	unknown, _ := syms.Lookup("unknown")
	gen.Actions(s0, tr) // lazy re-expansion
	if s0.Transitions[b] != s1 || s0.Transitions[tr] != s2 || s0.Transitions[fa] != s3 {
		t.Error("re-expansion should reconnect the original states 1, 2, 3")
	}
	s8 := s0.Transitions[unknown]
	if s8 == nil || s8.Type != lr.Initial {
		t.Fatalf("unknown-successor missing or not initial: %v", s8)
	}
	if len(s8.Kernel) != 1 || s8.Kernel.String(syms) != "B ::= unknown ." {
		t.Errorf("unknown-successor kernel: %s", s8.Kernel.String(syms))
	}

	// The modified language is parsed correctly, reusing old states.
	if !parse(t, gen, "unknown and true") {
		t.Error("'unknown and true' should be accepted after the addition")
	}
	if !parse(t, gen, "true or unknown") {
		t.Error("'true or unknown' should be accepted after the addition")
	}
}

// TestFig63NonMonotonicUpdate reproduces Fig 6.2/6.3: in the a b / c b
// grammar, adding 'A ::= b' restructures the graph — the a-state's
// b-successor is replaced by a state recognizing both B ::= b and
// A ::= b, while the c-state keeps the old shared b-successor.
func TestFig63NonMonotonicUpdate(t *testing.T) {
	g := fixtures.AB()
	gen := New(g, &Options{SweepThreshold: -1})
	gen.Pregenerate()

	syms := g.Symbols()
	a, _ := syms.Lookup("a")
	bTok, _ := syms.Lookup("b")
	c, _ := syms.Lookup("c")

	sA := gen.Start().Transitions[a] // kernel D ::= a . A
	sC := gen.Start().Transitions[c] // kernel E ::= c . C
	old7 := sA.Transitions[bTok]     // kernel B ::= b .
	if old7 != sC.Transitions[bTok] {
		t.Fatal("original graph should share the b-successor (state 7 of Fig 6.2)")
	}

	if err := gen.AddRule(mustRule(t, g, "A", "b")); err != nil {
		t.Fatal(err)
	}
	// Only the a-state had a transition on A.
	if sA.Type != lr.Dirty {
		t.Error("a-state should be invalidated")
	}
	if sC.Type != lr.Complete || gen.Start().Type != lr.Complete {
		t.Error("c-state and start state should be untouched")
	}

	gen.Pregenerate()

	new8 := sA.Transitions[bTok]
	if new8 == old7 {
		t.Error("a-state's b-successor should be a new state")
	}
	if len(new8.Kernel) != 2 {
		t.Errorf("new b-successor kernel should hold B ::= b . and A ::= b .:\n%s",
			new8.Kernel.String(syms))
	}
	// "Set of items 7 and the transition of 2 to 7 are not affected."
	if sC.Transitions[bTok] != old7 {
		t.Error("c-state should keep the old b-successor")
	}
	if old7.Type != lr.Complete {
		t.Error("old b-successor should remain complete")
	}

	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"a b", true},
		{"c b", true},
		{"b", false},
		{"a b b", false},
	} {
		if got := parse(t, gen, tc.input); got != tc.want {
			t.Errorf("parse(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestDeleteRuleIncremental(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)
	gen.Pregenerate()

	if err := gen.DeleteRule(mustRule(t, g, "B", "B", "or", "B")); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"true and false", true},
		{"true or false", false},
		{"true", true},
	} {
		if got := parse(t, gen, tc.input); got != tc.want {
			t.Errorf("after delete: parse(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestDeleteThenReAdd(t *testing.T) {
	// "unless, of course, the new rule is discarded again" — deleting and
	// re-adding a rule reuses retained states.
	g := fixtures.Booleans()
	gen := New(g, &Options{SweepThreshold: -1})
	gen.Pregenerate()

	orRule := mustRule(t, g, "B", "B", "or", "B")
	if err := gen.DeleteRule(orRule); err != nil {
		t.Fatal(err)
	}
	if err := gen.AddRule(mustRule(t, g, "B", "B", "or", "B")); err != nil {
		t.Fatal(err)
	}
	if !parse(t, gen, "true or false") {
		t.Error("'true or false' should be accepted after re-adding the rule")
	}
	// Full equivalence with a from-scratch automaton.
	gen.Pregenerate()
	eager := lr.New(g.Clone())
	eager.GenerateAll()
	assertEquivalentReachable(t, gen.Automaton(), eager)
}

func TestStartRuleModification(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)
	gen.Pregenerate()

	bang := g.Symbols().MustIntern("!", grammar.Terminal)
	b, _ := g.Symbols().Lookup("B")
	if err := gen.AddRule(grammar.NewRule(g.Start(), b, bang)); err != nil {
		t.Fatal(err)
	}
	if len(gen.Start().Kernel) != 2 {
		t.Errorf("start kernel has %d items, want 2", len(gen.Start().Kernel))
	}
	if !parse(t, gen, "true !") {
		t.Error("'true !' should be accepted")
	}
	if !parse(t, gen, "true or false") {
		t.Error("original START rule should still work")
	}

	// Deleting the original START rule.
	if err := gen.DeleteRule(mustRule(t, g, "START", "B")); err != nil {
		t.Fatal(err)
	}
	if parse(t, gen, "true") {
		t.Error("'true' should be rejected after deleting START ::= B")
	}
	if !parse(t, gen, "false !") {
		t.Error("'false !' should still be accepted")
	}
}

func TestAddRuleErrorsLeaveGraphIntact(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)
	gen.Pregenerate()
	dump := gen.Automaton().Dump()

	if err := gen.AddRule(mustRule(t, g, "B", "true")); err == nil {
		t.Fatal("duplicate AddRule should fail")
	}
	if err := gen.DeleteRule(mustRule(t, g, "B", "nosuch")); err == nil {
		t.Fatal("DeleteRule of unknown rule should fail")
	}
	if gen.Automaton().Dump() != dump {
		t.Error("failed modifications must not change the graph")
	}
	if !parse(t, gen, "true or false") {
		t.Error("graph unusable after failed modifications")
	}
}

func TestAddGrammarComposition(t *testing.T) {
	// Section 8 "modular composition of parsers": merge a module's
	// grammar into a running generator.
	st := grammar.NewSymbolTable()
	base, err := grammar.Parse(`
START ::= E
E ::= "x"
`, st)
	if err != nil {
		t.Fatal(err)
	}
	module, err := grammar.Parse(`
START ::= E
E ::= E "+" E
E ::= "(" E ")"
`, st)
	if err != nil {
		t.Fatal(err)
	}
	gen := New(base, nil)
	if !parse(t, gen, "x") {
		t.Fatal("base grammar broken")
	}
	if parse(t, gen, "x + x") {
		t.Fatal("extension syntax should not parse yet")
	}
	n, err := gen.AddGrammar(module)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("AddGrammar added %d rules, want 2", n)
	}
	for _, input := range []string{"x", "x + x", "( x + x ) + x"} {
		if !parse(t, gen, input) {
			t.Errorf("%q should parse after composition", input)
		}
	}
}

// assertEquivalentReachable checks that the reachable parts of two
// (fully expanded) automatons are isomorphic: same kernels, same
// reductions, same accept flags, same transition structure.
func assertEquivalentReachable(t *testing.T, a, b *lr.Automaton) {
	t.Helper()
	type pair struct{ x, y *lr.State }
	match := map[*lr.State]*lr.State{}
	queue := []pair{{a.Start(), b.Start()}}
	match[a.Start()] = b.Start()
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		x, y := p.x, p.y
		if x.Kernel.Key() != y.Kernel.Key() {
			t.Fatalf("kernel mismatch:\n%s\n--- vs ---\n%s",
				x.Kernel.String(a.Grammar().Symbols()), y.Kernel.String(b.Grammar().Symbols()))
		}
		if x.Type != lr.Complete || y.Type != lr.Complete {
			t.Fatalf("states not complete: %v / %v (fully expand both first)", x.Type, y.Type)
		}
		if x.Accept != y.Accept {
			t.Fatalf("accept mismatch on kernel %s", x.Kernel.String(a.Grammar().Symbols()))
		}
		rx := ruleStrings(a, x.Reductions)
		ry := ruleStrings(b, y.Reductions)
		if rx != ry {
			t.Fatalf("reductions mismatch: %s vs %s", rx, ry)
		}
		if len(x.Transitions) != len(y.Transitions) {
			t.Fatalf("transition count mismatch on kernel %s", x.Kernel.String(a.Grammar().Symbols()))
		}
		for sym, xs := range x.Transitions {
			ys, ok := y.Transitions[sym]
			if !ok {
				t.Fatalf("missing transition on %s", a.Grammar().Symbols().Name(sym))
			}
			if prev, seen := match[xs]; seen {
				if prev != ys {
					t.Fatal("inconsistent state pairing (graphs not isomorphic)")
				}
				continue
			}
			match[xs] = ys
			queue = append(queue, pair{xs, ys})
		}
	}
}

func ruleStrings(a *lr.Automaton, rules []*grammar.Rule) string {
	out := make([]string, 0, len(rules))
	for _, r := range rules {
		out = append(out, r.String(a.Grammar().Symbols()))
	}
	sort.Strings(out)
	return strings.Join(out, ";")
}

// randomModifications applies n random rule additions/deletions to a
// generator and mirrors them in the returned grammar clone.
func applyRandomModifications(gen *Generator, rng *rand.Rand, n int) {
	g := gen.Grammar()
	syms := g.Symbols()
	var nts []grammar.Symbol
	for _, s := range syms.Nonterminals() {
		if s != g.Start() {
			nts = append(nts, s)
		}
	}
	var pool []grammar.Symbol
	pool = append(pool, nts...)
	for _, s := range syms.Terminals() {
		if s != grammar.EOF {
			pool = append(pool, s)
		}
	}
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 && g.Len() > 1 {
			// Delete a random non-START rule (keep START so the
			// automaton stays meaningful).
			rules := g.Rules()
			r := rules[rng.Intn(len(rules))]
			if r.Lhs == g.Start() {
				continue
			}
			if err := gen.DeleteRule(r); err != nil {
				panic(err)
			}
			continue
		}
		lhs := nts[rng.Intn(len(nts))]
		rhs := make([]grammar.Symbol, rng.Intn(4))
		for j := range rhs {
			rhs[j] = pool[rng.Intn(len(pool))]
		}
		r := grammar.NewRule(lhs, rhs...)
		if g.Has(r) {
			continue
		}
		if err := gen.AddRule(r); err != nil {
			panic(err)
		}
	}
}

// Property: after any sequence of random modifications, the incrementally
// maintained graph (fully expanded) is isomorphic to a from-scratch
// conventional generation for the final grammar.
func TestIncrementalEquivalentToScratch(t *testing.T) {
	for _, policy := range []Policy{PolicyRefCount, PolicyRetainAll, PolicyEagerSweep} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				g := grammar.Random(grammar.RandConfig{Nonterminals: 3, Terminals: 3, Rules: 6}, rng)
				gen := New(g, &Options{Policy: policy})
				gen.Pregenerate() // specialize fully toward the old grammar
				applyRandomModifications(gen, rng, 4)
				gen.Pregenerate()

				eager := lr.New(g.Clone())
				eager.GenerateAll()
				assertEquivalentReachable(t, gen.Automaton(), eager)
				return true
			}
			if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: the lazily driven incremental generator accepts exactly the
// sentences a from-scratch eager table accepts, including after
// modifications, without ever pregenerating.
func TestIncrementalParseEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grammar.Random(grammar.RandConfig{Nonterminals: 3, Terminals: 3, Rules: 6}, rng)
		gen := New(g, nil)
		// Parse a little to trigger partial generation.
		if sent, ok := g.RandomSentence(rng, 8); ok {
			if _, err := glr.Recognize(gen, sent, glr.GSS); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		applyRandomModifications(gen, rng, 3)

		eager := lr.New(g.Clone())
		eager.GenerateAll()

		for i := 0; i < 10; i++ {
			var input []grammar.Symbol
			if sent, ok := g.RandomSentence(rng, 8); ok && rng.Intn(2) == 0 {
				input = sent
				if rng.Intn(2) == 0 && len(input) > 0 {
					// Perturb: drop a token.
					k := rng.Intn(len(input))
					input = append(append([]grammar.Symbol{}, input[:k]...), input[k+1:]...)
				}
			} else {
				// Random token soup.
				terms := g.Symbols().Terminals()
				for j := 0; j < rng.Intn(6); j++ {
					s := terms[rng.Intn(len(terms))]
					if s == grammar.EOF {
						continue
					}
					input = append(input, s)
				}
			}
			gotLazy, err := glr.Recognize(gen, input, glr.GSS)
			if err != nil {
				t.Fatalf("seed %d lazy: %v", seed, err)
			}
			gotEager, err := glr.Recognize(eager, input, glr.GSS)
			if err != nil {
				t.Fatalf("seed %d eager: %v", seed, err)
			}
			if gotLazy != gotEager {
				t.Fatalf("seed %d: acceptance mismatch on %s: lazy=%v eager=%v",
					seed, g.Symbols().NamesOf(input), gotLazy, gotEager)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

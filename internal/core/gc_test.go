package core

import (
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// TestXorRemovesUnreusableStates reproduces the section 6.2 example: when
// 'B ::= B xor B' is added to the fully generated booleans graph, the old
// B-successor and the or/and result states (1, 6 and 7 in Fig 4.1) can
// never be re-used — their kernels lack the xor item — and reference
// counting removes them once re-expansion releases them. The or- and
// and-states (4, 5) are re-used because their kernels are unchanged.
func TestXorRemovesUnreusableStates(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, &Options{SweepThreshold: -1})
	gen.Pregenerate()

	syms := g.Symbols()
	b, _ := syms.Lookup("B")
	tr, _ := syms.Lookup("true")
	fa, _ := syms.Lookup("false")
	or, _ := syms.Lookup("or")
	and, _ := syms.Lookup("and")
	s0 := gen.Start()
	s1 := s0.Transitions[b]
	s2 := s0.Transitions[tr]
	s3 := s0.Transitions[fa]
	s4 := s1.Transitions[or]
	s5 := s1.Transitions[and]
	s6 := s4.Transitions[b]
	s7 := s5.Transitions[b]

	if err := gen.AddRule(mustRule(t, g, "B", "B", "xor", "B")); err != nil {
		t.Fatal(err)
	}
	gen.Pregenerate()

	// The old states 1, 6, 7 are gone from Itemsets.
	for _, victim := range []*lr.State{s1, s6, s7} {
		if got, ok := gen.Automaton().Lookup(victim.Kernel); ok && got == victim {
			t.Errorf("state %d should have been collected", victim.ID)
		}
	}
	if gen.Coverage().StatesRemoved != 3 {
		t.Errorf("StatesRemoved = %d, want 3", gen.Coverage().StatesRemoved)
	}
	// States 2, 3 (true/false) and 4, 5 (or/and) are re-used.
	if s0.Transitions[tr] != s2 || s0.Transitions[fa] != s3 {
		t.Error("true/false states should be re-used")
	}
	newS1 := s0.Transitions[b]
	if newS1 == s1 {
		t.Error("B-successor should be a new state (kernel gained the xor item)")
	}
	if newS1.Transitions[or] != s4 || newS1.Transitions[and] != s5 {
		t.Error("or/and states should be re-used (kernels unchanged)")
	}
	// Full graph of the extended booleans: 10 states.
	if gen.Automaton().Len() != 10 {
		t.Errorf("extended graph has %d states, want 10\n%s",
			gen.Automaton().Len(), gen.Automaton().Dump())
	}

	for _, input := range []string{"true xor false", "true xor true and false", "true or true xor true"} {
		if !parse(t, gen, input) {
			t.Errorf("%q should be accepted", input)
		}
	}
}

// TestCycleLeakAndMarkSweep: deleting 'B ::= B or B' strands the or-state
// and the or-result state (4 and 6), which reference each other — a
// reference cycle the paper's counting admittedly cannot reclaim ("our
// implementation of garbage collection cannot yet handle circular
// references properly"). The mark-and-sweep fallback removes them.
func TestCycleLeakAndMarkSweep(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, &Options{SweepThreshold: -1})
	gen.Pregenerate()

	syms := g.Symbols()
	b, _ := syms.Lookup("B")
	or, _ := syms.Lookup("or")
	s1 := gen.Start().Transitions[b]
	s4 := s1.Transitions[or]
	s6 := s4.Transitions[b]

	if err := gen.DeleteRule(mustRule(t, g, "B", "B", "or", "B")); err != nil {
		t.Fatal(err)
	}
	gen.Pregenerate()

	// The cycle 4 <-> 6 leaks under pure reference counting: both are
	// unreachable yet still interned.
	leaked4, ok4 := gen.Automaton().Lookup(s4.Kernel)
	leaked6, ok6 := gen.Automaton().Lookup(s6.Kernel)
	if !ok4 || leaked4 != s4 || !ok6 || leaked6 != s6 {
		t.Fatalf("expected states 4 and 6 to leak before the sweep (refcounts: %d, %d)",
			s4.RefCount, s6.RefCount)
	}

	removed := gen.MarkSweep()
	if removed < 2 {
		t.Errorf("MarkSweep removed %d states, want at least the 4<->6 cycle", removed)
	}
	if _, ok := gen.Automaton().Lookup(s4.Kernel); ok {
		t.Error("or-state should be swept")
	}
	if _, ok := gen.Automaton().Lookup(s6.Kernel); ok {
		t.Error("or-result state should be swept")
	}

	// The swept graph still parses the and-only language.
	if !parse(t, gen, "true and false and true") {
		t.Error("'true and false and true' should be accepted")
	}
	if parse(t, gen, "true or false") {
		t.Error("'true or false' should be rejected after the deletion")
	}

	// And the graph equals a from-scratch build.
	gen.Pregenerate()
	eager := lr.New(g.Clone())
	eager.GenerateAll()
	assertEquivalentReachable(t, gen.Automaton(), eager)
}

func TestAutoSweepThreshold(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, &Options{SweepThreshold: 0.2})
	gen.Pregenerate()
	// A modification dirtying 3 of 8 states exceeds the 0.2 threshold and
	// triggers an automatic sweep.
	if err := gen.AddRule(mustRule(t, g, "B", "unknown")); err != nil {
		t.Fatal(err)
	}
	if gen.Sweeps == 0 {
		t.Error("automatic mark-and-sweep should have triggered")
	}
	if !parse(t, gen, "unknown or true") {
		t.Error("parse after auto-sweep failed")
	}
}

func TestPolicyRetainAllKeepsGarbage(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, &Options{Policy: PolicyRetainAll})
	gen.Pregenerate()

	if err := gen.DeleteRule(mustRule(t, g, "B", "B", "or", "B")); err != nil {
		t.Fatal(err)
	}
	gen.Pregenerate()

	if gen.Coverage().StatesRemoved != 0 {
		t.Errorf("retain-all removed %d states", gen.Coverage().StatesRemoved)
	}
	// 8 original states: 1, 6, 7 replaced by 2 new ones (B-successor and
	// and-result without the or item), 4 stranded but retained => 10.
	if gen.Automaton().Len() != 10 {
		t.Errorf("retain-all graph has %d states, want 10", gen.Automaton().Len())
	}
	if !parse(t, gen, "true and true") || parse(t, gen, "true or true") {
		t.Error("retain-all parse behaviour wrong after delete")
	}
}

func TestPolicyEagerSweepThrowsAwayTooMuch(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, &Options{Policy: PolicyEagerSweep})
	gen.Pregenerate()
	if gen.Automaton().Len() != 8 {
		t.Fatalf("full graph: %d states", gen.Automaton().Len())
	}

	// Invalidating the start state makes everything unreachable; eager
	// sweeping drops the whole graph — "it is likely that too much is
	// thrown away".
	if err := gen.AddRule(mustRule(t, g, "B", "unknown")); err != nil {
		t.Fatal(err)
	}
	if gen.Automaton().Len() != 1 {
		t.Errorf("eager sweep retained %d states, want 1 (start only)", gen.Automaton().Len())
	}
	// Everything must be regenerated, but behaviour is still correct.
	if !parse(t, gen, "unknown and true") {
		t.Error("parse after eager sweep failed")
	}
	ex := gen.Coverage().Expansions
	gen.Pregenerate()
	if gen.Coverage().Expansions == ex {
		// Pregenerate after the parse should still have had work left —
		// the parse only expanded part of the graph.
		t.Log("note: parse already expanded the full graph")
	}
	eager := lr.New(g.Clone())
	eager.GenerateAll()
	assertEquivalentReachable(t, gen.Automaton(), eager)
}

func TestRefCountsConsistentAfterModifications(t *testing.T) {
	// After arbitrary modifications and full expansion, every interned
	// state's reference count equals its in-degree (+1 for the start
	// state), counting dirty history edges.
	g := fixtures.Booleans()
	gen := New(g, &Options{SweepThreshold: -1})
	gen.Pregenerate()
	mods := []struct {
		del bool
		r   *grammar.Rule
	}{
		{false, mustRule(t, g, "B", "unknown")},
		{false, mustRule(t, g, "B", "B", "xor", "B")},
		{true, mustRule(t, g, "B", "false")},
		{true, mustRule(t, g, "B", "B", "xor", "B")},
	}
	for _, m := range mods {
		var err error
		if m.del {
			err = gen.DeleteRule(m.r)
		} else {
			err = gen.AddRule(m.r)
		}
		if err != nil {
			t.Fatal(err)
		}
		gen.Pregenerate()

		want := map[*lr.State]int{gen.Start(): 1}
		for _, s := range gen.Automaton().States() {
			for _, succ := range s.Transitions {
				want[succ]++
			}
			for _, succ := range s.OldTransitions {
				want[succ]++
			}
		}
		for _, s := range gen.Automaton().States() {
			if s.RefCount != want[s] {
				t.Fatalf("after %v: state %d refcount %d, want %d\n%s",
					m, s.ID, s.RefCount, want[s], gen.Automaton().Dump())
			}
		}
	}
}

func TestMarkSweepIdempotent(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, &Options{SweepThreshold: -1})
	gen.Pregenerate()
	if removed := gen.MarkSweep(); removed != 0 {
		t.Errorf("sweep of fully reachable graph removed %d states", removed)
	}
	if removed := gen.MarkSweep(); removed != 0 {
		t.Errorf("second sweep removed %d states", removed)
	}
	if !parse(t, gen, "true or false") {
		t.Error("parse after no-op sweeps failed")
	}
}

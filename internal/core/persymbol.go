package core

import (
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// PerSymbolGenerator is the finer-grained laziness the paper considered
// and rejected in section 5.3: "it is unnecessary to expand an entire set
// of items at once, since only that part has to be expanded that is
// needed to deduce the actions for the specific symbol with which ACTION
// was called. However, the additional administrative overhead incurred
// (For what symbols has the set of items already been expanded? What was
// the closure of the kernel?) turned out to be so large that no net gain
// in efficiency was to be expected."
//
// This implementation exists to reproduce that ablation: it caches the
// closure per state and materializes transitions one symbol at a time.
// BenchmarkAblationPerSymbol compares it against the state-at-a-time
// generator. It supports lazy generation only (no incremental
// modification).
type PerSymbolGenerator struct {
	g    *grammar.Grammar
	auto *lr.Automaton

	partial map[*lr.State]*partialState

	// Stats counters for the administrative-overhead comparison.
	Closures, SymbolExpansions int
}

// partialState is the section 5.3 administration: the memoized closure
// and the per-symbol expansion ledger.
type partialState struct {
	closure []lr.Item
	done    map[grammar.Symbol]bool
	// moved groups the closure by symbol after the dot, computed along
	// with the closure.
	moved map[grammar.Symbol][]lr.Item
	// reductions and accept are derived once, with the closure.
	reductions []*grammar.Rule
	accept     bool
}

// NewPerSymbol returns a per-symbol lazy generator for g.
func NewPerSymbol(g *grammar.Grammar) *PerSymbolGenerator {
	return &PerSymbolGenerator{
		g:       g,
		auto:    lr.New(g),
		partial: map[*lr.State]*partialState{},
	}
}

// Grammar implements lr.Table.
func (gen *PerSymbolGenerator) Grammar() *grammar.Grammar { return gen.g }

// Start implements lr.Table.
func (gen *PerSymbolGenerator) Start() *lr.State { return gen.auto.Start() }

// Automaton exposes the underlying graph for statistics.
func (gen *PerSymbolGenerator) Automaton() *lr.Automaton { return gen.auto }

func (gen *PerSymbolGenerator) ensureClosure(s *lr.State) *partialState {
	if p, ok := gen.partial[s]; ok {
		return p
	}
	gen.Closures++
	p := &partialState{
		done:  map[grammar.Symbol]bool{},
		moved: map[grammar.Symbol][]lr.Item{},
	}
	p.closure = lr.Closure(gen.g, s.Kernel)
	for _, it := range p.closure {
		sym := it.AfterDot()
		if sym == grammar.NoSymbol {
			if it.Rule.Lhs == gen.g.Start() {
				p.accept = true
			} else {
				p.reductions = append(p.reductions, it.Rule)
			}
			continue
		}
		p.moved[sym] = append(p.moved[sym], it.Advance())
	}
	if s.Transitions == nil {
		s.Transitions = map[grammar.Symbol]*lr.State{}
	}
	gen.partial[s] = p
	return p
}

// expandSymbol materializes the transition of s on sym, if any.
func (gen *PerSymbolGenerator) expandSymbol(s *lr.State, sym grammar.Symbol) {
	p := gen.ensureClosure(s)
	if p.done[sym] {
		return
	}
	p.done[sym] = true
	gen.SymbolExpansions++
	items, ok := p.moved[sym]
	if !ok {
		return
	}
	succ := gen.auto.Intern(lr.NewKernel(items))
	s.Transitions[sym] = succ
	succ.RefCount++
}

// Actions implements lr.Table with symbol-granular laziness.
func (gen *PerSymbolGenerator) Actions(s *lr.State, sym grammar.Symbol) []lr.Action {
	return gen.AppendActions(make([]lr.Action, 0, 2), s, sym)
}

// AppendActions implements lr.Table: Actions into a caller-supplied
// buffer.
func (gen *PerSymbolGenerator) AppendActions(dst []lr.Action, s *lr.State, sym grammar.Symbol) []lr.Action {
	p := gen.ensureClosure(s)
	gen.expandSymbol(s, sym)
	for _, r := range p.reductions {
		dst = append(dst, lr.Action{Kind: lr.Reduce, Rule: r})
	}
	if succ, ok := s.Transitions[sym]; ok {
		dst = append(dst, lr.Action{Kind: lr.Shift, State: succ})
	}
	if sym == grammar.EOF && p.accept {
		dst = append(dst, lr.Action{Kind: lr.Accept})
	}
	return dst
}

// Goto implements lr.Table. Unlike the state-at-a-time generator, GOTO
// here may need to materialize the nonterminal transition first — more
// of the administrative overhead the paper warns about.
func (gen *PerSymbolGenerator) Goto(s *lr.State, sym grammar.Symbol) *lr.State {
	gen.expandSymbol(s, sym)
	succ, ok := s.Transitions[sym]
	if !ok {
		panic("core: per-symbol GOTO undefined")
	}
	return succ
}

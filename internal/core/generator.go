// Package core implements IPG, the lazy and incremental parser generator
// that is the contribution of Heering, Klint & Rekers, "Incremental
// Generation of Parsers" (CWI CS-R8822, 1988 / PLDI 1989).
//
// A Generator wraps the LR(0) graph of item sets of internal/lr and
// drives it in two ways:
//
//   - Lazily (section 5): the graph starts with only the start state; the
//     ACTION function expands initial states to complete states by need
//     while the parser runs. Once all needed parts are generated, parsing
//     is exactly as fast as with a conventionally generated table.
//
//   - Incrementally (section 6): AddRule and DeleteRule update the grammar
//     and invalidate precisely the states whose closures are affected —
//     the complete states holding a transition on the modified rule's
//     left-hand side — by making them initial (or dirty) again. The lazy
//     machinery re-expands them by need; everything else is reused.
//
// Garbage collection (section 6.2) is selectable via Policy: retain all
// states forever, reference counting with deferred removal plus a
// mark-and-sweep fallback for cycles, or eager sweeping after every
// modification (the ablation the paper argues against).
package core

import (
	"fmt"

	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// Policy selects the garbage-collection strategy of section 6.2.
type Policy uint8

const (
	// PolicyRefCount is the paper's compromise (default): modifications
	// mark states dirty (initial with history); re-expansion releases
	// references the new expansion no longer creates; states whose
	// reference count reaches zero are removed, cascading. Reference
	// cycles are reclaimed by an explicit or threshold-triggered
	// mark-and-sweep.
	PolicyRefCount Policy = iota
	// PolicyRetainAll is plain section 6.1 MODIFY: affected states are
	// made initial and nothing is ever removed. Repeated modification
	// accumulates garbage ("we end up with too much garbage in
	// Itemsets").
	PolicyRetainAll
	// PolicyEagerSweep removes all unreachable states immediately after
	// every modification — the other horn of the paper's dilemma ("it is
	// likely that too much is thrown away").
	PolicyEagerSweep
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRefCount:
		return "refcount"
	case PolicyRetainAll:
		return "retain-all"
	case PolicyEagerSweep:
		return "eager-sweep"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Options configures a Generator.
type Options struct {
	// Policy is the garbage-collection strategy (default PolicyRefCount).
	Policy Policy
	// SweepThreshold triggers an automatic mark-and-sweep after a
	// modification when, under PolicyRefCount, the fraction of states
	// that are dirty or unreachable-suspect exceeds it. 0 means the
	// default of 0.5; negative disables automatic sweeps.
	SweepThreshold float64
}

func (o *Options) policy() Policy {
	if o == nil {
		return PolicyRefCount
	}
	return o.Policy
}

func (o *Options) sweepThreshold() float64 {
	if o == nil || o.SweepThreshold == 0 {
		return 0.5
	}
	return o.SweepThreshold
}

// Generator is the incremental parser generator IPG. It implements
// lr.Table, so any engine of internal/glr can be driven by it directly;
// table generation happens inside Actions, during parsing.
//
// All grammar modifications must go through AddRule/DeleteRule (or
// AddGrammar); mutating the grammar behind the generator's back is a
// programming error that Actions detects and reports by panicking.
type Generator struct {
	auto      *lr.Automaton
	g         *grammar.Grammar
	policy    Policy
	threshold float64
	version   uint64

	// Sweeps counts mark-and-sweep passes (for the GC ablation).
	Sweeps int
}

// New builds the first part of the graph of item sets for g — only the
// start state, as an initial set of items (GENERATE-PARSER, section 5.1) —
// and returns the generator ready for parsing. No table generation work
// happens until the first Actions call.
func New(g *grammar.Grammar, opts *Options) *Generator {
	return NewFromAutomaton(lr.New(g), opts)
}

// NewFromAutomaton wraps an existing graph of item sets — typically one
// reloaded with lr.Load — so a session can resume with the table parts an
// earlier session already generated. The automaton's grammar must not
// have been modified since the graph was built.
func NewFromAutomaton(a *lr.Automaton, opts *Options) *Generator {
	return &Generator{
		auto:      a,
		g:         a.Grammar(),
		policy:    opts.policy(),
		threshold: opts.sweepThreshold(),
		version:   a.Grammar().Version(),
	}
}

// Grammar returns the generator's grammar. Do not modify it directly; use
// AddRule/DeleteRule.
func (gen *Generator) Grammar() *grammar.Grammar { return gen.g }

// Automaton exposes the underlying graph of item sets for inspection
// (dump, table rendering, state counts).
func (gen *Generator) Automaton() *lr.Automaton { return gen.auto }

// Policy returns the garbage-collection policy.
func (gen *Generator) Policy() Policy { return gen.policy }

// Start implements lr.Table.
func (gen *Generator) Start() *lr.State {
	gen.checkVersion()
	return gen.auto.Start()
}

// Actions implements lr.Table: the lazy ACTION of section 5.1. When the
// state is still initial (or dirty after a modification) it is expanded
// first; the action set is then deduced from the transitions and
// reductions fields.
func (gen *Generator) Actions(s *lr.State, sym grammar.Symbol) []lr.Action {
	gen.checkVersion()
	gen.ensureComplete(s)
	return lr.ActionsOf(s, sym)
}

// Goto implements lr.Table. Appendix A proves GOTO is only called on
// complete states — also under lazy generation — so no expansion happens
// here; the invariant is checked by lr.GotoOf.
func (gen *Generator) Goto(s *lr.State, sym grammar.Symbol) *lr.State {
	return lr.GotoOf(s, sym)
}

// ensureComplete expands an initial or dirty state in place.
func (gen *Generator) ensureComplete(s *lr.State) {
	switch s.Type {
	case lr.Complete:
	case lr.Initial:
		gen.auto.Expand(s)
	case lr.Dirty:
		gen.reExpand(s)
	}
}

func (gen *Generator) checkVersion() {
	if gen.g.Version() != gen.version {
		panic(fmt.Sprintf("core: grammar modified behind the generator's back (version %d, generator saw %d); use Generator.AddRule/DeleteRule",
			gen.g.Version(), gen.version))
	}
}

// Pregenerate expands every state reachable from the start state,
// producing the same table a conventional generator would (useful for
// measuring lazy coverage and for warm-start comparisons). Unreachable
// garbage retained by the GC policy is not expanded.
func (gen *Generator) Pregenerate() {
	gen.checkVersion()
	seen := map[*lr.State]bool{}
	queue := []*lr.State{gen.auto.Start()}
	seen[gen.auto.Start()] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		gen.ensureComplete(s)
		for _, sym := range s.TransitionSymbols() {
			succ := s.Transitions[sym]
			if !seen[succ] {
				seen[succ] = true
				queue = append(queue, succ)
			}
		}
	}
}

// CoverageStats describes how much of the parse table has been generated —
// the measurement behind the section 5.2 claim that parsing the SDF
// definition of SDF needs only ~60% of the SDF table.
type CoverageStats struct {
	// Initial, Complete, Dirty count current states by type.
	Initial, Complete, Dirty int
	// Expansions is the total number of EXPAND calls so far.
	Expansions int
	// StatesCreated / StatesRemoved track graph churn.
	StatesCreated, StatesRemoved int
}

// Coverage reports generation progress.
func (gen *Generator) Coverage() CoverageStats {
	i, c, d := gen.auto.TypeCounts()
	return CoverageStats{
		Initial:       i,
		Complete:      c,
		Dirty:         d,
		Expansions:    gen.auto.Stats.Expansions,
		StatesCreated: gen.auto.Stats.StatesCreated,
		StatesRemoved: gen.auto.Stats.StatesRemoved,
	}
}

// Package core implements IPG, the lazy and incremental parser generator
// that is the contribution of Heering, Klint & Rekers, "Incremental
// Generation of Parsers" (CWI CS-R8822, 1988 / PLDI 1989).
//
// A Generator wraps the LR(0) graph of item sets of internal/lr and
// drives it in two ways:
//
//   - Lazily (section 5): the graph starts with only the start state; the
//     ACTION function expands initial states to complete states by need
//     while the parser runs. Once all needed parts are generated, parsing
//     is exactly as fast as with a conventionally generated table.
//
//   - Incrementally (section 6): AddRule and DeleteRule update the grammar
//     and invalidate precisely the states whose closures are affected —
//     the complete states holding a transition on the modified rule's
//     left-hand side — by making them initial (or dirty) again. The lazy
//     machinery re-expands them by need; everything else is reused.
//
// Garbage collection (section 6.2) is selectable via Policy: retain all
// states forever, reference counting with deferred removal plus a
// mark-and-sweep fallback for cycles, or eager sweeping after every
// modification (the ablation the paper argues against).
package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// Policy selects the garbage-collection strategy of section 6.2.
type Policy uint8

const (
	// PolicyRefCount is the paper's compromise (default): modifications
	// mark states dirty (initial with history); re-expansion releases
	// references the new expansion no longer creates; states whose
	// reference count reaches zero are removed, cascading. Reference
	// cycles are reclaimed by an explicit or threshold-triggered
	// mark-and-sweep.
	PolicyRefCount Policy = iota
	// PolicyRetainAll is plain section 6.1 MODIFY: affected states are
	// made initial and nothing is ever removed. Repeated modification
	// accumulates garbage ("we end up with too much garbage in
	// Itemsets").
	PolicyRetainAll
	// PolicyEagerSweep removes all unreachable states immediately after
	// every modification — the other horn of the paper's dilemma ("it is
	// likely that too much is thrown away").
	PolicyEagerSweep
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRefCount:
		return "refcount"
	case PolicyRetainAll:
		return "retain-all"
	case PolicyEagerSweep:
		return "eager-sweep"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Options configures a Generator.
type Options struct {
	// Policy is the garbage-collection strategy (default PolicyRefCount).
	Policy Policy
	// SweepThreshold triggers an automatic mark-and-sweep after a
	// modification when, under PolicyRefCount, the fraction of states
	// that are dirty or unreachable-suspect exceeds it. 0 means the
	// default of 0.5; negative disables automatic sweeps.
	SweepThreshold float64
}

func (o *Options) policy() Policy {
	if o == nil {
		return PolicyRefCount
	}
	return o.Policy
}

func (o *Options) sweepThreshold() float64 {
	if o == nil || o.SweepThreshold == 0 {
		return 0.5
	}
	return o.SweepThreshold
}

// Generator is the incremental parser generator IPG. It implements
// lr.Table, so any engine of internal/glr can be driven by it directly;
// table generation happens inside Actions, during parsing.
//
// All grammar modifications must go through AddRule/DeleteRule (or
// AddGrammar); mutating the grammar behind the generator's back is a
// programming error that the generator detects and reports by panicking
// at the next Start call (every parse begins with one) or lazy
// expansion. Already-expanded states serve actions without re-checking,
// so detection is per parse, not per action.
//
// # Concurrency
//
// One generator (and thus one lazily expanding table) may be shared by
// many goroutines under the following discipline:
//
//   - Every parse is bracketed by BeginParse/EndParse, which take shared
//     (read) access. Concurrent parses expand states cooperatively: the
//     already-expanded hot path is a single atomic load per state (the
//     state's publication flag), and expansion of a still-initial state
//     is double-checked under an internal expansion mutex so each state
//     is expanded exactly once no matter how many parses race to it.
//   - AddRule/DeleteRule/AddGrammar/MarkSweep/Pregenerate take exclusive
//     (write) access internally, so a modification never tears a running
//     parse: a parse sees the table either entirely before or entirely
//     after each modification.
//
// Single-goroutine use needs no bracketing; all methods remain safe to
// call unlocked when nothing runs concurrently.
type Generator struct {
	auto      *lr.Automaton
	g         *grammar.Grammar
	policy    Policy
	threshold float64
	version   uint64

	// mu is the table-wide reader/writer lock: parses (BeginParse/
	// EndParse) hold it shared, modifications and GC hold it exclusive.
	mu sync.RWMutex
	// expandMu serializes lazy state expansion among concurrent parses
	// (which only hold mu shared). Lock order: mu before expandMu.
	expandMu sync.Mutex

	// Atomic counters for the concurrent parse service.
	actionCalls       atomic.Uint64
	cacheHits         atomic.Uint64
	statesExpanded    atomic.Uint64
	statesInvalidated atomic.Uint64
	parsesServed      atomic.Uint64

	// Sweeps counts mark-and-sweep passes (for the GC ablation).
	Sweeps int
}

// New builds the first part of the graph of item sets for g — only the
// start state, as an initial set of items (GENERATE-PARSER, section 5.1) —
// and returns the generator ready for parsing. No table generation work
// happens until the first Actions call.
func New(g *grammar.Grammar, opts *Options) *Generator {
	return NewFromAutomaton(lr.New(g), opts)
}

// NewFromAutomaton wraps an existing graph of item sets — typically one
// reloaded with lr.Load — so a session can resume with the table parts an
// earlier session already generated. The automaton's grammar must not
// have been modified since the graph was built.
func NewFromAutomaton(a *lr.Automaton, opts *Options) *Generator {
	return &Generator{
		auto:      a,
		g:         a.Grammar(),
		policy:    opts.policy(),
		threshold: opts.sweepThreshold(),
		version:   a.Grammar().Version(),
	}
}

// Grammar returns the generator's grammar. Do not modify it directly; use
// AddRule/DeleteRule.
func (gen *Generator) Grammar() *grammar.Grammar { return gen.g }

// Automaton exposes the underlying graph of item sets for inspection
// (dump, table rendering, state counts).
func (gen *Generator) Automaton() *lr.Automaton { return gen.auto }

// Policy returns the garbage-collection policy.
func (gen *Generator) Policy() Policy { return gen.policy }

// Start implements lr.Table.
func (gen *Generator) Start() *lr.State {
	gen.checkVersion()
	return gen.auto.Start()
}

// Actions implements lr.Table: the lazy ACTION of section 5.1. When the
// state is still initial (or dirty after a modification) it is expanded
// first; the action set is then deduced from the transitions and
// reductions fields.
//
// The already-expanded path costs one atomic load (the state's
// publication flag) plus two counter increments; expansion of a fresh
// state is double-checked under the expansion mutex so concurrent parses
// expand each state exactly once. The shared counter increments put one
// cache line on the per-token hot path — a deliberate tradeoff for
// always-on service metrics; shard or batch them per parse if they ever
// show up in profiles on many-core machines.
func (gen *Generator) Actions(s *lr.State, sym grammar.Symbol) []lr.Action {
	gen.actionCalls.Add(1)
	if s.Published() {
		gen.cacheHits.Add(1)
	} else {
		gen.expandSlow(s)
	}
	return lr.ActionsOf(s, sym)
}

// AppendActions implements lr.Table: Actions into a caller-supplied
// buffer. The published-state path is one atomic load plus the two
// counter increments; ParseSession additionally batches the counters,
// leaving a single atomic load per call.
func (gen *Generator) AppendActions(dst []lr.Action, s *lr.State, sym grammar.Symbol) []lr.Action {
	gen.actionCalls.Add(1)
	if s.Published() {
		gen.cacheHits.Add(1)
	} else {
		gen.expandSlow(s)
	}
	return lr.AppendActionsOf(dst, s, sym)
}

// expandSlow is the cold half of Actions: it serializes racing parses on
// the expansion mutex and re-checks the publication flag, so the parse
// that loses the race reuses the winner's expansion.
func (gen *Generator) expandSlow(s *lr.State) {
	gen.expandMu.Lock()
	defer gen.expandMu.Unlock()
	if s.Published() {
		return
	}
	gen.checkVersion()
	gen.ensureComplete(s)
}

// Goto implements lr.Table. Appendix A proves GOTO is only called on
// complete states — also under lazy generation — so no expansion happens
// here; the invariant is checked by lr.GotoOf.
func (gen *Generator) Goto(s *lr.State, sym grammar.Symbol) *lr.State {
	return lr.GotoOf(s, sym)
}

// ensureComplete expands an initial or dirty state in place. Callers
// must hold either the expansion mutex (parse path) or exclusive access
// (modification path).
func (gen *Generator) ensureComplete(s *lr.State) {
	switch s.Type {
	case lr.Complete:
		// Already complete but not yet published (e.g. generated before
		// any concurrent machinery ran): publish so the fast path sticks.
		s.Publish()
	case lr.Initial:
		gen.auto.Expand(s)
		gen.statesExpanded.Add(1)
	case lr.Dirty:
		gen.reExpand(s)
		gen.statesExpanded.Add(1)
	}
}

// BeginParse takes shared access to the table for the duration of one
// parse. While any parse holds it, AddRule/DeleteRule/GC block, so the
// parse observes the table either entirely before or entirely after
// each modification — never a torn state. Always pair with EndParse.
func (gen *Generator) BeginParse() { gen.mu.RLock() }

// EndParse releases the shared access taken by BeginParse and counts the
// parse as served.
func (gen *Generator) EndParse() {
	gen.parsesServed.Add(1)
	gen.mu.RUnlock()
}

// Counters is a consistent-enough snapshot of the generator's atomic
// work counters (each field is individually exact; the set is sampled
// without a lock).
type Counters struct {
	// ActionCalls counts Actions invocations — the parse hot path.
	ActionCalls uint64
	// CacheHits counts Actions calls answered by an already-expanded
	// (published) state without taking any lock.
	CacheHits uint64
	// StatesExpanded counts lazy expansions, including re-expansions of
	// dirty states.
	StatesExpanded uint64
	// StatesInvalidated counts states made initial or dirty by grammar
	// modifications.
	StatesInvalidated uint64
	// StatesRepaired counts states spliced in place by an incremental
	// table repair (re-expanded affected states plus states the repair
	// created); only the eager table engines report it.
	StatesRepaired uint64
	// RepairFallbacks counts rule updates a table repair declined (or
	// disavowed), forcing a full regeneration.
	RepairFallbacks uint64
	// ParsesServed counts BeginParse/EndParse pairs.
	ParsesServed uint64
}

// Plus returns the field-wise sum of two counter samples — used to
// aggregate counters across generations of a replaced engine.
func (c Counters) Plus(d Counters) Counters {
	return Counters{
		ActionCalls:       c.ActionCalls + d.ActionCalls,
		CacheHits:         c.CacheHits + d.CacheHits,
		StatesExpanded:    c.StatesExpanded + d.StatesExpanded,
		StatesInvalidated: c.StatesInvalidated + d.StatesInvalidated,
		StatesRepaired:    c.StatesRepaired + d.StatesRepaired,
		RepairFallbacks:   c.RepairFallbacks + d.RepairFallbacks,
		ParsesServed:      c.ParsesServed + d.ParsesServed,
	}
}

// HitRate is the fraction of Actions calls served from already-expanded
// states (0 when no actions have been requested yet).
func (c Counters) HitRate() float64 {
	if c.ActionCalls == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(c.ActionCalls)
}

// Counters samples the generator's work counters.
func (gen *Generator) Counters() Counters {
	return Counters{
		ActionCalls:       gen.actionCalls.Load(),
		CacheHits:         gen.cacheHits.Load(),
		StatesExpanded:    gen.statesExpanded.Load(),
		StatesInvalidated: gen.statesInvalidated.Load(),
		ParsesServed:      gen.parsesServed.Load(),
	}
}

func (gen *Generator) checkVersion() {
	if gen.g.Version() != gen.version {
		panic(fmt.Sprintf("core: grammar modified behind the generator's back (version %d, generator saw %d); use Generator.AddRule/DeleteRule",
			gen.g.Version(), gen.version))
	}
}

// SaveTable serializes the graph of item sets, including the lazy
// frontier, dirty-state history and publication flags (lr.Save format
// v2), so a later session resumes exactly where this one stopped
// generating. It holds shared table access plus the expansion mutex:
// concurrent parses on already-published states continue unimpeded
// while the snapshot is taken; lazy expansions and modifications wait.
// The returned coverage describes exactly the serialized table — it is
// sampled inside the same critical section, so a racing parse cannot
// make the description drift from the payload.
func (gen *Generator) SaveTable(w io.Writer) (CoverageStats, error) {
	gen.mu.RLock()
	defer gen.mu.RUnlock()
	gen.expandMu.Lock()
	defer gen.expandMu.Unlock()
	if err := gen.auto.Save(w); err != nil {
		return CoverageStats{}, err
	}
	i, c, d := gen.auto.TypeCounts()
	return CoverageStats{
		Initial:       i,
		Complete:      c,
		Dirty:         d,
		Expansions:    gen.auto.Stats.Expansions,
		StatesCreated: gen.auto.Stats.StatesCreated,
		StatesRemoved: gen.auto.Stats.StatesRemoved,
	}, nil
}

// Pregenerate expands every state reachable from the start state,
// producing the same table a conventional generator would (useful for
// measuring lazy coverage and for warm-start comparisons). Unreachable
// garbage retained by the GC policy is not expanded. It takes exclusive
// access; do not call while holding BeginParse.
func (gen *Generator) Pregenerate() {
	gen.mu.Lock()
	defer gen.mu.Unlock()
	gen.checkVersion()
	seen := map[*lr.State]bool{}
	queue := []*lr.State{gen.auto.Start()}
	seen[gen.auto.Start()] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		gen.ensureComplete(s)
		for _, sym := range s.TransitionSymbols() {
			succ := s.Transitions[sym]
			if !seen[succ] {
				seen[succ] = true
				queue = append(queue, succ)
			}
		}
	}
}

// CoverageStats describes how much of the parse table has been generated —
// the measurement behind the section 5.2 claim that parsing the SDF
// definition of SDF needs only ~60% of the SDF table.
type CoverageStats struct {
	// Initial, Complete, Dirty count current states by type.
	Initial, Complete, Dirty int
	// Expansions is the total number of EXPAND calls so far.
	Expansions int
	// StatesCreated / StatesRemoved track graph churn.
	StatesCreated, StatesRemoved int
}

// Coverage reports generation progress. It takes shared access plus the
// expansion mutex, so it may be called while other goroutines parse.
func (gen *Generator) Coverage() CoverageStats {
	gen.mu.RLock()
	defer gen.mu.RUnlock()
	gen.expandMu.Lock()
	defer gen.expandMu.Unlock()
	i, c, d := gen.auto.TypeCounts()
	return CoverageStats{
		Initial:       i,
		Complete:      c,
		Dirty:         d,
		Expansions:    gen.auto.Stats.Expansions,
		StatesCreated: gen.auto.Stats.StatesCreated,
		StatesRemoved: gen.auto.Stats.StatesRemoved,
	}
}

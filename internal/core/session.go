package core

import (
	"ipg/internal/cancel"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// ParseSession is a per-parse view of a Generator that implements
// lr.Table with local, non-atomic work counters. The generator's plain
// Actions path pays two shared atomic increments per call — one cache
// line bouncing between every core parsing the same table. A session
// counts locally and flushes once at End, so the published-state hot
// path is a single atomic load (the state's publication flag) and
// nothing shared is written until the parse finishes.
//
// Usage mirrors BeginParse/EndParse:
//
//	var sess core.ParseSession
//	sess.Begin(gen)          // shared (read) access, like BeginParse
//	glr.Parse(&sess, input, opts)
//	sess.End()               // flush counters, count the parse, unlock
//
// A ParseSession is owned by one goroutine for one parse; the zero
// value is reusable across parses (Begin resets it), so callers can
// keep sessions in a sync.Pool and make the steady-state parse path
// allocation-free.
type ParseSession struct {
	gen   *Generator
	calls uint64
	hits  uint64

	// Cancel, when non-nil, is checked before every lazy state
	// expansion; a fired flag aborts by panicking cancel.Abort, which
	// the engine dispatch layer recovers into a structured error.
	// (Expansion has no error return path through lr.Table, and a cold
	// parse can expand hundreds of states between two drive-loop
	// checkpoints.) The published-state hot path never looks at it.
	Cancel *cancel.Flag
}

// Begin binds the session to gen and takes shared access to the table
// for the duration of one parse (see Generator.BeginParse). Always pair
// with End.
func (s *ParseSession) Begin(gen *Generator) {
	s.gen = gen
	s.calls = 0
	s.hits = 0
	s.Cancel = nil
	gen.mu.RLock()
}

// End flushes the session's local counters into the generator's shared
// ones (one atomic add per counter), counts the parse as served, and
// releases the shared access taken by Begin.
func (s *ParseSession) End() {
	gen := s.gen
	if s.calls > 0 {
		gen.actionCalls.Add(s.calls)
	}
	if s.hits > 0 {
		gen.cacheHits.Add(s.hits)
	}
	gen.parsesServed.Add(1)
	gen.mu.RUnlock()
	s.gen = nil
}

// Grammar implements lr.Table.
func (s *ParseSession) Grammar() *grammar.Grammar { return s.gen.g }

// Start implements lr.Table.
func (s *ParseSession) Start() *lr.State { return s.gen.Start() }

// Actions implements lr.Table; see Generator.Actions.
func (s *ParseSession) Actions(st *lr.State, sym grammar.Symbol) []lr.Action {
	s.count(st)
	return lr.ActionsOf(st, sym)
}

// AppendActions implements lr.Table: the zero-allocation, zero-shared-
// write ACTION of the steady state. An already-published state costs one
// atomic load and two local integer increments.
func (s *ParseSession) AppendActions(dst []lr.Action, st *lr.State, sym grammar.Symbol) []lr.Action {
	s.count(st)
	return lr.AppendActionsOf(dst, st, sym)
}

func (s *ParseSession) count(st *lr.State) {
	s.calls++
	if st.Published() {
		s.hits++
		return
	}
	if s.Cancel.Hit() {
		panic(cancel.Abort{Flag: s.Cancel, Work: s.calls})
	}
	s.gen.expandSlow(st)
}

// Goto implements lr.Table; see Generator.Goto.
func (s *ParseSession) Goto(st *lr.State, sym grammar.Symbol) *lr.State {
	return lr.GotoOf(st, sym)
}

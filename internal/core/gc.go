package core

import (
	"ipg/internal/lr"
)

// This file implements the garbage collection of section 6.2: dirty
// states, reference counting with deferred removal (RE-EXPAND and
// DECR-REFCOUNT), and the mark-and-sweep fallback for reference cycles
// that the paper's reference counting admittedly cannot reclaim.

// reExpand is RE-EXPAND (section 6.2): expand a dirty set of items like an
// initial one, then decrease the reference count of every state the old
// transitions referred to.
func (gen *Generator) reExpand(s *lr.State) {
	old := s.OldTransitions
	s.OldTransitions = nil
	s.OldAccept = false
	gen.auto.Expand(s)
	if gen.policy == PolicyRetainAll {
		return
	}
	for _, succ := range old {
		gen.decrRefCount(succ)
	}
}

// decrRefCount is DECR-REFCOUNT (section 6.2): decrease the reference
// count of a state; when it reaches zero the state is removed from
// Itemsets and the counts of everything it (or its dirty history) refers
// to are decreased as well.
func (gen *Generator) decrRefCount(s *lr.State) {
	s.RefCount--
	if s.RefCount > 0 {
		return
	}
	// Deferred removal fires: the state can no longer be re-linked by
	// re-expansions, so it is dropped for good.
	gen.auto.Remove(s)
	switch s.Type {
	case lr.Complete:
		for _, succ := range s.Transitions {
			gen.decrRefCount(succ)
		}
	case lr.Dirty:
		for _, succ := range s.OldTransitions {
			gen.decrRefCount(succ)
		}
	}
	// Initial states hold no references.
}

// MarkSweep removes every state unreachable from the start state and
// recomputes the reference counts of the survivors. Reachability follows
// current transitions of complete states and the history of dirty states
// (which may be re-linked by later re-expansions). This is the
// "conventional mark-and-sweep garbage collector" the paper proposes for
// cyclic garbage; it returns the number of states removed. It takes
// exclusive access to the table, like a modification.
func (gen *Generator) MarkSweep() int {
	gen.mu.Lock()
	defer gen.mu.Unlock()
	return gen.markSweepLocked()
}

func (gen *Generator) markSweepLocked() int {
	gen.Sweeps++
	return len(gen.auto.SweepUnreachable())
}

// maybeSweep triggers MarkSweep when the fraction of dirty states exceeds
// the configured threshold ("use a conventional mark-and-sweep garbage
// collector when the percentage of dirty sets of items becomes too
// high").
func (gen *Generator) maybeSweep() {
	total := gen.auto.Len()
	if total == 0 {
		return
	}
	_, _, dirty := gen.auto.TypeCounts()
	if float64(dirty)/float64(total) > gen.threshold {
		gen.markSweepLocked()
	}
}

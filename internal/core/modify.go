package core

import (
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// AddRule adds rule to the grammar and updates the corresponding graph of
// item sets (ADD-RULE, section 6.1). Affected states are invalidated and
// re-expanded by need during subsequent parses. It takes exclusive access
// to the table: concurrent parses bracketed by BeginParse/EndParse see
// the table entirely before or entirely after the modification.
func (gen *Generator) AddRule(rule *grammar.Rule) error {
	gen.mu.Lock()
	defer gen.mu.Unlock()
	return gen.addRuleLocked(rule)
}

func (gen *Generator) addRuleLocked(rule *grammar.Rule) error {
	gen.checkVersion()
	if err := gen.g.AddRule(rule); err != nil {
		return err
	}
	gen.modifyGraph(rule)
	return nil
}

// DeleteRule deletes rule from the grammar and updates the graph of item
// sets (DELETE-RULE, section 6.1). Like AddRule it takes exclusive
// access.
func (gen *Generator) DeleteRule(rule *grammar.Rule) error {
	gen.mu.Lock()
	defer gen.mu.Unlock()
	gen.checkVersion()
	if _, err := gen.g.DeleteRule(rule); err != nil {
		return err
	}
	gen.modifyGraph(rule)
	return nil
}

// AddGrammar adds every rule of other not already present — the
// asymmetric form of modular parser composition discussed in section 8
// ("adding the grammar of one module to the grammar of the other"). The
// grammars must share a symbol table. It returns the number of rules
// added. The whole batch happens under one exclusive critical section.
func (gen *Generator) AddGrammar(other *grammar.Grammar) (int, error) {
	gen.mu.Lock()
	defer gen.mu.Unlock()
	n := 0
	for _, r := range other.Rules() {
		if gen.g.Has(r) {
			continue
		}
		if err := gen.addRuleLocked(r); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// modifyGraph is MODIFY's graph half (section 6.1): the grammar has
// already been updated; the graph of item sets is reduced to one that is
// correct for the modified grammar by invalidating every incorrectly
// expanded state.
//
// For a modified rule A ::= β:
//
//   - If A is START, only the start state can contain A ::= •β in its
//     kernel; its kernel is recomputed and it is invalidated.
//
//   - Otherwise, exactly the complete states with a transition on A had
//     A ::= •β in the closure of their kernel (EXPAND must have created a
//     transition for A whenever some item had its dot before A), so those
//     are invalidated. Initial states need no treatment — they will be
//     expanded against the new grammar anyway — and dirty states are
//     already invalid.
func (gen *Generator) modifyGraph(rule *grammar.Rule) {
	gen.version = gen.g.Version()
	if rule.Lhs == gen.g.Start() {
		start := gen.auto.Start()
		if start.Type == lr.Complete {
			gen.invalidate(start)
		}
		gen.auto.ResetStartKernel()
	} else {
		for _, s := range gen.auto.States() {
			if s.Type == lr.Complete {
				if _, ok := s.Transitions[rule.Lhs]; ok {
					gen.invalidate(s)
				}
			}
		}
	}
	if gen.policy == PolicyEagerSweep {
		gen.markSweepLocked()
	} else if gen.policy == PolicyRefCount && gen.threshold >= 0 {
		gen.maybeSweep()
	}
}

// invalidate makes a complete state initial (PolicyRetainAll) or dirty
// (reference-counting policies), so the lazy generator re-expands it when
// the parser needs it again.
func (gen *Generator) invalidate(s *lr.State) {
	s.Unpublish()
	gen.statesInvalidated.Add(1)
	switch gen.policy {
	case PolicyRefCount:
		// Section 6.2: make it dirty — an initial set of items with a
		// history — so RE-EXPAND can release old references afterwards.
		s.OldTransitions = s.Transitions
		s.OldAccept = s.Accept
		s.Type = lr.Dirty
	default:
		// Section 6.1 (PolicyRetainAll): make it initial; transitions
		// disappear ("by definition, initial sets of items do not have a
		// transitions field"). PolicyEagerSweep also drops the history:
		// the subsequent sweep then removes everything these transitions
		// kept alive — the "too much is thrown away" horn of the
		// dilemma.
		s.Type = lr.Initial
	}
	s.Transitions = nil
	s.Reductions = nil
	s.Accept = false
}

package core

import (
	"math/rand"
	"testing"

	"ipg/internal/earley"
	"ipg/internal/glr"
	"ipg/internal/grammar"
)

// TestTortureSession simulates a long interactive language-definition
// session (the paper's motivating application): dozens of interleaved
// rule additions, deletions, parses and occasional garbage-collection
// sweeps. After every step the incrementally maintained parser must
// agree with an Earley oracle reading the same live grammar — Earley is
// grammar-driven, so it follows every modification by construction.
func TestTortureSession(t *testing.T) {
	for _, policy := range []Policy{PolicyRefCount, PolicyRetainAll, PolicyEagerSweep} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := grammar.Random(grammar.RandConfig{
					Nonterminals: 3, Terminals: 3, Rules: 5, EpsilonProb: 0.1,
				}, rng)
				gen := New(g, &Options{Policy: policy, SweepThreshold: 0.6})
				oracle := earley.New(g) // reads g live

				syms := g.Symbols()
				var nts, pool []grammar.Symbol
				for _, s := range syms.Nonterminals() {
					if s != g.Start() {
						nts = append(nts, s)
					}
				}
				pool = append(pool, nts...)
				for _, s := range syms.Terminals() {
					if s != grammar.EOF {
						pool = append(pool, s)
					}
				}

				checkParses := func(step int) {
					for i := 0; i < 4; i++ {
						var input []grammar.Symbol
						if sent, ok := g.RandomSentence(rng, 6); ok && rng.Intn(2) == 0 {
							input = sent
						} else {
							for j := 0; j < rng.Intn(5); j++ {
								s := pool[rng.Intn(len(pool))]
								if syms.Kind(s) == grammar.Terminal {
									input = append(input, s)
								}
							}
						}
						got, err := glr.Recognize(gen, input, glr.GSS)
						if err != nil {
							t.Fatalf("seed %d step %d: %v", seed, step, err)
						}
						want := oracle.Recognize(input)
						if got != want {
							t.Fatalf("seed %d step %d: ipg=%v earley=%v on %s\ngrammar:\n%s",
								seed, step, got, want, syms.NamesOf(input), g.String())
						}
					}
				}

				checkParses(-1)
				for step := 0; step < 40; step++ {
					switch op := rng.Intn(10); {
					case op < 4: // add a rule
						lhs := nts[rng.Intn(len(nts))]
						rhs := make([]grammar.Symbol, rng.Intn(4))
						for j := range rhs {
							rhs[j] = pool[rng.Intn(len(pool))]
						}
						r := grammar.NewRule(lhs, rhs...)
						if g.Has(r) {
							continue
						}
						if err := gen.AddRule(r); err != nil {
							t.Fatalf("seed %d step %d add: %v", seed, step, err)
						}
					case op < 6: // delete a random non-START rule
						rules := g.Rules()
						if len(rules) == 0 {
							continue
						}
						r := rules[rng.Intn(len(rules))]
						if r.Lhs == g.Start() {
							continue
						}
						if err := gen.DeleteRule(r); err != nil {
							t.Fatalf("seed %d step %d delete: %v", seed, step, err)
						}
					case op < 7: // explicit sweep
						gen.MarkSweep()
					default: // parse a few sentences
						checkParses(step)
					}
				}
				checkParses(40)

				// After the session the graph still matches from-scratch
				// generation.
				gen.Pregenerate()
				eager := New(g.Clone(), nil)
				eager.Pregenerate()
				assertEquivalentReachable(t, gen.Automaton(), eager.Automaton())
			}
		})
	}
}

package core

import (
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

func parse(t *testing.T, gen *Generator, input string) bool {
	t.Helper()
	ok, err := glr.Recognize(gen, fixtures.Tokens(gen.Grammar(), input), glr.GSS)
	if err != nil {
		t.Fatalf("parse %q: %v", input, err)
	}
	return ok
}

// TestFig51LazyExpansion reproduces Fig 5.1: after generation the graph
// consists only of the initial start state; the first ACTION call expands
// it, creating its three successors.
func TestFig51LazyExpansion(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)

	if gen.Automaton().Len() != 1 {
		t.Fatalf("after generation: %d states, want 1 (start only)", gen.Automaton().Len())
	}
	if gen.Start().Type != lr.Initial {
		t.Fatal("start state should be initial before any ACTION call")
	}

	tr, _ := g.Symbols().Lookup("true")
	acts := gen.Actions(gen.Start(), tr)
	if len(acts) != 1 || acts[0].Kind != lr.Shift {
		t.Fatalf("first ACTION = %v, want single shift", acts)
	}
	if gen.Start().Type != lr.Complete {
		t.Error("ACTION should have expanded the start state")
	}
	// Fig 5.1(b): start plus B-, true- and false-successors.
	if gen.Automaton().Len() != 4 {
		t.Errorf("after first ACTION: %d states, want 4\n%s",
			gen.Automaton().Len(), gen.Automaton().Dump())
	}
	i, c, _ := gen.Automaton().TypeCounts()
	if c != 1 || i != 3 {
		t.Errorf("type counts complete=%d initial=%d, want 1/3", c, i)
	}
}

// TestFig52LazyParse reproduces Fig 5.2: after parsing 'true and true'
// only the states needed for and/true sentences are complete; the
// false-successor and the or-state remain initial, and further and/true
// sentences cause no additional expansion.
func TestFig52LazyParse(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)

	if !parse(t, gen, "true and true") {
		t.Fatal("'true and true' should be accepted")
	}
	cov := gen.Coverage()
	if cov.Complete != 5 || cov.Initial != 2 {
		t.Errorf("after 'true and true': complete=%d initial=%d, want 5/2\n%s",
			cov.Complete, cov.Initial, gen.Automaton().Dump())
	}

	// "All sentences that only contain 'and' and 'true' will now be
	// parsed without further expansion of the graph of item sets."
	before := gen.Coverage().Expansions
	if !parse(t, gen, "true and true and true and true") {
		t.Fatal("and/true sentence should be accepted")
	}
	if got := gen.Coverage().Expansions; got != before {
		t.Errorf("and/true sentence caused %d extra expansions", got-before)
	}

	// "Only for sentences containing 'false' or 'or', the graph has to be
	// expanded again."
	if !parse(t, gen, "true or false") {
		t.Fatal("'true or false' should be accepted")
	}
	if got := gen.Coverage().Expansions; got <= before {
		t.Error("or/false sentence should have expanded the graph")
	}
}

// TestLazyMatchesEager: after enough input the lazy table equals the
// conventionally generated one, and parsing is driven by the same graph.
func TestLazyMatchesEager(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)
	gen.Pregenerate()

	eager := lr.New(fixtures.Booleans())
	eager.GenerateAll()

	if gen.Automaton().Len() != eager.Len() {
		t.Fatalf("lazy full table has %d states, eager %d", gen.Automaton().Len(), eager.Len())
	}
	if gen.Automaton().Dump() != eager.Dump() {
		t.Errorf("lazy and eager graphs differ:\n%s\n--- vs ---\n%s",
			gen.Automaton().Dump(), eager.Dump())
	}
}

func TestLazyAcceptance(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"true", true},
		{"false or true and false", true},
		{"and", false},
		{"true false", false},
	} {
		if got := parse(t, gen, tc.input); got != tc.want {
			t.Errorf("parse(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

// TestLazyNoWorkUpFront: generation cost is deferred entirely ("the time
// needed for constructing the parse table is almost zero").
func TestLazyNoWorkUpFront(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)
	if gen.Coverage().Expansions != 0 {
		t.Error("New should perform no expansions")
	}
	if gen.Coverage().StatesCreated != 1 {
		t.Errorf("New created %d states, want 1", gen.Coverage().StatesCreated)
	}
}

// TestLazyTotalWorkUnchanged: in the worst case (the whole table is
// needed) lazy generation does exactly the same number of expansions as
// conventional generation (section 5.3).
func TestLazyTotalWorkUnchanged(t *testing.T) {
	gen := New(fixtures.Booleans(), nil)
	gen.Pregenerate()

	eager := lr.New(fixtures.Booleans())
	eager.GenerateAll()

	if gen.Coverage().Expansions != eager.Stats.Expansions {
		t.Errorf("lazy total expansions %d != eager %d",
			gen.Coverage().Expansions, eager.Stats.Expansions)
	}
}

func TestVersionGuard(t *testing.T) {
	g := fixtures.Booleans()
	gen := New(g, nil)
	b, _ := g.Symbols().Lookup("B")
	x := g.Symbols().MustIntern("x", grammar.Terminal)
	// Mutating the grammar directly (not via the generator) must be
	// detected.
	if err := g.AddRule(grammar.NewRule(b, x)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Actions after out-of-band grammar mutation should panic")
		}
	}()
	tr, _ := g.Symbols().Lookup("true")
	gen.Actions(gen.Start(), tr)
}

func TestGotoOnLazyTable(t *testing.T) {
	// Appendix A extended: under lazy generation GOTO is still only
	// called on complete states. The assertion inside lr.GotoOf fires on
	// violation, so simply running all engines over the lazy table checks
	// the invariant.
	g := fixtures.Booleans()
	for _, engine := range []glr.Engine{glr.Copying, glr.GSS} {
		gen := New(g.Clone(), nil)
		res, err := glr.Parse(gen, fixtures.Tokens(g, "true or false and true"), &glr.Options{Engine: engine})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if !res.Accepted {
			t.Errorf("%v: rejected", engine)
		}
	}
}

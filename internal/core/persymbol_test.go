package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipg/internal/fixtures"
	"ipg/internal/glr"
	"ipg/internal/grammar"
)

func TestPerSymbolAcceptance(t *testing.T) {
	g := fixtures.Booleans()
	gen := NewPerSymbol(g)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"true", true},
		{"true or false and true", true},
		{"true or", false},
		{"", false},
	} {
		got, err := glr.Recognize(gen, fixtures.Tokens(g, tc.input), glr.GSS)
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if got != tc.want {
			t.Errorf("parse(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestPerSymbolIsLazier(t *testing.T) {
	// Parsing 'true and true' must materialize strictly fewer
	// transitions than whole-state expansion would.
	g := fixtures.Booleans()
	ps := NewPerSymbol(g)
	if ok, err := glr.Recognize(ps, fixtures.Tokens(g, "true and true"), glr.GSS); err != nil || !ok {
		t.Fatal(ok, err)
	}
	perSymbolTransitions := 0
	for _, s := range ps.Automaton().States() {
		perSymbolTransitions += len(s.Transitions)
	}

	whole := New(fixtures.Booleans(), nil)
	if ok, err := glr.Recognize(whole, fixtures.Tokens(g, "true and true"), glr.GSS); err != nil || !ok {
		t.Fatal(ok, err)
	}
	wholeTransitions := 0
	for _, s := range whole.Automaton().States() {
		wholeTransitions += len(s.Transitions)
	}
	if perSymbolTransitions >= wholeTransitions {
		t.Errorf("per-symbol created %d transitions, whole-state %d; expected fewer",
			perSymbolTransitions, wholeTransitions)
	}
	// But it pays administration: closures are still one per touched
	// state.
	if ps.Closures == 0 || ps.SymbolExpansions <= ps.Closures {
		t.Errorf("administration counters look wrong: closures=%d symbolExpansions=%d",
			ps.Closures, ps.SymbolExpansions)
	}
}

// Property: per-symbol laziness accepts exactly the same sentences as the
// state-at-a-time lazy generator.
func TestPerSymbolEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grammar.Random(grammar.RandConfig{Nonterminals: 3, Terminals: 3, Rules: 6, EpsilonProb: 0.1}, rng)
		ps := NewPerSymbol(g)
		whole := New(g.Clone(), nil)
		for i := 0; i < 8; i++ {
			var input []grammar.Symbol
			if sent, ok := g.RandomSentence(rng, 7); ok && rng.Intn(2) == 0 {
				input = sent
			} else {
				terms := g.Symbols().Terminals()
				for j := 0; j < rng.Intn(5); j++ {
					s := terms[rng.Intn(len(terms))]
					if s != grammar.EOF {
						input = append(input, s)
					}
				}
			}
			a, err := glr.Recognize(ps, input, glr.GSS)
			if err != nil {
				t.Fatalf("seed %d per-symbol: %v", seed, err)
			}
			b, err := glr.Recognize(whole, input, glr.GSS)
			if err != nil {
				t.Fatalf("seed %d whole: %v", seed, err)
			}
			if a != b {
				t.Fatalf("seed %d: per-symbol=%v whole=%v on %s",
					seed, a, b, g.Symbols().NamesOf(input))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

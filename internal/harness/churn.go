package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ipg/internal/grammar"
	"ipg/internal/lalr"
	"ipg/internal/sdf"
)

// This file is the grammar-churn measurement behind `ipg-bench`'s churn
// section: interleaved AddRule/DeleteRule against the grammars defined
// by the paper's SDF fixtures, comparing the in-place LALR(1) table
// repair (lalr.Table.Repair) against full regeneration. The probe per
// nonterminal is a fresh-terminal rule — the smallest realistic edit a
// language developer makes — so the rows chart repair cost against
// damage size (how many states had the nonterminal in their closures).

// ChurnFixtures are the SDF definitions whose converted grammars the
// churn workload edits: the two large Fig 7.1 fixtures, whose tables
// are expensive enough to regenerate for locality to matter.
var ChurnFixtures = []string{"SDF.sdf", "ASF.sdf"}

// ChurnResult is one (fixture, nonterminal) probe of the churn
// workload: add `N ::= churn_i` (a fresh terminal), repair, delete it,
// repair again.
type ChurnResult struct {
	Fixture string `json:"fixture"`
	// Nonterminal is the probed rule's left-hand side; States the table
	// size the probe ran against.
	Nonterminal string `json:"nonterminal"`
	States      int    `json:"states"`
	// Affected is the damage-set size (states whose closures contained
	// the nonterminal); Repaired adds the states the splice created;
	// Rederived/Kept split the lookahead re-derivation.
	Affected  int `json:"affected_states"`
	Repaired  int `json:"repaired_states"`
	Rederived int `json:"rederived_states"`
	Kept      int `json:"kept_states"`
	// FellBack marks probes the repair declined (regenerated instead);
	// such rows carry no repair timing.
	FellBack bool `json:"fell_back"`
	// RepairNS is the best warm in-place repair of the rule addition;
	// RegenNS the fixture's best warm full regeneration; Speedup their
	// ratio.
	RepairNS int64   `json:"repair_ns"`
	RegenNS  int64   `json:"regen_ns"`
	Speedup  float64 `json:"speedup"`
	// RepairAllocs is the heap cost of one warm repair (averaged over an
	// add+delete roundtrip); RegenAllocs of one full regeneration. A
	// repair should allocate only for genuinely new states and moved
	// lookahead sets — a fraction of the regen cost.
	RepairAllocs int64 `json:"repair_allocs_per_op"`
	RegenAllocs  int64 `json:"regen_allocs_per_op"`
}

// RunChurn measures the churn workload over the SDF fixtures in dir,
// repeating each timed probe `repeat` times and keeping minima. The
// repaired table is checked against a from-scratch generation at the
// end of every fixture — a parity violation is an error, not a number.
func RunChurn(dir string, repeat int) ([]ChurnResult, error) {
	if repeat < 1 {
		repeat = 1
	}
	var out []ChurnResult
	for _, name := range ChurnFixtures {
		rows, err := runChurnOn(dir, name, repeat)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, rows...)
	}
	return out, nil
}

func runChurnOn(dir, name string, repeat int) ([]ChurnResult, error) {
	src, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	def, err := sdf.ParseDefinition(string(src))
	if err != nil {
		return nil, err
	}
	conv, err := sdf.Convert(def, "")
	if err != nil {
		return nil, err
	}
	g := conv.Grammar

	// Full-regeneration baseline: best warm pass, plus its heap cost.
	var regen time.Duration
	for i := 0; i <= repeat; i++ {
		t0 := time.Now()
		lalr.Generate(g)
		if d := time.Since(t0); i == 0 || d < regen {
			regen = d
		}
	}
	const regenAllocRuns = 4
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < regenAllocRuns; i++ {
		lalr.Generate(g)
	}
	runtime.ReadMemStats(&ms1)
	regenAllocs := int64(ms1.Mallocs-ms0.Mallocs) / regenAllocRuns

	tbl := lalr.Generate(g)
	syms := g.Symbols()
	var out []ChurnResult
	for i, nt := range syms.Nonterminals() {
		if nt == g.Start() {
			continue
		}
		probe := grammar.NewRule(nt, syms.MustIntern(fmt.Sprintf("churn_%d", i), grammar.Terminal))
		if g.Has(probe) {
			continue
		}
		row := ChurnResult{
			Fixture:     name,
			Nonterminal: syms.Name(nt),
			States:      tbl.Automaton().Len(),
			RegenNS:     regen.Nanoseconds(),
			RegenAllocs: regenAllocs,
		}
		best := time.Duration(-1)
		// cycle adds the probe rule, repairs, deletes it, and repairs
		// again — the table is back to the fixture grammar after each
		// cycle. A declined repair regenerates (mirroring the engine) and
		// marks the row.
		cycle := func(timed bool) error {
			if err := g.AddRule(probe); err != nil {
				return err
			}
			t0 := time.Now()
			st := tbl.Repair(probe)
			d := time.Since(t0)
			if st.FellBack {
				row.FellBack = true
				tbl = lalr.Generate(g)
			} else if timed && (best < 0 || d < best) {
				best = d
				row.Affected = st.Affected
				row.Repaired = st.Affected + st.Created
				row.Rederived = st.Rederived
				row.Kept = st.Kept
			}
			stored, err := g.DeleteRule(probe)
			if err != nil {
				return err
			}
			if st := tbl.Repair(stored); st.FellBack {
				row.FellBack = true
				tbl = lalr.Generate(g)
			}
			return nil
		}
		// Warm the probe, then keep the best timed repair.
		if err := cycle(false); err != nil {
			return nil, err
		}
		for r := 0; r < repeat; r++ {
			if err := cycle(true); err != nil {
				return nil, err
			}
		}
		if best >= 0 {
			row.RepairNS = best.Nanoseconds()
			if row.RepairNS > 0 {
				row.Speedup = float64(row.RegenNS) / float64(row.RepairNS)
			}
		}
		// Heap cost of a warm roundtrip, amortized: two repairs per cycle.
		const allocRuns = 8
		runtime.ReadMemStats(&ms0)
		for r := 0; r < allocRuns; r++ {
			if err := cycle(false); err != nil {
				return nil, err
			}
		}
		runtime.ReadMemStats(&ms1)
		row.RepairAllocs = int64(ms1.Mallocs-ms0.Mallocs) / (2 * allocRuns)
		out = append(out, row)
	}
	// Repairs must leave the table action-identical to a from-scratch
	// generation of the (restored) grammar.
	if tbl.Signature() != lalr.Generate(g).Signature() {
		return nil, fmt.Errorf("repaired table diverges from regeneration after churn")
	}
	return out, nil
}

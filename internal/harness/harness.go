// Package harness implements the measurement procedure of section 7: for
// each parser generator (Yacc→LALR(1), PG→conventional LR(0), IPG→lazy
// incremental LR(0)) and each input, it measures
//
//	construct table → parse twice → modify grammar → parse twice
//
// with parse trees built but not printed, on token streams already in
// memory — reproducing the experimental controls of the paper.
package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ipg/internal/core"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lalr"
	"ipg/internal/lr"
	"ipg/internal/sdf"
)

// Input is one measured sentence: a named, pre-tokenized SDF definition.
type Input struct {
	// Name is the file name (exp.sdf, Exam.sdf, SDF.sdf, ASF.sdf).
	Name string
	// Tokens is the in-memory token stream, EOF-terminated so a warm
	// parse passes it to the engines without copying (glr.prepare
	// appends nothing — the last steady-state allocation of the parse
	// path).
	Tokens []grammar.Symbol
}

// InputNames are the four inputs of Fig 7.1 in measurement order.
var InputNames = []string{"exp.sdf", "Exam.sdf", "SDF.sdf", "ASF.sdf"}

// LoadInputs tokenizes the four SDF definitions of Fig 7.1 from dir
// against the symbol table of the bootstrap SDF grammar.
func LoadInputs(dir string, syms *grammar.SymbolTable) ([]Input, error) {
	sc, err := sdf.NewScanner()
	if err != nil {
		return nil, err
	}
	var out []Input
	for _, name := range InputNames {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		toks, _, err := sdf.TokenizeWith(sc, string(src), syms)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, Input{Name: name, Tokens: append(toks, grammar.EOF)})
	}
	return out, nil
}

// System identifies a measured parser generator.
type System string

// The three systems of Fig 7.1.
const (
	// Yacc is the LALR(1) baseline. The paper's Yacc additionally spent
	// 8.3s compiling and linking C code per change; that constant is
	// reported in EXPERIMENTS.md, not simulated here.
	Yacc System = "Yacc"
	// PG is the conventional LR(0) generator of section 4.
	PG System = "PG"
	// IPG is the lazy incremental generator of sections 5-6.
	IPG System = "IPG"
)

// Systems lists the measured systems in the paper's order.
var Systems = []System{Yacc, PG, IPG}

// Phases of one measurement run, in order.
var Phases = []string{"construct", "parse1", "parse2", "modify", "parse1'", "parse2'"}

// Timings holds one wall-clock duration per phase.
type Timings struct {
	Construct, Parse1, Parse2, Modify, Reparse1, Reparse2 time.Duration
}

// ByPhase returns the durations in Phases order.
func (t Timings) ByPhase() []time.Duration {
	return []time.Duration{t.Construct, t.Parse1, t.Parse2, t.Modify, t.Reparse1, t.Reparse2}
}

// Run measures one (system, input) cell of Fig 7.1. Fresh grammars are
// built per run so lazily accumulated state never leaks between runs.
// The modification adds the Fig 7.1 rule <CF-ELEM> ::= "(" CF-ELEM+ ")?".
func Run(sys System, input Input) (Timings, error) {
	var t Timings
	g := sdf.MustBootstrapGrammar()
	mod, err := sdf.ModificationRule(g)
	if err != nil {
		return t, err
	}

	parseOnce := func(tbl lr.Table) (time.Duration, error) {
		start := time.Now()
		res, err := glr.Parse(tbl, input.Tokens, &glr.Options{Engine: glr.GSS})
		if err != nil {
			return 0, err
		}
		if !res.Accepted {
			return 0, fmt.Errorf("%s rejected %s", sys, input.Name)
		}
		return time.Since(start), nil
	}

	switch sys {
	case Yacc:
		start := time.Now()
		tbl := lalr.Generate(g)
		t.Construct = time.Since(start)
		if t.Parse1, err = parseOnce(tbl); err != nil {
			return t, err
		}
		if t.Parse2, err = parseOnce(tbl); err != nil {
			return t, err
		}
		// Modification: the table must be regenerated from scratch.
		start = time.Now()
		if err := g.AddRule(mod); err != nil {
			return t, err
		}
		tbl = lalr.Generate(g)
		t.Modify = time.Since(start)
		if t.Reparse1, err = parseOnce(tbl); err != nil {
			return t, err
		}
		if t.Reparse2, err = parseOnce(tbl); err != nil {
			return t, err
		}

	case PG:
		start := time.Now()
		auto := lr.New(g)
		auto.GenerateAll()
		t.Construct = time.Since(start)
		if t.Parse1, err = parseOnce(auto); err != nil {
			return t, err
		}
		if t.Parse2, err = parseOnce(auto); err != nil {
			return t, err
		}
		start = time.Now()
		if err := g.AddRule(mod); err != nil {
			return t, err
		}
		auto = lr.New(g)
		auto.GenerateAll()
		t.Modify = time.Since(start)
		if t.Reparse1, err = parseOnce(auto); err != nil {
			return t, err
		}
		if t.Reparse2, err = parseOnce(auto); err != nil {
			return t, err
		}

	case IPG:
		start := time.Now()
		gen := core.New(g, nil)
		t.Construct = time.Since(start)
		if t.Parse1, err = parseOnce(gen); err != nil {
			return t, err
		}
		if t.Parse2, err = parseOnce(gen); err != nil {
			return t, err
		}
		start = time.Now()
		if err := gen.AddRule(mod); err != nil {
			return t, err
		}
		t.Modify = time.Since(start)
		if t.Reparse1, err = parseOnce(gen); err != nil {
			return t, err
		}
		if t.Reparse2, err = parseOnce(gen); err != nil {
			return t, err
		}

	default:
		return t, fmt.Errorf("harness: unknown system %q", sys)
	}
	return t, nil
}

// RunBest runs Run repeat times and keeps the per-phase minimum, damping
// scheduler noise (the paper ran "under low workload" on a SUN 3/60).
func RunBest(sys System, input Input, repeat int) (Timings, error) {
	var best Timings
	for i := 0; i < repeat; i++ {
		t, err := Run(sys, input)
		if err != nil {
			return best, err
		}
		if i == 0 {
			best = t
			continue
		}
		best.Construct = min(best.Construct, t.Construct)
		best.Parse1 = min(best.Parse1, t.Parse1)
		best.Parse2 = min(best.Parse2, t.Parse2)
		best.Modify = min(best.Modify, t.Modify)
		best.Reparse1 = min(best.Reparse1, t.Reparse1)
		best.Reparse2 = min(best.Reparse2, t.Reparse2)
	}
	return best, nil
}

func min(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

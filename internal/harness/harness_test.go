package harness

import (
	"testing"
	"time"

	"ipg/internal/sdf"
)

func loadAll(t *testing.T) []Input {
	t.Helper()
	g := sdf.MustBootstrapGrammar()
	inputs, err := LoadInputs("../../testdata", g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	return inputs
}

func TestLoadInputs(t *testing.T) {
	inputs := loadAll(t)
	if len(inputs) != 4 {
		t.Fatalf("%d inputs, want 4", len(inputs))
	}
	// The Fig 7.1 sizes (37/166/342/475) plus the end marker: inputs are
	// EOF-terminated so warm parses pass them through without copying.
	want := map[string]int{"exp.sdf": 37 + 1, "Exam.sdf": 166 + 1, "SDF.sdf": 342 + 1, "ASF.sdf": 475 + 1}
	for _, in := range inputs {
		if len(in.Tokens) != want[in.Name] {
			t.Errorf("%s: %d tokens, want %d", in.Name, len(in.Tokens), want[in.Name])
		}
	}
}

func TestRunAllSystems(t *testing.T) {
	inputs := loadAll(t)
	for _, sys := range Systems {
		timings, err := Run(sys, inputs[0])
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		for i, d := range timings.ByPhase() {
			if d < 0 {
				t.Errorf("%s phase %s negative: %v", sys, Phases[i], d)
			}
		}
		// Parses take measurable time; constructs may be ~0 for IPG.
		if timings.Parse1 == 0 || timings.Reparse1 == 0 {
			t.Errorf("%s: zero parse timings: %+v", sys, timings)
		}
	}
}

func TestRunShapes(t *testing.T) {
	// The headline Fig 7.1 shapes, asserted as inequalities on one
	// medium input (timings are noisy; keep the margins generous).
	inputs := loadAll(t)
	in := inputs[2] // SDF.sdf

	ipgT, err := RunBest(IPG, in, 3)
	if err != nil {
		t.Fatal(err)
	}
	yaccT, err := RunBest(Yacc, in, 3)
	if err != nil {
		t.Fatal(err)
	}
	// IPG constructs in (near) zero time; Yacc pays LALR generation.
	if ipgT.Construct*10 > yaccT.Construct {
		t.Errorf("IPG construct %v should be well under Yacc construct %v",
			ipgT.Construct, yaccT.Construct)
	}
	// IPG modification is incremental; Yacc regenerates.
	if ipgT.Modify*10 > yaccT.Modify {
		t.Errorf("IPG modify %v should be well under Yacc modify %v",
			ipgT.Modify, yaccT.Modify)
	}
}

func TestRunBestKeepsMinimum(t *testing.T) {
	inputs := loadAll(t)
	one, err := Run(IPG, inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	best, err := RunBest(IPG, inputs[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = one
	if best.Parse1 <= 0 || best.Parse1 > time.Second {
		t.Errorf("implausible best parse1: %v", best.Parse1)
	}
}

func TestRunUnknownSystem(t *testing.T) {
	inputs := loadAll(t)
	if _, err := Run(System("nope"), inputs[0]); err == nil {
		t.Fatal("unknown system should error")
	}
}

package harness

import (
	"runtime"
	"time"

	"ipg/internal/engine"
	"ipg/internal/grammar"
)

// This file is the completion workload behind `ipg-bench -complete`:
// accept-set query and cursor feed/restore cost per backend at a range
// of prefix depths. The interesting number is the warm per-query cost —
// one accept-set read per generated token is the constrained-decoding
// rate — and whether the table-driven backends keep it allocation-free.

// CompleteResult is one (workload, engine, prefix depth) measurement.
type CompleteResult struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	// PrefixLen is the cursor position the queries run at.
	PrefixLen int `json:"prefix_len"`
	// AcceptNS is the warm per-query cost of one accept-set read;
	// AcceptsPerSec is its reciprocal throughput. AcceptAllocs is heap
	// allocations per warm query — the number the CI gate pins at 0 for
	// the LR- and LL-table backends.
	AcceptNS      int64   `json:"accept_ns_per_op"`
	AcceptsPerSec float64 `json:"accepts_per_sec"`
	AcceptAllocs  int64   `json:"accept_allocs_per_op"`
	// FeedNS is the warm cost of one feed+restore cycle (advance the
	// cursor by an accepted token, rewind to the checkpoint) — the
	// rejection-recovery path of a decoding loop. FeedAllocs is its heap
	// cost. Zero when the position accepts only the end marker.
	FeedNS     int64 `json:"feed_ns_per_op,omitempty"`
	FeedAllocs int64 `json:"feed_allocs_per_op,omitempty"`
	// OpenNS is the cost of opening a cursor and feeding the prefix —
	// what a Restore saves over reopening.
	OpenNS int64 `json:"open_ns"`
	// Error marks backends that cannot complete on the workload.
	Error string `json:"error,omitempty"`
}

// completeAcceptIters and completeFeedIters size the warm measurement
// loops: large enough to dominate clock reads, small enough that the
// full grid stays fast.
const (
	completeAcceptIters = 128
	completeFeedIters   = 64
)

// completeDepths returns the measured prefix depths for a sentence of
// n tokens: 0, n/4, n/2, 3n/4 and n, deduplicated and ordered.
func completeDepths(n int) []int {
	raw := []int{0, n / 4, n / 2, 3 * n / 4, n}
	out := raw[:0]
	last := -1
	for _, d := range raw {
		if d != last {
			out = append(out, d)
			last = d
		}
	}
	return out
}

// RunComplete measures the completion workload over the standard
// cross-engine grid, repeating `repeat` times and keeping per-cell
// minima (as every other harness run does).
func RunComplete(dir string, repeat int) ([]CompleteResult, error) {
	workloads, err := EngineWorkloads(dir)
	if err != nil {
		return nil, err
	}
	if repeat < 1 {
		repeat = 1
	}
	var out []CompleteResult
	for _, w := range workloads {
		// The longest sentence gives the deepest cursor positions.
		var subject []grammar.Symbol
		for _, s := range w.Sentences {
			if SentenceLen(s) > SentenceLen(subject) {
				subject = s
			}
		}
		for _, kind := range w.Kinds {
			for _, depth := range completeDepths(SentenceLen(subject)) {
				res := CompleteResult{
					Workload: w.Name, Engine: kind.String(), PrefixLen: depth,
				}
				for i := 0; i < repeat; i++ {
					run, err := runCompleteOnce(kind, w.Grammar, subject[:depth])
					if err != nil {
						res.Error = err.Error()
						break
					}
					if i == 0 || run.accept < res.AcceptNS {
						res.AcceptNS = run.accept
					}
					if run.feed > 0 && (res.FeedNS == 0 || run.feed < res.FeedNS) {
						res.FeedNS = run.feed
					}
					if i == 0 || run.open < res.OpenNS {
						res.OpenNS = run.open
					}
					if i == 0 || run.acceptAllocs < res.AcceptAllocs {
						res.AcceptAllocs = run.acceptAllocs
					}
					if i == 0 || run.feedAllocs < res.FeedAllocs {
						res.FeedAllocs = run.feedAllocs
					}
				}
				if res.Error == "" && res.AcceptNS > 0 {
					res.AcceptsPerSec = 1e9 / float64(res.AcceptNS)
				}
				out = append(out, res)
			}
		}
	}
	return out, nil
}

// completeRun is one measured cell: warm per-op costs in nanoseconds.
type completeRun struct {
	open, accept, feed       int64
	acceptAllocs, feedAllocs int64
}

func runCompleteOnce(kind engine.Kind, g *grammar.Grammar, prefix []grammar.Symbol) (completeRun, error) {
	var run completeRun
	e, err := engine.New(kind, g, nil)
	if err != nil {
		return run, err
	}
	start := time.Now()
	c, _, err := engine.OpenCursor(e, prefix)
	if err != nil {
		return run, err
	}
	defer c.Close()
	run.open = time.Since(start).Nanoseconds()

	var set engine.TermSet
	if err := c.Accepts(&set); err != nil { // warm-up: lazy tables expand here
		return run, err
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start = time.Now()
	for i := 0; i < completeAcceptIters; i++ {
		if err := c.Accepts(&set); err != nil {
			return run, err
		}
	}
	run.accept = time.Since(start).Nanoseconds() / completeAcceptIters
	runtime.ReadMemStats(&ms1)
	run.acceptAllocs = int64(ms1.Mallocs-ms0.Mallocs) / completeAcceptIters

	// Feed+restore cycle on the first accepted non-EOF terminal.
	var tok grammar.Symbol = grammar.NoSymbol
	for _, t := range set.AppendSyms(nil) {
		if t != grammar.EOF {
			tok = t
			break
		}
	}
	if tok == grammar.NoSymbol {
		return run, nil
	}
	cp := c.Checkpoint()
	if err := c.Feed(tok); err != nil { // warm-up
		return run, err
	}
	if err := c.Restore(cp); err != nil {
		return run, err
	}
	runtime.ReadMemStats(&ms0)
	start = time.Now()
	for i := 0; i < completeFeedIters; i++ {
		if err := c.Feed(tok); err != nil {
			return run, err
		}
		if err := c.Restore(cp); err != nil {
			return run, err
		}
	}
	run.feed = time.Since(start).Nanoseconds() / completeFeedIters
	runtime.ReadMemStats(&ms1)
	run.feedAllocs = int64(ms1.Mallocs-ms0.Mallocs) / completeFeedIters
	return run, nil
}

//go:build race

package harness

// raceEnabled reports that the race detector is active: instrumentation
// skews both timing and allocation accounting, so the edit-workload
// smoke relaxes its speedup assertion and skips alloc counting.
const raceEnabled = true

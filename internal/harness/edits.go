package harness

import (
	"fmt"
	"runtime"
	"time"

	"ipg/internal/earley"
	"ipg/internal/grammar"
	"ipg/internal/sdf"
)

// This file is the edit-workload measurement behind `ipg-bench`'s edits
// section: the editor loop (splice one small edit, reparse) over the
// paper's SDF fixtures, comparing a retained-chart incremental reparse
// (earley.Doc) against a from-scratch parse of the same edited text.
// The interesting columns are the reuse split — how many item sets the
// damage invariant kept verbatim — and the resulting speedup, as a
// function of where in the document the edit lands and how wide it is.

// EditPositions are the edit sites measured, as fractions of the
// document; EditSizes the edit widths in tokens. Late positions are
// where prefix reuse pays most — a 0.9 edit keeps 90% of the chart.
var (
	EditPositions = []float64{0.25, 0.50, 0.75, 0.90}
	EditSizes     = []int{1, 4, 16}
)

// EditResult is one (fixture, position, size) cell of the edit
// workload.
type EditResult struct {
	Fixture string `json:"fixture"`
	// Tokens is the document size; EditPos/EditLen locate the touch
	// edit (same-content replacement, so acceptance is preserved).
	Tokens  int `json:"tokens"`
	EditPos int `json:"edit_pos"`
	EditLen int `json:"edit_len"`
	// FullNS is a warm from-scratch parse of the document; ReparseNS a
	// warm splice+reparse on a retained chart; Speedup their ratio.
	FullNS    int64   `json:"full_ns"`
	ReparseNS int64   `json:"reparse_ns"`
	Speedup   float64 `json:"speedup"`
	// SetsReused/SetsRebuilt split the reparse's chart: sets kept
	// verbatim left of the damage vs sets re-driven.
	SetsReused  int `json:"sets_reused"`
	SetsRebuilt int `json:"sets_rebuilt"`
	// AllocsPerOp is the heap cost of one warm splice+reparse cycle
	// (same-length edits on a warm chart run allocation-free).
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// RunEdits measures the edit workload over the Fig 7.1 SDF fixtures in
// dir, repeating each cell `repeat` times and keeping minima.
func RunEdits(dir string, repeat int) ([]EditResult, error) {
	g := sdf.MustBootstrapGrammar()
	inputs, err := LoadInputs(dir, g.Symbols())
	if err != nil {
		return nil, err
	}
	if repeat < 1 {
		repeat = 1
	}
	var out []EditResult
	for _, in := range inputs {
		cells, err := runEditsOn(g, in, repeat)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", in.Name, err)
		}
		out = append(out, cells...)
	}
	return out, nil
}

// runEditsOn measures every (position, size) cell on one fixture. One
// parser serves both sides, so the from-scratch baseline parses with
// the same warm pools the incremental side resumes from.
func runEditsOn(g *grammar.Grammar, in Input, repeat int) ([]EditResult, error) {
	p := earley.New(g)
	n := SentenceLen(in.Tokens)

	// Warm from-scratch baseline: best of repeat passes after a warm-up.
	if res, err := p.Parse(in.Tokens, nil); err != nil || !res.Accepted {
		return nil, fmt.Errorf("baseline parse rejected (err=%v)", err)
	}
	var full time.Duration
	for i := 0; i < repeat; i++ {
		t0 := time.Now()
		res, err := p.Parse(in.Tokens, nil)
		dt := time.Since(t0)
		if err != nil || !res.Accepted {
			return nil, fmt.Errorf("baseline parse rejected (err=%v)", err)
		}
		if i == 0 || dt < full {
			full = dt
		}
	}

	d := p.OpenDoc(in.Tokens, false)
	if res := d.Reparse(); !res.Accepted {
		return nil, fmt.Errorf("document parse rejected")
	}

	var out []EditResult
	for _, q := range EditPositions {
		for _, size := range EditSizes {
			pos := int(q * float64(n))
			if pos+size > n {
				pos = n - size
			}
			if pos < 0 {
				continue
			}
			// Touch edit: replace the window with its own content, so
			// the document stays accepted while the chart right of pos
			// is damaged and re-driven.
			insert := append([]grammar.Symbol(nil), d.Tokens()[pos:pos+size]...)
			cell := EditResult{
				Fixture: in.Name, Tokens: n,
				EditPos: pos, EditLen: size,
				FullNS: full.Nanoseconds(),
			}
			cycle := func() error {
				if err := d.Splice(pos, size, insert); err != nil {
					return err
				}
				if res := d.Reparse(); !res.Accepted {
					return fmt.Errorf("edited document rejected")
				}
				return nil
			}
			// Warm the cell, then keep the best timed cycle.
			if err := cycle(); err != nil {
				return nil, err
			}
			var best time.Duration
			for i := 0; i < repeat; i++ {
				t0 := time.Now()
				if err := cycle(); err != nil {
					return nil, err
				}
				dt := time.Since(t0)
				if i == 0 || dt < best {
					best = dt
				}
			}
			st := d.Stats()
			cell.ReparseNS = best.Nanoseconds()
			cell.SetsReused = st.LastReused
			cell.SetsRebuilt = st.LastRebuilt
			if cell.ReparseNS > 0 {
				cell.Speedup = float64(cell.FullNS) / float64(cell.ReparseNS)
			}
			// Heap cost of the warm cycle, amortized over a short loop
			// (same-length splices on a warm chart should be free).
			const allocRuns = 32
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			for i := 0; i < allocRuns; i++ {
				if err := cycle(); err != nil {
					return nil, err
				}
			}
			runtime.ReadMemStats(&ms1)
			cell.AllocsPerOp = int64(ms1.Mallocs-ms0.Mallocs) / allocRuns
			out = append(out, cell)
		}
	}
	return out, nil
}

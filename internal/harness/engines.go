package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"ipg/internal/engine"
	"ipg/internal/grammar"
	"ipg/internal/sdf"
)

// This file is the cross-engine measurement procedure behind
// `ipg-bench -engines`: the same workloads driven through every backend
// of internal/engine, producing the construct/parse numbers that justify
// per-grammar engine selection (LALR on deterministic grammars, lazy GLR
// on ambiguous ones, Earley as the table-free floor).

// EngineWorkload is one named workload: a grammar plus pre-tokenized
// sentences.
type EngineWorkload struct {
	// Name identifies the workload in results.
	Name string
	// Grammar is the workload's grammar (shared read-only by engines).
	Grammar *grammar.Grammar
	// Sentences are the pre-tokenized inputs, all accepted by the
	// grammar.
	Sentences [][]grammar.Symbol
	// Kinds are the backends measured on this workload (LL is absent
	// where the grammar is not LL(1)).
	Kinds []engine.Kind
}

// exprSentences builds a deterministic expression workload: n sentences
// of growing size mixing the four operators and parentheses. No
// randomness, so runs are comparable.
func exprSentences(g *grammar.Grammar, n int) ([][]grammar.Symbol, error) {
	ops := []string{"+", "-", "*", "/"}
	lookup := func(name string) (grammar.Symbol, error) {
		s, ok := g.Symbols().Lookup(name)
		if !ok {
			return grammar.NoSymbol, fmt.Errorf("harness: workload grammar lacks terminal %q", name)
		}
		return s, nil
	}
	out := make([][]grammar.Symbol, 0, n)
	for i := 0; i < n; i++ {
		var b strings.Builder
		terms := 3 + i%8
		for t := 0; t < terms; t++ {
			if t > 0 {
				b.WriteString(" " + ops[(i+t)%len(ops)] + " ")
			}
			if (i+t)%3 == 0 {
				b.WriteString("( n " + ops[t%len(ops)] + " n )")
			} else {
				b.WriteString("n")
			}
		}
		var toks []grammar.Symbol
		for _, word := range strings.Fields(b.String()) {
			s, err := lookup(word)
			if err != nil {
				return nil, err
			}
			toks = append(toks, s)
		}
		// EOF-terminated: steady-state engine passes measure the
		// zero-copy warm path, exactly like service traffic.
		out = append(out, append(toks, grammar.EOF))
	}
	return out, nil
}

// EngineWorkloads builds the standard cross-engine workloads from the
// testdata directory: the stratified calculator (deterministic, not
// LL(1)), its LL(1) factoring, the genuinely ambiguous SDF calculator
// (Calc.sdf — flat `EXP op EXP` rules disambiguated by priorities, so
// auto must keep lazy GLR), and the paper's own SDF inputs over the
// bootstrap grammar (exp.sdf and Exam.sdf — the sizes Earley can take
// repeatedly; Fig 7.1 covers the big ones). The bootstrap grammar
// turns out LALR(1)-conflict-free — it splits under LR(0) lookahead-
// less parsing but is deterministic with one token of lookahead — so
// only the Calc.sdf workload exercises the GLR-or-nothing case.
func EngineWorkloads(dir string) ([]EngineWorkload, error) {
	loadBNF := func(name string) (*grammar.Grammar, error) {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		return grammar.Parse(string(src), nil)
	}

	det, err := loadBNF("CalcDet.bnf")
	if err != nil {
		return nil, err
	}
	detSentences, err := exprSentences(det, 64)
	if err != nil {
		return nil, err
	}
	llg, err := loadBNF("CalcLL.bnf")
	if err != nil {
		return nil, err
	}
	llSentences, err := exprSentences(llg, 64)
	if err != nil {
		return nil, err
	}

	calcG, calcSentences, err := calcSDFWorkload(dir)
	if err != nil {
		return nil, err
	}

	sdfG := sdf.MustBootstrapGrammar()
	inputs, err := LoadInputs(dir, sdfG.Symbols())
	if err != nil {
		return nil, err
	}
	var sdfSentences [][]grammar.Symbol
	for _, in := range inputs {
		if len(in.Tokens) <= 200 {
			sdfSentences = append(sdfSentences, in.Tokens)
		}
	}

	return []EngineWorkload{
		{
			Name: "calc-det", Grammar: det, Sentences: detSentences,
			Kinds: []engine.Kind{engine.KindGLR, engine.KindLALR, engine.KindEarley, engine.KindAuto},
		},
		{
			Name: "calc-ll", Grammar: llg, Sentences: llSentences,
			Kinds: []engine.Kind{engine.KindGLR, engine.KindLALR, engine.KindLL, engine.KindEarley, engine.KindAuto},
		},
		{
			Name: "calc-sdf-ambiguous", Grammar: calcG, Sentences: calcSentences,
			Kinds: []engine.Kind{engine.KindGLR, engine.KindLALR, engine.KindEarley, engine.KindAuto},
		},
		{
			Name: "sdf-bootstrap", Grammar: sdfG, Sentences: sdfSentences,
			Kinds: []engine.Kind{engine.KindGLR, engine.KindLALR, engine.KindEarley, engine.KindAuto},
		},
	}, nil
}

// calcSDFWorkload loads the ambiguous SDF calculator and tokenizes a
// deterministic set of numeric expressions with its generated scanner.
func calcSDFWorkload(dir string) (*grammar.Grammar, [][]grammar.Symbol, error) {
	src, err := os.ReadFile(filepath.Join(dir, "Calc.sdf"))
	if err != nil {
		return nil, nil, err
	}
	def, err := sdf.ParseDefinition(string(src))
	if err != nil {
		return nil, nil, err
	}
	conv, err := sdf.Convert(def, "")
	if err != nil {
		return nil, nil, err
	}
	sc, err := conv.Scanner()
	if err != nil {
		return nil, nil, err
	}
	ops := []string{"+", "-", "*", "/", "^"}
	var sentences [][]grammar.Symbol
	for i := 0; i < 32; i++ {
		var b strings.Builder
		terms := 3 + i%6
		for t := 0; t < terms; t++ {
			if t > 0 {
				b.WriteString(" " + ops[(i+t)%len(ops)] + " ")
			}
			fmt.Fprintf(&b, "%d", 1+(i+t)%9)
		}
		toks, _, err := sdf.TokenizeWith(sc, b.String(), conv.Grammar.Symbols())
		if err != nil {
			return nil, nil, err
		}
		sentences = append(sentences, append(toks, grammar.EOF))
	}
	return conv.Grammar, sentences, nil
}

// EngineResult is one (workload, engine) measurement.
type EngineResult struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	// Selected and Reason report auto's concrete choice.
	Selected string `json:"selected,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// ConstructNS is engine construction (eager backends pay table
	// generation here; lazy ones defer it into the first parses).
	ConstructNS int64 `json:"construct_ns"`
	// ParseNS is one full pass over the workload, recognition only,
	// after a warm-up pass (so lazy tables are measured in steady
	// state; warm-up cost is WarmParseNS).
	ParseNS int64 `json:"parse_ns"`
	// TreeParseNS is one steady-state pass with forest construction on
	// — the cost of actually answering with trees. Zero for backends
	// without tree building.
	TreeParseNS int64 `json:"tree_parse_ns,omitempty"`
	// WarmParseNS is the first, cold pass — for lazy GLR it includes
	// the by-need table expansion.
	WarmParseNS int64 `json:"warm_parse_ns"`
	Sentences   int   `json:"sentences"`
	Tokens      int   `json:"tokens"`
	// TokensPerSec is the steady-state throughput.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// AllocsPerOp and BytesPerOp are heap allocations and bytes per
	// steady-state pass (one full recognition pass over the workload) —
	// the numbers the allocation-regression CI gate compares against.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// P50NS/P95NS/P99NS are steady-state per-sentence latency
	// percentiles in nanoseconds.
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
	// Error marks backends a workload cannot use (e.g. LL on a
	// left-recursive grammar).
	Error string `json:"error,omitempty"`
}

// engineRun is one measured run of one backend over one workload.
type engineRun struct {
	construct, warm, parse, treeParse time.Duration
	// allocs/bytes are the heap cost of one steady pass; latencies the
	// per-sentence durations of that pass (sorted).
	allocs, bytes int64
	latencies     []time.Duration
	selected      string
	reason        string
}

// RunEngines measures every workload under each of its backends,
// repeating `repeat` times and keeping per-phase minima (scheduler-noise
// damping, as in Fig 7.1's procedure). Allocation counts take the
// minimum too (GC noise only adds); latency percentiles come from the
// fastest instrumented pass.
func RunEngines(workloads []EngineWorkload, repeat int) []EngineResult {
	if repeat < 1 {
		repeat = 1
	}
	var out []EngineResult
	for _, w := range workloads {
		tokens := 0
		for _, s := range w.Sentences {
			tokens += SentenceLen(s)
		}
		for _, kind := range w.Kinds {
			res := EngineResult{
				Workload: w.Name, Engine: kind.String(),
				Sentences: len(w.Sentences), Tokens: tokens,
			}
			for i := 0; i < repeat; i++ {
				run, err := runEnginesOnce(kind, w)
				if err != nil {
					res.Error = err.Error()
					break
				}
				if i == 0 || run.construct < time.Duration(res.ConstructNS) {
					res.ConstructNS = run.construct.Nanoseconds()
				}
				if i == 0 || run.warm < time.Duration(res.WarmParseNS) {
					res.WarmParseNS = run.warm.Nanoseconds()
				}
				if run.treeParse > 0 && (res.TreeParseNS == 0 || run.treeParse < time.Duration(res.TreeParseNS)) {
					res.TreeParseNS = run.treeParse.Nanoseconds()
				}
				if i == 0 || run.parse < time.Duration(res.ParseNS) {
					res.ParseNS = run.parse.Nanoseconds()
					res.P50NS = PercentileNS(run.latencies, 0.50)
					res.P95NS = PercentileNS(run.latencies, 0.95)
					res.P99NS = PercentileNS(run.latencies, 0.99)
				}
				if i == 0 || run.allocs < res.AllocsPerOp {
					res.AllocsPerOp = run.allocs
					res.BytesPerOp = run.bytes
				}
				res.Selected, res.Reason = run.selected, run.reason
			}
			if res.Error == "" && res.ParseNS > 0 {
				res.TokensPerSec = float64(tokens) / (float64(res.ParseNS) / 1e9)
			}
			out = append(out, res)
		}
	}
	return out
}

// SentenceLen is the real token count of an (EOF-terminated) sentence:
// the end marker is a framing convention, not input, so throughput and
// size columns exclude it — keeping tokens/s comparable with reports
// produced before the streams carried the marker.
func SentenceLen(s []grammar.Symbol) int {
	if n := len(s); n > 0 && s[n-1] == grammar.EOF {
		return n - 1
	}
	return len(s)
}

// PercentileNS reads the q-th percentile (nearest rank) from sorted
// per-sentence latencies; the engine benchmarks share it so their
// percentile columns and the -json artifact cannot diverge.
func PercentileNS(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Nanoseconds()
}

func runEnginesOnce(kind engine.Kind, w EngineWorkload) (engineRun, error) {
	var run engineRun
	start := time.Now()
	e, err := engine.New(kind, w.Grammar, nil)
	if err != nil {
		return run, err
	}
	run.construct = time.Since(start)
	if kind == engine.KindAuto {
		run.selected, run.reason = e.Kind().String(), e.Reason()
	}

	pass := func() (time.Duration, error) {
		start := time.Now()
		for _, s := range w.Sentences {
			ok, err := e.Recognize(s)
			if err != nil {
				return 0, err
			}
			if !ok {
				return 0, errors.New("harness: engine rejected a workload sentence")
			}
		}
		return time.Since(start), nil
	}
	if run.warm, err = pass(); err != nil {
		return run, err
	}
	if run.parse, err = pass(); err != nil {
		return run, err
	}

	// Tree-building steady pass, where the backend supports it: since
	// the Earley overhaul that is every engine except none — the column
	// compares what answering with forests actually costs.
	if e.Caps().Trees {
		start := time.Now()
		for _, s := range w.Sentences {
			res, err := e.Parse(s, true)
			if err != nil {
				return run, err
			}
			if !res.Accepted {
				return run, errors.New("harness: engine rejected a workload sentence (tree pass)")
			}
		}
		run.treeParse = time.Since(start)
	}

	// Instrumented steady pass: per-sentence latencies plus the heap
	// cost of one pass (measured apart from the timed pass above, so
	// ReadMemStats and per-sentence clock reads do not pollute ns/op).
	run.latencies = make([]time.Duration, 0, len(w.Sentences))
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for _, s := range w.Sentences {
		t0 := time.Now()
		ok, err := e.Recognize(s)
		run.latencies = append(run.latencies, time.Since(t0))
		if err != nil {
			return run, err
		}
		if !ok {
			return run, errors.New("harness: engine rejected a workload sentence")
		}
	}
	runtime.ReadMemStats(&ms1)
	run.allocs = int64(ms1.Mallocs - ms0.Mallocs)
	run.bytes = int64(ms1.TotalAlloc - ms0.TotalAlloc)
	sort.Slice(run.latencies, func(i, j int) bool { return run.latencies[i] < run.latencies[j] })
	return run, nil
}

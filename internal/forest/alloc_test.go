package forest

import (
	"testing"

	"ipg/internal/grammar"
)

// The allocation budgets below are regression gates for the zero-alloc
// steady state: the parser's hot path calls Leaf and Rule once per token
// and reduction, so a hit on the hash-consing index must not allocate at
// all, and a miss must amortize through the node arena.

func allocGrammar(t *testing.T) (*grammar.Grammar, *grammar.Rule, grammar.Symbol) {
	t.Helper()
	g, err := grammar.Parse(`
START ::= B
B ::= "true" | B "or" B
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := g.Symbols().Lookup("true")
	var rule *grammar.Rule
	for _, r := range g.Rules() {
		if r.Len() == 3 {
			rule = r
		}
	}
	if rule == nil {
		t.Fatal("no B ::= B or B rule")
	}
	return g, rule, tr
}

func TestLeafHitAllocFree(t *testing.T) {
	_, _, tr := allocGrammar(t)
	f := NewForest()
	f.Leaf(tr, 0) // create the node once
	avg := testing.AllocsPerRun(200, func() {
		if f.Leaf(tr, 0) == nil {
			t.Fatal("nil leaf")
		}
	})
	if avg != 0 {
		t.Errorf("Leaf hit allocates %.2f allocs/op, want 0", avg)
	}
}

func TestRuleHitAllocFree(t *testing.T) {
	_, rule, tr := allocGrammar(t)
	f := NewForest()
	children := []*Node{f.Leaf(tr, 0), f.Leaf(tr, 1), f.Leaf(tr, 2)}
	first := f.Rule(rule, children)
	avg := testing.AllocsPerRun(200, func() {
		if f.Rule(rule, children) != first {
			t.Fatal("hash-consing miss")
		}
	})
	if avg != 0 {
		t.Errorf("Rule hit allocates %.2f allocs/op, want 0", avg)
	}
}

func TestRuleMissAmortized(t *testing.T) {
	_, rule, tr := allocGrammar(t)
	f := NewForest()
	// Pre-touch the arena and index so steady-state growth is measured,
	// not first-use setup.
	for i := 0; i < 2*arenaChunk; i++ {
		f.Leaf(tr, i)
	}
	pos := 2 * arenaChunk
	children := make([]*Node, 3)
	avg := testing.AllocsPerRun(1000, func() {
		// Three fresh leaves and one fresh rule node per run: four arena
		// nodes plus index inserts.
		children[0] = f.Leaf(tr, pos)
		children[1] = f.Leaf(tr, pos+1)
		children[2] = f.Leaf(tr, pos+2)
		pos += 3
		if f.Rule(rule, children) == nil {
			t.Fatal("nil rule node")
		}
	})
	// Four nodes/run at one block allocation per arenaChunk nodes, plus
	// amortized map growth and child-arena blocks: well under one
	// allocation per created node. Budget 2 allocs/run (the old
	// string-keyed scheme spent 3+ on keys alone).
	if avg > 2 {
		t.Errorf("Rule/Leaf miss path allocates %.2f allocs/op, budget 2", avg)
	}
}

package forest

import (
	"errors"
	"math"
	"strings"
	"testing"

	"ipg/internal/grammar"
)

func exprFixture(t *testing.T) (*grammar.Grammar, *Forest) {
	t.Helper()
	g := grammar.MustParse(`
START ::= B
B ::= "true" | "false"
B ::= B "or" B
`)
	return g, NewForest()
}

func symbols(g *grammar.Grammar, names ...string) []grammar.Symbol {
	out := make([]grammar.Symbol, len(names))
	for i, n := range names {
		s, ok := g.Symbols().Lookup(n)
		if !ok {
			panic("unknown symbol " + n)
		}
		out[i] = s
	}
	return out
}

func TestLeafSharing(t *testing.T) {
	g, f := exprFixture(t)
	tr := symbols(g, "true")[0]
	a := f.Leaf(tr, 0)
	b := f.Leaf(tr, 0)
	if a != b {
		t.Error("identical leaves not shared")
	}
	c := f.Leaf(tr, 1)
	if a == c {
		t.Error("leaves at different positions should differ")
	}
	if f.NodeCount() != 2 {
		t.Errorf("NodeCount = %d, want 2", f.NodeCount())
	}
}

func TestRuleSharing(t *testing.T) {
	g, f := exprFixture(t)
	b, _ := g.Symbols().Lookup("B")
	tr := symbols(g, "true")[0]
	var unitRule *grammar.Rule
	for _, r := range g.RulesFor(b) {
		if r.Len() == 1 && r.Rhs[0] == tr {
			unitRule = r
		}
	}
	leaf := f.Leaf(tr, 0)
	n1 := f.Rule(unitRule, []*Node{leaf})
	n2 := f.Rule(unitRule, []*Node{leaf})
	if n1 != n2 {
		t.Error("identical rule nodes not shared")
	}
	if n1.Symbol() != b || n1.Rule() != unitRule {
		t.Error("rule node fields wrong")
	}
}

func TestRuleArityCheck(t *testing.T) {
	g, f := exprFixture(t)
	b, _ := g.Symbols().Lookup("B")
	tr := symbols(g, "true")[0]
	var unitRule *grammar.Rule
	for _, r := range g.RulesFor(b) {
		if r.Len() == 1 && r.Rhs[0] == tr {
			unitRule = r
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong arity should panic")
		}
	}()
	f.Rule(unitRule, nil)
}

func buildAmbForest(t *testing.T) (*grammar.Grammar, *Forest, *Node) {
	t.Helper()
	g, f := exprFixture(t)
	b, _ := g.Symbols().Lookup("B")
	var unit, orRule *grammar.Rule
	tr := symbols(g, "true")[0]
	for _, r := range g.RulesFor(b) {
		switch {
		case r.Len() == 1 && r.Rhs[0] == tr:
			unit = r
		case r.Len() == 3:
			orRule = r
		}
	}
	or := symbols(g, "or")[0]
	// true or true or true, both associations.
	t0 := f.Rule(unit, []*Node{f.Leaf(tr, 0)})
	t2 := f.Rule(unit, []*Node{f.Leaf(tr, 2)})
	t4 := f.Rule(unit, []*Node{f.Leaf(tr, 4)})
	o1, o3 := f.Leaf(or, 1), f.Leaf(or, 3)
	left := f.Rule(orRule, []*Node{f.Rule(orRule, []*Node{t0, o1, t2}), o3, t4})
	right := f.Rule(orRule, []*Node{t0, o1, f.Rule(orRule, []*Node{t2, o3, t4})})
	root := f.Ambiguity(left, right)
	return g, f, root
}

func TestAmbiguityBasics(t *testing.T) {
	g, f, root := buildAmbForest(t)
	if root.Kind() != Amb || len(root.Alts()) != 2 {
		t.Fatalf("root is %v with %d alts", root.Kind(), len(root.Alts()))
	}
	n, err := TreeCount(root)
	if err != nil || n != 2 {
		t.Fatalf("TreeCount = %d, %v", n, err)
	}
	s := String(root, g.Symbols())
	if !strings.Contains(s, "|") || !strings.HasPrefix(s, "{") {
		t.Errorf("ambiguity renders as %s", s)
	}
	_ = f
}

func TestAmbiguitySingleCollapses(t *testing.T) {
	g, f := exprFixture(t)
	tr := symbols(g, "true")[0]
	leaf := f.Leaf(tr, 0)
	if f.Ambiguity(leaf) != leaf {
		t.Error("single-alternative Ambiguity should return the alternative")
	}
	if f.Ambiguity(leaf, leaf) != leaf {
		t.Error("duplicate alternatives should collapse")
	}
}

func TestAmbiguityFlattens(t *testing.T) {
	g, f := exprFixture(t)
	tr := symbols(g, "true")[0]
	fa := symbols(g, "false")[0]
	l1, l2, l3 := f.Leaf(tr, 0), f.Leaf(fa, 0), f.Leaf(tr, 1)
	inner := f.Ambiguity(l1, l2)
	outer := f.Ambiguity(inner, l3)
	if len(outer.Alts()) != 3 {
		t.Errorf("nested ambiguity should flatten: %d alts", len(outer.Alts()))
	}
}

func TestSlotAndPack(t *testing.T) {
	g, f := exprFixture(t)
	tr := symbols(g, "true")[0]
	fa := symbols(g, "false")[0]
	l1, l2 := f.Leaf(tr, 0), f.Leaf(fa, 0)
	slot := f.Slot(l1)
	if slot.Kind() != Amb || len(slot.Alts()) != 1 {
		t.Fatal("Slot should be a single-alt amb node")
	}
	// Single-alt slots render transparently.
	if got := String(slot, g.Symbols()); got != "true" {
		t.Errorf("slot renders as %q", got)
	}
	f.Pack(slot, l2)
	if len(slot.Alts()) != 2 {
		t.Error("Pack did not extend slot")
	}
	f.Pack(slot, l2) // duplicate
	if len(slot.Alts()) != 2 {
		t.Error("Pack should deduplicate")
	}
	// Packing an amb merges its alternatives.
	other := f.Slot(l1)
	f.Pack(slot, other)
	if len(slot.Alts()) != 2 {
		t.Error("packing an amb with known alts should not grow the slot")
	}
}

func TestPackNonAmbPanics(t *testing.T) {
	g, f := exprFixture(t)
	tr := symbols(g, "true")[0]
	leaf := f.Leaf(tr, 0)
	defer func() {
		if recover() == nil {
			t.Error("Pack on non-amb should panic")
		}
	}()
	f.Pack(leaf, leaf)
}

func TestYield(t *testing.T) {
	g, _, root := buildAmbForest(t)
	y, err := Yield(root)
	if err != nil {
		t.Fatal(err)
	}
	names := g.Symbols().NamesOf(y)
	if names != "true or true or true" {
		t.Errorf("yield = %s", names)
	}
}

func TestTrees(t *testing.T) {
	g, _, root := buildAmbForest(t)
	all, err := Trees(root, g.Symbols(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("Trees enumerated %d, want 2: %v", len(all), all)
	}
	limited, err := Trees(root, g.Symbols(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 {
		t.Errorf("limit not respected: %d", len(limited))
	}
}

func TestTreeCountSaturates(t *testing.T) {
	g, f := exprFixture(t)
	tr := symbols(g, "true")[0]
	// Build a chain of ambiguity nodes each doubling the count: 2^70
	// saturates at MaxInt64.
	b, _ := g.Symbols().Lookup("B")
	var unit, orRule *grammar.Rule
	for _, r := range g.RulesFor(b) {
		if r.Len() == 1 && r.Rhs[0] == tr {
			unit = r
		}
		if r.Len() == 3 {
			orRule = r
		}
	}
	or := symbols(g, "or")[0]
	// Each level doubles the tree count: amb of two distinct derivations
	// of the same span, composed 70 times, saturates 2^70 > MaxInt64.
	cur := f.Ambiguity(
		f.Rule(unit, []*Node{f.Leaf(tr, 0)}),
		f.Rule(unit, []*Node{f.Leaf(tr, 1)}),
	)
	for i := 0; i < 70; i++ {
		alt1 := f.Rule(unit, []*Node{f.Leaf(tr, 2*i+2)})
		alt2 := f.Rule(unit, []*Node{f.Leaf(tr, 2*i+3)})
		cur = f.Rule(orRule, []*Node{cur, f.Leaf(or, i), f.Ambiguity(alt1, alt2)})
	}
	n, err := TreeCount(cur)
	if err != nil {
		t.Fatal(err)
	}
	if n != math.MaxInt64 {
		t.Errorf("TreeCount = %d, want saturation at MaxInt64", n)
	}
}

func TestCyclicForestDetected(t *testing.T) {
	g, f := exprFixture(t)
	b, _ := g.Symbols().Lookup("B")
	tr := symbols(g, "true")[0]
	var unit *grammar.Rule
	for _, r := range g.RulesFor(b) {
		if r.Len() == 1 && r.Rhs[0] == tr {
			unit = r
		}
	}
	leaf := f.Leaf(tr, 0)
	base := f.Rule(unit, []*Node{leaf})
	slot := f.Slot(base)
	// Create a cycle: pack an alternative whose child is the slot itself.
	// (This is what parsing 'x' with A ::= A | "x" produces.)
	cyc := f.Rule(unit, []*Node{slot})
	f.Pack(slot, cyc)
	if _, err := TreeCount(slot); !errors.Is(err, ErrCyclic) {
		t.Errorf("TreeCount on cyclic forest: %v", err)
	}
	if _, err := Trees(slot, g.Symbols(), 10); !errors.Is(err, ErrCyclic) {
		t.Errorf("Trees on cyclic forest: %v", err)
	}
	if s := String(slot, g.Symbols()); !strings.Contains(s, "<cycle>") {
		t.Errorf("String on cyclic forest: %s", s)
	}
}

func TestDOT(t *testing.T) {
	g, _, root := buildAmbForest(t)
	dot := DOT(root, g.Symbols())
	for _, want := range []string{"digraph forest", "amb", "true@0"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Shared leaf true@0 appears exactly once.
	if strings.Count(dot, "\"true@0\"") != 1 {
		t.Error("shared leaf duplicated in DOT")
	}
}

// Package forest implements shared parse forests: the parse-tree
// representation built by the parallel LR parsers of section 3. Rule and
// leaf nodes are hash-consed ("we improved the sharing of parse trees",
// section 7 footnote, after a suggestion of B. Lang); ambiguities are
// packed into dedicated ambiguity nodes so a forest represents all parses
// of a sentence in space polynomial in its length for finitely ambiguous
// grammars.
package forest

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"ipg/internal/grammar"
)

// Kind discriminates forest nodes. Go has no sum types; Node is a tagged
// struct and Kind is the tag.
type Kind uint8

const (
	// Leaf is a terminal occurrence in the input.
	Leaf Kind = iota
	// RuleNode is an application of a syntax rule to child nodes.
	RuleNode
	// Amb packs alternative derivations of the same span and symbol.
	Amb
)

// String returns "leaf", "rule" or "amb".
func (k Kind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case RuleNode:
		return "rule"
	case Amb:
		return "amb"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is a parse-forest node. Leaf and rule nodes are immutable and
// hash-consed by their Forest; ambiguity nodes are mutable (the GSS parser
// packs additional alternatives into them as it discovers local
// ambiguities) and never shared between distinct (symbol, span) slots.
type Node struct {
	id   int
	kind Kind

	// sym is the terminal (leaf) or the defined nonterminal (rule, amb).
	sym grammar.Symbol
	// pos is the token index of a leaf.
	pos int
	// rule is the applied rule of a rule node.
	rule *grammar.Rule
	// children of a rule node (len = rule.Len()).
	children []*Node
	// alts of an ambiguity node, all with the same sym.
	alts []*Node
	// hashNext chains hash-consed rule nodes that share an interning
	// hash bucket (see Forest.Rule).
	hashNext *Node
}

// ID returns a unique (per Forest) node number.
func (n *Node) ID() int { return n.id }

// Kind returns the node kind.
func (n *Node) Kind() Kind { return n.kind }

// Symbol returns the terminal of a leaf or the nonterminal derived by a
// rule or ambiguity node.
func (n *Node) Symbol() grammar.Symbol { return n.sym }

// Pos returns the token index of a leaf node.
func (n *Node) Pos() int { return n.pos }

// Rule returns the rule of a rule node, nil otherwise.
func (n *Node) Rule() *grammar.Rule { return n.rule }

// Children returns the children of a rule node. Callers must not modify
// the slice.
func (n *Node) Children() []*Node { return n.children }

// Alts returns the packed alternatives of an ambiguity node. Callers must
// not modify the slice.
func (n *Node) Alts() []*Node { return n.alts }

// Forest hash-conses leaf and rule nodes and creates ambiguity nodes. The
// zero value is not usable; use NewForest.
//
// Node storage is a chunked arena: nodes are carved out of fixed-size
// blocks instead of being allocated one by one, so the parser's hot path
// (Leaf/Rule per token and reduction) does amortized-constant heap work.
// Interned rule nodes are deduplicated through a hash chain keyed by the
// rule's value identity and the child node identities — no string key is
// built per call (the dominant steady-state allocation before this
// scheme).
type Forest struct {
	nodes   int
	leafIdx map[leafKey]*Node
	// ruleIdx maps an interning hash to a chain of rule nodes linked
	// through Node.hashNext; ruleEq resolves collisions exactly.
	ruleIdx map[uint64]*Node

	// chunk is the current node arena block; when full a new block is
	// started (live nodes keep earlier blocks reachable).
	chunk []Node
	// childArena backs the children slices of rule nodes; carved
	// slices are capacity-capped so later carving cannot alias them.
	childArena []*Node
}

type leafKey struct {
	sym grammar.Symbol
	pos int
}

// arenaChunk is the node-arena block size. Forests of a few nodes pay
// one small block; big forests amortize one allocation per block.
const arenaChunk = 256

// NewForest returns an empty forest.
func NewForest() *Forest {
	return &Forest{
		leafIdx: make(map[leafKey]*Node),
		ruleIdx: make(map[uint64]*Node),
	}
}

// NodeCount returns the number of distinct nodes created, the measure of
// sharing (compare with TreeCount, which counts unshared trees).
func (f *Forest) NodeCount() int { return f.nodes }

func (f *Forest) newNode(k Kind) *Node {
	if len(f.chunk) == cap(f.chunk) {
		f.chunk = make([]Node, 0, arenaChunk)
	}
	f.chunk = f.chunk[:len(f.chunk)+1]
	n := &f.chunk[len(f.chunk)-1]
	n.id = f.nodes
	n.kind = k
	f.nodes++
	return n
}

// copyChildren persists a caller-owned children slice into the forest's
// child arena. The returned slice is capacity-capped at its length, so
// appends through it can never scribble over later carvings.
func (f *Forest) copyChildren(children []*Node) []*Node {
	n := len(children)
	if n == 0 {
		return nil
	}
	if cap(f.childArena)-len(f.childArena) < n {
		size := arenaChunk
		if n > size {
			size = n
		}
		f.childArena = make([]*Node, 0, size)
	}
	start := len(f.childArena)
	f.childArena = append(f.childArena, children...)
	return f.childArena[start : start+n : start+n]
}

// Leaf returns the (shared) leaf node for terminal sym at token index pos.
func (f *Forest) Leaf(sym grammar.Symbol, pos int) *Node {
	k := leafKey{sym, pos}
	if n, ok := f.leafIdx[k]; ok {
		return n
	}
	n := f.newNode(Leaf)
	n.sym = sym
	n.pos = pos
	f.leafIdx[k] = n
	return n
}

// ruleHash mixes the rule's value identity and the child node IDs into
// the interning hash (FNV-1a).
func ruleHash(r *grammar.Rule, children []*Node) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	key := r.Key()
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	for _, c := range children {
		id := uint64(c.id)
		h = (h ^ (id & 0xff)) * prime64
		h = (h ^ (id >> 8)) * prime64
	}
	return h
}

// ruleEq reports whether interned rule node n is exactly the application
// of r to children. Rules compare by value identity (Key), children by
// node identity — the same equivalence the old string key encoded.
func ruleEq(n *Node, r *grammar.Rule, children []*Node) bool {
	if len(n.children) != len(children) {
		return false
	}
	if n.rule != r && n.rule.Key() != r.Key() {
		return false
	}
	for i, c := range children {
		if n.children[i] != c {
			return false
		}
	}
	return true
}

// Rule returns the (shared) rule node applying r to children. The number
// of children must equal the rule length. The caller keeps ownership of
// the children slice and may reuse it.
func (f *Forest) Rule(r *grammar.Rule, children []*Node) *Node {
	if len(children) != r.Len() {
		panic(fmt.Sprintf("forest: rule %v applied to %d children", r, len(children)))
	}
	h := ruleHash(r, children)
	for n := f.ruleIdx[h]; n != nil; n = n.hashNext {
		if ruleEq(n, r, children) {
			return n
		}
	}
	n := f.newNode(RuleNode)
	n.sym = r.Lhs
	n.rule = r
	n.children = f.copyChildren(children)
	n.hashNext = f.ruleIdx[h]
	f.ruleIdx[h] = n
	return n
}

// Ambiguity creates a mutable ambiguity node over the given alternatives
// (deduplicated; nested ambiguity nodes are flattened). It returns the
// single alternative directly when only one remains.
func (f *Forest) Ambiguity(alts ...*Node) *Node {
	flat := make([]*Node, 0, len(alts))
	seen := map[int]bool{}
	var add func(n *Node)
	add = func(n *Node) {
		if n.kind == Amb {
			for _, a := range n.alts {
				add(a)
			}
			return
		}
		if !seen[n.id] {
			seen[n.id] = true
			flat = append(flat, n)
		}
	}
	for _, a := range alts {
		add(a)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	n := f.newNode(Amb)
	if len(flat) > 0 {
		n.sym = flat[0].sym
	}
	n.alts = flat
	return n
}

// Slot creates a mutable single-alternative ambiguity node. The GSS
// engine labels every stack edge with a slot so that later local
// ambiguities can be packed in place: parents that already reference the
// slot see new alternatives without rebuilding. Rendering collapses
// single-alternative slots transparently.
func (f *Forest) Slot(first *Node) *Node {
	n := f.newNode(Amb)
	n.sym = first.sym
	// Carve the initial single-alternative slice from the child arena;
	// its capacity is capped at 1, so Pack's append reallocates instead
	// of clobbering neighbouring carvings.
	if cap(f.childArena)-len(f.childArena) < 1 {
		f.childArena = make([]*Node, 0, arenaChunk)
	}
	start := len(f.childArena)
	f.childArena = append(f.childArena, first)
	n.alts = f.childArena[start : start+1 : start+1]
	return n
}

// Pack adds alternative alt to ambiguity node n (used by the GSS engine's
// local ambiguity packing). Duplicate and nested alternatives are merged.
func (f *Forest) Pack(n *Node, alt *Node) {
	if n.kind != Amb {
		panic("forest: Pack on non-ambiguity node")
	}
	add := func(a *Node) {
		for _, x := range n.alts {
			if x == a {
				return
			}
		}
		n.alts = append(n.alts, a)
	}
	if alt.kind == Amb {
		for _, a := range alt.alts {
			add(a)
		}
		return
	}
	add(alt)
}

// ErrCyclic is returned by traversals of cyclic forests, which arise from
// cyclic grammars (A ::= A): such grammars are not finitely ambiguous and
// fall outside the class the parallel parser supports (section 2.1).
var ErrCyclic = errors.New("forest: cyclic forest (grammar not finitely ambiguous)")

// TreeCount returns the number of distinct parse trees the forest rooted
// at n represents, saturating at math.MaxInt64. It returns ErrCyclic for
// cyclic forests.
func TreeCount(n *Node) (int64, error) {
	memo := map[int]int64{}
	onPath := map[int]bool{}
	var count func(n *Node) (int64, error)
	count = func(n *Node) (int64, error) {
		if c, ok := memo[n.id]; ok {
			return c, nil
		}
		if onPath[n.id] {
			return 0, ErrCyclic
		}
		onPath[n.id] = true
		defer delete(onPath, n.id)
		var c int64
		switch n.kind {
		case Leaf:
			c = 1
		case RuleNode:
			c = 1
			for _, ch := range n.children {
				cc, err := count(ch)
				if err != nil {
					return 0, err
				}
				c = satMul(c, cc)
			}
		case Amb:
			for _, a := range n.alts {
				ca, err := count(a)
				if err != nil {
					return 0, err
				}
				c = satAdd(c, ca)
			}
		}
		memo[n.id] = c
		return c, nil
	}
	return count(n)
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// Yield returns the terminal symbols at the leaves, left to right,
// resolving each ambiguity by its first alternative. For a well-formed
// parse forest this equals the parsed sentence regardless of the
// resolution.
func Yield(n *Node) ([]grammar.Symbol, error) {
	var out []grammar.Symbol
	depth := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		depth++
		defer func() { depth-- }()
		if depth > 1<<20 {
			return ErrCyclic
		}
		switch n.kind {
		case Leaf:
			out = append(out, n.sym)
		case RuleNode:
			for _, c := range n.children {
				if err := walk(c); err != nil {
					return err
				}
			}
		case Amb:
			if len(n.alts) > 0 {
				return walk(n.alts[0])
			}
		}
		return nil
	}
	if err := walk(n); err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the forest rooted at n in bracketed form:
// leaves as their names, rule nodes as Lhs(children...), ambiguities as
// {alt | alt}. Alternatives are sorted for determinism; cycles render as
// <cycle>.
func String(n *Node, t *grammar.SymbolTable) string {
	return stringWalk(n, t, map[int]bool{})
}

func stringWalk(n *Node, t *grammar.SymbolTable, onPath map[int]bool) string {
	switch n.kind {
	case Leaf:
		return t.Name(n.sym)
	case RuleNode:
		var b strings.Builder
		b.WriteString(t.Name(n.sym))
		b.WriteByte('(')
		for i, c := range n.children {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(stringWalk(c, t, onPath))
		}
		b.WriteByte(')')
		return b.String()
	case Amb:
		if onPath[n.id] {
			return "<cycle>"
		}
		onPath[n.id] = true
		defer delete(onPath, n.id)
		if len(n.alts) == 1 {
			// Single-alternative slots render transparently.
			return stringWalk(n.alts[0], t, onPath)
		}
		parts := make([]string, 0, len(n.alts))
		for _, a := range n.alts {
			parts = append(parts, stringWalk(a, t, onPath))
		}
		sort.Strings(parts)
		return "{" + strings.Join(parts, " | ") + "}"
	default:
		return "?"
	}
}

// Trees enumerates up to limit distinct unshared trees (as bracketed
// strings, sorted) represented by the forest. It returns ErrCyclic for
// cyclic forests.
func Trees(n *Node, t *grammar.SymbolTable, limit int) ([]string, error) {
	if limit <= 0 {
		limit = math.MaxInt
	}
	onPath := map[int]bool{}
	var expand func(n *Node) ([]string, error)
	expand = func(n *Node) ([]string, error) {
		if onPath[n.id] {
			return nil, ErrCyclic
		}
		onPath[n.id] = true
		defer delete(onPath, n.id)
		switch n.kind {
		case Leaf:
			return []string{t.Name(n.sym)}, nil
		case RuleNode:
			acc := []string{t.Name(n.sym) + "("}
			for i, c := range n.children {
				sub, err := expand(c)
				if err != nil {
					return nil, err
				}
				var next []string
				for _, pre := range acc {
					for _, s := range sub {
						sep := ""
						if i > 0 {
							sep = " "
						}
						next = append(next, pre+sep+s)
						if len(next) >= limit {
							break
						}
					}
					if len(next) >= limit {
						break
					}
				}
				acc = next
			}
			for i := range acc {
				acc[i] += ")"
			}
			return acc, nil
		case Amb:
			var all []string
			for _, a := range n.alts {
				sub, err := expand(a)
				if err != nil {
					return nil, err
				}
				all = append(all, sub...)
				if len(all) >= limit {
					all = all[:limit]
					break
				}
			}
			return all, nil
		}
		return nil, nil
	}
	out, err := expand(n)
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// DOT renders the forest in Graphviz format; shared nodes appear once.
func DOT(n *Node, t *grammar.SymbolTable) string {
	var b strings.Builder
	b.WriteString("digraph forest {\n  node [fontname=\"monospace\"];\n")
	seen := map[int]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n.id] {
			return
		}
		seen[n.id] = true
		switch n.kind {
		case Leaf:
			fmt.Fprintf(&b, "  n%d [label=\"%s@%d\", shape=plaintext];\n", n.id, t.Name(n.sym), n.pos)
		case RuleNode:
			fmt.Fprintf(&b, "  n%d [label=\"%s\", shape=box];\n", n.id, t.Name(n.sym))
			for i, c := range n.children {
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d\"];\n", n.id, c.id, i)
				walk(c)
			}
		case Amb:
			fmt.Fprintf(&b, "  n%d [label=\"amb %s\", shape=diamond];\n", n.id, t.Name(n.sym))
			for _, a := range n.alts {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", n.id, a.id)
				walk(a)
			}
		}
	}
	walk(n)
	b.WriteString("}\n")
	return b.String()
}

package ll

import (
	"errors"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/forest"
	"ipg/internal/grammar"
)

const llExpr = `
START ::= E
E ::= T Etail
Etail ::= "+" T Etail | ε
T ::= "x" | "(" E ")"
`

func TestLL1TableNoConflicts(t *testing.T) {
	tbl := Generate(grammar.MustParse(llExpr))
	if n := len(tbl.Conflicts()); n != 0 {
		t.Fatalf("LL(1) grammar reports %d conflicts: %+v", n, tbl.Conflicts())
	}
}

func TestPredictiveParse(t *testing.T) {
	g := grammar.MustParse(llExpr)
	tbl := Generate(g)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"x", true},
		{"x + x + x", true},
		{"( x + x )", true},
		{"( x + x ) + x", true},
		{"x +", false},
		{"+ x", false},
		{"( x", false},
		{"", false},
	} {
		got, err := tbl.Parse(fixtures.Tokens(g, tc.input))
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestLeftRecursionConflicts(t *testing.T) {
	// Left-recursive grammars are never LL(1).
	tbl := Generate(grammar.MustParse(`
START ::= E
E ::= E "+" "x" | "x"
`))
	if len(tbl.Conflicts()) == 0 {
		t.Fatal("left-recursive grammar should report LL(1) conflicts")
	}
	if _, err := tbl.Parse(nil); !errors.Is(err, ErrNotLL1) {
		t.Fatalf("Parse on conflicted table: want ErrNotLL1, got %v", err)
	}
}

func TestAmbiguousConflicts(t *testing.T) {
	tbl := Generate(fixtures.Booleans())
	if len(tbl.Conflicts()) == 0 {
		t.Fatal("ambiguous grammar should report LL(1) conflicts")
	}
}

func TestRecursiveDescent(t *testing.T) {
	g := grammar.MustParse(llExpr)
	parse, err := BuildRecursiveDescent(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"x + ( x + x )", true},
		{"x x", false},
		{"( )", false},
	} {
		if got := parse(fixtures.Tokens(g, tc.input)); got != tc.want {
			t.Errorf("rd(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestRecursiveDescentRejectsNonLL1(t *testing.T) {
	if _, err := BuildRecursiveDescent(fixtures.Booleans()); !errors.Is(err, ErrNotLL1) {
		t.Fatalf("want ErrNotLL1, got %v", err)
	}
}

func TestTableAndRDagree(t *testing.T) {
	g := grammar.MustParse(llExpr)
	tbl := Generate(g)
	rd, err := BuildRecursiveDescent(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range []string{"x", "x + x", "( ( x ) )", "x + + x", "( x ) ("} {
		toks := fixtures.Tokens(g, input)
		a, err := tbl.Parse(toks)
		if err != nil {
			t.Fatal(err)
		}
		b := rd(toks)
		if a != b {
			t.Errorf("table=%v rd=%v on %q", a, b, input)
		}
	}
}

func TestEpsilonViaFollow(t *testing.T) {
	g := grammar.MustParse(`
START ::= A "b"
A ::= "a" | ε
`)
	tbl := Generate(g)
	if len(tbl.Conflicts()) != 0 {
		t.Fatalf("conflicts: %+v", tbl.Conflicts())
	}
	got, err := tbl.Parse(fixtures.Tokens(g, "b"))
	if err != nil || !got {
		t.Errorf("epsilon production through FOLLOW failed: %v %v", got, err)
	}
}

func TestParseForestBuildsUniqueTree(t *testing.T) {
	g := grammar.MustParse(llExpr)
	tbl := Generate(g)
	f := forest.NewForest()
	root, errPos, _, err := tbl.ParseForest(fixtures.Tokens(g, "x + ( x + x )"), f)
	if err != nil {
		t.Fatal(err)
	}
	if root == nil || errPos != -1 {
		t.Fatalf("ParseForest rejected an LL(1) sentence (errPos=%d)", errPos)
	}
	if n, err := forest.TreeCount(root); err != nil || n != 1 {
		t.Fatalf("TreeCount = %d, %v; want exactly 1 (LL(1) is unambiguous)", n, err)
	}
	got := forest.String(root, g.Symbols())
	if got == "" {
		t.Fatal("empty tree rendering")
	}
}

func TestParseForestDiagnostics(t *testing.T) {
	g := grammar.MustParse(llExpr)
	tbl := Generate(g)
	syms := g.Symbols()
	for _, tc := range []struct {
		input   string
		wantPos int
	}{
		{"x +", 2},     // Etail needs a T after "+"
		{"+ x", 0},     // no prediction for E on "+"
		{"x x", 1},     // trailing garbage after a complete E
		{"( x + x", 4}, // unclosed paren: end of input
	} {
		toks := fixtures.Tokens(g, tc.input)
		root, errPos, expected, err := tbl.ParseForest(toks, forest.NewForest())
		if err != nil {
			t.Fatal(err)
		}
		if root != nil {
			t.Errorf("ParseForest(%q) accepted", tc.input)
			continue
		}
		if errPos != tc.wantPos {
			t.Errorf("ParseForest(%q) errPos = %d, want %d (expected %v)", tc.input, errPos, tc.wantPos, expected)
		}
		if len(expected) == 0 {
			t.Errorf("ParseForest(%q) reported no expected terminals", tc.input)
		}
		for _, s := range expected {
			if s != grammar.EOF && syms.Kind(s) != grammar.Terminal {
				t.Errorf("ParseForest(%q) expected non-terminal %q", tc.input, syms.Name(s))
			}
		}
	}
}

func TestParseForestConflictedTable(t *testing.T) {
	g := grammar.MustParse(`
START ::= S
S ::= "a" S | "a"
`)
	tbl := Generate(g)
	if _, _, _, err := tbl.ParseForest(fixtures.Tokens(g, "a a"), forest.NewForest()); !errors.Is(err, ErrNotLL1) {
		t.Fatalf("ParseForest on conflicted table: err = %v, want ErrNotLL1", err)
	}
}

func TestParseForestDeepInputNoStackGrowth(t *testing.T) {
	// A service-sized, deeply right-recursive sentence must parse on the
	// heap, not the goroutine stack: x + x + x + ... (100k terms).
	g := grammar.MustParse(llExpr)
	tbl := Generate(g)
	syms := g.Symbols()
	x, _ := syms.Lookup("x")
	plus, _ := syms.Lookup("+")
	const terms = 100_000
	input := make([]grammar.Symbol, 0, 2*terms-1)
	for i := 0; i < terms; i++ {
		if i > 0 {
			input = append(input, plus)
		}
		input = append(input, x)
	}
	root, errPos, _, err := tbl.ParseForest(input, forest.NewForest())
	if err != nil {
		t.Fatal(err)
	}
	if root == nil {
		t.Fatalf("deep input rejected at %d", errPos)
	}
}

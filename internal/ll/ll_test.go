package ll

import (
	"errors"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/grammar"
)

const llExpr = `
START ::= E
E ::= T Etail
Etail ::= "+" T Etail | ε
T ::= "x" | "(" E ")"
`

func TestLL1TableNoConflicts(t *testing.T) {
	tbl := Generate(grammar.MustParse(llExpr))
	if n := len(tbl.Conflicts()); n != 0 {
		t.Fatalf("LL(1) grammar reports %d conflicts: %+v", n, tbl.Conflicts())
	}
}

func TestPredictiveParse(t *testing.T) {
	g := grammar.MustParse(llExpr)
	tbl := Generate(g)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"x", true},
		{"x + x + x", true},
		{"( x + x )", true},
		{"( x + x ) + x", true},
		{"x +", false},
		{"+ x", false},
		{"( x", false},
		{"", false},
	} {
		got, err := tbl.Parse(fixtures.Tokens(g, tc.input))
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestLeftRecursionConflicts(t *testing.T) {
	// Left-recursive grammars are never LL(1).
	tbl := Generate(grammar.MustParse(`
START ::= E
E ::= E "+" "x" | "x"
`))
	if len(tbl.Conflicts()) == 0 {
		t.Fatal("left-recursive grammar should report LL(1) conflicts")
	}
	if _, err := tbl.Parse(nil); !errors.Is(err, ErrNotLL1) {
		t.Fatalf("Parse on conflicted table: want ErrNotLL1, got %v", err)
	}
}

func TestAmbiguousConflicts(t *testing.T) {
	tbl := Generate(fixtures.Booleans())
	if len(tbl.Conflicts()) == 0 {
		t.Fatal("ambiguous grammar should report LL(1) conflicts")
	}
}

func TestRecursiveDescent(t *testing.T) {
	g := grammar.MustParse(llExpr)
	parse, err := BuildRecursiveDescent(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"x + ( x + x )", true},
		{"x x", false},
		{"( )", false},
	} {
		if got := parse(fixtures.Tokens(g, tc.input)); got != tc.want {
			t.Errorf("rd(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestRecursiveDescentRejectsNonLL1(t *testing.T) {
	if _, err := BuildRecursiveDescent(fixtures.Booleans()); !errors.Is(err, ErrNotLL1) {
		t.Fatalf("want ErrNotLL1, got %v", err)
	}
}

func TestTableAndRDagree(t *testing.T) {
	g := grammar.MustParse(llExpr)
	tbl := Generate(g)
	rd, err := BuildRecursiveDescent(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range []string{"x", "x + x", "( ( x ) )", "x + + x", "( x ) ("} {
		toks := fixtures.Tokens(g, input)
		a, err := tbl.Parse(toks)
		if err != nil {
			t.Fatal(err)
		}
		b := rd(toks)
		if a != b {
			t.Errorf("table=%v rd=%v on %q", a, b, input)
		}
	}
}

func TestEpsilonViaFollow(t *testing.T) {
	g := grammar.MustParse(`
START ::= A "b"
A ::= "a" | ε
`)
	tbl := Generate(g)
	if len(tbl.Conflicts()) != 0 {
		t.Fatalf("conflicts: %+v", tbl.Conflicts())
	}
	got, err := tbl.Parse(fixtures.Tokens(g, "b"))
	if err != nil || !got {
		t.Errorf("epsilon production through FOLLOW failed: %v %v", got, err)
	}
}

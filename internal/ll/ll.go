// Package ll implements an LL(1) parser generator and two parsers driven
// by it: a table-driven predictive parser ("an LL generator constructs a
// parse table that is interpreted by a fixed parser") and a generated
// recursive-descent parsing program ("a recursive descent parser
// generator constructs a parsing program") — the second row of Fig 2.1.
// The accepted class is limited to non-left-recursive, non-ambiguous
// grammars, as the paper notes.
package ll

import (
	"fmt"
	"sort"
	"strings"

	"ipg/internal/cancel"
	"ipg/internal/faultinject"
	"ipg/internal/forest"
	"ipg/internal/grammar"
)

// Conflict is an LL(1) table cell with more than one applicable rule.
type Conflict struct {
	// Nonterminal and Lookahead locate the cell.
	Nonterminal, Lookahead grammar.Symbol
	// Rules are the competing rules.
	Rules []*grammar.Rule
}

// Table is an LL(1) parse table M[A, a] -> rule. It retains the FIRST/
// NULLABLE/FOLLOW analyses it was generated from, so a rule update can be
// Repaired by rebuilding only the rows whose prediction inputs moved.
type Table struct {
	g         *grammar.Grammar
	m         map[grammar.Symbol]map[grammar.Symbol]*grammar.Rule
	conflicts []Conflict
	// rowConflicts holds each nonterminal's conflicts; the table-wide
	// list is their concatenation in symbol order.
	rowConflicts map[grammar.Symbol][]Conflict
	// Cached analyses the current rows were filled from.
	first  map[grammar.Symbol]grammar.SymbolSet
	null   grammar.SymbolSet
	follow map[grammar.Symbol]grammar.SymbolSet
}

// Generate builds the LL(1) table for g from FIRST and FOLLOW.
func Generate(g *grammar.Grammar) *Table {
	t := &Table{
		g:            g,
		m:            map[grammar.Symbol]map[grammar.Symbol]*grammar.Rule{},
		rowConflicts: map[grammar.Symbol][]Conflict{},
	}
	t.first = g.FirstSets()
	t.null = g.Nullable()
	t.follow = g.FollowSets()
	for _, a := range g.Symbols().Nonterminals() {
		if len(g.RulesFor(a)) > 0 {
			t.fillRow(a)
		}
	}
	t.assembleConflicts()
	return t
}

// fillRow rebuilds the prediction row of one nonterminal — cells and
// conflicts — from the cached analyses. Rules are processed in grammar
// insertion order, so a repaired row is identical to a regenerated one.
func (t *Table) fillRow(a grammar.Symbol) {
	delete(t.m, a)
	delete(t.rowConflicts, a)
	set := func(la grammar.Symbol, r *grammar.Rule) {
		row, ok := t.m[a]
		if !ok {
			row = map[grammar.Symbol]*grammar.Rule{}
			t.m[a] = row
		}
		if prev, ok := row[la]; ok && prev != r {
			t.rowConflicts[a] = append(t.rowConflicts[a], Conflict{
				Nonterminal: a, Lookahead: la, Rules: []*grammar.Rule{prev, r},
			})
			return
		}
		row[la] = r
	}
	for _, r := range t.g.RulesFor(a) {
		fs, nullableRHS := t.g.FirstOfString(r.Rhs, t.first, t.null)
		for la := range fs {
			set(la, r)
		}
		if nullableRHS {
			for la := range t.follow[a] {
				set(la, r)
			}
		}
	}
}

// assembleConflicts rebuilds the table-wide conflict list from the
// per-row lists, in (nonterminal, lookahead) order.
func (t *Table) assembleConflicts() {
	t.conflicts = t.conflicts[:0]
	rows := make([]grammar.Symbol, 0, len(t.rowConflicts))
	for a := range t.rowConflicts {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for _, a := range rows {
		cs := append([]Conflict(nil), t.rowConflicts[a]...)
		sort.Slice(cs, func(i, j int) bool { return cs[i].Lookahead < cs[j].Lookahead })
		t.conflicts = append(t.conflicts, cs...)
	}
}

// RepairStats reports what one Repair did: how many prediction rows were
// rebuilt vs kept verbatim, and whether the conflict set moved.
type RepairStats struct {
	RowsRepaired     int
	RowsKept         int
	ConflictsChanged bool
}

// Repair splices a single rule update into the table after the grammar
// has already been mutated (AddRule or DeleteRule of rule): the analyses
// are recomputed (they are global fixpoints, cheap next to row filling),
// and only the rows whose prediction inputs moved — the modified
// nonterminal itself, rows with a FIRST-of-RHS change, and nullable rows
// whose FOLLOW changed — are refilled. The result is cell-identical to a
// from-scratch Generate; unlike the LALR repair there is no structural
// state to splice, so Repair never declines.
func (t *Table) Repair(rule *grammar.Rule) RepairStats {
	g := t.g
	before := t.conflictKeys()
	newFirst, newNull, newFollow := g.FirstSets(), g.Nullable(), g.FollowSets()

	damaged := map[grammar.Symbol]bool{rule.Lhs: true}
	for _, r := range g.Rules() {
		if damaged[r.Lhs] {
			continue
		}
		oldFs, oldNullable := g.FirstOfString(r.Rhs, t.first, t.null)
		newFs, newNullable := g.FirstOfString(r.Rhs, newFirst, newNull)
		if oldNullable != newNullable || !equalSets(oldFs, newFs) {
			damaged[r.Lhs] = true
			continue
		}
		if newNullable && !equalSets(t.follow[r.Lhs], newFollow[r.Lhs]) {
			damaged[r.Lhs] = true
		}
	}
	t.first, t.null, t.follow = newFirst, newNull, newFollow

	rows := 0
	for _, a := range g.Symbols().Nonterminals() {
		if len(g.RulesFor(a)) > 0 {
			rows++
		}
	}
	for a := range damaged {
		t.fillRow(a)
	}
	t.assembleConflicts()
	st := RepairStats{RowsRepaired: len(damaged), RowsKept: rows - len(damaged)}
	if st.RowsKept < 0 {
		st.RowsKept = 0
	}
	st.ConflictsChanged = !equalStrings(before, t.conflictKeys())
	return st
}

// conflictKeys renders the conflict set canonically for comparison.
func (t *Table) conflictKeys() []string {
	out := make([]string, 0, len(t.conflicts))
	for _, c := range t.conflicts {
		k := fmt.Sprintf("%d|%d", c.Nonterminal, c.Lookahead)
		for _, r := range c.Rules {
			k += "|" + r.Key()
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Signature renders the whole table — rows, cells, conflicts — in a
// canonical order, so a repaired table can be compared cell-for-cell
// against a from-scratch regeneration.
func (t *Table) Signature() string {
	var b strings.Builder
	rows := make([]grammar.Symbol, 0, len(t.m))
	for a := range t.m {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for _, a := range rows {
		fmt.Fprintf(&b, "%d:\n", a)
		las := make([]grammar.Symbol, 0, len(t.m[a]))
		for la := range t.m[a] {
			las = append(las, la)
		}
		sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
		for _, la := range las {
			fmt.Fprintf(&b, "  %d -> %s\n", la, t.m[a][la].Key())
		}
	}
	b.WriteString("conflicts:\n")
	for _, k := range t.conflictKeys() {
		b.WriteString("  " + k + "\n")
	}
	return b.String()
}

func equalSets(a, b grammar.SymbolSet) bool {
	if len(a) != len(b) {
		return false
	}
	for s := range a {
		if !b.Has(s) {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Conflicts returns the LL(1) conflicts; the grammar is LL(1) iff empty.
func (t *Table) Conflicts() []Conflict { return t.conflicts }

// Grammar returns the table's grammar.
func (t *Table) Grammar() *grammar.Grammar { return t.g }

// Predict returns the rule the table selects for nonterminal a on
// lookahead la, or nil when the cell is empty. This is the raw
// prediction-row read the completion cursor simulates expansions with;
// it performs no allocation.
func (t *Table) Predict(a, la grammar.Symbol) *grammar.Rule { return t.m[a][la] }

// ErrNotLL1 is returned by parsers generated from conflicted tables.
var ErrNotLL1 = fmt.Errorf("ll: grammar is not LL(1)")

// Parse runs the table-driven predictive parser on input (terminals,
// without end marker). It returns ErrNotLL1 when the table has conflicts.
func (t *Table) Parse(input []grammar.Symbol) (bool, error) {
	ok, _, _, err := t.ParseDiag(input)
	return ok, err
}

// ParseForest runs the predictive parser and builds the parse tree into
// f — the tree is unique because an LL(1) grammar is unambiguous, so the
// "forest" never contains an ambiguity node and renders identically to
// the one the LR engines build for the same sentence. On rejection it
// reports the furthest input position reached and the terminals that
// would have allowed progress there (the same diagnostic shape as
// glr.Result). It returns ErrNotLL1 when the table has conflicts.
func (t *Table) ParseForest(input []grammar.Symbol, f *forest.Forest) (root *forest.Node, errPos int, expected []grammar.Symbol, err error) {
	return t.ParseForestCancel(input, f, nil)
}

// ParseForestCancel is ParseForest with a cancellation flag polled at
// the drive loop's checkpoints (every 64 steps); a fired flag aborts
// with a *cancel.Error.
func (t *Table) ParseForestCancel(input []grammar.Symbol, f *forest.Forest, fl *cancel.Flag) (root *forest.Node, errPos int, expected []grammar.Symbol, err error) {
	if len(t.conflicts) > 0 {
		return nil, -1, nil, ErrNotLL1
	}
	if f == nil {
		f = forest.NewForest()
	}
	_, root, errPos, expected, err = t.drive(input, f, fl)
	return root, errPos, expected, err
}

// ParseDiag is recognition with the ParseForest diagnostics but without
// any node construction — one pass, no allocation per matched token.
// errPos is -1 for accepted inputs.
func (t *Table) ParseDiag(input []grammar.Symbol) (ok bool, errPos int, expected []grammar.Symbol, err error) {
	return t.ParseDiagCancel(input, nil)
}

// ParseDiagCancel is ParseDiag with a cancellation flag (see
// ParseForestCancel).
func (t *Table) ParseDiagCancel(input []grammar.Symbol, fl *cancel.Flag) (ok bool, errPos int, expected []grammar.Symbol, err error) {
	if len(t.conflicts) > 0 {
		return false, -1, nil, ErrNotLL1
	}
	ok, _, errPos, expected, err = t.drive(input, nil, fl)
	return ok, errPos, expected, err
}

// drive is the predictive-parse engine behind ParseForest and
// ParseDiag. A nil forest skips tree building entirely. A trailing end
// marker is accepted and ignored, so EOF-terminated token streams (the
// service's zero-alloc convention) parse identically to bare ones.
func (t *Table) drive(input []grammar.Symbol, f *forest.Forest, fl *cancel.Flag) (ok bool, root *forest.Node, errPos int, expected []grammar.Symbol, err error) {
	if n := len(input); n > 0 && input[n-1] == grammar.EOF {
		input = input[:n-1]
	}

	// Furthest-failure tracking: predictive parsing never backtracks, so
	// the first failure is also the furthest, but tracking it uniformly
	// keeps the bookkeeping obviously correct.
	failPos := -1
	failExp := map[grammar.Symbol]bool{}
	fail := func(pos int, exp ...grammar.Symbol) {
		if pos > failPos {
			failPos = pos
			failExp = map[grammar.Symbol]bool{}
		}
		if pos == failPos {
			for _, s := range exp {
				failExp[s] = true
			}
		}
	}
	la := func(pos int) grammar.Symbol {
		if pos < len(input) {
			return input[pos]
		}
		return grammar.EOF
	}

	// predict looks up the rule for A on the current lookahead,
	// recording the failure diagnostic when the cell is empty.
	predict := func(a grammar.Symbol, pos int) (*grammar.Rule, bool) {
		r, ok := t.m[a][la(pos)]
		if !ok {
			// Any terminal with a table entry for A would have worked.
			row := make([]grammar.Symbol, 0, len(t.m[a]))
			for sym := range t.m[a] {
				row = append(row, sym)
			}
			fail(pos, row...)
		}
		return r, ok
	}

	// Explicit frame stack (like Table.Parse) rather than recursion:
	// recursion depth is proportional to input length for recursive
	// grammars, and a service input measured in megabytes must not be
	// able to exhaust the goroutine stack.
	type frame struct {
		rule     *grammar.Rule
		next     int // index into rule.Rhs
		children []*forest.Node
	}
	// Check the flag once before the drive so a pre-fired cancellation
	// (deadline already expired, client already gone) aborts even when
	// the input is too short to reach the in-loop checkpoint stride.
	if fl.Hit() {
		return false, nil, -1, nil, fl.Err(0, len(input), 0)
	}
	startRule, ok := predict(t.g.Start(), 0)
	if !ok {
		return false, nil, failPos, expectedSlice(failExp), nil
	}
	stack := []frame{{rule: startRule}}
	pos := 0
	steps := uint64(0)
	var node *forest.Node
	for len(stack) > 0 {
		// Cancellation checkpoint every 64 predictive steps: the loop
		// advances by at most one frame or token per iteration, so the
		// mask bounds abort latency without a per-step atomic load.
		if steps++; steps&63 == 0 && fl.Hit() {
			return false, nil, -1, nil, fl.Err(pos, len(input), steps)
		}
		top := &stack[len(stack)-1]
		if top.next == top.rule.Len() {
			// Rule complete: build its node and hand it to the parent.
			var done *forest.Node
			if f != nil {
				done = f.Rule(top.rule, top.children)
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				node = done
				break
			}
			parent := &stack[len(stack)-1]
			if f != nil {
				parent.children = append(parent.children, done)
			}
			parent.next++
			continue
		}
		sym := top.rule.Rhs[top.next]
		if t.g.Symbols().Kind(sym) == grammar.Terminal {
			if la(pos) != sym {
				fail(pos, sym)
				return false, nil, failPos, expectedSlice(failExp), nil
			}
			if f != nil {
				top.children = append(top.children, f.Leaf(sym, pos))
			}
			top.next++
			pos++
			if faultinject.Armed() {
				faultinject.Step(faultinject.SiteDriveToken, pos, fl)
			}
			continue
		}
		r, ok := predict(sym, pos)
		if !ok {
			return false, nil, failPos, expectedSlice(failExp), nil
		}
		stack = append(stack, frame{rule: r})
	}
	// The start rule completed, consuming pos tokens.
	if pos == len(input) {
		// The LR engines accept with the start rule's (unit) right-hand
		// side as root — they never reduce the start rule itself. Unwrap
		// the unit start application so both render identically.
		if node != nil && node.Kind() == forest.RuleNode && node.Rule().Lhs == t.g.Start() && len(node.Children()) == 1 {
			node = node.Children()[0]
		}
		return true, node, -1, nil, nil
	}
	// The start symbol derived a proper prefix; only end of input was
	// legal after it.
	fail(pos, grammar.EOF)
	return false, nil, failPos, expectedSlice(failExp), nil
}

// expectedSlice sorts a failure's expected-terminal set.
func expectedSlice(set map[grammar.Symbol]bool) []grammar.Symbol {
	out := make([]grammar.Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BuildRecursiveDescent compiles the grammar into a parsing program: one
// Go closure per nonterminal, selected by the LL(1) table. The returned
// function recognizes complete sentences. Construction fails with
// ErrNotLL1 on conflicted grammars (recursive descent without backtrack
// needs a unique prediction).
func BuildRecursiveDescent(g *grammar.Grammar) (func([]grammar.Symbol) bool, error) {
	t := Generate(g)
	if len(t.conflicts) > 0 {
		return nil, ErrNotLL1
	}

	// fns[A](input, pos) -> (newPos, ok)
	fns := map[grammar.Symbol]func([]grammar.Symbol, int) (int, bool){}
	for _, a := range g.Symbols().Nonterminals() {
		a := a
		fns[a] = func(input []grammar.Symbol, pos int) (int, bool) {
			la := grammar.EOF
			if pos < len(input) {
				la = input[pos]
			}
			r, ok := t.m[a][la]
			if !ok {
				return pos, false
			}
			for _, sym := range r.Rhs {
				if g.Symbols().Kind(sym) == grammar.Terminal {
					if pos >= len(input) || input[pos] != sym {
						return pos, false
					}
					pos++
					continue
				}
				var matched bool
				pos, matched = fns[sym](input, pos)
				if !matched {
					return pos, false
				}
			}
			return pos, true
		}
	}

	start := fns[g.Start()]
	return func(input []grammar.Symbol) bool {
		end, ok := start(input, 0)
		return ok && end == len(input)
	}, nil
}

// Package ll implements an LL(1) parser generator and two parsers driven
// by it: a table-driven predictive parser ("an LL generator constructs a
// parse table that is interpreted by a fixed parser") and a generated
// recursive-descent parsing program ("a recursive descent parser
// generator constructs a parsing program") — the second row of Fig 2.1.
// The accepted class is limited to non-left-recursive, non-ambiguous
// grammars, as the paper notes.
package ll

import (
	"fmt"

	"ipg/internal/grammar"
)

// Conflict is an LL(1) table cell with more than one applicable rule.
type Conflict struct {
	// Nonterminal and Lookahead locate the cell.
	Nonterminal, Lookahead grammar.Symbol
	// Rules are the competing rules.
	Rules []*grammar.Rule
}

// Table is an LL(1) parse table M[A, a] -> rule.
type Table struct {
	g         *grammar.Grammar
	m         map[grammar.Symbol]map[grammar.Symbol]*grammar.Rule
	conflicts []Conflict
}

// Generate builds the LL(1) table for g from FIRST and FOLLOW.
func Generate(g *grammar.Grammar) *Table {
	t := &Table{g: g, m: map[grammar.Symbol]map[grammar.Symbol]*grammar.Rule{}}
	first := g.FirstSets()
	null := g.Nullable()
	follow := g.FollowSets()

	set := func(a, la grammar.Symbol, r *grammar.Rule) {
		row, ok := t.m[a]
		if !ok {
			row = map[grammar.Symbol]*grammar.Rule{}
			t.m[a] = row
		}
		if prev, ok := row[la]; ok && prev != r {
			t.conflicts = append(t.conflicts, Conflict{
				Nonterminal: a, Lookahead: la, Rules: []*grammar.Rule{prev, r},
			})
			return
		}
		row[la] = r
	}

	for _, r := range g.Rules() {
		fs, nullableRHS := g.FirstOfString(r.Rhs, first, null)
		for a := range fs {
			set(r.Lhs, a, r)
		}
		if nullableRHS {
			for b := range follow[r.Lhs] {
				set(r.Lhs, b, r)
			}
		}
	}
	return t
}

// Conflicts returns the LL(1) conflicts; the grammar is LL(1) iff empty.
func (t *Table) Conflicts() []Conflict { return t.conflicts }

// Grammar returns the table's grammar.
func (t *Table) Grammar() *grammar.Grammar { return t.g }

// ErrNotLL1 is returned by parsers generated from conflicted tables.
var ErrNotLL1 = fmt.Errorf("ll: grammar is not LL(1)")

// Parse runs the table-driven predictive parser on input (terminals,
// without end marker). It returns ErrNotLL1 when the table has conflicts.
func (t *Table) Parse(input []grammar.Symbol) (bool, error) {
	if len(t.conflicts) > 0 {
		return false, ErrNotLL1
	}
	// Stack of grammar symbols, top at the end.
	stack := []grammar.Symbol{t.g.Start()}
	pos := 0
	cur := func() grammar.Symbol {
		if pos < len(input) {
			return input[pos]
		}
		return grammar.EOF
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.g.Symbols().Kind(top) == grammar.Terminal {
			if cur() != top {
				return false, nil
			}
			pos++
			continue
		}
		r, ok := t.m[top][cur()]
		if !ok {
			return false, nil
		}
		for i := r.Len() - 1; i >= 0; i-- {
			stack = append(stack, r.Rhs[i])
		}
	}
	return pos == len(input), nil
}

// BuildRecursiveDescent compiles the grammar into a parsing program: one
// Go closure per nonterminal, selected by the LL(1) table. The returned
// function recognizes complete sentences. Construction fails with
// ErrNotLL1 on conflicted grammars (recursive descent without backtrack
// needs a unique prediction).
func BuildRecursiveDescent(g *grammar.Grammar) (func([]grammar.Symbol) bool, error) {
	t := Generate(g)
	if len(t.conflicts) > 0 {
		return nil, ErrNotLL1
	}

	// fns[A](input, pos) -> (newPos, ok)
	fns := map[grammar.Symbol]func([]grammar.Symbol, int) (int, bool){}
	for _, a := range g.Symbols().Nonterminals() {
		a := a
		fns[a] = func(input []grammar.Symbol, pos int) (int, bool) {
			la := grammar.EOF
			if pos < len(input) {
				la = input[pos]
			}
			r, ok := t.m[a][la]
			if !ok {
				return pos, false
			}
			for _, sym := range r.Rhs {
				if g.Symbols().Kind(sym) == grammar.Terminal {
					if pos >= len(input) || input[pos] != sym {
						return pos, false
					}
					pos++
					continue
				}
				var matched bool
				pos, matched = fns[sym](input, pos)
				if !matched {
					return pos, false
				}
			}
			return pos, true
		}
	}

	start := fns[g.Start()]
	return func(input []grammar.Symbol) bool {
		end, ok := start(input, 0)
		return ok && end == len(input)
	}, nil
}

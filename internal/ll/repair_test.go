package ll

import (
	"math/rand"
	"testing"

	"ipg/internal/grammar"
)

// expectRowParity asserts the repaired table is cell-identical to a
// from-scratch generation of the same grammar.
func expectRowParity(t *testing.T, tbl *Table, g *grammar.Grammar, step string) {
	t.Helper()
	if got, want := tbl.Signature(), Generate(g).Signature(); got != want {
		t.Fatalf("%s: repaired table diverges from regeneration\n--- repaired ---\n%s\n--- regenerated ---\n%s", step, got, want)
	}
}

// TestLLRepairParity walks a table through adds and deletes — including
// a nullable rule (FOLLOW-driven cells), a fresh nonterminal, and a
// conflict-introducing alternative — asserting cell parity after every
// repair.
func TestLLRepairParity(t *testing.T) {
	g := grammar.MustParse(`
START ::= S
S ::= "a" A "b"
A ::= "x" | ε
`)
	tbl := Generate(g)
	if len(tbl.Conflicts()) != 0 {
		t.Fatal("base grammar should be LL(1)")
	}
	syms := g.Symbols()
	s := syms.MustIntern("S", grammar.Nonterminal)
	a := syms.MustIntern("A", grammar.Nonterminal)
	y := syms.MustIntern("y", grammar.Terminal)
	c := syms.MustIntern("c", grammar.Terminal)
	z := syms.MustIntern("Z", grammar.Nonterminal)

	steps := []struct {
		name string
		rule *grammar.Rule
		del  bool
	}{
		{"add A ::= y", grammar.NewRule(a, y), false},
		{"add S ::= c Z", grammar.NewRule(s, c, z), false},
		{"add Z ::= epsilon (changes FOLLOW usage)", grammar.NewRule(z), false},
		{"add Z ::= y (conflicts with epsilon? no - FIRST y vs FOLLOW $)", grammar.NewRule(z, y), false},
		{"add A ::= epsilon duplicate lookaheads (conflict)", grammar.NewRule(a, c), false},
		{"delete A ::= c", grammar.NewRule(a, c), true},
		{"delete Z ::= y", grammar.NewRule(z, y), true},
		{"delete Z ::= epsilon", grammar.NewRule(z), true},
		{"delete S ::= c Z", grammar.NewRule(s, c, z), true},
		{"delete A ::= y", grammar.NewRule(a, y), true},
	}
	for _, step := range steps {
		r := step.rule
		if step.del {
			stored, err := g.DeleteRule(r)
			if err != nil {
				t.Fatalf("%s: %v", step.name, err)
			}
			r = stored
		} else {
			if err := g.AddRule(r); err != nil {
				t.Fatalf("%s: %v", step.name, err)
			}
		}
		st := tbl.Repair(r)
		if st.RowsRepaired == 0 {
			t.Fatalf("%s: repair touched no rows", step.name)
		}
		expectRowParity(t, tbl, g, step.name)
	}
	if n := len(tbl.Conflicts()); n != 0 {
		t.Fatalf("round-tripped grammar has %d conflicts", n)
	}
}

// TestLLRepairKeepsRows pins the delta property: an update localized to
// one nonterminal must not refill unrelated rows.
func TestLLRepairKeepsRows(t *testing.T) {
	g := grammar.MustParse(`
START ::= S
S ::= A B C
A ::= "a"
B ::= "b"
C ::= "c"
`)
	tbl := Generate(g)
	syms := g.Symbols()
	c := syms.MustIntern("C", grammar.Nonterminal)
	d := syms.MustIntern("d", grammar.Terminal)
	r := grammar.NewRule(c, d)
	if err := g.AddRule(r); err != nil {
		t.Fatal(err)
	}
	st := tbl.Repair(r)
	// Only C's row moves: FIRST(C) gains d, but d reaches no other rule's
	// FIRST-of-RHS (A, B, S, START prefixes are all unchanged terminals).
	if st.RowsRepaired != 1 || st.ConflictsChanged {
		t.Fatalf("expected exactly one repaired row, got %+v", st)
	}
	if st.RowsKept < 3 {
		t.Fatalf("expected unrelated rows kept, got %+v", st)
	}
	expectRowParity(t, tbl, g, "add C ::= d")
}

// TestLLRepairConflictFlag asserts ConflictsChanged reports transitions
// in both directions.
func TestLLRepairConflictFlag(t *testing.T) {
	g := grammar.MustParse(`
START ::= S
S ::= "a" "b"
`)
	tbl := Generate(g)
	syms := g.Symbols()
	s := syms.MustIntern("S", grammar.Nonterminal)
	a := syms.MustIntern("a", grammar.Terminal)
	c := syms.MustIntern("c", grammar.Terminal)
	r := grammar.NewRule(s, a, c)
	if err := g.AddRule(r); err != nil {
		t.Fatal(err)
	}
	st := tbl.Repair(r)
	if !st.ConflictsChanged || len(tbl.Conflicts()) == 0 {
		t.Fatalf("adding the ambiguous alternative should flag conflicts, got %+v", st)
	}
	stored, err := g.DeleteRule(r)
	if err != nil {
		t.Fatal(err)
	}
	st = tbl.Repair(stored)
	if !st.ConflictsChanged || len(tbl.Conflicts()) != 0 {
		t.Fatalf("deleting it should clear conflicts, got %+v", st)
	}
	expectRowParity(t, tbl, g, "roundtrip")
}

// TestLLRepairParityRandom is the randomized differential for the LL
// repair: random add/delete sequences, cell parity after every step.
func TestLLRepairParityRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := grammar.Random(grammar.RandConfig{Nonterminals: 4, Terminals: 3, Rules: 8}, rng)
		tbl := Generate(g)
		var nts, pool []grammar.Symbol
		for _, n := range g.Symbols().Nonterminals() {
			if n != g.Start() {
				nts = append(nts, n)
				pool = append(pool, n)
			}
		}
		for _, s := range g.Symbols().Terminals() {
			if s != grammar.EOF {
				pool = append(pool, s)
			}
		}
		for step := 0; step < 12; step++ {
			if rng.Intn(2) == 0 || g.Len() <= 1 {
				lhs := nts[rng.Intn(len(nts))]
				rhs := make([]grammar.Symbol, rng.Intn(4))
				for i := range rhs {
					rhs[i] = pool[rng.Intn(len(pool))]
				}
				r := grammar.NewRule(lhs, rhs...)
				if g.Has(r) {
					continue
				}
				if err := g.AddRule(r); err != nil {
					t.Fatal(err)
				}
				tbl.Repair(r)
			} else {
				var candidates []*grammar.Rule
				for _, r := range g.Rules() {
					if r.Lhs != g.Start() {
						candidates = append(candidates, r)
					}
				}
				if len(candidates) == 0 {
					continue
				}
				stored, err := g.DeleteRule(candidates[rng.Intn(len(candidates))])
				if err != nil {
					t.Fatal(err)
				}
				tbl.Repair(stored)
			}
			expectRowParity(t, tbl, g, "seed/step")
		}
	}
}

package isg

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func identRules(t *testing.T) []Rule {
	t.Helper()
	letter, err := ParseClass("[a-zA-Z]")
	if err != nil {
		t.Fatal(err)
	}
	digit, err := ParseClass("[0-9]")
	if err != nil {
		t.Fatal(err)
	}
	space, err := ParseClass("[ \\t\\n]")
	if err != nil {
		t.Fatal(err)
	}
	return []Rule{
		{Sort: "IF", Pattern: Lit("if")}, // keyword beats ID on ties (earlier rule)
		{Sort: "ID", Pattern: Seq(Class(letter), Star(Alt(Class(letter), Class(digit))))},
		{Sort: "NUM", Pattern: Plus(Class(digit))},
		{Sort: "LPAREN", Pattern: Lit("(")},
		{Sort: "RPAREN", Pattern: Lit(")")},
		{Sort: "WS", Pattern: Plus(Class(space)), Layout: true},
	}
}

func sorts(toks []Token) string {
	parts := make([]string, len(toks))
	for i, tk := range toks {
		parts[i] = tk.Sort
	}
	return strings.Join(parts, " ")
}

func TestCharClassBasics(t *testing.T) {
	c, err := ParseClass("[a-zA-Z0-9]")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range "azAZ09" {
		if !c.Contains(r) {
			t.Errorf("class should contain %c", r)
		}
	}
	for _, r := range " -!~" {
		if c.Contains(r) {
			t.Errorf("class should not contain %c", r)
		}
	}
	neg := c.Negate()
	if neg.Contains('a') || !neg.Contains(' ') {
		t.Error("negation wrong")
	}
	// Double negation round-trips.
	if neg.Negate().String() != c.String() {
		t.Errorf("double negation: %s vs %s", neg.Negate(), c)
	}
}

func TestCharClassNormalization(t *testing.T) {
	c := NewCharClass(RuneRange{'c', 'f'}, RuneRange{'a', 'd'}, RuneRange{'g', 'h'})
	if len(c.Ranges()) != 1 {
		t.Errorf("overlapping/adjacent ranges should merge: %s", c)
	}
	if c.String() != "[a-h]" {
		t.Errorf("merged class renders as %s", c)
	}
}

func TestCharClassEscapes(t *testing.T) {
	c, err := ParseClass(`[ \t\n\r\f]`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range " \t\n\r\f" {
		if !c.Contains(r) {
			t.Errorf("escape class should contain %q", r)
		}
	}
	if _, err := ParseClass(`[z-a]`); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := ParseClass(`abc`); err == nil {
		t.Error("unbracketed class should fail")
	}
}

func TestScanBasic(t *testing.T) {
	sc, err := NewScanner(identRules(t))
	if err != nil {
		t.Fatal(err)
	}
	toks, err := sc.Scan("if foo42 ( 123 )")
	if err != nil {
		t.Fatal(err)
	}
	if got := sorts(toks); got != "IF ID LPAREN NUM RPAREN" {
		t.Errorf("token sorts = %s", got)
	}
	if toks[1].Text != "foo42" {
		t.Errorf("ID text = %q", toks[1].Text)
	}
}

func TestLongestMatch(t *testing.T) {
	sc, err := NewScanner(identRules(t))
	if err != nil {
		t.Fatal(err)
	}
	// "iffy" must scan as one ID, not IF + ID.
	toks, err := sc.Scan("iffy")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Sort != "ID" || toks[0].Text != "iffy" {
		t.Errorf("longest match violated: %+v", toks)
	}
	// Exactly "if" is the keyword (earlier rule wins the tie).
	toks, err = sc.Scan("if")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Sort != "IF" {
		t.Errorf("keyword priority violated: %+v", toks)
	}
}

func TestScanPositions(t *testing.T) {
	sc, err := NewScanner(identRules(t))
	if err != nil {
		t.Fatal(err)
	}
	toks, err := sc.Scan("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("second token at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
	if toks[1].Offset != 4 {
		t.Errorf("second token offset %d, want 4", toks[1].Offset)
	}
}

func TestScanError(t *testing.T) {
	sc, err := NewScanner(identRules(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sc.Scan("abc @ def")
	var serr *ScanError
	if !errors.As(err, &serr) {
		t.Fatalf("want ScanError, got %v", err)
	}
	if serr.Line != 1 || serr.Col != 5 {
		t.Errorf("error at %d:%d, want 1:5", serr.Line, serr.Col)
	}
}

func TestLazyDFAMaterialization(t *testing.T) {
	sc, err := NewScanner(identRules(t))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Stats.DFAStates != 1 {
		t.Fatalf("before scanning: %d DFA states, want 1 (start)", sc.Stats.DFAStates)
	}
	if _, err := sc.Scan("abc abc abc"); err != nil {
		t.Fatal(err)
	}
	after := sc.Stats
	if after.DFAStates < 2 {
		t.Error("scanning should materialize DFA states")
	}
	// Scanning the same input again computes no new transitions.
	if _, err := sc.Scan("abc abc"); err != nil {
		t.Fatal(err)
	}
	if sc.Stats.DFATransitions != after.DFATransitions {
		t.Errorf("repeat scan computed %d new transitions",
			sc.Stats.DFATransitions-after.DFATransitions)
	}
	// New characters force new transitions only.
	if _, err := sc.Scan("( 42 )"); err != nil {
		t.Fatal(err)
	}
	if sc.Stats.DFATransitions == after.DFATransitions {
		t.Error("new input classes should add transitions")
	}
}

func TestIncrementalAddRule(t *testing.T) {
	sc, err := NewScanner(identRules(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Scan("foo"); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Scan("+"); err == nil {
		t.Fatal("'+' should not scan before the modification")
	}
	if err := sc.AddRule(Rule{Sort: "PLUS", Pattern: Lit("+")}); err != nil {
		t.Fatal(err)
	}
	if sc.Stats.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", sc.Stats.Invalidations)
	}
	toks, err := sc.Scan("foo + bar")
	if err != nil {
		t.Fatal(err)
	}
	if got := sorts(toks); got != "ID PLUS ID" {
		t.Errorf("after AddRule: %s", got)
	}
}

func TestIncrementalRemoveSort(t *testing.T) {
	sc, err := NewScanner(identRules(t))
	if err != nil {
		t.Fatal(err)
	}
	n, err := sc.RemoveSort("IF")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("removed %d rules, want 1", n)
	}
	toks, err := sc.Scan("if")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Sort != "ID" {
		t.Errorf("'if' should scan as ID after removal: %+v", toks)
	}
	if n, _ := sc.RemoveSort("NOPE"); n != 0 {
		t.Error("removing unknown sort should be a no-op")
	}
}

func TestAddRuleRollbackOnError(t *testing.T) {
	sc, err := NewScanner(identRules(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.AddRule(Rule{Sort: "BAD", Pattern: Ref("NOSUCH")}); err == nil {
		t.Fatal("reference to undefined sort should fail")
	}
	// The scanner must still work with the original rules.
	if _, err := sc.Scan("foo 42"); err != nil {
		t.Errorf("scanner broken after failed AddRule: %v", err)
	}
}

func TestRefInlining(t *testing.T) {
	letter, _ := ParseClass("[a-z]")
	rules := []Rule{
		{Sort: "LETTER", Pattern: Class(letter)},
		{Sort: "WORD", Pattern: Plus(Ref("LETTER"))},
		{Sort: "WS", Pattern: Lit(" "), Layout: true},
	}
	sc, err := NewScanner(rules)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := sc.Scan("abc de")
	if err != nil {
		t.Fatal(err)
	}
	// WORD and LETTER both match single letters; LETTER wins single
	// letters (earlier), WORD wins longer runs (longest match).
	if got := sorts(toks); got != "WORD WORD" {
		t.Errorf("sorts = %s, want WORD WORD", got)
	}
}

func TestRecursiveRefRejected(t *testing.T) {
	rules := []Rule{
		{Sort: "A", Pattern: Seq(Lit("x"), Ref("A"))},
	}
	if _, err := NewScanner(rules); err == nil {
		t.Fatal("recursive lexical sort should be rejected")
	}
}

func TestOptAndAltPatterns(t *testing.T) {
	digit, _ := ParseClass("[0-9]")
	rules := []Rule{
		{Sort: "NUM", Pattern: Seq(Opt(Alt(Lit("+"), Lit("-"))), Plus(Class(digit)))},
		{Sort: "WS", Pattern: Lit(" "), Layout: true},
	}
	sc, err := NewScanner(rules)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := sc.Scan("-12 +3 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 {
		t.Errorf("tokens: %+v", toks)
	}
}

// matchPattern is a reference interpreter: the set of end positions where
// p matches input starting at pos. Used to cross-check the lazy DFA.
func matchPattern(p *Pattern, byName map[string]*Pattern, input []rune, pos int) map[int]bool {
	out := map[int]bool{}
	switch p.Kind {
	case PatLiteral:
		lit := []rune(p.Str)
		if pos+len(lit) <= len(input) && string(input[pos:pos+len(lit)]) == p.Str {
			out[pos+len(lit)] = true
		}
	case PatClass:
		if pos < len(input) && p.Class.Contains(input[pos]) {
			out[pos+1] = true
		}
	case PatConcat:
		cur := map[int]bool{pos: true}
		for _, sub := range p.Subs {
			next := map[int]bool{}
			for at := range cur {
				for e := range matchPattern(sub, byName, input, at) {
					next[e] = true
				}
			}
			cur = next
		}
		for e := range cur {
			out[e] = true
		}
	case PatAlt:
		for _, sub := range p.Subs {
			for e := range matchPattern(sub, byName, input, pos) {
				out[e] = true
			}
		}
	case PatStar, PatPlus:
		reach := map[int]bool{pos: true}
		frontier := []int{pos}
		for len(frontier) > 0 {
			at := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for e := range matchPattern(p.Subs[0], byName, input, at) {
				if e == at || reach[e] {
					continue
				}
				reach[e] = true
				frontier = append(frontier, e)
			}
		}
		for e := range reach {
			if p.Kind == PatPlus && e == pos {
				continue
			}
			out[e] = true
		}
	case PatOpt:
		out[pos] = true
		for e := range matchPattern(p.Subs[0], byName, input, pos) {
			out[e] = true
		}
	case PatRef:
		if target, ok := byName[p.Str]; ok {
			return matchPattern(target, byName, input, pos)
		}
	}
	return out
}

// Property: the lazy DFA scanner tokenizes exactly like greedy repeated
// application of the reference interpreter.
func TestScannerMatchesReference(t *testing.T) {
	letter, _ := ParseClass("[ab]")
	digit, _ := ParseClass("[01]")
	rules := []Rule{
		{Sort: "KW", Pattern: Lit("ab")},
		{Sort: "ID", Pattern: Plus(Class(letter))},
		{Sort: "NUM", Pattern: Seq(Plus(Class(digit)), Opt(Seq(Lit("."), Plus(Class(digit)))))},
		{Sort: "WS", Pattern: Plus(Lit(" ")), Layout: true},
	}
	sc, err := NewScanner(rules)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Pattern{}
	for _, r := range rules {
		byName[r.Sort] = r.Pattern
	}

	refScan := func(input string) ([]Token, bool) {
		runes := []rune(input)
		var toks []Token
		pos := 0
		for pos < len(runes) {
			best, bestRule := -1, -1
			for ri, r := range rules {
				for e := range matchPattern(r.Pattern, byName, runes, pos) {
					if e > best || (e == best && ri < bestRule) {
						// longest match; ties to the earliest rule
						if e > best {
							best, bestRule = e, ri
						} else if ri < bestRule {
							bestRule = ri
						}
					}
				}
			}
			if best <= pos {
				return toks, false
			}
			if !rules[bestRule].Layout {
				toks = append(toks, Token{Sort: rules[bestRule].Sort, Text: string(runes[pos:best])})
			}
			pos = best
		}
		return toks, true
	}

	alphabet := []rune("ab01. ")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		input := b.String()

		want, wantOK := refScan(input)
		got, err := sc.Scan(input)
		gotOK := err == nil
		if wantOK != gotOK {
			t.Fatalf("input %q: ref ok=%v scanner ok=%v (%v)", input, wantOK, gotOK, err)
		}
		if !wantOK {
			return true
		}
		if len(want) != len(got) {
			t.Fatalf("input %q: ref %d tokens, scanner %d", input, len(want), len(got))
		}
		for i := range want {
			if want[i].Sort != got[i].Sort || want[i].Text != got[i].Text {
				t.Fatalf("input %q token %d: ref %s%q scanner %s%q",
					input, i, want[i].Sort, want[i].Text, got[i].Sort, got[i].Text)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

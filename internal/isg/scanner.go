package isg

import (
	"fmt"
	"strconv"
	"strings"
)

// Token is one scanned token.
type Token struct {
	// Sort is the lexical sort of the matched rule.
	Sort string
	// Text is the matched input slice.
	Text string
	// Offset is the byte offset in the input; Line and Col are 1-based.
	Offset, Line, Col int
}

// Stats counts scanner-generator work: the lazy DFA coverage measure.
type Stats struct {
	// DFAStates is the number of DFA states materialized so far.
	DFAStates int
	// DFATransitions is the number of (state, rune) transitions computed.
	DFATransitions int
	// Invalidations counts lexical-syntax modifications that discarded
	// the materialized DFA.
	Invalidations int
}

// dfaState is a lazily materialized subset-construction state.
type dfaState struct {
	states []*nfaState
	// accept is the lowest accepting rule index in the subset, or -1.
	accept int
	// trans caches computed transitions; a nil value is a cached dead
	// transition.
	trans map[rune]*dfaState
}

// Scanner is a lazily generated, incrementally modifiable scanner.
type Scanner struct {
	rules []Rule
	nfa   *nfa
	dfa   map[string]*dfaState
	start *dfaState

	// Stats accumulates generator work.
	Stats Stats
}

// NewScanner compiles the rule set into an NFA and prepares an empty DFA;
// no subset construction happens until scanning starts.
func NewScanner(rules []Rule) (*Scanner, error) {
	s := &Scanner{rules: append([]Rule(nil), rules...)}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Scanner) rebuild() error {
	n, err := buildNFA(s.rules)
	if err != nil {
		return err
	}
	s.nfa = n
	s.dfa = map[string]*dfaState{}
	s.start = s.intern(epsClosure([]*nfaState{n.start}))
	return nil
}

// Rules returns the current lexical rules.
func (s *Scanner) Rules() []Rule { return s.rules }

// AddRule adds a lexical rule and invalidates the materialized DFA; the
// scanner regenerates the needed parts lazily on the next scan. The NFA
// is rebuilt eagerly (it is linear in the rule set and cheap — the
// expensive artifact is the DFA, which stays lazy).
func (s *Scanner) AddRule(r Rule) error {
	s.rules = append(s.rules, r)
	if err := s.rebuild(); err != nil {
		s.rules = s.rules[:len(s.rules)-1]
		// Restore a consistent automaton for the old rules.
		if rerr := s.rebuild(); rerr != nil {
			return fmt.Errorf("isg: rollback failed: %v (original error %w)", rerr, err)
		}
		return err
	}
	s.Stats.Invalidations++
	return nil
}

// RemoveSort deletes all rules of the given sort and invalidates the DFA.
// It reports how many rules were removed.
func (s *Scanner) RemoveSort(sort string) (int, error) {
	kept := s.rules[:0:0]
	removed := 0
	for _, r := range s.rules {
		if r.Sort == sort {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	if removed == 0 {
		return 0, nil
	}
	s.rules = kept
	if err := s.rebuild(); err != nil {
		return removed, err
	}
	s.Stats.Invalidations++
	return removed, nil
}

func subsetKey(states []*nfaState) string {
	var b strings.Builder
	for i, st := range states {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(st.id))
	}
	return b.String()
}

func (s *Scanner) intern(states []*nfaState) *dfaState {
	key := subsetKey(states)
	if d, ok := s.dfa[key]; ok {
		return d
	}
	d := &dfaState{states: states, accept: -1, trans: map[rune]*dfaState{}}
	for _, st := range states {
		if st.accept >= 0 && (d.accept < 0 || st.accept < d.accept) {
			d.accept = st.accept
		}
	}
	s.dfa[key] = d
	s.Stats.DFAStates++
	return d
}

// step returns the successor of d on r, materializing it on first use —
// the lazy subset construction.
func (s *Scanner) step(d *dfaState, r rune) *dfaState {
	if next, ok := d.trans[r]; ok {
		return next
	}
	s.Stats.DFATransitions++
	targets := move(d.states, r)
	var next *dfaState
	if len(targets) > 0 {
		next = s.intern(targets)
	}
	d.trans[r] = next
	return next
}

// ScanError reports a scanning failure with its position.
type ScanError struct {
	Offset, Line, Col int
	Msg               string
}

// Error implements error.
func (e *ScanError) Error() string {
	return fmt.Sprintf("isg: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Scan tokenizes src with longest-match semantics; ties are broken by
// rule order (earlier rules win). Layout matches are skipped. The token
// stream does not include an end marker.
func (s *Scanner) Scan(src string) ([]Token, error) {
	var out []Token
	line, col := 1, 1
	pos := 0
	runes := []rune(src)
	// byte offsets per rune index for Token.Offset.
	offsets := make([]int, len(runes)+1)
	{
		off := 0
		for i, r := range runes {
			offsets[i] = off
			off += len(string(r))
		}
		offsets[len(runes)] = off
	}

	for pos < len(runes) {
		d := s.start
		lastAccept := -1
		lastEnd := pos
		for i := pos; i < len(runes); i++ {
			d = s.step(d, runes[i])
			if d == nil {
				break
			}
			if d.accept >= 0 {
				lastAccept = d.accept
				lastEnd = i + 1
			}
		}
		if lastAccept < 0 || lastEnd == pos {
			return out, &ScanError{
				Offset: offsets[pos], Line: line, Col: col,
				Msg: fmt.Sprintf("unexpected character %q", string(runes[pos])),
			}
		}
		text := string(runes[pos:lastEnd])
		rule := s.rules[lastAccept]
		if !rule.Layout {
			out = append(out, Token{Sort: rule.Sort, Text: text, Offset: offsets[pos], Line: line, Col: col})
		}
		for _, r := range runes[pos:lastEnd] {
			if r == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		pos = lastEnd
	}
	return out, nil
}

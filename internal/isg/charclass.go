// Package isg implements ISG, the lazy and incremental lexical scanner
// generator that is IPG's companion ([HKR87a], cited in section 1: "In
// [HKR87a] a lazy/incremental lexical scanner generator ISG is described.
// The combination ISG/IPG is used in an interactive development
// environment for the ASF/SDF specification language").
//
// Lexical syntax is given as a set of named rules over regular patterns
// (character classes, literals, concatenation, alternation, iteration,
// references to other lexical sorts). A Thompson NFA is built eagerly —
// that is cheap — while the DFA driving the scanner is built lazily by
// subset construction, one state and one transition at a time, as input
// is scanned. Modifying the lexical syntax invalidates the materialized
// DFA, which is then rebuilt by need, mirroring IPG's treatment of parse
// tables.
package isg

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"
)

// MaxRune is the upper bound of the supported alphabet.
const MaxRune = utf8.MaxRune

// RuneRange is an inclusive range of runes.
type RuneRange struct {
	Lo, Hi rune
}

// CharClass is a set of runes, stored as sorted, non-overlapping,
// non-adjacent inclusive ranges.
type CharClass struct {
	ranges []RuneRange
}

// NewCharClass builds a class from arbitrary (possibly overlapping)
// ranges.
func NewCharClass(ranges ...RuneRange) CharClass {
	c := CharClass{ranges: append([]RuneRange(nil), ranges...)}
	c.normalize()
	return c
}

// ClassOf builds a class containing exactly the given runes.
func ClassOf(runes ...rune) CharClass {
	rs := make([]RuneRange, 0, len(runes))
	for _, r := range runes {
		rs = append(rs, RuneRange{r, r})
	}
	return NewCharClass(rs...)
}

func (c *CharClass) normalize() {
	if len(c.ranges) == 0 {
		return
	}
	sort.Slice(c.ranges, func(i, j int) bool { return c.ranges[i].Lo < c.ranges[j].Lo })
	out := c.ranges[:1]
	for _, r := range c.ranges[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	c.ranges = out
}

// Contains reports whether r is in the class.
func (c CharClass) Contains(r rune) bool {
	lo, hi := 0, len(c.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case r < c.ranges[mid].Lo:
			hi = mid
		case r > c.ranges[mid].Hi:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// Empty reports whether the class contains no runes.
func (c CharClass) Empty() bool { return len(c.ranges) == 0 }

// Negate returns the complement of the class within [0, MaxRune].
func (c CharClass) Negate() CharClass {
	var out []RuneRange
	next := rune(0)
	for _, r := range c.ranges {
		if r.Lo > next {
			out = append(out, RuneRange{next, r.Lo - 1})
		}
		next = r.Hi + 1
	}
	if next <= MaxRune {
		out = append(out, RuneRange{next, MaxRune})
	}
	return CharClass{ranges: out}
}

// Union returns the union of two classes.
func (c CharClass) Union(o CharClass) CharClass {
	return NewCharClass(append(append([]RuneRange(nil), c.ranges...), o.ranges...)...)
}

// Ranges returns the normalized ranges. Callers must not modify the
// slice.
func (c CharClass) Ranges() []RuneRange { return c.ranges }

// String renders the class in [a-z0-9] notation.
func (c CharClass) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for _, r := range c.ranges {
		if r.Lo == r.Hi {
			b.WriteString(escapeClassRune(r.Lo))
		} else {
			fmt.Fprintf(&b, "%s-%s", escapeClassRune(r.Lo), escapeClassRune(r.Hi))
		}
	}
	b.WriteByte(']')
	return b.String()
}

func escapeClassRune(r rune) string {
	switch r {
	case '\n':
		return `\n`
	case '\t':
		return `\t`
	case '\r':
		return `\r`
	case '-', '[', ']', '\\':
		return `\` + string(r)
	}
	if r < 32 || r > 126 {
		return fmt.Sprintf(`\x%02x`, r)
	}
	return string(r)
}

// ParseClass reads a character-class in the SDF notation used in
// Appendix B: "[a-zA-Z0-9]" with backslash escapes; a leading '~'
// (outside the brackets, SDF's complement operator) is handled by the
// caller via Negate.
func ParseClass(src string) (CharClass, error) {
	if len(src) < 2 || src[0] != '[' || src[len(src)-1] != ']' {
		return CharClass{}, fmt.Errorf("isg: class must be bracketed: %q", src)
	}
	body := []rune(src[1 : len(src)-1])
	var ranges []RuneRange
	read := func(i int) (rune, int, error) {
		if body[i] != '\\' {
			return body[i], i + 1, nil
		}
		if i+1 >= len(body) {
			return 0, 0, fmt.Errorf("isg: trailing backslash in class %q", src)
		}
		switch body[i+1] {
		case 'n':
			return '\n', i + 2, nil
		case 't':
			return '\t', i + 2, nil
		case 'r':
			return '\r', i + 2, nil
		case 'f':
			return '\f', i + 2, nil
		default:
			return body[i+1], i + 2, nil
		}
	}
	for i := 0; i < len(body); {
		lo, next, err := read(i)
		if err != nil {
			return CharClass{}, err
		}
		i = next
		hi := lo
		if i+1 < len(body)+1 && i < len(body) && body[i] == '-' && i+1 < len(body) {
			hi, next, err = read(i + 1)
			if err != nil {
				return CharClass{}, err
			}
			i = next
		}
		if hi < lo {
			return CharClass{}, fmt.Errorf("isg: inverted range %c-%c in class %q", lo, hi, src)
		}
		ranges = append(ranges, RuneRange{lo, hi})
	}
	return NewCharClass(ranges...), nil
}

package isg

import (
	"testing"
)

func TestPrivateRulesProduceNoTokens(t *testing.T) {
	letter, _ := ParseClass("[a-z]")
	rules := []Rule{
		{Sort: "WORD", Pattern: Plus(Ref("LETTER"))},
		{Sort: "WS", Pattern: Lit(" "), Layout: true},
		// LETTER is longer-matching than WS on any letter, but private:
		// it must never appear in the token stream.
		{Sort: "LETTER", Pattern: Class(letter), Private: true},
	}
	sc, err := NewScanner(rules)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := sc.Scan("abc d")
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range toks {
		if tk.Sort == "LETTER" {
			t.Fatalf("private sort leaked into token stream: %+v", toks)
		}
	}
	if len(toks) != 2 || toks[0].Sort != "WORD" || toks[1].Sort != "WORD" {
		t.Errorf("tokens: %+v", toks)
	}
}

func TestPrivateRuleStillValidated(t *testing.T) {
	rules := []Rule{
		{Sort: "A", Pattern: Ref("B")},
		{Sort: "B", Pattern: Ref("B"), Private: true}, // recursive
	}
	if _, err := NewScanner(rules); err == nil {
		t.Fatal("recursive private rule should be rejected")
	}
}

func TestUnicodeScanning(t *testing.T) {
	greek := NewCharClass(RuneRange{Lo: 'α', Hi: 'ω'})
	rules := []Rule{
		{Sort: "GREEK", Pattern: Plus(Class(greek))},
		{Sort: "WS", Pattern: Lit(" "), Layout: true},
	}
	sc, err := NewScanner(rules)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := sc.Scan("αβγ δε")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Text != "αβγ" || toks[1].Text != "δε" {
		t.Errorf("tokens: %+v", toks)
	}
	// Byte offsets respect multi-byte runes.
	if toks[1].Offset != len("αβγ ") {
		t.Errorf("offset %d, want %d", toks[1].Offset, len("αβγ "))
	}
}

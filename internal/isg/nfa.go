package isg

import (
	"fmt"
	"sort"
)

// nfaState is one Thompson NFA state. Transitions are either epsilon
// (eps) or labeled with a character class.
type nfaState struct {
	id    int
	eps   []*nfaState
	edges []nfaEdge
	// accept < 0 means non-accepting; otherwise the index of the rule
	// this state accepts.
	accept int
}

type nfaEdge struct {
	class CharClass
	to    *nfaState
}

// nfa is the combined Thompson automaton for a rule set: one shared start
// state with epsilon edges into each rule's fragment.
type nfa struct {
	start  *nfaState
	states []*nfaState
}

func (n *nfa) newState() *nfaState {
	s := &nfaState{id: len(n.states), accept: -1}
	n.states = append(n.states, s)
	return s
}

// buildNFA compiles the rule set. Pattern references (PatRef) are inlined;
// reference cycles are an error (lexical syntax must be regular).
func buildNFA(rules []Rule) (*nfa, error) {
	byName := map[string]*Pattern{}
	for _, r := range rules {
		// Multiple rules for one sort: alternation. (SDF allows several
		// functions producing one lexical sort.)
		if prev, ok := byName[r.Sort]; ok {
			byName[r.Sort] = Alt(prev, r.Pattern)
		} else {
			byName[r.Sort] = r.Pattern
		}
	}

	n := &nfa{}
	n.start = n.newState()

	var compile func(p *Pattern, from, to *nfaState, inlining map[string]bool) error
	compile = func(p *Pattern, from, to *nfaState, inlining map[string]bool) error {
		switch p.Kind {
		case PatLiteral:
			cur := from
			runes := []rune(p.Str)
			for i, r := range runes {
				next := to
				if i < len(runes)-1 {
					next = n.newState()
				}
				cur.edges = append(cur.edges, nfaEdge{class: ClassOf(r), to: next})
				cur = next
			}
			if len(runes) == 0 {
				from.eps = append(from.eps, to)
			}
		case PatClass:
			if p.Class.Empty() {
				return fmt.Errorf("isg: empty character class in pattern")
			}
			from.edges = append(from.edges, nfaEdge{class: p.Class, to: to})
		case PatConcat:
			cur := from
			for i, sub := range p.Subs {
				next := to
				if i < len(p.Subs)-1 {
					next = n.newState()
				}
				if err := compile(sub, cur, next, inlining); err != nil {
					return err
				}
				cur = next
			}
			if len(p.Subs) == 0 {
				from.eps = append(from.eps, to)
			}
		case PatAlt:
			if len(p.Subs) == 0 {
				return fmt.Errorf("isg: empty alternation")
			}
			for _, sub := range p.Subs {
				if err := compile(sub, from, to, inlining); err != nil {
					return err
				}
			}
		case PatStar:
			mid := n.newState()
			from.eps = append(from.eps, mid)
			mid.eps = append(mid.eps, to)
			back := n.newState()
			if err := compile(p.Subs[0], mid, back, inlining); err != nil {
				return err
			}
			back.eps = append(back.eps, mid)
		case PatPlus:
			mid := n.newState()
			back := n.newState()
			from.eps = append(from.eps, mid)
			if err := compile(p.Subs[0], mid, back, inlining); err != nil {
				return err
			}
			back.eps = append(back.eps, mid, to)
		case PatOpt:
			from.eps = append(from.eps, to)
			if err := compile(p.Subs[0], from, to, inlining); err != nil {
				return err
			}
		case PatRef:
			target, ok := byName[p.Str]
			if !ok {
				return fmt.Errorf("isg: reference to undefined lexical sort %q", p.Str)
			}
			if inlining[p.Str] {
				return fmt.Errorf("isg: recursive lexical sort %q (lexical syntax must be regular)", p.Str)
			}
			inlining[p.Str] = true
			err := compile(target, from, to, inlining)
			delete(inlining, p.Str)
			return err
		default:
			return fmt.Errorf("isg: unknown pattern kind %d", p.Kind)
		}
		return nil
	}

	for i, r := range rules {
		if r.Private {
			// Private rules only feed Ref resolution; validate them by
			// compiling into a detached fragment.
			frag := n.newState()
			end := n.newState()
			if err := compile(r.Pattern, frag, end, map[string]bool{}); err != nil {
				return nil, fmt.Errorf("rule %s: %w", r.Sort, err)
			}
			continue
		}
		frag := n.newState()
		acc := n.newState()
		acc.accept = i
		n.start.eps = append(n.start.eps, frag)
		if err := compile(r.Pattern, frag, acc, map[string]bool{}); err != nil {
			return nil, fmt.Errorf("rule %s: %w", r.Sort, err)
		}
	}
	return n, nil
}

// epsClosure expands a state set over epsilon edges; the result is sorted
// by id and deduplicated.
func epsClosure(states []*nfaState) []*nfaState {
	seen := map[int]bool{}
	var out []*nfaState
	var stack []*nfaState
	push := func(s *nfaState) {
		if !seen[s.id] {
			seen[s.id] = true
			out = append(out, s)
			stack = append(stack, s)
		}
	}
	for _, s := range states {
		push(s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range s.eps {
			push(e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// move returns the eps-closed successor set of states on rune r.
func move(states []*nfaState, r rune) []*nfaState {
	var next []*nfaState
	for _, s := range states {
		for _, e := range s.edges {
			if e.class.Contains(r) {
				next = append(next, e.to)
			}
		}
	}
	if len(next) == 0 {
		return nil
	}
	return epsClosure(next)
}

package isg

import (
	"fmt"
	"strings"
)

// PatternKind tags Pattern, the regular-expression AST of lexical rules.
// Go has no sum types; Pattern is a tagged struct.
type PatternKind uint8

const (
	// PatLiteral matches a fixed string.
	PatLiteral PatternKind = iota
	// PatClass matches one rune from a character class.
	PatClass
	// PatConcat matches its subpatterns in sequence.
	PatConcat
	// PatAlt matches any one subpattern.
	PatAlt
	// PatStar matches zero or more repetitions of its subpattern.
	PatStar
	// PatPlus matches one or more repetitions.
	PatPlus
	// PatOpt matches zero or one occurrence.
	PatOpt
	// PatRef references another lexical sort by name; references are
	// inlined at NFA construction and must not be recursive.
	PatRef
)

// Pattern is a node of the regular-pattern AST.
type Pattern struct {
	Kind  PatternKind
	Str   string     // PatLiteral text or PatRef sort name
	Class CharClass  // PatClass
	Subs  []*Pattern // PatConcat, PatAlt, PatStar, PatPlus, PatOpt
}

// Lit matches the exact string s.
func Lit(s string) *Pattern { return &Pattern{Kind: PatLiteral, Str: s} }

// Class matches one rune of c.
func Class(c CharClass) *Pattern { return &Pattern{Kind: PatClass, Class: c} }

// Seq matches the given patterns in order.
func Seq(subs ...*Pattern) *Pattern { return &Pattern{Kind: PatConcat, Subs: subs} }

// Alt matches any one of the given patterns.
func Alt(subs ...*Pattern) *Pattern { return &Pattern{Kind: PatAlt, Subs: subs} }

// Star matches zero or more repetitions of p.
func Star(p *Pattern) *Pattern { return &Pattern{Kind: PatStar, Subs: []*Pattern{p}} }

// Plus matches one or more repetitions of p.
func Plus(p *Pattern) *Pattern { return &Pattern{Kind: PatPlus, Subs: []*Pattern{p}} }

// Opt matches zero or one occurrence of p.
func Opt(p *Pattern) *Pattern { return &Pattern{Kind: PatOpt, Subs: []*Pattern{p}} }

// Ref references the lexical sort named name.
func Ref(name string) *Pattern { return &Pattern{Kind: PatRef, Str: name} }

// String renders the pattern for diagnostics.
func (p *Pattern) String() string {
	switch p.Kind {
	case PatLiteral:
		return fmt.Sprintf("%q", p.Str)
	case PatClass:
		return p.Class.String()
	case PatRef:
		return p.Str
	case PatConcat:
		parts := make([]string, len(p.Subs))
		for i, s := range p.Subs {
			parts[i] = s.String()
		}
		return "(" + strings.Join(parts, " ") + ")"
	case PatAlt:
		parts := make([]string, len(p.Subs))
		for i, s := range p.Subs {
			parts[i] = s.String()
		}
		return "(" + strings.Join(parts, " | ") + ")"
	case PatStar:
		return p.Subs[0].String() + "*"
	case PatPlus:
		return p.Subs[0].String() + "+"
	case PatOpt:
		return p.Subs[0].String() + "?"
	default:
		return "?"
	}
}

// Rule is one lexical rule: a named token sort defined by a pattern.
type Rule struct {
	// Sort is the token sort produced (e.g. "ID", "LITERAL").
	Sort string
	// Pattern is the regular pattern.
	Pattern *Pattern
	// Layout marks the rule as layout (whitespace, comments): matches
	// are skipped by the scanner, not emitted as tokens.
	Layout bool
	// Private rules never match tokens themselves; they only define the
	// sort for Ref references from other rules (fragment rules, like the
	// sub-sorts LETTER or COM-CHAR of Appendix B).
	Private bool
}

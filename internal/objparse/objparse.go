// Package objparse implements an OBJ-style backtracking recursive-descent
// parser [FGJM85], row five of Fig 2.1: it explores every derivation, so
// it "does detect all ambiguous parses", which makes it suitable for
// finitely ambiguous grammars — but "parsing can be expensive for complex
// expressions" (exponential in the worst case; the benchmark harness
// shows exactly that against the parallel LR parsers).
package objparse

import (
	"fmt"

	"ipg/internal/grammar"
)

// ErrDepthExceeded is returned when the derivation depth bound trips,
// which happens for left-recursive grammars (the backtracking parser
// cannot terminate on them).
var ErrDepthExceeded = fmt.Errorf("objparse: derivation depth exceeded (left recursion?)")

// Parser is a backtracking recursive-descent parser.
type Parser struct {
	g *grammar.Grammar
	// MaxDepth bounds the derivation depth; 0 means 64 + 2×input length
	// per parse.
	MaxDepth int
}

// New returns a parser for g.
func New(g *grammar.Grammar) *Parser { return &Parser{g: g} }

// CountParses returns the number of distinct derivations of input (a
// token slice without end marker). A count greater than one means the
// sentence is ambiguous; zero means it is rejected.
func (p *Parser) CountParses(input []grammar.Symbol) (int, error) {
	maxDepth := p.MaxDepth
	if maxDepth == 0 {
		maxDepth = 64 + 2*len(input)
	}
	exceeded := false

	// derive returns the multiset of end positions reachable by deriving
	// nt starting at pos; multiplicity = number of distinct derivations.
	var derive func(nt grammar.Symbol, pos, depth int) map[int]int
	derive = func(nt grammar.Symbol, pos, depth int) map[int]int {
		if exceeded {
			return nil
		}
		if depth > maxDepth {
			exceeded = true
			return nil
		}
		out := map[int]int{}
		for _, r := range p.g.RulesFor(nt) {
			// seq[i] = multiset of positions after matching r.Rhs[:i].
			cur := map[int]int{pos: 1}
			for _, sym := range r.Rhs {
				next := map[int]int{}
				for at, mult := range cur {
					if p.g.Symbols().Kind(sym) == grammar.Terminal {
						if at < len(input) && input[at] == sym {
							next[at+1] += mult
						}
						continue
					}
					for end, m2 := range derive(sym, at, depth+1) {
						next[end] += mult * m2
					}
				}
				cur = next
				if len(cur) == 0 {
					break
				}
			}
			for end, mult := range cur {
				out[end] += mult
			}
		}
		return out
	}

	ends := derive(p.g.Start(), 0, 0)
	if exceeded {
		return 0, ErrDepthExceeded
	}
	return ends[len(input)], nil
}

// Recognize reports whether input is a sentence.
func (p *Parser) Recognize(input []grammar.Symbol) (bool, error) {
	n, err := p.CountParses(input)
	return n > 0, err
}

// Ambiguous reports whether input has more than one parse — the ambiguity
// detection OBJ's backtracking parser provides.
func (p *Parser) Ambiguous(input []grammar.Symbol) (bool, error) {
	n, err := p.CountParses(input)
	return n > 1, err
}

package objparse

import (
	"errors"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/grammar"
)

// Dangling-else: ambiguous but not left-recursive.
const danglingElse = `
START ::= S
S ::= "i" S
S ::= "i" S "e" S
S ::= "x"
`

func TestRecognize(t *testing.T) {
	g := grammar.MustParse(danglingElse)
	p := New(g)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"x", true},
		{"i x", true},
		{"i x e x", true},
		{"i i x e x", true},
		{"e x", false},
		{"i", false},
	} {
		got, err := p.Recognize(fixtures.Tokens(g, tc.input))
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if got != tc.want {
			t.Errorf("Recognize(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestDetectsAllAmbiguousParses(t *testing.T) {
	g := grammar.MustParse(danglingElse)
	p := New(g)
	n, err := p.CountParses(fixtures.Tokens(g, "i i x e x"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("CountParses = %d, want 2 (dangling else)", n)
	}
	amb, err := p.Ambiguous(fixtures.Tokens(g, "i i x e x"))
	if err != nil || !amb {
		t.Errorf("Ambiguous = %v, %v", amb, err)
	}
	amb, err = p.Ambiguous(fixtures.Tokens(g, "i x e x"))
	if err != nil || amb {
		t.Errorf("'i x e x' should be unambiguous: %v, %v", amb, err)
	}
}

func TestCountGrowsWithNesting(t *testing.T) {
	g := grammar.MustParse(danglingElse)
	p := New(g)
	// i^k x (e x)^(k-1)-style sentences have Catalan-like parse counts;
	// verify growth for k=3: 'i i i x e x e x' -> more than 2 parses.
	n, err := p.CountParses(fixtures.Tokens(g, "i i i x e x e x"))
	if err != nil {
		t.Fatal(err)
	}
	if n <= 2 {
		t.Errorf("CountParses = %d, want > 2", n)
	}
}

func TestLeftRecursionDepthGuard(t *testing.T) {
	g := fixtures.Booleans() // B ::= B or B is left-recursive
	p := New(g)
	_, err := p.Recognize(fixtures.Tokens(g, "true or true"))
	if !errors.Is(err, ErrDepthExceeded) {
		t.Fatalf("want ErrDepthExceeded on left-recursive grammar, got %v", err)
	}
}

func TestEpsilonRules(t *testing.T) {
	g := grammar.MustParse(`
START ::= A "b"
A ::= "a" | ε
`)
	p := New(g)
	for _, tc := range []struct {
		input string
		want  int
	}{
		{"a b", 1},
		{"b", 1},
		{"a", 0},
	} {
		n, err := p.CountParses(fixtures.Tokens(g, tc.input))
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if n != tc.want {
			t.Errorf("CountParses(%q) = %d, want %d", tc.input, n, tc.want)
		}
	}
}

func TestMaxDepthOverride(t *testing.T) {
	g := grammar.MustParse(danglingElse)
	p := New(g)
	p.MaxDepth = 1
	if _, err := p.CountParses(fixtures.Tokens(g, "i i x e x")); !errors.Is(err, ErrDepthExceeded) {
		t.Fatalf("want ErrDepthExceeded with tiny budget, got %v", err)
	}
}

package grammar

import (
	"testing"
)

func TestSymbolTableIntern(t *testing.T) {
	st := NewSymbolTable()
	a, err := st.Intern("a", Terminal)
	if err != nil {
		t.Fatalf("Intern a: %v", err)
	}
	a2, err := st.Intern("a", Terminal)
	if err != nil {
		t.Fatalf("re-Intern a: %v", err)
	}
	if a != a2 {
		t.Errorf("interning twice gave %d and %d", a, a2)
	}
	b, _ := st.Intern("B", Nonterminal)
	if a == b {
		t.Errorf("distinct names share symbol %d", a)
	}
	if st.Name(a) != "a" || st.Name(b) != "B" {
		t.Errorf("Name mismatch: %q %q", st.Name(a), st.Name(b))
	}
	if st.Kind(a) != Terminal || st.Kind(b) != Nonterminal {
		t.Errorf("Kind mismatch")
	}
}

func TestSymbolTableKindConflict(t *testing.T) {
	st := NewSymbolTable()
	st.MustIntern("x", Terminal)
	if _, err := st.Intern("x", Nonterminal); err == nil {
		t.Fatal("re-interning with different kind should fail")
	}
}

func TestSymbolTableEOF(t *testing.T) {
	st := NewSymbolTable()
	s, ok := st.Lookup("$")
	if !ok || s != EOF {
		t.Fatalf("$ not pre-interned as EOF: %v %v", s, ok)
	}
	if st.Kind(EOF) != Terminal {
		t.Error("EOF must be a terminal")
	}
	// EOF must be stable across tables.
	st2 := NewSymbolTable()
	s2, _ := st2.Lookup("$")
	if s2 != EOF {
		t.Error("EOF differs across tables")
	}
}

func TestSymbolTableEmptyName(t *testing.T) {
	st := NewSymbolTable()
	if _, err := st.Intern("", Terminal); err == nil {
		t.Fatal("empty name should be rejected")
	}
}

func TestSymbolTableLookupMissing(t *testing.T) {
	st := NewSymbolTable()
	if _, ok := st.Lookup("nope"); ok {
		t.Fatal("Lookup of unknown name should report false")
	}
}

func TestSymbolTableEnumerations(t *testing.T) {
	st := NewSymbolTable()
	st.MustIntern("z", Terminal)
	st.MustIntern("A", Nonterminal)
	st.MustIntern("a", Terminal)
	if got := st.Len(); got != 4 { // $, z, A, a
		t.Fatalf("Len = %d, want 4", got)
	}
	terms := st.Terminals()
	if len(terms) != 3 {
		t.Fatalf("Terminals = %d entries, want 3", len(terms))
	}
	// Sorted by name: $, a, z
	if st.Name(terms[0]) != "$" || st.Name(terms[1]) != "a" || st.Name(terms[2]) != "z" {
		t.Errorf("Terminals not sorted by name: %v", st.NamesOf(terms))
	}
	nts := st.Nonterminals()
	if len(nts) != 1 || st.Name(nts[0]) != "A" {
		t.Errorf("Nonterminals = %v", st.NamesOf(nts))
	}
}

func TestNameOfInvalid(t *testing.T) {
	st := NewSymbolTable()
	if st.Name(NoSymbol) != "<invalid>" {
		t.Error("NoSymbol should format as <invalid>")
	}
	if st.Name(Symbol(999)) != "<invalid>" {
		t.Error("out-of-range symbol should format as <invalid>")
	}
}

func TestKindPanicsOnInvalid(t *testing.T) {
	st := NewSymbolTable()
	defer func() {
		if recover() == nil {
			t.Error("Kind(NoSymbol) should panic")
		}
	}()
	st.Kind(NoSymbol)
}

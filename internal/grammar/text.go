package grammar

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a grammar from its plain-text BNF form:
//
//	# comment to end of line
//	START ::= E
//	E ::= E "+" T | T
//	T ::= "true" | "(" E ")"
//	Empty ::= ε
//
// Double-quoted tokens (Go string syntax) are always terminals. Bare
// identifiers are nonterminals if they occur on a left-hand side anywhere
// in the text, and terminals otherwise. The alternative ε (or a lone
// alternative that is empty) denotes an epsilon rule. Rules for one
// nonterminal may be split over multiple lines by repeating the head.
//
// When syms is non-nil the grammar is built over that table (symbols must
// not conflict in kind); otherwise a fresh table is created.
func Parse(text string, syms *SymbolTable) (*Grammar, error) {
	lines, err := splitRules(text)
	if err != nil {
		return nil, err
	}
	g := New(syms)
	// First pass: every LHS is a nonterminal.
	for _, ln := range lines {
		if _, err := g.syms.Intern(ln.lhs, Nonterminal); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln.line, err)
		}
	}
	// Second pass: build rules; bare RHS names default to terminal.
	for _, ln := range lines {
		lhs, _ := g.syms.Lookup(ln.lhs)
		for _, alt := range ln.alts {
			rhs := make([]Symbol, 0, len(alt))
			for _, tok := range alt {
				var s Symbol
				var err error
				switch {
				case tok.quoted:
					s, err = g.syms.Intern(tok.text, Terminal)
				default:
					if existing, ok := g.syms.Lookup(tok.text); ok {
						s = existing
					} else {
						s, err = g.syms.Intern(tok.text, Terminal)
					}
				}
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", ln.line, err)
				}
				rhs = append(rhs, s)
			}
			if err := g.AddRule(NewRule(lhs, rhs...)); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln.line, err)
			}
		}
	}
	return g, nil
}

// MustParse is Parse that panics on error, for tests and fixed grammars.
func MustParse(text string) *Grammar {
	g, err := Parse(text, nil)
	if err != nil {
		panic(err)
	}
	return g
}

type textRule struct {
	line int
	lhs  string
	alts [][]textToken
}

type textToken struct {
	text   string
	quoted bool
}

func splitRules(text string) ([]textRule, error) {
	var out []textRule
	for i, raw := range strings.Split(text, "\n") {
		line := i + 1
		toks, err := tokenizeLine(raw, line)
		if err != nil {
			return nil, err
		}
		if len(toks) == 0 {
			continue
		}
		if len(toks) < 2 || toks[1].text != "::=" || toks[1].quoted || toks[0].quoted {
			return nil, fmt.Errorf("line %d: expected `Name ::= ...`", line)
		}
		tr := textRule{line: line, lhs: toks[0].text}
		alt := []textToken{}
		flush := func() {
			tr.alts = append(tr.alts, alt)
			alt = []textToken{}
		}
		for _, tok := range toks[2:] {
			if !tok.quoted && tok.text == "|" {
				flush()
				continue
			}
			if !tok.quoted && (tok.text == "ε" || tok.text == "epsilon()") {
				continue // explicit epsilon marker contributes no symbol
			}
			alt = append(alt, tok)
		}
		flush()
		out = append(out, tr)
	}
	return out, nil
}

func tokenizeLine(raw string, line int) ([]textToken, error) {
	var toks []textToken
	s := raw
	for len(s) > 0 {
		switch c := s[0]; {
		case c == '#':
			return toks, nil
		case c == ' ' || c == '\t' || c == '\r':
			s = s[1:]
		case c == '"':
			end := -1
			for j := 1; j < len(s); j++ {
				if s[j] == '\\' {
					j++
					continue
				}
				if s[j] == '"' {
					end = j
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("line %d: unterminated string literal", line)
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad string literal %s: %v", line, s[:end+1], err)
			}
			if lit == "" {
				return nil, fmt.Errorf("line %d: empty terminal literal", line)
			}
			toks = append(toks, textToken{text: lit, quoted: true})
			s = s[end+1:]
		case c == '|':
			toks = append(toks, textToken{text: "|"})
			s = s[1:]
		default:
			j := 0
			for j < len(s) && !strings.ContainsRune(" \t\r\"|#", rune(s[j])) {
				j++
			}
			toks = append(toks, textToken{text: s[:j]})
			s = s[j:]
		}
	}
	return toks, nil
}

// formatRuleText renders a rule in the syntax accepted by Parse:
// terminals quoted, nonterminals bare.
func formatRuleText(t *SymbolTable, r *Rule) string {
	var b strings.Builder
	b.WriteString(t.Name(r.Lhs))
	b.WriteString(" ::=")
	if len(r.Rhs) == 0 {
		b.WriteString(" ε")
		return b.String()
	}
	for _, s := range r.Rhs {
		b.WriteByte(' ')
		if t.Kind(s) == Terminal {
			b.WriteString(strconv.Quote(t.Name(s)))
		} else {
			b.WriteString(t.Name(s))
		}
	}
	return b.String()
}

package grammar

import (
	"strconv"
	"strings"
)

// Rule is a syntax rule A ::= α. Rules are immutable after creation; the
// grammar algorithms identify rules by value (left-hand side plus
// right-hand side), matching the paper's ADD-RULE / DELETE-RULE interface,
// which names rules by their text.
type Rule struct {
	// Lhs is the defined nonterminal A.
	Lhs Symbol
	// Rhs is the body α: zero or more terminals and/or nonterminals.
	// An empty Rhs is an epsilon rule.
	Rhs []Symbol

	// key is the canonical value identity, computed once at creation.
	key string
}

// NewRule creates a rule. The Rhs slice is copied, so callers may reuse
// their buffer.
func NewRule(lhs Symbol, rhs ...Symbol) *Rule {
	body := make([]Symbol, len(rhs))
	copy(body, rhs)
	r := &Rule{Lhs: lhs, Rhs: body}
	r.key = ruleKey(lhs, body)
	return r
}

// ruleKey encodes a rule's value identity as a compact string usable as a
// map key. Symbol IDs (not names) are encoded, so the key is only
// meaningful within one SymbolTable.
func ruleKey(lhs Symbol, rhs []Symbol) string {
	var b strings.Builder
	b.Grow(4 * (len(rhs) + 1))
	b.WriteString(strconv.FormatInt(int64(lhs), 32))
	for _, s := range rhs {
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(int64(s), 32))
	}
	return b.String()
}

// Key returns the canonical value identity of the rule. Two rules with the
// same Lhs and Rhs have equal keys.
func (r *Rule) Key() string { return r.key }

// Len returns the length of the right-hand side.
func (r *Rule) Len() int { return len(r.Rhs) }

// Equal reports whether r and o have the same left- and right-hand sides.
func (r *Rule) Equal(o *Rule) bool {
	if r == nil || o == nil {
		return r == o
	}
	return r.key == o.key
}

// String formats the rule using names from t, e.g. "B ::= B or B".
// An epsilon rule formats as "A ::= ε".
func (r *Rule) String(t *SymbolTable) string {
	var b strings.Builder
	b.WriteString(t.Name(r.Lhs))
	b.WriteString(" ::=")
	if len(r.Rhs) == 0 {
		b.WriteString(" ε")
		return b.String()
	}
	for _, s := range r.Rhs {
		b.WriteByte(' ')
		b.WriteString(t.Name(s))
	}
	return b.String()
}

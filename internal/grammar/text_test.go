package grammar

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	g, err := Parse(`
# the booleans
START ::= B
B ::= "true" | "false"
B ::= B "or" B
`, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	or, ok := g.Symbols().Lookup("or")
	if !ok || g.Symbols().Kind(or) != Terminal {
		t.Error("quoted token should be a terminal")
	}
	b, ok := g.Symbols().Lookup("B")
	if !ok || g.Symbols().Kind(b) != Nonterminal {
		t.Error("LHS name should be a nonterminal")
	}
}

func TestParseBareTerminal(t *testing.T) {
	g, err := Parse(`START ::= id`, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := g.Symbols().Lookup("id")
	if !ok || g.Symbols().Kind(id) != Terminal {
		t.Error("bare undefined name should default to terminal")
	}
}

func TestParseForwardReference(t *testing.T) {
	// E is used before its defining line; the two-pass reader must still
	// classify it as a nonterminal.
	g, err := Parse(`
START ::= E
E ::= "x"
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.Symbols().Lookup("E")
	if g.Symbols().Kind(e) != Nonterminal {
		t.Error("forward-referenced LHS classified as terminal")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"missing arrow", `START "x"`},
		{"quoted lhs", `"S" ::= "x"`},
		{"unterminated string", `START ::= "x`},
		{"empty literal", `START ::= ""`},
		{"start in rhs", `START ::= START "x"`},
		{"duplicate", "START ::= \"x\"\nSTART ::= \"x\""},
		{"bad escape", `START ::= "\q"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.text, nil); err == nil {
				t.Errorf("Parse(%q) should fail", tc.text)
			}
		})
	}
}

func TestParseQuotedSpecials(t *testing.T) {
	g, err := Parse(`START ::= "(" "a|b" "#" ")"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"(", "a|b", "#", ")"} {
		if _, ok := g.Symbols().Lookup(name); !ok {
			t.Errorf("literal %q not interned", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	src := `
START ::= E
E ::= E "+" T
E ::= T
T ::= "x" | "(" E ")"
Empty ::= ε
`
	g, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(g.String(), nil)
	if err != nil {
		t.Fatalf("reparse of String(): %v\n%s", err, g.String())
	}
	a := strings.Join(g.SortedRuleStrings(), "\n")
	b := strings.Join(g2.SortedRuleStrings(), "\n")
	if a != b {
		t.Errorf("round trip mismatch:\n%s\n--- vs ---\n%s", a, b)
	}
}

func TestParseIntoSharedTable(t *testing.T) {
	st := NewSymbolTable()
	g1, err := Parse(`START ::= "x"`, st)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(`START ::= "x" "y"`, st)
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := g1.Symbols().Lookup("x")
	x2, _ := g2.Symbols().Lookup("x")
	if x1 != x2 {
		t.Error("shared table should intern x identically")
	}
}

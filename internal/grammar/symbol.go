// Package grammar implements context-free grammars as used by the IPG
// parser generators: interned symbols, syntax rules, modifiable grammars
// with versioning, a plain-text BNF format, standard grammar analyses
// (reachability, productivity, NULLABLE/FIRST/FOLLOW), and deterministic
// random generators for property-based testing.
//
// The representation follows section 4 of Heering, Klint & Rekers,
// "Incremental Generation of Parsers" (CWI CS-R8822, 1988): a grammar is a
// set of syntax rules A ::= α with A a nonterminal and α a list of zero or
// more terminals and/or nonterminals. The nonterminal START is the start
// symbol and may not be used in the right-hand side of any rule.
package grammar

import (
	"fmt"
	"sort"
)

// Symbol is an interned grammar symbol. The zero Symbol is invalid; valid
// symbols are obtained from a SymbolTable. A Symbol is only meaningful
// together with the table that produced it.
type Symbol int32

// NoSymbol is the invalid zero symbol.
const NoSymbol Symbol = 0

// EOF is the end-of-input marker "$". Every SymbolTable interns it at
// creation time with this fixed value, so EOF is table-independent.
const EOF Symbol = 1

// Kind classifies a symbol as terminal or nonterminal. Kinds are fixed when
// a symbol is interned; a grammar rule may only have a nonterminal
// left-hand side.
type Kind uint8

const (
	// Terminal symbols appear in the input token stream.
	Terminal Kind = iota
	// Nonterminal symbols are defined by grammar rules.
	Nonterminal
)

// String returns "terminal" or "nonterminal".
func (k Kind) String() string {
	switch k {
	case Terminal:
		return "terminal"
	case Nonterminal:
		return "nonterminal"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// SymbolTable interns symbol names. It is the identity space for Symbols:
// two grammars sharing a table may exchange symbols and rules directly
// (this is what modular grammar composition relies on).
type SymbolTable struct {
	names  []string
	kinds  []Kind
	byName map[string]Symbol
}

// NewSymbolTable returns a table with the end-marker "$" pre-interned as
// the terminal EOF.
func NewSymbolTable() *SymbolTable {
	t := &SymbolTable{
		// Index 0 is reserved for NoSymbol.
		names:  []string{"", "$"},
		kinds:  []Kind{Terminal, Terminal},
		byName: map[string]Symbol{"$": EOF},
	}
	return t
}

// Intern returns the symbol for name, creating it with the given kind if it
// does not exist. Interning an existing name with a different kind is an
// error: kinds are fixed for the lifetime of the table.
func (t *SymbolTable) Intern(name string, kind Kind) (Symbol, error) {
	if name == "" {
		return NoSymbol, fmt.Errorf("grammar: empty symbol name")
	}
	if s, ok := t.byName[name]; ok {
		if t.kinds[s] != kind {
			return NoSymbol, fmt.Errorf("grammar: symbol %q already interned as %s, cannot re-intern as %s",
				name, t.kinds[s], kind)
		}
		return s, nil
	}
	s := Symbol(len(t.names))
	t.names = append(t.names, name)
	t.kinds = append(t.kinds, kind)
	t.byName[name] = s
	return s, nil
}

// MustIntern is Intern that panics on error. Intended for tests and for
// statically known bootstrap grammars.
func (t *SymbolTable) MustIntern(name string, kind Kind) Symbol {
	s, err := t.Intern(name, kind)
	if err != nil {
		panic(err)
	}
	return s
}

// Terminal interns name as a terminal.
func (t *SymbolTable) Terminal(name string) (Symbol, error) { return t.Intern(name, Terminal) }

// Nonterminal interns name as a nonterminal.
func (t *SymbolTable) Nonterminal(name string) (Symbol, error) { return t.Intern(name, Nonterminal) }

// Lookup returns the symbol for name without creating it. The boolean
// reports whether the name is known.
func (t *SymbolTable) Lookup(name string) (Symbol, bool) {
	s, ok := t.byName[name]
	return s, ok
}

// Name returns the name of s, or "<invalid>" for symbols not in the table.
func (t *SymbolTable) Name(s Symbol) string {
	if s <= 0 || int(s) >= len(t.names) {
		return "<invalid>"
	}
	return t.names[s]
}

// Kind returns the kind of s. Kind panics if s is not a symbol of this
// table; a Symbol is only meaningful with the table that created it.
func (t *SymbolTable) Kind(s Symbol) Kind {
	if s <= 0 || int(s) >= len(t.names) {
		panic(fmt.Sprintf("grammar: Kind of invalid symbol %d", s))
	}
	return t.kinds[s]
}

// IsTerminal reports whether s is a terminal of this table.
func (t *SymbolTable) IsTerminal(s Symbol) bool { return t.Kind(s) == Terminal }

// IsNonterminal reports whether s is a nonterminal of this table.
func (t *SymbolTable) IsNonterminal(s Symbol) bool { return t.Kind(s) == Nonterminal }

// Len returns the number of interned symbols, including EOF.
func (t *SymbolTable) Len() int { return len(t.names) - 1 }

// Symbols returns all interned symbols in interning order.
func (t *SymbolTable) Symbols() []Symbol {
	out := make([]Symbol, 0, len(t.names)-1)
	for i := 1; i < len(t.names); i++ {
		out = append(out, Symbol(i))
	}
	return out
}

// Terminals returns all terminal symbols sorted by name, EOF included.
func (t *SymbolTable) Terminals() []Symbol { return t.byKind(Terminal) }

// Nonterminals returns all nonterminal symbols sorted by name.
func (t *SymbolTable) Nonterminals() []Symbol { return t.byKind(Nonterminal) }

func (t *SymbolTable) byKind(k Kind) []Symbol {
	var out []Symbol
	for i := 1; i < len(t.names); i++ {
		if t.kinds[i] == k {
			out = append(out, Symbol(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return t.names[out[i]] < t.names[out[j]] })
	return out
}

// NamesOf formats a symbol slice as space-separated names.
func (t *SymbolTable) NamesOf(syms []Symbol) string {
	b := make([]byte, 0, 8*len(syms))
	for i, s := range syms {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t.Name(s)...)
	}
	return string(b)
}

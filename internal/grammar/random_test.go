package grammar

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomDeterministic(t *testing.T) {
	a := Random(RandConfig{}, rand.New(rand.NewSource(7)))
	b := Random(RandConfig{}, rand.New(rand.NewSource(7)))
	if a.String() != b.String() {
		t.Error("Random is not deterministic for a fixed seed")
	}
}

func TestRandomHasStart(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := Random(RandConfig{}, rand.New(rand.NewSource(seed)))
		if len(g.RulesFor(g.Start())) == 0 {
			t.Fatalf("seed %d: no START rule", seed)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomRespectsConfig(t *testing.T) {
	cfg := RandConfig{Nonterminals: 2, Terminals: 3, Rules: 6, MaxRHS: 3}
	g := Random(cfg, rand.New(rand.NewSource(1)))
	for _, r := range g.Rules() {
		if r.Lhs == g.Start() {
			continue
		}
		if r.Len() > cfg.MaxRHS {
			t.Errorf("rule %s exceeds MaxRHS", r.String(g.Symbols()))
		}
	}
	// N0..N1, t0..t2, START, $
	if g.Symbols().Len() > 2+3+2 {
		t.Errorf("too many symbols: %d", g.Symbols().Len())
	}
}

func TestRandomSentenceRespectsDepth(t *testing.T) {
	g := MustParse(`
START ::= A
A ::= "x" | "(" A ")"
`)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		sent, ok := g.RandomSentence(rng, 5)
		if !ok {
			t.Fatal("grammar is productive; sentence expected")
		}
		// Depth 5 allows at most 3 nesting levels: each "(A)" costs one.
		if len(sent) > 2*5+1 {
			t.Errorf("sentence too long for depth bound: %v", g.Symbols().NamesOf(sent))
		}
	}
}

func TestRandomSentenceUnproductive(t *testing.T) {
	g := MustParse(`
START ::= A
A ::= A "x"
`)
	if _, ok := g.RandomSentence(rand.New(rand.NewSource(1)), 10); ok {
		t.Error("unproductive grammar should yield no sentence")
	}
}

// Property: RandomSentence output consists solely of terminals.
func TestRandomSentenceTerminalsOnly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(RandConfig{EpsilonProb: 0.1}, rng)
		sent, ok := g.RandomSentence(rng, 10)
		if !ok {
			return true
		}
		for _, s := range sent {
			if g.Symbols().Kind(s) != Terminal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinHeights(t *testing.T) {
	g := MustParse(`
START ::= A
A ::= B
B ::= "b"
Loop ::= Loop "x"
`)
	h := g.minHeights()
	b, _ := g.Symbols().Lookup("B")
	a, _ := g.Symbols().Lookup("A")
	loop, _ := g.Symbols().Lookup("Loop")
	if h[b] != 0 {
		t.Errorf("minHeight(B) = %d, want 0", h[b])
	}
	if h[a] != 1 {
		t.Errorf("minHeight(A) = %d, want 1", h[a])
	}
	if h[g.Start()] != 2 {
		t.Errorf("minHeight(START) = %d, want 2", h[g.Start()])
	}
	if _, ok := h[loop]; ok {
		t.Error("unproductive Loop should have no height")
	}
}

package grammar

import (
	"errors"
	"strings"
	"testing"
)

func boolGrammar(t *testing.T) *Grammar {
	t.Helper()
	g, err := Parse(`
B ::= "true"
B ::= "false"
B ::= B "or" B
B ::= B "and" B
START ::= B
`, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return g
}

func TestGrammarBasics(t *testing.T) {
	g := boolGrammar(t)
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b, ok := g.Symbols().Lookup("B")
	if !ok {
		t.Fatal("B not interned")
	}
	if g.Symbols().Kind(b) != Nonterminal {
		t.Error("B should be a nonterminal")
	}
	if n := len(g.RulesFor(b)); n != 4 {
		t.Errorf("RulesFor(B) = %d rules, want 4", n)
	}
	if n := len(g.RulesFor(g.Start())); n != 1 {
		t.Errorf("RulesFor(START) = %d rules, want 1", n)
	}
}

func TestAddRuleVersioning(t *testing.T) {
	g := boolGrammar(t)
	v := g.Version()
	b, _ := g.Symbols().Lookup("B")
	unknown := g.Symbols().MustIntern("unknown", Terminal)
	if err := g.AddRule(NewRule(b, unknown)); err != nil {
		t.Fatalf("AddRule: %v", err)
	}
	if g.Version() != v+1 {
		t.Errorf("Version not incremented: %d -> %d", v, g.Version())
	}
	if g.Len() != 6 {
		t.Errorf("Len = %d, want 6", g.Len())
	}
}

func TestAddDuplicateRule(t *testing.T) {
	g := boolGrammar(t)
	b, _ := g.Symbols().Lookup("B")
	tr, _ := g.Symbols().Lookup("true")
	err := g.AddRule(NewRule(b, tr))
	if !errors.Is(err, ErrDuplicateRule) {
		t.Fatalf("want ErrDuplicateRule, got %v", err)
	}
	if g.Len() != 5 {
		t.Errorf("duplicate add changed rule count")
	}
}

func TestDeleteRule(t *testing.T) {
	g := boolGrammar(t)
	b, _ := g.Symbols().Lookup("B")
	and, _ := g.Symbols().Lookup("and")
	v := g.Version()
	stored, err := g.DeleteRule(NewRule(b, b, and, b))
	if err != nil {
		t.Fatalf("DeleteRule: %v", err)
	}
	if stored == nil || stored.Lhs != b {
		t.Fatalf("DeleteRule returned %v", stored)
	}
	if g.Version() != v+1 {
		t.Error("Version not incremented on delete")
	}
	if g.Len() != 4 {
		t.Errorf("Len = %d, want 4", g.Len())
	}
	if _, err := g.DeleteRule(NewRule(b, b, and, b)); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("second delete: want ErrUnknownRule, got %v", err)
	}
}

func TestDeleteLastRuleForLhs(t *testing.T) {
	g := MustParse(`
START ::= A
A ::= "x"
`)
	a, _ := g.Symbols().Lookup("A")
	x, _ := g.Symbols().Lookup("x")
	if _, err := g.DeleteRule(NewRule(a, x)); err != nil {
		t.Fatal(err)
	}
	if rs := g.RulesFor(a); len(rs) != 0 {
		t.Errorf("RulesFor after delete = %v", rs)
	}
}

func TestRuleConstraints(t *testing.T) {
	g := boolGrammar(t)
	b, _ := g.Symbols().Lookup("B")
	tr, _ := g.Symbols().Lookup("true")

	if err := g.AddRule(NewRule(tr, b)); err == nil {
		t.Error("terminal LHS should be rejected")
	}
	if err := g.AddRule(NewRule(b, g.Start())); err == nil {
		t.Error("START in RHS should be rejected")
	}
	if err := g.AddRule(NewRule(b, EOF)); err == nil {
		t.Error("$ in RHS should be rejected")
	}
	if err := g.AddRule(NewRule(b, Symbol(4096))); err == nil {
		t.Error("foreign symbol in RHS should be rejected")
	}
	if err := g.AddRule(nil); err == nil {
		t.Error("nil rule should be rejected")
	}
}

func TestValidateNoStart(t *testing.T) {
	g := New(nil)
	if err := g.Validate(); err == nil {
		t.Fatal("grammar without START rule should not validate")
	}
}

func TestClone(t *testing.T) {
	g := boolGrammar(t)
	c := g.Clone()
	if c.Len() != g.Len() {
		t.Fatalf("clone has %d rules, want %d", c.Len(), g.Len())
	}
	b, _ := g.Symbols().Lookup("B")
	xor := g.Symbols().MustIntern("xor", Terminal)
	if err := c.AddRule(NewRule(b, b, xor, b)); err != nil {
		t.Fatalf("AddRule on clone: %v", err)
	}
	if g.Len() != 5 {
		t.Error("mutating clone changed original")
	}
	if c.Symbols() != g.Symbols() {
		t.Error("clone should share the symbol table")
	}
}

func TestAddAllComposition(t *testing.T) {
	st := NewSymbolTable()
	base, err := Parse(`
START ::= E
E ::= "x"
`, st)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Parse(`
START ::= E
E ::= E "+" E
E ::= "x"
`, st)
	if err != nil {
		t.Fatal(err)
	}
	n, err := base.AddAll(ext)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("AddAll added %d rules, want 1 (duplicates skipped)", n)
	}
	if base.Len() != 3 {
		t.Errorf("composed grammar has %d rules, want 3", base.Len())
	}
	// Different symbol tables must be rejected.
	other := MustParse(`START ::= "y"`)
	if _, err := base.AddAll(other); err == nil {
		t.Error("AddAll across symbol tables should fail")
	}
}

func TestGrammarString(t *testing.T) {
	g := MustParse(`
START ::= E
E ::= E "+" E | "x"
`)
	s := g.String()
	for _, want := range []string{`START ::= E`, `E ::= E "+" E`, `E ::= "x"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestLookupCanonicalRule(t *testing.T) {
	g := boolGrammar(t)
	b, _ := g.Symbols().Lookup("B")
	tr, _ := g.Symbols().Lookup("true")
	mine := NewRule(b, tr)
	stored, ok := g.Lookup(mine)
	if !ok {
		t.Fatal("Lookup failed for present rule")
	}
	if stored == mine {
		t.Error("Lookup should return the grammar's own instance")
	}
	if !stored.Equal(mine) {
		t.Error("stored rule not equal to probe")
	}
}

func TestEpsilonRule(t *testing.T) {
	g := MustParse(`
START ::= A
A ::= ε
A ::= "x" A
`)
	a, _ := g.Symbols().Lookup("A")
	var eps *Rule
	for _, r := range g.RulesFor(a) {
		if r.Len() == 0 {
			eps = r
		}
	}
	if eps == nil {
		t.Fatal("epsilon rule not parsed")
	}
	if got := eps.String(g.Symbols()); got != "A ::= ε" {
		t.Errorf("epsilon rule formats as %q", got)
	}
}

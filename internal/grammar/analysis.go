package grammar

// This file implements the classical grammar analyses shared by the LALR(1)
// (Yacc baseline) and LL(1) generators: reachability, productivity,
// NULLABLE, FIRST and FOLLOW. All are computed to fixpoint over the current
// rule set; callers re-run them after grammar modification (the analyses
// themselves are not incremental — only the LR(0) graph of item sets is,
// which is the point of the paper).

// SymbolSet is a set of symbols.
type SymbolSet map[Symbol]bool

// Has reports membership of s.
func (ss SymbolSet) Has(s Symbol) bool { return ss[s] }

// add inserts s and reports whether the set changed.
func (ss SymbolSet) add(s Symbol) bool {
	if ss[s] {
		return false
	}
	ss[s] = true
	return true
}

// addAll inserts all of other and reports whether the set changed.
func (ss SymbolSet) addAll(other SymbolSet) bool {
	changed := false
	for s := range other {
		if ss.add(s) {
			changed = true
		}
	}
	return changed
}

// Reachable returns the symbols reachable from START through the rules.
// START itself is always reachable.
func (g *Grammar) Reachable() SymbolSet {
	seen := SymbolSet{g.start: true}
	work := []Symbol{g.start}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, r := range g.byLhs[n] {
			for _, s := range r.Rhs {
				if seen.add(s) && g.syms.Kind(s) == Nonterminal {
					work = append(work, s)
				}
			}
		}
	}
	return seen
}

// Productive returns the nonterminals that derive at least one terminal
// string (terminals are trivially productive and are not included).
func (g *Grammar) Productive() SymbolSet {
	prod := SymbolSet{}
	for changed := true; changed; {
		changed = false
		for _, r := range g.rules {
			if prod.Has(r.Lhs) {
				continue
			}
			ok := true
			for _, s := range r.Rhs {
				if g.syms.Kind(s) == Nonterminal && !prod.Has(s) {
					ok = false
					break
				}
			}
			if ok && prod.add(r.Lhs) {
				changed = true
			}
		}
	}
	return prod
}

// Nullable returns the nonterminals that derive the empty string.
func (g *Grammar) Nullable() SymbolSet {
	null := SymbolSet{}
	for changed := true; changed; {
		changed = false
		for _, r := range g.rules {
			if null.Has(r.Lhs) {
				continue
			}
			ok := true
			for _, s := range r.Rhs {
				if !null.Has(s) {
					ok = false
					break
				}
			}
			if ok && null.add(r.Lhs) {
				changed = true
			}
		}
	}
	return null
}

// FirstSets computes FIRST for every nonterminal: the terminals that can
// begin a string derived from it. Epsilon membership is reported
// separately by Nullable.
func (g *Grammar) FirstSets() map[Symbol]SymbolSet {
	null := g.Nullable()
	first := map[Symbol]SymbolSet{}
	for _, n := range g.syms.Nonterminals() {
		first[n] = SymbolSet{}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range g.rules {
			fs := first[r.Lhs]
			for _, s := range r.Rhs {
				if g.syms.Kind(s) == Terminal {
					if fs.add(s) {
						changed = true
					}
					break
				}
				if fs.addAll(first[s]) {
					changed = true
				}
				if !null.Has(s) {
					break
				}
			}
		}
	}
	return first
}

// FirstOfString computes FIRST(α) for a symbol string using precomputed
// FIRST sets and the nullable set. The boolean result reports whether α is
// nullable.
func (g *Grammar) FirstOfString(alpha []Symbol, first map[Symbol]SymbolSet, null SymbolSet) (SymbolSet, bool) {
	out := SymbolSet{}
	for _, s := range alpha {
		if g.syms.Kind(s) == Terminal {
			out.add(s)
			return out, false
		}
		out.addAll(first[s])
		if !null.Has(s) {
			return out, false
		}
	}
	return out, true
}

// FollowSets computes FOLLOW for every nonterminal: the terminals that can
// appear immediately after it in a sentential form. FOLLOW(START)
// contains EOF.
func (g *Grammar) FollowSets() map[Symbol]SymbolSet {
	null := g.Nullable()
	first := g.FirstSets()
	follow := map[Symbol]SymbolSet{}
	for _, n := range g.syms.Nonterminals() {
		follow[n] = SymbolSet{}
	}
	follow[g.start].add(EOF)
	for changed := true; changed; {
		changed = false
		for _, r := range g.rules {
			for i, s := range r.Rhs {
				if g.syms.Kind(s) != Nonterminal {
					continue
				}
				rest := r.Rhs[i+1:]
				fs, restNullable := g.FirstOfString(rest, first, null)
				if follow[s].addAll(fs) {
					changed = true
				}
				if restNullable && follow[s].addAll(follow[r.Lhs]) {
					changed = true
				}
			}
		}
	}
	return follow
}

// Reduced reports whether every symbol is reachable and every reachable
// nonterminal is productive, i.e. the grammar has no useless parts.
func (g *Grammar) Reduced() bool {
	reach := g.Reachable()
	prod := g.Productive()
	for _, n := range g.syms.Nonterminals() {
		if !reach.Has(n) && n != g.start {
			// Unreachable nonterminals may exist in the symbol table without
			// rules; only count those that actually have rules.
			if len(g.byLhs[n]) > 0 {
				return false
			}
			continue
		}
		if len(g.byLhs[n]) > 0 && !prod.Has(n) {
			return false
		}
	}
	return true
}

package grammar

import (
	"fmt"
	"math/rand"
)

// RandConfig parametrizes Random. Zero fields get small defaults, so the
// zero value is usable in quick-check generators.
type RandConfig struct {
	// Nonterminals is the number of nonterminals besides START (default 4).
	Nonterminals int
	// Terminals is the number of terminals (default 4).
	Terminals int
	// Rules is the number of non-START rules to attempt (default 8).
	// Duplicates are skipped, so the result may have fewer.
	Rules int
	// MaxRHS bounds the right-hand-side length (default 4).
	MaxRHS int
	// StartRules is the number of START alternatives (default 1).
	StartRules int
	// EpsilonProb is the probability of an empty right-hand side.
	EpsilonProb float64
}

func (c RandConfig) withDefaults() RandConfig {
	if c.Nonterminals <= 0 {
		c.Nonterminals = 4
	}
	if c.Terminals <= 0 {
		c.Terminals = 4
	}
	if c.Rules <= 0 {
		c.Rules = 8
	}
	if c.MaxRHS <= 0 {
		c.MaxRHS = 4
	}
	if c.StartRules <= 0 {
		c.StartRules = 1
	}
	return c
}

// Random generates a deterministic pseudo-random grammar from rng.
// Nonterminals are named N0..Nk, terminals t0..tk. The grammar always has
// at least one START rule. It is not guaranteed to be reduced; property
// tests that need productive grammars should retry or use Reduced.
func Random(cfg RandConfig, rng *rand.Rand) *Grammar {
	cfg = cfg.withDefaults()
	g := New(nil)
	nts := make([]Symbol, cfg.Nonterminals)
	for i := range nts {
		nts[i] = g.syms.MustIntern(fmt.Sprintf("N%d", i), Nonterminal)
	}
	ts := make([]Symbol, cfg.Terminals)
	for i := range ts {
		ts[i] = g.syms.MustIntern(fmt.Sprintf("t%d", i), Terminal)
	}
	all := append(append([]Symbol{}, nts...), ts...)

	for i := 0; i < cfg.StartRules; i++ {
		// START alternatives are single nonterminals, as in the paper's
		// examples (START ::= B, START ::= E, ...).
		r := NewRule(g.start, nts[rng.Intn(len(nts))])
		if !g.Has(r) {
			mustAdd(g, r)
		}
	}
	for i := 0; i < cfg.Rules; i++ {
		lhs := nts[rng.Intn(len(nts))]
		var rhs []Symbol
		if rng.Float64() >= cfg.EpsilonProb {
			n := 1 + rng.Intn(cfg.MaxRHS)
			rhs = make([]Symbol, n)
			for j := range rhs {
				rhs[j] = all[rng.Intn(len(all))]
			}
		}
		r := NewRule(lhs, rhs...)
		if !g.Has(r) {
			mustAdd(g, r)
		}
	}
	return g
}

func mustAdd(g *Grammar, r *Rule) {
	if err := g.AddRule(r); err != nil {
		panic(err)
	}
}

// minHeights returns, per nonterminal, the minimum derivation height to a
// terminal string, or -1 if the nonterminal is unproductive.
func (g *Grammar) minHeights() map[Symbol]int {
	h := map[Symbol]int{}
	for changed := true; changed; {
		changed = false
		for _, r := range g.rules {
			max := 0
			ok := true
			for _, s := range r.Rhs {
				if g.syms.Kind(s) == Terminal {
					continue
				}
				hs, seen := h[s]
				if !seen {
					ok = false
					break
				}
				if hs+1 > max {
					max = hs + 1
				}
			}
			if !ok {
				continue
			}
			if cur, seen := h[r.Lhs]; !seen || max < cur {
				h[r.Lhs] = max
				changed = true
			}
		}
	}
	return h
}

// RandomSentence derives a random terminal string from START, bounding the
// derivation height by maxDepth. It returns ok=false when START is
// unproductive or no derivation fits the bound. The result excludes the
// end marker.
func (g *Grammar) RandomSentence(rng *rand.Rand, maxDepth int) ([]Symbol, bool) {
	heights := g.minHeights()
	if _, ok := heights[g.start]; !ok {
		return nil, false
	}
	var out []Symbol
	var expand func(s Symbol, budget int) bool
	expand = func(s Symbol, budget int) bool {
		if g.syms.Kind(s) == Terminal {
			out = append(out, s)
			return true
		}
		minH, ok := heights[s]
		if !ok || minH > budget {
			return false
		}
		// Candidate rules that still fit the budget.
		var fit []*Rule
		for _, r := range g.byLhs[s] {
			ok := true
			for _, x := range r.Rhs {
				if g.syms.Kind(x) == Nonterminal {
					hx, seen := heights[x]
					if !seen || hx+1 > budget {
						ok = false
						break
					}
				}
			}
			if ok {
				fit = append(fit, r)
			}
		}
		if len(fit) == 0 {
			return false
		}
		r := fit[rng.Intn(len(fit))]
		for _, x := range r.Rhs {
			if !expand(x, budget-1) {
				return false
			}
		}
		return true
	}
	if !expand(g.start, maxDepth) {
		return nil, false
	}
	return out, true
}

package grammar

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func names(t *SymbolTable, ss SymbolSet) map[string]bool {
	out := map[string]bool{}
	for s, ok := range ss {
		if ok {
			out[t.Name(s)] = true
		}
	}
	return out
}

func TestReachable(t *testing.T) {
	g := MustParse(`
START ::= A
A ::= "a" B
B ::= "b"
Dead ::= "d"
`)
	r := names(g.Symbols(), g.Reachable())
	for _, want := range []string{"START", "A", "B", "a", "b"} {
		if !r[want] {
			t.Errorf("%s should be reachable", want)
		}
	}
	if r["Dead"] || r["d"] {
		t.Error("Dead/d should be unreachable")
	}
}

func TestProductive(t *testing.T) {
	g := MustParse(`
START ::= A
A ::= "a"
Loop ::= Loop "x"
`)
	p := names(g.Symbols(), g.Productive())
	if !p["A"] || !p["START"] {
		t.Error("A and START should be productive")
	}
	if p["Loop"] {
		t.Error("Loop should be unproductive")
	}
}

func TestNullable(t *testing.T) {
	g := MustParse(`
START ::= A B
A ::= ε
B ::= "b" | ε
C ::= "c"
`)
	n := names(g.Symbols(), g.Nullable())
	for _, want := range []string{"A", "B", "START"} {
		if !n[want] {
			t.Errorf("%s should be nullable", want)
		}
	}
	if n["C"] {
		t.Error("C should not be nullable")
	}
}

func TestFirstSets(t *testing.T) {
	g := MustParse(`
START ::= E
E ::= T Etail
Etail ::= "+" T Etail | ε
T ::= "x" | "(" E ")"
`)
	first := g.FirstSets()
	e, _ := g.Symbols().Lookup("E")
	et, _ := g.Symbols().Lookup("Etail")
	fe := names(g.Symbols(), first[e])
	if !fe["x"] || !fe["("] || len(fe) != 2 {
		t.Errorf("FIRST(E) = %v, want {x, (}", fe)
	}
	fet := names(g.Symbols(), first[et])
	if !fet["+"] || len(fet) != 1 {
		t.Errorf("FIRST(Etail) = %v, want {+}", fet)
	}
}

func TestFollowSets(t *testing.T) {
	g := MustParse(`
START ::= E
E ::= T Etail
Etail ::= "+" T Etail | ε
T ::= "x" | "(" E ")"
`)
	follow := g.FollowSets()
	e, _ := g.Symbols().Lookup("E")
	tt, _ := g.Symbols().Lookup("T")
	fe := names(g.Symbols(), follow[e])
	if !fe["$"] || !fe[")"] || len(fe) != 2 {
		t.Errorf("FOLLOW(E) = %v, want {$, )}", fe)
	}
	ft := names(g.Symbols(), follow[tt])
	if !ft["$"] || !ft[")"] || !ft["+"] || len(ft) != 3 {
		t.Errorf("FOLLOW(T) = %v, want {$, ), +}", ft)
	}
}

func TestFirstOfString(t *testing.T) {
	g := MustParse(`
START ::= A B
A ::= "a" | ε
B ::= "b"
`)
	first := g.FirstSets()
	null := g.Nullable()
	a, _ := g.Symbols().Lookup("A")
	b, _ := g.Symbols().Lookup("B")
	fs, nullable := g.FirstOfString([]Symbol{a, b}, first, null)
	got := names(g.Symbols(), fs)
	if !got["a"] || !got["b"] || nullable {
		t.Errorf("FIRST(A B) = %v nullable=%v, want {a,b} false", got, nullable)
	}
	fs, nullable = g.FirstOfString([]Symbol{a}, first, null)
	got = names(g.Symbols(), fs)
	if !got["a"] || len(got) != 1 || !nullable {
		t.Errorf("FIRST(A) = %v nullable=%v, want {a} true", got, nullable)
	}
	fs, nullable = g.FirstOfString(nil, first, null)
	if len(fs) != 0 || !nullable {
		t.Errorf("FIRST(ε) = %v nullable=%v", fs, nullable)
	}
}

func TestReduced(t *testing.T) {
	if !MustParse("START ::= \"x\"").Reduced() {
		t.Error("trivial grammar should be reduced")
	}
	if MustParse("START ::= \"x\"\nDead ::= \"d\"").Reduced() {
		t.Error("grammar with unreachable rule should not be reduced")
	}
	if MustParse("START ::= A\nA ::= A \"x\"").Reduced() {
		t.Error("grammar with unproductive reachable nonterminal should not be reduced")
	}
}

// Property: every sentence produced by RandomSentence uses only reachable,
// productive machinery, and FIRST of the sentence's first symbol is
// consistent with FIRST(START).
func TestRandomSentenceConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(RandConfig{}, rng)
		sent, ok := g.RandomSentence(rng, 12)
		if !ok {
			return true // unproductive grammar: nothing to check
		}
		first := g.FirstSets()
		null := g.Nullable()
		if len(sent) == 0 {
			return null.Has(g.Start())
		}
		fs, _ := g.FirstOfString([]Symbol{g.Start()}, first, null)
		return fs.Has(sent[0])
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: nullable(START) implies RandomSentence can emit, and FIRST sets
// only contain terminals.
func TestFirstSetsOnlyTerminals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(RandConfig{EpsilonProb: 0.2}, rng)
		for _, fs := range g.FirstSets() {
			for s := range fs {
				if g.Symbols().Kind(s) != Terminal {
					return false
				}
			}
		}
		for _, fs := range g.FollowSets() {
			for s := range fs {
				if g.Symbols().Kind(s) != Terminal {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

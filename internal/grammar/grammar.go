package grammar

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// StartName is the distinguished start nonterminal. Following the paper,
// START may not occur in the right-hand side of any rule; parsing succeeds
// when a START rule has been recognized followed by the end marker.
const StartName = "START"

// Grammar is a modifiable set of syntax rules over a SymbolTable. A
// Grammar is the unit the incremental generator of the paper observes:
// AddRule and DeleteRule are its only mutators, and every successful
// mutation increments Version, which generators use to detect that their
// graph of item sets is out of date.
//
// A Grammar is not safe for concurrent mutation; the generated parsers
// read it only during table expansion.
type Grammar struct {
	syms  *SymbolTable
	start Symbol // the START nonterminal, interned eagerly

	rules   []*Rule          // insertion order, live rules only
	byKey   map[string]*Rule // value identity -> rule
	byLhs   map[Symbol][]*Rule
	version uint64
}

// New returns an empty grammar over the given symbol table (a fresh table
// is created when syms is nil). The START nonterminal is interned
// immediately.
func New(syms *SymbolTable) *Grammar {
	if syms == nil {
		syms = NewSymbolTable()
	}
	start, err := syms.Intern(StartName, Nonterminal)
	if err != nil {
		// The name START was already interned as a terminal: the table is
		// unusable for a grammar.
		panic(fmt.Sprintf("grammar: symbol table unusable: %v", err))
	}
	return &Grammar{
		syms:  syms,
		start: start,
		byKey: make(map[string]*Rule),
		byLhs: make(map[Symbol][]*Rule),
	}
}

// Symbols returns the symbol table of the grammar.
func (g *Grammar) Symbols() *SymbolTable { return g.syms }

// Start returns the START nonterminal.
func (g *Grammar) Start() Symbol { return g.start }

// Version returns a counter that increments on every successful AddRule or
// DeleteRule. Parser generators record the version their tables were
// derived from.
func (g *Grammar) Version() uint64 { return g.version }

// Len returns the number of rules.
func (g *Grammar) Len() int { return len(g.rules) }

// Rules returns the live rules in insertion order. The returned slice is
// shared; callers must not modify it.
func (g *Grammar) Rules() []*Rule { return g.rules }

// RulesFor returns the rules whose left-hand side is lhs, in insertion
// order. The returned slice is shared; callers must not modify it.
func (g *Grammar) RulesFor(lhs Symbol) []*Rule { return g.byLhs[lhs] }

// Has reports whether an identical rule (same Lhs, same Rhs) is present.
func (g *Grammar) Has(r *Rule) bool {
	_, ok := g.byKey[r.Key()]
	return ok
}

// Lookup returns the grammar's own rule object equal to r, if present.
// The incremental generator relies on this to translate caller-constructed
// rules into the canonical instances stored in item kernels.
func (g *Grammar) Lookup(r *Rule) (*Rule, bool) {
	got, ok := g.byKey[r.Key()]
	return got, ok
}

// ErrDuplicateRule is returned by AddRule when an identical rule exists.
var ErrDuplicateRule = errors.New("grammar: rule already present")

// ErrUnknownRule is returned by DeleteRule when no identical rule exists.
var ErrUnknownRule = errors.New("grammar: no such rule")

// AddRule adds r to the grammar. It is an error if an identical rule is
// already present, if the left-hand side is not a nonterminal of this
// grammar's table, or if START occurs in the right-hand side.
func (g *Grammar) AddRule(r *Rule) error {
	if err := g.checkRule(r); err != nil {
		return err
	}
	if g.Has(r) {
		return fmt.Errorf("%w: %s", ErrDuplicateRule, r.String(g.syms))
	}
	g.rules = append(g.rules, r)
	g.byKey[r.Key()] = r
	g.byLhs[r.Lhs] = append(g.byLhs[r.Lhs], r)
	g.version++
	return nil
}

// DeleteRule removes the rule equal to r. The rule object stored in the
// grammar (which item kernels may share) is returned.
func (g *Grammar) DeleteRule(r *Rule) (*Rule, error) {
	stored, ok := g.byKey[r.Key()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRule, r.String(g.syms))
	}
	delete(g.byKey, r.Key())
	g.rules = removeRule(g.rules, stored)
	if rest := removeRule(g.byLhs[stored.Lhs], stored); len(rest) > 0 {
		g.byLhs[stored.Lhs] = rest
	} else {
		delete(g.byLhs, stored.Lhs)
	}
	g.version++
	return stored, nil
}

func removeRule(rs []*Rule, r *Rule) []*Rule {
	for i, x := range rs {
		if x == r {
			return append(rs[:i:i], rs[i+1:]...)
		}
	}
	return rs
}

func (g *Grammar) checkRule(r *Rule) error {
	if r == nil {
		return errors.New("grammar: nil rule")
	}
	if !g.validSymbol(r.Lhs) {
		return fmt.Errorf("grammar: rule left-hand side %d not in symbol table", r.Lhs)
	}
	if g.syms.Kind(r.Lhs) != Nonterminal {
		return fmt.Errorf("grammar: rule left-hand side %q is a terminal", g.syms.Name(r.Lhs))
	}
	for _, s := range r.Rhs {
		if !g.validSymbol(s) {
			return fmt.Errorf("grammar: rule %s uses symbol %d not in symbol table", r.String(g.syms), s)
		}
		if s == g.start {
			return fmt.Errorf("grammar: START may not occur in a right-hand side: %s", r.String(g.syms))
		}
		if s == EOF {
			return fmt.Errorf("grammar: end marker $ may not occur in a right-hand side: %s", r.String(g.syms))
		}
	}
	return nil
}

func (g *Grammar) validSymbol(s Symbol) bool {
	return s > 0 && int(s) < len(g.syms.names)
}

// Validate checks global well-formedness: at least one START rule exists.
// (Per-rule constraints are enforced by AddRule.)
func (g *Grammar) Validate() error {
	if len(g.byLhs[g.start]) == 0 {
		return errors.New("grammar: no rule for START")
	}
	return nil
}

// Clone returns a deep copy of the rule set sharing the symbol table and
// the (immutable) rule objects. The clone starts at version 0.
func (g *Grammar) Clone() *Grammar {
	c := New(g.syms)
	c.rules = append([]*Rule(nil), g.rules...)
	for k, v := range g.byKey {
		c.byKey[k] = v
	}
	for lhs, rs := range g.byLhs {
		c.byLhs[lhs] = append([]*Rule(nil), rs...)
	}
	return c
}

// AddAll adds every rule of other (which must share this grammar's symbol
// table) that is not already present. It returns the number of rules
// added. This is the grammar half of "modular composition of parsers"
// (section 8 of the paper): the generator half reuses the existing graph
// via its incremental MODIFY.
func (g *Grammar) AddAll(other *Grammar) (int, error) {
	if other.syms != g.syms {
		return 0, errors.New("grammar: AddAll requires grammars sharing one symbol table")
	}
	n := 0
	for _, r := range other.rules {
		if g.Has(r) {
			continue
		}
		if err := g.AddRule(r); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// String formats the grammar in the plain-text BNF form understood by
// Parse, one rule per line in insertion order.
func (g *Grammar) String() string {
	var b strings.Builder
	for _, r := range g.rules {
		b.WriteString(formatRuleText(g.syms, r))
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedRuleStrings returns the formatted rules sorted lexicographically;
// useful for order-independent comparisons in tests.
func (g *Grammar) SortedRuleStrings() []string {
	out := make([]string, 0, len(g.rules))
	for _, r := range g.rules {
		out = append(out, r.String(g.syms))
	}
	sort.Strings(out)
	return out
}

// Package priority implements SDF's priority and associativity
// disambiguation as parse-forest filters. The paper's system parses with
// all rules and returns every parse; SDF's priorities section declares
// which of those parses to keep. A Relation records rule-level
// constraints and Filter rebuilds a forest without the violating
// derivations:
//
//   - r1 > r2 forbids an application of r2 as a direct child of an
//     application of r1 (lower-priority operators must be nested via
//     brackets, not directly);
//   - left associativity forbids a rule as its own rightmost recursive
//     child (a+(b+c) is removed, (a+b)+c kept); right associativity
//     mirrors it; non-associativity forbids both.
package priority

import (
	"errors"
	"fmt"

	"ipg/internal/forest"
	"ipg/internal/grammar"
)

// Assoc is a rule's declared associativity.
type Assoc uint8

const (
	// NoAssoc places no constraint.
	NoAssoc Assoc = iota
	// Left keeps left-nested derivations ((a+b)+c).
	Left
	// Right keeps right-nested derivations (a+(b+c)).
	Right
	// NonAssoc forbids direct self-nesting on either side.
	NonAssoc
)

// String names the associativity.
func (a Assoc) String() string {
	switch a {
	case NoAssoc:
		return "none"
	case Left:
		return "left"
	case Right:
		return "right"
	case NonAssoc:
		return "non-assoc"
	default:
		return fmt.Sprintf("Assoc(%d)", uint8(a))
	}
}

// Relation is a set of priority and associativity constraints over the
// rules of one grammar.
type Relation struct {
	gt    map[string]map[string]bool // higher rule key -> lower rule keys
	assoc map[string]Assoc
	rules map[string]*grammar.Rule // keys observed, for diagnostics
}

// New returns an empty relation.
func New() *Relation {
	return &Relation{
		gt:    map[string]map[string]bool{},
		assoc: map[string]Assoc{},
		rules: map[string]*grammar.Rule{},
	}
}

// Empty reports whether the relation carries no constraints.
func (rel *Relation) Empty() bool {
	return len(rel.gt) == 0 && len(rel.assoc) == 0
}

// AddGreater declares hi > lo: lo may not occur as a direct child of hi.
func (rel *Relation) AddGreater(hi, lo *grammar.Rule) {
	hk, lk := hi.Key(), lo.Key()
	if rel.gt[hk] == nil {
		rel.gt[hk] = map[string]bool{}
	}
	rel.gt[hk][lk] = true
	rel.rules[hk], rel.rules[lk] = hi, lo
}

// SetAssoc declares the associativity of r.
func (rel *Relation) SetAssoc(r *grammar.Rule, a Assoc) {
	if a == NoAssoc {
		delete(rel.assoc, r.Key())
		return
	}
	rel.assoc[r.Key()] = a
	rel.rules[r.Key()] = r
}

// Close computes the transitive closure of the > relation, so chains
// declared across several priority definitions compose (A > B plus
// B > C yields A > C).
func (rel *Relation) Close() {
	for changed := true; changed; {
		changed = false
		for hk, lows := range rel.gt {
			for lk := range lows {
				for llk := range rel.gt[lk] {
					if !rel.gt[hk][llk] {
						rel.gt[hk][llk] = true
						changed = true
					}
				}
			}
		}
	}
}

// Forbidden reports whether an application of child may not appear as the
// arg-th direct child of an application of parent.
func (rel *Relation) Forbidden(parent *grammar.Rule, arg int, child *grammar.Rule) bool {
	pk := parent.Key()
	if rel.gt[pk][child.Key()] {
		return true
	}
	a, ok := rel.assoc[pk]
	if !ok || child.Key() != pk {
		return false
	}
	// Recursive argument positions: occurrences of the rule's own
	// left-hand side in its right-hand side.
	first, last := -1, -1
	for i, s := range parent.Rhs {
		if s == parent.Lhs {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return false // not a recursive rule: associativity is vacuous
	}
	switch a {
	case Left:
		return arg == last && last != first
	case Right:
		return arg == first && last != first
	case NonAssoc:
		return arg == first || arg == last
	default:
		return false
	}
}

// ErrNoValidParse is returned by Filter when every derivation violates
// the constraints.
var ErrNoValidParse = errors.New("priority: all parses removed by priority/associativity constraints")

// Filter rebuilds the forest rooted at root without derivations that
// violate the relation, sharing nodes through f's hash-consing. It
// returns ErrNoValidParse when nothing survives and forest.ErrCyclic on
// cyclic forests.
func (rel *Relation) Filter(f *forest.Forest, root *forest.Node) (*forest.Node, error) {
	type key struct {
		id     int
		parent string
		arg    int
	}
	memo := map[key]*forest.Node{}
	seen := map[key]bool{}
	onPath := map[key]bool{}

	var walk func(n *forest.Node, parent *grammar.Rule, arg int) (*forest.Node, error)
	walk = func(n *forest.Node, parent *grammar.Rule, arg int) (*forest.Node, error) {
		pk := ""
		if parent != nil {
			pk = parent.Key()
		}
		k := key{n.ID(), pk, arg}
		if seen[k] {
			return memo[k], nil
		}
		if onPath[k] {
			return nil, forest.ErrCyclic
		}
		onPath[k] = true
		defer delete(onPath, k)

		var out *forest.Node
		switch n.Kind() {
		case forest.Leaf:
			out = n
		case forest.RuleNode:
			if parent != nil && rel.Forbidden(parent, arg, n.Rule()) {
				break // filtered: out stays nil
			}
			children := make([]*forest.Node, len(n.Children()))
			ok := true
			for i, c := range n.Children() {
				fc, err := walk(c, n.Rule(), i)
				if err != nil {
					return nil, err
				}
				if fc == nil {
					ok = false
					break
				}
				children[i] = fc
			}
			if ok {
				out = f.Rule(n.Rule(), children)
			}
		case forest.Amb:
			// Ambiguity nodes are transparent: alternatives face the
			// same parent context.
			var alts []*forest.Node
			for _, a := range n.Alts() {
				fa, err := walk(a, parent, arg)
				if err != nil {
					return nil, err
				}
				if fa != nil {
					alts = append(alts, fa)
				}
			}
			if len(alts) > 0 {
				out = f.Ambiguity(alts...)
			}
		}
		seen[k] = true
		memo[k] = out
		return out, nil
	}

	out, err := walk(root, nil, 0)
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, ErrNoValidParse
	}
	return out, nil
}

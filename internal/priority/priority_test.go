package priority

import (
	"errors"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/forest"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// exprSetup builds the ambiguous expression grammar E ::= E+E | E*E | x
// and parses an input, returning the pieces the filter needs.
func exprSetup(t *testing.T, input string) (*grammar.Grammar, *forest.Forest, *forest.Node, map[string]*grammar.Rule) {
	t.Helper()
	g := grammar.MustParse(`
START ::= E
E ::= E "+" E
E ::= E "*" E
E ::= "x"
`)
	auto := lr.New(g)
	auto.GenerateAll()
	res, err := glr.Parse(auto, fixtures.Tokens(g, input), &glr.Options{Engine: glr.GSS})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("%q rejected", input)
	}
	rules := map[string]*grammar.Rule{}
	e, _ := g.Symbols().Lookup("E")
	for _, r := range g.RulesFor(e) {
		switch r.Len() {
		case 1:
			rules["x"] = r
		case 3:
			rules[g.Symbols().Name(r.Rhs[1])] = r
		}
	}
	return g, res.Forest, res.Root, rules
}

func TestPriorityFilter(t *testing.T) {
	g, f, root, rules := exprSetup(t, "x + x * x")
	before, _ := forest.TreeCount(root)
	if before != 2 {
		t.Fatalf("before: %d trees, want 2", before)
	}
	rel := New()
	rel.AddGreater(rules["*"], rules["+"]) // * binds tighter
	rel.Close()
	filtered, err := rel.Filter(f, root)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := forest.TreeCount(filtered)
	if after != 1 {
		t.Fatalf("after: %d trees, want 1\n%s", after, forest.String(filtered, g.Symbols()))
	}
	// The survivor nests + above *: E(E(x) + E(E(x) * E(x))).
	got := forest.String(filtered, g.Symbols())
	if got != "E(E(x) + E(E(x) * E(x)))" {
		t.Errorf("survivor: %s", got)
	}
}

func TestAssociativityFilter(t *testing.T) {
	g, f, root, rules := exprSetup(t, "x + x + x")
	rel := New()
	rel.SetAssoc(rules["+"], Left)
	filtered, err := rel.Filter(f, root)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := forest.TreeCount(filtered)
	if n != 1 {
		t.Fatalf("left-assoc should keep 1 tree, got %d", n)
	}
	got := forest.String(filtered, g.Symbols())
	if got != "E(E(E(x) + E(x)) + E(x))" {
		t.Errorf("left-assoc survivor: %s", got)
	}

	// Right associativity keeps the mirror image.
	_, f2, root2, rules2 := exprSetup(t, "x + x + x")
	rel2 := New()
	rel2.SetAssoc(rules2["+"], Right)
	filtered2, err := rel2.Filter(f2, root2)
	if err != nil {
		t.Fatal(err)
	}
	got2 := forest.String(filtered2, g.Symbols())
	if got2 != "E(E(x) + E(E(x) + E(x)))" {
		t.Errorf("right-assoc survivor: %s", got2)
	}
}

func TestNonAssocRemovesAll(t *testing.T) {
	_, f, root, rules := exprSetup(t, "x + x + x")
	rel := New()
	rel.SetAssoc(rules["+"], NonAssoc)
	_, err := rel.Filter(f, root)
	if !errors.Is(err, ErrNoValidParse) {
		t.Fatalf("non-assoc on x+x+x: want ErrNoValidParse, got %v", err)
	}
	// A single + is still fine.
	_, f1, root1, rules1 := exprSetup(t, "x + x")
	rel1 := New()
	rel1.SetAssoc(rules1["+"], NonAssoc)
	if _, err := rel1.Filter(f1, root1); err != nil {
		t.Errorf("non-assoc on x+x: %v", err)
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := grammar.MustParse(`
START ::= E
E ::= E "+" E
E ::= E "*" E
E ::= E "^" E
E ::= "x"
`)
	e, _ := g.Symbols().Lookup("E")
	rules := map[string]*grammar.Rule{}
	for _, r := range g.RulesFor(e) {
		if r.Len() == 3 {
			rules[g.Symbols().Name(r.Rhs[1])] = r
		}
	}
	rel := New()
	rel.AddGreater(rules["^"], rules["*"])
	rel.AddGreater(rules["*"], rules["+"])
	rel.Close()
	if !rel.Forbidden(rules["^"], 0, rules["+"]) {
		t.Error("closure should derive ^ > +")
	}
}

func TestFilterPreservesSharing(t *testing.T) {
	_, f, root, rules := exprSetup(t, "x * x + x * x")
	rel := New()
	rel.AddGreater(rules["*"], rules["+"])
	rel.SetAssoc(rules["+"], Left)
	rel.Close()
	filtered, err := rel.Filter(f, root)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := forest.TreeCount(filtered)
	if n != 1 {
		t.Fatalf("want single tree, got %d", n)
	}
	y, err := forest.Yield(filtered)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 7 {
		t.Errorf("yield length %d, want 7", len(y))
	}
}

func TestEmptyRelationIsNoop(t *testing.T) {
	rel := New()
	if !rel.Empty() {
		t.Error("fresh relation should be empty")
	}
	_, f, root, _ := exprSetup(t, "x + x * x")
	filtered, err := rel.Filter(f, root)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := forest.TreeCount(root)
	a, _ := forest.TreeCount(filtered)
	if a != b {
		t.Errorf("empty relation changed tree count: %d -> %d", b, a)
	}
}

func TestAssocOnNonRecursiveRuleVacuous(t *testing.T) {
	g := grammar.MustParse(`
START ::= E
E ::= "x"
`)
	e, _ := g.Symbols().Lookup("E")
	r := g.RulesFor(e)[0]
	rel := New()
	rel.SetAssoc(r, Left)
	if rel.Forbidden(r, 0, r) {
		t.Error("associativity on a non-recursive rule should be vacuous")
	}
}

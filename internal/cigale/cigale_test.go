package cigale

import (
	"errors"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/grammar"
)

const exprSrc = `
START ::= E
E ::= "x"
E ::= "x" "+" E
E ::= "(" E ")"
`

func TestRecognize(t *testing.T) {
	g := grammar.MustParse(exprSrc)
	p := New(g)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"x", true},
		{"x + x", true},
		{"( x + x )", true},
		{"x +", false},
		{"( x", false},
		{"", false},
	} {
		got, err := p.Recognize(fixtures.Tokens(g, tc.input))
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if got != tc.want {
			t.Errorf("Recognize(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

func TestTriePrefixSharing(t *testing.T) {
	// Rules "x" and "x" "+" E share the x prefix: one root edge on x.
	g := grammar.MustParse(exprSrc)
	p := New(g)
	x, _ := g.Symbols().Lookup("x")
	if len(p.root.edges) != 3 { // x, (, E? — E never starts a rule here
		// Root edges: x (shared), ( — and E for START ::= E.
		t.Logf("root edges: %d", len(p.root.edges))
	}
	xNode := p.root.edges[x]
	if xNode == nil {
		t.Fatal("no root edge on x")
	}
	// The x node both accepts E and continues with +.
	if len(xNode.accepts) != 1 {
		t.Errorf("x node accepts %v", xNode.accepts)
	}
	plus, _ := g.Symbols().Lookup("+")
	if xNode.edges[plus] == nil {
		t.Error("x node should continue on + (prefix sharing)")
	}
}

func TestInsertExtendsLanguage(t *testing.T) {
	g := grammar.MustParse(exprSrc)
	p := New(g)
	e, _ := g.Symbols().Lookup("E")
	minus := g.Symbols().MustIntern("-", grammar.Terminal)
	x, _ := g.Symbols().Lookup("x")
	if got, err := p.Recognize(fixtures.Tokens(g, "x - x")); got || err != nil {
		t.Fatalf("before Insert: %v %v", got, err)
	}
	p.Insert(grammar.NewRule(e, x, minus, e))
	got, err := p.Recognize(fixtures.Tokens(g, "x - x + x"))
	if err != nil || !got {
		t.Errorf("after Insert: %v %v", got, err)
	}
}

func TestModularComposition(t *testing.T) {
	// "Tries for different grammars can be combined just like modules."
	st := grammar.NewSymbolTable()
	base, err := grammar.Parse(`
START ::= E
E ::= "x"
`, st)
	if err != nil {
		t.Fatal(err)
	}
	module, err := grammar.Parse(`
START ::= E
E ::= "x" "+" E
`, st)
	if err != nil {
		t.Fatal(err)
	}
	p := New(base)
	if err := p.Extend(module); err != nil {
		t.Fatal(err)
	}
	got, err := p.Recognize(fixtures.Tokens(base, "x + x + x"))
	if err != nil || !got {
		t.Errorf("composed trie: %v %v", got, err)
	}
	// Different symbol tables are rejected.
	foreign := grammar.MustParse(`START ::= "y"`)
	if err := p.Extend(foreign); err == nil {
		t.Error("Extend across symbol tables should fail")
	}
}

func TestLeftRecursionDetected(t *testing.T) {
	g := grammar.MustParse(`
START ::= E
E ::= E "+" "x" | "x"
`)
	p := New(g)
	// 'x + x' requires the left-recursive rule; the trie parser reports
	// its class limitation instead of looping.
	got, err := p.Recognize(fixtures.Tokens(g, "x + x"))
	if got {
		t.Fatal("left-recursive derivation should not be found")
	}
	if !errors.Is(err, ErrLeftRecursion) {
		t.Fatalf("want ErrLeftRecursion, got %v", err)
	}
}

func TestNonterminalChains(t *testing.T) {
	g := grammar.MustParse(`
START ::= A
A ::= B "a"
B ::= C
C ::= "c"
`)
	p := New(g)
	got, err := p.Recognize(fixtures.Tokens(g, "c a"))
	if err != nil || !got {
		t.Errorf("chain grammar: %v %v", got, err)
	}
}

func TestEpsilonRule(t *testing.T) {
	g := grammar.MustParse(`
START ::= A "b"
A ::= "a" | ε
`)
	p := New(g)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"a b", true},
		{"b", true},
		{"a", false},
	} {
		got, err := p.Recognize(fixtures.Tokens(g, tc.input))
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if got != tc.want {
			t.Errorf("Recognize(%q) = %v, want %v", tc.input, got, tc.want)
		}
	}
}

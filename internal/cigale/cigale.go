// Package cigale implements a trie-based parser in the style of Cigale
// [Voi86], row four of Fig 2.1: "it builds a trie for the grammar in
// which production rules with the same prefix share a path. During
// parsing this trie is recursively traversed. A trie can easily be
// extended with new syntax rules and tries for different grammars can be
// combined just like modules."
//
// The accepted class is limited: left-recursive rules are rejected during
// the traversal (the paper puts Cigale "only somewhat larger than LR(0)"
// and notes it cannot backtrack in a general manner; this implementation
// memoizes instead of backtracking, so the practical restriction is the
// absence of left recursion).
package cigale

import (
	"fmt"

	"ipg/internal/grammar"
)

// node is a trie node: rules sharing a prefix share the path to it.
type node struct {
	// edges continue the right-hand sides, keyed by the next symbol
	// (terminal or nonterminal).
	edges map[grammar.Symbol]*node
	// accepts lists the nonterminals whose complete right-hand side ends
	// here.
	accepts []grammar.Symbol
	// reach is the set of nonterminals accepted at or below this node;
	// the traversal prunes subtrees that cannot complete the nonterminal
	// being recognized.
	reach map[grammar.Symbol]bool
}

func newNode() *node {
	return &node{edges: map[grammar.Symbol]*node{}, reach: map[grammar.Symbol]bool{}}
}

// Parser holds the trie and the grammar's symbol table.
type Parser struct {
	g    *grammar.Grammar
	root *node
	// rules mirrors the inserted rules for Extend deduplication.
	inserted map[string]bool
}

// New builds the trie for all rules of g.
func New(g *grammar.Grammar) *Parser {
	p := &Parser{g: g, root: newNode(), inserted: map[string]bool{}}
	for _, r := range g.Rules() {
		p.Insert(r)
	}
	return p
}

// Insert adds one rule to the trie — the "easily extended with new syntax
// rules" operation.
func (p *Parser) Insert(r *grammar.Rule) {
	if p.inserted[r.Key()] {
		return
	}
	p.inserted[r.Key()] = true
	cur := p.root
	cur.reach[r.Lhs] = true
	for _, sym := range r.Rhs {
		next, ok := cur.edges[sym]
		if !ok {
			next = newNode()
			cur.edges[sym] = next
		}
		cur = next
		cur.reach[r.Lhs] = true
	}
	cur.accepts = append(cur.accepts, r.Lhs)
}

// Extend merges all rules of another grammar into the trie ("tries for
// different grammars can be combined just like modules"). The grammars
// must share a symbol table.
func (p *Parser) Extend(other *grammar.Grammar) error {
	if other.Symbols() != p.g.Symbols() {
		return fmt.Errorf("cigale: Extend requires a shared symbol table")
	}
	for _, r := range other.Rules() {
		p.Insert(r)
	}
	return nil
}

// ErrLeftRecursion is returned when recognition re-enters a nonterminal
// at the same position — the class limitation of the trie parser.
var ErrLeftRecursion = fmt.Errorf("cigale: left recursion detected (outside the accepted class)")

// Recognize reports whether input is a sentence: the trie is recursively
// traversed from the START nonterminal.
func (p *Parser) Recognize(input []grammar.Symbol) (bool, error) {
	type memoKey struct {
		nt  grammar.Symbol
		pos int
	}
	memo := map[memoKey][]int{}
	inProgress := map[memoKey]bool{}
	var leftRec bool

	// parseNT returns all end positions of derivations of nt from pos.
	var parseNT func(nt grammar.Symbol, pos int) []int
	var walk func(n *node, nt grammar.Symbol, pos int, ends map[int]bool)

	parseNT = func(nt grammar.Symbol, pos int) []int {
		k := memoKey{nt, pos}
		if ends, ok := memo[k]; ok {
			return ends
		}
		if inProgress[k] {
			leftRec = true
			return nil
		}
		inProgress[k] = true
		ends := map[int]bool{}
		walk(p.root, nt, pos, ends)
		delete(inProgress, k)
		out := make([]int, 0, len(ends))
		for e := range ends {
			out = append(out, e)
		}
		memo[k] = out
		return out
	}

	walk = func(n *node, nt grammar.Symbol, pos int, ends map[int]bool) {
		for _, a := range n.accepts {
			if a == nt {
				ends[pos] = true
			}
		}
		for sym, next := range n.edges {
			if !next.reach[nt] {
				// No rule for nt completes below this edge; skip it (it
				// belongs to other nonterminals sharing the trie).
				continue
			}
			if p.g.Symbols().Kind(sym) == grammar.Terminal {
				if pos < len(input) && input[pos] == sym {
					walk(next, nt, pos+1, ends)
				}
				continue
			}
			for _, mid := range parseNT(sym, pos) {
				walk(next, nt, mid, ends)
			}
		}
	}

	for _, end := range parseNT(p.g.Start(), 0) {
		if end == len(input) {
			return true, nil
		}
	}
	if leftRec {
		return false, ErrLeftRecursion
	}
	return false, nil
}

// Package cancel provides the cancellation primitive shared by every
// parse drive loop: a Flag the serving layer arms from a deadline,
// client disconnect, or drain signal, and that engines poll at cheap
// checkpoints (one atomic load, no allocation, no time syscall).
//
// The package sits at the bottom of the dependency graph so that
// core, glr, earley, ll, engine, and registry can all import it.
// A nil *Flag never cancels, so un-armed (warm-path) parses pay only
// a nil check per checkpoint and stay 0 allocs/op.
package cancel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Reason records why a parse was aborted.
type Reason uint32

const (
	// None means the flag has not fired.
	None Reason = iota
	// Deadline means the per-request parse deadline expired.
	Deadline
	// ClientGone means the HTTP client disconnected (request context
	// canceled without a deadline having expired).
	ClientGone
	// Shutdown means the server is draining and force-canceled the
	// parse after the drain timeout.
	Shutdown
	// Injected means a fault-injection hook canceled the parse.
	Injected
)

// String names the reason for logs, metrics labels, and errors.
func (r Reason) String() string {
	switch r {
	case None:
		return "none"
	case Deadline:
		return "deadline"
	case ClientGone:
		return "client_gone"
	case Shutdown:
		return "shutdown"
	case Injected:
		return "injected"
	default:
		return fmt.Sprintf("reason(%d)", uint32(r))
	}
}

// NumReasons is the number of distinct cancellation reasons, for
// fixed-size per-reason counter arrays.
const NumReasons = 5

// Flag is a one-shot cancellation flag. The controller side calls
// Cancel once; drive loops poll Hit. The zero value is ready to use,
// and a nil *Flag is valid everywhere (it never cancels), so engines
// thread it unconditionally without branching at the call site.
type Flag struct {
	state atomic.Uint32 // Reason; None while live
}

// Cancel fires the flag with the given reason. The first reason wins;
// later calls are no-ops, so a deadline firing concurrently with a
// client disconnect reports a single stable cause.
func (f *Flag) Cancel(r Reason) {
	if f == nil || r == None {
		return
	}
	f.state.CompareAndSwap(uint32(None), uint32(r))
}

// Hit reports whether the flag has fired. This is the checkpoint
// engines call from their drive loops: a nil check plus one atomic
// load, no allocation, no syscall.
func (f *Flag) Hit() bool {
	return f != nil && f.state.Load() != uint32(None)
}

// Reason returns why the flag fired (None if it has not).
func (f *Flag) Reason() Reason {
	if f == nil {
		return None
	}
	return Reason(f.state.Load())
}

// Reset rearms a fired flag so it can be pooled and reused.
func (f *Flag) Reset() { f.state.Store(uint32(None)) }

var flagPool = sync.Pool{New: func() any { return new(Flag) }}

// GetFlag returns a reset Flag from the pool. Callers must not retain
// the flag after PutFlag.
func GetFlag() *Flag { return flagPool.Get().(*Flag) }

// PutFlag resets fl and returns it to the pool. The caller must
// guarantee no drive loop still polls it.
func PutFlag(fl *Flag) {
	if fl == nil {
		return
	}
	fl.Reset()
	flagPool.Put(fl)
}

// ErrCanceled is the sentinel all cancellation errors match via
// errors.Is, regardless of reason.
var ErrCanceled = errors.New("parse canceled")

// Error is the structured abort error a drive loop returns when its
// checkpoint observes a fired flag. It records the reason and the
// partial work done so far, so callers (and the chaos harness) can see
// exactly how far the parse got before the abort.
type Error struct {
	// Reason is why the parse was aborted.
	Reason Reason
	// Pos is the token position the drive loop had reached.
	Pos int
	// Tokens is the total input length, for "aborted at 412/3000".
	Tokens int
	// Work counts engine work units completed before the abort
	// (GSS shifts+reduces, Earley items, LL steps, table actions).
	Work uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse canceled (%s) at token %d/%d after %d work units",
		e.Reason, e.Pos, e.Tokens, e.Work)
}

// Is makes errors.Is(err, cancel.ErrCanceled) match.
func (e *Error) Is(target error) bool { return target == ErrCanceled }

// Err builds the structured abort error for a fired flag. Called only
// on the cancellation path, so its allocation never touches warm
// parses.
func (f *Flag) Err(pos, tokens int, work uint64) error {
	return &Error{Reason: f.Reason(), Pos: pos, Tokens: tokens, Work: work}
}

// Abort is panicked by deep table machinery (lazy expansion in
// internal/core) that has no error return path when it observes a
// fired flag; the engine dispatch layer recovers it and converts it to
// the flag's structured Error. It is distinct from ordinary panics so
// the panic-quarantine breaker does not count cancellations as faults.
type Abort struct {
	Flag *Flag
	// Work counts work units done before the abort (e.g. action calls).
	Work uint64
}

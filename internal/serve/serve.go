// Package serve is the HTTP/JSON front end of the concurrent parse
// service: it exposes the grammar registry (internal/registry) over a
// small REST surface so many clients can share lazily generated parse
// tables — register or update grammars, parse single sentences, and
// batch-parse many sentences fanned out across a worker pool.
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz                     liveness probe
//	GET    /readyz                      readiness probe (503 until MarkReady)
//	GET    /metrics                     Prometheus text exposition
//	GET    /v1/stats                    service-wide counters
//	GET    /v1/trace                    recent parse-lifecycle spans
//	GET    /v1/grammars                 list entries with table stats
//	PUT    /v1/grammars/{name}          register or replace a grammar
//	GET    /v1/grammars/{name}          one entry's stats
//	DELETE /v1/grammars/{name}          remove an entry
//	POST   /v1/grammars/{name}/parse    parse one sentence
//	POST   /v1/grammars/{name}/batch    parse many sentences concurrently
//	POST   /v1/grammars/{name}/rules    add/delete rules incrementally
//	POST   /v1/grammars/{name}/snapshot persist one entry's table
//	GET    /v1/grammars/{name}/trace    one grammar's recent spans
//	POST   /v1/snapshot                 persist every entry's table
//	POST   /v1/grammars/{name}/sessions open a document session
//	GET    /v1/sessions                 list open sessions
//	PATCH  /v1/sessions/{id}            splice edits into a session, reparse
//	GET    /v1/sessions/{id}            one session's reuse accounting
//	GET    /v1/sessions/{id}/stat       alias of GET /v1/sessions/{id}
//	GET    /v1/sessions/{id}/tree       a session's parse forest
//	DELETE /v1/sessions/{id}            close a session
//	POST   /v1/grammars/{name}/complete accept-set query / cursor ops
//	GET    /v1/completions              list open completion cursors
//	GET    /v1/completions/{id}         one cursor's accounting
//	DELETE /v1/completions/{id}         close a completion cursor
//
// Document sessions hold a parsed document server-side so editors ship
// token splices instead of whole documents; Earley-backed entries
// reparse incrementally, reusing every item set left of the edit. Bad
// splice offsets map to 416, unknown or evicted sessions to 404, and
// the session-count cap to 429.
//
// Completion cursors answer constrained-decoding queries: "which
// terminals may come next after this prefix". A request either ships a
// prefix (optionally once:true for a stateless query) or resumes a
// retained cursor by id, feeding tokens, restoring checkpoints and
// testing candidate terminals against the accept set — served as
// names plus a dense bitset over the grammar's stable terminal
// vocabulary. Non-viable prefixes map to 422, stale cursors (grammar
// modified underneath) to 409, out-of-range restores to 416, the
// cursor cap to 429 and over-long prefixes to 413.
//
// Every non-2xx response carries the uniform error envelope
// {"error": {"code", "message", "retry_after_s"?}}; codes are stable
// strings (throttled, cursor_stale, timeout, ...) so clients dispatch
// without matching message text.
//
// A registration may pick its parsing backend ("engine": glr, lalr,
// ll, earley, or auto — which probes the grammar and records why); the
// chosen engine and its selection reason appear in the entry's stats,
// and /v1/stats counts entries per engine.
//
// When the backing registry has a snapshot store, registering a grammar
// whose snapshot matches resumes the saved lazy table instead of
// generating cold, and /v1/stats reports the snapshot subsystem
// (entries on engines without persistable tables are skipped; an
// explicit snapshot request for one is 409). Admission-control
// rejections (per-entry concurrent-parse, forest-size and request-rate
// limits) map to 429 Too Many Requests.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ipg/internal/cancel"
	"ipg/internal/engine"
	"ipg/internal/obs"
	"ipg/internal/registry"
)

// Server routes requests to a registry. Create with New, mount via
// Handler.
type Server struct {
	reg   *registry.Registry
	mux   *http.ServeMux
	start time.Time

	// maxBatch bounds POST .../batch input counts (SetMaxBatchInputs);
	// maxBody bounds request bodies (SetMaxBodyBytes); parseTimeout
	// bounds each parse-shaped request's engine time (SetParseTimeout,
	// 0 = unbounded).
	maxBatch     int
	maxBody      int64
	parseTimeout time.Duration

	// tracer records parse-lifecycle spans (nil = tracing off); logger
	// is the structured request log (nil = silent). Configure with
	// SetTracer/SetLogger before serving traffic.
	tracer *obs.Tracer
	logger *slog.Logger
	// ready gates /readyz: false until MarkReady, which the binary calls
	// once preloading (including snapshot restores) is complete.
	ready atomic.Bool

	requests       atomic.Uint64
	parses         atomic.Uint64
	batchSentences atomic.Uint64
	rejected429    atomic.Uint64
}

// DefaultMaxBatchInputs bounds batch requests unless overridden with
// SetMaxBatchInputs.
const DefaultMaxBatchInputs = 1024

// DefaultMaxBodyBytes bounds request bodies unless overridden with
// SetMaxBodyBytes.
const DefaultMaxBodyBytes = 1 << 22

// New builds a server over reg (an empty registry when nil).
func New(reg *registry.Registry) *Server {
	if reg == nil {
		reg = registry.New()
	}
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now(),
		maxBatch: DefaultMaxBatchInputs, maxBody: DefaultMaxBodyBytes}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/grammars/{name}/trace", s.handleGrammarTrace)
	s.mux.HandleFunc("GET /v1/grammars", s.handleList)
	s.mux.HandleFunc("PUT /v1/grammars/{name}", s.handleRegister)
	s.mux.HandleFunc("GET /v1/grammars/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/grammars/{name}", s.handleRemove)
	s.mux.HandleFunc("POST /v1/grammars/{name}/parse", s.handleParse)
	s.mux.HandleFunc("POST /v1/grammars/{name}/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/grammars/{name}/rules", s.handleRules)
	s.mux.HandleFunc("POST /v1/grammars/{name}/snapshot", s.handleSnapshotOne)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshotAll)
	s.mux.HandleFunc("POST /v1/grammars/{name}/sessions", s.handleSessionOpen)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	s.mux.HandleFunc("PATCH /v1/sessions/{id}", s.handleSessionEdit)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionStat)
	s.mux.HandleFunc("GET /v1/sessions/{id}/stat", s.handleSessionStat) // alias, kept for older clients
	s.mux.HandleFunc("GET /v1/sessions/{id}/tree", s.handleSessionTree)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionClose)
	s.mux.HandleFunc("POST /v1/grammars/{name}/complete", s.handleComplete)
	s.mux.HandleFunc("GET /v1/completions", s.handleCompletionList)
	s.mux.HandleFunc("GET /v1/completions/{id}", s.handleCompletionStat)
	s.mux.HandleFunc("DELETE /v1/completions/{id}", s.handleCompletionClose)
	return s
}

// SetMaxBatchInputs overrides the batch-size cap (0 restores the
// default). Call before serving traffic.
func (s *Server) SetMaxBatchInputs(n int) {
	if n <= 0 {
		n = DefaultMaxBatchInputs
	}
	s.maxBatch = n
}

// SetMaxBodyBytes overrides the request-body size cap (0 restores the
// default). Call before serving traffic.
func (s *Server) SetMaxBodyBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxBodyBytes
	}
	s.maxBody = n
}

// SetParseTimeout bounds every parse-shaped request's engine time:
// parses running longer are aborted mid-drive at the engine's
// cancellation checkpoints and answered 504 (0 disables). Call before
// serving traffic.
func (s *Server) SetParseTimeout(d time.Duration) { s.parseTimeout = d }

// parseCtx derives the per-parse context: the configured parse timeout
// layered over the request context, so a deadline, a client disconnect
// or a drain-time force-cancel all reach the engine's drive loop. The
// returned cancel must run when the parse completes.
func (s *Server) parseCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.parseTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.parseTimeout)
}

// Registry exposes the backing registry (for preloading grammars).
func (s *Server) Registry() *registry.Registry { return s.reg }

// SetTracer installs the parse-lifecycle tracer (nil disables tracing).
// Call before serving traffic.
func (s *Server) SetTracer(t *obs.Tracer) { s.tracer = t }

// Tracer returns the installed tracer (nil when tracing is off).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SetLogger installs the structured request log (nil silences it). Call
// before serving traffic.
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

// log returns the configured logger, or a discard logger so call sites
// never nil-check.
func (s *Server) log() *slog.Logger {
	if s.logger != nil {
		return s.logger
	}
	return obs.NopLogger()
}

// MarkReady flips /readyz to 200. The binary calls it once preloading —
// including snapshot restores — has completed, so orchestrators only
// route traffic to instances with warm tables published.
func (s *Server) MarkReady() { s.ready.Store(true) }

// MarkNotReady flips /readyz back to 503. The binary calls it when a
// drain begins, so orchestrators stop routing new traffic while
// in-flight requests finish.
func (s *Server) MarkNotReady() { s.ready.Store(false) }

// statusWriter captures the response status for request logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the HTTP handler with request counting, request-ID
// propagation and structured request logging. Each request gets an ID —
// the client's X-Request-Id when present, a generated one otherwise —
// which is echoed in the response header, carried on the request
// context into the registry and engine layers, and stamped onto any
// trace span the request produces.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(obs.WithRequestID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		s.mux.ServeHTTP(sw, r)
		s.log().Debug("request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"duration", time.Since(start), "request_id", id)
	})
}

// errorDetail is the payload of the uniform error envelope: a stable
// machine-readable code, the human-readable message, and — on
// retryable statuses — the Retry-After hint mirrored into the body so
// clients need not scrape headers.
type errorDetail struct {
	Code        string `json:"code"`
	Message     string `json:"message"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// errorBody is the uniform error envelope: every non-2xx response is
// {"error": {"code": ..., "message": ..., "retry_after_s"?: N}}.
type errorBody struct {
	Error errorDetail `json:"error"`
}

// errorCode derives the stable code for an error response. Specific
// sentinel errors get their own codes (so clients can dispatch without
// string matching); everything else is coded by status class.
func errorCode(status int, err error) string {
	switch {
	case errors.Is(err, engine.ErrCursorStale):
		return "cursor_stale"
	case errors.Is(err, engine.ErrRejected):
		return "prefix_rejected"
	case errors.Is(err, engine.ErrBadCheckpoint):
		return "bad_checkpoint"
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusRequestedRangeNotSatisfiable:
		return "bad_range"
	case http.StatusUnprocessableEntity:
		return "invalid_input"
	case http.StatusTooManyRequests:
		return "throttled"
	case statusClientClosedRequest:
		return "client_closed"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timeout"
	default:
		return "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: errorDetail{
		Code:    errorCode(status, err),
		Message: err.Error(),
	}})
}

// writeErrorRetry answers a retryable failure, setting the Retry-After
// header and mirroring the hint into the envelope body.
func writeErrorRetry(w http.ResponseWriter, status, retrySec int, err error) {
	if retrySec <= 0 {
		writeError(w, status, err)
		return
	}
	w.Header().Set("Retry-After", strconv.Itoa(retrySec))
	writeJSON(w, status, errorBody{Error: errorDetail{
		Code:        errorCode(status, err),
		Message:     err.Error(),
		RetryAfterS: retrySec,
	}})
}

func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	limit := s.maxBody
	if limit <= 0 {
		limit = DefaultMaxBodyBytes
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) entry(w http.ResponseWriter, r *http.Request) (*registry.Entry, bool) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no grammar %q", name))
		return nil, false
	}
	return e, true
}

// ---- health and stats ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"grammars": s.reg.Len(),
		"uptime":   time.Since(s.start).String(),
	})
}

// SnapshotSubsystemStats is the snapshot section of /v1/stats, present
// when the registry has a snapshot store.
type SnapshotSubsystemStats struct {
	Dir string `json:"dir"`
	// Saves/Restores/Rejected/Errors count snapshot writes, warm
	// restores at registration, stale-hash rejections and
	// corrupt/unreadable failures.
	Saves    uint64 `json:"saves_total"`
	Restores uint64 `json:"restores_total"`
	Rejected uint64 `json:"rejected_total"`
	Errors   uint64 `json:"errors_total"`
	// LastSaveUnix is the most recent successful save (0 = never).
	LastSaveUnix int64 `json:"last_save_unix"`
}

// ServiceStats is the /v1/stats response.
type ServiceStats struct {
	Grammars       int    `json:"grammars"`
	Registered     uint64 `json:"registered_total"`
	Requests       uint64 `json:"http_requests_total"`
	Parses         uint64 `json:"parse_requests_total"`
	BatchSentences uint64 `json:"batch_sentences_total"`
	// Rejected429 counts admission-control rejections served as 429.
	Rejected429 uint64 `json:"admission_rejected_total"`
	Uptime      string `json:"uptime"`
	// Engines counts entries by the concrete backend serving them, and
	// EngineSelection spells out each entry's binding with its reason —
	// the per-grammar selection at a glance.
	Engines         map[string]int             `json:"engines,omitempty"`
	EngineSelection map[string]EngineSelection `json:"engine_selection,omitempty"`
	// LatencyByEngine aggregates every entry's request-latency histogram
	// by the concrete backend serving it: the per-engine p50/p95/p99 of
	// the service.
	LatencyByEngine map[string]*LatencyStats `json:"latency_by_engine,omitempty"`
	// Snapshots reports the snapshot subsystem (null when disabled).
	Snapshots *SnapshotSubsystemStats `json:"snapshots,omitempty"`
	// Canceled aggregates parses aborted mid-drive across all entries,
	// keyed by cancellation reason (deadline, client_gone, shutdown,
	// injected); Panics counts engine panics recovered into errors.
	Canceled map[string]uint64 `json:"parses_canceled_total,omitempty"`
	Panics   uint64            `json:"parse_panics_total"`
	// Resilience reports the fault-tolerance subsystem: drain state,
	// breaker configuration, memory budget and load shedder.
	Resilience ResilienceInfo `json:"resilience"`
}

// ResilienceInfo is the fault-tolerance section of /v1/stats.
type ResilienceInfo struct {
	Draining      bool   `json:"draining"`
	DrainRejected uint64 `json:"drain_rejected_total"`
	// BreakerThreshold/BreakerCooldownMS echo the circuit-breaker
	// configuration (threshold 0 = disabled).
	BreakerThreshold  int   `json:"breaker_threshold,omitempty"`
	BreakerCooldownMS int64 `json:"breaker_cooldown_ms,omitempty"`
	// Memory budget admission (budget 0 = unlimited; usage is the
	// estimate of the last refresh).
	MemBudgetBytes int64  `json:"mem_budget_bytes,omitempty"`
	MemUsageBytes  int64  `json:"mem_usage_bytes"`
	MemRejected    uint64 `json:"mem_rejected_total"`
	// Load shedder state and lifetime sheds.
	ShedActive bool   `json:"shed_active"`
	Shed       uint64 `json:"shed_total"`
	// SnapshotRetries counts snapshot saves re-attempted after a write
	// error; ParseTimeoutMS echoes the per-parse deadline (0 = none).
	SnapshotRetries uint64 `json:"snapshot_retries_total"`
	ParseTimeoutMS  int64  `json:"parse_timeout_ms,omitempty"`
}

// LatencyStats is the JSON rendering of a request-latency histogram:
// percentiles are reported as the upper bound of the power-of-two bucket
// holding them, in microseconds.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  uint64  `json:"p50_us"`
	P95US  uint64  `json:"p95_us"`
	P99US  uint64  `json:"p99_us"`
}

// latencyOf renders a snapshot, nil when the histogram is empty (so the
// JSON omits entries that have served nothing yet).
func latencyOf(s registry.LatencySnapshot) *LatencyStats {
	if s.Count == 0 {
		return nil
	}
	return &LatencyStats{
		Count:  s.Count,
		MeanUS: s.MeanUS(),
		P50US:  s.PercentileUS(0.50),
		P95US:  s.PercentileUS(0.95),
		P99US:  s.PercentileUS(0.99),
	}
}

// EngineCaps is the JSON rendering of an engine capability row.
type EngineCaps struct {
	Trees       bool `json:"trees"`
	Ambiguity   bool `json:"ambiguity"`
	Incremental bool `json:"incremental"`
	Lazy        bool `json:"lazy"`
	Snapshot    bool `json:"snapshot"`
	Complete    bool `json:"complete"`
}

func capsOf(c engine.Caps) EngineCaps {
	return EngineCaps{
		Trees:       c.Trees,
		Ambiguity:   c.Ambiguity,
		Incremental: c.Incremental,
		Lazy:        c.Lazy,
		Snapshot:    c.Snapshot,
		Complete:    c.Complete,
	}
}

// EngineSelection is one entry's engine binding in /v1/stats.
type EngineSelection struct {
	Engine string `json:"engine"`
	// Requested is present when it differs from the concrete engine
	// (i.e. auto registrations).
	Requested string `json:"requested,omitempty"`
	Reason    string `json:"reason"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := ServiceStats{
		Grammars:       s.reg.Len(),
		Registered:     s.reg.Registered(),
		Requests:       s.requests.Load(),
		Parses:         s.parses.Load(),
		BatchSentences: s.batchSentences.Load(),
		Rejected429:    s.rejected429.Load(),
		Uptime:         time.Since(s.start).String(),
	}
	if entries := s.reg.Entries(); len(entries) > 0 {
		out.Engines = make(map[string]int, 4)
		out.EngineSelection = make(map[string]EngineSelection, len(entries))
		byEngine := make(map[string]registry.LatencySnapshot, 4)
		for _, e := range entries {
			st := e.Stats()
			out.Engines[st.Engine.String()]++
			sel := EngineSelection{Engine: st.Engine.String(), Reason: st.EngineReason}
			if st.Requested == engine.KindAuto {
				sel.Requested = st.Requested.String()
			}
			out.EngineSelection[st.Name] = sel
			merged := byEngine[st.Engine.String()]
			merged.Add(st.Latency)
			byEngine[st.Engine.String()] = merged
			out.Panics += st.Panics
			for reason := 1; reason < int(cancel.NumReasons); reason++ {
				if n := st.Canceled[reason]; n > 0 {
					if out.Canceled == nil {
						out.Canceled = make(map[string]uint64, int(cancel.NumReasons)-1)
					}
					out.Canceled[cancel.Reason(reason).String()] += n
				}
			}
		}
		for kind, snap := range byEngine {
			if lat := latencyOf(snap); lat != nil {
				if out.LatencyByEngine == nil {
					out.LatencyByEngine = make(map[string]*LatencyStats, len(byEngine))
				}
				out.LatencyByEngine[kind] = lat
			}
		}
	}
	res := s.reg.Resilience()
	out.Resilience = ResilienceInfo{
		Draining:          res.Draining,
		DrainRejected:     res.DrainRejected,
		BreakerThreshold:  res.Breaker.Threshold,
		BreakerCooldownMS: res.Breaker.Cooldown.Milliseconds(),
		MemBudgetBytes:    res.MemBudgetBytes,
		MemUsageBytes:     res.MemUsageBytes,
		MemRejected:       res.MemRejected,
		ShedActive:        res.ShedActive,
		Shed:              res.Shed,
		SnapshotRetries:   res.SnapshotRetries,
		ParseTimeoutMS:    s.parseTimeout.Milliseconds(),
	}
	if st := s.reg.SnapshotStats(); st.Enabled {
		out.Snapshots = &SnapshotSubsystemStats{
			Dir:          st.Dir,
			Saves:        st.Saves,
			Restores:     st.Restores,
			Rejected:     st.Rejected,
			Errors:       st.Errors,
			LastSaveUnix: st.LastSaveUnix,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- registry management ----

// EntryInfo is the JSON rendering of one entry's stats.
type EntryInfo struct {
	Name    string `json:"name"`
	Form    string `json:"form"`
	Version uint64 `json:"version"`
	Rules   int    `json:"rules"`
	// Engine is the concrete backend serving the entry; EngineRequested
	// is what the registration asked for ("auto" stays auto after
	// selection), and EngineReason explains the binding — "requested",
	// or the auto prober's verdict.
	Engine          string `json:"engine"`
	EngineRequested string `json:"engine_requested,omitempty"`
	EngineReason    string `json:"engine_reason,omitempty"`
	// EngineCaps is the serving backend's capability row (the Caps
	// matrix of internal/engine, per entry).
	EngineCaps EngineCaps `json:"engine_caps"`
	// RuleUpdates counts applied rule additions/deletions;
	// UpdateParseRatio relates them to parses served — the signal that
	// moves an auto entry onto (and off) the table-free Earley backend.
	RuleUpdates      uint64  `json:"rule_updates_total"`
	UpdateParseRatio float64 `json:"update_parse_ratio"`
	// EngineReprobes counts auto-engine re-probe passes (0 for
	// explicitly selected backends); SnapshotSaves counts this entry's
	// persisted table snapshots.
	EngineReprobes uint64 `json:"engine_reprobes_total"`
	SnapshotSaves  uint64 `json:"snapshot_saves_total"`
	States         int    `json:"states"`
	// Complete/Initial/Dirty break down the shared table: how much has
	// been generated by need, and how much a modification invalidated.
	Complete int `json:"complete_states"`
	Initial  int `json:"initial_states"`
	Dirty    int `json:"dirty_states"`
	// Generator work counters.
	ParsesServed      uint64  `json:"parses_served"`
	StatesExpanded    uint64  `json:"states_expanded"`
	StatesInvalidated uint64  `json:"states_invalidated"`
	ActionCalls       uint64  `json:"action_calls"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	// StatesRepaired counts table states spliced in place by incremental
	// repair on rule updates; RepairFallbacks counts updates whose
	// repair declined and regenerated the table from scratch.
	StatesRepaired  uint64 `json:"states_repaired_total"`
	RepairFallbacks uint64 `json:"repair_fallbacks_total"`
	// Restored reports the entry resumed its table from a snapshot at
	// registration instead of generating cold.
	Restored bool `json:"restored_from_snapshot"`
	// InflightParses / AdmissionRejected describe admission control;
	// the Max*/Rate* fields echo the entry's limits (0 = unlimited).
	InflightParses      int64   `json:"inflight_parses"`
	AdmissionRejected   uint64  `json:"admission_rejected_total"`
	MaxConcurrentParses int     `json:"max_concurrent_parses,omitempty"`
	MaxForestNodes      int     `json:"max_forest_nodes,omitempty"`
	RatePerSec          float64 `json:"rate_per_sec,omitempty"`
	RateBurst           int     `json:"rate_burst,omitempty"`
	// Latency is the entry's request-latency histogram, omitted (not
	// null) until the entry has served a request — the same shape
	// /v1/stats uses for its per-engine aggregation, pinned by test.
	Latency *LatencyStats `json:"latency,omitempty"`
}

func infoOf(st registry.Stats) EntryInfo {
	info := EntryInfo{
		Name:                st.Name,
		Form:                st.Form.String(),
		Version:             st.Version,
		Rules:               st.Rules,
		Engine:              st.Engine.String(),
		EngineReason:        st.EngineReason,
		EngineCaps:          capsOf(st.Caps),
		RuleUpdates:         st.RuleUpdates,
		UpdateParseRatio:    st.UpdateParseRatio(),
		EngineReprobes:      st.EngineReprobes,
		SnapshotSaves:       st.SnapshotSaves,
		States:              st.States,
		Complete:            st.Complete,
		Initial:             st.Initial,
		Dirty:               st.Dirty,
		ParsesServed:        st.Counters.ParsesServed,
		StatesExpanded:      st.Counters.StatesExpanded,
		StatesInvalidated:   st.Counters.StatesInvalidated,
		ActionCalls:         st.Counters.ActionCalls,
		CacheHitRate:        st.Counters.HitRate(),
		StatesRepaired:      st.Counters.StatesRepaired,
		RepairFallbacks:     st.Counters.RepairFallbacks,
		Restored:            st.Restored,
		InflightParses:      st.Inflight,
		AdmissionRejected:   st.AdmissionRejected,
		MaxConcurrentParses: st.Limits.MaxConcurrentParses,
		MaxForestNodes:      st.Limits.MaxForestNodes,
		RatePerSec:          st.Limits.RatePerSec,
		RateBurst:           st.Limits.Burst,
		Latency:             latencyOf(st.Latency),
	}
	if st.Requested == engine.KindAuto {
		info.EngineRequested = st.Requested.String()
	}
	return info
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.Entries()
	out := make([]EntryInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, infoOf(e.Stats()))
	}
	writeJSON(w, http.StatusOK, map[string]any{"grammars": out})
}

// RegisterRequest is the PUT /v1/grammars/{name} body.
type RegisterRequest struct {
	// Source is the grammar text: plain BNF rules or an SDF definition.
	Source string `json:"source"`
	// Form is "auto" (default), "rules"/"bnf", or "sdf".
	Form string `json:"form,omitempty"`
	// Start picks the start sort of an SDF definition.
	Start string `json:"start,omitempty"`
	// Engine selects the parsing backend: "glr", "lalr", "ll", "earley",
	// or "auto" (probe the grammar and record why). Empty inherits the
	// service default.
	Engine string `json:"engine,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	form, err := registry.ParseForm(req.Form)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	kind, err := engine.ParseKind(req.Engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e, err := s.reg.Register(r.PathValue("name"), registry.Spec{
		Source:    req.Source,
		Form:      form,
		StartSort: req.Start,
		Engine:    kind,
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	status := http.StatusCreated
	if e.Version() > 1 {
		status = http.StatusOK // replacement
	}
	writeJSON(w, status, infoOf(e.Stats()))
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, infoOf(e.Stats()))
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	if !s.reg.Remove(r.PathValue("name")) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no grammar %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": true})
}

// ---- parsing ----

// ParseRequest is the POST .../parse body. Input is source text for SDF
// grammars and whitespace-separated terminal names for rules grammars.
type ParseRequest struct {
	Input string `json:"input"`
	// Trees requests forest construction (needed for tree counts and
	// rendering; SDF priority filters always imply it).
	Trees bool `json:"trees,omitempty"`
	// Render additionally includes the bracketed forest rendering.
	Render bool `json:"render,omitempty"`
}

// ParseResponse reports one parse. Trees and Ambiguous are omitted when
// the forest was not built (trees:false on an accepted parse), since
// acceptance alone says nothing about ambiguity.
type ParseResponse struct {
	Accepted bool `json:"accepted"`
	// Trees counts surviving derivations (0 = rejected, 1 =
	// unambiguous, -1 = too many to count).
	Trees     *int64 `json:"trees,omitempty"`
	Ambiguous *bool  `json:"ambiguous,omitempty"`
	Forest    string `json:"forest,omitempty"`
	// ErrorPos/Expected describe the first failure of rejected inputs.
	// ErrorPos is a pointer so a rejection at token 0 still serializes.
	ErrorPos *int     `json:"error_pos,omitempty"`
	Expected []string `json:"expected,omitempty"`
	// DurationUS is the server-side parse time in microseconds.
	DurationUS int64 `json:"duration_us"`
}

func (s *Server) parseOne(ctx context.Context, e *registry.Entry, req ParseRequest) (ParseResponse, error) {
	ctx, cancelParse := s.parseCtx(ctx)
	defer cancelParse()
	start := time.Now()
	tr := s.tracer.StartParse(e.Name(), e.EngineKind().String(), obs.RequestID(ctx))
	res, err := e.ParseInputTraced(ctx, req.Input, req.Trees || req.Render, tr)
	if err != nil {
		s.finishTrace(tr, false, err)
		return ParseResponse{}, err
	}
	out := renderResult(e, res, req.Render, tr, start)
	s.finishTrace(tr, res.Accepted, nil)
	return out, nil
}

// renderResult translates a registry result into the wire shape,
// recording name/forest rendering — which reads the shared symbol
// table under the entry's read lock inside Describe — as a render
// stage. Shared by the parse and session endpoints.
func renderResult(e *registry.Entry, res registry.Result, render bool, tr *obs.ParseTrace, start time.Time) ParseResponse {
	out := ParseResponse{
		Accepted:   res.Accepted,
		DurationUS: time.Since(start).Microseconds(),
	}
	if res.TreesKnown {
		trees := res.Trees
		ambiguous := trees > 1 || trees == -1
		out.Trees = &trees
		out.Ambiguous = &ambiguous
	}
	tr.BeginStage(obs.StageRender)
	expected, forestText := e.Describe(res, render)
	tr.EndStage(obs.StageRender)
	if !res.Accepted {
		pos := res.ErrorPos
		out.ErrorPos = &pos
		out.Expected = expected
	}
	out.Forest = forestText
	return out
}

// finishTrace completes a parse trace and logs slow-parse outliers with
// their full stage breakdown. Nil traces (tracing off or unsampled with
// no slow threshold) cost two nil checks.
func (s *Server) finishTrace(tr *obs.ParseTrace, accepted bool, err error) {
	sp, _, slow := tr.FinishSpan(accepted, err)
	if slow {
		s.log().Warn("slow parse",
			"grammar", sp.Grammar, "engine", sp.Engine,
			"duration", sp.Total, "accepted", accepted,
			"request_id", sp.RequestID, "err", err)
	}
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req ParseRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.parses.Add(1)
	out, err := s.parseOne(r.Context(), e, req)
	if err != nil {
		s.writeParseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// throttledErr reports the retryable admission-control class: the
// entry (or the service) is protecting itself, not rejecting the
// input. Retry shortly and the parse should go through.
func throttledErr(err error) bool {
	return errors.Is(err, registry.ErrBusy) ||
		errors.Is(err, registry.ErrForestLimit) ||
		errors.Is(err, registry.ErrRateLimited) ||
		errors.Is(err, registry.ErrMemoryBudget) ||
		errors.Is(err, registry.ErrShed)
}

// statusClientClosedRequest is the de-facto (nginx) status for requests
// abandoned by the client; net/http has no constant for it. The client
// is gone, so the status is for the access log, not the wire.
const statusClientClosedRequest = 499

// drainRetryAfterSec is the Retry-After hint on drain-time 503s: long
// enough for the orchestrator to route around this instance.
const drainRetryAfterSec = 5

// classifyParseError maps a parse failure onto its HTTP status and a
// Retry-After hint in seconds (0 = no header):
//
//	canceled: deadline/injected → 504, client gone → 499,
//	          shutdown (drain force-cancel) → 503 + Retry-After
//	quarantined (breaker open) → 503 + Retry-After from the breaker
//	draining → 503 + Retry-After
//	throttled (busy/forest/rate/memory/shed) → 429 + Retry-After
//	engine panic → 500 (stack logged server-side)
//	anything else → 422 (input problem)
func (s *Server) classifyParseError(err error) (status, retryAfterSec int) {
	var cerr *cancel.Error
	if errors.As(err, &cerr) {
		switch cerr.Reason {
		case cancel.ClientGone:
			return statusClientClosedRequest, 0
		case cancel.Shutdown:
			return http.StatusServiceUnavailable, drainRetryAfterSec
		default: // Deadline, Injected
			return http.StatusGatewayTimeout, 0
		}
	}
	var q *registry.QuarantineError
	if errors.As(err, &q) {
		ra := int(q.RetryAfter / time.Second)
		if ra < 1 {
			ra = 1
		}
		return http.StatusServiceUnavailable, ra
	}
	if errors.Is(err, registry.ErrDraining) {
		return http.StatusServiceUnavailable, drainRetryAfterSec
	}
	if throttledErr(err) {
		s.rejected429.Add(1)
		return http.StatusTooManyRequests, 1
	}
	var p *engine.PanicError
	if errors.As(err, &p) {
		s.log().Error("parse panicked",
			"err", fmt.Sprint(p.Value), "stack", string(p.Stack))
		return http.StatusInternalServerError, 0
	}
	return http.StatusUnprocessableEntity, 0
}

// writeParseError answers a failed parse with the classified status and
// Retry-After hint.
func (s *Server) writeParseError(w http.ResponseWriter, err error) {
	status, retry := s.classifyParseError(err)
	writeErrorRetry(w, status, retry, err)
}

// BatchRequest is the POST .../batch body: many sentences fanned out
// across a worker pool over the shared table.
type BatchRequest struct {
	Inputs []string `json:"inputs"`
	// Workers bounds pool size (default GOMAXPROCS, clamped to the
	// number of inputs).
	Workers int  `json:"workers,omitempty"`
	Trees   bool `json:"trees,omitempty"`
}

// BatchItem is one sentence's outcome; Error is set instead of the
// parse fields when the sentence could not be processed. Throttled
// additionally marks admission-control rejections (the 429 class):
// those are retryable, unlike tokenization errors.
type BatchItem struct {
	ParseResponse
	Error     string `json:"error,omitempty"`
	Throttled bool   `json:"throttled,omitempty"`
}

// BatchResponse aggregates a batch.
type BatchResponse struct {
	Results  []BatchItem `json:"results"`
	Accepted int         `json:"accepted"`
	Rejected int         `json:"rejected"`
	Errors   int         `json:"errors"`
	// Throttled counts items refused by admission control (also
	// included in Errors).
	Throttled int `json:"throttled,omitempty"`
	Workers   int `json:"workers"`
	// WallUS is the end-to-end batch time; with W workers and a warm
	// table it approaches sum(parse time)/W.
	WallUS int64 `json:"wall_us"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req BatchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Inputs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch needs at least one input"))
		return
	}
	if len(req.Inputs) > s.maxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d inputs exceeds the limit of %d; split the request", len(req.Inputs), s.maxBatch))
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Inputs) {
		workers = len(req.Inputs)
	}
	s.batchSentences.Add(uint64(len(req.Inputs)))

	start := time.Now()
	results := make([]BatchItem, len(req.Inputs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				out, err := s.parseOne(r.Context(), e, ParseRequest{Input: req.Inputs[idx], Trees: req.Trees})
				if err != nil {
					throttled := throttledErr(err)
					if throttled {
						s.rejected429.Add(1)
					}
					results[idx] = BatchItem{Error: err.Error(), Throttled: throttled}
					continue
				}
				results[idx] = BatchItem{ParseResponse: out}
			}
		}()
	}
	for idx := range req.Inputs {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	resp := BatchResponse{Results: results, Workers: workers, WallUS: time.Since(start).Microseconds()}
	for _, item := range results {
		switch {
		case item.Error != "":
			resp.Errors++
			if item.Throttled {
				resp.Throttled++
			}
		case item.Accepted:
			resp.Accepted++
		default:
			resp.Rejected++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- incremental modification ----

// RulesRequest is the POST .../rules body: BNF rule text to add and/or
// delete incrementally against the shared table.
type RulesRequest struct {
	Add    string `json:"add,omitempty"`
	Delete string `json:"delete,omitempty"`
}

// RulesResponse reports the update. On a 422 the Error field names the
// failing half and Added/Deleted report what was already applied to the
// live table before the failure (deletions run first), so clients can
// see partial application instead of assuming the update was rejected
// wholesale.
type RulesResponse struct {
	Added   int    `json:"added"`
	Deleted int    `json:"deleted"`
	Version uint64 `json:"version"`
	// Invalidated counts the table states the update made dirty — the
	// paper's measure of how local the change was.
	Invalidated uint64 `json:"states_invalidated_total"`
	Error       string `json:"error,omitempty"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req RulesRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	var resp RulesResponse
	// Rule updates join the parse-lifecycle trace: repairs show up as
	// the repair stage with their state counts on the span.
	tr := s.tracer.StartParse(e.Name(), e.EngineKind().String(), obs.RequestID(r.Context()))
	var updateErr error
	defer func() { tr.Finish(updateErr == nil, updateErr) }()
	fail := func(err error) {
		updateErr = err
		resp.Error = err.Error()
		resp.Version = e.Version()
		resp.Invalidated = e.Counters().StatesInvalidated
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	}
	if req.Delete != "" {
		n, err := e.DeleteRulesTextTraced(req.Delete, tr)
		resp.Deleted = n
		if err != nil {
			fail(err)
			return
		}
	}
	if req.Add != "" {
		n, err := e.AddRulesTextTraced(req.Add, tr)
		resp.Added = n
		if err != nil {
			fail(err)
			return
		}
	}
	resp.Version = e.Version()
	resp.Invalidated = e.Counters().StatesInvalidated
	writeJSON(w, http.StatusOK, resp)
}

// ---- snapshots ----

// SnapshotResponse reports one entry's persisted snapshot.
type SnapshotResponse struct {
	Name string `json:"name"`
	// States/Complete describe the persisted table; Bytes is the
	// payload size.
	States   int    `json:"states"`
	Complete int    `json:"complete_states"`
	Version  uint64 `json:"version"`
	// GrammarHash is the fingerprint a future registration must match
	// to resume this snapshot.
	GrammarHash string `json:"grammar_hash"`
}

// SnapshotAllResponse reports a service-wide snapshot pass.
type SnapshotAllResponse struct {
	Saved int    `json:"saved"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleSnapshotOne(w http.ResponseWriter, r *http.Request) {
	meta, err := s.reg.SnapshotEntry(r.PathValue("name"))
	switch {
	case errors.Is(err, registry.ErrNoStore), errors.Is(err, registry.ErrNotSnapshottable):
		// Both are configuration/capability conflicts, not input errors:
		// no store mounted, or the entry's engine keeps no persistable
		// table (only lazy GLR does).
		writeError(w, http.StatusConflict, err)
		return
	case errors.Is(err, registry.ErrUnknownGrammar):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{
		Name:        meta.Name,
		States:      meta.States,
		Complete:    meta.Complete,
		Version:     meta.Version,
		GrammarHash: meta.GrammarHash,
	})
}

func (s *Server) handleSnapshotAll(w http.ResponseWriter, r *http.Request) {
	saved, err := s.reg.SnapshotAll()
	if errors.Is(err, registry.ErrNoStore) {
		writeError(w, http.StatusConflict, err)
		return
	}
	resp := SnapshotAllResponse{Saved: saved}
	if err != nil {
		// Partial failure still reports what was saved.
		resp.Error = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// HTTP-surface tests for the fault-tolerance layer: deadline aborts,
// breaker quarantine, drain rejection, body limits, and throttling all
// map to the documented status codes and Retry-After headers, and the
// new resilience state shows up in /v1/stats and /metrics.
package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ipg/internal/faultinject"
	"ipg/internal/registry"
)

// newResilienceServer builds a server with direct access to the Server
// and its registry (newTestServer hides both behind the handler).
func newResilienceServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func registerBool(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resp, body := do(t, "PUT", ts.URL+"/v1/grammars/bool", map[string]any{"source": boolSrc})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %v", resp.StatusCode, body)
	}
}

// longBoolInput builds an input with enough tokens that a per-token
// delay fault dominates the parse.
func longBoolInput(tokens int) string {
	var b strings.Builder
	b.WriteString("true")
	for i := 0; i < tokens; i++ {
		b.WriteString(" or true")
	}
	return b.String()
}

func TestParseDeadlineReturns504(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newResilienceServer(t)
	registerBool(t, ts)
	s.SetParseTimeout(10 * time.Millisecond)
	defer s.SetParseTimeout(0)
	faultinject.Set(faultinject.SiteDriveToken,
		faultinject.Fault{Kind: faultinject.Delay, Delay: time.Millisecond})

	start := time.Now()
	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/parse",
		map[string]any{"input": longBoolInput(400)})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline parse: %d %v, want 504", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline abort took %v — checkpoints not firing", elapsed)
	}
	detail, _ := body["error"].(map[string]any)
	if msg, _ := detail["message"].(string); !strings.Contains(msg, "deadline") {
		t.Errorf("504 body %v does not name the deadline", body)
	}
	if code, _ := detail["code"].(string); code != "timeout" {
		t.Errorf("504 code = %q, want \"timeout\"", code)
	}
}

func TestBreakerReturns503WithRetryAfter(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newResilienceServer(t)
	registerBool(t, ts)
	s.reg.SetBreakerConfig(registry.BreakerConfig{Threshold: 2, Cooldown: time.Minute})

	// Two consecutive engine panics surface as 500s and open the breaker.
	faultinject.Set(faultinject.SiteDispatch,
		faultinject.Fault{Kind: faultinject.Panic, Times: 2})
	for i := 0; i < 2; i++ {
		resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/parse",
			map[string]any{"input": "true or false"})
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic parse %d: %d %v, want 500", i, resp.StatusCode, body)
		}
	}
	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/parse",
		map[string]any{"input": "true or false"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined parse: %d %v, want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("breaker 503 carries Retry-After %q, want positive seconds", ra)
	}
}

func TestDrainingReturns503WithRetryAfter(t *testing.T) {
	s, ts := newResilienceServer(t)
	registerBool(t, ts)
	s.reg.SetDraining(true)
	defer s.reg.SetDraining(false)

	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/parse",
		map[string]any{"input": "true"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining parse: %d %v, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 carries no Retry-After")
	}
}

func TestBodyLimitReturns413(t *testing.T) {
	s, ts := newResilienceServer(t)
	registerBool(t, ts)
	s.SetMaxBodyBytes(256)
	defer s.SetMaxBodyBytes(0)

	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/parse",
		map[string]any{"input": longBoolInput(500)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %v, want 413", resp.StatusCode, body)
	}
}

func TestThrottledReturns429WithRetryAfter(t *testing.T) {
	s, ts := newResilienceServer(t)
	if _, err := s.reg.Register("slow", registry.Spec{
		Source: boolSrc,
		Limits: registry.Limits{RatePerSec: 0.001},
	}); err != nil {
		t.Fatal(err)
	}
	// The bucket starts with one token: the first parse drains it, the
	// second is throttled.
	do(t, "POST", ts.URL+"/v1/grammars/slow/parse", map[string]any{"input": "true"})
	resp, body := do(t, "POST", ts.URL+"/v1/grammars/slow/parse",
		map[string]any{"input": "true"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled parse: %d %v, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
}

func TestStatsExposeResilience(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newResilienceServer(t)
	registerBool(t, ts)
	s.reg.SetBreakerConfig(registry.BreakerConfig{Threshold: 7, Cooldown: time.Second})
	s.SetParseTimeout(5 * time.Millisecond)
	defer s.SetParseTimeout(0)

	// One deadline-canceled parse so the canceled counters move.
	faultinject.Set(faultinject.SiteDriveToken,
		faultinject.Fault{Kind: faultinject.Delay, Delay: time.Millisecond})
	do(t, "POST", ts.URL+"/v1/grammars/bool/parse",
		map[string]any{"input": longBoolInput(400)})
	faultinject.Reset()

	_, body := do(t, "GET", ts.URL+"/v1/stats", nil)
	res, ok := body["resilience"].(map[string]any)
	if !ok {
		t.Fatalf("stats carry no resilience section: %v", body)
	}
	if res["breaker_threshold"].(float64) != 7 {
		t.Errorf("resilience.breaker_threshold = %v, want 7", res["breaker_threshold"])
	}
	if res["parse_timeout_ms"].(float64) != 5 {
		t.Errorf("resilience.parse_timeout_ms = %v, want 5", res["parse_timeout_ms"])
	}
	canceled, ok := body["parses_canceled_total"].(map[string]any)
	if !ok || canceled["deadline"].(float64) < 1 {
		t.Errorf("parses_canceled_total = %v, want deadline >= 1", body["parses_canceled_total"])
	}
}

func TestMetricsExposeResilienceFamilies(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newResilienceServer(t)
	registerBool(t, ts)
	// Fire one injected fault so ipg_fault_injections_total has a row.
	faultinject.Set(faultinject.SiteDispatch,
		faultinject.Fault{Kind: faultinject.Panic, Times: 1})
	do(t, "POST", ts.URL+"/v1/grammars/bool/parse", map[string]any{"input": "true"})
	_ = s

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, fam := range []string{
		"ipg_parses_canceled_total",
		"ipg_parse_panics_total",
		"ipg_breaker_state",
		"ipg_breaker_trips_total",
		"ipg_breaker_rejected_total",
		"ipg_draining",
		"ipg_drain_rejected_total",
		"ipg_mem_budget_bytes",
		"ipg_mem_usage_bytes",
		"ipg_mem_rejected_total",
		"ipg_shed_active",
		"ipg_shed_total",
		"ipg_snapshot_retries_total",
		"ipg_fault_injections_total",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("/metrics lacks family %s", fam)
		}
	}
	if !strings.Contains(text, `ipg_fault_injections_total{site="dispatch.parse",kind="panic"}`) {
		t.Error("/metrics lacks the fired fault-injection sample")
	}
}

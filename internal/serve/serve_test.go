package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const boolSrc = `
START ::= B
B ::= "true" | "false"
B ::= B "or" B | B "and" B
`

const calcSDF = `module Calc
begin
  lexical syntax
    sorts DIGIT, NAT
    layout SPACE
    functions
      [0-9]    -> DIGIT
      DIGIT+   -> NAT
      [\ \t\n] -> SPACE
  context-free syntax
    sorts EXP
    priorities
      EXP "*" EXP -> EXP > EXP "+" EXP -> EXP
    functions
      NAT         -> EXP
      EXP "+" EXP -> EXP {left-assoc}
      EXP "*" EXP -> EXP {left-assoc}
end Calc
`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(nil).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == nil {
		rd = strings.NewReader("")
	} else {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(b))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decode: %v", method, url, err)
	}
	return resp, out
}

func TestHealthAndStats(t *testing.T) {
	ts := newTestServer(t)
	resp, body := do(t, "GET", ts.URL+"/healthz", nil)
	if resp.StatusCode != 200 || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, body)
	}
	resp, body = do(t, "GET", ts.URL+"/v1/stats", nil)
	if resp.StatusCode != 200 || body["grammars"].(float64) != 0 {
		t.Fatalf("stats: %d %v", resp.StatusCode, body)
	}
}

func TestRegisterParseLifecycle(t *testing.T) {
	ts := newTestServer(t)

	// Register a BNF grammar.
	resp, body := do(t, "PUT", ts.URL+"/v1/grammars/bool", map[string]any{"source": boolSrc})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %v", resp.StatusCode, body)
	}
	if body["form"] != "rules" || body["version"].(float64) != 1 {
		t.Errorf("register body: %v", body)
	}

	// Parse through it.
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/parse",
		map[string]any{"input": "true or false", "trees": true, "render": true})
	if resp.StatusCode != 200 || body["accepted"] != true {
		t.Fatalf("parse: %d %v", resp.StatusCode, body)
	}
	if body["trees"].(float64) != 1 || !strings.Contains(body["forest"].(string), "or") {
		t.Errorf("parse body: %v", body)
	}

	// Rejections carry diagnostics.
	_, body = do(t, "POST", ts.URL+"/v1/grammars/bool/parse",
		map[string]any{"input": "true or or"})
	if body["accepted"] != false || body["error_pos"].(float64) != 2 {
		t.Errorf("rejection body: %v", body)
	}

	// Info reflects lazy generation.
	_, body = do(t, "GET", ts.URL+"/v1/grammars/bool", nil)
	if body["parses_served"].(float64) < 2 || body["states_expanded"].(float64) == 0 {
		t.Errorf("info body: %v", body)
	}

	// Incremental modification through the API.
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/rules",
		map[string]any{"add": `B ::= "not" B`})
	if resp.StatusCode != 200 || body["added"].(float64) != 1 || body["version"].(float64) != 2 {
		t.Fatalf("rules: %d %v", resp.StatusCode, body)
	}
	_, body = do(t, "POST", ts.URL+"/v1/grammars/bool/parse",
		map[string]any{"input": "not true"})
	if body["accepted"] != true {
		t.Errorf("extension not live: %v", body)
	}

	// List then remove.
	_, body = do(t, "GET", ts.URL+"/v1/grammars", nil)
	if n := len(body["grammars"].([]any)); n != 1 {
		t.Errorf("list: %d entries", n)
	}
	resp, _ = do(t, "DELETE", ts.URL+"/v1/grammars/bool", nil)
	if resp.StatusCode != 200 {
		t.Errorf("delete: %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", ts.URL+"/v1/grammars/bool", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("after delete: %d", resp.StatusCode)
	}
}

func TestSDFGrammarOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	resp, body := do(t, "PUT", ts.URL+"/v1/grammars/calc", map[string]any{"source": calcSDF})
	if resp.StatusCode != http.StatusCreated || body["form"] != "sdf" {
		t.Fatalf("register: %d %v", resp.StatusCode, body)
	}
	_, body = do(t, "POST", ts.URL+"/v1/grammars/calc/parse",
		map[string]any{"input": "1 + 2 * 3", "trees": true})
	if body["accepted"] != true || body["trees"].(float64) != 1 || body["ambiguous"] != false {
		t.Errorf("priorities should leave one tree: %v", body)
	}
}

func TestBatchWorkerPool(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/v1/grammars/calc", map[string]any{"source": calcSDF})

	inputs := make([]any, 0, 40)
	for i := 0; i < 40; i++ {
		if i%4 == 3 {
			inputs = append(inputs, "1 + + 2") // rejected
		} else {
			inputs = append(inputs, "1 + 2 * 3")
		}
	}
	resp, body := do(t, "POST", ts.URL+"/v1/grammars/calc/batch",
		map[string]any{"inputs": inputs, "workers": 4, "trees": true})
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %v", resp.StatusCode, body)
	}
	if body["accepted"].(float64) != 30 || body["rejected"].(float64) != 10 {
		t.Errorf("batch totals: accepted=%v rejected=%v errors=%v",
			body["accepted"], body["rejected"], body["errors"])
	}
	if body["workers"].(float64) != 4 {
		t.Errorf("workers: %v", body["workers"])
	}
	if n := len(body["results"].([]any)); n != 40 {
		t.Errorf("results: %d", n)
	}
	// Scan errors are per-item, not batch-fatal.
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/calc/batch",
		map[string]any{"inputs": []any{"1 + 2", "@@@"}})
	if resp.StatusCode != 200 || body["errors"].(float64) != 1 || body["accepted"].(float64) != 1 {
		t.Errorf("mixed batch: %d %v", resp.StatusCode, body)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := do(t, "POST", ts.URL+"/v1/grammars/nope/parse", map[string]any{"input": "x"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown grammar: %d", resp.StatusCode)
	}
	resp, _ = do(t, "PUT", ts.URL+"/v1/grammars/bad", map[string]any{"source": "START ::"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad source: %d", resp.StatusCode)
	}
	resp, _ = do(t, "PUT", ts.URL+"/v1/grammars/bad", map[string]any{"source": boolSrc, "form": "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad form: %d", resp.StatusCode)
	}
	do(t, "PUT", ts.URL+"/v1/grammars/bool", map[string]any{"source": boolSrc})
	resp, _ = do(t, "POST", ts.URL+"/v1/grammars/bool/batch", map[string]any{"inputs": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: %d", resp.StatusCode)
	}
	resp, _ = do(t, "POST", ts.URL+"/v1/grammars/bool/parse", map[string]any{"bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d", resp.StatusCode)
	}
}

package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ipg/internal/obs"
	"ipg/internal/registry"
	"ipg/internal/snapshot"
)

func doReq(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

const obsBoolSrc = `{"source":"START ::= B\nB ::= \"true\" | \"false\" | B \"or\" B"}`

// TestReadyz pins the readiness contract: 503 until MarkReady, 200
// after — so an orchestrator only routes to instances whose preload
// (including snapshot restores) has published every table. /healthz
// stays 200 throughout: the process is alive either way.
func TestReadyz(t *testing.T) {
	s := New(nil)
	if rec := doReq(t, s, "GET", "/healthz", ""); rec.Code != 200 {
		t.Errorf("healthz before ready: %d", rec.Code)
	}
	if rec := doReq(t, s, "GET", "/readyz", ""); rec.Code != 503 {
		t.Errorf("readyz before MarkReady: %d, want 503", rec.Code)
	}
	s.MarkReady()
	if rec := doReq(t, s, "GET", "/readyz", ""); rec.Code != 200 {
		t.Errorf("readyz after MarkReady: %d, want 200", rec.Code)
	}
}

// TestMetricsExposition boots a server, serves traffic, and checks the
// /metrics exposition: required families present, per-grammar series
// labeled with grammar and engine, histogram series cumulative and
// well-formed.
func TestMetricsExposition(t *testing.T) {
	s := New(nil)
	s.SetTracer(obs.NewTracer(obs.TracerConfig{SampleEvery: 1}))
	if rec := doReq(t, s, "PUT", "/v1/grammars/bools", obsBoolSrc); rec.Code != 201 {
		t.Fatalf("register: %d %s", rec.Code, rec.Body)
	}
	for i := 0; i < 3; i++ {
		if rec := doReq(t, s, "POST", "/v1/grammars/bools/parse", `{"input":"true or false"}`); rec.Code != 200 {
			t.Fatalf("parse: %d %s", rec.Code, rec.Body)
		}
	}

	rec := doReq(t, s, "GET", "/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()

	// Every required family must be declared with HELP and TYPE.
	for _, fam := range []string{
		"ipg_uptime_seconds", "ipg_grammars", "ipg_http_requests_total",
		"ipg_parse_requests_total", "ipg_http_rejected_total",
		"ipg_parses_served_total", "ipg_states_expanded_total",
		"ipg_states_invalidated_total", "ipg_rule_updates_total",
		"ipg_engine_reprobes_total", "ipg_admission_rejected_total",
		"ipg_inflight_parses", "ipg_table_states",
		"ipg_parse_latency_seconds", "ipg_grammar_snapshot_saves_total",
		"ipg_snapshot_saves_total", "ipg_snapshot_restores_total",
		"ipg_snapshot_rejected_total", "ipg_snapshot_errors_total",
		"ipg_trace_enabled", "ipg_trace_started_total", "ipg_trace_sampled_total",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing", fam)
		}
	}

	for _, line := range []string{
		`ipg_parses_served_total{grammar="bools",engine="glr"} 3`,
		`ipg_parse_latency_seconds_count{grammar="bools",engine="glr"} 3`,
		`ipg_trace_enabled 1`,
		`ipg_trace_sampled_total 3`,
		`ipg_snapshot_enabled 0`,
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("missing sample %q", line)
		}
	}

	// The histogram's +Inf bucket must equal its count (cumulative).
	if !strings.Contains(body, `ipg_parse_latency_seconds_bucket{grammar="bools",engine="glr",le="+Inf"} 3`) {
		t.Error("latency histogram +Inf bucket != count")
	}
}

// TestTraceEndpoint drives sampled and slow parses through the HTTP
// front end and reads them back from /v1/trace and the per-grammar
// variant: spans carry grammar, engine, request ID and a stage
// breakdown.
func TestTraceEndpoint(t *testing.T) {
	s := New(nil)
	// Sample everything and treat everything as slow, so both retention
	// paths are exercised by the same requests.
	s.SetTracer(obs.NewTracer(obs.TracerConfig{SampleEvery: 1, SlowThreshold: time.Nanosecond}))
	if rec := doReq(t, s, "PUT", "/v1/grammars/bools", obsBoolSrc); rec.Code != 201 {
		t.Fatalf("register: %d %s", rec.Code, rec.Body)
	}
	req := httptest.NewRequest("POST", "/v1/grammars/bools/parse", strings.NewReader(`{"input":"true or false","trees":true,"render":true}`))
	req.Header.Set("X-Request-Id", "req-test-1")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("parse: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Request-Id"); got != "req-test-1" {
		t.Errorf("request id not echoed: %q", got)
	}

	var out TraceResponse
	rec2 := doReq(t, s, "GET", "/v1/trace", "")
	if err := json.Unmarshal(rec2.Body.Bytes(), &out); err != nil {
		t.Fatalf("/v1/trace: %v (%s)", err, rec2.Body)
	}
	if !out.Enabled || out.Started == 0 || len(out.Spans) == 0 {
		t.Fatalf("trace response: %+v", out)
	}
	sp := out.Spans[0]
	if sp.Grammar != "bools" || sp.Engine != "glr" {
		t.Errorf("span attribution: %+v", sp)
	}
	if sp.RequestID != "req-test-1" {
		t.Errorf("span request id = %q, want req-test-1", sp.RequestID)
	}
	if !sp.Sampled || !sp.Slow {
		t.Errorf("span retention flags: %+v", sp)
	}
	if !sp.Accepted {
		t.Errorf("span outcome: %+v", sp)
	}
	// The lifecycle must attribute admit, tokenize, table work and
	// render (trees+render were requested, and SampleEvery=1 guarantees
	// the span observed this exact request).
	for _, stage := range []string{"admit", "tokenize", "table"} {
		if _, ok := sp.Stages[stage]; !ok {
			t.Errorf("span stages missing %q: %v", stage, sp.Stages)
		}
	}

	// The per-grammar endpoint filters.
	var byGrammar TraceResponse
	rec3 := doReq(t, s, "GET", "/v1/grammars/bools/trace", "")
	if err := json.Unmarshal(rec3.Body.Bytes(), &byGrammar); err != nil {
		t.Fatal(err)
	}
	if len(byGrammar.Spans) == 0 {
		t.Error("per-grammar trace empty")
	}
	for _, sp := range byGrammar.Spans {
		if sp.Grammar != "bools" {
			t.Errorf("foreign span in per-grammar trace: %+v", sp)
		}
	}
	if rec := doReq(t, s, "GET", "/v1/grammars/nosuch/trace", ""); rec.Code != 404 {
		t.Errorf("trace for unknown grammar: %d", rec.Code)
	}
}

// TestTraceDisabledByDefault pins that a server without SetTracer
// serves an empty, well-formed /v1/trace instead of failing.
func TestTraceDisabledByDefault(t *testing.T) {
	s := New(nil)
	var out TraceResponse
	rec := doReq(t, s, "GET", "/v1/trace", "")
	if rec.Code != 200 {
		t.Fatalf("/v1/trace without tracer: %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Enabled || out.Spans == nil || len(out.Spans) != 0 {
		t.Errorf("disabled trace response: %+v", out)
	}
}

// TestLatencyJSONShape is the table-driven pin on latency rendering:
// an entry that has served nothing omits its "latency" key entirely
// (not null), /v1/stats omits "latency_by_engine" entirely, and both
// appear with counts once a request has been served. Consumers key on
// presence, so the shape is part of the API.
func TestLatencyJSONShape(t *testing.T) {
	tests := []struct {
		name       string
		parses     int
		wantEntry  bool // "latency" key present in GET /v1/grammars/{name}
		wantEngine bool // "latency_by_engine" key present in GET /v1/stats
	}{
		{"no requests served", 0, false, false},
		{"one request", 1, true, true},
		{"several requests", 4, true, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := New(nil)
			if rec := doReq(t, s, "PUT", "/v1/grammars/bools", obsBoolSrc); rec.Code != 201 {
				t.Fatalf("register: %d %s", rec.Code, rec.Body)
			}
			for i := 0; i < tt.parses; i++ {
				if rec := doReq(t, s, "POST", "/v1/grammars/bools/parse", `{"input":"true"}`); rec.Code != 200 {
					t.Fatalf("parse: %d %s", rec.Code, rec.Body)
				}
			}

			var entry map[string]json.RawMessage
			rec := doReq(t, s, "GET", "/v1/grammars/bools", "")
			if err := json.Unmarshal(rec.Body.Bytes(), &entry); err != nil {
				t.Fatal(err)
			}
			raw, present := entry["latency"]
			if present != tt.wantEntry {
				t.Errorf("entry latency key present = %v, want %v (%s)", present, tt.wantEntry, rec.Body)
			}
			if present {
				if string(raw) == "null" {
					t.Error("entry latency rendered as null; must be omitted or an object")
				}
				var lat LatencyStats
				if err := json.Unmarshal(raw, &lat); err != nil {
					t.Fatal(err)
				}
				if lat.Count != uint64(tt.parses) {
					t.Errorf("latency count = %d, want %d", lat.Count, tt.parses)
				}
			}

			var stats map[string]json.RawMessage
			rec = doReq(t, s, "GET", "/v1/stats", "")
			if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
				t.Fatal(err)
			}
			raw, present = stats["latency_by_engine"]
			if present != tt.wantEngine {
				t.Errorf("latency_by_engine present = %v, want %v (%s)", present, tt.wantEngine, rec.Body)
			}
			if present && string(raw) == "null" {
				t.Error("latency_by_engine rendered as null; must be omitted or an object")
			}
		})
	}
}

// TestEntryInfoObservabilityCounters checks the new per-entry counters
// surface through the JSON API: snapshot saves and auto-engine
// re-probes.
func TestEntryInfoObservabilityCounters(t *testing.T) {
	store, err := snapshot.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	reg.SetSnapshotStore(store)
	s := New(reg)
	if rec := doReq(t, s, "PUT", "/v1/grammars/bools", obsBoolSrc); rec.Code != 201 {
		t.Fatalf("register: %d %s", rec.Code, rec.Body)
	}
	if rec := doReq(t, s, "POST", "/v1/grammars/bools/snapshot", ""); rec.Code != 200 {
		t.Fatalf("snapshot: %d %s", rec.Code, rec.Body)
	}
	var info EntryInfo
	rec := doReq(t, s, "GET", "/v1/grammars/bools", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSaves != 1 {
		t.Errorf("snapshot_saves_total = %d, want 1", info.SnapshotSaves)
	}
	if info.EngineReprobes != 0 {
		t.Errorf("engine_reprobes_total = %d for explicit engine, want 0", info.EngineReprobes)
	}
}

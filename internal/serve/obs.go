package serve

import (
	"net/http"
	"strconv"
	"time"

	"ipg/internal/cancel"
	"ipg/internal/faultinject"
	"ipg/internal/obs"
	"ipg/internal/registry"
)

// This file is the serve layer's observability surface: the /readyz
// probe, the hand-rolled Prometheus /metrics exposition and the
// /v1/trace span endpoints. All families are gathered on each scrape
// from counters the registry and engines already keep — the exposition
// holds no state of its own.

// ---- readiness ----

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "starting",
			"reason": "grammar preload (including snapshot restores) not complete",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ready",
		"grammars": s.reg.Len(),
	})
}

// ---- /metrics ----

// latencyBoundsSeconds are the upper bounds of the registry's
// power-of-two latency buckets, in seconds; the last registry bucket is
// the overflow and maps to +Inf.
var latencyBoundsSeconds = func() []float64 {
	bounds := make([]float64, registry.LatencyBuckets-1)
	for i := range bounds {
		bounds[i] = float64(registry.LatencyBucketBound(i)) / 1e6
	}
	return bounds
}()

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)

	// Service-wide families.
	p.Family("ipg_uptime_seconds", obs.TypeGauge,
		"Seconds since the server started.").
		Sample(time.Since(s.start).Seconds())
	p.Family("ipg_grammars", obs.TypeGauge,
		"Registered grammars currently being served.").
		Sample(float64(s.reg.Len()))
	p.Family("ipg_grammars_registered_total", obs.TypeCounter,
		"Successful grammar registrations, including replacements.").
		Sample(float64(s.reg.Registered()))
	p.Family("ipg_http_requests_total", obs.TypeCounter,
		"HTTP requests received.").
		Sample(float64(s.requests.Load()))
	p.Family("ipg_parse_requests_total", obs.TypeCounter,
		"Single-sentence parse requests.").
		Sample(float64(s.parses.Load()))
	p.Family("ipg_batch_sentences_total", obs.TypeCounter,
		"Sentences submitted through batch requests.").
		Sample(float64(s.batchSentences.Load()))
	p.Family("ipg_http_rejected_total", obs.TypeCounter,
		"Requests refused with 429 by admission control (concurrency, forest size or rate limits).").
		Sample(float64(s.rejected429.Load()))

	// Per-grammar families, labeled by grammar and the concrete engine
	// serving it. Every entry appears in every family, including at 0,
	// so dashboards see series from the first scrape.
	entries := s.reg.Entries()
	stats := make([]registry.Stats, 0, len(entries))
	for _, e := range entries {
		stats = append(stats, e.Stats())
	}
	perGrammar := func(name string, typ obs.MetricType, help string, value func(registry.Stats) float64) {
		f := p.Family(name, typ, help)
		for _, st := range stats {
			f.Sample(value(st), "grammar", st.Name, "engine", st.Engine.String())
		}
	}
	perGrammar("ipg_parses_served_total", obs.TypeCounter,
		"Parses served per grammar.",
		func(st registry.Stats) float64 { return float64(st.Counters.ParsesServed) })
	perGrammar("ipg_states_expanded_total", obs.TypeCounter,
		"Lazy table states expanded by need (the paper's incremental generation).",
		func(st registry.Stats) float64 { return float64(st.Counters.StatesExpanded) })
	perGrammar("ipg_states_invalidated_total", obs.TypeCounter,
		"Table states invalidated by grammar modifications.",
		func(st registry.Stats) float64 { return float64(st.Counters.StatesInvalidated) })
	perGrammar("ipg_action_calls_total", obs.TypeCounter,
		"ACTION consultations (Earley items for the table-free backend).",
		func(st registry.Stats) float64 { return float64(st.Counters.ActionCalls) })
	perGrammar("ipg_rule_updates_total", obs.TypeCounter,
		"Incremental rule additions and deletions applied.",
		func(st registry.Stats) float64 { return float64(st.RuleUpdates) })
	perGrammar("ipg_table_states_repaired_total", obs.TypeCounter,
		"Table states spliced in place by incremental repair on rule updates.",
		func(st registry.Stats) float64 { return float64(st.Counters.StatesRepaired) })
	perGrammar("ipg_table_repair_fallbacks_total", obs.TypeCounter,
		"Rule updates whose table repair declined and regenerated from scratch.",
		func(st registry.Stats) float64 { return float64(st.Counters.RepairFallbacks) })
	perGrammar("ipg_engine_reprobes_total", obs.TypeCounter,
		"Auto-engine re-probe passes (churn-aware backend reselection).",
		func(st registry.Stats) float64 { return float64(st.EngineReprobes) })
	perGrammar("ipg_admission_rejected_total", obs.TypeCounter,
		"Parses refused by the entry's admission control.",
		func(st registry.Stats) float64 { return float64(st.AdmissionRejected) })
	perGrammar("ipg_inflight_parses", obs.TypeGauge,
		"Parses currently inside the entry.",
		func(st registry.Stats) float64 { return float64(st.Inflight) })
	perGrammar("ipg_grammar_snapshot_saves_total", obs.TypeCounter,
		"Table snapshots persisted for the grammar.",
		func(st registry.Stats) float64 { return float64(st.SnapshotSaves) })
	perGrammar("ipg_grammar_restored_from_snapshot", obs.TypeGauge,
		"1 when the entry resumed its table from a snapshot at registration.",
		func(st registry.Stats) float64 {
			if st.Restored {
				return 1
			}
			return 0
		})
	perGrammar("ipg_parse_panics_total", obs.TypeCounter,
		"Engine panics recovered into structured errors.",
		func(st registry.Stats) float64 { return float64(st.Panics) })
	perGrammar("ipg_breaker_trips_total", obs.TypeCounter,
		"Circuit-breaker transitions into the open state.",
		func(st registry.Stats) float64 { return float64(st.Breaker.Trips) })
	perGrammar("ipg_breaker_rejected_total", obs.TypeCounter,
		"Requests refused while the grammar's circuit breaker was open.",
		func(st registry.Stats) float64 { return float64(st.Breaker.Rejected) })

	// Breaker state as a one-hot gauge over the three states, so
	// dashboards can plot transitions without mapping enum values.
	brkState := p.Family("ipg_breaker_state", obs.TypeGauge,
		"1 for the grammar's current circuit-breaker state (closed, open, half_open).")
	for _, st := range stats {
		for _, state := range []string{"closed", "open", "half_open"} {
			v := 0.0
			if st.Breaker.State == state {
				v = 1
			}
			brkState.Sample(v, "grammar", st.Name, "engine", st.Engine.String(), "state", state)
		}
	}

	// Cancellations by reason. Reason 0 ("none") is skipped: it never
	// counts a completed abort.
	canceled := p.Family("ipg_parses_canceled_total", obs.TypeCounter,
		"Parses aborted mid-drive, by cancellation reason.")
	for _, st := range stats {
		for reason := 1; reason < int(cancel.NumReasons); reason++ {
			canceled.Sample(float64(st.Canceled[reason]),
				"grammar", st.Name, "engine", st.Engine.String(),
				"reason", cancel.Reason(reason).String())
		}
	}

	states := p.Family("ipg_table_states", obs.TypeGauge,
		"Parse-table states by class (complete, initial, dirty).")
	for _, st := range stats {
		labels := func(class string) []string {
			return []string{"grammar", st.Name, "engine", st.Engine.String(), "class", class}
		}
		states.Sample(float64(st.Complete), labels("complete")...)
		states.Sample(float64(st.Initial), labels("initial")...)
		states.Sample(float64(st.Dirty), labels("dirty")...)
	}

	lat := p.Family("ipg_parse_latency_seconds", obs.TypeHistogram,
		"Request latency per grammar (power-of-two buckets).")
	for _, st := range stats {
		h := st.Latency
		lat.Histogram(latencyBoundsSeconds, h.Buckets[:len(latencyBoundsSeconds)],
			h.Buckets[registry.LatencyBuckets-1], float64(h.SumUS)/1e6, h.Count,
			"grammar", st.Name, "engine", st.Engine.String())
	}

	repairLat := p.Family("ipg_table_repair_seconds", obs.TypeHistogram,
		"Rule-update latency per grammar: incremental table repairs and fallback regenerations (power-of-two buckets).")
	for _, st := range stats {
		h := st.RepairLatency
		repairLat.Histogram(latencyBoundsSeconds, h.Buckets[:len(latencyBoundsSeconds)],
			h.Buckets[registry.LatencyBuckets-1], float64(h.SumUS)/1e6, h.Count,
			"grammar", st.Name, "engine", st.Engine.String())
	}

	perGrammar("ipg_completions_total", obs.TypeCounter,
		"Completion requests answered (accept-set queries and cursor operations).",
		func(st registry.Stats) float64 { return float64(st.Completions) })
	completeLat := p.Family("ipg_completion_latency_seconds", obs.TypeHistogram,
		"Completion request latency per grammar (power-of-two buckets).")
	for _, st := range stats {
		h := st.CompleteLatency
		completeLat.Histogram(latencyBoundsSeconds, h.Buckets[:len(latencyBoundsSeconds)],
			h.Buckets[registry.LatencyBuckets-1], float64(h.SumUS)/1e6, h.Count,
			"grammar", st.Name, "engine", st.Engine.String())
	}

	// Snapshot subsystem — emitted even when disabled, so scrapers can
	// rely on the families existing.
	snap := s.reg.SnapshotStats()
	p.Family("ipg_snapshot_enabled", obs.TypeGauge,
		"1 when a snapshot store is configured.").
		Sample(boolGauge(snap.Enabled))
	p.Family("ipg_snapshot_saves_total", obs.TypeCounter,
		"Table snapshots written.").Sample(float64(snap.Saves))
	p.Family("ipg_snapshot_restores_total", obs.TypeCounter,
		"Warm table restores at registration.").Sample(float64(snap.Restores))
	p.Family("ipg_snapshot_rejected_total", obs.TypeCounter,
		"Snapshots rejected as stale (grammar hash mismatch).").Sample(float64(snap.Rejected))
	p.Family("ipg_snapshot_errors_total", obs.TypeCounter,
		"Snapshot read/write failures.").Sample(float64(snap.Errors))
	p.Family("ipg_snapshot_retries_total", obs.TypeCounter,
		"Snapshot save attempts re-tried after a write error.").Sample(float64(snap.Retries))

	// Resilience subsystem: drain, memory budget, load shedder. Emitted
	// even at rest so alert rules can rely on the families existing.
	res := s.reg.Resilience()
	p.Family("ipg_draining", obs.TypeGauge,
		"1 while the service is draining (refusing new work before shutdown).").
		Sample(boolGauge(res.Draining))
	p.Family("ipg_drain_rejected_total", obs.TypeCounter,
		"Requests refused because the service was draining.").
		Sample(float64(res.DrainRejected))
	p.Family("ipg_mem_budget_bytes", obs.TypeGauge,
		"Configured retained-memory budget (0 = unlimited).").
		Sample(float64(res.MemBudgetBytes))
	p.Family("ipg_mem_usage_bytes", obs.TypeGauge,
		"Estimated retained memory at the last refresh (tables and session charts).").
		Sample(float64(res.MemUsageBytes))
	p.Family("ipg_mem_rejected_total", obs.TypeCounter,
		"Requests refused because the memory budget was exhausted.").
		Sample(float64(res.MemRejected))
	p.Family("ipg_shed_active", obs.TypeGauge,
		"1 while the adaptive load shedder is dropping a fraction of requests.").
		Sample(boolGauge(res.ShedActive))
	p.Family("ipg_shed_total", obs.TypeCounter,
		"Requests dropped by the adaptive load shedder.").
		Sample(float64(res.Shed))

	// Fault injection: one series per armed site (none in production).
	injected := p.Family("ipg_fault_injections_total", obs.TypeCounter,
		"Faults fired by the chaos-testing injection harness, per armed site.")
	for _, sc := range faultinject.Stats() {
		injected.Sample(float64(sc.Fired), "site", sc.Site, "kind", sc.Kind.String())
	}

	// Document sessions. Counters include closed sessions' tallies, so
	// they stay monotone across idle eviction.
	sess := s.reg.SessionTotals()
	p.Family("ipg_sessions_open", obs.TypeGauge,
		"Document sessions currently open.").Sample(float64(sess.Open))
	p.Family("ipg_sessions_opened_total", obs.TypeCounter,
		"Document sessions opened.").Sample(float64(sess.Opened))
	p.Family("ipg_sessions_evicted_total", obs.TypeCounter,
		"Sessions reclaimed by the idle janitor.").Sample(float64(sess.Evicted))
	p.Family("ipg_sessions_closed_total", obs.TypeCounter,
		"Sessions closed explicitly or by entry removal/replacement.").Sample(float64(sess.Closed))
	p.Family("ipg_session_splices_total", obs.TypeCounter,
		"Edits applied to session documents.").Sample(float64(sess.Splices))
	p.Family("ipg_session_reparses_total", obs.TypeCounter,
		"Session reparses that did chart work (incremental or full).").Sample(float64(sess.Reparses))
	p.Family("ipg_session_full_reparses_total", obs.TypeCounter,
		"Session reparses that could not reuse retained state.").Sample(float64(sess.FullReparses))
	p.Family("ipg_reparse_sets_reused_total", obs.TypeCounter,
		"Earley item sets reused verbatim across session reparses.").Sample(float64(sess.SetsReused))
	p.Family("ipg_reparse_sets_rebuilt_total", obs.TypeCounter,
		"Earley item sets re-expanded by session reparses.").Sample(float64(sess.SetsRebuilt))

	// Completion cursors. Counters include closed cursors' tallies, so
	// they stay monotone across idle eviction.
	comp := s.reg.CompletionTotals()
	p.Family("ipg_completion_cursors_open", obs.TypeGauge,
		"Completion cursors currently open.").Sample(float64(comp.Open))
	p.Family("ipg_completion_cursors_opened_total", obs.TypeCounter,
		"Completion cursors opened.").Sample(float64(comp.Opened))
	p.Family("ipg_completion_cursors_evicted_total", obs.TypeCounter,
		"Completion cursors reclaimed by the idle janitor.").Sample(float64(comp.Evicted))
	p.Family("ipg_completion_cursors_closed_total", obs.TypeCounter,
		"Completion cursors closed explicitly or by entry removal/replacement.").Sample(float64(comp.Closed))
	p.Family("ipg_completion_queries_total", obs.TypeCounter,
		"Accept-set queries answered through retained cursors.").Sample(float64(comp.Queries))
	p.Family("ipg_completion_feeds_total", obs.TypeCounter,
		"Tokens fed into retained completion cursors.").Sample(float64(comp.Feeds))

	// Trace subsystem.
	ts := s.tracer.Stats()
	p.Family("ipg_trace_enabled", obs.TypeGauge,
		"1 when parse-lifecycle tracing (sampling or slow capture) is on.").
		Sample(boolGauge(s.tracer.Enabled()))
	p.Family("ipg_trace_started_total", obs.TypeCounter,
		"Parses considered by the tracer while enabled.").Sample(float64(ts.Started))
	p.Family("ipg_trace_sampled_total", obs.TypeCounter,
		"Spans retained by the 1-in-N sampler.").Sample(float64(ts.Captured))
	p.Family("ipg_trace_slow_total", obs.TypeCounter,
		"Spans retained for crossing the slow-parse threshold.").Sample(float64(ts.Slow))

	if err := p.Flush(); err != nil {
		s.log().Warn("metrics exposition failed", "err", err)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ---- /v1/trace ----

// SpanInfo is the JSON rendering of one retained parse-lifecycle span.
type SpanInfo struct {
	ID        uint64 `json:"id"`
	RequestID string `json:"request_id,omitempty"`
	Grammar   string `json:"grammar"`
	Engine    string `json:"engine"`
	Start     string `json:"start"`
	TotalUS   int64  `json:"total_us"`
	// Stages breaks the total down by lifecycle stage, in microseconds;
	// stages the parse never entered are omitted. Time between stages
	// (lock waits, scheduling) appears only in the total.
	Stages   map[string]int64 `json:"stages_us,omitempty"`
	Accepted bool             `json:"accepted"`
	Error    string           `json:"error,omitempty"`
	// RepairedStates/RepairFallbacks describe table repairs absorbed by
	// the span (rule-update requests); omitted for plain parses.
	RepairedStates  int `json:"repaired_states,omitempty"`
	RepairFallbacks int `json:"repair_fallbacks,omitempty"`
	// Canceled names the cancellation reason when the parse was aborted
	// mid-drive; Panicked marks parses recovered from an engine panic.
	Canceled string `json:"canceled,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`
	// Sampled marks spans the 1-in-N sampler kept; Slow marks
	// slow-threshold outliers. A span can be both.
	Sampled bool `json:"sampled"`
	Slow    bool `json:"slow"`
}

// TraceResponse is the GET /v1/trace (and per-grammar) response.
type TraceResponse struct {
	// Enabled reports whether any capture is on; SampleEvery and
	// SlowThresholdUS echo the tracer configuration.
	Enabled         bool  `json:"enabled"`
	SampleEvery     int   `json:"sample_every,omitempty"`
	SlowThresholdUS int64 `json:"slow_threshold_us,omitempty"`
	// Started/Sampled/Slow are the tracer's lifetime counters.
	Started uint64 `json:"started_total"`
	Sampled uint64 `json:"sampled_total"`
	Slow    uint64 `json:"slow_total"`
	// Spans are the retained spans, newest first.
	Spans []SpanInfo `json:"spans"`
}

func spanInfoOf(sp obs.Span) SpanInfo {
	info := SpanInfo{
		ID:        sp.ID,
		RequestID: sp.RequestID,
		Grammar:   sp.Grammar,
		Engine:    sp.Engine,
		Start:     sp.Start.UTC().Format(time.RFC3339Nano),
		TotalUS:   sp.Total.Microseconds(),
		Accepted:  sp.Accepted,
		Error:     sp.Err,
		Canceled:  sp.Canceled,
		Panicked:  sp.Panicked,
		Sampled:   sp.Sampled,
		Slow:      sp.Slow,

		RepairedStates:  sp.RepairedStates,
		RepairFallbacks: sp.RepairFallbacks,
	}
	for st, d := range sp.Stages {
		if d > 0 {
			if info.Stages == nil {
				info.Stages = make(map[string]int64, len(sp.Stages))
			}
			info.Stages[obs.Stage(st).String()] = d.Microseconds()
		}
	}
	return info
}

// traceMaxSpans bounds one trace response unless ?max= narrows it.
const traceMaxSpans = 256

func (s *Server) writeTrace(w http.ResponseWriter, r *http.Request, grammar string) {
	max := traceMaxSpans
	if v := r.URL.Query().Get("max"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n < traceMaxSpans {
			max = n
		}
	}
	out := TraceResponse{
		Enabled:         s.tracer.Enabled(),
		SampleEvery:     s.tracer.SampleEvery(),
		SlowThresholdUS: s.tracer.SlowThreshold().Microseconds(),
		Spans:           []SpanInfo{},
	}
	ts := s.tracer.Stats()
	out.Started, out.Sampled, out.Slow = ts.Started, ts.Captured, ts.Slow
	for _, sp := range s.tracer.Snapshot(grammar, max) {
		out.Spans = append(out.Spans, spanInfoOf(sp))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.writeTrace(w, r, "")
}

func (s *Server) handleGrammarTrace(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	s.writeTrace(w, r, e.Name())
}

// Completion endpoint: the constrained-decoding surface. One route —
// POST /v1/grammars/{name}/complete — serves three request shapes:
// a one-shot accept-set query (prefix + once), opening a retained
// cursor (prefix alone), and batched operations against a retained
// cursor (cursor id + restore/feed/candidates/close). Cursors are
// registry.CompletionSessions: admission-gated, capped, idle-evicted.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"ipg/internal/engine"
	"ipg/internal/grammar"
	"ipg/internal/obs"
	"ipg/internal/registry"
)

// CompleteRequest is the POST /v1/grammars/{name}/complete body.
// Exactly one of Prefix and Cursor must be set.
type CompleteRequest struct {
	// Prefix is the viable prefix to query, resolved like parse input
	// (source text for SDF grammars, whitespace-separated terminal
	// names otherwise). A pointer so the empty prefix — "what may a
	// sentence start with" — is distinguishable from absent.
	Prefix *string `json:"prefix,omitempty"`
	// Once answers the prefix query without retaining a cursor.
	Once bool `json:"once,omitempty"`
	// Cursor resumes a retained cursor by id instead of shipping a
	// prefix.
	Cursor string `json:"cursor,omitempty"`
	// Restore rewinds the cursor to a checkpoint (a position in
	// [0, pos]) before feeding.
	Restore *int `json:"restore,omitempty"`
	// Feed advances the cursor by these tokens (resolved like parse
	// input) after the restore.
	Feed string `json:"feed,omitempty"`
	// Candidates asks, for each terminal name, whether it is in the
	// accept set — the token-masking fast path.
	Candidates []string `json:"candidates,omitempty"`
	// Close releases the cursor after answering.
	Close bool `json:"close,omitempty"`
}

// CompleteResponse reports one completion operation's accept set.
type CompleteResponse struct {
	Grammar string `json:"grammar"`
	Engine  string `json:"engine"`
	// Cursor is the resumable cursor id (absent for one-shot queries).
	Cursor string `json:"cursor,omitempty"`
	// Pos is the cursor position — tokens fed so far.
	Pos int `json:"pos"`
	// Version is the grammar version the accept set was computed at.
	Version uint64 `json:"version"`
	// Accepts lists the terminals that may come next, in vocabulary
	// order; Bitset is the same set as hex-encoded bytes over the
	// vocabulary (bit i of the set is byte i/8, bit i%8).
	Accepts []string `json:"accepts"`
	Bitset  string   `json:"bitset"`
	// Complete reports the prefix is a complete sentence (the end
	// marker is accepted).
	Complete bool `json:"complete"`
	// Vocab is the stable terminal vocabulary bitsets are indexed by,
	// included when a cursor is opened (cache it per grammar version).
	Vocab []string `json:"vocab,omitempty"`
	// Candidates answers the request's candidate probes.
	Candidates map[string]bool `json:"candidates,omitempty"`
	// Closed reports the cursor was released by this request.
	Closed     bool  `json:"closed,omitempty"`
	DurationUS int64 `json:"duration_us"`
}

// writeCompleteError maps completion failures onto HTTP statuses:
// non-viable prefixes and rejected feeds to 422, stale cursors to 409,
// out-of-range restores to 416, unknown cursor ids to 404, the cursor
// cap to 429 (with Retry-After), over-long prefixes to 413 and
// backends without the capability to 409; everything else — admission,
// drain, quarantine — falls through to the shared parse classifier.
func (s *Server) writeCompleteError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrRejected):
		writeError(w, http.StatusUnprocessableEntity, err)
	case errors.Is(err, engine.ErrCursorStale):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, engine.ErrBadCheckpoint):
		writeError(w, http.StatusRequestedRangeNotSatisfiable, err)
	case errors.Is(err, engine.ErrNoComplete):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, registry.ErrCursorLimit):
		s.rejected429.Add(1)
		writeErrorRetry(w, http.StatusTooManyRequests, 1, err)
	case errors.Is(err, registry.ErrPrefixTooLong):
		writeError(w, http.StatusRequestEntityTooLarge, err)
	case errors.Is(err, registry.ErrNoCursor):
		writeError(w, http.StatusNotFound, err)
	default:
		s.writeParseError(w, err)
	}
}

// rejAt annotates a rejection with the offending token index (-1 =
// no index known).
func rejAt(err error, idx int) error {
	if idx >= 0 && errors.Is(err, engine.ErrRejected) {
		return fmt.Errorf("token %d: %w", idx, err)
	}
	return err
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req CompleteRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	switch {
	case req.Cursor != "" && req.Prefix != nil:
		writeError(w, http.StatusBadRequest, errors.New("prefix and cursor are mutually exclusive"))
		return
	case req.Cursor == "" && req.Prefix == nil:
		writeError(w, http.StatusBadRequest, errors.New("request needs a prefix or a cursor id"))
		return
	case req.Once && req.Cursor != "":
		writeError(w, http.StatusBadRequest, errors.New("once applies to prefix requests only"))
		return
	}
	start := time.Now()
	tr := s.tracer.StartParse(e.Name(), e.EngineKind().String(), obs.RequestID(r.Context()))
	out, err := s.completeOp(e, &req, tr)
	if err != nil {
		s.finishTrace(tr, false, err)
		s.writeCompleteError(w, err)
		return
	}
	out.DurationUS = time.Since(start).Microseconds()
	s.finishTrace(tr, true, nil)
	writeJSON(w, http.StatusOK, out)
}

// completeOp dispatches the three request shapes.
func (s *Server) completeOp(e *registry.Entry, req *CompleteRequest, tr *obs.ParseTrace) (CompleteResponse, error) {
	out := CompleteResponse{Grammar: e.Name(), Engine: e.EngineKind().String()}
	var set engine.TermSet

	if req.Cursor != "" {
		cs, ok := s.reg.Completion(req.Cursor)
		if !ok || cs.Entry() != e {
			return out, fmt.Errorf("%w: %q (unknown, closed or evicted)", registry.ErrNoCursor, req.Cursor)
		}
		restore := -1
		if req.Restore != nil {
			restore = *req.Restore
		}
		var feed []grammar.Symbol
		if req.Feed != "" {
			toks, err := cs.FeedTokens(req.Feed)
			if err != nil {
				return out, err
			}
			feed = toks
		}
		rejIdx, err := cs.Apply(restore, feed, &set, tr)
		if err != nil {
			return out, rejAt(err, rejIdx)
		}
		out.Cursor = cs.ID()
		out.Pos = cs.Pos()
		out.fillAccepts(&set, req.Candidates)
		if req.Close {
			s.reg.CloseCompletion(cs.ID())
			out.Closed = true
		}
		return out, nil
	}

	if req.Once {
		tokens, rejPos, err := s.reg.CompleteOnce(e, *req.Prefix, &set, tr)
		if err != nil {
			return out, rejAt(err, rejPos)
		}
		out.Pos = tokens
		out.fillAccepts(&set, req.Candidates)
		return out, nil
	}

	cs, rejPos, err := s.reg.OpenCompletion(e, *req.Prefix, tr)
	if err != nil {
		return out, rejAt(err, rejPos)
	}
	if _, err := cs.Apply(-1, nil, &set, tr); err != nil {
		s.reg.CloseCompletion(cs.ID())
		return out, err
	}
	out.Cursor = cs.ID()
	out.Pos = cs.Pos()
	out.fillAccepts(&set, req.Candidates)
	out.Vocab = set.Vocab().Names()
	if req.Close {
		s.reg.CloseCompletion(cs.ID())
		out.Closed = true
	}
	return out, nil
}

// fillAccepts renders the accept set into the wire shape and answers
// the candidate probes.
func (out *CompleteResponse) fillAccepts(set *engine.TermSet, candidates []string) {
	out.Version = set.Vocab().Version
	out.Accepts = set.AppendNames(make([]string, 0, set.Count()))
	out.Bitset = set.Hex()
	out.Complete = set.Has(grammar.EOF)
	if len(candidates) > 0 {
		in := make(map[string]bool, len(out.Accepts))
		for _, n := range out.Accepts {
			in[n] = true
		}
		out.Candidates = make(map[string]bool, len(candidates))
		for _, c := range candidates {
			out.Candidates[c] = in[c]
		}
	}
}

func (s *Server) handleCompletionList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"completions": s.reg.CompletionStats()})
}

func (s *Server) handleCompletionStat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cs, ok := s.reg.Completion(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("%w: %q (unknown, closed or evicted)", registry.ErrNoCursor, id))
		return
	}
	writeJSON(w, http.StatusOK, cs.Stat())
}

func (s *Server) handleCompletionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.reg.CloseCompletion(id) {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("%w: %q (unknown, closed or evicted)", registry.ErrNoCursor, id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"closed": true})
}

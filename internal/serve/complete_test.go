package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ipg/internal/registry"
)

// envelope decodes the uniform error body, failing the test when the
// response does not carry the {"error": {code, message}} shape.
func envelope(t *testing.T, body map[string]any) map[string]any {
	t.Helper()
	detail, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("error body %v is not the uniform envelope", body)
	}
	if _, ok := detail["code"].(string); !ok {
		t.Fatalf("error envelope %v has no code", detail)
	}
	if msg, _ := detail["message"].(string); msg == "" {
		t.Fatalf("error envelope %v has no message", detail)
	}
	return detail
}

// TestErrorEnvelope pins the uniform error shape across handlers and
// status classes: every non-2xx response is
// {"error": {"code", "message", "retry_after_s"?}}.
func TestErrorEnvelope(t *testing.T) {
	s := New(nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	mustRegister(t, ts, "bool", boolSrc)

	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantCode   string
		wantRetry  bool
	}{
		{"unknown grammar", "GET", "/v1/grammars/nope", nil,
			http.StatusNotFound, "not_found", false},
		{"bad body", "POST", "/v1/grammars/bool/parse", "{not json",
			http.StatusBadRequest, "bad_request", false},
		{"bad register", "PUT", "/v1/grammars/x", map[string]any{"source": "::= broken"},
			http.StatusUnprocessableEntity, "invalid_input", false},
		{"unknown session", "GET", "/v1/sessions/nope", nil,
			http.StatusNotFound, "not_found", false},
		{"unknown cursor", "GET", "/v1/completions/nope", nil,
			http.StatusNotFound, "not_found", false},
		{"non-viable prefix", "POST", "/v1/grammars/bool/complete",
			map[string]any{"prefix": "true true", "once": true},
			http.StatusUnprocessableEntity, "prefix_rejected", false},
		{"prefix and cursor", "POST", "/v1/grammars/bool/complete",
			map[string]any{"prefix": "true", "cursor": "c-x-1"},
			http.StatusBadRequest, "bad_request", false},
		{"neither prefix nor cursor", "POST", "/v1/grammars/bool/complete",
			map[string]any{}, http.StatusBadRequest, "bad_request", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var body map[string]any
			if raw, ok := tc.body.(string); ok {
				req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(raw))
				if err != nil {
					t.Fatal(err)
				}
				r, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp = r
				body = decodeBody(t, r)
			} else {
				resp, body = do(t, tc.method, ts.URL+tc.path, tc.body)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d %v, want %d", resp.StatusCode, body, tc.wantStatus)
			}
			detail := envelope(t, body)
			if detail["code"] != tc.wantCode {
				t.Errorf("code = %v, want %q", detail["code"], tc.wantCode)
			}
			if _, has := detail["retry_after_s"]; has != tc.wantRetry {
				t.Errorf("retry_after_s presence = %v, want %v (%v)", has, tc.wantRetry, detail)
			}
		})
	}
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	return out
}

func mustRegister(t *testing.T, ts *httptest.Server, name, src string) {
	t.Helper()
	resp, body := do(t, "PUT", ts.URL+"/v1/grammars/"+name, map[string]any{"source": src})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register %s: %d %v", name, resp.StatusCode, body)
	}
}

func TestCompleteOnce(t *testing.T) {
	ts := newTestServer(t)
	mustRegister(t, ts, "bool", boolSrc)

	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"prefix": "true", "once": true, "candidates": []string{"or", "true", "$"}})
	if resp.StatusCode != 200 {
		t.Fatalf("once: %d %v", resp.StatusCode, body)
	}
	if body["cursor"] != nil {
		t.Errorf("once retained a cursor: %v", body)
	}
	if body["pos"].(float64) != 1 || body["complete"] != true {
		t.Errorf("once body: %v", body)
	}
	accepts := body["accepts"].([]any)
	names := make(map[string]bool, len(accepts))
	for _, a := range accepts {
		names[a.(string)] = true
	}
	// "true" is a complete sentence: "and", "or" and EOF may follow.
	if !names["and"] || !names["or"] || !names["$"] || names["true"] {
		t.Errorf("accepts after \"true\" = %v", accepts)
	}
	cand := body["candidates"].(map[string]any)
	if cand["or"] != true || cand["true"] != false || cand["$"] != true {
		t.Errorf("candidates: %v", cand)
	}
	if body["bitset"].(string) == "" {
		t.Errorf("bitset missing: %v", body)
	}

	// No cursor retained.
	_, list := do(t, "GET", ts.URL+"/v1/completions", nil)
	if n := len(list["completions"].([]any)); n != 0 {
		t.Errorf("once left %d cursors open", n)
	}
}

func TestCompleteCursorLifecycle(t *testing.T) {
	ts := newTestServer(t)
	mustRegister(t, ts, "bool", boolSrc)

	// Open with a prefix; the response carries the vocabulary.
	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"prefix": "true or"})
	if resp.StatusCode != 200 {
		t.Fatalf("open: %d %v", resp.StatusCode, body)
	}
	id, _ := body["cursor"].(string)
	if id == "" || body["pos"].(float64) != 2 {
		t.Fatalf("open body: %v", body)
	}
	if body["complete"] != false {
		t.Errorf("\"true or\" reported complete: %v", body)
	}
	vocab := body["vocab"].([]any)
	if len(vocab) == 0 {
		t.Errorf("open response has no vocab: %v", body)
	}

	// The cursor shows up in list and stat.
	_, list := do(t, "GET", ts.URL+"/v1/completions", nil)
	if n := len(list["completions"].([]any)); n != 1 {
		t.Fatalf("open cursors = %d, want 1", n)
	}
	resp, stat := do(t, "GET", ts.URL+"/v1/completions/"+id, nil)
	if resp.StatusCode != 200 || stat["id"] != id || stat["pos"].(float64) != 2 {
		t.Fatalf("stat: %d %v", resp.StatusCode, stat)
	}

	// Feed through the cursor; checkpoint 2 is the open position.
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"cursor": id, "feed": "false and true"})
	if resp.StatusCode != 200 || body["pos"].(float64) != 5 {
		t.Fatalf("feed: %d %v", resp.StatusCode, body)
	}

	// Restore rewinds without reparsing; vocab is not resent.
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"cursor": id, "restore": 2})
	if resp.StatusCode != 200 || body["pos"].(float64) != 2 {
		t.Fatalf("restore: %d %v", resp.StatusCode, body)
	}
	if body["vocab"] != nil {
		t.Errorf("cursor op resent vocab: %v", body)
	}

	// A rejected feed names the offending token and keeps the cursor.
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"cursor": id, "feed": "or"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("rejected feed: %d %v", resp.StatusCode, body)
	}
	if envelope(t, body)["code"] != "prefix_rejected" {
		t.Errorf("rejected feed envelope: %v", body)
	}

	// Out-of-range restore is 416.
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"cursor": id, "restore": 99})
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("bad restore: %d %v", resp.StatusCode, body)
	}
	if envelope(t, body)["code"] != "bad_checkpoint" {
		t.Errorf("bad restore envelope: %v", body)
	}

	// Close through the op body; the cursor is gone afterwards.
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"cursor": id, "feed": "false", "close": true})
	if resp.StatusCode != 200 || body["closed"] != true {
		t.Fatalf("close: %d %v", resp.StatusCode, body)
	}
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"cursor": id})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("closed cursor reuse: %d %v", resp.StatusCode, body)
	}
}

func TestCompleteCursorStaleAfterRuleUpdate(t *testing.T) {
	ts := newTestServer(t)
	mustRegister(t, ts, "bool", boolSrc)

	_, body := do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"prefix": "true"})
	id := body["cursor"].(string)

	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/rules",
		map[string]any{"add": `B ::= "not" B`})
	if resp.StatusCode != 200 {
		t.Fatalf("rules: %d %v", resp.StatusCode, body)
	}

	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"cursor": id})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale cursor: %d %v, want 409", resp.StatusCode, body)
	}
	if envelope(t, body)["code"] != "cursor_stale" {
		t.Errorf("stale envelope: %v", body)
	}

	// Re-opening sees the new rule.
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"prefix": "not true", "once": true})
	if resp.StatusCode != 200 || body["complete"] != true {
		t.Fatalf("reopened prefix with new rule: %d %v", resp.StatusCode, body)
	}

	// Explicit close of the stale cursor still works.
	resp, _ = do(t, "DELETE", ts.URL+"/v1/completions/"+id, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stale close: %d", resp.StatusCode)
	}
}

func TestCompleteCursorLimitsAndEviction(t *testing.T) {
	s := New(nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	mustRegister(t, ts, "bool", boolSrc)
	s.Registry().SetCompletionLimits(registry.CompletionLimits{
		MaxCursors: 1, MaxPrefixTokens: 3, IdleTimeout: time.Minute,
	})

	_, body := do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"prefix": ""})
	id, _ := body["cursor"].(string)
	if id == "" {
		t.Fatalf("open under cap: %v", body)
	}

	// The cap answers 429 with a Retry-After hint in header and body.
	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"prefix": ""})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over cap: %d %v, want 429", resp.StatusCode, body)
	}
	detail := envelope(t, body)
	if detail["code"] != "throttled" || detail["retry_after_s"].(float64) < 1 {
		t.Errorf("cap envelope: %v", detail)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}

	// Over-long feeds are 413 against MaxPrefixTokens.
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"cursor": id, "feed": "true or true or true"})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over token budget: %d %v, want 413", resp.StatusCode, body)
	}
	if envelope(t, body)["code"] != "too_large" {
		t.Errorf("413 envelope: %v", body)
	}

	// Idle eviction reclaims the cursor; its id then answers 404.
	if n := s.Registry().EvictIdleCompletions(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("evicted %d cursors, want 1", n)
	}
	resp, body = do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"cursor": id})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted cursor: %d %v, want 404", resp.StatusCode, body)
	}
}

// TestCompleteWrongGrammar pins that a cursor is only addressable
// through the grammar that opened it.
func TestCompleteWrongGrammar(t *testing.T) {
	ts := newTestServer(t)
	mustRegister(t, ts, "bool", boolSrc)
	mustRegister(t, ts, "other", boolSrc)

	_, body := do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"prefix": "true"})
	id := body["cursor"].(string)

	resp, body := do(t, "POST", ts.URL+"/v1/grammars/other/complete",
		map[string]any{"cursor": id})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-grammar cursor: %d %v, want 404", resp.StatusCode, body)
	}
}

// TestCompleteMetricsFamilies pins the completion metric families into
// the exposition after traffic has flowed.
func TestCompleteMetricsFamilies(t *testing.T) {
	s := New(nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	mustRegister(t, ts, "bool", boolSrc)
	do(t, "POST", ts.URL+"/v1/grammars/bool/complete",
		map[string]any{"prefix": "true", "once": true})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, family := range []string{
		"ipg_completions_total",
		"ipg_completion_latency_seconds",
		"ipg_completion_cursors_open",
		"ipg_completion_cursors_opened_total",
		"ipg_completion_cursors_evicted_total",
		"ipg_completion_cursors_closed_total",
		"ipg_completion_queries_total",
		"ipg_completion_feeds_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(text, `ipg_completions_total{grammar="bool"`) {
		t.Errorf("/metrics missing per-grammar completions sample")
	}
}

// TestSessionStatCanonicalAndAlias pins GET /v1/sessions/{id} as the
// stat endpoint with /stat answering identically for older clients.
func TestSessionStatCanonicalAndAlias(t *testing.T) {
	ts := newTestServer(t)
	mustRegister(t, ts, "bool", boolSrc)

	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/sessions",
		map[string]any{"input": "true or false"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open session: %d %v", resp.StatusCode, body)
	}
	id := body["session"].(map[string]any)["id"].(string)

	resp, canonical := do(t, "GET", ts.URL+"/v1/sessions/"+id, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("canonical stat: %d %v", resp.StatusCode, canonical)
	}
	resp, alias := do(t, "GET", ts.URL+"/v1/sessions/"+id+"/stat", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("alias stat: %d %v", resp.StatusCode, alias)
	}
	// idle_ms ticks between the two requests; compare the rest.
	delete(canonical, "idle_ms")
	delete(alias, "idle_ms")
	if fmt.Sprint(canonical) != fmt.Sprint(alias) {
		t.Errorf("canonical and alias disagree:\n%v\n%v", canonical, alias)
	}
	if canonical["id"] != id || canonical["tokens"].(float64) != 3 {
		t.Errorf("stat body: %v", canonical)
	}
}

package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ipg/internal/registry"
)

// newSessionServer returns a test server plus its registry, with the
// booleans grammar registered on the requested engine.
func newSessionServer(t *testing.T, engineName string) (*httptest.Server, *registry.Registry) {
	t.Helper()
	srv := New(nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, body := do(t, "PUT", ts.URL+"/v1/grammars/bool",
		map[string]any{"source": boolSrc, "engine": engineName})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %v", resp.StatusCode, body)
	}
	return ts, srv.Registry()
}

func openSession(t *testing.T, ts *httptest.Server, input string) (string, map[string]any) {
	t.Helper()
	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/sessions",
		map[string]any{"input": input})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open session: %d %v", resp.StatusCode, body)
	}
	sess := body["session"].(map[string]any)
	return sess["id"].(string), body
}

func TestSessionLifecycle(t *testing.T) {
	ts, _ := newSessionServer(t, "earley")
	id, body := openSession(t, ts, "true or false and true")
	result := body["result"].(map[string]any)
	if result["accepted"] != true {
		t.Fatalf("initial parse rejected: %v", body)
	}
	if sess := body["session"].(map[string]any); sess["engine"] != "earley" || sess["incremental"] != true {
		t.Fatalf("session meta: %v", sess)
	}

	// Replace the final token; the reparse must reuse the whole prefix.
	resp, body := do(t, "PATCH", ts.URL+"/v1/sessions/"+id, map[string]any{
		"splices": []any{map[string]any{"at": 4, "remove": 1, "insert": "false"}},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("patch: %d %v", resp.StatusCode, body)
	}
	if body["result"].(map[string]any)["accepted"] != true {
		t.Fatalf("edited doc rejected: %v", body)
	}
	if body["sets_reused"].(float64) < 4 {
		t.Errorf("tail edit reused %v sets, want the whole prefix", body["sets_reused"])
	}
	if body["tokens"].(float64) != 5 {
		t.Errorf("tokens: %v", body["tokens"])
	}

	// Buffered splices (reparse:false) return no result.
	_, body = do(t, "PATCH", ts.URL+"/v1/sessions/"+id, map[string]any{
		"splices": []any{map[string]any{"at": 0, "remove": 0, "insert": "false or"}},
		"reparse": false,
	})
	if _, ok := body["result"]; ok {
		t.Errorf("reparse:false still parsed: %v", body)
	}

	// Tree endpoint renders the forest of the full 7-token document.
	resp, body = do(t, "GET", ts.URL+"/v1/sessions/"+id+"/tree?render=1", nil)
	if resp.StatusCode != 200 || body["accepted"] != true {
		t.Fatalf("tree: %d %v", resp.StatusCode, body)
	}
	if f, _ := body["forest"].(string); !strings.Contains(f, "or") {
		t.Errorf("forest rendering: %v", body["forest"])
	}
	if body["trees"].(float64) < 2 {
		t.Errorf("ambiguous booleans should have several trees: %v", body["trees"])
	}

	// Stat reflects the accumulated work.
	_, body = do(t, "GET", ts.URL+"/v1/sessions/"+id+"/stat", nil)
	if body["splices"].(float64) != 2 || body["tokens"].(float64) != 7 {
		t.Errorf("stat: %v", body)
	}
	if body["sets_reused"].(float64) == 0 || body["reparses"].(float64) < 2 {
		t.Errorf("reuse accounting missing from stat: %v", body)
	}

	// Close; the id is then unknown everywhere.
	resp, _ = do(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("close: %d", resp.StatusCode)
	}
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/sessions/" + id + "/stat"},
		{"GET", "/v1/sessions/" + id + "/tree"},
		{"PATCH", "/v1/sessions/" + id},
		{"DELETE", "/v1/sessions/" + id},
	} {
		resp, _ := do(t, probe.method, ts.URL+probe.path, map[string]any{})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s after close: %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

func TestSessionErrors(t *testing.T) {
	ts, reg := newSessionServer(t, "earley")
	id, _ := openSession(t, ts, "true or false") // 3 tokens

	badSplices := []struct {
		name       string
		at, remove int
		insert     string
		status     int
	}{
		{"at beyond end", 4, 0, "", http.StatusRequestedRangeNotSatisfiable},
		{"remove beyond end", 0, 4, "", http.StatusRequestedRangeNotSatisfiable},
		{"window beyond end", 2, 2, "", http.StatusRequestedRangeNotSatisfiable},
		{"negative at", -1, 0, "", http.StatusRequestedRangeNotSatisfiable},
		{"negative remove", 0, -1, "", http.StatusRequestedRangeNotSatisfiable},
		{"unknown token", 0, 0, "nonsense", http.StatusUnprocessableEntity},
	}
	for _, tc := range badSplices {
		resp, body := do(t, "PATCH", ts.URL+"/v1/sessions/"+id, map[string]any{
			"splices": []any{map[string]any{"at": tc.at, "remove": tc.remove, "insert": tc.insert}},
		})
		if resp.StatusCode != tc.status {
			t.Errorf("%s: %d %v, want %d", tc.name, resp.StatusCode, body, tc.status)
		}
	}
	// Failed splices left the document intact.
	if _, body := do(t, "GET", ts.URL+"/v1/sessions/"+id+"/stat", nil); body["tokens"].(float64) != 3 {
		t.Errorf("bad splices mutated the document: %v", body["tokens"])
	}

	// Unknown session ids are 404 across the board.
	resp, _ := do(t, "PATCH", ts.URL+"/v1/sessions/nope-99", map[string]any{})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %d", resp.StatusCode)
	}

	// Unknown grammar on open.
	resp, _ = do(t, "POST", ts.URL+"/v1/grammars/nope/sessions", map[string]any{"input": "x"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("open on unknown grammar: %d", resp.StatusCode)
	}

	// Session-count admission: cap at the one already open.
	reg.SetSessionLimits(registry.SessionLimits{MaxSessions: 1})
	resp, _ = do(t, "POST", ts.URL+"/v1/grammars/bool/sessions", map[string]any{"input": "true"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over session cap: %d, want 429", resp.StatusCode)
	}

	// Document token budget: rejected at open and on growth.
	reg.SetSessionLimits(registry.SessionLimits{MaxDocTokens: 4})
	resp, _ = do(t, "POST", ts.URL+"/v1/grammars/bool/sessions",
		map[string]any{"input": "true or false and true"})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over token budget at open: %d, want 413", resp.StatusCode)
	}
	id2, _ := openSession(t, ts, "true or false")
	resp, _ = do(t, "PATCH", ts.URL+"/v1/sessions/"+id2, map[string]any{
		"splices": []any{map[string]any{"at": 0, "remove": 0, "insert": "true or true or"}},
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over token budget on splice: %d, want 413", resp.StatusCode)
	}

	// Idle eviction turns a live id into a 404.
	reg.SetSessionLimits(registry.SessionLimits{IdleTimeout: time.Millisecond})
	if n := reg.EvictIdleSessions(time.Now().Add(time.Second)); n == 0 {
		t.Fatal("eviction pass reclaimed nothing")
	}
	resp, _ = do(t, "GET", ts.URL+"/v1/sessions/"+id+"/stat", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted session: %d, want 404", resp.StatusCode)
	}
}

// TestSessionStatShape pins the omit-empty wire shape: fallback
// (full-reparse) sessions must not serialize the chart-reuse fields,
// incremental ones must.
func TestSessionStatShape(t *testing.T) {
	ts, _ := newSessionServer(t, "lalr")
	id, body := openSession(t, ts, "true or false")
	if sess := body["session"].(map[string]any); sess["engine"] != "lalr" {
		t.Fatalf("expected a lalr fallback session: %v", sess)
	}
	_, stat := do(t, "GET", ts.URL+"/v1/sessions/"+id+"/stat", nil)
	for _, key := range []string{"incremental", "sets", "sets_reused", "sets_rebuilt", "last_reused", "forest_nodes"} {
		if _, ok := stat[key]; ok {
			t.Errorf("fallback stat serializes %q: %v", key, stat)
		}
	}
	for _, key := range []string{"id", "grammar", "engine", "tokens", "idle_ms", "reparses", "full_reparses"} {
		if _, ok := stat[key]; !ok {
			t.Errorf("fallback stat omits %q: %v", key, stat)
		}
	}
	// The fallback still tracks edits behind the same API.
	_, body = do(t, "PATCH", ts.URL+"/v1/sessions/"+id, map[string]any{
		"splices": []any{map[string]any{"at": 2, "remove": 1, "insert": "true"}},
	})
	if body["result"].(map[string]any)["accepted"] != true {
		t.Fatalf("fallback reparse: %v", body)
	}
	if _, ok := body["sets_reused"]; ok {
		t.Errorf("fallback patch reports chart reuse: %v", body)
	}

	// /v1/sessions lists it.
	_, body = do(t, "GET", ts.URL+"/v1/sessions", nil)
	if n := len(body["sessions"].([]any)); n != 1 {
		t.Errorf("session list: %d entries", n)
	}
}

// TestSessionMetricsFamilies: the session metric families appear in
// /metrics and move with session activity.
func TestSessionMetricsFamilies(t *testing.T) {
	ts, reg := newSessionServer(t, "earley")
	id, _ := openSession(t, ts, "true or false and true")
	do(t, "PATCH", ts.URL+"/v1/sessions/"+id, map[string]any{
		"splices": []any{map[string]any{"at": 4, "remove": 1, "insert": "false"}},
	})
	reg.SetSessionLimits(registry.SessionLimits{IdleTimeout: time.Millisecond})
	reg.EvictIdleSessions(time.Now().Add(time.Second))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		"# TYPE ipg_sessions_open gauge",
		"# TYPE ipg_sessions_opened_total counter",
		"# TYPE ipg_sessions_evicted_total counter",
		"# TYPE ipg_sessions_closed_total counter",
		"# TYPE ipg_session_splices_total counter",
		"# TYPE ipg_session_reparses_total counter",
		"# TYPE ipg_session_full_reparses_total counter",
		"# TYPE ipg_reparse_sets_reused_total counter",
		"# TYPE ipg_reparse_sets_rebuilt_total counter",
		"ipg_sessions_opened_total 1",
		"ipg_sessions_evicted_total 1",
		"ipg_sessions_open 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Eviction rolled the counters into the closed totals: the splice
	// and its chart reuse survive the session.
	if !strings.Contains(text, "ipg_session_splices_total 1") {
		t.Error("splice count did not survive eviction")
	}
	if strings.Contains(text, "ipg_reparse_sets_reused_total 0\n") {
		t.Error("reuse total lost on eviction")
	}
}

package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"ipg/internal/registry"
	"ipg/internal/snapshot"
)

// newSnapshotServer builds a server whose registry persists snapshots
// under dir.
func newSnapshotServer(t *testing.T, dir string) (*httptest.Server, *registry.Registry) {
	t.Helper()
	store, err := snapshot.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	reg.SetSnapshotStore(store)
	ts := httptest.NewServer(New(reg).Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

// doRaw sends a raw (possibly malformed) body.
func doRaw(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestErrorPaths is the table-driven sweep over the service's failure
// modes: each row provokes one and checks the status code the client
// contract promises.
func TestErrorPaths(t *testing.T) {
	store, err := snapshot.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	reg.SetSnapshotStore(store)
	reg.SetDefaultLimits(registry.Limits{MaxForestNodes: 3})
	srv := New(reg)
	srv.SetMaxBatchInputs(2)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if resp, _ := do(t, "PUT", ts.URL+"/v1/grammars/bool", map[string]any{"source": boolSrc}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("setup register: %d", resp.StatusCode)
	}

	tests := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"malformed json", "POST", "/v1/grammars/bool/parse", `{"input": `, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/grammars/bool/parse", `{"bogus": 1}`, http.StatusBadRequest},
		{"unknown grammar parse", "POST", "/v1/grammars/nope/parse", `{"input":"true"}`, http.StatusNotFound},
		{"unknown grammar snapshot", "POST", "/v1/grammars/nope/snapshot", ``, http.StatusNotFound},
		{"unknown grammar rules", "POST", "/v1/grammars/nope/rules", `{"add":"B ::= \"x\""}`, http.StatusNotFound},
		{"empty batch", "POST", "/v1/grammars/bool/batch", `{"inputs":[]}`, http.StatusBadRequest},
		{"oversized batch", "POST", "/v1/grammars/bool/batch", `{"inputs":["true","true","true"]}`, http.StatusRequestEntityTooLarge},
		{"admission forest limit", "POST", "/v1/grammars/bool/parse", `{"input":"true or true or true","trees":true}`, http.StatusTooManyRequests},
		{"unparseable input", "POST", "/v1/grammars/bool/parse", `{"input":"zzz"}`, http.StatusUnprocessableEntity},
		{"bad register source", "PUT", "/v1/grammars/broken", `{"source":"START ::"}`, http.StatusUnprocessableEntity},
		{"bad register form", "PUT", "/v1/grammars/broken", `{"source":"START ::= B","form":"nope"}`, http.StatusBadRequest},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if resp := doRaw(t, tc.method, ts.URL+tc.path, tc.body); resp.StatusCode != tc.want {
				t.Errorf("%s %s: got %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}

	// Batch items refused by admission control are flagged as throttled
	// (retryable), not lumped in with tokenization errors.
	_, body := do(t, "POST", ts.URL+"/v1/grammars/bool/batch",
		map[string]any{"inputs": []any{"true or true or true", "zzz"}, "trees": true})
	if body["throttled"].(float64) != 1 || body["errors"].(float64) != 2 {
		t.Errorf("batch throttling: %v", body)
	}
	items := body["results"].([]any)
	if items[0].(map[string]any)["throttled"] != true {
		t.Errorf("throttled item not flagged: %v", items[0])
	}
	if _, flagged := items[1].(map[string]any)["throttled"]; flagged {
		t.Errorf("tokenization error wrongly flagged throttled: %v", items[1])
	}

	// The 429s show up in service stats.
	_, body = do(t, "GET", ts.URL+"/v1/stats", nil)
	if body["admission_rejected_total"].(float64) < 2 {
		t.Errorf("429s not counted: %v", body["admission_rejected_total"])
	}
}

func TestSnapshotEndpointNoStore(t *testing.T) {
	ts := newTestServer(t) // no snapshot store configured
	do(t, "PUT", ts.URL+"/v1/grammars/bool", map[string]any{"source": boolSrc})
	if resp := doRaw(t, "POST", ts.URL+"/v1/grammars/bool/snapshot", ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("snapshot without store: %d, want 409", resp.StatusCode)
	}
	if resp := doRaw(t, "POST", ts.URL+"/v1/snapshot", ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("snapshot-all without store: %d, want 409", resp.StatusCode)
	}
	// Stats omit the snapshot section when disabled.
	_, body := do(t, "GET", ts.URL+"/v1/stats", nil)
	if _, present := body["snapshots"]; present {
		t.Errorf("stats should omit snapshots when disabled: %v", body)
	}
}

func TestSnapshotEntryWithNoTableYet(t *testing.T) {
	// Snapshotting a freshly registered grammar — no parse has expanded
	// anything beyond the start state — must work: the snapshot records
	// the (nearly empty) lazy frontier.
	ts, _ := newSnapshotServer(t, t.TempDir())
	do(t, "PUT", ts.URL+"/v1/grammars/bool", map[string]any{"source": boolSrc})
	resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot cold entry: %d %v", resp.StatusCode, body)
	}
	if body["states"].(float64) < 1 || body["complete_states"].(float64) != 0 {
		t.Errorf("cold snapshot shape: %v", body)
	}
	if body["grammar_hash"].(string) == "" {
		t.Errorf("missing grammar hash: %v", body)
	}
}

// TestKillAndRestartDemo is the acceptance demo: warm a grammar through
// the HTTP service, snapshot, "kill" the process, restart over the same
// snapshot directory, and verify the first parse after restart performs
// ZERO lazy state expansions. The corrupted-snapshot variant falls back
// cold with no error visible to the client.
func TestKillAndRestartDemo(t *testing.T) {
	dir := t.TempDir()

	// --- process 1: earn the table, snapshot, die ---
	ts1, _ := newSnapshotServer(t, dir)
	if resp, _ := do(t, "PUT", ts1.URL+"/v1/grammars/calc", map[string]any{"source": calcSDF}); resp.StatusCode != http.StatusCreated {
		t.Fatal("register failed")
	}
	_, body := do(t, "POST", ts1.URL+"/v1/grammars/calc/parse", map[string]any{"input": "1 + 2 * 3", "trees": true})
	if body["accepted"] != true {
		t.Fatalf("warm parse: %v", body)
	}
	_, info := do(t, "GET", ts1.URL+"/v1/grammars/calc", nil)
	warmStates := info["complete_states"].(float64)
	if warmStates == 0 || info["states_expanded"].(float64) == 0 {
		t.Fatalf("nothing warmed: %v", info)
	}
	resp, snapBody := do(t, "POST", ts1.URL+"/v1/snapshot", nil)
	if resp.StatusCode != http.StatusOK || snapBody["saved"].(float64) != 1 {
		t.Fatalf("snapshot: %d %v", resp.StatusCode, snapBody)
	}
	ts1.Close() // kill

	// --- process 2: restart over the same snapshot dir ---
	ts2, _ := newSnapshotServer(t, dir)
	if resp, _ := do(t, "PUT", ts2.URL+"/v1/grammars/calc", map[string]any{"source": calcSDF}); resp.StatusCode != http.StatusCreated {
		t.Fatal("re-register failed")
	}
	_, info = do(t, "GET", ts2.URL+"/v1/grammars/calc", nil)
	if info["restored_from_snapshot"] != true {
		t.Fatalf("not restored: %v", info)
	}
	if info["complete_states"].(float64) != warmStates {
		t.Errorf("restored %v complete states, warm had %v", info["complete_states"], warmStates)
	}
	_, body = do(t, "POST", ts2.URL+"/v1/grammars/calc/parse", map[string]any{"input": "1 + 2 * 3", "trees": true})
	if body["accepted"] != true || body["trees"].(float64) != 1 {
		t.Fatalf("parse after restart: %v", body)
	}
	_, info = do(t, "GET", ts2.URL+"/v1/grammars/calc", nil)
	if got := info["states_expanded"].(float64); got != 0 {
		t.Errorf("first parse after restart expanded %v states, want 0 (frontier not resumed)", got)
	}
	_, stats := do(t, "GET", ts2.URL+"/v1/stats", nil)
	snaps := stats["snapshots"].(map[string]any)
	if snaps["restores_total"].(float64) != 1 {
		t.Errorf("restore not in stats: %v", snaps)
	}
	ts2.Close()

	// --- variant: the snapshot is corrupted while the service is down ---
	store, _ := snapshot.NewStore(dir)
	path := store.Path("calc")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	ts3, _ := newSnapshotServer(t, dir)
	if resp, _ := do(t, "PUT", ts3.URL+"/v1/grammars/calc", map[string]any{"source": calcSDF}); resp.StatusCode != http.StatusCreated {
		t.Fatal("register over corrupt snapshot must still succeed")
	}
	_, info = do(t, "GET", ts3.URL+"/v1/grammars/calc", nil)
	if info["restored_from_snapshot"] != false {
		t.Errorf("corrupt snapshot must not restore: %v", info)
	}
	// The client sees a perfectly healthy service.
	_, body = do(t, "POST", ts3.URL+"/v1/grammars/calc/parse", map[string]any{"input": "1 + 2 * 3", "trees": true})
	if body["accepted"] != true || body["trees"].(float64) != 1 {
		t.Errorf("cold fallback parse: %v", body)
	}
	_, stats = do(t, "GET", ts3.URL+"/v1/stats", nil)
	snaps = stats["snapshots"].(map[string]any)
	if snaps["errors_total"].(float64) != 1 {
		t.Errorf("corruption not counted: %v", snaps)
	}
}

package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"ipg/internal/registry"
)

// TestLatencyStats exercises the per-engine latency histograms: after a
// few parses, /v1/stats reports p50/p95/p99 for the serving backend and
// the entry's own stats carry its histogram.
func TestLatencyStats(t *testing.T) {
	s := New(nil)
	h := s.Handler()

	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := do("PUT", "/v1/grammars/bools", `{"source":"START ::= B\nB ::= \"true\" | \"false\" | B \"or\" B"}`); rec.Code != 201 {
		t.Fatalf("register: %d %s", rec.Code, rec.Body)
	}
	for i := 0; i < 5; i++ {
		if rec := do("POST", "/v1/grammars/bools/parse", `{"input":"true or false"}`); rec.Code != 200 {
			t.Fatalf("parse: %d %s", rec.Code, rec.Body)
		}
	}

	var stats ServiceStats
	rec := do("GET", "/v1/stats", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	lat, ok := stats.LatencyByEngine["glr"]
	if !ok {
		t.Fatalf("no glr latency in /v1/stats: %s", rec.Body)
	}
	if lat.Count != 5 {
		t.Errorf("latency count = %d, want 5", lat.Count)
	}
	if lat.P50US > lat.P95US || lat.P95US > lat.P99US {
		t.Errorf("percentiles not monotonic: p50=%d p95=%d p99=%d", lat.P50US, lat.P95US, lat.P99US)
	}

	var info EntryInfo
	rec = do("GET", "/v1/grammars/bools", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Latency == nil || info.Latency.Count != 5 {
		t.Errorf("entry latency = %+v, want count 5", info.Latency)
	}
}

// TestLatencySnapshotMerge pins the registry-level histogram math the
// serve aggregation relies on.
func TestLatencySnapshotMerge(t *testing.T) {
	var a, b registry.LatencySnapshot
	a.Buckets[3] = 10 // 10 requests in [4µs, 8µs)
	a.Count, a.SumUS = 10, 60
	b.Buckets[5] = 10 // 10 requests in [16µs, 32µs)
	b.Count, b.SumUS = 10, 250
	a.Add(b)
	if a.Count != 20 {
		t.Fatalf("merged count %d", a.Count)
	}
	if p50 := a.PercentileUS(0.50); p50 != registry.LatencyBucketBound(3) {
		t.Errorf("p50 = %d, want bucket-3 bound %d", p50, registry.LatencyBucketBound(3))
	}
	if p99 := a.PercentileUS(0.99); p99 != registry.LatencyBucketBound(5) {
		t.Errorf("p99 = %d, want bucket-5 bound %d", p99, registry.LatencyBucketBound(5))
	}
	if mean := a.MeanUS(); mean != 15.5 {
		t.Errorf("mean = %v, want 15.5", mean)
	}
}

package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"ipg/internal/registry"
	"ipg/internal/snapshot"
)

const calcDetSrc = `
START ::= E
E ::= E "+" T | E "-" T | T
T ::= T "*" F | T "/" F | F
F ::= "n" | "(" E ")"
`

func TestRegisterWithEngineOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	for _, kind := range []string{"glr", "lalr", "earley"} {
		resp, body := do(t, "PUT", ts.URL+"/v1/grammars/calc-"+kind,
			map[string]any{"source": calcDetSrc, "engine": kind})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register engine=%s: status %d (%v)", kind, resp.StatusCode, body)
		}
		if body["engine"] != kind {
			t.Errorf("register engine=%s reported engine %v", kind, body["engine"])
		}
		resp, body = do(t, "POST", ts.URL+"/v1/grammars/calc-"+kind+"/parse",
			map[string]any{"input": "n + n * n"})
		if resp.StatusCode != http.StatusOK || body["accepted"] != true {
			t.Errorf("engine=%s parse: status %d accepted=%v", kind, resp.StatusCode, body["accepted"])
		}
	}

	// The same grammar served under three engines, visible service-wide.
	resp, body := do(t, "GET", ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	engines, ok := body["engines"].(map[string]any)
	if !ok {
		t.Fatalf("stats carry no engines map: %v", body)
	}
	for _, kind := range []string{"glr", "lalr", "earley"} {
		if engines[kind] != float64(1) {
			t.Errorf("stats engines[%s] = %v, want 1", kind, engines[kind])
		}
	}
}

func TestAutoEngineSelectionOverHTTP(t *testing.T) {
	ts := newTestServer(t)

	// Deterministic calculator: auto reports the LALR(1) verdict.
	resp, body := do(t, "PUT", ts.URL+"/v1/grammars/calc",
		map[string]any{"source": calcDetSrc, "engine": "auto"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d (%v)", resp.StatusCode, body)
	}
	if body["engine"] != "lalr" || body["engine_requested"] != "auto" {
		t.Errorf("auto on the calculator: engine=%v requested=%v, want lalr/auto (%v)",
			body["engine"], body["engine_requested"], body["engine_reason"])
	}
	if reason, _ := body["engine_reason"].(string); reason == "" {
		t.Error("no engine_reason in the register response")
	}

	// Ambiguous SDF: auto keeps lazy GLR, reason names the conflicts.
	resp, body = do(t, "PUT", ts.URL+"/v1/grammars/calc-sdf",
		map[string]any{"source": calcSDF, "form": "sdf", "engine": "auto"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register sdf: %d (%v)", resp.StatusCode, body)
	}
	if body["engine"] != "glr" {
		t.Errorf("auto on ambiguous SDF: engine=%v, want glr (%v)", body["engine"], body["engine_reason"])
	}

	// The selection also shows in the per-entry stats endpoint.
	_, body = do(t, "GET", ts.URL+"/v1/grammars/calc", nil)
	if body["engine"] != "lalr" {
		t.Errorf("GET stats engine=%v, want lalr", body["engine"])
	}

	// And /v1/stats reports every entry's chosen engine with its reason.
	_, stats := do(t, "GET", ts.URL+"/v1/stats", nil)
	selection, ok := stats["engine_selection"].(map[string]any)
	if !ok {
		t.Fatalf("/v1/stats carries no engine_selection: %v", stats)
	}
	calc, _ := selection["calc"].(map[string]any)
	if calc["engine"] != "lalr" || calc["requested"] != "auto" {
		t.Errorf("stats selection for calc = %v, want lalr requested by auto", calc)
	}
	if reason, _ := calc["reason"].(string); reason == "" {
		t.Error("stats selection for calc has no reason")
	}
	sdf, _ := selection["calc-sdf"].(map[string]any)
	if sdf["engine"] != "glr" {
		t.Errorf("stats selection for calc-sdf = %v, want glr", sdf)
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := do(t, "PUT", ts.URL+"/v1/grammars/x",
		map[string]any{"source": calcDetSrc, "engine": "cyk"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine: status %d, want 400", resp.StatusCode)
	}
}

func TestRateLimit429(t *testing.T) {
	reg := registry.New()
	reg.SetDefaultLimits(registry.Limits{RatePerSec: 0.001, Burst: 2})
	ts := httptest.NewServer(New(reg).Handler())
	t.Cleanup(ts.Close)

	if _, err := reg.Register("bool", registry.Spec{Source: boolSrc}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, body := do(t, "POST", ts.URL+"/v1/grammars/bool/parse", map[string]any{"input": "true"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("parse %d within burst: %d (%v)", i, resp.StatusCode, body)
		}
	}
	resp, _ := do(t, "POST", ts.URL+"/v1/grammars/bool/parse", map[string]any{"input": "true"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("parse beyond rate: status %d, want 429", resp.StatusCode)
	}
	_, stats := do(t, "GET", ts.URL+"/v1/stats", nil)
	if stats["admission_rejected_total"] != float64(1) {
		t.Errorf("admission_rejected_total = %v, want 1", stats["admission_rejected_total"])
	}
}

func TestSnapshotConflictForNonSnapshottableEngine(t *testing.T) {
	dir := t.TempDir()
	reg := registry.New()
	store, err := snapshot.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSnapshotStore(store)
	ts := httptest.NewServer(New(reg).Handler())
	t.Cleanup(ts.Close)

	resp, _ := do(t, "PUT", ts.URL+"/v1/grammars/calc",
		map[string]any{"source": calcDetSrc, "engine": "lalr"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	resp, body := do(t, "POST", ts.URL+"/v1/grammars/calc/snapshot", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot of an LALR entry: status %d (%v), want 409", resp.StatusCode, body)
	}
}

func TestEngineCapsAndChurnStatsOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	resp, body := do(t, "PUT", ts.URL+"/v1/grammars/calc",
		map[string]any{"source": calcDetSrc, "engine": "earley"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d (%v)", resp.StatusCode, body)
	}

	// Caps row: the overhauled Earley engine is tree-capable,
	// ambiguity-capable and incremental, but has no lazy table and no
	// snapshot support.
	_, body = do(t, "GET", ts.URL+"/v1/grammars/calc", nil)
	caps, ok := body["engine_caps"].(map[string]any)
	if !ok {
		t.Fatalf("entry stats carry no engine_caps: %v", body)
	}
	for field, want := range map[string]bool{
		"trees": true, "ambiguity": true, "incremental": true,
		"lazy": false, "snapshot": false,
	} {
		if caps[field] != want {
			t.Errorf("engine_caps[%s] = %v, want %v", field, caps[field], want)
		}
	}

	// Rule updates feed the per-entry update/parse ratio.
	for _, input := range []string{"n + n", "n * n"} {
		if resp, body := do(t, "POST", ts.URL+"/v1/grammars/calc/parse",
			map[string]any{"input": input}); resp.StatusCode != http.StatusOK {
			t.Fatalf("parse: %d (%v)", resp.StatusCode, body)
		}
	}
	if resp, body := do(t, "POST", ts.URL+"/v1/grammars/calc/rules",
		map[string]any{"add": "F ::= \"id\""}); resp.StatusCode != http.StatusOK {
		t.Fatalf("add rule: %d (%v)", resp.StatusCode, body)
	}
	_, body = do(t, "GET", ts.URL+"/v1/grammars/calc", nil)
	if body["rule_updates_total"] != float64(1) {
		t.Errorf("rule_updates_total = %v, want 1", body["rule_updates_total"])
	}
	ratio, _ := body["update_parse_ratio"].(float64)
	if ratio <= 0 || ratio > 1 {
		t.Errorf("update_parse_ratio = %v, want in (0, 1] after 1 update and 2 parses", body["update_parse_ratio"])
	}
}

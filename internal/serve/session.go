package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"ipg/internal/engine"
	"ipg/internal/obs"
	"ipg/internal/registry"
)

// OpenSessionRequest is the POST /v1/grammars/{name}/sessions body.
// Input is resolved like a parse request: source text for SDF
// grammars, whitespace-separated terminal names for rules grammars.
type OpenSessionRequest struct {
	Input string `json:"input"`
}

// SessionOpenResponse reports a freshly opened session together with
// its initial parse.
type SessionOpenResponse struct {
	Session registry.SessionStat `json:"session"`
	Result  *ParseResponse       `json:"result,omitempty"`
}

// SpliceOp is one edit: replace tokens[at : at+remove] with the
// tokenization of insert.
type SpliceOp struct {
	At     int    `json:"at"`
	Remove int    `json:"remove"`
	Insert string `json:"insert"`
}

// SessionEditRequest is the PATCH /v1/sessions/{id} body: a batch of
// splices, then (unless reparse:false) a reparse — incremental on
// engines that retain their chart.
type SessionEditRequest struct {
	Splices []SpliceOp `json:"splices"`
	// Reparse defaults to true; false buffers the edits only.
	Reparse *bool `json:"reparse,omitempty"`
	// Trees upgrades the reparse to forest construction; Render
	// additionally includes the bracketed forest text.
	Trees  bool `json:"trees,omitempty"`
	Render bool `json:"render,omitempty"`
}

// SessionEditResponse reports an edit batch. SetsReused/SetsRebuilt
// expose the reparse's chart-reuse split (zero for engines without
// retained state).
type SessionEditResponse struct {
	ID      string `json:"id"`
	Spliced int    `json:"spliced"`
	Tokens  int    `json:"tokens"`
	// Result is absent when the request suppressed the reparse.
	Result      *ParseResponse `json:"result,omitempty"`
	SetsReused  int            `json:"sets_reused,omitempty"`
	SetsRebuilt int            `json:"sets_rebuilt,omitempty"`
}

// writeSessionError maps session-operation failures onto HTTP
// statuses: 416 for out-of-range splices, 404 for unknown/evicted
// sessions, 413 for documents over the token budget, 429 for the
// session-count cap; everything else — including cancellation,
// quarantine, drain and panic classes — falls through to the shared
// parse-error classifier.
func (s *Server) writeSessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrSplice):
		writeError(w, http.StatusRequestedRangeNotSatisfiable, err)
	case errors.Is(err, registry.ErrNoSession):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, registry.ErrDocTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, err)
	case errors.Is(err, registry.ErrSessionLimit):
		s.rejected429.Add(1)
		writeErrorRetry(w, http.StatusTooManyRequests, 1, err)
	default:
		s.writeParseError(w, err)
	}
}

// session resolves the {id} path value, answering 404 for ids that are
// unknown — never issued, closed, or idle-evicted.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*registry.Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.reg.Session(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("%w: %q (unknown, closed or evicted)", registry.ErrNoSession, id))
		return nil, false
	}
	return sess, true
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req OpenSessionRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	sess, err := s.reg.OpenSession(e, req.Input)
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	// Parse the just-opened document so the client learns acceptance
	// without a second round trip; this also warms the retained chart.
	ctx, cancelParse := s.parseCtx(r.Context())
	defer cancelParse()
	start := time.Now()
	tr := s.tracer.StartParse(sess.Grammar(), sess.EngineName(), obs.RequestID(ctx))
	res, err := sess.ReparseCtx(ctx, tr)
	if err != nil {
		s.finishTrace(tr, false, err)
		s.reg.CloseSession(sess.ID())
		s.writeSessionError(w, err)
		return
	}
	out := renderResult(e, res, false, tr, start)
	s.finishTrace(tr, res.Accepted, nil)
	writeJSON(w, http.StatusCreated, SessionOpenResponse{Session: sess.Stat(), Result: &out})
}

func (s *Server) handleSessionEdit(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req SessionEditRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	ctx, cancelParse := s.parseCtx(r.Context())
	defer cancelParse()
	start := time.Now()
	tr := s.tracer.StartParse(sess.Grammar(), sess.EngineName(), obs.RequestID(ctx))
	for i, op := range req.Splices {
		if err := sess.Splice(op.At, op.Remove, op.Insert, tr); err != nil {
			s.finishTrace(tr, false, err)
			s.writeSessionError(w, fmt.Errorf("splice %d: %w", i, err))
			return
		}
	}
	out := SessionEditResponse{ID: sess.ID(), Spliced: len(req.Splices)}
	if req.Reparse == nil || *req.Reparse {
		var res registry.Result
		var err error
		if req.Trees || req.Render {
			res, err = sess.TreeCtx(ctx, tr)
		} else {
			res, err = sess.ReparseCtx(ctx, tr)
		}
		if err != nil {
			s.finishTrace(tr, false, err)
			s.writeSessionError(w, err)
			return
		}
		pr := renderResult(sess.Entry(), res, req.Render, tr, start)
		out.Result = &pr
		s.finishTrace(tr, res.Accepted, nil)
	} else {
		s.finishTrace(tr, true, nil)
	}
	st := sess.Stat()
	out.Tokens = st.Tokens
	if out.Result != nil {
		out.SetsReused = st.LastReused
		out.SetsRebuilt = st.LastRebuilt
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessionStat(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sess.Stat())
}

func (s *Server) handleSessionTree(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	render := r.URL.Query().Get("render") != ""
	ctx, cancelParse := s.parseCtx(r.Context())
	defer cancelParse()
	start := time.Now()
	tr := s.tracer.StartParse(sess.Grammar(), sess.EngineName(), obs.RequestID(ctx))
	res, err := sess.TreeCtx(ctx, tr)
	if err != nil {
		s.finishTrace(tr, false, err)
		s.writeSessionError(w, err)
		return
	}
	out := renderResult(sess.Entry(), res, render, tr, start)
	s.finishTrace(tr, res.Accepted, nil)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": s.reg.SessionStats()})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.reg.CloseSession(id) {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("%w: %q (unknown, closed or evicted)", registry.ErrNoSession, id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"closed": true})
}

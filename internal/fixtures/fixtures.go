// Package fixtures provides the example grammars and sentences used
// throughout the paper, shared by tests, examples, and benchmarks.
package fixtures

import "ipg/internal/grammar"

// BooleansText is the grammar of the Booleans of Fig. 4.1(a):
//
//	0  B ::= true
//	1  B ::= false
//	2  B ::= B or B
//	3  B ::= B and B
//	4  START ::= B
//
// It is ambiguous (no priorities between or/and), which exercises the
// parallel parser.
const BooleansText = `
B ::= "true"
B ::= "false"
B ::= B "or" B
B ::= B "and" B
START ::= B
`

// Booleans returns a fresh booleans grammar.
func Booleans() *grammar.Grammar { return grammar.MustParse(BooleansText) }

// AB is the grammar of Fig. 6.2(a), "a complicated way to describe a
// language with only the sentences 'a b' and 'c b'". Adding A ::= b to it
// restructures the graph of item sets (Fig. 6.3), showing that grammar
// extension is not graph extension.
const ABText = `
START ::= E
E ::= "c" C
C ::= B
START ::= D
D ::= "a" A
A ::= B
B ::= "b"
`

// AB returns a fresh Fig. 6.2 grammar.
func AB() *grammar.Grammar { return grammar.MustParse(ABText) }

// Tokens interns each space-separated word of s as a terminal of g's
// symbol table and returns the token stream (without end marker). It
// panics if a word is not a terminal — fixture sentences are static.
func Tokens(g *grammar.Grammar, s string) []grammar.Symbol {
	var out []grammar.Symbol
	word := ""
	flush := func() {
		if word == "" {
			return
		}
		sym, ok := g.Symbols().Lookup(word)
		if !ok {
			panic("fixtures: unknown token " + word)
		}
		out = append(out, sym)
		word = ""
	}
	for _, c := range s {
		if c == ' ' || c == '\t' || c == '\n' {
			flush()
			continue
		}
		word += string(c)
	}
	flush()
	return out
}

// The SDF parity tests live in the external test package: the harness
// imports engine for the cross-engine benchmark procedure, so importing
// it back from engine's internal tests would be a cycle.
package engine_test

import (
	"testing"

	"ipg/internal/engine"
	"ipg/internal/forest"
	"ipg/internal/harness"
	"ipg/internal/sdf"
)

func TestParitySDFFixturesAcceptance(t *testing.T) {
	// The SDF bootstrap grammar is the paper's own workload — left
	// recursion puts LL out of scope, and GLR/LALR must agree on all
	// five fixture files. Earley gets the two small ones (it is O(n³)
	// by design), where it now also has to agree on the packed forest,
	// not just acceptance.
	g := sdf.MustBootstrapGrammar()
	inputs, err := harness.LoadInputs("../../testdata", g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	glrEng, err := engine.New(engine.KindGLR, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	lalrEng, err := engine.New(engine.KindLALR, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	earleyEng, err := engine.New(engine.KindEarley, g, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, input := range inputs {
		glrOK, err := glrEng.Recognize(input.Tokens)
		if err != nil {
			t.Fatal(err)
		}
		lalrOK, err := lalrEng.Recognize(input.Tokens)
		if err != nil {
			t.Fatal(err)
		}
		if !glrOK || glrOK != lalrOK {
			t.Errorf("%s: GLR=%v LALR=%v, want both accepted", input.Name, glrOK, lalrOK)
		}
		if len(input.Tokens) <= 200 {
			earleyRes, err := earleyEng.Parse(input.Tokens, true)
			if err != nil {
				t.Fatal(err)
			}
			if earleyRes.Accepted != glrOK {
				t.Errorf("%s: Earley=%v GLR=%v", input.Name, earleyRes.Accepted, glrOK)
				continue
			}
			glrRes, err := glrEng.Parse(input.Tokens, true)
			if err != nil {
				t.Fatal(err)
			}
			nEarley, err1 := forest.TreeCount(earleyRes.Root)
			nGLR, err2 := forest.TreeCount(glrRes.Root)
			if err1 != nil || err2 != nil || nEarley != nGLR {
				t.Errorf("%s: packed-forest derivation counts diverge: Earley %d (%v), GLR %d (%v)",
					input.Name, nEarley, err1, nGLR, err2)
			}
		}
	}
}

// TestParitySDFAmbiguousPackedForests drives the genuinely ambiguous
// SDF calculator (flat `EXP op EXP` rules, disambiguated only by
// priority filters that parity deliberately does not apply) through
// Earley and GLR: every sentence's packed forest must count the same
// derivations and render identically.
func TestParitySDFAmbiguousPackedForests(t *testing.T) {
	workloads, err := harness.EngineWorkloads("../../testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workloads {
		if w.Name != "calc-sdf-ambiguous" {
			continue
		}
		glrEng, err := engine.New(engine.KindGLR, w.Grammar, nil)
		if err != nil {
			t.Fatal(err)
		}
		earleyEng, err := engine.New(engine.KindEarley, w.Grammar, nil)
		if err != nil {
			t.Fatal(err)
		}
		ambiguous := 0
		for i, toks := range w.Sentences {
			glrRes, err := glrEng.Parse(toks, true)
			if err != nil {
				t.Fatal(err)
			}
			earleyRes, err := earleyEng.Parse(toks, true)
			if err != nil {
				t.Fatal(err)
			}
			if !glrRes.Accepted || !earleyRes.Accepted {
				t.Fatalf("sentence %d rejected: GLR=%v Earley=%v", i, glrRes.Accepted, earleyRes.Accepted)
			}
			nGLR, err1 := forest.TreeCount(glrRes.Root)
			nEarley, err2 := forest.TreeCount(earleyRes.Root)
			if err1 != nil || err2 != nil || nGLR != nEarley {
				t.Errorf("sentence %d: Earley packs %d derivations (%v), GLR %d (%v)",
					i, nEarley, err2, nGLR, err1)
			}
			if nGLR > 1 {
				ambiguous++
			}
			eStr := forest.String(earleyRes.Root, w.Grammar.Symbols())
			gStr := forest.String(glrRes.Root, w.Grammar.Symbols())
			if eStr != gStr {
				t.Errorf("sentence %d: packed forests render differently\nearley: %s\nglr:    %s", i, eStr, gStr)
			}
		}
		if ambiguous == 0 {
			t.Error("the ambiguous workload produced no ambiguous sentence — the packing check never fired")
		}
		return
	}
	t.Fatal("no calc-sdf-ambiguous workload")
}

// The SDF parity test lives in the external test package: the harness
// imports engine for the cross-engine benchmark procedure, so importing
// it back from engine's internal tests would be a cycle.
package engine_test

import (
	"testing"

	"ipg/internal/engine"
	"ipg/internal/harness"
	"ipg/internal/sdf"
)

func TestParitySDFFixturesAcceptance(t *testing.T) {
	// The SDF bootstrap grammar is the paper's own workload — left
	// recursion puts LL out of scope, and GLR/LALR must agree on all
	// five fixture files. Earley gets the two small ones (it is O(n³)
	// by design).
	g := sdf.MustBootstrapGrammar()
	inputs, err := harness.LoadInputs("../../testdata", g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	glrEng, err := engine.New(engine.KindGLR, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	lalrEng, err := engine.New(engine.KindLALR, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	earleyEng, err := engine.New(engine.KindEarley, g, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, input := range inputs {
		glrOK, err := glrEng.Recognize(input.Tokens)
		if err != nil {
			t.Fatal(err)
		}
		lalrOK, err := lalrEng.Recognize(input.Tokens)
		if err != nil {
			t.Fatal(err)
		}
		if !glrOK || glrOK != lalrOK {
			t.Errorf("%s: GLR=%v LALR=%v, want both accepted", input.Name, glrOK, lalrOK)
		}
		if len(input.Tokens) <= 200 {
			earleyOK, err := earleyEng.Recognize(input.Tokens)
			if err != nil {
				t.Fatal(err)
			}
			if earleyOK != glrOK {
				t.Errorf("%s: Earley=%v GLR=%v", input.Name, earleyOK, glrOK)
			}
		}
	}
}

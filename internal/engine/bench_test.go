// BenchmarkEngines lives in the external test package so it can reuse
// the harness's cross-engine workloads (the same sentences `ipg-bench
// -engines` measures — one generator, no drift between the two
// comparisons); the harness imports engine, so the internal test
// package cannot import it back.
package engine_test

import (
	"sort"
	"testing"
	"time"

	"ipg/internal/engine"
	"ipg/internal/grammar"
	"ipg/internal/harness"
)

// benchWorkload fetches one named harness workload.
func benchWorkload(b *testing.B, name string) (*grammar.Grammar, [][]grammar.Symbol) {
	b.Helper()
	workloads, err := harness.EngineWorkloads("../../testdata")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workloads {
		if w.Name == name {
			return w.Grammar, w.Sentences
		}
	}
	b.Fatalf("no workload %q", name)
	return nil, nil
}

// reportPercentiles attaches p50/p95/p99 per-sentence latency metrics
// from a sample of sentence durations, using the same nearest-rank
// formula as the ipg-bench JSON artifact (harness.PercentileNS).
func reportPercentiles(b *testing.B, samples []time.Duration) {
	if len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	b.ReportMetric(float64(harness.PercentileNS(samples, 0.50)), "p50-ns")
	b.ReportMetric(float64(harness.PercentileNS(samples, 0.95)), "p95-ns")
	b.ReportMetric(float64(harness.PercentileNS(samples, 0.99)), "p99-ns")
}

// maxLatencySamples caps the per-sentence latency reservoir so long
// -benchtime runs do not grow memory without bound.
const maxLatencySamples = 1 << 14

// BenchmarkEngines compares the backends on the deterministic calculator
// workload — the per-grammar selection argument in numbers: the LALR(1)
// path (deterministic LR driver, eager table) must beat lazy GLR (GSS
// over LR(0), which splits on every unresolved reduce), and Earley trails
// both by orders of magnitude. engine=auto picks LALR here and should
// match it to within noise. Each row also reports allocs/op and bytes/op
// (one op = a full workload pass) and per-sentence latency percentiles —
// the steady-state allocation budget this PR's arena/workspace layer pins
// near zero for the LR-family engines.
func BenchmarkEngines(b *testing.B) {
	for _, kind := range []engine.Kind{engine.KindGLR, engine.KindLALR, engine.KindEarley, engine.KindAuto} {
		b.Run(kind.String(), func(b *testing.B) {
			g, workload := benchWorkload(b, "calc-det")
			e, err := engine.New(kind, g, nil)
			if err != nil {
				b.Fatal(err)
			}
			var tokens int
			for _, toks := range workload {
				tokens += harness.SentenceLen(toks)
			}
			// Warm the lazy table so the steady state is measured (the
			// construct-vs-parse tradeoff is ipg-bench's subject).
			for _, toks := range workload {
				if ok, err := e.Recognize(toks); err != nil || !ok {
					b.Fatalf("%v rejected workload sentence: %v", kind, err)
				}
			}
			samples := make([]time.Duration, 0, maxLatencySamples)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, toks := range workload {
					t0 := time.Now()
					if _, err := e.Parse(toks, false); err != nil {
						b.Fatal(err)
					}
					if len(samples) < maxLatencySamples {
						samples = append(samples, time.Since(t0))
					}
				}
			}
			b.ReportMetric(float64(tokens*b.N)/b.Elapsed().Seconds(), "tokens/s")
			reportPercentiles(b, samples)
		})
	}

	// The LL(1) variant parses the same language from the factored
	// grammar — the predictive row of Fig 2.1.
	b.Run("ll", func(b *testing.B) {
		g, workload := benchWorkload(b, "calc-ll")
		e, err := engine.New(engine.KindLL, g, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, toks := range workload {
				if _, err := e.Parse(toks, false); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

package engine

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"

	"ipg/internal/grammar"
)

// This file is the completion capability: the constrained-decoding view
// of a parser. After any viable prefix, a Completer answers "which
// terminals may come next" — one accept-set query per generated token
// is the workload, so the warm path on the table-driven backends is
// allocation-free and a cursor advances in O(1) amortized. The paper's
// lazy/incremental tables make the answer cheap by construction: the
// parser is always ready at the frontier.

// ErrNoComplete reports that a backend has no completion capability.
var ErrNoComplete = errors.New("engine: backend does not support completion")

// ErrCursorStale reports that the grammar moved under an open cursor
// (a rule update, repair or regeneration); the cursor refuses every
// further operation and the caller must reopen.
var ErrCursorStale = errors.New("engine: completion cursor stale (grammar modified)")

// ErrRejected reports that a fed token cannot extend the cursor's
// prefix to a viable prefix. The cursor is unchanged; the caller may
// feed a different token or Restore an earlier checkpoint.
var ErrRejected = errors.New("engine: token not acceptable at cursor position")

// ErrBadCheckpoint reports a Restore target outside [0, Pos()].
var ErrBadCheckpoint = errors.New("engine: restore checkpoint out of range")

// Vocab is the stable terminal vocabulary of one grammar version: every
// terminal (EOF — "$" — included) sorted by name. TermSet bit indices
// are positions in this ordering, so token-masking clients can cache
// the vocabulary per (grammar, version) and decode bitsets without
// names.
type Vocab struct {
	// Version is the grammar version the vocabulary was read at.
	Version uint64
	terms   []grammar.Symbol
	names   []string
	bit     []int32 // symbol -> bit index; -1 for non-vocab symbols
}

// NewVocab reads g's terminal vocabulary. Callers synchronize with
// grammar mutations (cursors build their vocab at open, under the
// engine's lock).
func NewVocab(g *grammar.Grammar) *Vocab {
	syms := g.Symbols()
	v := &Vocab{
		Version: g.Version(),
		terms:   syms.Terminals(),
		bit:     make([]int32, syms.Len()+1),
	}
	for i := range v.bit {
		v.bit[i] = -1
	}
	v.names = make([]string, len(v.terms))
	for i, t := range v.terms {
		v.names[i] = syms.Name(t)
		v.bit[t] = int32(i)
	}
	return v
}

// Len returns the vocabulary size.
func (v *Vocab) Len() int { return len(v.terms) }

// Terms returns the vocabulary terminals in bit order (do not mutate).
func (v *Vocab) Terms() []grammar.Symbol { return v.terms }

// Names returns the terminal names in bit order (do not mutate).
func (v *Vocab) Names() []string { return v.names }

// Index returns sym's bit index, or -1 when sym is not in the
// vocabulary.
func (v *Vocab) Index(sym grammar.Symbol) int {
	if int(sym) < 0 || int(sym) >= len(v.bit) {
		return -1
	}
	return int(v.bit[sym])
}

// TermSet is a dense terminal bitset over a Vocab. The zero value is
// empty; Reset binds it to a vocabulary. A TermSet is reused across
// queries — the warm path performs no allocation.
type TermSet struct {
	v    *Vocab
	bits []uint64
}

// Reset empties the set and binds it to v.
func (s *TermSet) Reset(v *Vocab) {
	s.v = v
	n := (v.Len() + 63) / 64
	if cap(s.bits) < n {
		s.bits = make([]uint64, n)
		return
	}
	s.bits = s.bits[:n]
	clear(s.bits)
}

// Vocab returns the bound vocabulary (nil before the first Reset).
func (s *TermSet) Vocab() *Vocab { return s.v }

// Add inserts sym; symbols outside the vocabulary are ignored.
func (s *TermSet) Add(sym grammar.Symbol) {
	if i := s.v.Index(sym); i >= 0 {
		s.bits[i/64] |= 1 << (i % 64)
	}
}

// Has reports membership.
func (s *TermSet) Has(sym grammar.Symbol) bool {
	i := s.v.Index(sym)
	return i >= 0 && s.bits[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of members.
func (s *TermSet) Count() int {
	n := 0
	for _, w := range s.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// AppendSyms appends the members in bit order.
func (s *TermSet) AppendSyms(dst []grammar.Symbol) []grammar.Symbol {
	for i, t := range s.v.terms {
		if s.bits[i/64]&(1<<(i%64)) != 0 {
			dst = append(dst, t)
		}
	}
	return dst
}

// AppendNames appends the member names in bit order.
func (s *TermSet) AppendNames(dst []string) []string {
	for i, name := range s.v.names {
		if s.bits[i/64]&(1<<(i%64)) != 0 {
			dst = append(dst, name)
		}
	}
	return dst
}

// Hex encodes the bitset as lowercase hex: byte j carries bits
// 8j..8j+7 (bit i of the vocabulary is bytes[i/8]>>(i%8)&1), and the
// byte count is ceil(Len/8). This is the wire form token-masking
// clients consume together with the vocabulary.
func (s *TermSet) Hex() string {
	nb := (s.v.Len() + 7) / 8
	raw := make([]byte, nb)
	for i := 0; i < s.v.Len(); i++ {
		if s.bits[i/64]&(1<<(i%64)) != 0 {
			raw[i/8] |= 1 << (i % 8)
		}
	}
	return hex.EncodeToString(raw)
}

// Equal reports whether two sets over same-length vocabularies hold the
// same bits.
func (s *TermSet) Equal(o *TermSet) bool {
	if len(s.bits) != len(o.bits) {
		return false
	}
	for i := range s.bits {
		if s.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Cursor is a checkpointed completion cursor over one engine: a parse
// frozen mid-input. Positions double as checkpoints — Restore rewinds
// to any earlier position in O(1) without reparsing (the per-position
// state is retained, arena-style). A Cursor is not safe for concurrent
// use; every operation fails with ErrCursorStale once the grammar has
// moved.
type Cursor interface {
	// Vocab returns the terminal vocabulary accept sets are indexed by
	// (captured at open).
	Vocab() *Vocab
	// Pos returns the number of tokens fed.
	Pos() int
	// Accepts fills dst (Reset against Vocab) with every terminal that
	// can extend the current prefix, EOF included when the prefix is a
	// complete sentence.
	Accepts(dst *TermSet) error
	// Feed advances the cursor by one terminal; ErrRejected (cursor
	// unchanged) when the token cannot extend the prefix.
	Feed(t grammar.Symbol) error
	// Checkpoint returns the current position as a restorable mark.
	Checkpoint() int
	// Restore rewinds to a previous checkpoint (any position in
	// [0, Pos()]).
	Restore(cp int) error
	// Close releases pooled cursor state. The cursor must not be used
	// afterwards.
	Close()
}

// Completer is the optional completion capability; all concrete
// backends implement it. Use CompleterOf to query an engine (it also
// resolves auto engines to their selected backend).
type Completer interface {
	// OpenCursor opens a cursor at the empty prefix.
	OpenCursor() (Cursor, error)
}

// CompleterOf returns e's completion capability, or nil when the engine
// (or, for auto, its selected backend) has none.
func CompleterOf(e Engine) Completer {
	if a, ok := e.(*Auto); ok {
		e = a.current()
	}
	if c, ok := e.(Completer); ok {
		return c
	}
	return nil
}

// OpenCursor opens a completion cursor on e and feeds prefix (a
// trailing end marker is tolerated and ignored). On a non-viable
// prefix it returns the index of the first rejected token along with
// ErrRejected; rejPos is -1 otherwise.
func OpenCursor(e Engine, prefix []grammar.Symbol) (c Cursor, rejPos int, err error) {
	comp := CompleterOf(e)
	if comp == nil {
		return nil, -1, ErrNoComplete
	}
	cur, err := comp.OpenCursor()
	if err != nil {
		return nil, -1, err
	}
	if pos, err := FeedAll(cur, prefix); err != nil {
		cur.Close()
		return nil, pos, err
	}
	return cur, -1, nil
}

// FeedAll feeds tokens in order (a trailing end marker is ignored),
// returning the index of the first token that failed, or -1.
func FeedAll(c Cursor, tokens []grammar.Symbol) (int, error) {
	for i, t := range tokens {
		if t == grammar.EOF && i == len(tokens)-1 {
			break
		}
		if err := c.Feed(t); err != nil {
			return i, err
		}
	}
	return -1, nil
}

// Accepts is the one-shot query: the accept set after prefix, through a
// transient cursor. On a non-viable prefix it reports the index of the
// first rejected token with ErrRejected; rejPos is -1 otherwise.
func Accepts(e Engine, prefix []grammar.Symbol, dst *TermSet) (rejPos int, err error) {
	c, pos, err := OpenCursor(e, prefix)
	if err != nil {
		return pos, err
	}
	defer c.Close()
	return -1, c.Accepts(dst)
}

// badRestore formats the uniform out-of-range Restore error.
func badRestore(cp, pos int) error {
	return fmt.Errorf("%w: checkpoint %d, cursor at [0,%d]", ErrBadCheckpoint, cp, pos)
}

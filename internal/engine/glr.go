package engine

import (
	"io"
	"sync"

	"ipg/internal/cancel"
	"ipg/internal/core"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lr"
	"ipg/internal/obs"
)

// GLR is the paper's IPG behind the Engine interface: a lazy incremental
// LR(0) generator driving the graph-structured-stack parser. It is the
// only engine whose table both updates incrementally and persists across
// restarts (Snapshotter).
type GLR struct {
	reason string

	// mu guards gen replacement (RestoreTable); the generator's own
	// locks guard everything else.
	mu   sync.RWMutex
	gen  *core.Generator
	opts core.Options
}

// NewGLR builds a lazy-GLR engine for g; no table generation happens
// until the first parse.
func NewGLR(g *grammar.Grammar, opts *Options, reason string) *GLR {
	copts := core.Options{Policy: opts.gc()}
	return &GLR{reason: reason, gen: core.New(g, &copts), opts: copts}
}

// Kind implements Engine.
func (e *GLR) Kind() Kind { return KindGLR }

// Reason implements Engine.
func (e *GLR) Reason() string { return e.reason }

// Caps implements Engine.
func (e *GLR) Caps() Caps { return CapsOf(KindGLR) }

// Generator exposes the backing lazy incremental generator.
func (e *GLR) Generator() *core.Generator {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.gen
}

// glrScratch is the pooled per-parse scratch of the GLR engine: the
// generator session (local counters, one shared flush per parse) and the
// options value the parse is driven with. The GSS workspace itself is
// pooled inside package glr.
type glrScratch struct {
	sess core.ParseSession
	opts glr.Options
}

var glrScratchPool = sync.Pool{New: func() any { return new(glrScratch) }}

// Parse implements Engine: one GSS parse under the generator's shared
// (read) access, expanding table states by need. Counter traffic is
// batched per parse through a core.ParseSession, so the published-state
// hot path performs no shared atomic writes.
func (e *GLR) Parse(input []grammar.Symbol, buildTrees bool) (Result, error) {
	return e.parseCancel(input, buildTrees, nil, nil)
}

// parseCancel implements cancelParser: the flag reaches both the GSS
// drive loop (per-sweep checkpoint) and the lazy-expansion path of the
// generator session. The deferred End releases the table's shared lock
// even when expansion aborts by panic.
func (e *GLR) parseCancel(input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace, fl *cancel.Flag) (Result, error) {
	gen := e.Generator()
	sc := glrScratchPool.Get().(*glrScratch)
	defer glrScratchPool.Put(sc)
	sc.sess.Begin(gen)
	defer sc.sess.End()
	sc.sess.Cancel = fl
	sc.opts = glr.Options{Engine: glr.GSS, DisableTrees: !buildTrees, Cancel: fl}
	tr.BeginStage(obs.StageTable)
	res, err := glr.Parse(&sc.sess, input, &sc.opts)
	tr.EndStage(obs.StageTable)
	return res, err
}

// Recognize implements Engine.
func (e *GLR) Recognize(input []grammar.Symbol) (bool, error) {
	res, err := e.Parse(input, false)
	return res.Accepted, err
}

// Counters implements Engine.
func (e *GLR) Counters() core.Counters { return e.Generator().Counters() }

// TableInfo implements Engine.
func (e *GLR) TableInfo() TableInfo {
	cov := e.Generator().Coverage()
	return TableInfo{
		States:   cov.Initial + cov.Complete + cov.Dirty,
		Complete: cov.Complete,
		Initial:  cov.Initial,
		Dirty:    cov.Dirty,
	}
}

// AddRule implements Engine: ADD-RULE of section 6, splicing the new
// rule into the existing table.
func (e *GLR) AddRule(r *grammar.Rule) error { return e.Generator().AddRule(r) }

// DeleteRule implements Engine: DELETE-RULE of section 6.
func (e *GLR) DeleteRule(r *grammar.Rule) error { return e.Generator().DeleteRule(r) }

// SaveTable implements Snapshotter: concurrent parses on published
// states continue while the table serializes.
func (e *GLR) SaveTable(w io.Writer) (core.CoverageStats, error) {
	return e.Generator().SaveTable(w)
}

// RestoreTable implements Snapshotter, resuming a reloaded graph of item
// sets. Call only before the engine serves traffic.
func (e *GLR) RestoreTable(a *lr.Automaton) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gen = core.NewFromAutomaton(a, &e.opts)
}

// The allocation-regression gate: CI fails when a steady-state pass of
// any engine workload allocates more than twice what the committed
// BENCH_pr7.json baseline records. ns/op regressions are machine-
// dependent and belong to human review of the uploaded bench artifact;
// allocs/op is deterministic enough to gate on.
package engine_test

import (
	"encoding/json"
	"os"
	"testing"

	"ipg/internal/engine"
	"ipg/internal/fixtures"
	"ipg/internal/grammar"
	"ipg/internal/harness"
)

// benchBaseline mirrors the committed report envelope (only the fields
// the gate needs). Baseline recursively embeds the previous PR's report
// (ipg-bench -baseline), so before/after comparisons need no second
// file.
type benchBaseline struct {
	Results  []harness.EngineResult `json:"results"`
	Baseline *benchBaseline         `json:"baseline,omitempty"`
}

func loadReport(t *testing.T, path string) benchBaseline {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(buf, &base); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return base
}

func TestAllocRegressionGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard runs full workload passes; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool lossy; allocation counts are meaningless under -race")
	}
	base := loadReport(t, "../../BENCH_pr7.json")
	baseline := map[[2]string]int64{}
	earleyRows := 0
	for _, r := range base.Results {
		if r.Error == "" {
			baseline[[2]string{r.Workload, r.Engine}] = r.AllocsPerOp
			if r.Engine == "earley" {
				earleyRows++
			}
		}
	}
	if len(baseline) == 0 {
		t.Fatal("BENCH_pr7.json holds no usable baselines")
	}
	// The chart overhaul put Earley under the same allocs/op discipline
	// as the LR engines; the gate must cover its budget on every
	// workload, not just the table-driven backends'.
	if earleyRows < 4 {
		t.Fatalf("BENCH_pr7.json covers only %d earley workloads, want all 4", earleyRows)
	}

	workloads, err := harness.EngineWorkloads("../../testdata")
	if err != nil {
		t.Fatal(err)
	}
	live := harness.RunEngines(workloads, 2)
	checked := 0
	for _, r := range live {
		want, ok := baseline[[2]string{r.Workload, r.Engine}]
		if !ok || r.Error != "" {
			continue
		}
		checked++
		// >2× the committed allocs/op plus a small absolute buffer for
		// background-GC noise in the Mallocs delta.
		if limit := 2*want + 8; r.AllocsPerOp > limit {
			t.Errorf("%s/%s: %d allocs per steady pass, committed baseline %d (limit %d) — hot-path allocation regression",
				r.Workload, r.Engine, r.AllocsPerOp, want, limit)
		}
	}
	if checked == 0 {
		t.Fatal("no (workload, engine) pair matched the committed baseline")
	}
}

// TestSessionReparseAllocFree extends the allocation gate to the
// session layer: once a document session is warm, a same-length
// single-token splice plus reparse must not touch the heap — the chart
// resumes in place and the edited suffix re-drives through pooled
// workspace storage.
func TestSessionReparseAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool lossy; allocation counts are meaningless under -race")
	}
	g := fixtures.Booleans()
	e, err := engine.New(engine.KindEarley, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := engine.OpenSession(e, fixtures.Tokens(g, "true or false and true or false or true"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if res, err := s.Reparse(); err != nil || !res.Accepted {
		t.Fatalf("initial reparse: %v accepted=%v", err, res.Accepted)
	}
	// Touch edit at the last token; the insert slice is hoisted so the
	// measured cycle is pure splice+reparse.
	pos := s.Len() - 1
	insert := []grammar.Symbol{fixtures.Tokens(g, "true")[0]}
	cycle := func() {
		if err := s.Splice(pos, 1, insert); err != nil {
			t.Fatal(err)
		}
		res, err := s.Reparse()
		if err != nil || !res.Accepted {
			t.Fatalf("warm reparse: %v accepted=%v", err, res.Accepted)
		}
	}
	cycle() // warm the resumed suffix
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("warm single-token splice+reparse: %.2f allocs/op, want 0", avg)
	}
	st := s.Stats()
	if st.LastReused != pos+1 {
		t.Errorf("last reparse reused %d sets, want %d (sets 0..pos, left of the edit)", st.LastReused, pos+1)
	}
}

// TestEarleyAllocDropVersusPR4 pins this PR's acceptance criterion in
// the committed artifact itself: the pooled chart must cut Earley's
// steady-state allocs/op at least 10× against the pre-overhaul
// recognizer on the SDF workload (and every other workload), as
// recorded in BENCH_pr5.json with the PR 4 report embedded as its
// baseline.
func TestEarleyAllocDropVersusPR4(t *testing.T) {
	base := loadReport(t, "../../BENCH_pr5.json")
	if base.Baseline == nil {
		t.Fatal("BENCH_pr5.json embeds no PR 4 baseline (regenerate with ipg-bench -baseline BENCH_pr4.json)")
	}
	old := map[string]int64{}
	for _, r := range base.Baseline.Results {
		if r.Engine == "earley" && r.Error == "" {
			old[r.Workload] = r.AllocsPerOp
		}
	}
	checked := 0
	for _, r := range base.Results {
		if r.Engine != "earley" || r.Error != "" {
			continue
		}
		before, ok := old[r.Workload]
		if !ok {
			continue
		}
		checked++
		if r.AllocsPerOp*10 > before {
			t.Errorf("%s/earley: %d allocs/op vs %d pre-overhaul — less than the required 10x drop",
				r.Workload, r.AllocsPerOp, before)
		}
	}
	if checked == 0 {
		t.Fatal("no earley workload present in both PR 5 results and the embedded PR 4 baseline")
	}
}

// The allocation-regression gate: CI fails when a steady-state pass of
// any engine workload allocates more than twice what the committed
// BENCH_pr4.json baseline records. ns/op regressions are machine-
// dependent and belong to human review of the uploaded bench artifact;
// allocs/op is deterministic enough to gate on.
package engine_test

import (
	"encoding/json"
	"os"
	"testing"

	"ipg/internal/harness"
)

// benchBaseline mirrors the committed report envelope (only the fields
// the gate needs).
type benchBaseline struct {
	Results []harness.EngineResult `json:"results"`
}

func TestAllocRegressionGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard runs full workload passes; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool lossy; allocation counts are meaningless under -race")
	}
	buf, err := os.ReadFile("../../BENCH_pr4.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(buf, &base); err != nil {
		t.Fatalf("BENCH_pr4.json: %v", err)
	}
	baseline := map[[2]string]int64{}
	for _, r := range base.Results {
		if r.Error == "" {
			baseline[[2]string{r.Workload, r.Engine}] = r.AllocsPerOp
		}
	}
	if len(baseline) == 0 {
		t.Fatal("BENCH_pr4.json holds no usable baselines")
	}

	workloads, err := harness.EngineWorkloads("../../testdata")
	if err != nil {
		t.Fatal(err)
	}
	live := harness.RunEngines(workloads, 2)
	checked := 0
	for _, r := range live {
		want, ok := baseline[[2]string{r.Workload, r.Engine}]
		if !ok || r.Error != "" {
			continue
		}
		checked++
		// >2× the committed allocs/op plus a small absolute buffer for
		// background-GC noise in the Mallocs delta.
		if limit := 2*want + 8; r.AllocsPerOp > limit {
			t.Errorf("%s/%s: %d allocs per steady pass, committed baseline %d (limit %d) — hot-path allocation regression",
				r.Workload, r.Engine, r.AllocsPerOp, want, limit)
		}
	}
	if checked == 0 {
		t.Fatal("no (workload, engine) pair matched the committed baseline")
	}
}

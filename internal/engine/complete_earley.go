package engine

import (
	"ipg/internal/earley"
	"ipg/internal/grammar"
)

// earleyCursor adapts the chart-backed earley.Cursor to the Cursor
// interface: the grammar-driven answer, no table at all. Accept sets
// come from scanning the final item set; feeds resume the retained
// chart through the document machinery, so advancing by one token
// drives exactly one item set. Uniformly with the table-driven
// cursors, a grammar change makes the cursor stale instead of
// adapting (even though the Earley backend could reparse): completion
// clients cache vocabularies per version, so a silent re-answer under
// a new grammar would desynchronize their bitsets.
type earleyCursor struct {
	e       *Earley
	version uint64
	vocab   *Vocab
	cur     *earley.Cursor
	stale   bool
}

// OpenCursor implements Completer for the Earley backend.
func (e *Earley) OpenCursor() (Cursor, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return &earleyCursor{
		e:       e,
		version: e.g.Version(),
		vocab:   NewVocab(e.g),
		cur:     e.p.OpenCursor(),
	}, nil
}

// use takes the engine lock for one operation and verifies the grammar
// has not moved; the caller must unlock unless an error is returned.
func (c *earleyCursor) use() error {
	if c.stale {
		return ErrCursorStale
	}
	c.e.mu.RLock()
	if c.e.g.Version() != c.version {
		c.e.mu.RUnlock()
		c.stale = true
		return ErrCursorStale
	}
	return nil
}

// Vocab implements Cursor.
func (c *earleyCursor) Vocab() *Vocab { return c.vocab }

// Pos implements Cursor.
func (c *earleyCursor) Pos() int { return c.cur.Pos() }

// Checkpoint implements Cursor.
func (c *earleyCursor) Checkpoint() int { return c.cur.Pos() }

// Accepts implements Cursor.
func (c *earleyCursor) Accepts(dst *TermSet) error {
	if err := c.use(); err != nil {
		return err
	}
	defer c.e.mu.RUnlock()
	dst.Reset(c.vocab)
	c.cur.Accepts(dst.Add)
	return nil
}

// Feed implements Cursor.
func (c *earleyCursor) Feed(t grammar.Symbol) error {
	if err := c.use(); err != nil {
		return err
	}
	defer c.e.mu.RUnlock()
	if c.vocab.Index(t) < 0 || !c.cur.Feed(t) {
		return ErrRejected
	}
	return nil
}

// Restore implements Cursor.
func (c *earleyCursor) Restore(cp int) error {
	if err := c.use(); err != nil {
		return err
	}
	defer c.e.mu.RUnlock()
	if !c.cur.Restore(cp) {
		return badRestore(cp, c.cur.Pos())
	}
	return nil
}

// Close implements Cursor. The chart workspace is owned by the wrapped
// document and garbage-collected with it.
func (c *earleyCursor) Close() {
	c.cur = nil
	c.vocab = nil
	c.e = nil
	c.stale = true
}

package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ipg/internal/cancel"
	"ipg/internal/core"
	"ipg/internal/earley"
	"ipg/internal/grammar"
	"ipg/internal/obs"
)

// Earley is the table-free backend behind the Engine interface: every
// parse derives its information from the grammar, so rule updates cost
// nothing and acceptance covers every context-free grammar. Since the
// chart overhaul it is a full peer of the other engines — Parse builds
// packed forests node-identical to the LR engines' trees on unambiguous
// inputs — while staying the flexibility end of the Fig 2.1 spectrum:
// the per-token work is the highest of all backends, but a grammar
// modification is free.
type Earley struct {
	reason string

	mu sync.RWMutex
	g  *grammar.Grammar
	p  *earley.Parser

	parsesServed atomic.Uint64
	items        atomic.Uint64
	updates      atomic.Uint64
}

// earleyScratch pools the per-parse options value so the steady-state
// recognition path allocates nothing; the chart itself is pooled inside
// package earley.
var earleyScratchPool = sync.Pool{New: func() any { return new(earley.Options) }}

// NewEarley builds an Earley engine for g; no precomputation happens.
func NewEarley(g *grammar.Grammar, reason string) *Earley {
	return &Earley{reason: reason, g: g, p: earley.New(g)}
}

// Kind implements Engine.
func (e *Earley) Kind() Kind { return KindEarley }

// Reason implements Engine.
func (e *Earley) Reason() string { return e.reason }

// Caps implements Engine.
func (e *Earley) Caps() Caps { return CapsOf(KindEarley) }

// Parse implements Engine: one chart pass; with buildTrees the
// completed items are threaded into a packed forest.
func (e *Earley) Parse(input []grammar.Symbol, buildTrees bool) (Result, error) {
	return e.parseTraced(input, buildTrees, nil)
}

// parseTraced implements traceParser (see trace.go) by handing the
// trace to the parser, which alone knows where the chart pass ends and
// the forest walk begins. A nil trace records nothing.
func (e *Earley) parseTraced(input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace) (Result, error) {
	return e.parseCancel(input, buildTrees, tr, nil)
}

// parseCancel implements cancelParser: the flag reaches the chart
// drive's per-set checkpoint and the forest walk.
func (e *Earley) parseCancel(input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace, fl *cancel.Flag) (Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.parsesServed.Add(1)
	opts := earleyScratchPool.Get().(*earley.Options)
	defer earleyScratchPool.Put(opts)
	*opts = earley.Options{BuildTrees: buildTrees, Trace: tr, Cancel: fl}
	res, err := e.p.Parse(input, opts)
	e.items.Add(uint64(res.Stats.Items))
	if err != nil {
		var cerr *cancel.Error
		if errors.As(err, &cerr) {
			return Result{}, err
		}
		return Result{}, fmt.Errorf("engine: earley parse: %w", err)
	}
	return Result{
		Accepted: res.Accepted,
		Root:     res.Root,
		Forest:   res.Forest,
		ErrorPos: res.ErrorPos,
		Expected: res.Expected,
	}, nil
}

// Recognize implements Engine.
func (e *Earley) Recognize(input []grammar.Symbol) (bool, error) {
	res, err := e.Parse(input, false)
	return res.Accepted, err
}

// Counters implements Engine: Earley items stand in for action calls —
// both count the per-token table/grammar consultations. Rule updates
// appear as StatesInvalidated-free modifications (nothing to
// invalidate: there is no table).
func (e *Earley) Counters() core.Counters {
	return core.Counters{
		ParsesServed: e.parsesServed.Load(),
		ActionCalls:  e.items.Load(),
	}
}

// Updates reports the number of rule updates applied to the engine.
func (e *Earley) Updates() uint64 { return e.updates.Load() }

// TableInfo implements Engine: there is no table at all.
func (e *Earley) TableInfo() TableInfo { return TableInfo{} }

// AddRule implements Engine: the grammar is the table, so the update is
// complete the moment the rule is added (the compiled view refreshes on
// the next parse).
func (e *Earley) AddRule(r *grammar.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.g.AddRule(r); err != nil {
		return fmt.Errorf("engine: earley add rule: %w", err)
	}
	e.updates.Add(1)
	return nil
}

// DeleteRule implements Engine.
func (e *Earley) DeleteRule(r *grammar.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.g.DeleteRule(r); err != nil {
		return fmt.Errorf("engine: earley delete rule: %w", err)
	}
	e.updates.Add(1)
	return nil
}

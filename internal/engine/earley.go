package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ipg/internal/core"
	"ipg/internal/earley"
	"ipg/internal/grammar"
)

// Earley is the table-free baseline behind the Engine interface: every
// parse step recomputes its information from the grammar, so rule
// updates cost nothing and acceptance covers every context-free grammar
// — at the price of the slowest per-token work of all backends, and no
// tree building. It is the flexibility end of the Fig 2.1 spectrum.
type Earley struct {
	reason string

	mu sync.RWMutex
	g  *grammar.Grammar
	p  *earley.Parser

	parsesServed atomic.Uint64
	items        atomic.Uint64
}

// NewEarley builds an Earley engine for g; no precomputation happens.
func NewEarley(g *grammar.Grammar, reason string) *Earley {
	return &Earley{reason: reason, g: g, p: earley.New(g)}
}

// Kind implements Engine.
func (e *Earley) Kind() Kind { return KindEarley }

// Reason implements Engine.
func (e *Earley) Reason() string { return e.reason }

// Caps implements Engine.
func (e *Earley) Caps() Caps { return CapsOf(KindEarley) }

// Parse implements Engine. Earley recognizes only: buildTrees is
// ignored (Caps().Trees is false), so an accepted Result carries no
// forest and the caller cannot learn the ambiguity degree — only
// accept/reject plus the rejection diagnostic.
func (e *Earley) Parse(input []grammar.Symbol, buildTrees bool) (Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.parsesServed.Add(1)
	ok, stats, errPos, expected := e.p.RecognizeDiag(input)
	e.items.Add(uint64(stats.Items))
	if ok {
		return Result{Accepted: true, ErrorPos: -1}, nil
	}
	return Result{ErrorPos: errPos, Expected: expected}, nil
}

// Recognize implements Engine.
func (e *Earley) Recognize(input []grammar.Symbol) (bool, error) {
	res, err := e.Parse(input, false)
	return res.Accepted, err
}

// Counters implements Engine: Earley items stand in for action calls —
// both count the per-token table/grammar consultations.
func (e *Earley) Counters() core.Counters {
	return core.Counters{
		ParsesServed: e.parsesServed.Load(),
		ActionCalls:  e.items.Load(),
	}
}

// TableInfo implements Engine: there is no table at all.
func (e *Earley) TableInfo() TableInfo { return TableInfo{} }

// AddRule implements Engine: the grammar is the table, so the update is
// complete the moment the rule is added.
func (e *Earley) AddRule(r *grammar.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.g.AddRule(r); err != nil {
		return fmt.Errorf("engine: earley add rule: %w", err)
	}
	return nil
}

// DeleteRule implements Engine.
func (e *Earley) DeleteRule(r *grammar.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.g.DeleteRule(r); err != nil {
		return fmt.Errorf("engine: earley delete rule: %w", err)
	}
	return nil
}

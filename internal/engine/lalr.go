package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ipg/internal/cancel"
	"ipg/internal/core"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lalr"
	"ipg/internal/obs"
)

// LALR is the Yacc baseline behind the Engine interface: an eagerly
// generated LALR(1) table. Conflict-free grammars are driven by the
// deterministic LR parser (the fast path the paper's Yacc comparison
// assumes); conflicted grammars fall back to the GSS parser over the
// same table, which simply splits where the lookaheads still allow more
// than one action. A grammar modification is spliced into the existing
// table by lalr.Table.Repair — only the states whose closures contained
// the modified nonterminal are touched — falling back to full
// regeneration when the repair declines (START rules, oversized damage
// frontiers, conflict-set changes).
type LALR struct {
	reason string

	// mu guards tbl/g against repairs/regenerations racing parses.
	mu  sync.RWMutex
	g   *grammar.Grammar
	tbl *lalr.Table

	parsesServed atomic.Uint64
	// repairs map onto the shared counter vocabulary: a repair "expands"
	// the states it re-expanded or created and "invalidates" those plus
	// the swept orphans; a fallback rebuild invalidates every old state
	// and expands every new one.
	expanded    atomic.Uint64
	invalidated atomic.Uint64
	repaired    atomic.Uint64
	fallbacks   atomic.Uint64
	updates     atomic.Uint64
}

// NewLALR eagerly generates the LALR(1) table for g.
func NewLALR(g *grammar.Grammar, reason string) *LALR {
	return newLALRFromTable(g, lalr.Generate(g), reason)
}

// newLALRFromTable adopts an already generated table (the auto prober
// builds one anyway to count conflicts; no point generating it twice).
func newLALRFromTable(g *grammar.Grammar, tbl *lalr.Table, reason string) *LALR {
	e := &LALR{reason: reason, g: g, tbl: tbl}
	e.expanded.Add(uint64(tbl.Automaton().Len()))
	return e
}

// Kind implements Engine.
func (e *LALR) Kind() Kind { return KindLALR }

// Reason implements Engine. Once rule updates have been absorbed, the
// reason records how: repaired in place vs regenerated.
func (e *LALR) Reason() string {
	u := e.updates.Load()
	if u == 0 {
		return e.reason
	}
	f := e.fallbacks.Load()
	return fmt.Sprintf("%s — %d/%d rule updates repaired in place (%d regenerated)",
		e.reason, u-f, u, f)
}

// Caps implements Engine.
func (e *LALR) Caps() Caps { return CapsOf(KindLALR) }

// Table exposes the current LALR(1) table (for conflict reports).
func (e *LALR) Table() *lalr.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tbl
}

// Parse implements Engine. Conflict-free tables use the deterministic
// LR-PARSE driver; conflicted ones the GSS driver.
func (e *LALR) Parse(input []grammar.Symbol, buildTrees bool) (Result, error) {
	return e.parseCancel(input, buildTrees, nil, nil)
}

// parseCancel implements cancelParser: both the deterministic and the
// GSS driver poll the flag at their checkpoints.
func (e *LALR) parseCancel(input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace, fl *cancel.Flag) (Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.parsesServed.Add(1)
	tr.BeginStage(obs.StageTable)
	defer tr.EndStage(obs.StageTable)
	if len(e.tbl.Conflicts()) == 0 {
		res, err := glr.Parse(e.tbl, input, &glr.Options{Engine: glr.Deterministic, DisableTrees: !buildTrees, Cancel: fl})
		// A conflict our detector does not model (e.g. accept/reduce on
		// $) surfaces here; the GSS driver handles it exactly.
		if !errors.Is(err, glr.ErrNondeterministic) {
			return res, err
		}
	}
	return glr.Parse(e.tbl, input, &glr.Options{Engine: glr.GSS, DisableTrees: !buildTrees, Cancel: fl})
}

// Recognize implements Engine.
func (e *LALR) Recognize(input []grammar.Symbol) (bool, error) {
	res, err := e.Parse(input, false)
	return res.Accepted, err
}

// Counters implements Engine: parses served, plus table repairs and
// rebuilds mapped onto the expanded/invalidated/repaired vocabulary.
func (e *LALR) Counters() core.Counters {
	return core.Counters{
		ParsesServed:      e.parsesServed.Load(),
		StatesExpanded:    e.expanded.Load(),
		StatesInvalidated: e.invalidated.Load(),
		StatesRepaired:    e.repaired.Load(),
		RepairFallbacks:   e.fallbacks.Load(),
	}
}

// TableInfo implements Engine: LALR tables are always fully generated.
func (e *LALR) TableInfo() TableInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := e.tbl.Automaton().Len()
	return TableInfo{States: n, Complete: n}
}

// AddRule implements Engine by splicing the new rule into the existing
// table: only the affected states are re-expanded and only moved
// lookaheads re-derived, so published state pointers stay valid and the
// cost is proportional to the damage, not the grammar (the paper's claim,
// applied to the Yacc baseline). Repairs the fall back regenerate.
func (e *LALR) AddRule(r *grammar.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.g.AddRule(r); err != nil {
		return fmt.Errorf("engine: lalr add rule: %w", err)
	}
	e.updateLocked(r)
	return nil
}

// DeleteRule implements Engine by splicing, like AddRule.
func (e *LALR) DeleteRule(r *grammar.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	stored, err := e.g.DeleteRule(r)
	if err != nil {
		return fmt.Errorf("engine: lalr delete rule: %w", err)
	}
	e.updateLocked(stored)
	return nil
}

// updateLocked absorbs one already-applied grammar mutation: repair in
// place when possible, full regeneration otherwise.
func (e *LALR) updateLocked(r *grammar.Rule) {
	e.updates.Add(1)
	st := e.tbl.Repair(r)
	if st.FellBack {
		e.fallbacks.Add(1)
		e.regenerateLocked()
		return
	}
	e.repaired.Add(uint64(st.Affected + st.Created))
	e.expanded.Add(uint64(st.Affected + st.Created))
	e.invalidated.Add(uint64(st.Affected + st.Removed))
}

func (e *LALR) regenerateLocked() {
	e.invalidated.Add(uint64(e.tbl.Automaton().Len()))
	e.tbl = lalr.Generate(e.g)
	e.expanded.Add(uint64(e.tbl.Automaton().Len()))
}

package engine

import (
	"sync"

	"ipg/internal/core"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// The LR completion cursor maintains the graph-structured stack of
// every viable LR(0) parse of the prefix — the same frontier the GSS
// parser would hold mid-input, frozen between tokens. Because LR(0)
// reductions are lookahead-independent, the reduce closure of the
// frontier can be committed once per position; after that, a terminal
// extends the prefix iff some frontier state shifts it, so Accepts is a
// read of the frontier states' transition rows — no simulation, no
// allocation. One implementation serves both LR backends: the lazy GLR
// generator (through a core.ParseSession view) and the eager LALR(1)
// table (through its LR(0) automaton — the LR(0) view is exact for
// acceptance, and reading it keeps the closure lookahead-free).
//
// Per-position node and edge spans live in one arena, so Checkpoint is
// the position and Restore is a truncation. The cursor captures the
// grammar version at open; any rule update, repair or regeneration
// makes every later operation fail with ErrCursorStale.

// gssNode is one frontier stack node: an automaton state plus the head
// of its predecessor-edge list (-1 for the start node).
type gssNode struct {
	state *lr.State
	edge  int32
}

// gssEdge links a node to one predecessor in the previous (or, after a
// reduce, the same) position's frontier.
type gssEdge struct {
	pred, next int32
}

// lrHost abstracts per-operation table access: the LALR engine hands
// out its automaton under the engine lock; the GLR engine opens a
// generator session (shared table access plus by-need expansion).
type lrHost interface {
	acquire() lr.Table
	release()
}

type lalrHost struct{ e *LALR }

func (h lalrHost) acquire() lr.Table {
	h.e.mu.RLock()
	return h.e.tbl.Automaton()
}

func (h lalrHost) release() { h.e.mu.RUnlock() }

// glrHost owns a ParseSession so lazy expansion and counter batching
// work exactly as in a parse. Each cursor operation is bracketed
// Begin/End (and therefore counted as one table consultation).
type glrHost struct {
	e    *GLR
	sess core.ParseSession
}

func (h *glrHost) acquire() lr.Table {
	h.sess.Begin(h.e.Generator())
	return &h.sess
}

func (h *glrHost) release() { h.sess.End() }

// OpenCursor implements Completer for the lazy-GLR backend.
func (e *GLR) OpenCursor() (Cursor, error) { return openGSSCursor(&glrHost{e: e}) }

// OpenCursor implements Completer for the LALR backend.
func (e *LALR) OpenCursor() (Cursor, error) { return openGSSCursor(lalrHost{e: e}) }

type gssCursor struct {
	host    lrHost
	version uint64
	vocab   *Vocab
	stale   bool

	nodes []gssNode
	edges []gssEdge
	// posStart[p]/edgeStart[p] are the arena offsets where position p's
	// nodes/edges begin; the current position runs to the arena end.
	posStart  []int32
	edgeStart []int32

	// Reusable scratch: action buffers (scratch holds the reduce loop's
	// actions, probe backs step's expansion forcing), reduce-path DFS
	// stacks and endpoint list.
	scratch []lr.Action
	probe   []lr.Action
	walkN   []int32
	walkD   []int32
	ends    []int32
}

var gssCursorPool = sync.Pool{New: func() any { return new(gssCursor) }}

func openGSSCursor(host lrHost) (Cursor, error) {
	c := gssCursorPool.Get().(*gssCursor)
	c.host = host
	c.stale = false
	tbl := host.acquire()
	defer host.release()
	c.version = tbl.Grammar().Version()
	c.vocab = NewVocab(tbl.Grammar())
	c.nodes = append(c.nodes[:0], gssNode{state: tbl.Start(), edge: -1})
	c.edges = c.edges[:0]
	c.posStart = append(c.posStart[:0], 0)
	c.edgeStart = append(c.edgeStart[:0], 0)
	c.closure(tbl)
	return c, nil
}

// use takes table access for one operation and verifies the grammar has
// not moved; the caller must release the host unless an error is
// returned.
func (c *gssCursor) use() (lr.Table, error) {
	if c.stale {
		return nil, ErrCursorStale
	}
	tbl := c.host.acquire()
	if tbl.Grammar().Version() != c.version {
		c.host.release()
		c.stale = true
		return nil, ErrCursorStale
	}
	return tbl, nil
}

// Vocab implements Cursor.
func (c *gssCursor) Vocab() *Vocab { return c.vocab }

// Pos implements Cursor.
func (c *gssCursor) Pos() int { return len(c.posStart) - 1 }

// Checkpoint implements Cursor.
func (c *gssCursor) Checkpoint() int { return c.Pos() }

// closure runs the frontier's reduce fixpoint: every reduction fires
// (LR(0) reduces need no lookahead), pushing goto states as new
// frontier nodes, until no node or edge is added. Reprocessing is
// idempotent — addNodeEdge dedups — so a plain sweep-until-quiet loop
// is enough (the worklist subtlety of a full GLR reducer buys nothing
// at completion query rates).
func (c *gssCursor) closure(tbl lr.Table) {
	base := c.posStart[len(c.posStart)-1]
	for changed := true; changed; {
		changed = false
		for i := base; i < int32(len(c.nodes)); i++ {
			if c.reduceNode(tbl, i) {
				changed = true
			}
		}
	}
}

// step returns st's successor on sym, or nil when the transition is
// undefined. The table's Goto cannot serve as this probe — it treats a
// missing transition as corruption and panics — so step reads the
// transition map directly, first forcing lazy expansion (an action
// probe) when the state is not yet complete.
func (c *gssCursor) step(tbl lr.Table, st *lr.State, sym grammar.Symbol) *lr.State {
	if st.Type != lr.Complete {
		c.probe = tbl.AppendActions(c.probe[:0], st, grammar.EOF)
	}
	return st.Transitions[sym]
}

// reduceNode fires every reduction of one frontier node, reporting
// whether the frontier grew.
func (c *gssCursor) reduceNode(tbl lr.Table, i int32) bool {
	c.scratch = tbl.AppendActions(c.scratch[:0], c.nodes[i].state, grammar.EOF)
	changed := false
	for _, a := range c.scratch {
		if a.Kind != lr.Reduce {
			continue
		}
		c.pathEnds(i, len(a.Rule.Rhs))
		for _, u := range c.ends {
			nxt := c.step(tbl, c.nodes[u].state, a.Rule.Lhs)
			if nxt == nil {
				continue
			}
			if c.addNodeEdge(nxt, u) {
				changed = true
			}
		}
	}
	return changed
}

// pathEnds collects into c.ends every node reachable from `from` by
// exactly depth predecessor edges (the stacks a reduce of that length
// pops to).
func (c *gssCursor) pathEnds(from int32, depth int) {
	c.ends = c.ends[:0]
	c.walkN = append(c.walkN[:0], from)
	c.walkD = append(c.walkD[:0], int32(depth))
	for len(c.walkN) > 0 {
		n := c.walkN[len(c.walkN)-1]
		d := c.walkD[len(c.walkD)-1]
		c.walkN = c.walkN[:len(c.walkN)-1]
		c.walkD = c.walkD[:len(c.walkD)-1]
		if d == 0 {
			c.ends = append(c.ends, n)
			continue
		}
		for e := c.nodes[n].edge; e >= 0; e = c.edges[e].next {
			c.walkN = append(c.walkN, c.edges[e].pred)
			c.walkD = append(c.walkD, d-1)
		}
	}
}

// addNodeEdge merges (state st, predecessor pred) into the current
// position's frontier, reporting whether a node or edge was new.
func (c *gssCursor) addNodeEdge(st *lr.State, pred int32) bool {
	base := c.posStart[len(c.posStart)-1]
	for i := base; i < int32(len(c.nodes)); i++ {
		if c.nodes[i].state != st {
			continue
		}
		for e := c.nodes[i].edge; e >= 0; e = c.edges[e].next {
			if c.edges[e].pred == pred {
				return false
			}
		}
		c.edges = append(c.edges, gssEdge{pred: pred, next: c.nodes[i].edge})
		c.nodes[i].edge = int32(len(c.edges) - 1)
		return true
	}
	c.edges = append(c.edges, gssEdge{pred: pred, next: -1})
	c.nodes = append(c.nodes, gssNode{state: st, edge: int32(len(c.edges) - 1)})
	return true
}

// Accepts implements Cursor: with the closure already committed, the
// accept set is the union of the frontier states' terminal transitions,
// plus EOF when any frontier state accepts. Warm calls allocate
// nothing.
func (c *gssCursor) Accepts(dst *TermSet) error {
	if _, err := c.use(); err != nil {
		return err
	}
	defer c.host.release()
	dst.Reset(c.vocab)
	base := c.posStart[len(c.posStart)-1]
	for i := base; i < int32(len(c.nodes)); i++ {
		st := c.nodes[i].state
		if st.Accept {
			dst.Add(grammar.EOF)
		}
		for sym := range st.Transitions {
			dst.Add(sym) // nonterminal (goto) edges fall outside the vocab
		}
	}
	return nil
}

// Feed implements Cursor: shift the frontier over t, then close the new
// position. No shift target anywhere in the frontier means t cannot
// extend the prefix; the arena is untouched and ErrRejected returned.
func (c *gssCursor) Feed(t grammar.Symbol) error {
	tbl, err := c.use()
	if err != nil {
		return err
	}
	defer c.host.release()
	if t == grammar.EOF || c.vocab.Index(t) < 0 {
		return ErrRejected
	}
	prev := c.posStart[len(c.posStart)-1]
	base := int32(len(c.nodes))
	c.posStart = append(c.posStart, base)
	c.edgeStart = append(c.edgeStart, int32(len(c.edges)))
	for i := prev; i < base; i++ {
		if nxt := c.step(tbl, c.nodes[i].state, t); nxt != nil {
			c.addNodeEdge(nxt, i)
		}
	}
	if int32(len(c.nodes)) == base {
		c.posStart = c.posStart[:len(c.posStart)-1]
		c.edgeStart = c.edgeStart[:len(c.edgeStart)-1]
		return ErrRejected
	}
	c.closure(tbl)
	return nil
}

// Restore implements Cursor: truncate the arenas back to the
// checkpointed position.
func (c *gssCursor) Restore(cp int) error {
	if c.stale {
		return ErrCursorStale
	}
	pos := c.Pos()
	if cp < 0 || cp > pos {
		return badRestore(cp, pos)
	}
	if cp == pos {
		return nil
	}
	c.nodes = c.nodes[:c.posStart[cp+1]]
	c.edges = c.edges[:c.edgeStart[cp+1]]
	c.posStart = c.posStart[:cp+1]
	c.edgeStart = c.edgeStart[:cp+1]
	return nil
}

// Close implements Cursor, scrubbing retained table pointers and
// returning the arenas to the pool.
func (c *gssCursor) Close() {
	c.nodes = c.nodes[:cap(c.nodes)]
	clear(c.nodes)
	c.nodes = c.nodes[:0]
	c.scratch = c.scratch[:cap(c.scratch)]
	clear(c.scratch)
	c.scratch = c.scratch[:0]
	c.probe = c.probe[:cap(c.probe)]
	clear(c.probe)
	c.probe = c.probe[:0]
	c.edges = c.edges[:0]
	c.posStart = c.posStart[:0]
	c.edgeStart = c.edgeStart[:0]
	c.vocab = nil
	c.host = nil
	c.stale = true
	gssCursorPool.Put(c)
}

package engine

import (
	"ipg/internal/cancel"
	"ipg/internal/grammar"
	"ipg/internal/obs"
)

// (Earley's traced parse lives in earley.go next to its untraced twin.)

// This file threads parse-lifecycle tracing (internal/obs) through the
// engine layer. Engines that can attribute their internal phases
// implement traceParser — Auto records engine selection, Earley splits
// chart work from forest construction — and everything else falls back
// to recording the whole parse as table/chart work, which is what an LR
// drive is. A nil trace makes every path a no-op, so the zero-alloc
// warm parse keeps these calls compiled in.

// traceParser is the optional stage-attribution capability.
type traceParser interface {
	parseTraced(input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace) (Result, error)
}

// TraceParse parses through e recording lifecycle stages into tr (nil
// tr traces nothing and costs only nil checks). It also stamps the
// concrete backend kind onto the trace, so auto entries attribute spans
// to the engine that actually served them.
func TraceParse(e Engine, input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace) (Result, error) {
	if tp, ok := e.(traceParser); ok {
		return tp.parseTraced(input, buildTrees, tr)
	}
	tr.BeginStage(obs.StageTable)
	res, err := e.Parse(input, buildTrees)
	tr.EndStage(obs.StageTable)
	return res, err
}

// parseTraced implements traceParser for Auto: selection (including any
// deferred re-probe) is its own stage, then the chosen backend records
// its phases and the span is attributed to it.
func (a *Auto) parseTraced(input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace) (Result, error) {
	return a.parseCancel(input, buildTrees, tr, nil)
}

// parseCancel implements cancelParser for Auto by delegating to the
// selected backend's cancel-aware path.
func (a *Auto) parseCancel(input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace, fl *cancel.Flag) (Result, error) {
	a.noteParse()
	tr.BeginStage(obs.StageSelect)
	cur := a.current()
	tr.EndStage(obs.StageSelect)
	tr.SetEngine(cur.Kind().String())
	if cp, ok := cur.(cancelParser); ok {
		return cp.parseCancel(input, buildTrees, tr, fl)
	}
	return TraceParse(cur, input, buildTrees, tr)
}

package engine_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ipg/internal/cancel"
	"ipg/internal/engine"
	"ipg/internal/faultinject"
	"ipg/internal/fixtures"
	"ipg/internal/grammar"
)

// guardFixture reads a BNF grammar from the repository testdata (the
// package-internal tests have their own copy of this helper).
func guardFixture(t testing.TB, name string) *grammar.Grammar {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	g, err := grammar.Parse(string(src), nil)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return g
}

// TestParseGuardedRecoversPanics pins the panic quarantine boundary:
// an engine panic surfaces as a structured *engine.PanicError carrying the
// stack, never as a crashed process.
func TestParseGuardedRecoversPanics(t *testing.T) {
	defer faultinject.Reset()
	g := guardFixture(t, "CalcDet.bnf")
	e, err := engine.New(engine.KindLALR, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	input := fixtures.Tokens(g, "n + n")
	faultinject.Set(faultinject.SiteDispatch,
		faultinject.Fault{Kind: faultinject.Panic, Times: 1})
	_, err = engine.ParseGuarded(e, input, false, nil, nil)
	var p *engine.PanicError
	if !errors.As(err, &p) {
		t.Fatalf("panic surfaced as %v, want *engine.PanicError", err)
	}
	if len(p.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	// The fault is exhausted: the engine serves again immediately.
	res, err := engine.ParseGuarded(e, input, false, nil, nil)
	if err != nil || !res.Accepted {
		t.Fatalf("parse after recovered panic: %v accepted=%v", err, res.Accepted)
	}
}

// TestCancelFlagAbortsEveryEngine drives a pre-fired cancellation flag
// through ParseGuarded on all four backends: each must abort at a
// checkpoint with the structured cancellation error instead of
// finishing the parse.
func TestCancelFlagAbortsEveryEngine(t *testing.T) {
	for _, tc := range []struct {
		kind    engine.Kind
		fixture string
	}{
		{engine.KindGLR, "CalcDet.bnf"},
		{engine.KindLALR, "CalcDet.bnf"},
		{engine.KindEarley, "CalcDet.bnf"},
		{engine.KindLL, "CalcLL.bnf"},
	} {
		g := guardFixture(t, tc.fixture)
		e, err := engine.New(tc.kind, g, nil)
		if err != nil {
			t.Fatalf("New(%v): %v", tc.kind, err)
		}
		input := fixtures.Tokens(g, "n + n * n + n")
		fl := new(cancel.Flag)
		fl.Cancel(cancel.Deadline)
		_, err = engine.ParseGuarded(e, input, false, nil, fl)
		if !errors.Is(err, cancel.ErrCanceled) {
			t.Errorf("%v: fired flag produced %v, want canceled", tc.kind, err)
		}
		var cerr *cancel.Error
		if !errors.As(err, &cerr) || cerr.Reason != cancel.Deadline {
			t.Errorf("%v: error %v carries no deadline reason", tc.kind, err)
		}
		// An unfired flag must not disturb the parse.
		res, err := engine.ParseGuarded(e, input, false, nil, new(cancel.Flag))
		if err != nil || !res.Accepted {
			t.Errorf("%v: unfired flag broke the parse: %v accepted=%v",
				tc.kind, err, res.Accepted)
		}
	}
}

// TestSessionGuardedCancelAndPanic covers the session mirror of the
// guard: canceled reparses surface the structured error, panics are
// recovered, and a healthy session keeps serving afterwards.
func TestSessionGuardedCancelAndPanic(t *testing.T) {
	defer faultinject.Reset()
	g := guardFixture(t, "CalcDet.bnf")
	e, err := engine.New(engine.KindEarley, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := engine.OpenSession(e, fixtures.Tokens(g, "n + n"))
	if err != nil {
		t.Fatal(err)
	}

	fl := new(cancel.Flag)
	fl.Cancel(cancel.ClientGone)
	if _, err := engine.ReparseGuarded(s, fl); !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("fired flag on reparse produced %v, want canceled", err)
	}

	faultinject.Set(faultinject.SiteDispatch,
		faultinject.Fault{Kind: faultinject.Panic, Times: 1})
	var p *engine.PanicError
	if _, err := engine.TreeGuarded(s, nil); !errors.As(err, &p) {
		t.Fatalf("session panic surfaced as %v, want *engine.PanicError", err)
	}
	faultinject.Reset()

	res, err := engine.ReparseGuarded(s, nil)
	if err != nil || !res.Accepted {
		t.Fatalf("session after recovered panic: %v accepted=%v", err, res.Accepted)
	}
}

// TestParseGuardedZeroAllocsWithFlag is the hot-path allocation pin for
// the cancellation checkpoints: the warm GLR path (the one the
// registry-level gate already pins at 0 allocs/op) must stay at zero
// through the guarded dispatch with a live (armed, never fired) flag
// threaded into every checkpoint.
func TestParseGuardedZeroAllocsWithFlag(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool lossy; allocation counts are meaningless under -race")
	}
	g := fixtures.Booleans()
	e, err := engine.New(engine.KindGLR, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// EOF-terminated input is the service's zero-alloc convention: a
	// bare token slice makes the GLR front end copy it to append the
	// end marker, which would show up here as a false positive.
	input := append(fixtures.Tokens(g, "true or false and true"), grammar.EOF)
	fl := new(cancel.Flag)
	for i := 0; i < 16; i++ {
		if res, err := engine.ParseGuarded(e, input, false, nil, fl); err != nil || !res.Accepted {
			t.Fatalf("warm-up: %v accepted=%v", err, res.Accepted)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		res, err := engine.ParseGuarded(e, input, false, nil, fl)
		if err != nil || !res.Accepted {
			t.Fatal("parse failed mid-measurement")
		}
	}); got != 0 {
		t.Errorf("warm guarded parse with armed flag: %v allocs/op, want 0", got)
	}
}

// TestGuardedFlagAddsNoAllocs pins the checkpoint overhead on the
// table-driven backends: their warm parses carry a small committed
// allocation baseline (see TestAllocRegressionGuard), and threading an
// armed cancellation flag through the guard must not add to it.
func TestGuardedFlagAddsNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool lossy; allocation counts are meaningless under -race")
	}
	for _, tc := range []struct {
		kind    engine.Kind
		fixture string
	}{
		{engine.KindLALR, "CalcDet.bnf"},
		{engine.KindLL, "CalcLL.bnf"},
	} {
		g := guardFixture(t, tc.fixture)
		e, err := engine.New(tc.kind, g, nil)
		if err != nil {
			t.Fatalf("New(%v): %v", tc.kind, err)
		}
		input := append(fixtures.Tokens(g, "n + n * n"), grammar.EOF)
		fl := new(cancel.Flag)
		for i := 0; i < 16; i++ {
			e.Parse(input, false)
			engine.ParseGuarded(e, input, false, nil, fl)
		}
		bare := testing.AllocsPerRun(200, func() { e.Parse(input, false) })
		armed := testing.AllocsPerRun(200, func() {
			engine.ParseGuarded(e, input, false, nil, fl)
		})
		if armed > bare {
			t.Errorf("%v: guarded parse with armed flag: %v allocs/op, bare parse %v — checkpoints must be free",
				tc.kind, armed, bare)
		}
	}
}

// TestCancelFlagErrReportsWork sanity-checks the structured error the
// engines raise on abort: position and token counts describe how far
// the drive got.
func TestCancelFlagErrReportsWork(t *testing.T) {
	fl := new(cancel.Flag)
	if fl.Hit() {
		t.Fatal("fresh flag reads fired")
	}
	fl.Cancel(cancel.Deadline)
	fl.Cancel(cancel.ClientGone) // loser: the first reason sticks
	if got := fl.Reason(); got != cancel.Deadline {
		t.Fatalf("reason after double Cancel = %v, want deadline", got)
	}
	err := fl.Err(7, 100, 42)
	var cerr *cancel.Error
	if !errors.As(err, &cerr) {
		t.Fatalf("Err returned %T", err)
	}
	if cerr.Reason != cancel.Deadline || cerr.Pos != 7 || cerr.Tokens != 100 || cerr.Work != 42 {
		t.Errorf("error fields = %+v", cerr)
	}
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Error("cancel.Error is not ErrCanceled")
	}
}

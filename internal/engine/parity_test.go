package engine

import (
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/forest"
	"ipg/internal/grammar"
)

// Cross-engine parity: the engines disagree about speed and capability,
// never about the language. For deterministic fixtures all tree-building
// engines — since the chart overhaul that includes Earley — must produce
// the identical (unique) tree; on ambiguous grammars the packed forests
// must represent the same derivations, including the SDF fixtures.

var paritySentences = []string{
	"n",
	"n + n",
	"n + n * n",
	"n * n + n",
	"( n + n ) * n",
	"n - n - n",
	"n / n / n * n",
	"( ( n ) )",
	"n + ( n - n ) * n",
	// rejections
	"",
	"n +",
	"+ n",
	"n n",
	"( n + n",
	"n )",
}

func treeOf(t *testing.T, e Engine, g *grammar.Grammar, input string) (bool, string) {
	t.Helper()
	res, err := e.Parse(fixtures.Tokens(g, input), true)
	if err != nil {
		t.Fatalf("%v.Parse(%q): %v", e.Kind(), input, err)
	}
	if res.Root == nil {
		return res.Accepted, ""
	}
	return res.Accepted, forest.String(res.Root, g.Symbols())
}

func TestParityDeterministicFixturesIdenticalTrees(t *testing.T) {
	for _, fixture := range []string{"CalcDet.bnf", "CalcLL.bnf"} {
		g := loadFixture(t, fixture)
		glrEng, err := New(KindGLR, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		lalrEng, err := New(KindLALR, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		earleyEng, err := New(KindEarley, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		var llEng Engine
		if e, err := NewLL(g, "requested"); err == nil {
			llEng = e
		} else if fixture == "CalcLL.bnf" {
			t.Fatalf("CalcLL.bnf must be LL(1): %v", err)
		}

		for _, input := range paritySentences {
			glrOK, glrTree := treeOf(t, glrEng, g, input)
			lalrOK, lalrTree := treeOf(t, lalrEng, g, input)
			if glrOK != lalrOK || glrTree != lalrTree {
				t.Errorf("%s %q: GLR (ok=%v %s) != LALR (ok=%v %s)",
					fixture, input, glrOK, glrTree, lalrOK, lalrTree)
			}
			if llEng != nil {
				llOK, llTree := treeOf(t, llEng, g, input)
				if llOK != glrOK || llTree != glrTree {
					t.Errorf("%s %q: LL (ok=%v %s) != GLR (ok=%v %s)",
						fixture, input, llOK, llTree, glrOK, glrTree)
				}
			}
			// Earley is tree-capable since the chart overhaul: full tree
			// identity, not just accept/reject agreement.
			earleyOK, earleyTree := treeOf(t, earleyEng, g, input)
			if earleyOK != glrOK || earleyTree != glrTree {
				t.Errorf("%s %q: Earley (ok=%v %s) != GLR (ok=%v %s)",
					fixture, input, earleyOK, earleyTree, glrOK, glrTree)
			}
		}
	}
}

func TestParityAmbiguousGrammarAcceptance(t *testing.T) {
	g := grammar.MustParse(ambiguousText)
	glrEng, _ := New(KindGLR, g, nil)
	lalrEng, _ := New(KindLALR, g, nil) // conflicted table drives GSS
	earleyEng, _ := New(KindEarley, g, nil)

	for _, input := range []string{"n", "n + n", "n + n + n", "n + n + n + n", "", "+ n", "n +"} {
		toks := fixtures.Tokens(g, input)
		glrRes, err := glrEng.Parse(toks, true)
		if err != nil {
			t.Fatal(err)
		}
		lalrRes, err := lalrEng.Parse(toks, true)
		if err != nil {
			t.Fatal(err)
		}
		earleyRes, err := earleyEng.Parse(toks, true)
		if err != nil {
			t.Fatal(err)
		}
		if glrRes.Accepted != lalrRes.Accepted || glrRes.Accepted != earleyRes.Accepted {
			t.Errorf("%q: GLR=%v LALR=%v Earley=%v", input, glrRes.Accepted, lalrRes.Accepted, earleyRes.Accepted)
		}
		if glrRes.Root != nil && lalrRes.Root != nil {
			nGLR, _ := forest.TreeCount(glrRes.Root)
			nLALR, _ := forest.TreeCount(lalrRes.Root)
			if nGLR != nLALR {
				t.Errorf("%q: GLR counts %d derivations, LALR-over-GSS %d", input, nGLR, nLALR)
			}
			// The packed Earley forest must represent exactly the same
			// derivations, and render identically (alternatives sort).
			if earleyRes.Root == nil {
				t.Errorf("%q: Earley accepted without a forest", input)
			} else {
				nEarley, _ := forest.TreeCount(earleyRes.Root)
				if nEarley != nGLR {
					t.Errorf("%q: Earley packs %d derivations, GLR %d", input, nEarley, nGLR)
				}
				eStr := forest.String(earleyRes.Root, g.Symbols())
				gStr := forest.String(glrRes.Root, g.Symbols())
				if eStr != gStr {
					t.Errorf("%q: packed forests render differently\nearley: %s\nglr:    %s", input, eStr, gStr)
				}
			}
		}
	}
}

// Completion-engine tests: cross-engine accept-set parity (the four
// backends must answer identical "what may come next" sets, since all
// four recognize the same language), checkpoint/restore semantics,
// staleness on grammar modification, and the Earley-vs-LALR fuzz
// differential. The allocation pins live in complete_alloc_test.go.
package engine_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipg/internal/engine"
	"ipg/internal/fixtures"
	"ipg/internal/grammar"
	"ipg/internal/harness"
	"ipg/internal/sdf"
)

// completeEngines builds one engine per kind on the shared grammar.
func completeEngines(t testing.TB, g *grammar.Grammar, kinds ...engine.Kind) map[string]engine.Engine {
	t.Helper()
	out := make(map[string]engine.Engine, len(kinds))
	for _, k := range kinds {
		e, err := engine.New(k, g, nil)
		if err != nil {
			t.Fatalf("engine %v: %v", k, err)
		}
		out[k.String()] = e
	}
	return out
}

// acceptNames renders c's accept set as a deterministic string (names in
// bit order), failing the test on cursor errors.
func acceptNames(t testing.TB, name string, c engine.Cursor, set *engine.TermSet) string {
	t.Helper()
	if err := c.Accepts(set); err != nil {
		t.Fatalf("%s: Accepts at pos %d: %v", name, c.Pos(), err)
	}
	return strings.Join(set.AppendNames(nil), " ")
}

// parityStep asserts every open cursor answers the same accept set and
// returns it (as the name string plus one representative TermSet).
func parityStep(t *testing.T, cursors map[string]engine.Cursor, sets map[string]*engine.TermSet) string {
	t.Helper()
	want, ref := "", ""
	for name, c := range cursors {
		got := acceptNames(t, name, c, sets[name])
		if ref == "" {
			want, ref = got, name
			continue
		}
		if got != want {
			t.Fatalf("accept-set divergence at pos %d:\n  %s: {%s}\n  %s: {%s}",
				c.Pos(), ref, want, name, got)
		}
	}
	return want
}

// parityWalk feeds tokens through cursors on every engine, asserting
// accept-set parity before each step and that each fed token was in the
// predicted set.
func parityWalk(t *testing.T, engines map[string]engine.Engine, tokens []grammar.Symbol) {
	t.Helper()
	cursors := map[string]engine.Cursor{}
	sets := map[string]*engine.TermSet{}
	for name, e := range engines {
		c, rej, err := engine.OpenCursor(e, nil)
		if err != nil {
			t.Fatalf("%s: OpenCursor: rej=%d %v", name, rej, err)
		}
		defer c.Close()
		cursors[name] = c
		sets[name] = new(engine.TermSet)
	}
	for i, tok := range tokens {
		if tok == grammar.EOF && i == len(tokens)-1 {
			break
		}
		parityStep(t, cursors, sets)
		for name, c := range cursors {
			if !sets[name].Has(tok) {
				t.Fatalf("%s: token %d not in accept set but sentence is valid", name, i)
			}
			if err := c.Feed(tok); err != nil {
				t.Fatalf("%s: Feed token %d: %v", name, i, err)
			}
		}
	}
	// The full sentence is in the language: EOF must be accepted.
	for name, c := range cursors {
		acceptNames(t, name, c, sets[name])
		if !sets[name].Has(grammar.EOF) {
			t.Errorf("%s: EOF not accepted after complete sentence", name)
		}
	}
}

func TestCompleteCaps(t *testing.T) {
	for _, k := range engine.Kinds() {
		if !engine.CapsOf(k).Complete {
			t.Errorf("CapsOf(%v).Complete = false", k)
		}
	}
	g := guardFixture(t, "CalcLL.bnf")
	for name, e := range completeEngines(t, g, engine.KindGLR, engine.KindLALR, engine.KindLL, engine.KindEarley, engine.KindAuto) {
		if !e.Caps().Complete {
			t.Errorf("%s: Caps().Complete = false", name)
		}
		if engine.CompleterOf(e) == nil {
			t.Errorf("%s: CompleterOf = nil", name)
		}
	}
}

func TestAcceptSetParityDeterministic(t *testing.T) {
	sentences := []string{
		"n",
		"( ( n ) )",
		"n + n * ( n - n ) / n",
		"n * n * n + n",
	}
	// The factored grammar is in every backend's scope.
	ll := guardFixture(t, "CalcLL.bnf")
	llEngines := completeEngines(t, ll, engine.KindGLR, engine.KindLALR, engine.KindLL, engine.KindEarley)
	// The left-recursive variant excludes LL but adds the auto path.
	det := guardFixture(t, "CalcDet.bnf")
	detEngines := completeEngines(t, det, engine.KindGLR, engine.KindLALR, engine.KindEarley, engine.KindAuto)
	for _, s := range sentences {
		parityWalk(t, llEngines, fixtures.Tokens(ll, s))
		parityWalk(t, detEngines, fixtures.Tokens(det, s))
	}
}

// TestAcceptSetParityCrossGrammar pins the language-level claim: the
// stratified and the factored calculator accept the same language, so
// at every prefix position their accept sets must agree by name even
// though the grammars (and engines) differ.
func TestAcceptSetParityCrossGrammar(t *testing.T) {
	det := guardFixture(t, "CalcDet.bnf")
	ll := guardFixture(t, "CalcLL.bnf")
	detEng := completeEngines(t, det, engine.KindLALR)["lalr"]
	llEng := completeEngines(t, ll, engine.KindLL)["ll"]
	sentence := "n + n * ( n - n ) / n"
	detC, _, err := engine.OpenCursor(detEng, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer detC.Close()
	llC, _, err := engine.OpenCursor(llEng, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer llC.Close()
	var detSet, llSet engine.TermSet
	detToks, llToks := fixtures.Tokens(det, sentence), fixtures.Tokens(ll, sentence)
	for i := range detToks {
		a := acceptNames(t, "lalr/CalcDet", detC, &detSet)
		b := acceptNames(t, "ll/CalcLL", llC, &llSet)
		if a != b {
			t.Fatalf("cross-grammar divergence at pos %d: det {%s} vs ll {%s}", i, a, b)
		}
		if err := detC.Feed(detToks[i]); err != nil {
			t.Fatal(err)
		}
		if err := llC.Feed(llToks[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAcceptSetParityRandomWalks drives all four backends down random
// viable prefixes chosen from the accept sets themselves, probing one
// rejected terminal per step for rejection parity.
func TestAcceptSetParityRandomWalks(t *testing.T) {
	g := guardFixture(t, "CalcLL.bnf")
	engines := completeEngines(t, g, engine.KindGLR, engine.KindLALR, engine.KindLL, engine.KindEarley)
	vocab := engine.NewVocab(g)
	const walks, depth = 8, 24
	for w := 0; w < walks; w++ {
		cursors := map[string]engine.Cursor{}
		sets := map[string]*engine.TermSet{}
		for name, e := range engines {
			c, _, err := engine.OpenCursor(e, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			cursors[name] = c
			sets[name] = new(engine.TermSet)
		}
		rng := uint32(w*2654435761 + 12345)
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			return int(rng>>16) % n
		}
		for step := 0; step < depth; step++ {
			parityStep(t, cursors, sets)
			ref := sets["glr"]
			var in, out []grammar.Symbol
			for _, term := range vocab.Terms() {
				if term == grammar.EOF {
					continue
				}
				if ref.Has(term) {
					in = append(in, term)
				} else {
					out = append(out, term)
				}
			}
			// Rejection parity: a terminal outside the set must be
			// refused by every backend without moving the cursor.
			if len(out) > 0 {
				bad := out[next(len(out))]
				for name, c := range cursors {
					pos := c.Pos()
					if err := c.Feed(bad); !errors.Is(err, engine.ErrRejected) {
						t.Fatalf("%s: Feed(rejected %q) err = %v, want ErrRejected",
							name, g.Symbols().Name(bad), err)
					}
					if c.Pos() != pos {
						t.Fatalf("%s: rejected Feed moved cursor %d -> %d", name, pos, c.Pos())
					}
				}
			}
			if len(in) == 0 {
				break // only EOF remains; the walk is a complete sentence
			}
			tok := in[next(len(in))]
			for name, c := range cursors {
				if err := c.Feed(tok); err != nil {
					t.Fatalf("%s: Feed accepted token: %v", name, err)
				}
			}
		}
		for _, c := range cursors {
			c.Close()
		}
	}
}

// TestAcceptSetParityAmbiguous runs parity on an ambiguous grammar: the
// GSS frontier (GLR and the LALR automaton view) and the Earley chart
// must agree even when the prefix has many derivations.
func TestAcceptSetParityAmbiguous(t *testing.T) {
	g, err := grammar.Parse("START ::= E\nE ::= E \"+\" E | \"n\"", nil)
	if err != nil {
		t.Fatal(err)
	}
	engines := completeEngines(t, g, engine.KindGLR, engine.KindLALR, engine.KindEarley)
	parityWalk(t, engines, fixtures.Tokens(g, "n + n + n + n"))
}

// TestAcceptSetParitySDF walks a prefix of the paper's own workload —
// an SDF definition under the bootstrap grammar — through the three
// general backends.
func TestAcceptSetParitySDF(t *testing.T) {
	g := sdf.MustBootstrapGrammar()
	inputs, err := harness.LoadInputs("../../testdata", g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	tokens := inputs[0].Tokens // exp.sdf, the smallest of Fig 7.1
	if len(tokens) > 48 {
		tokens = tokens[:48]
	}
	engines := completeEngines(t, g, engine.KindGLR, engine.KindLALR, engine.KindEarley)
	cursors := map[string]engine.Cursor{}
	sets := map[string]*engine.TermSet{}
	for name, e := range engines {
		c, _, err := engine.OpenCursor(e, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer c.Close()
		cursors[name] = c
		sets[name] = new(engine.TermSet)
	}
	for i, tok := range tokens {
		if tok == grammar.EOF {
			break
		}
		parityStep(t, cursors, sets)
		for name, c := range cursors {
			if !sets[name].Has(tok) {
				t.Fatalf("%s: exp.sdf token %d not in accept set", name, i)
			}
			if err := c.Feed(tok); err != nil {
				t.Fatalf("%s: Feed exp.sdf token %d: %v", name, i, err)
			}
		}
	}
}

func TestCursorCheckpointRestore(t *testing.T) {
	g := guardFixture(t, "CalcLL.bnf")
	for name, e := range completeEngines(t, g, engine.KindGLR, engine.KindLALR, engine.KindLL, engine.KindEarley) {
		t.Run(name, func(t *testing.T) {
			c, rej, err := engine.OpenCursor(e, fixtures.Tokens(g, "n +"))
			if err != nil {
				t.Fatalf("OpenCursor: rej=%d %v", rej, err)
			}
			defer c.Close()
			var set engine.TermSet
			atMark := acceptNames(t, name, c, &set)
			cp := c.Checkpoint()
			if cp != 2 {
				t.Fatalf("Checkpoint = %d, want 2", cp)
			}
			if n, err := engine.FeedAll(c, fixtures.Tokens(g, "n * n")); err != nil {
				t.Fatalf("FeedAll: token %d: %v", n, err)
			}
			if c.Pos() != 5 {
				t.Fatalf("Pos = %d, want 5", c.Pos())
			}
			if got := acceptNames(t, name, c, &set); got == atMark {
				t.Fatalf("accept set unchanged after feeding — {%s}", got)
			}
			if err := c.Restore(cp); err != nil {
				t.Fatalf("Restore(%d): %v", cp, err)
			}
			if got := acceptNames(t, name, c, &set); got != atMark {
				t.Fatalf("after Restore: {%s}, want {%s}", got, atMark)
			}
			// The restored cursor must advance again.
			if n, err := engine.FeedAll(c, fixtures.Tokens(g, "n")); err != nil {
				t.Fatalf("re-feed after Restore: token %d: %v", n, err)
			}
			// Rewind to the empty prefix, then out-of-range restores.
			if err := c.Restore(0); err != nil {
				t.Fatalf("Restore(0): %v", err)
			}
			if c.Pos() != 0 {
				t.Fatalf("Pos after Restore(0) = %d", c.Pos())
			}
			if err := c.Restore(5); err == nil || errors.Is(err, engine.ErrCursorStale) {
				t.Fatalf("Restore(future) err = %v, want out-of-range error", err)
			}
			if err := c.Restore(-1); err == nil {
				t.Fatal("Restore(-1) succeeded")
			}
		})
	}
}

func TestCursorStaleAfterRuleUpdate(t *testing.T) {
	for name, kind := range map[string]engine.Kind{
		"glr": engine.KindGLR, "lalr": engine.KindLALR,
		"ll": engine.KindLL, "earley": engine.KindEarley,
	} {
		t.Run(name, func(t *testing.T) {
			g := guardFixture(t, "CalcLL.bnf")
			e, err := engine.New(kind, g, nil)
			if err != nil {
				t.Fatal(err)
			}
			c, _, err := engine.OpenCursor(e, fixtures.Tokens(g, "n +"))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			// F ::= "id" keeps the grammar LL(1): the new alternative
			// starts with a fresh terminal.
			mod, err := grammar.Parse(`F ::= "id"`, g.Symbols())
			if err != nil {
				t.Fatal(err)
			}
			if err := e.AddRule(mod.Rules()[0]); err != nil {
				t.Fatal(err)
			}
			var set engine.TermSet
			if err := c.Accepts(&set); !errors.Is(err, engine.ErrCursorStale) {
				t.Fatalf("Accepts after AddRule err = %v, want ErrCursorStale", err)
			}
			if err := c.Feed(fixtures.Tokens(g, "n")[0]); !errors.Is(err, engine.ErrCursorStale) {
				t.Fatalf("Feed after AddRule err = %v, want ErrCursorStale", err)
			}
			// A fresh cursor sees the new grammar: "id" is now viable.
			c2, _, err := engine.OpenCursor(e, fixtures.Tokens(g, "n +"))
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			if err := c2.Feed(fixtures.Tokens(g, "id")[0]); err != nil {
				t.Fatalf("fresh cursor Feed(id): %v", err)
			}
		})
	}
}

func TestOneShotAccepts(t *testing.T) {
	g := guardFixture(t, "CalcDet.bnf")
	e, err := engine.New(engine.KindLALR, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	var set engine.TermSet
	if rej, err := engine.Accepts(e, fixtures.Tokens(g, "n + ( n"), &set); err != nil || rej != -1 {
		t.Fatalf("Accepts(viable) = %d, %v", rej, err)
	}
	for _, want := range []string{")", "+", "*"} {
		sym, _ := g.Symbols().Lookup(want)
		if !set.Has(sym) {
			t.Errorf("accept set after 'n + ( n' misses %q: {%s}", want, strings.Join(set.AppendNames(nil), " "))
		}
	}
	if set.Has(grammar.EOF) {
		t.Error("EOF accepted inside parentheses")
	}
	// A trailing end marker in the prefix is tolerated.
	if rej, err := engine.Accepts(e, append(fixtures.Tokens(g, "n"), grammar.EOF), &set); err != nil || rej != -1 {
		t.Fatalf("Accepts(with end marker) = %d, %v", rej, err)
	}
	if !set.Has(grammar.EOF) {
		t.Error("EOF not accepted after complete sentence")
	}
	// Non-viable prefix: the reject position indexes the offending token.
	if rej, err := engine.Accepts(e, fixtures.Tokens(g, "n + ) n"), &set); !errors.Is(err, engine.ErrRejected) || rej != 2 {
		t.Fatalf("Accepts(non-viable) = %d, %v; want 2, ErrRejected", rej, err)
	}
}

func TestTermSetEncoding(t *testing.T) {
	g := guardFixture(t, "CalcDet.bnf")
	v := engine.NewVocab(g)
	// Terminals sorted by name: $ ( ) * + - / n — eight bits, one byte.
	wantNames := []string{"$", "(", ")", "*", "+", "-", "/", "n"}
	if got := strings.Join(v.Names(), " "); got != strings.Join(wantNames, " ") {
		t.Fatalf("vocab = %q", got)
	}
	var set engine.TermSet
	set.Reset(v)
	if set.Count() != 0 || set.Hex() != "00" {
		t.Fatalf("empty set: count=%d hex=%q", set.Count(), set.Hex())
	}
	n, _ := g.Symbols().Lookup("n")
	set.Add(n)
	set.Add(grammar.EOF)
	if set.Count() != 2 || !set.Has(n) || !set.Has(grammar.EOF) {
		t.Fatalf("set after adds: count=%d", set.Count())
	}
	// "n" is bit 7, "$" bit 0: byte 0x81.
	if got := set.Hex(); got != "81" {
		t.Fatalf("Hex = %q, want 81", got)
	}
	if got := strings.Join(set.AppendNames(nil), " "); got != "$ n" {
		t.Fatalf("AppendNames = %q", got)
	}
}

// FuzzAccepts is the Earley-vs-LALR differential: arbitrary byte
// strings map to token streams, and at every step the chart-driven and
// the table-driven accept sets (and accept/reject verdicts) must agree.
func FuzzAccepts(f *testing.F) {
	src, err := grammar.Parse(mustReadFixture(f, "CalcDet.bnf"), nil)
	if err != nil {
		f.Fatal(err)
	}
	vocab := engine.NewVocab(src)
	lalrEng, err := engine.New(engine.KindLALR, src, nil)
	if err != nil {
		f.Fatal(err)
	}
	earleyEng, err := engine.New(engine.KindEarley, src, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("n+n*n"))
	f.Add([]byte("((n))"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte("))((nn"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		lc, _, err := engine.OpenCursor(lalrEng, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer lc.Close()
		ec, _, err := engine.OpenCursor(earleyEng, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer ec.Close()
		var ls, es engine.TermSet
		terms := vocab.Terms()
		for i, b := range data {
			if err := lc.Accepts(&ls); err != nil {
				t.Fatal(err)
			}
			if err := ec.Accepts(&es); err != nil {
				t.Fatal(err)
			}
			if !ls.Equal(&es) {
				t.Fatalf("step %d: lalr {%s} vs earley {%s}",
					i, strings.Join(ls.AppendNames(nil), " "), strings.Join(es.AppendNames(nil), " "))
			}
			tok := terms[int(b)%len(terms)]
			lerr, eerr := lc.Feed(tok), ec.Feed(tok)
			if (lerr == nil) != (eerr == nil) {
				t.Fatalf("step %d feeding %q: lalr err %v, earley err %v",
					i, src.Symbols().Name(tok), lerr, eerr)
			}
			if lerr != nil {
				if !errors.Is(lerr, engine.ErrRejected) || !errors.Is(eerr, engine.ErrRejected) {
					t.Fatalf("step %d: non-rejection errors %v / %v", i, lerr, eerr)
				}
			}
			if lc.Pos() != ec.Pos() {
				t.Fatalf("step %d: positions diverged %d vs %d", i, lc.Pos(), ec.Pos())
			}
		}
	})
}

// mustReadFixture reads a testdata grammar source for fuzz setup
// (guardFixture wants a full *grammar.Grammar; fuzz setup parses
// against its own symbol table).
func mustReadFixture(f *testing.F, name string) string {
	f.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		f.Fatal(err)
	}
	return string(src)
}

package engine

import (
	"errors"
	"fmt"

	"ipg/internal/cancel"
	"ipg/internal/earley"
	"ipg/internal/grammar"
)

// Session is a stateful document bound to one engine: the editor-style
// workload of open once, splice many times, reparse after each batch of
// edits. Engines that retain parse state across edits (Earley's chart)
// reuse everything left of the leftmost damaged token; the others parse
// from scratch behind the same interface, so `auto` entries keep
// working regardless of the backend selected.
//
// A Session is NOT safe for concurrent use — callers serialize access
// (the registry layer wraps each session in a mutex). Grammar updates
// on the owning engine remain safe: sessions take the engine's reader
// lock around every reparse and notice version changes.
type Session interface {
	// Engine identifies the concrete backend serving this session.
	Engine() Kind
	// Incremental reports whether reparses reuse retained state (false
	// means every Reparse is a from-scratch parse).
	Incremental() bool
	// Len returns the current token count.
	Len() int
	// Splice replaces tokens[at : at+removed] with insert. The edit is
	// applied to the retained document only; call Reparse or Tree to
	// bring the parse up to date.
	Splice(at, removed int, insert []grammar.Symbol) error
	// Reparse brings the session up to date with its tokens and returns
	// the recognition result.
	Reparse() (Result, error)
	// Tree reparses if needed and builds the parse forest.
	Tree() (Result, error)
	// Stats returns the session's reuse accounting.
	Stats() SessionStats
	// Close releases retained state. Further calls are undefined.
	Close()
}

// SessionStats is a point-in-time snapshot of one session's document
// size and incremental-reuse accounting. For fallback (full-reparse)
// sessions, every reparse is counted in FullReparses and the set
// counters stay zero.
type SessionStats struct {
	Tokens       int
	Sets         int
	Items        int
	Reparses     uint64
	FullReparses uint64
	SetsReused   uint64
	SetsRebuilt  uint64
	LastReused   int
	LastRebuilt  int
	ForestNodes  int
}

// ErrSplice reports an out-of-range or malformed splice (the session's
// document is unchanged). Serve maps it to 416.
var ErrSplice = earley.ErrSplice

// sessionOpener is the optional capability behind OpenSession: engines
// that can serve a session natively implement it.
type sessionOpener interface {
	OpenSession(input []grammar.Symbol) (Session, error)
}

// OpenSession opens a document session over input (a trailing end
// marker is dropped) on e. Earley-backed engines — including auto
// entries currently running Earley — get chart-reuse sessions; every
// other backend gets a full-reparse fallback. Auto sessions pin the
// backend selected at open time: a later churn-driven reselection does
// not migrate live sessions.
func OpenSession(e Engine, input []grammar.Symbol) (Session, error) {
	if a, ok := e.(*Auto); ok {
		return OpenSession(a.current(), input)
	}
	if so, ok := e.(sessionOpener); ok {
		return so.OpenSession(input)
	}
	return newFallbackSession(e, input), nil
}

// earleySession is the incremental session: a retained earley.Doc whose
// chart survives across reparses. The Doc runs in tree mode (it records
// completions) so Tree is always available; Reparse still reports pure
// recognition.
type earleySession struct {
	e *Earley
	d *earley.Doc
}

// OpenSession implements the engine-level session capability for
// Earley.
func (e *Earley) OpenSession(input []grammar.Symbol) (Session, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return &earleySession{e: e, d: e.p.OpenDoc(input, true)}, nil
}

func (s *earleySession) Engine() Kind      { return KindEarley }
func (s *earleySession) Incremental() bool { return true }
func (s *earleySession) Len() int          { return s.d.Len() }

func (s *earleySession) Splice(at, removed int, insert []grammar.Symbol) error {
	return s.d.Splice(at, removed, insert)
}

func (s *earleySession) Reparse() (Result, error) { return s.ReparseCancel(nil) }

// ReparseCancel implements cancelSession: the incremental chart drive
// polls the flag at its per-set checkpoints.
func (s *earleySession) ReparseCancel(fl *cancel.Flag) (Result, error) {
	s.e.mu.RLock()
	defer s.e.mu.RUnlock()
	s.e.parsesServed.Add(1)
	res, err := s.d.ReparseCancel(fl)
	s.e.items.Add(uint64(res.Stats.Items))
	if err != nil {
		return Result{}, err
	}
	return Result{
		Accepted: res.Accepted,
		ErrorPos: res.ErrorPos,
		Expected: res.Expected,
	}, nil
}

func (s *earleySession) Tree() (Result, error) { return s.TreeCancel(nil) }

// TreeCancel implements cancelSession.
func (s *earleySession) TreeCancel(fl *cancel.Flag) (Result, error) {
	s.e.mu.RLock()
	defer s.e.mu.RUnlock()
	s.e.parsesServed.Add(1)
	res, err := s.d.TreeCancel(fl)
	if err != nil {
		var cerr *cancel.Error
		if errors.As(err, &cerr) {
			return Result{}, err
		}
		return Result{}, fmt.Errorf("engine: earley session tree: %w", err)
	}
	s.e.items.Add(uint64(res.Stats.Items))
	return Result{
		Accepted: res.Accepted,
		Root:     res.Root,
		Forest:   res.Forest,
		ErrorPos: res.ErrorPos,
		Expected: res.Expected,
	}, nil
}

func (s *earleySession) Stats() SessionStats {
	st := s.d.Stats()
	return SessionStats{
		Tokens:       st.Tokens,
		Sets:         st.Sets,
		Items:        st.Items,
		Reparses:     st.Reparses,
		FullReparses: st.FullReparses,
		SetsReused:   st.SetsReused,
		SetsRebuilt:  st.SetsRebuilt,
		LastReused:   st.LastReused,
		LastRebuilt:  st.LastRebuilt,
		ForestNodes:  st.ForestNodes,
	}
}

func (s *earleySession) Close() { s.d = nil }

// ResetForest drops the session's retained forest (it regrows on the
// next Tree call); the registry uses it to heal sessions that outgrow a
// forest-node budget.
func (s *earleySession) ResetForest() { s.d.ResetForest() }

// ForestResetter is implemented by sessions whose retained forest can
// be dropped and rebuilt (see earleySession.ResetForest).
type ForestResetter interface{ ResetForest() }

// fallbackSession serves the Session interface on engines without
// retained-state reuse: it keeps only the token stream and runs a
// from-scratch parse on every Reparse/Tree.
type fallbackSession struct {
	e      Engine
	tokens []grammar.Symbol

	reparses uint64
	last     Result
	valid    bool // last holds the recognition result for tokens
}

func newFallbackSession(e Engine, input []grammar.Symbol) *fallbackSession {
	if n := len(input); n > 0 && input[n-1] == grammar.EOF {
		input = input[:n-1]
	}
	return &fallbackSession{e: e, tokens: append([]grammar.Symbol(nil), input...)}
}

func (s *fallbackSession) Engine() Kind      { return s.e.Kind() }
func (s *fallbackSession) Incremental() bool { return false }
func (s *fallbackSession) Len() int          { return len(s.tokens) }

func (s *fallbackSession) Splice(at, removed int, insert []grammar.Symbol) error {
	if at < 0 || removed < 0 || at > len(s.tokens) || removed > len(s.tokens)-at {
		return fmt.Errorf("%w: at=%d remove=%d len=%d", ErrSplice, at, removed, len(s.tokens))
	}
	for _, sym := range insert {
		if sym == grammar.EOF {
			return fmt.Errorf("%w: cannot insert end marker", ErrSplice)
		}
	}
	out := make([]grammar.Symbol, 0, len(s.tokens)-removed+len(insert))
	out = append(out, s.tokens[:at]...)
	out = append(out, insert...)
	out = append(out, s.tokens[at+removed:]...)
	s.tokens = out
	s.valid = false
	return nil
}

func (s *fallbackSession) Reparse() (Result, error) { return s.ReparseCancel(nil) }

// ReparseCancel implements cancelSession: the from-scratch parse runs
// through the backend's cancel-aware path when it has one.
func (s *fallbackSession) ReparseCancel(fl *cancel.Flag) (Result, error) {
	if s.valid {
		return s.last, nil
	}
	res, err := parseMaybeCancel(s.e, s.tokens, false, fl)
	if err != nil {
		return Result{}, err
	}
	s.reparses++
	s.last, s.valid = res, true
	return res, nil
}

func (s *fallbackSession) Tree() (Result, error) { return s.TreeCancel(nil) }

// TreeCancel implements cancelSession.
func (s *fallbackSession) TreeCancel(fl *cancel.Flag) (Result, error) {
	res, err := parseMaybeCancel(s.e, s.tokens, true, fl)
	if err != nil {
		return Result{}, err
	}
	s.reparses++
	s.last = Result{Accepted: res.Accepted, ErrorPos: res.ErrorPos, Expected: res.Expected}
	s.valid = true
	return res, nil
}

// parseMaybeCancel routes through the cancel-aware parse when the
// engine has one, plain Parse otherwise.
func parseMaybeCancel(e Engine, input []grammar.Symbol, buildTrees bool, fl *cancel.Flag) (Result, error) {
	if cp, ok := e.(cancelParser); ok {
		return cp.parseCancel(input, buildTrees, nil, fl)
	}
	return e.Parse(input, buildTrees)
}

func (s *fallbackSession) Stats() SessionStats {
	return SessionStats{
		Tokens:       len(s.tokens),
		Reparses:     s.reparses,
		FullReparses: s.reparses,
	}
}

func (s *fallbackSession) Close() { s.tokens = nil }

package engine

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/forest"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lalr"
	"ipg/internal/ll"
)

// TestLALRSessionSurvivesRuleUpdates pins the session-facing win of the
// table repair: rule updates interleaved with a live fallback session's
// splices and reparses are absorbed in place — the session's engine
// keeps the very same table value instead of regenerating it under the
// open document.
func TestLALRSessionSurvivesRuleUpdates(t *testing.T) {
	g := loadFixture(t, "CalcDet.bnf")
	e := NewLALR(g, "requested")
	s, err := OpenSession(e, fixtures.Tokens(g, "n + n * n"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Incremental() {
		t.Fatal("LALR sessions should be full-reparse fallbacks")
	}
	if res, err := s.Reparse(); err != nil || !res.Accepted {
		t.Fatalf("base reparse: %v accepted=%v", err, res.Accepted)
	}
	tbl := e.Table()

	mod, err := grammar.Parse(`F ::= "id"`, g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	rule := mod.Rules()[0]
	id := g.Symbols().MustIntern("id", grammar.Terminal)

	// Update, edit, reparse — several rounds, both directions.
	for round := 0; round < 3; round++ {
		if err := e.AddRule(rule); err != nil {
			t.Fatal(err)
		}
		if err := s.Splice(0, 1, []grammar.Symbol{id}); err != nil {
			t.Fatal(err)
		}
		if res, err := s.Reparse(); err != nil || !res.Accepted {
			t.Fatalf("round %d: reparse with id: %v accepted=%v", round, err, res.Accepted)
		}
		if err := e.DeleteRule(rule); err != nil {
			t.Fatal(err)
		}
		if err := s.Splice(0, 1, []grammar.Symbol{fixtures.Tokens(g, "n")[0]}); err != nil {
			t.Fatal(err)
		}
		if res, err := s.Reparse(); err != nil || !res.Accepted {
			t.Fatalf("round %d: reparse after delete: %v accepted=%v", round, err, res.Accepted)
		}
	}
	if e.Table() != tbl {
		t.Error("session-interleaved rule updates regenerated the table")
	}
	if got := e.Counters().RepairFallbacks; got != 0 {
		t.Errorf("session-interleaved rule updates fell back %d times, want 0", got)
	}
}

// TestConcurrentLALRParseAndModify is the -race stress for the repair
// path: parses sharing one LALR engine race rule updates that splice
// the table in place. Every parse must see a consistent table —
// before-or-after semantics, no torn repair.
func TestConcurrentLALRParseAndModify(t *testing.T) {
	g := loadFixture(t, "CalcDet.bnf")
	e := NewLALR(g, "requested")
	base := fixtures.Tokens(g, "n + n * ( n - n )")

	mod, err := grammar.Parse(`F ::= "id"`, g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	rule := mod.Rules()[0]
	ext := append([]grammar.Symbol{g.Symbols().MustIntern("id", grammar.Terminal)},
		fixtures.Tokens(g, "+ n")...)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines+1)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				res, err := e.Parse(base, j%2 == 0)
				if err != nil {
					errs <- err
					return
				}
				if !res.Accepted {
					errs <- errorf("base sentence rejected")
					return
				}
				// The extension rule toggles; either verdict is fine, but
				// the parse must not error.
				if _, err := e.Parse(ext, false); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := e.AddRule(rule); err != nil {
				errs <- err
				return
			}
			if err := e.DeleteRule(rule); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := e.Counters().RepairFallbacks; got != 0 {
		t.Errorf("update storm fell back %d times, want 0", got)
	}
}

type errorf string

func (e errorf) Error() string { return string(e) }

// tableRepairCtx is one grammar's differential-fuzz setup for the
// table-repair fuzzer.
type tableRepairCtx struct {
	src  string
	name string
}

// FuzzTableRepair differentially fuzzes the incremental table repair:
// byte strings decode to add/delete sequences applied to a live
// grammar, with the LALR(1) and LL(1) tables repaired in place after
// every mutation. The repaired tables must be action-identical to
// from-scratch generations of the same grammar (canonical signatures
// cover actions, gotos, lookaheads and conflicts), and the repaired
// LALR table must produce the same parse forests. CI runs this for 60s
// alongside FuzzSessionSplice and uploads crashers.
func FuzzTableRepair(f *testing.F) {
	calcSrc, err := os.ReadFile(filepath.Join("..", "..", "testdata", "CalcDet.bnf"))
	if err != nil {
		f.Fatal(err)
	}
	ctxs := []tableRepairCtx{
		{src: string(calcSrc), name: "CalcDet"},
		{src: ambiguousText, name: "ambiguous"},
	}

	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{2, 1, 2, 0, 1, 3, 2, 1, 7, 5})
	f.Add([]byte{1, 0, 3, 9, 8, 7, 0, 2, 0, 4, 4, 4, 4, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range ctxs {
			g := grammar.MustParse(c.src)
			ltab := lalr.Generate(g)
			ptab := ll.Generate(g)

			var nts []grammar.Symbol
			pool := []grammar.Symbol{}
			for _, n := range g.Symbols().Nonterminals() {
				if n != g.Start() {
					nts = append(nts, n)
					pool = append(pool, n)
				}
			}
			for _, s := range g.Symbols().Terminals() {
				if s != grammar.EOF {
					pool = append(pool, s)
				}
			}

			ops := data
			for step := 0; len(ops) >= 3 && step < 8; step++ {
				op, a, b := int(ops[0]), int(ops[1]), int(ops[2])
				ops = ops[3:]
				var r *grammar.Rule
				if op%2 == 0 || g.Len() <= 1 {
					lhs := nts[a%len(nts)]
					rhs := make([]grammar.Symbol, b%4)
					for k := range rhs {
						rhs[k] = pool[(b+k*5)%len(pool)]
					}
					cand := grammar.NewRule(lhs, rhs...)
					if g.Has(cand) {
						continue
					}
					if err := g.AddRule(cand); err != nil {
						t.Fatalf("%s step %d: add: %v", c.name, step, err)
					}
					r = cand
				} else {
					var candidates []*grammar.Rule
					for _, cr := range g.Rules() {
						if cr.Lhs != g.Start() {
							candidates = append(candidates, cr)
						}
					}
					if len(candidates) == 0 {
						continue
					}
					stored, err := g.DeleteRule(candidates[a%len(candidates)])
					if err != nil {
						t.Fatalf("%s step %d: delete: %v", c.name, step, err)
					}
					r = stored
				}

				// LALR: repairs must be signature-identical; fallbacks
				// regenerate (mirroring the engine policy).
				if st := ltab.Repair(r); st.FellBack {
					ltab = lalr.Generate(g)
				} else if got, want := ltab.Signature(), lalr.Generate(g).Signature(); got != want {
					t.Fatalf("%s step %d: repaired LALR table diverges\n--- repaired ---\n%s\n--- regenerated ---\n%s",
						c.name, step, got, want)
				}
				// LL repair never declines.
				ptab.Repair(r)
				if got, want := ptab.Signature(), ll.Generate(g).Signature(); got != want {
					t.Fatalf("%s step %d: repaired LL table diverges\n--- repaired ---\n%s\n--- regenerated ---\n%s",
						c.name, step, got, want)
				}
			}

			// Parse-tree differential: byte-derived sentences must produce
			// identical verdicts and forests on the repaired table and on a
			// freshly generated one.
			fresh := lalr.Generate(g)
			var terms []grammar.Symbol
			for _, s := range g.Symbols().Terminals() {
				if s != grammar.EOF {
					terms = append(terms, s)
				}
			}
			for sen := 0; sen < 2 && len(terms) > 0; sen++ {
				n := 1 + (len(data)+sen*3)%6
				input := make([]grammar.Symbol, n)
				for k := range input {
					idx := sen*7 + k*3
					if idx < len(data) {
						input[k] = terms[int(data[idx])%len(terms)]
					} else {
						input[k] = terms[(sen+k)%len(terms)]
					}
				}
				got, gerr := glr.Parse(ltab, input, &glr.Options{Engine: glr.GSS})
				want, werr := glr.Parse(fresh, input, &glr.Options{Engine: glr.GSS})
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("%s: parse errors diverge: repaired %v vs fresh %v", c.name, gerr, werr)
				}
				if gerr != nil {
					continue
				}
				if got.Accepted != want.Accepted || got.ErrorPos != want.ErrorPos {
					t.Fatalf("%s: verdicts diverge on %s: repaired (accepted=%v pos=%d) vs fresh (accepted=%v pos=%d)",
						c.name, g.Symbols().NamesOf(input), got.Accepted, got.ErrorPos, want.Accepted, want.ErrorPos)
				}
				if got.Accepted {
					gs := forest.String(got.Root, g.Symbols())
					ws := forest.String(want.Root, g.Symbols())
					if gs != ws {
						t.Fatalf("%s: forests diverge on %s:\nrepaired: %s\nfresh:    %s",
							c.name, g.Symbols().NamesOf(input), gs, ws)
					}
				}
			}
		}
	})
}

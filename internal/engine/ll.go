package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ipg/internal/core"
	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/ll"
)

// LL is LL(1) predictive parsing behind the Engine interface: the
// second row of Fig 2.1. The accepted grammar class is the narrowest of
// the backends — construction fails on non-LL(1) grammars, and a rule
// update that introduces a conflict is rolled back — but within that
// class the parser is table-driven, deterministic, and builds the same
// unique tree the LR engines build.
type LL struct {
	reason string

	mu  sync.RWMutex
	g   *grammar.Grammar
	tbl *ll.Table

	parsesServed atomic.Uint64
}

// NewLL generates the LL(1) table for g, failing with the conflict list
// when the grammar is not LL(1).
func NewLL(g *grammar.Grammar, reason string) (*LL, error) {
	tbl := ll.Generate(g)
	if n := len(tbl.Conflicts()); n > 0 {
		return nil, fmt.Errorf("engine: grammar is not LL(1) (%d conflicts): %w", n, ll.ErrNotLL1)
	}
	return &LL{reason: reason, g: g, tbl: tbl}, nil
}

// Kind implements Engine.
func (e *LL) Kind() Kind { return KindLL }

// Reason implements Engine.
func (e *LL) Reason() string { return e.reason }

// Caps implements Engine.
func (e *LL) Caps() Caps { return CapsOf(KindLL) }

// Parse implements Engine: one predictive parse, building the unique
// tree when buildTrees is set.
func (e *LL) Parse(input []grammar.Symbol, buildTrees bool) (Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.parsesServed.Add(1)
	if !buildTrees {
		// Single pass, no node construction: diagnostics come from the
		// same drive that would have built the tree.
		ok, errPos, expected, err := e.tbl.ParseDiag(input)
		if err != nil {
			return Result{}, err
		}
		if ok {
			return Result{Accepted: true, ErrorPos: -1}, nil
		}
		return Result{ErrorPos: errPos, Expected: expected}, nil
	}
	f := forest.NewForest()
	root, errPos, expected, err := e.tbl.ParseForest(input, f)
	if err != nil {
		return Result{}, err
	}
	if root == nil {
		// Match GLR's shape: a tree-building rejection still carries its
		// (partial) forest; the recognize-only path above never does, so
		// forest-size admission limits cannot misfire on it.
		return Result{ErrorPos: errPos, Expected: expected, Forest: f}, nil
	}
	return Result{Accepted: true, ErrorPos: -1, Root: root, Forest: f}, nil
}

// Recognize implements Engine.
func (e *LL) Recognize(input []grammar.Symbol) (bool, error) {
	res, err := e.Parse(input, false)
	return res.Accepted, err
}

// Counters implements Engine.
func (e *LL) Counters() core.Counters {
	return core.Counters{ParsesServed: e.parsesServed.Load()}
}

// TableInfo implements Engine: one "state" per nonterminal row of the
// prediction table, always fully generated.
func (e *LL) TableInfo() TableInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := len(e.g.Symbols().Nonterminals())
	return TableInfo{States: n, Complete: n}
}

// AddRule implements Engine by regenerating the prediction table. A rule
// that makes the grammar non-LL(1) is rolled back and reported, so the
// engine never serves a conflicted table.
func (e *LL) AddRule(r *grammar.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.g.AddRule(r); err != nil {
		return fmt.Errorf("engine: ll add rule: %w", err)
	}
	tbl := ll.Generate(e.g)
	if n := len(tbl.Conflicts()); n > 0 {
		if _, derr := e.g.DeleteRule(r); derr != nil {
			return fmt.Errorf("engine: ll rollback after %d conflicts failed: %v", n, derr)
		}
		return fmt.Errorf("engine: rule makes the grammar non-LL(1) (%d conflicts), rolled back: %w", n, ll.ErrNotLL1)
	}
	e.tbl = tbl
	return nil
}

// DeleteRule implements Engine by regeneration (deleting a rule cannot
// introduce an LL(1) conflict, only remove one).
func (e *LL) DeleteRule(r *grammar.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.g.DeleteRule(r); err != nil {
		return fmt.Errorf("engine: ll delete rule: %w", err)
	}
	e.tbl = ll.Generate(e.g)
	return nil
}

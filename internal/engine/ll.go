package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ipg/internal/cancel"
	"ipg/internal/core"
	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/ll"
	"ipg/internal/obs"
)

// LL is LL(1) predictive parsing behind the Engine interface: the
// second row of Fig 2.1. The accepted grammar class is the narrowest of
// the backends — construction fails on non-LL(1) grammars, and a rule
// update that introduces a conflict is rolled back — but within that
// class the parser is table-driven, deterministic, and builds the same
// unique tree the LR engines build.
type LL struct {
	reason string

	mu  sync.RWMutex
	g   *grammar.Grammar
	tbl *ll.Table

	parsesServed atomic.Uint64
	// Rule updates are spliced by ll.Table.Repair: only damaged rows are
	// refilled. rowsRepaired maps onto the repaired/expanded counter
	// vocabulary; updates feeds the Reason diagnostic.
	rowsRepaired atomic.Uint64
	updates      atomic.Uint64
}

// NewLL generates the LL(1) table for g, failing with the conflict list
// when the grammar is not LL(1).
func NewLL(g *grammar.Grammar, reason string) (*LL, error) {
	tbl := ll.Generate(g)
	if n := len(tbl.Conflicts()); n > 0 {
		return nil, fmt.Errorf("engine: grammar is not LL(1) (%d conflicts): %w", n, ll.ErrNotLL1)
	}
	return &LL{reason: reason, g: g, tbl: tbl}, nil
}

// Kind implements Engine.
func (e *LL) Kind() Kind { return KindLL }

// Reason implements Engine. Once rule updates have been absorbed, the
// reason records that they were repaired in place.
func (e *LL) Reason() string {
	u := e.updates.Load()
	if u == 0 {
		return e.reason
	}
	return fmt.Sprintf("%s — %d rule updates repaired in place (%d rows refilled)",
		e.reason, u, e.rowsRepaired.Load())
}

// Caps implements Engine.
func (e *LL) Caps() Caps { return CapsOf(KindLL) }

// Parse implements Engine: one predictive parse, building the unique
// tree when buildTrees is set.
func (e *LL) Parse(input []grammar.Symbol, buildTrees bool) (Result, error) {
	return e.parseCancel(input, buildTrees, nil, nil)
}

// parseCancel implements cancelParser: the predictive drive polls the
// flag every 64 steps.
func (e *LL) parseCancel(input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace, fl *cancel.Flag) (Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.parsesServed.Add(1)
	tr.BeginStage(obs.StageTable)
	defer tr.EndStage(obs.StageTable)
	if !buildTrees {
		// Single pass, no node construction: diagnostics come from the
		// same drive that would have built the tree.
		ok, errPos, expected, err := e.tbl.ParseDiagCancel(input, fl)
		if err != nil {
			return Result{}, err
		}
		if ok {
			return Result{Accepted: true, ErrorPos: -1}, nil
		}
		return Result{ErrorPos: errPos, Expected: expected}, nil
	}
	f := forest.NewForest()
	root, errPos, expected, err := e.tbl.ParseForestCancel(input, f, fl)
	if err != nil {
		return Result{}, err
	}
	if root == nil {
		// Match GLR's shape: a tree-building rejection still carries its
		// (partial) forest; the recognize-only path above never does, so
		// forest-size admission limits cannot misfire on it.
		return Result{ErrorPos: errPos, Expected: expected, Forest: f}, nil
	}
	return Result{Accepted: true, ErrorPos: -1, Root: root, Forest: f}, nil
}

// Recognize implements Engine.
func (e *LL) Recognize(input []grammar.Symbol) (bool, error) {
	res, err := e.Parse(input, false)
	return res.Accepted, err
}

// Counters implements Engine: prediction rows refilled by repairs map
// onto the repaired/expanded/invalidated vocabulary.
func (e *LL) Counters() core.Counters {
	rows := e.rowsRepaired.Load()
	return core.Counters{
		ParsesServed:      e.parsesServed.Load(),
		StatesExpanded:    rows,
		StatesInvalidated: rows,
		StatesRepaired:    rows,
	}
}

// TableInfo implements Engine: one "state" per nonterminal row of the
// prediction table, always fully generated.
func (e *LL) TableInfo() TableInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := len(e.g.Symbols().Nonterminals())
	return TableInfo{States: n, Complete: n}
}

// AddRule implements Engine by repairing the prediction table in place:
// only rows whose FIRST/FOLLOW inputs moved are refilled. A rule that
// makes the grammar non-LL(1) is rolled back — with a second repair
// restoring the previous rows — so the engine never serves a conflicted
// table.
func (e *LL) AddRule(r *grammar.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.g.AddRule(r); err != nil {
		return fmt.Errorf("engine: ll add rule: %w", err)
	}
	e.updates.Add(1)
	st := e.tbl.Repair(r)
	e.rowsRepaired.Add(uint64(st.RowsRepaired))
	if n := len(e.tbl.Conflicts()); n > 0 {
		stored, derr := e.g.DeleteRule(r)
		if derr != nil {
			return fmt.Errorf("engine: ll rollback after %d conflicts failed: %v", n, derr)
		}
		undo := e.tbl.Repair(stored)
		e.rowsRepaired.Add(uint64(undo.RowsRepaired))
		return fmt.Errorf("engine: rule makes the grammar non-LL(1) (%d conflicts), rolled back: %w", n, ll.ErrNotLL1)
	}
	return nil
}

// DeleteRule implements Engine by repairing in place (deleting a rule
// cannot introduce an LL(1) conflict, only remove one).
func (e *LL) DeleteRule(r *grammar.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	stored, err := e.g.DeleteRule(r)
	if err != nil {
		return fmt.Errorf("engine: ll delete rule: %w", err)
	}
	e.updates.Add(1)
	st := e.tbl.Repair(stored)
	e.rowsRepaired.Add(uint64(st.RowsRepaired))
	return nil
}

package engine

import (
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/forest"
	"ipg/internal/grammar"
)

// sessionFuzzCtx is one grammar's differential-fuzz setup: a document
// to edit, a splice vocabulary, and the engines whose sessions must
// track a from-scratch parse of the mirror text.
type sessionFuzzCtx struct {
	g       *grammar.Grammar
	engines []Engine
	doc     []grammar.Symbol
	vocab   []grammar.Symbol
	maxLen  int
}

func newSessionFuzzCtxs(tb testing.TB) []sessionFuzzCtx {
	gB := fixtures.Booleans()
	vocabB := make([]grammar.Symbol, 0, 4)
	for _, name := range []string{"true", "false", "or", "and"} {
		vocabB = append(vocabB, gB.Symbols().MustIntern(name, grammar.Terminal))
	}
	gC := loadFixture(tb, "CalcDet.bnf")
	vocabC := make([]grammar.Symbol, 0, 7)
	for _, name := range []string{"n", "+", "-", "*", "/", "(", ")"} {
		vocabC = append(vocabC, gC.Symbols().MustIntern(name, grammar.Terminal))
	}
	mk := func(k Kind, g *grammar.Grammar) Engine {
		e, err := New(k, g, nil)
		if err != nil {
			tb.Fatalf("New(%v): %v", k, err)
		}
		return e
	}
	return []sessionFuzzCtx{
		{
			g:       gB,
			engines: []Engine{mk(KindEarley, gB), mk(KindGLR, gB), mk(KindLALR, gB)},
			doc:     fixtures.Tokens(gB, "true or false and true or true"),
			vocab:   vocabB,
			maxLen:  24,
		},
		{
			g:       gC,
			engines: []Engine{mk(KindEarley, gC), mk(KindLALR, gC), mk(KindGLR, gC)},
			doc:     fixtures.Tokens(gC, "n + n * ( n - n ) / n"),
			vocab:   vocabC,
			maxLen:  40,
		},
	}
}

// spliceMirror applies the splice to the reference token stream.
func spliceMirror(mirror []grammar.Symbol, at, remove int, insert []grammar.Symbol) []grammar.Symbol {
	out := make([]grammar.Symbol, 0, len(mirror)-remove+len(insert))
	out = append(out, mirror[:at]...)
	out = append(out, insert...)
	out = append(out, mirror[at+remove:]...)
	return out
}

// FuzzSessionSplice differentially fuzzes document sessions: byte
// strings decode to splice sequences applied both to a session on every
// engine (incremental Earley, full-reparse GLR/LALR fallbacks) and to a
// plain mirror slice. After every edit, each session's reparse and tree
// must be byte-identical — acceptance, error position, derivation
// count, rendered forest, yield — to a from-scratch parse of the mirror
// by the same engine. CI runs this for 60s and uploads crashers.
func FuzzSessionSplice(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 2, 5})
	f.Add([]byte{9, 2, 0, 1, 1, 1, 4, 0, 2, 250, 3, 3})
	f.Add([]byte{30, 0, 1, 0, 0, 0, 7, 7, 7, 2, 9, 0})

	ctxs := newSessionFuzzCtxs(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		for ci := range ctxs {
			c := &ctxs[ci]
			mirror := append([]grammar.Symbol(nil), c.doc...)
			sessions := make([]Session, len(c.engines))
			for i, e := range c.engines {
				s, err := OpenSession(e, c.doc)
				if err != nil {
					t.Fatalf("open session on %v: %v", e.Kind(), err)
				}
				sessions[i] = s
			}
			ops := data
			for step := 0; len(ops) >= 3 && step < 8; step++ {
				at := int(ops[0]) % (len(mirror) + 1)
				remove := int(ops[1]) % (len(mirror) - at + 1)
				insLen := int(ops[2]) % 4
				if len(mirror)-remove+insLen > c.maxLen {
					insLen = 0
				}
				insert := make([]grammar.Symbol, insLen)
				for k := range insert {
					insert[k] = c.vocab[(int(ops[2])+k*7)%len(c.vocab)]
				}
				ops = ops[3:]
				mirror = spliceMirror(mirror, at, remove, insert)

				for i, s := range sessions {
					e := c.engines[i]
					if err := s.Splice(at, remove, insert); err != nil {
						t.Fatalf("step %d: %v splice(%d,%d,%d): %v", step, e.Kind(), at, remove, insLen, err)
					}
					if got := s.Len(); got != len(mirror) {
						t.Fatalf("step %d: %v session length %d, mirror %d", step, e.Kind(), got, len(mirror))
					}
					got, err := s.Reparse()
					if err != nil {
						t.Fatalf("step %d: %v reparse: %v", step, e.Kind(), err)
					}
					want, err := e.Parse(mirror, false)
					if err != nil {
						t.Fatalf("step %d: %v fresh parse: %v", step, e.Kind(), err)
					}
					if got.Accepted != want.Accepted || got.ErrorPos != want.ErrorPos {
						t.Fatalf("step %d: %v session (accepted=%v pos=%d) vs fresh (accepted=%v pos=%d) on %s",
							step, e.Kind(), got.Accepted, got.ErrorPos, want.Accepted, want.ErrorPos,
							c.g.Symbols().NamesOf(mirror))
					}
					if !want.Accepted {
						continue
					}
					tree, err := s.Tree()
					if err != nil {
						t.Fatalf("step %d: %v session tree: %v", step, e.Kind(), err)
					}
					fresh, err := e.Parse(mirror, true)
					if err != nil {
						t.Fatalf("step %d: %v fresh tree: %v", step, e.Kind(), err)
					}
					sc, err1 := forest.TreeCount(tree.Root)
					fc, err2 := forest.TreeCount(fresh.Root)
					if err1 != nil || err2 != nil || sc != fc {
						t.Fatalf("step %d: %v derivation counts diverge: session %d (%v) vs fresh %d (%v)",
							step, e.Kind(), sc, err1, fc, err2)
					}
					if ss, fs := forest.String(tree.Root, c.g.Symbols()), forest.String(fresh.Root, c.g.Symbols()); ss != fs {
						t.Fatalf("step %d: %v forests diverge:\nsession: %s\nfresh:   %s", step, e.Kind(), ss, fs)
					}
					yield, err := forest.Yield(tree.Root)
					if err != nil {
						t.Fatalf("step %d: %v yield: %v", step, e.Kind(), err)
					}
					if len(yield) != len(mirror) {
						t.Fatalf("step %d: %v yield length %d != %d", step, e.Kind(), len(yield), len(mirror))
					}
					for k := range yield {
						if yield[k] != mirror[k] {
							t.Fatalf("step %d: %v yield diverges at %d", step, e.Kind(), k)
						}
					}
				}
			}
			for _, s := range sessions {
				s.Close()
			}
		}
	})
}

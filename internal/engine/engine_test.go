package engine

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/grammar"
	"ipg/internal/ll"
	"ipg/internal/lr"
)

// loadFixture reads a BNF grammar from the repository testdata.
func loadFixture(t testing.TB, name string) *grammar.Grammar {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	g, err := grammar.Parse(string(src), nil)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return g
}

const ambiguousText = `
START ::= E
E ::= E "+" E | "n"
`

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"", KindDefault},
		{"default", KindDefault},
		{"glr", KindGLR},
		{"lazy-glr", KindGLR},
		{"lalr", KindLALR},
		{"lalr1", KindLALR},
		{"yacc", KindLALR},
		{"ll", KindLL},
		{"ll(1)", KindLL},
		{"earley", KindEarley},
		{"auto", KindAuto},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseKind("cyk"); err == nil {
		t.Error("ParseKind accepted an unknown engine name")
	}
}

func TestEveryEngineParsesTheCalculator(t *testing.T) {
	sentences := []struct {
		input string
		want  bool
	}{
		{"n", true},
		{"n + n * n", true},
		{"( n + n ) * n - n / n", true},
		{"n +", false},
		{"* n", false},
		{"( n", false},
		{"", false},
	}
	for _, tc := range []struct {
		kind    Kind
		fixture string
	}{
		{KindGLR, "CalcDet.bnf"},
		{KindLALR, "CalcDet.bnf"},
		{KindEarley, "CalcDet.bnf"},
		{KindAuto, "CalcDet.bnf"},
		{KindLL, "CalcLL.bnf"}, // CalcDet is left-recursive; LL needs the factored variant
	} {
		g := loadFixture(t, tc.fixture)
		e, err := New(tc.kind, g, nil)
		if err != nil {
			t.Fatalf("New(%v): %v", tc.kind, err)
		}
		for _, s := range sentences {
			res, err := e.Parse(fixtures.Tokens(g, s.input), true)
			if err != nil {
				t.Fatalf("%v.Parse(%q): %v", tc.kind, s.input, err)
			}
			if res.Accepted != s.want {
				t.Errorf("%v.Parse(%q) accepted=%v, want %v", tc.kind, s.input, res.Accepted, s.want)
			}
			if s.want && e.Caps().Trees && res.Root == nil {
				t.Errorf("%v.Parse(%q): no tree despite Caps().Trees", tc.kind, s.input)
			}
			if !s.want && res.ErrorPos < 0 {
				t.Errorf("%v.Parse(%q): rejection without an error position", tc.kind, s.input)
			}
			ok, err := e.Recognize(fixtures.Tokens(g, s.input))
			if err != nil || ok != s.want {
				t.Errorf("%v.Recognize(%q) = %v, %v; want %v", tc.kind, s.input, ok, err, s.want)
			}
		}
		if c := e.Counters(); c.ParsesServed == 0 {
			t.Errorf("%v: ParsesServed = 0 after %d parses", tc.kind, 2*len(sentences))
		}
	}
}

func TestLLRejectsNonLL1Grammar(t *testing.T) {
	g := loadFixture(t, "CalcDet.bnf")
	if _, err := NewLL(g, "requested"); !errors.Is(err, ll.ErrNotLL1) {
		t.Fatalf("NewLL on a left-recursive grammar: err = %v, want ErrNotLL1", err)
	}
}

func TestAutoSelectsLALRForDeterministicCalc(t *testing.T) {
	g := loadFixture(t, "CalcDet.bnf")
	e := NewAuto(g, nil)
	if e.Kind() != KindLALR {
		t.Fatalf("auto picked %v for the calculator, want lalr (reason %q)", e.Kind(), e.Reason())
	}
	if !strings.Contains(e.Reason(), "conflict-free") {
		t.Errorf("selection reason %q does not explain the conflict-free verdict", e.Reason())
	}
}

func TestAutoSelectsGLRForAmbiguousGrammar(t *testing.T) {
	g := grammar.MustParse(ambiguousText)
	e := NewAuto(g, nil)
	if e.Kind() != KindGLR {
		t.Fatalf("auto picked %v for an ambiguous grammar, want glr (reason %q)", e.Kind(), e.Reason())
	}
	if !strings.Contains(e.Reason(), "conflict") {
		t.Errorf("selection reason %q does not mention the conflicts", e.Reason())
	}
	res, err := e.Parse(fixtures.Tokens(g, "n + n + n"), true)
	if err != nil || !res.Accepted {
		t.Fatalf("auto/GLR parse failed: %v accepted=%v", err, res.Accepted)
	}
	if res.Root == nil {
		t.Fatal("auto/GLR built no forest")
	}
}

func TestAutoReselectsAcrossModifications(t *testing.T) {
	g := loadFixture(t, "CalcDet.bnf")
	e := NewAuto(g, nil)
	if e.Kind() != KindLALR {
		t.Fatalf("initial selection %v, want lalr", e.Kind())
	}

	// An ambiguous flat rule introduces LALR(1) conflicts: auto must move
	// the grammar onto the lazy-GLR path.
	amb, err := grammar.Parse(`E ::= E "+" E`, g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Parse(fixtures.Tokens(g, "n + n"), false); err != nil {
		t.Fatal(err)
	}
	served := e.Counters().ParsesServed

	rule := amb.Rules()[0]
	if err := e.AddRule(rule); err != nil {
		t.Fatal(err)
	}
	if e.Kind() != KindGLR {
		t.Fatalf("after ambiguous rule: selection %v, want glr (reason %q)", e.Kind(), e.Reason())
	}
	// Reselection must not reset the entry's monotonic counters.
	if got := e.Counters().ParsesServed; got < served {
		t.Fatalf("ParsesServed regressed across reselection: %d -> %d", served, got)
	}
	res, err := e.Parse(fixtures.Tokens(g, "n + n + n"), true)
	if err != nil || !res.Accepted {
		t.Fatalf("post-switch parse: %v accepted=%v", err, res.Accepted)
	}

	// Deleting it restores determinism: auto returns to LALR.
	if err := e.DeleteRule(rule); err != nil {
		t.Fatal(err)
	}
	if e.Kind() != KindLALR {
		t.Fatalf("after deleting the rule: selection %v, want lalr (reason %q)", e.Kind(), e.Reason())
	}
}

func TestSnapshotterOf(t *testing.T) {
	det := loadFixture(t, "CalcDet.bnf")
	amb := grammar.MustParse(ambiguousText)

	glrEng, _ := New(KindGLR, grammar.MustParse(ambiguousText), nil)
	if SnapshotterOf(glrEng) == nil {
		t.Error("GLR engine must support snapshots")
	}
	lalrEng, _ := New(KindLALR, det, nil)
	if SnapshotterOf(lalrEng) != nil {
		t.Error("LALR engine must not claim snapshot support")
	}
	if s := SnapshotterOf(NewAuto(det, nil)); s != nil {
		t.Error("auto→LALR must not claim snapshot support")
	}
	if s := SnapshotterOf(NewAuto(amb, nil)); s == nil {
		t.Error("auto→GLR must support snapshots")
	}
}

func TestGLRSnapshotRoundTrip(t *testing.T) {
	g := grammar.MustParse(ambiguousText)
	e := NewGLR(g, nil, "requested")
	if _, err := e.Parse(fixtures.Tokens(g, "n + n"), true); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cov, err := e.SaveTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Complete == 0 {
		t.Fatal("no states expanded before the snapshot")
	}

	g2 := grammar.MustParse(ambiguousText)
	auto, err := lr.Load(g2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewGLR(g2, nil, "requested")
	e2.RestoreTable(auto)
	info := e2.TableInfo()
	if info.Complete != cov.Complete {
		t.Fatalf("restored table has %d complete states, snapshot had %d", info.Complete, cov.Complete)
	}
	res, err := e2.Parse(fixtures.Tokens(g2, "n + n"), true)
	if err != nil || !res.Accepted {
		t.Fatalf("restored engine parse: %v accepted=%v", err, res.Accepted)
	}
	if got := e2.Counters().StatesExpanded; got != 0 {
		t.Errorf("restored engine expanded %d states re-parsing a covered sentence, want 0", got)
	}
}

func TestGeneratorOf(t *testing.T) {
	amb := grammar.MustParse(ambiguousText)
	if GeneratorOf(NewGLR(amb, nil, "requested")) == nil {
		t.Error("GeneratorOf(GLR) = nil")
	}
	if GeneratorOf(NewAuto(amb, nil)) == nil {
		t.Error("GeneratorOf(auto→GLR) = nil")
	}
	det := loadFixture(t, "CalcDet.bnf")
	if GeneratorOf(NewLALR(det, "requested")) != nil {
		t.Error("GeneratorOf(LALR) != nil")
	}
}

func TestLALRRepairsOnRuleUpdate(t *testing.T) {
	g := loadFixture(t, "CalcDet.bnf")
	e := NewLALR(g, "requested")
	before := e.Counters()
	tblBefore := e.Table()

	mod, err := grammar.Parse(`F ::= "id"`, g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(mod.Rules()[0]); err != nil {
		t.Fatal(err)
	}
	after := e.Counters()
	if after.StatesRepaired == before.StatesRepaired {
		t.Error("rule update did not record the in-place repair")
	}
	if after.RepairFallbacks != 0 {
		t.Errorf("adding F ::= id fell back to regeneration (%d fallbacks)", after.RepairFallbacks)
	}
	if e.Table() != tblBefore {
		t.Error("repair replaced the table value; published pointers were invalidated")
	}
	if !strings.Contains(e.Reason(), "repaired in place") {
		t.Errorf("Reason() = %q, want it to record the repair", e.Reason())
	}
	res, err := e.Parse(fixtures.Tokens(g, "id + n"), false)
	if err != nil || !res.Accepted {
		t.Fatalf("parse with the new rule: %v accepted=%v", err, res.Accepted)
	}
}

func TestLLRepairsOnRuleUpdate(t *testing.T) {
	g := loadFixture(t, "CalcLL.bnf")
	e, err := NewLL(g, "requested")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := grammar.Parse(`F ::= "id"`, g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(mod.Rules()[0]); err != nil {
		t.Fatal(err)
	}
	if got := e.Counters().StatesRepaired; got == 0 {
		t.Error("rule update did not record any repaired prediction rows")
	}
	if !strings.Contains(e.Reason(), "repaired in place") {
		t.Errorf("Reason() = %q, want it to record the repair", e.Reason())
	}
	res, err := e.Parse(fixtures.Tokens(g, "id + n"), false)
	if err != nil || !res.Accepted {
		t.Fatalf("parse with the new rule: %v accepted=%v", err, res.Accepted)
	}
}

func TestLLRollsBackConflictingRule(t *testing.T) {
	g := loadFixture(t, "CalcLL.bnf")
	e, err := NewLL(g, "requested")
	if err != nil {
		t.Fatal(err)
	}
	// Left recursion on E makes the grammar non-LL(1); the engine must
	// roll the rule back and keep serving the old table.
	bad, err := grammar.Parse(`E ::= E "+" E`, g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(bad.Rules()[0]); !errors.Is(err, ll.ErrNotLL1) {
		t.Fatalf("AddRule(conflicting) err = %v, want ErrNotLL1", err)
	}
	if g.Has(bad.Rules()[0]) {
		t.Fatal("conflicting rule was not rolled back")
	}
	res, err := e.Parse(fixtures.Tokens(g, "n + n"), true)
	if err != nil || !res.Accepted {
		t.Fatalf("engine broken after rollback: %v accepted=%v", err, res.Accepted)
	}
}

// TestAutoKeepsLALRUnderChurn pins the re-tuned churn heuristic: the
// exact scenario that used to force a deterministic grammar onto Earley
// (a burst of rule updates with no parse traffic) now stays on the LALR
// fast path, because each update is absorbed by an in-place table
// repair instead of a regeneration.
func TestAutoKeepsLALRUnderChurn(t *testing.T) {
	g := loadFixture(t, "CalcDet.bnf")
	e := NewAuto(g, nil)
	if e.Kind() != KindLALR {
		t.Fatalf("initial selection %v, want lalr", e.Kind())
	}

	mod, err := grammar.Parse(`F ::= "id"`, g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	rule := mod.Rules()[0]
	for i := 0; i < 6; i++ {
		if err := e.AddRule(rule); err != nil {
			t.Fatal(err)
		}
		if err := e.DeleteRule(rule); err != nil {
			t.Fatal(err)
		}
	}
	if e.Kind() != KindLALR {
		t.Fatalf("after heavy churn: selection %v, want lalr (reason %q)", e.Kind(), e.Reason())
	}
	if !strings.Contains(e.Reason(), "repaired in place") {
		t.Errorf("selection reason %q does not record the repairs", e.Reason())
	}
	c := e.Counters()
	if c.StatesRepaired == 0 {
		t.Error("churn burst recorded no repaired states")
	}
	if c.RepairFallbacks != 0 {
		t.Errorf("churn burst fell back to regeneration %d times", c.RepairFallbacks)
	}
	// Repaired updates whose verdict visibly holds stamp the selection
	// current instead of scheduling a probe; the whole burst must not
	// have regenerated a single table.
	if got := e.Reprobes(); got != 0 {
		t.Errorf("churn burst triggered %d re-probes, want 0", got)
	}
	res, err := e.Parse(fixtures.Tokens(g, "n + n * n"), true)
	if err != nil || !res.Accepted || res.Root == nil {
		t.Fatalf("post-churn parse: err=%v accepted=%v root=%v", err, res.Accepted, res.Root)
	}
}

// TestAutoPrefersEarleyUnderGLRChurn keeps the churn escape hatch for
// the backend that still pays per update: a conflicted grammar on lazy
// GLR moves to table-free Earley under heavy churn and rejoins GLR once
// parse traffic dominates again.
func TestAutoPrefersEarleyUnderGLRChurn(t *testing.T) {
	g := grammar.MustParse(ambiguousText)
	e := NewAuto(g, nil)
	if e.Kind() != KindGLR {
		t.Fatalf("initial selection %v, want glr", e.Kind())
	}

	mod, err := grammar.Parse(`E ::= "m"`, g.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	rule := mod.Rules()[0]
	for i := 0; i < 6; i++ {
		if err := e.AddRule(rule); err != nil {
			t.Fatal(err)
		}
		if err := e.DeleteRule(rule); err != nil {
			t.Fatal(err)
		}
	}
	if e.Kind() != KindEarley {
		t.Fatalf("after heavy churn: selection %v, want earley (reason %q)", e.Kind(), e.Reason())
	}
	if !strings.Contains(e.Reason(), "churn") {
		t.Errorf("selection reason %q does not explain the churn verdict", e.Reason())
	}
	// The churn-selected backend is a full engine: trees still build.
	res, err := e.Parse(fixtures.Tokens(g, "n + n"), true)
	if err != nil || !res.Accepted || res.Root == nil {
		t.Fatalf("churn/earley parse: err=%v accepted=%v root=%v", err, res.Accepted, res.Root)
	}
	served := e.Counters().ParsesServed

	// Parse traffic resumes: once the windowed ratio falls under the
	// exit threshold, auto re-probes the tables and the conflicted
	// grammar returns to lazy GLR.
	toks := fixtures.Tokens(g, "n + n")
	for i := 0; i < 200; i++ {
		if ok, err := e.Recognize(toks); err != nil || !ok {
			t.Fatalf("parse %d under churn engine: %v %v", i, ok, err)
		}
	}
	if e.Kind() != KindGLR {
		t.Fatalf("after parse traffic resumed: selection %v, want glr (reason %q)", e.Kind(), e.Reason())
	}
	if got := e.Counters().ParsesServed; got < served+200 {
		t.Fatalf("ParsesServed regressed across churn exit: %d -> %d", served, got)
	}
}

package engine

import (
	"sync"

	"ipg/internal/grammar"
)

// The LL completion cursor keeps the predictive parser's symbol stack
// as a persistent (parent-pointer) structure: one arena of
// {symbol, parent} nodes, with the stack top recorded per position.
// Feeding a token replays exactly what the predictive driver would do —
// expand nonterminals through the prediction table until the token
// surfaces as the stack top — and commits the resulting stack as new
// arena nodes; earlier positions share their tails, so Checkpoint is
// the position and Restore a truncation.
//
// Accepts cannot just read the prediction row of the stack top: a cell
// M[A, t] may be filled through FOLLOW(A), which is a property of the
// grammar, not of this stack — the expansion chosen for t can dead-end
// against the symbol below. So each candidate terminal is answered by
// the same expansion simulation Feed uses, run against a scratch
// overlay stack held by the cursor: exact, and allocation-free when
// warm.

// llNode is one persistent stack cell.
type llNode struct {
	sym    grammar.Symbol
	parent int32
}

// llSimBudget bounds one expansion simulation. A conflict-free LL(1)
// table cannot loop (left recursion always conflicts), so the budget is
// a backstop against pathological tables, generously above any real
// expansion chain.
const llSimBudget = 1 << 16

type llCursor struct {
	e       *LL
	version uint64
	vocab   *Vocab
	stale   bool

	nodes []llNode
	// tops[p] is the stack top node at position p (-1: empty stack);
	// nodeLen[p] the arena length there, so Restore can truncate.
	tops    []int32
	nodeLen []int32

	// overlay is the simulation's virtual stack segment above the
	// persistent chain.
	overlay []grammar.Symbol
}

var llCursorPool = sync.Pool{New: func() any { return new(llCursor) }}

// OpenCursor implements Completer for the LL backend.
func (e *LL) OpenCursor() (Cursor, error) {
	c := llCursorPool.Get().(*llCursor)
	c.e = e
	c.stale = false
	e.mu.RLock()
	defer e.mu.RUnlock()
	c.version = e.g.Version()
	c.vocab = NewVocab(e.g)
	c.nodes = append(c.nodes[:0], llNode{sym: e.g.Start(), parent: -1})
	c.tops = append(c.tops[:0], 0)
	c.nodeLen = append(c.nodeLen[:0], 1)
	return c, nil
}

// use takes the engine lock for one operation and verifies the grammar
// has not moved; the caller must unlock unless an error is returned.
func (c *llCursor) use() error {
	if c.stale {
		return ErrCursorStale
	}
	c.e.mu.RLock()
	if c.e.g.Version() != c.version {
		c.e.mu.RUnlock()
		c.stale = true
		return ErrCursorStale
	}
	return nil
}

// Vocab implements Cursor.
func (c *llCursor) Vocab() *Vocab { return c.vocab }

// Pos implements Cursor.
func (c *llCursor) Pos() int { return len(c.tops) - 1 }

// Checkpoint implements Cursor.
func (c *llCursor) Checkpoint() int { return c.Pos() }

// sim reports whether the predictive parser, resumed from the current
// stack, would consume t (t == EOF asks whether the stack drains to
// empty). The walk pops through the cursor's persistent chain and
// pushes onto the reusable overlay; nothing is committed.
func (c *llCursor) sim(t grammar.Symbol) bool {
	syms := c.e.g.Symbols()
	over := c.overlay[:0]
	p := c.tops[len(c.tops)-1]
	defer func() { c.overlay = over }()
	for steps := 0; steps < llSimBudget; steps++ {
		var top grammar.Symbol
		switch {
		case len(over) > 0:
			top = over[len(over)-1]
		case p >= 0:
			top = c.nodes[p].sym
		default:
			return t == grammar.EOF
		}
		if syms.IsTerminal(top) {
			return top == t
		}
		r := c.e.tbl.Predict(top, t)
		if r == nil {
			return false
		}
		if len(over) > 0 {
			over = over[:len(over)-1]
		} else {
			p = c.nodes[p].parent
		}
		for k := len(r.Rhs) - 1; k >= 0; k-- {
			over = append(over, r.Rhs[k])
		}
	}
	return false
}

// Accepts implements Cursor: one expansion simulation per vocabulary
// terminal. Warm calls allocate nothing.
func (c *llCursor) Accepts(dst *TermSet) error {
	if err := c.use(); err != nil {
		return err
	}
	defer c.e.mu.RUnlock()
	dst.Reset(c.vocab)
	for _, t := range c.vocab.terms {
		if c.sim(t) {
			dst.Add(t)
		}
	}
	return nil
}

// Feed implements Cursor: validate with a simulation, then replay it
// committing the stack into the arena.
func (c *llCursor) Feed(t grammar.Symbol) error {
	if err := c.use(); err != nil {
		return err
	}
	defer c.e.mu.RUnlock()
	if t == grammar.EOF || c.vocab.Index(t) < 0 || !c.sim(t) {
		return ErrRejected
	}
	syms := c.e.g.Symbols()
	p := c.tops[len(c.tops)-1]
	for {
		if p < 0 {
			break // unreachable: sim validated t surfaces as a terminal
		}
		top := c.nodes[p].sym
		if syms.IsTerminal(top) {
			p = c.nodes[p].parent // consume t
			break
		}
		r := c.e.tbl.Predict(top, t)
		p = c.nodes[p].parent
		for k := len(r.Rhs) - 1; k >= 0; k-- {
			c.nodes = append(c.nodes, llNode{sym: r.Rhs[k], parent: p})
			p = int32(len(c.nodes) - 1)
		}
	}
	c.tops = append(c.tops, p)
	c.nodeLen = append(c.nodeLen, int32(len(c.nodes)))
	return nil
}

// Restore implements Cursor: truncate the arena back to the
// checkpointed position.
func (c *llCursor) Restore(cp int) error {
	if c.stale {
		return ErrCursorStale
	}
	pos := c.Pos()
	if cp < 0 || cp > pos {
		return badRestore(cp, pos)
	}
	if cp == pos {
		return nil
	}
	c.tops = c.tops[:cp+1]
	c.nodeLen = c.nodeLen[:cp+1]
	c.nodes = c.nodes[:c.nodeLen[cp]]
	return nil
}

// Close implements Cursor.
func (c *llCursor) Close() {
	c.nodes = c.nodes[:0]
	c.tops = c.tops[:0]
	c.nodeLen = c.nodeLen[:0]
	c.overlay = c.overlay[:0]
	c.vocab = nil
	c.e = nil
	c.stale = true
	llCursorPool.Put(c)
}

package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ipg/internal/core"
	"ipg/internal/grammar"
	"ipg/internal/lalr"
	"ipg/internal/ll"
)

// Auto probes the grammar and delegates to the cheapest adequate
// backend, recording why:
//
//   - LALR(1) when the table is conflict-free — deterministic tenant
//     grammars get the fast Yacc-style path;
//   - LL(1) when LALR(1) conflicts but the prediction table is clean (a
//     rare corner, present for symmetry with Fig 2.1);
//   - lazy GLR otherwise — ambiguous or conflicted grammars keep the
//     paper's machinery, including incremental updates and snapshots;
//   - Earley when the entry's recent update-rate/parse-rate ratio
//     crosses the churn threshold *and* the current backend cannot
//     absorb updates by in-place repair: a tenant editing its grammar
//     faster than it parses pays nothing per update on the table-free
//     backend, and rejoins a table-driven one once parse traffic
//     dominates again (hysteresis keeps the selection from flapping).
//     LALR and LL repair their tables in place, so churn never evicts
//     them from their fast deterministic drivers.
//
// After a rule update the grammar is re-probed: a modification can
// move a grammar across the determinism boundary in either direction,
// and the engine follows it (an already-warm lazy GLR table is kept when
// the verdict does not change). Re-probing is deferred and cached: a
// batch of k rule updates pays one probe (on the next engine use), not
// k, and the probe's verdict — including the LALR table it built — is
// stamped with the grammar version so a same-version reselection never
// regenerates anything.
type Auto struct {
	opts Options

	mu  sync.RWMutex
	g   *grammar.Grammar
	cur Engine
	// lastEarley is the most recent churn-selected Earley backend. A
	// parse that fetched it via current() just before a reselection may
	// still be reading the rule set (its compiled view is rebuilt from
	// the grammar per version), so grammar mutations keep taking its
	// write lock after it is retired.
	lastEarley *Earley
	// probeVersion is the grammar version the current selection was
	// probed at; a reselection at the same version is a no-op (same
	// grammar ⇒ same verdict ⇒ same table).
	probeVersion uint64
	// retired accumulates the counters of replaced backends, so the
	// entry's counters stay monotonic across reselections (a rule
	// update must not reset parses_served to zero).
	retired core.Counters

	// reprobe marks that rule updates (or a churn-window shift) have
	// outdated the selection; the next access re-probes once for the
	// whole batch. reprobes counts consumed re-probe passes — the
	// auto-reprobe event counter /metrics exposes per grammar.
	reprobe  atomic.Bool
	reprobes atomic.Uint64
	// churnSelected records that cur was selected by the churn
	// heuristic, not a table probe. Written only under mu (reselect);
	// read lock-free by the exit check in noteParse.
	churnSelected atomic.Bool
	// winUpdates/winParses are the decayed event window behind the
	// churn heuristic: both halve when their sum crosses the window
	// bound, so the ratio tracks recent traffic, not lifetime totals.
	// The updates are racy by design — the window is a heuristic, and a
	// smeared decay only shifts the crossing by a few events.
	winUpdates atomic.Uint64
	winParses  atomic.Uint64
}

const (
	// churnWindow bounds the update/parse event window; crossing it
	// halves both counters (an exponential decay in batches).
	churnWindow = 256
	// churnMinUpdates is the fewest windowed updates that can trigger
	// the churn verdict, so a burst of two edits cannot flap the engine.
	churnMinUpdates = 8
	// churnEnterRatio switches to Earley when updates/(updates+parses)
	// reaches it; churnExitRatio re-probes the tables once parse
	// traffic pushes the ratio back down. The gap is the hysteresis.
	churnEnterRatio = 0.5
	churnExitRatio  = 0.25
)

// NewAuto probes g and returns the auto engine with its selection made.
func NewAuto(g *grammar.Grammar, opts *Options) *Auto {
	a := &Auto{g: g}
	if opts != nil {
		a.opts = *opts
	}
	a.cur = probe(g, &a.opts)
	a.probeVersion = g.Version()
	return a
}

// Probe reports the backend auto-selection would pick for g and why,
// without keeping the built engine — for diagnostics and docs. The
// verdict is the table probe's; the churn heuristic needs live traffic
// and never applies to a fresh engine.
func Probe(g *grammar.Grammar) (Kind, string) {
	e := probe(g, nil)
	return e.Kind(), e.Reason()
}

// probe runs the selection: conflict-free ⇒ LALR(1); LL(1)-able ⇒ LL;
// else lazy GLR. The LALR table built for conflict counting is adopted
// by the LALR engine when it wins (and the LL prediction table by the
// LL engine), so the probe is never wasted work on the path that needs
// it.
func probe(g *grammar.Grammar, opts *Options) Engine {
	tbl := lalr.Generate(g)
	if len(tbl.Conflicts()) == 0 {
		reason := fmt.Sprintf("auto: LALR(1) — conflict-free (%d states, deterministic LR driver)",
			tbl.Automaton().Len())
		return newLALRFromTable(g, tbl, reason)
	}
	if lt := ll.Generate(g); len(lt.Conflicts()) == 0 {
		reason := fmt.Sprintf("auto: LL(1) — %d LALR(1) conflicts but a clean prediction table", len(tbl.Conflicts()))
		e := &LL{reason: reason, g: g, tbl: lt}
		return e
	}
	c := tbl.Conflicts()[0]
	reason := fmt.Sprintf("auto: lazy GLR — %d LALR(1) conflicts (first: %s on %q in state %d)",
		len(tbl.Conflicts()), c.Kind, g.Symbols().Name(c.Symbol), c.State.ID)
	return NewGLR(g, opts, reason)
}

// current returns the selected backend, re-probing first when rule
// updates or a churn-window shift have outdated the selection.
func (a *Auto) current() Engine {
	if !a.reprobe.Load() {
		a.mu.RLock()
		cur := a.cur
		a.mu.RUnlock()
		return cur
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.reprobe.Swap(false) {
		a.reselectLocked()
	}
	return a.cur
}

// Kind implements Engine, reporting the selected backend's kind.
func (a *Auto) Kind() Kind { return a.current().Kind() }

// Reason implements Engine: the prober's verdict.
func (a *Auto) Reason() string { return a.current().Reason() }

// Caps implements Engine: the selected backend's capabilities.
func (a *Auto) Caps() Caps { return a.current().Caps() }

// Parse implements Engine. Every parse feeds the churn window; while
// the churn verdict holds, parse traffic pushing the window ratio under
// the exit threshold schedules a table re-probe.
func (a *Auto) Parse(input []grammar.Symbol, buildTrees bool) (Result, error) {
	a.noteParse()
	return a.current().Parse(input, buildTrees)
}

// Recognize implements Engine.
func (a *Auto) Recognize(input []grammar.Symbol) (bool, error) {
	a.noteParse()
	return a.current().Recognize(input)
}

func (a *Auto) noteParse() {
	p := a.winParses.Add(1)
	u := a.winUpdates.Load()
	if u+p >= churnWindow {
		// Best-effort exponential decay; racing halvings only smear the
		// window by a few events.
		a.winUpdates.Store(u / 2)
		a.winParses.Store(p / 2)
	}
	if a.churnSelected.Load() && float64(u) < churnExitRatio*float64(u+p) {
		a.reprobe.Store(true)
	}
}

func (a *Auto) noteUpdate() {
	u := a.winUpdates.Add(1)
	p := a.winParses.Load()
	if u+p >= churnWindow {
		a.winUpdates.Store(u / 2)
		a.winParses.Store(p / 2)
	}
}

// Counters implements Engine: the live backend's counters plus those
// accumulated by backends retired at reselection.
func (a *Auto) Counters() core.Counters {
	a.current() // settle any pending reselection first
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.cur.Counters().Plus(a.retired)
}

// TableInfo implements Engine.
func (a *Auto) TableInfo() TableInfo { return a.current().TableInfo() }

// AddRule implements Engine: the rule is applied through the selected
// backend, and the grammar is re-probed only when the update could have
// moved the verdict. Every backend now absorbs updates incrementally —
// GLR splices through its generator, Earley updates its rule view, LALR
// repairs the affected states in place, LL refills the damaged
// prediction rows — so as long as the verdict visibly holds (LALR still
// conflict-free, LL still accepting) the selection is stamped current
// and no probe regenerates anything. A repaired update that does move
// the verdict (a conflict appears in the LALR table, a rule is rolled
// back as non-LL(1)) schedules the probe, which may carry the grammar
// onto the lazy-GLR path.
func (a *Auto) AddRule(r *grammar.Rule) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	defer a.lockRetiredEarley()()
	switch cur := a.cur.(type) {
	case *GLR:
		if err := cur.AddRule(r); err != nil {
			return err
		}
		a.noteUpdate()
		a.reprobe.Store(true)
	case *Earley:
		if err := cur.AddRule(r); err != nil {
			return err
		}
		a.noteUpdate()
		a.reprobe.Store(true)
	case *LALR:
		if err := cur.AddRule(r); err != nil {
			return err
		}
		a.noteUpdate()
		if len(cur.Table().Conflicts()) > 0 {
			a.reprobe.Store(true)
		} else {
			// Verdict unchanged: the repaired table is the one a probe
			// would build, so stamp the selection current.
			a.probeVersion = a.g.Version()
		}
	case *LL:
		err := cur.AddRule(r)
		if errors.Is(err, ll.ErrNotLL1) {
			// The backend rolled the rule back to keep its table clean,
			// but the auto contract is to apply the rule and follow the
			// grammar wherever it goes: reapply directly and let the
			// probe pick the backend that now fits.
			if aerr := a.g.AddRule(r); aerr != nil {
				return aerr
			}
			a.noteUpdate()
			a.reprobe.Store(true)
			return nil
		}
		if err != nil {
			return err
		}
		a.noteUpdate()
		a.probeVersion = a.g.Version()
	default:
		if err := a.g.AddRule(r); err != nil {
			return err
		}
		a.noteUpdate()
		a.reprobe.Store(true)
	}
	return nil
}

// lockRetiredEarley excludes in-flight parses on a churn-retired Earley
// backend for the duration of a grammar mutation: such a parse may
// recompile its grammar view at any moment, and the table-driven
// current backend's own locking cannot see it. Returns the unlock (a
// no-op when there is no retired Earley, or when the Earley backend is
// current — its AddRule/DeleteRule takes the same lock itself).
func (a *Auto) lockRetiredEarley() func() {
	if e := a.lastEarley; e != nil && Engine(e) != a.cur {
		e.mu.Lock()
		return e.mu.Unlock
	}
	return func() {}
}

// DeleteRule implements Engine; see AddRule for the per-backend
// application strategy. A deletion can only shrink the LALR conflict
// set and cannot break LL(1), so the table-driven backends keep their
// repaired tables without a re-probe.
func (a *Auto) DeleteRule(r *grammar.Rule) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	defer a.lockRetiredEarley()()
	switch cur := a.cur.(type) {
	case *GLR:
		if err := cur.DeleteRule(r); err != nil {
			return err
		}
		a.noteUpdate()
		a.reprobe.Store(true)
	case *Earley:
		if err := cur.DeleteRule(r); err != nil {
			return err
		}
		a.noteUpdate()
		a.reprobe.Store(true)
	case *LALR:
		if err := cur.DeleteRule(r); err != nil {
			return err
		}
		a.noteUpdate()
		if len(cur.Table().Conflicts()) > 0 {
			a.reprobe.Store(true)
		} else {
			a.probeVersion = a.g.Version()
		}
	case *LL:
		if err := cur.DeleteRule(r); err != nil {
			return err
		}
		a.noteUpdate()
		a.probeVersion = a.g.Version()
	default:
		if _, err := a.g.DeleteRule(r); err != nil {
			return err
		}
		a.noteUpdate()
		a.reprobe.Store(true)
	}
	return nil
}

// reselectLocked re-probes after one or more modifications (or a churn
// shift). The churn heuristic is consulted first: while recent updates
// outnumber the enter threshold, the table-free Earley backend serves
// the entry and no table is (re)generated at all. Otherwise the table
// probe runs; it is skipped entirely when the grammar version has not
// moved since the last one (nothing to relearn — and nothing to
// regenerate: the current backend still holds the table that probe
// built). A warm lazy-GLR table survives a GLR→GLR verdict (the
// incremental splice already updated it); every other verdict adopts
// the freshly probed engine, whose probe-built table reflects the
// updated grammar, and banks the replaced backend's counters so the
// entry's totals stay monotonic.
func (a *Auto) reselectLocked() {
	a.reprobes.Add(1)
	v := a.g.Version()
	u, p := a.winUpdates.Load(), a.winParses.Load()
	if a.churnJustifiesEarleyLocked() && u >= churnMinUpdates && float64(u) >= churnEnterRatio*float64(u+p) {
		a.probeVersion = v
		if _, isEarley := a.cur.(*Earley); !isEarley {
			reason := fmt.Sprintf("auto: Earley — heavy rule churn (%d updates vs %d parses in window; table-free updates are free)", u, p)
			e := NewEarley(a.g, reason)
			a.retireTo(e)
			a.lastEarley = e
		}
		a.churnSelected.Store(true)
		return
	}
	wasChurn := a.churnSelected.Load()
	a.churnSelected.Store(false)
	if v == a.probeVersion && !wasChurn {
		return
	}
	a.probeVersion = v
	next := probe(a.g, &a.opts)
	if _, stayGLR := a.cur.(*GLR); stayGLR && next.Kind() == KindGLR {
		return
	}
	a.retireTo(next)
}

// churnJustifiesEarleyLocked reports whether heavy rule churn is worth
// a switch to the table-free backend. Since LALR and LL absorb updates
// by in-place table repair, churn no longer forces them off their fast
// drivers: only backends whose per-update cost is not bounded by the
// damage — lazy GLR, whose splice still re-expands eagerly-published
// states — trade up to Earley under churn.
func (a *Auto) churnJustifiesEarleyLocked() bool {
	switch a.cur.(type) {
	case *LALR, *LL:
		return false
	default:
		return true
	}
}

// retireTo banks the replaced backend's counters and installs next.
// Replacing a backend discards its table wholesale; count those states
// as invalidated so an auto entry reports the same regeneration cost an
// explicit LALR/LL entry would.
func (a *Auto) retireTo(next Engine) {
	a.retired = a.retired.Plus(a.cur.Counters())
	a.retired.StatesInvalidated += uint64(a.cur.TableInfo().States)
	a.cur = next
}

// Reprobes counts the re-probe passes the engine has run after rule
// updates or churn-window shifts — the observable cost of keeping the
// selection honest, exposed as the auto_reprobes_total metric.
func (a *Auto) Reprobes() uint64 { return a.reprobes.Load() }

// snapshotter resolves the selected backend's snapshot capability (nil
// when it has none — only the lazy-GLR table persists).
func (a *Auto) snapshotter() Snapshotter {
	if s, ok := a.current().(Snapshotter); ok {
		return s
	}
	return nil
}

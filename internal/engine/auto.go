package engine

import (
	"fmt"
	"sync"

	"ipg/internal/core"
	"ipg/internal/grammar"
	"ipg/internal/lalr"
	"ipg/internal/ll"
)

// Auto probes the grammar and delegates to the cheapest adequate
// backend, recording why:
//
//   - LALR(1) when the table is conflict-free — deterministic tenant
//     grammars get the fast Yacc-style path;
//   - LL(1) when LALR(1) conflicts but the prediction table is clean (a
//     rare corner, present for symmetry with Fig 2.1);
//   - lazy GLR otherwise — ambiguous or conflicted grammars keep the
//     paper's machinery, including incremental updates and snapshots.
//
// After a rule update the grammar is re-probed: a modification can
// move a grammar across the determinism boundary in either direction,
// and the engine follows it (an already-warm lazy GLR table is kept when
// the verdict does not change). Re-probing is deferred and cached: a
// batch of k rule updates pays one probe (on the next engine use), not
// k, and the probe's verdict — including the LALR table it built — is
// stamped with the grammar version so a same-version reselection never
// regenerates anything.
type Auto struct {
	opts Options

	mu  sync.RWMutex
	g   *grammar.Grammar
	cur Engine
	// reprobe marks that rule updates have outdated the selection; the
	// next access re-probes once for the whole batch.
	reprobe bool
	// probeVersion is the grammar version the current selection was
	// probed at; a reselection at the same version is a no-op (same
	// grammar ⇒ same verdict ⇒ same table).
	probeVersion uint64
	// retired accumulates the counters of replaced backends, so the
	// entry's counters stay monotonic across reselections (a rule
	// update must not reset parses_served to zero).
	retired core.Counters
}

// NewAuto probes g and returns the auto engine with its selection made.
func NewAuto(g *grammar.Grammar, opts *Options) *Auto {
	a := &Auto{g: g}
	if opts != nil {
		a.opts = *opts
	}
	a.cur = probe(g, &a.opts)
	a.probeVersion = g.Version()
	return a
}

// Probe reports the backend auto-selection would pick for g and why,
// without keeping the built engine — for diagnostics and docs.
func Probe(g *grammar.Grammar) (Kind, string) {
	e := probe(g, nil)
	return e.Kind(), e.Reason()
}

// probe runs the selection: conflict-free ⇒ LALR(1); LL(1)-able ⇒ LL;
// else lazy GLR. The LALR table built for conflict counting is adopted
// by the LALR engine when it wins (and the LL prediction table by the
// LL engine), so the probe is never wasted work on the path that needs
// it.
func probe(g *grammar.Grammar, opts *Options) Engine {
	tbl := lalr.Generate(g)
	if len(tbl.Conflicts()) == 0 {
		reason := fmt.Sprintf("auto: LALR(1) — conflict-free (%d states, deterministic LR driver)",
			tbl.Automaton().Len())
		return newLALRFromTable(g, tbl, reason)
	}
	if lt := ll.Generate(g); len(lt.Conflicts()) == 0 {
		reason := fmt.Sprintf("auto: LL(1) — %d LALR(1) conflicts but a clean prediction table", len(tbl.Conflicts()))
		e := &LL{reason: reason, g: g, tbl: lt}
		return e
	}
	c := tbl.Conflicts()[0]
	reason := fmt.Sprintf("auto: lazy GLR — %d LALR(1) conflicts (first: %s on %q in state %d)",
		len(tbl.Conflicts()), c.Kind, g.Symbols().Name(c.Symbol), c.State.ID)
	return NewGLR(g, opts, reason)
}

// current returns the selected backend, re-probing first when rule
// updates have outdated the selection.
func (a *Auto) current() Engine {
	a.mu.RLock()
	if !a.reprobe {
		cur := a.cur
		a.mu.RUnlock()
		return cur
	}
	a.mu.RUnlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.reprobe {
		a.reselectLocked()
		a.reprobe = false
	}
	return a.cur
}

// Kind implements Engine, reporting the selected backend's kind.
func (a *Auto) Kind() Kind { return a.current().Kind() }

// Reason implements Engine: the prober's verdict.
func (a *Auto) Reason() string { return a.current().Reason() }

// Caps implements Engine: the selected backend's capabilities.
func (a *Auto) Caps() Caps { return a.current().Caps() }

// Parse implements Engine.
func (a *Auto) Parse(input []grammar.Symbol, buildTrees bool) (Result, error) {
	return a.current().Parse(input, buildTrees)
}

// Recognize implements Engine.
func (a *Auto) Recognize(input []grammar.Symbol) (bool, error) {
	return a.current().Recognize(input)
}

// Counters implements Engine: the live backend's counters plus those
// accumulated by backends retired at reselection.
func (a *Auto) Counters() core.Counters {
	a.current() // settle any pending reselection first
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.cur.Counters().Plus(a.retired)
}

// TableInfo implements Engine.
func (a *Auto) TableInfo() TableInfo { return a.current().TableInfo() }

// AddRule implements Engine: the rule is applied, then the grammar is
// re-probed. The selection may change — e.g. a rule that introduces a
// conflict moves a LALR(1) grammar onto the lazy-GLR path, and one that
// breaks LL(1) moves an LL grammar to whichever backend now fits.
//
// How the rule is applied depends on the selected backend. GLR splices
// through its generator (the incremental update is kept if GLR stays
// selected) and Earley updates under its own write lock (its parses
// read the rule set token by token). The table-driven backends (LALR,
// LL) mutate the grammar directly instead of calling their AddRule:
// their in-flight parses read only the immutable table built earlier
// and the symbol kinds — never the rule set — and going through the
// backend would regenerate a table that reselectLocked's probe is about
// to build (and keep) anyway.
func (a *Auto) AddRule(r *grammar.Rule) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch cur := a.cur.(type) {
	case *GLR:
		if err := cur.AddRule(r); err != nil {
			return err
		}
	case *Earley:
		if err := cur.AddRule(r); err != nil {
			return err
		}
	default:
		if err := a.g.AddRule(r); err != nil {
			return err
		}
	}
	a.reprobe = true
	return nil
}

// DeleteRule implements Engine; see AddRule for the per-backend
// application strategy.
func (a *Auto) DeleteRule(r *grammar.Rule) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch cur := a.cur.(type) {
	case *GLR:
		if err := cur.DeleteRule(r); err != nil {
			return err
		}
	case *Earley:
		if err := cur.DeleteRule(r); err != nil {
			return err
		}
	default:
		if _, err := a.g.DeleteRule(r); err != nil {
			return err
		}
	}
	a.reprobe = true
	return nil
}

// reselectLocked re-probes after one or more modifications. The probe
// is skipped entirely when the grammar version has not moved since the
// last one (nothing to relearn — and nothing to regenerate: the current
// backend still holds the table that probe built). A warm lazy-GLR
// table survives a GLR→GLR verdict (the incremental splice already
// updated it); every other verdict adopts the freshly probed engine,
// whose probe-built table reflects the updated grammar, and banks the
// replaced backend's counters so the entry's totals stay monotonic.
func (a *Auto) reselectLocked() {
	if v := a.g.Version(); v == a.probeVersion {
		return
	} else {
		a.probeVersion = v
	}
	next := probe(a.g, &a.opts)
	if _, stayGLR := a.cur.(*GLR); stayGLR && next.Kind() == KindGLR {
		return
	}
	a.retired = a.retired.Plus(a.cur.Counters())
	// Replacing a backend discards its table wholesale; count those
	// states as invalidated so an auto entry reports the same
	// regeneration cost an explicit LALR/LL entry would.
	a.retired.StatesInvalidated += uint64(a.cur.TableInfo().States)
	a.cur = next
}

// snapshotter resolves the selected backend's snapshot capability (nil
// when it has none — only the lazy-GLR table persists).
func (a *Auto) snapshotter() Snapshotter {
	if s, ok := a.current().(Snapshotter); ok {
		return s
	}
	return nil
}

// Allocation pins for the completion hot path: an accept-set query is
// issued once per generated token in constrained decoding, so the warm
// deterministic cursors must not touch the heap at all, and a cursor
// advance may amortize at most one arena growth. These pins extend the
// TestAllocRegressionGuard discipline (which gates the parse workloads
// against BENCH baselines) down to the completion layer.
package engine_test

import (
	"testing"

	"ipg/internal/engine"
	"ipg/internal/fixtures"
)

func TestAcceptsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool lossy; allocation counts are meaningless under -race")
	}
	cases := []struct {
		name    string
		kind    engine.Kind
		fixture string
	}{
		{"lalr", engine.KindLALR, "CalcDet.bnf"},
		{"ll", engine.KindLL, "CalcLL.bnf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := guardFixture(t, tc.fixture)
			e, err := engine.New(tc.kind, g, nil)
			if err != nil {
				t.Fatal(err)
			}
			c, rej, err := engine.OpenCursor(e, fixtures.Tokens(g, "n + n * ( n"))
			if err != nil {
				t.Fatalf("OpenCursor: rej=%d %v", rej, err)
			}
			defer c.Close()
			var set engine.TermSet
			tok := fixtures.Tokens(g, ")")[0]
			// Warm the set storage and the cursor arenas: one query, one
			// full feed/restore cycle.
			cp := c.Checkpoint()
			if err := c.Accepts(&set); err != nil {
				t.Fatal(err)
			}
			if err := c.Feed(tok); err != nil {
				t.Fatal(err)
			}
			if err := c.Restore(cp); err != nil {
				t.Fatal(err)
			}

			if got := testing.AllocsPerRun(100, func() {
				if err := c.Accepts(&set); err != nil {
					t.Fatal(err)
				}
			}); got != 0 {
				t.Errorf("warm Accepts: %v allocs/op, want 0", got)
			}
			if !set.Has(tok) {
				t.Fatalf("warm accept set lost %q", ")")
			}
			if got := testing.AllocsPerRun(100, func() {
				if err := c.Feed(tok); err != nil {
					t.Fatal(err)
				}
				if err := c.Restore(cp); err != nil {
					t.Fatal(err)
				}
			}); got > 1 {
				t.Errorf("warm Feed+Restore cycle: %v allocs/op, want <= 1", got)
			}
		})
	}
}

// TestCursorPoolReuse pins that Close returns cursor storage to the
// pool: a close/reopen cycle on a warm engine must not rebuild the
// arenas from scratch every time (one allocation budget covers the
// vocabulary rebuild, which is per-open by design).
func TestCursorPoolReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool lossy; allocation counts are meaningless under -race")
	}
	g := guardFixture(t, "CalcDet.bnf")
	e, err := engine.New(engine.KindLALR, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	prefix := fixtures.Tokens(g, "n + n")
	// Warm the pool and the table.
	for i := 0; i < 4; i++ {
		c, _, err := engine.OpenCursor(e, prefix)
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	got := testing.AllocsPerRun(50, func() {
		c, _, err := engine.OpenCursor(e, prefix)
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
	})
	// NewVocab allocates the terms/names/bit slices per open (4 allocs
	// with headroom for the Terminals copy); the cursor arenas must come
	// from the pool.
	if got > 8 {
		t.Errorf("open/feed/close cycle: %v allocs/op, want <= 8 (pooled arenas)", got)
	}
}

package engine

import (
	"fmt"
	"runtime/debug"

	"ipg/internal/cancel"
	"ipg/internal/faultinject"
	"ipg/internal/grammar"
	"ipg/internal/obs"
)

// This file is the fault-tolerant engine dispatch: ParseGuarded is what
// the registry drives every parse through. It (1) threads the parse's
// cancellation flag into the backend's drive loop, (2) recovers panics
// — a grammar or input that crashes an engine must cost the service one
// structured error, not the process — and (3) hosts the dispatch-level
// fault-injection site the chaos harness uses to simulate both.

// PanicError is an engine panic recovered at dispatch, converted into a
// structured error so the serving layer can count it, feed the
// per-grammar quarantine breaker, and answer 500 instead of dying.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: parse panicked: %v", e.Value)
}

// cancelParser is the optional capability of engines that thread a
// cancellation flag into their drive loops. All built-in engines
// implement it; the fallback for a hypothetical engine without it is an
// uncancellable (but still panic-guarded) parse.
type cancelParser interface {
	parseCancel(input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace, fl *cancel.Flag) (Result, error)
}

// ParseGuarded parses through e with lifecycle tracing (nil tr traces
// nothing), cancellation (nil fl never cancels; both cost only nil
// checks, keeping the warm path 0 allocs/op), and panic quarantine.
// A cancel.Abort panicked by the lazy-expansion checkpoint surfaces as
// the flag's structured *cancel.Error; any other panic surfaces as a
// *PanicError.
func ParseGuarded(e Engine, input []grammar.Symbol, buildTrees bool, tr *obs.ParseTrace, fl *cancel.Flag) (res Result, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		res = Result{}
		if a, ok := r.(cancel.Abort); ok {
			// Cancellation observed inside the table machinery, not a
			// fault: position is unknown at this layer, the work
			// counter carries the partial progress.
			err = a.Flag.Err(0, len(input), a.Work)
			return
		}
		err = &PanicError{Value: r, Stack: debug.Stack()}
	}()
	if faultinject.Armed() {
		if ferr := faultinject.Fire(faultinject.SiteDispatch); ferr != nil {
			return Result{}, ferr
		}
	}
	if cp, ok := e.(cancelParser); ok {
		return cp.parseCancel(input, buildTrees, tr, fl)
	}
	return TraceParse(e, input, buildTrees, tr)
}

// cancelSession is the optional capability of sessions whose reparses
// poll a cancellation flag. Both built-in session kinds implement it.
type cancelSession interface {
	ReparseCancel(fl *cancel.Flag) (Result, error)
	TreeCancel(fl *cancel.Flag) (Result, error)
}

// ReparseGuarded runs s.Reparse with cancellation and the same panic
// quarantine as ParseGuarded.
func ReparseGuarded(s Session, fl *cancel.Flag) (res Result, err error) {
	return sessionGuarded(s, fl, false)
}

// TreeGuarded runs s.Tree with cancellation and panic quarantine.
func TreeGuarded(s Session, fl *cancel.Flag) (res Result, err error) {
	return sessionGuarded(s, fl, true)
}

func sessionGuarded(s Session, fl *cancel.Flag, tree bool) (res Result, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		res = Result{}
		if a, ok := r.(cancel.Abort); ok {
			err = a.Flag.Err(0, s.Len(), a.Work)
			return
		}
		err = &PanicError{Value: r, Stack: debug.Stack()}
	}()
	if faultinject.Armed() {
		if ferr := faultinject.Fire(faultinject.SiteDispatch); ferr != nil {
			return Result{}, ferr
		}
	}
	if cs, ok := s.(cancelSession); ok {
		if tree {
			return cs.TreeCancel(fl)
		}
		return cs.ReparseCancel(fl)
	}
	if tree {
		return s.Tree()
	}
	return s.Reparse()
}

package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ipg/internal/engine"
)

func TestSessionOpenSpliceReparse(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{Source: boolSrc, Engine: engine.KindEarley})
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.OpenSession(e, "true or false and true")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.Reparse(nil); err != nil || !res.Accepted {
		t.Fatalf("initial reparse: %v accepted=%v", err, res.Accepted)
	}
	if err := s.Splice(4, 1, "false", nil); err != nil {
		t.Fatal(err)
	}
	res, err := s.Reparse(nil)
	if err != nil || !res.Accepted {
		t.Fatalf("edited reparse: %v accepted=%v", err, res.Accepted)
	}
	st := s.Stat()
	if !st.Incremental || st.SetsReused == 0 || st.Splices != 1 {
		t.Errorf("stat after tail edit: %+v", st)
	}
	if res, err := s.Tree(nil); err != nil || !res.TreesKnown || res.Trees < 1 {
		t.Errorf("tree: %v %+v", err, res)
	}
	// A reparse on an untouched document is definite about rejection
	// bookkeeping too: splice in garbage and check TreesKnown.
	if err := s.Splice(1, 1, "true", nil); err != nil {
		t.Fatal(err)
	}
	if res, _ := s.Reparse(nil); res.Accepted || !res.TreesKnown || res.Trees != 0 {
		t.Errorf("rejection should be definite: %+v", res)
	}
	if !r.CloseSession(s.ID()) {
		t.Error("close reported unknown id")
	}
	if _, err := s.Reparse(nil); !errors.Is(err, ErrNoSession) {
		t.Errorf("reparse after close: %v, want ErrNoSession", err)
	}
}

// TestSessionEntryRemovalClosesSessions: removing or replacing a
// grammar closes its sessions — retained charts refer to the old
// engine.
func TestSessionEntryRemovalClosesSessions(t *testing.T) {
	r := New()
	e, _ := r.Register("bool", Spec{Source: boolSrc, Engine: engine.KindEarley})
	s1, err := r.OpenSession(e, "true")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("bool", Spec{Source: boolSrc, Engine: engine.KindEarley}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Session(s1.ID()); ok {
		t.Error("session survived entry replacement")
	}
	if _, err := s1.Reparse(nil); !errors.Is(err, ErrNoSession) {
		t.Errorf("replaced-entry session reparse: %v", err)
	}

	e2, _ := r.Get("bool")
	s2, err := r.OpenSession(e2, "false")
	if err != nil {
		t.Fatal(err)
	}
	r.Remove("bool")
	if _, ok := r.Session(s2.ID()); ok {
		t.Error("session survived entry removal")
	}
	if got := r.SessionTotals(); got.Open != 0 || got.Closed != 2 {
		t.Errorf("totals after removal: %+v", got)
	}
}

// TestSessionConcurrentStress races splices, reparses, tree builds,
// stats scrapes, metric aggregation and idle eviction against each
// other; run under -race this is the session layer's data-race gate.
func TestSessionConcurrentStress(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{Source: boolSrc, Engine: engine.KindEarley})
	if err != nil {
		t.Fatal(err)
	}
	r.SetSessionLimits(SessionLimits{MaxSessions: 64, MaxDocTokens: 256, IdleTimeout: time.Millisecond})

	const workers = 8
	const opsPerWorker = 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var s *Session
			for op := 0; op < opsPerWorker; op++ {
				if s == nil {
					var err error
					s, err = r.OpenSession(e, "true or false and true")
					if err != nil {
						if errors.Is(err, ErrSessionLimit) {
							continue
						}
						t.Errorf("worker %d: open: %v", w, err)
						return
					}
				}
				var err error
				switch op % 5 {
				case 0:
					err = s.Splice(op%4, 1, [2]string{"true", "false"}[op%2], nil)
				case 1:
					_, err = s.Reparse(nil)
				case 2:
					_, err = s.Tree(nil)
				case 3:
					s.Stat()
				case 4:
					if op%20 == 4 {
						r.CloseSession(s.ID())
						s = nil
					}
				}
				// Eviction and entry admission can race any operation;
				// both are expected outcomes, not failures.
				if err != nil && !errors.Is(err, ErrNoSession) && !errors.Is(err, ErrBusy) && !errors.Is(err, ErrRateLimited) {
					t.Errorf("worker %d op %d: %v", w, op, err)
					return
				}
				if err != nil {
					s = nil
				}
			}
			if s != nil {
				r.CloseSession(s.ID())
			}
		}(w)
	}
	// Evictor and scraper race the workers.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.EvictIdleSessions(time.Now().Add(time.Hour))
				r.SessionTotals()
				r.SessionStats()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(done)

	r.EvictIdleSessions(time.Now().Add(time.Hour))
	tot := r.SessionTotals()
	if tot.Open != 0 {
		t.Errorf("sessions leaked: %+v", tot)
	}
	if tot.Opened != tot.Closed+tot.Evicted {
		t.Errorf("opened %d != closed %d + evicted %d", tot.Opened, tot.Closed, tot.Evicted)
	}
	if tot.Reparses == 0 || tot.SetsReused == 0 {
		t.Errorf("no work recorded: %+v", tot)
	}
}

// TestSessionLimitsAreChecked pins the admission errors at the
// registry level (serve maps them to 429/413).
func TestSessionLimitsAreChecked(t *testing.T) {
	r := New()
	e, _ := r.Register("bool", Spec{Source: boolSrc, Engine: engine.KindEarley})
	r.SetSessionLimits(SessionLimits{MaxSessions: 2, MaxDocTokens: 8})

	var open []*Session
	for i := 0; i < 2; i++ {
		s, err := r.OpenSession(e, "true")
		if err != nil {
			t.Fatal(err)
		}
		open = append(open, s)
	}
	if _, err := r.OpenSession(e, "true"); !errors.Is(err, ErrSessionLimit) {
		t.Errorf("over MaxSessions: %v", err)
	}
	if _, err := r.OpenSession(e, fmt.Sprintf("true%s", " or true or true or true")); !errors.Is(err, ErrSessionLimit) {
		// Session cap fires first; drop one and probe the token cap.
		_ = err
	}
	r.CloseSession(open[0].ID())
	if _, err := r.OpenSession(e, "true or true or true or true or true"); !errors.Is(err, ErrDocTooLarge) {
		t.Errorf("over MaxDocTokens at open: %v", err)
	}
	if err := open[1].Splice(0, 0, "true or true or true or true or", nil); !errors.Is(err, ErrDocTooLarge) {
		t.Errorf("over MaxDocTokens on splice: %v", err)
	}
	if st := open[1].Stat(); st.Tokens != 1 {
		t.Errorf("failed splice mutated the document: %+v", st)
	}
}

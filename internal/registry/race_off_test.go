//go:build !race

package registry

// raceEnabled mirrors the race build tag; see race_on_test.go.
const raceEnabled = false

package registry

import (
	"context"
	"sync"
	"testing"
	"time"

	"ipg/internal/obs"
)

// TestLatencyEmptySnapshot pins the empty histogram's edge behavior:
// everything reports zero and nothing panics, so renderers can treat
// "no observations yet" uniformly.
func TestLatencyEmptySnapshot(t *testing.T) {
	var h latencyHist
	s := h.snapshot()
	if s.Count != 0 || s.SumUS != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
	if got := s.MeanUS(); got != 0 {
		t.Errorf("empty mean = %v, want 0", got)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := s.PercentileUS(q); got != 0 {
			t.Errorf("empty p%v = %d, want 0", q*100, got)
		}
	}
	// Merging an empty snapshot is a no-op.
	var merged LatencySnapshot
	merged.Add(s)
	if merged.Count != 0 {
		t.Errorf("empty merge: %+v", merged)
	}
}

// TestLatencySingleBucketPercentiles puts every observation into one
// bucket: all percentiles must collapse onto that bucket's upper bound,
// including the extreme ranks where the rank arithmetic is easiest to
// get wrong.
func TestLatencySingleBucketPercentiles(t *testing.T) {
	tests := []struct {
		name string
		d    time.Duration
		want uint64 // LatencyBucketBound of the bucket d lands in
	}{
		{"sub-microsecond (bucket 0)", 500 * time.Nanosecond, LatencyBucketBound(0)},
		{"one microsecond", time.Microsecond, LatencyBucketBound(1)},
		{"mid-range", 100 * time.Microsecond, LatencyBucketBound(7)},
		{"overflow bucket", time.Hour, LatencyBucketBound(LatencyBuckets - 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var h latencyHist
			for i := 0; i < 7; i++ {
				h.observe(tt.d)
			}
			s := h.snapshot()
			if s.Count != 7 {
				t.Fatalf("count = %d, want 7", s.Count)
			}
			for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
				if got := s.PercentileUS(q); got != tt.want {
					t.Errorf("p%v = %d, want %d", q*100, got, tt.want)
				}
			}
		})
	}
}

// TestLatencyNegativeDuration pins that a clock anomaly (negative
// elapsed time) counts as zero instead of wrapping the unsigned sum.
func TestLatencyNegativeDuration(t *testing.T) {
	var h latencyHist
	h.observe(-time.Second)
	s := h.snapshot()
	if s.Count != 1 || s.SumUS != 0 || s.Buckets[0] != 1 {
		t.Errorf("negative observation: %+v", s)
	}
}

// TestLatencyConcurrentRecordAndSnapshot hammers observe from many
// goroutines while a reader snapshots continuously — the histogram is
// lock-free, so this is the -race proof that recording never tears.
// Snapshots are not required to be atomic across buckets, but the final
// quiesced snapshot must account for every observation exactly once.
func TestLatencyConcurrentRecordAndSnapshot(t *testing.T) {
	var h latencyHist
	const writers = 4
	const perWriter = 2000

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				s := h.snapshot()
				var inBuckets uint64
				for _, c := range s.Buckets {
					inBuckets += c
				}
				// count and buckets race individually, but bucketed
				// observations can never exceed writers*perWriter.
				if inBuckets > writers*perWriter {
					t.Errorf("snapshot overcounts: %d buckets for max %d observations",
						inBuckets, writers*perWriter)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	s := h.snapshot()
	if s.Count != writers*perWriter {
		t.Errorf("count = %d, want %d", s.Count, writers*perWriter)
	}
	var inBuckets uint64
	for _, c := range s.Buckets {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Errorf("buckets sum to %d, count is %d", inBuckets, s.Count)
	}
}

// TestWarmParseZeroAllocsWithTracing is the registry-level allocation
// gate for the tracing integration: a warm parse must stay at 0
// allocs/op with the trace plumbing compiled in, both when tracing is
// off entirely (nil trace) and when a tracer is enabled but the parse
// is unsampled (pooled trace measuring for slow detection).
func TestWarmParseZeroAllocsWithTracing(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool lossy; allocation counts are meaningless under -race")
	}
	r := New()
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	input := mustTokens(t, e, "true or false and true")
	// Warm the table and every pool.
	for i := 0; i < 16; i++ {
		if res, err := e.Parse(input, false); err != nil || !res.Accepted {
			t.Fatalf("warm-up parse: %v %v", err, res.Accepted)
		}
	}

	if got := testing.AllocsPerRun(200, func() {
		res, err := e.Parse(input, false)
		if err != nil || !res.Accepted {
			t.Fatal("parse failed mid-measurement")
		}
	}); got != 0 {
		t.Errorf("warm parse with tracing disabled: %v allocs/op, want 0", got)
	}

	// Enabled-but-unsampled: a slow threshold far above any real parse
	// forces StartParse to hand out a pooled trace on every parse (it
	// must measure to detect outliers) without ever retaining a span.
	tracer := obs.NewTracer(obs.TracerConfig{SlowThreshold: time.Hour})
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		tr := tracer.StartParse("bool", "glr", "")
		if _, err := e.ParseTraced(ctx, input, false, tr); err != nil {
			t.Fatal(err)
		}
		tr.Finish(true, nil)
	}
	if got := testing.AllocsPerRun(200, func() {
		tr := tracer.StartParse("bool", "glr", "")
		res, err := e.ParseTraced(ctx, input, false, tr)
		tr.Finish(res.Accepted, err)
		if err != nil || !res.Accepted {
			t.Fatal("traced parse failed mid-measurement")
		}
	}); got != 0 {
		t.Errorf("warm parse with enabled-but-unsampled tracer: %v allocs/op, want 0", got)
	}
}

package registry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the number of histogram buckets: bucket i counts
// requests whose latency in microseconds has bit-length i, i.e. lies in
// [2^(i-1), 2^i) µs (bucket 0 is <1µs; the last bucket is the
// overflow). 26 buckets resolve latencies up to 2^25 µs ≈ 33.5s —
// far beyond any parse the admission limits let through; everything
// slower collapses into the overflow bucket.
const LatencyBuckets = 26

// latencyHist is a fixed-bucket, lock-free latency histogram: observing
// a request is two atomic increments and one atomic add, so it sits on
// the parse path without serializing concurrent requests.
type latencyHist struct {
	buckets [LatencyBuckets]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
}

func latencyBucketOf(us uint64) int {
	b := bits.Len64(us)
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	return b
}

// LatencyBucketBound returns the inclusive upper bound, in microseconds,
// of histogram bucket i (the last bucket has no bound and reports its
// lower one).
func LatencyBucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return (uint64(1) << i) - 1
}

func (h *latencyHist) observe(d time.Duration) {
	us := uint64(0)
	if d > 0 {
		us = uint64(d.Microseconds())
	}
	h.count.Add(1)
	h.sumUS.Add(us)
	h.buckets[latencyBucketOf(us)].Add(1)
}

// LatencySnapshot is a point-in-time copy of a latency histogram. The
// zero value is a valid empty snapshot, and snapshots merge (Add), so
// the serve layer can aggregate per-engine histograms across entries.
type LatencySnapshot struct {
	// Buckets[i] counts requests in bucket i; see LatencyBucketBound.
	Buckets [LatencyBuckets]uint64
	// Count and SumUS aggregate all observations.
	Count uint64
	SumUS uint64
}

func (h *latencyHist) snapshot() LatencySnapshot {
	var s LatencySnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumUS = h.sumUS.Load()
	return s
}

// Add merges another snapshot into s.
func (s *LatencySnapshot) Add(o LatencySnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumUS += o.SumUS
}

// MeanUS is the mean request latency in microseconds (0 when empty).
func (s LatencySnapshot) MeanUS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumUS) / float64(s.Count)
}

// PercentileUS returns the q-th percentile (0 < q <= 1) as the upper
// bound of the bucket holding it — an upper estimate with power-of-two
// resolution, which is what histogram percentiles can honestly claim.
func (s LatencySnapshot) PercentileUS(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return LatencyBucketBound(i)
		}
	}
	return LatencyBucketBound(LatencyBuckets - 1)
}

package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipg/internal/engine"
	"ipg/internal/obs"
)

// SessionLimits bound the registry's document-session population. Zero
// values mean unlimited (and, for IdleTimeout, never evict).
type SessionLimits struct {
	// MaxSessions caps concurrently open sessions across all grammars.
	MaxSessions int
	// MaxDocTokens caps a session document's token count, at open and
	// after every splice.
	MaxDocTokens int
	// IdleTimeout is how long a session may go untouched before an
	// EvictIdleSessions pass reclaims it.
	IdleTimeout time.Duration
}

// ErrSessionLimit reports session-admission rejection (serve: 429).
var ErrSessionLimit = errors.New("registry: too many open sessions")

// ErrDocTooLarge reports a document over the per-session token budget
// (serve: 413).
var ErrDocTooLarge = errors.New("registry: session document exceeds token limit")

// ErrNoSession reports an unknown, closed or evicted session id
// (serve: 404).
var ErrNoSession = errors.New("registry: no such session")

// Session is one open document bound to one registry entry: the
// editor-style open/splice/reparse lifecycle, retained server-side so
// clients ship edits instead of whole documents. All methods are safe
// for concurrent use; parse-shaped operations (Reparse, Tree) pass
// through the owning entry's admission gate and rule-update lock, so
// sessions obey the same rate/concurrency limits as stateless parses.
type Session struct {
	id        string
	entry     *Entry
	reg       *Registry
	created   time.Time
	maxTokens int

	lastUsed atomic.Int64 // unix nanoseconds

	mu      sync.Mutex
	es      engine.Session
	splices uint64
	closed  bool
}

// SessionStat is the wire-shaped snapshot of one session; zero-valued
// reuse counters are omitted so fallback (full-reparse) sessions
// serialize compactly.
type SessionStat struct {
	ID           string `json:"id"`
	Grammar      string `json:"grammar"`
	Engine       string `json:"engine"`
	Incremental  bool   `json:"incremental,omitempty"`
	Tokens       int    `json:"tokens"`
	Sets         int    `json:"sets,omitempty"`
	Items        int    `json:"items,omitempty"`
	Splices      uint64 `json:"splices,omitempty"`
	Reparses     uint64 `json:"reparses,omitempty"`
	FullReparses uint64 `json:"full_reparses,omitempty"`
	SetsReused   uint64 `json:"sets_reused,omitempty"`
	SetsRebuilt  uint64 `json:"sets_rebuilt,omitempty"`
	LastReused   int    `json:"last_reused,omitempty"`
	LastRebuilt  int    `json:"last_rebuilt,omitempty"`
	ForestNodes  int    `json:"forest_nodes,omitempty"`
	IdleMs       int64  `json:"idle_ms"`
}

// SessionTotals aggregates session activity for metrics exposition.
// Counters are monotone: closed sessions' tallies roll into the totals
// before the session is dropped.
type SessionTotals struct {
	Open         int
	Opened       uint64
	Evicted      uint64
	Closed       uint64
	Splices      uint64
	Reparses     uint64
	FullReparses uint64
	SetsReused   uint64
	SetsRebuilt  uint64
}

// SetSessionLimits installs the session admission limits (replacing the
// previous set wholesale). Safe to call while serving; already-open
// sessions are not retroactively evicted by a lower MaxSessions.
func (r *Registry) SetSessionLimits(l SessionLimits) {
	r.sessionMu.Lock()
	defer r.sessionMu.Unlock()
	r.sessionLimits = l
}

// SessionLimits returns the current session admission limits.
func (r *Registry) SessionLimits() SessionLimits {
	r.sessionMu.Lock()
	defer r.sessionMu.Unlock()
	return r.sessionLimits
}

// OpenSession opens a document session for input on e (an entry of this
// registry). Input is resolved like ParseInput — scanned source text
// for SDF entries, whitespace-separated terminal names otherwise. The
// open passes through the entry's admission gate (tokenizing may hit
// the scanner) and the registry's MaxSessions/MaxDocTokens caps. The
// document is not parsed yet; the first Reparse or Tree call is.
func (r *Registry) OpenSession(e *Entry, input string) (*Session, error) {
	if err := e.admit(); err != nil {
		return nil, err
	}
	defer e.release()

	r.sessionMu.Lock()
	limits := r.sessionLimits
	if max := limits.MaxSessions; max > 0 && len(r.sessions) >= max {
		r.sessionMu.Unlock()
		return nil, fmt.Errorf("%w (limit %d)", ErrSessionLimit, max)
	}
	r.sessionMu.Unlock()

	toks, err := e.InputTokens(input)
	if err != nil {
		return nil, err
	}
	if max := limits.MaxDocTokens; max > 0 && len(toks)-1 > max {
		return nil, fmt.Errorf("%w (%d tokens, limit %d)", ErrDocTooLarge, len(toks)-1, max)
	}
	es, err := engine.OpenSession(e.eng, toks)
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:        fmt.Sprintf("%s-%d", e.name, r.sessionSeq.Add(1)),
		entry:     e,
		reg:       r,
		created:   time.Now(),
		maxTokens: limits.MaxDocTokens,
		es:        es,
	}
	s.touch()

	r.sessionMu.Lock()
	// Re-check under the lock: concurrent opens may have raced past the
	// earlier unlocked-window check.
	if max := limits.MaxSessions; max > 0 && len(r.sessions) >= max {
		r.sessionMu.Unlock()
		es.Close()
		return nil, fmt.Errorf("%w (limit %d)", ErrSessionLimit, max)
	}
	if r.sessions == nil {
		r.sessions = map[string]*Session{}
	}
	r.sessions[s.id] = s
	r.sessionMu.Unlock()
	r.sessionsOpened.Add(1)
	return s, nil
}

// Session returns the open session registered under id.
func (r *Registry) Session(id string) (*Session, bool) {
	r.sessionMu.Lock()
	defer r.sessionMu.Unlock()
	s, ok := r.sessions[id]
	return s, ok
}

// CloseSession closes and forgets the session registered under id,
// reporting whether it existed.
func (r *Registry) CloseSession(id string) bool {
	r.sessionMu.Lock()
	s, ok := r.sessions[id]
	delete(r.sessions, id)
	r.sessionMu.Unlock()
	if !ok {
		return false
	}
	s.close()
	r.sessionsClosed.Add(1)
	return true
}

// EvictIdleSessions reclaims sessions untouched for longer than the
// configured IdleTimeout, returning how many were evicted. A zero
// IdleTimeout disables eviction. The serve janitor calls this
// periodically; tests call it directly with a synthetic now.
func (r *Registry) EvictIdleSessions(now time.Time) int {
	r.sessionMu.Lock()
	idle := r.sessionLimits.IdleTimeout
	if idle <= 0 {
		r.sessionMu.Unlock()
		return 0
	}
	var victims []*Session
	for id, s := range r.sessions {
		if now.Sub(time.Unix(0, s.lastUsed.Load())) > idle {
			delete(r.sessions, id)
			victims = append(victims, s)
		}
	}
	r.sessionMu.Unlock()
	for _, s := range victims {
		s.close()
		r.sessionsEvicted.Add(1)
	}
	return len(victims)
}

// SessionCount returns the number of open sessions.
func (r *Registry) SessionCount() int {
	r.sessionMu.Lock()
	defer r.sessionMu.Unlock()
	return len(r.sessions)
}

// SessionStats snapshots every open session, sorted by id.
func (r *Registry) SessionStats() []SessionStat {
	r.sessionMu.Lock()
	open := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		open = append(open, s)
	}
	r.sessionMu.Unlock()
	out := make([]SessionStat, 0, len(open))
	for _, s := range open {
		out = append(out, s.Stat())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SessionTotals aggregates live and closed session activity for the
// /metrics endpoint.
func (r *Registry) SessionTotals() SessionTotals {
	t := SessionTotals{
		Opened:       r.sessionsOpened.Load(),
		Evicted:      r.sessionsEvicted.Load(),
		Closed:       r.sessionsClosed.Load(),
		Splices:      r.closedSplices.Load(),
		Reparses:     r.closedReparses.Load(),
		FullReparses: r.closedFullReparses.Load(),
		SetsReused:   r.closedSetsReused.Load(),
		SetsRebuilt:  r.closedSetsRebuilt.Load(),
	}
	r.sessionMu.Lock()
	open := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		open = append(open, s)
	}
	r.sessionMu.Unlock()
	t.Open = len(open)
	for _, s := range open {
		s.mu.Lock()
		if !s.closed {
			st := s.es.Stats()
			t.Splices += s.splices
			t.Reparses += st.Reparses
			t.FullReparses += st.FullReparses
			t.SetsReused += st.SetsReused
			t.SetsRebuilt += st.SetsRebuilt
		}
		s.mu.Unlock()
	}
	return t
}

// CloseAllSessions closes every open session, rolling their counters
// into the closed totals — the drain path's final step, so a graceful
// shutdown releases every retained chart and forest before exit. It
// returns how many sessions were closed.
func (r *Registry) CloseAllSessions() int {
	r.sessionMu.Lock()
	victims := make([]*Session, 0, len(r.sessions))
	for id, s := range r.sessions {
		delete(r.sessions, id)
		victims = append(victims, s)
	}
	r.sessionMu.Unlock()
	for _, s := range victims {
		s.close()
		r.sessionsClosed.Add(1)
	}
	return len(victims)
}

// closeSessionsOf closes every session bound to entry e — called when
// the entry is removed or replaced, since retained charts refer to the
// old engine.
func (r *Registry) closeSessionsOf(e *Entry) {
	if e == nil {
		return
	}
	r.sessionMu.Lock()
	var victims []*Session
	for id, s := range r.sessions {
		if s.entry == e {
			delete(r.sessions, id)
			victims = append(victims, s)
		}
	}
	r.sessionMu.Unlock()
	for _, s := range victims {
		s.close()
		r.sessionsClosed.Add(1)
	}
}

// close releases the session's retained state, rolling its counters
// into the registry's closed totals so metrics stay monotone.
func (s *Session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	st := s.es.Stats()
	s.reg.closedSplices.Add(s.splices)
	s.reg.closedReparses.Add(st.Reparses)
	s.reg.closedFullReparses.Add(st.FullReparses)
	s.reg.closedSetsReused.Add(st.SetsReused)
	s.reg.closedSetsRebuilt.Add(st.SetsRebuilt)
	s.es.Close()
	s.closed = true
}

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// ID returns the session's registry-wide identifier.
func (s *Session) ID() string { return s.id }

// Grammar returns the name of the entry the session is bound to.
func (s *Session) Grammar() string { return s.entry.name }

// Entry returns the owning registry entry (for Describe and stats).
func (s *Session) Entry() *Entry { return s.entry }

// EngineName reports the concrete backend pinned at open time ("" once
// closed).
func (s *Session) EngineName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ""
	}
	return s.es.Engine().String()
}

// Splice replaces tokens[at : at+remove] with the tokenization of
// insert (resolved like the open input: scanned for SDF entries,
// terminal names otherwise). The parse is brought up to date by the
// next Reparse or Tree. Out-of-range edits return engine.ErrSplice
// with the document unchanged.
func (s *Session) Splice(at, remove int, insert string, tr *obs.ParseTrace) error {
	tr.BeginStage(obs.StageSplice)
	defer tr.EndStage(obs.StageSplice)
	toks, err := s.entry.InputTokens(insert)
	if err != nil {
		return err
	}
	ins := toks[:len(toks)-1] // drop the EOF terminator
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrNoSession
	}
	if max := s.maxTokens; max > 0 {
		if next := s.es.Len() - remove + len(ins); remove <= s.es.Len() && next > max {
			return fmt.Errorf("%w (%d tokens, limit %d)", ErrDocTooLarge, next, max)
		}
	}
	if err := s.es.Splice(at, remove, ins); err != nil {
		return err
	}
	s.splices++
	s.touch()
	return nil
}

// Reparse brings the session's parse up to date and returns the
// recognition result. It passes the entry's admission gate and latency
// histogram like any parse request; the incremental drive is recorded
// under the trace's reuse stage.
func (s *Session) Reparse(tr *obs.ParseTrace) (Result, error) {
	return s.ReparseCtx(context.Background(), tr)
}

// ReparseCtx is Reparse with the request context threaded through:
// deadline expiry, client disconnect and drain-timeout shutdown abort
// the incremental drive at its checkpoints, and engine panics are
// quarantined exactly like stateless parses.
func (s *Session) ReparseCtx(ctx context.Context, tr *obs.ParseTrace) (Result, error) {
	tr.BeginStage(obs.StageAdmit)
	err := s.entry.admit()
	tr.EndStage(obs.StageAdmit)
	if err != nil {
		return Result{}, err
	}
	defer s.entry.release()
	defer s.entry.observeLatency(time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Result{}, ErrNoSession
	}
	s.entry.updateMu.RLock()
	defer s.entry.updateMu.RUnlock()
	fl, stop := s.entry.armCancel(ctx)
	tr.BeginStage(obs.StageReuse)
	res, err := engine.ReparseGuarded(s.es, fl)
	tr.EndStage(obs.StageReuse)
	disarmCancel(fl, stop)
	s.entry.noteOutcome(err, tr)
	if err != nil {
		return Result{}, err
	}
	s.touch()
	out := Result{Result: res}
	if !res.Accepted {
		out.TreesKnown = true // rejection is definite: zero derivations
	}
	return out, nil
}

// Tree reparses if needed and builds the parse forest, applying the
// entry's forest-node limit, disambiguation filters and derivation
// counting exactly like a stateless tree parse. A session whose
// retained forest outgrows the node limit is self-healed: the forest
// is dropped (to regrow compactly on the next call) and the request
// fails with ErrForestLimit.
func (s *Session) Tree(tr *obs.ParseTrace) (Result, error) {
	return s.TreeCtx(context.Background(), tr)
}

// TreeCtx is Tree with the request context threaded through; see
// ReparseCtx.
func (s *Session) TreeCtx(ctx context.Context, tr *obs.ParseTrace) (Result, error) {
	tr.BeginStage(obs.StageAdmit)
	err := s.entry.admit()
	tr.EndStage(obs.StageAdmit)
	if err != nil {
		return Result{}, err
	}
	defer s.entry.release()
	defer s.entry.observeLatency(time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Result{}, ErrNoSession
	}
	s.entry.updateMu.RLock()
	defer s.entry.updateMu.RUnlock()
	fl, stop := s.entry.armCancel(ctx)
	tr.BeginStage(obs.StageReuse)
	res, err := engine.TreeGuarded(s.es, fl)
	tr.EndStage(obs.StageReuse)
	disarmCancel(fl, stop)
	s.entry.noteOutcome(err, tr)
	if err != nil {
		return Result{}, err
	}
	s.touch()
	out, err := s.entry.finishResult(res, tr)
	if errors.Is(err, ErrForestLimit) {
		if fr, ok := s.es.(engine.ForestResetter); ok {
			fr.ResetForest()
		}
	}
	return out, err
}

// Stat snapshots the session for the stat endpoint.
func (s *Session) Stat() SessionStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SessionStat{
		ID:      s.id,
		Grammar: s.entry.name,
		IdleMs:  time.Since(time.Unix(0, s.lastUsed.Load())).Milliseconds(),
	}
	if s.closed {
		return out
	}
	st := s.es.Stats()
	out.Engine = s.es.Engine().String()
	out.Incremental = s.es.Incremental()
	out.Tokens = st.Tokens
	out.Sets = st.Sets
	out.Items = st.Items
	out.Splices = s.splices
	out.Reparses = st.Reparses
	out.FullReparses = st.FullReparses
	out.SetsReused = st.SetsReused
	out.SetsRebuilt = st.SetsRebuilt
	out.LastReused = st.LastReused
	out.LastRebuilt = st.LastRebuilt
	out.ForestNodes = st.ForestNodes
	return out
}

package registry

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ipg/internal/cancel"
	"ipg/internal/engine"
	"ipg/internal/faultinject"
)

// llFriendlySrc is accepted by all four backends (LL(1), LALR(1),
// lazy GLR and Earley), so cancellation can be exercised on each.
const llFriendlySrc = `
START ::= S
S ::= "a" S | "b"
`

// slowInput is a long sentence of that grammar; with a per-token delay
// fault armed, parsing it takes hundreds of milliseconds unless a
// cancellation checkpoint aborts the drive first.
func slowInput(tokens int) string {
	var b strings.Builder
	for i := 0; i < tokens-1; i++ {
		b.WriteString("a ")
	}
	b.WriteString("b")
	return b.String()
}

// TestParseAbortsOnDeadlineAllEngines is the acceptance gate for
// cancellable parses: a fault-injected slow parse must abort mid-drive
// on every backend when its context deadline expires, surfacing the
// structured cancellation error with reason deadline.
func TestParseAbortsOnDeadlineAllEngines(t *testing.T) {
	for _, kind := range []engine.Kind{
		engine.KindGLR, engine.KindLALR, engine.KindLL, engine.KindEarley,
	} {
		t.Run(kind.String(), func(t *testing.T) {
			defer faultinject.Reset()
			r := New()
			e, err := r.Register("slow", Spec{Source: llFriendlySrc, Engine: kind})
			if err != nil {
				t.Fatal(err)
			}
			// 1ms per drive-loop token: the 400-token input would take
			// ~400ms to finish, far past the 15ms deadline.
			faultinject.Set(faultinject.SiteDriveToken,
				faultinject.Fault{Kind: faultinject.Delay, Delay: time.Millisecond})
			ctx, cancelCtx := context.WithTimeout(context.Background(), 15*time.Millisecond)
			defer cancelCtx()
			start := time.Now()
			_, err = e.ParseInputTraced(ctx, slowInput(400), false, nil)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatalf("%s: slow parse completed despite deadline", kind)
			}
			if !errors.Is(err, cancel.ErrCanceled) {
				t.Fatalf("%s: error %v is not the canceled class", kind, err)
			}
			var cerr *cancel.Error
			if !errors.As(err, &cerr) {
				t.Fatalf("%s: error %v carries no *cancel.Error", kind, err)
			}
			if cerr.Reason != cancel.Deadline {
				t.Errorf("%s: reason %v, want deadline", kind, cerr.Reason)
			}
			// The abort must happen mid-drive, not after the full input.
			if elapsed > 200*time.Millisecond {
				t.Errorf("%s: abort took %v; checkpoints not reached", kind, elapsed)
			}
			if got := e.CanceledTotal()[cancel.Deadline]; got != 1 {
				t.Errorf("%s: canceled[deadline] = %d, want 1", kind, got)
			}
		})
	}
}

// TestParseAbortsOnClientGoneAllEngines covers the disconnect half of
// the acceptance gate: a canceled request context aborts the drive with
// reason client_gone on every backend.
func TestParseAbortsOnClientGoneAllEngines(t *testing.T) {
	for _, kind := range []engine.Kind{
		engine.KindGLR, engine.KindLALR, engine.KindLL, engine.KindEarley,
	} {
		t.Run(kind.String(), func(t *testing.T) {
			defer faultinject.Reset()
			r := New()
			e, err := r.Register("slow", Spec{Source: llFriendlySrc, Engine: kind})
			if err != nil {
				t.Fatal(err)
			}
			faultinject.Set(faultinject.SiteDriveToken,
				faultinject.Fault{Kind: faultinject.Delay, Delay: time.Millisecond})
			ctx, cancelCtx := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancelCtx()
			}()
			_, err = e.ParseInputTraced(ctx, slowInput(400), false, nil)
			var cerr *cancel.Error
			if !errors.As(err, &cerr) {
				t.Fatalf("%s: error %v carries no *cancel.Error", kind, err)
			}
			if cerr.Reason != cancel.ClientGone {
				t.Errorf("%s: reason %v, want client_gone", kind, cerr.Reason)
			}
		})
	}
}

// TestInjectedCancelAbortsMidDrive pins the deterministic cancel fault:
// firing the flag at token 5 aborts with a position past the gate but
// far before the end of the input — direct evidence the drive loop saw
// the flag mid-parse.
func TestInjectedCancelAbortsMidDrive(t *testing.T) {
	defer faultinject.Reset()
	r := New()
	e, err := r.Register("slow", Spec{Source: llFriendlySrc, Engine: engine.KindLALR})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(faultinject.SiteDriveToken,
		faultinject.Fault{Kind: faultinject.Cancel, At: 5})
	// The injected fault needs an armed flag to fire into, so parse
	// with a cancelable context.
	ctx, cancelCtx := context.WithCancel(context.Background())
	defer cancelCtx()
	_, err = e.ParseInputTraced(ctx, slowInput(400), false, nil)
	var cerr *cancel.Error
	if !errors.As(err, &cerr) {
		t.Fatalf("error %v carries no *cancel.Error", err)
	}
	if cerr.Reason != cancel.Injected {
		t.Errorf("reason %v, want injected", cerr.Reason)
	}
	if cerr.Pos < 5 || cerr.Pos >= 399 {
		t.Errorf("abort at pos %d, want mid-drive (>=5, <399)", cerr.Pos)
	}
}

// TestBreakerLifecycle walks the quarantine circuit through every
// transition: consecutive panics trip it open, open rejects with a
// Retry-After, the cooldown admits one half-open probe, a panicking
// probe reopens, and a healthy probe closes it again.
func TestBreakerLifecycle(t *testing.T) {
	defer faultinject.Reset()
	r := New()
	r.SetBreakerConfig(BreakerConfig{Threshold: 2, Cooldown: 40 * time.Millisecond})
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	parse := func() error {
		_, err := e.ParseInput("true or false", false)
		return err
	}

	// Two consecutive panics reach the threshold and trip the breaker.
	faultinject.Set(faultinject.SiteDispatch,
		faultinject.Fault{Kind: faultinject.Panic, Times: 2})
	for i := 0; i < 2; i++ {
		err := parse()
		var p *engine.PanicError
		if !errors.As(err, &p) {
			t.Fatalf("panic %d surfaced as %v, want *engine.PanicError", i, err)
		}
	}
	if st := e.Stats().Breaker; st.State != "open" || st.Trips != 1 {
		t.Fatalf("after 2 panics: state=%s trips=%d, want open/1", st.State, st.Trips)
	}

	// Open rejects without running the engine, with a retry hint.
	err = parse()
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("open breaker admitted a parse: %v", err)
	}
	var q *QuarantineError
	if !errors.As(err, &q) || q.RetryAfter <= 0 {
		t.Fatalf("quarantine error %v carries no positive RetryAfter", err)
	}

	// After the cooldown, the single half-open probe panics → reopen.
	time.Sleep(60 * time.Millisecond)
	faultinject.Set(faultinject.SiteDispatch,
		faultinject.Fault{Kind: faultinject.Panic, Times: 1})
	var p *engine.PanicError
	if err := parse(); !errors.As(err, &p) {
		t.Fatalf("half-open probe surfaced as %v, want panic error", err)
	}
	if st := e.Stats().Breaker; st.State != "open" || st.Trips != 2 {
		t.Fatalf("after failed probe: state=%s trips=%d, want open/2", st.State, st.Trips)
	}
	if err := parse(); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("reopened breaker admitted a parse: %v", err)
	}

	// A healthy probe closes the circuit; normal service resumes.
	time.Sleep(60 * time.Millisecond)
	if err := parse(); err != nil {
		t.Fatalf("healthy probe failed: %v", err)
	}
	if st := e.Stats().Breaker; st.State != "closed" {
		t.Fatalf("after healthy probe: state=%s, want closed", st.State)
	}
	if err := parse(); err != nil {
		t.Fatalf("parse after close failed: %v", err)
	}
	if e.Stats().Panics != 3 {
		t.Errorf("panics counter = %d, want 3", e.Stats().Panics)
	}
}

// TestDrainingRejects pins the drain flag: while set, every admission
// is refused with ErrDraining and counted; clearing it restores
// service.
func TestDrainingRejects(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	r.SetDraining(true)
	if _, err := e.ParseInput("true", false); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining registry admitted a parse: %v", err)
	}
	if got := r.Resilience().DrainRejected; got != 1 {
		t.Errorf("drain_rejected = %d, want 1", got)
	}
	r.SetDraining(false)
	if _, err := e.ParseInput("true", false); err != nil {
		t.Fatalf("parse after drain cleared: %v", err)
	}
}

// TestMemoryBudgetRejects pins the global memory budget: when the
// refreshed estimate exceeds the budget, new parses are shed with
// ErrMemoryBudget until the budget is lifted.
func TestMemoryBudgetRejects(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the table so the estimate is nonzero, then set an impossible
	// budget.
	if _, err := e.ParseInput("true or false", false); err != nil {
		t.Fatal(err)
	}
	r.SetMemoryBudget(1)
	if usage := r.RefreshMemoryUsage(); usage <= 1 {
		t.Fatalf("usage estimate %d not above the 1-byte budget", usage)
	}
	if _, err := e.ParseInput("true", false); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("over-budget registry admitted a parse: %v", err)
	}
	if got := r.Resilience().MemRejected; got != 1 {
		t.Errorf("mem_rejected = %d, want 1", got)
	}
	r.SetMemoryBudget(0)
	if _, err := e.ParseInput("true", false); err != nil {
		t.Fatalf("parse after budget lifted: %v", err)
	}
}

// TestShedderEngagesAndRecovers drives the p99 shedder through a
// healthy baseline window, an inflated window that engages shedding,
// and a recovered window that disengages it.
func TestShedderEngagesAndRecovers(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ShedConfig{Factor: 3, MinSamples: 50, DropPer: 1}

	// Prime the diff base, then a healthy window (~1ms p99).
	r.ShedTick(cfg)
	for i := 0; i < 100; i++ {
		e.lat.observe(time.Millisecond)
	}
	if r.ShedTick(cfg) {
		t.Fatal("healthy window engaged shedding")
	}

	// Inflated window: p99 is 64× the baseline.
	for i := 0; i < 100; i++ {
		e.lat.observe(64 * time.Millisecond)
	}
	if !r.ShedTick(cfg) {
		t.Fatal("64x p99 inflation did not engage shedding")
	}
	// DropPer 1 sheds every request.
	if _, err := e.ParseInput("true", false); !errors.Is(err, ErrShed) {
		t.Fatalf("shedding registry admitted a parse: %v", err)
	}
	if got := r.Resilience().Shed; got == 0 {
		t.Error("shed counter did not move")
	}

	// Recovered window: back at the baseline → shedding disengages.
	for i := 0; i < 100; i++ {
		e.lat.observe(time.Millisecond)
	}
	if r.ShedTick(cfg) {
		t.Fatal("recovered window kept shedding engaged")
	}
	if _, err := e.ParseInput("true", false); err != nil {
		t.Fatalf("parse after shed disengaged: %v", err)
	}
}

// TestSnapshotSaveRetries pins the bounded-backoff retry: two injected
// write errors are absorbed by three retries, and the retry counter
// records them; with the fault outlasting the budget, the save fails.
func TestSnapshotSaveRetries(t *testing.T) {
	defer faultinject.Reset()
	r := New()
	r.SetSnapshotStore(newStoreT(t))
	r.SetSnapshotRetry(3, 0)
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ParseInput("true or false", false); err != nil {
		t.Fatal(err)
	}

	faultinject.Set(faultinject.SiteSnapshotSave,
		faultinject.Fault{Kind: faultinject.Error, Times: 2})
	if _, err := r.SnapshotEntry("bool"); err != nil {
		t.Fatalf("save with 2 injected errors and 3 retries failed: %v", err)
	}
	if got := r.SnapshotRetries(); got != 2 {
		t.Errorf("snapshot retries = %d, want 2", got)
	}

	// A fault outlasting the retry budget fails the save.
	faultinject.Set(faultinject.SiteSnapshotSave,
		faultinject.Fault{Kind: faultinject.Error, Times: 10})
	if _, err := r.SnapshotEntry("bool"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("save with persistent fault returned %v, want injected error", err)
	}
}

// TestResilienceAdmitZeroAllocs extends the warm-path allocation pin
// over the new admission gates: with a breaker configured, a memory
// budget set (but not exceeded) and cancellation hooks compiled in, a
// warm parse must still allocate nothing.
func TestResilienceAdmitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool lossy; allocation counts are meaningless under -race")
	}
	r := New()
	r.SetBreakerConfig(BreakerConfig{Threshold: 3, Cooldown: time.Second})
	r.SetMemoryBudget(1 << 30)
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	r.RefreshMemoryUsage()
	input := mustTokens(t, e, "true or false and true")
	for i := 0; i < 16; i++ {
		if res, err := e.Parse(input, false); err != nil || !res.Accepted {
			t.Fatalf("warm-up parse: %v %v", err, res.Accepted)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		res, err := e.Parse(input, false)
		if err != nil || !res.Accepted {
			t.Fatal("parse failed mid-measurement")
		}
	}); got != 0 {
		t.Errorf("warm parse with resilience gates armed: %v allocs/op, want 0", got)
	}
}

// TestDrainStress is the -race drain scenario: parsers and session
// editors hammer the registry while a drain begins, in-flight contexts
// are force-canceled, and every session is closed. Nothing may race,
// deadlock or leak a wedged parse.
func TestDrainStress(t *testing.T) {
	defer faultinject.Reset()
	r := New()
	e, err := r.Register("slow", Spec{Source: llFriendlySrc, Engine: engine.KindEarley})
	if err != nil {
		t.Fatal(err)
	}
	// A mild per-token delay keeps parses in flight long enough for the
	// drain to overlap them.
	faultinject.Set(faultinject.SiteDriveToken,
		faultinject.Fault{Kind: faultinject.Delay, Delay: 50 * time.Microsecond})

	baseCtx, cancelBase := context.WithCancel(context.Background())
	const workers = 8
	done := make(chan struct{})
	errs := make(chan error, workers*4)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; ; i++ {
				select {
				case <-baseCtx.Done():
					return
				default:
				}
				if w%2 == 0 {
					_, err := e.ParseInputTraced(baseCtx, slowInput(50), false, nil)
					if err != nil && !errors.Is(err, cancel.ErrCanceled) &&
						!errors.Is(err, ErrDraining) {
						errs <- err
						return
					}
				} else {
					sess, err := r.OpenSession(e, slowInput(20))
					if err != nil {
						if errors.Is(err, ErrDraining) || errors.Is(err, ErrSessionLimit) {
							continue
						}
						errs <- err
						return
					}
					_, err = sess.ReparseCtx(baseCtx, nil)
					if err != nil && !errors.Is(err, cancel.ErrCanceled) &&
						!errors.Is(err, ErrDraining) && !errors.Is(err, ErrNoSession) {
						errs <- err
						return
					}
					r.CloseSession(sess.ID())
				}
			}
		}(w)
	}

	// Let the workers get in flight, then drain: refuse new work,
	// force-cancel in-flight contexts, close all sessions.
	time.Sleep(20 * time.Millisecond)
	r.SetDraining(true)
	time.Sleep(5 * time.Millisecond)
	cancelBase()
	for w := 0; w < workers; w++ {
		select {
		case <-done:
		case err := <-errs:
			t.Fatalf("worker failed: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("drain stress wedged: workers did not exit")
		}
	}
	r.CloseAllSessions()
	if n := r.SessionCount(); n != 0 {
		t.Errorf("%d sessions survived CloseAllSessions", n)
	}
	select {
	case err := <-errs:
		t.Fatalf("worker failed: %v", err)
	default:
	}
}

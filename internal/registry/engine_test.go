package registry

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ipg/internal/engine"
	"ipg/internal/grammar"
	"ipg/internal/snapshot"
)

// calcDetSrc mirrors testdata/CalcDet.bnf: deterministic, LALR(1)-clean.
const calcDetSrc = `
START ::= E
E ::= E "+" T | E "-" T | T
T ::= T "*" F | T "/" F | F
F ::= "n" | "(" E ")"
`

func TestSameGrammarUnderEveryEngine(t *testing.T) {
	r := New()
	for _, kind := range []engine.Kind{engine.KindGLR, engine.KindLALR, engine.KindEarley, engine.KindAuto} {
		e, err := r.Register("calc-"+kind.String(), Spec{Source: calcDetSrc, Engine: kind})
		if err != nil {
			t.Fatalf("register with engine %v: %v", kind, err)
		}
		for input, want := range map[string]bool{
			"n + n * n":     true,
			"( n - n ) / n": true,
			"n + +":         false,
		} {
			res, err := e.ParseInput(input, true)
			if err != nil {
				t.Fatalf("engine %v: ParseInput(%q): %v", kind, input, err)
			}
			if res.Accepted != want {
				t.Errorf("engine %v: ParseInput(%q) accepted=%v, want %v", kind, input, res.Accepted, want)
			}
		}
		st := e.Stats()
		if kind != engine.KindAuto && st.Engine != kind {
			t.Errorf("Stats().Engine = %v, want %v", st.Engine, kind)
		}
		if st.EngineReason == "" {
			t.Errorf("engine %v: empty selection reason", kind)
		}
		if st.Counters.ParsesServed == 0 {
			t.Errorf("engine %v: ParsesServed = 0", kind)
		}
	}
}

func TestAutoSelectionPerGrammar(t *testing.T) {
	r := New()

	// Deterministic calculator: auto must pick the LALR(1) fast path.
	det, err := r.Register("calc", Spec{Source: calcDetSrc, Engine: engine.KindAuto})
	if err != nil {
		t.Fatal(err)
	}
	if det.EngineKind() != engine.KindLALR {
		t.Errorf("auto picked %v for the deterministic calculator, want lalr (%s)",
			det.EngineKind(), det.Stats().EngineReason)
	}
	if det.RequestedEngine() != engine.KindAuto {
		t.Errorf("RequestedEngine = %v, want auto", det.RequestedEngine())
	}

	// The ambiguous SDF calculator (priorities, not stratification):
	// auto must keep lazy GLR.
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "Calc.sdf"))
	if err != nil {
		t.Fatal(err)
	}
	amb, err := r.Register("calc-sdf", Spec{Source: string(src), Form: FormSDF, Engine: engine.KindAuto})
	if err != nil {
		t.Fatal(err)
	}
	if amb.EngineKind() != engine.KindGLR {
		t.Errorf("auto picked %v for the ambiguous SDF calculator, want glr (%s)",
			amb.EngineKind(), amb.Stats().EngineReason)
	}
	if reason := amb.Stats().EngineReason; !strings.Contains(reason, "conflict") {
		t.Errorf("selection reason %q does not mention conflicts", reason)
	}
	res, err := amb.ParseInput("1 + 2 * 3", true)
	if err != nil || !res.Accepted || res.Trees != 1 {
		t.Fatalf("auto/GLR SDF parse: err=%v accepted=%v trees=%d", err, res.Accepted, res.Trees)
	}
}

func TestEarleyServesFilteredSDFGrammar(t *testing.T) {
	// Calc.sdf carries priority/associativity filters, which need a
	// parse forest to apply. Before the chart overhaul Earley could only
	// recognize, so this registration was refused; now it builds packed
	// forests, the filters apply, and the disambiguated result must
	// match the tree-building LR engines'.
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "Calc.sdf"))
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	earleyEnt, err := r.Register("calc-earley", Spec{Source: string(src), Form: FormSDF, Engine: engine.KindEarley})
	if err != nil {
		t.Fatalf("register Calc.sdf under Earley: %v", err)
	}
	glrEnt, err := r.Register("calc-glr", Spec{Source: string(src), Form: FormSDF, Engine: engine.KindGLR})
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range []string{"1 + 2 * 3", "4 * 5 + 6 * 7", "2 ^ 3 ^ 2", "1 - 2 - 3"} {
		eRes, err := earleyEnt.ParseInput(input, true)
		if err != nil {
			t.Fatalf("earley ParseInput(%q): %v", input, err)
		}
		gRes, err := glrEnt.ParseInput(input, true)
		if err != nil {
			t.Fatalf("glr ParseInput(%q): %v", input, err)
		}
		if !eRes.Accepted || eRes.Trees != 1 {
			t.Errorf("earley %q: accepted=%v trees=%d, want one filtered derivation", input, eRes.Accepted, eRes.Trees)
		}
		_, eTree := earleyEnt.Describe(eRes, true)
		_, gTree := glrEnt.Describe(gRes, true)
		if eTree != gTree {
			t.Errorf("%q: filtered trees diverge\nearley: %s\nglr:    %s", input, eTree, gTree)
		}
	}
}

func TestIncrementalUpdateUnderNonIncrementalEngine(t *testing.T) {
	r := New()
	e, err := r.Register("calc", Spec{Source: calcDetSrc, Engine: engine.KindLALR})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := e.AddRulesText(`F ::= "id"`); err != nil || n != 1 {
		t.Fatalf("AddRulesText: n=%d err=%v", n, err)
	}
	res, err := e.ParseInput("id * n", false)
	if err != nil || !res.Accepted {
		t.Fatalf("parse with regenerated table: err=%v accepted=%v", err, res.Accepted)
	}
	if inv := e.Counters().StatesInvalidated; inv == 0 {
		t.Error("LALR regeneration not visible in StatesInvalidated")
	}
	if e.Version() != 2 {
		t.Errorf("version %d after one update, want 2", e.Version())
	}
}

func TestDefaultEngine(t *testing.T) {
	r := New()
	r.SetDefaultEngine(engine.KindAuto)
	e, err := r.Register("calc", Spec{Source: calcDetSrc})
	if err != nil {
		t.Fatal(err)
	}
	if e.EngineKind() != engine.KindLALR {
		t.Errorf("default auto engine picked %v, want lalr", e.EngineKind())
	}
	explicit, err := r.Register("calc2", Spec{Source: calcDetSrc, Engine: engine.KindGLR})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.EngineKind() != engine.KindGLR {
		t.Errorf("explicit glr overridden to %v", explicit.EngineKind())
	}
}

func TestRateLimitAdmission(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{
		Source: boolSrc,
		Limits: Limits{RatePerSec: 0.001, Burst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.ParseInput("true", false); err != nil {
			t.Fatalf("parse %d within burst: %v", i, err)
		}
	}
	_, err = e.ParseInput("true", false)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("3rd parse err = %v, want ErrRateLimited", err)
	}
	st := e.Stats()
	if st.AdmissionRejected == 0 {
		t.Error("rate-limit rejection not counted")
	}
	if st.Limits.RatePerSec == 0 || st.Limits.Burst != 2 {
		t.Errorf("limits not echoed in stats: %+v", st.Limits)
	}
}

func TestSnapshotDegradesGracefullyPerEngine(t *testing.T) {
	dir := t.TempDir()
	store, err := snapshot.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.SetSnapshotStore(store)
	if _, err := r.Register("glr", Spec{Source: calcDetSrc, Engine: engine.KindGLR}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("lalr", Spec{Source: calcDetSrc, Engine: engine.KindLALR}); err != nil {
		t.Fatal(err)
	}

	// Per-entry: the GLR entry snapshots, the LALR entry reports the
	// capability gap.
	if _, err := r.SnapshotEntry("glr"); err != nil {
		t.Fatalf("SnapshotEntry(glr): %v", err)
	}
	if _, err := r.SnapshotEntry("lalr"); !errors.Is(err, ErrNotSnapshottable) {
		t.Fatalf("SnapshotEntry(lalr) err = %v, want ErrNotSnapshottable", err)
	}

	// Service-wide: non-snapshottable entries are skipped, not errors.
	saved, err := r.SnapshotAll()
	if err != nil {
		t.Fatalf("SnapshotAll: %v", err)
	}
	if saved != 1 {
		t.Fatalf("SnapshotAll saved %d, want 1 (the GLR entry)", saved)
	}
	if st := r.SnapshotStats(); st.Errors != 0 {
		t.Errorf("capability gaps counted as snapshot errors: %d", st.Errors)
	}

	// A re-registration of the LALR entry must not try to restore.
	e, err := r.Register("lalr", Spec{Source: calcDetSrc, Engine: engine.KindLALR})
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Restored {
		t.Error("LALR entry claims to be restored from a snapshot")
	}
}

func TestSnapshotGCRemovesUnregistered(t *testing.T) {
	dir := t.TempDir()
	store, err := snapshot.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.SetSnapshotStore(store)
	for _, name := range []string{"keep", "drop"} {
		if _, err := r.Register(name, Spec{Source: boolSrc}); err != nil {
			t.Fatal(err)
		}
	}
	if saved, err := r.SnapshotAll(); err != nil || saved != 2 {
		t.Fatalf("SnapshotAll: saved=%d err=%v", saved, err)
	}
	if !r.Remove("drop") {
		t.Fatal("Remove(drop) = false")
	}
	removed, err := r.SnapshotGC()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "drop" {
		t.Fatalf("SnapshotGC removed %v, want [drop]", removed)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "keep" {
		t.Fatalf("store holds %v after GC, want [keep]", names)
	}
}

func TestSnapshotGCSparesUnregisteredOfPreviousRun(t *testing.T) {
	dir := t.TempDir()
	store, err := snapshot.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// First process run: register and snapshot a grammar.
	r1 := New()
	r1.SetSnapshotStore(store)
	if _, err := r1.Register("tenant", Spec{Source: boolSrc}); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.SnapshotEntry("tenant"); err != nil {
		t.Fatal(err)
	}

	// Second run: the grammar has not been re-registered yet. GC must
	// not mistake restart-absence for removal — the snapshot is the
	// warm restart the re-registration expects.
	r2 := New()
	r2.SetSnapshotStore(store)
	if removed, err := r2.SnapshotGC(); err != nil || len(removed) != 0 {
		t.Fatalf("SnapshotGC reclaimed %v (err %v) across a restart", removed, err)
	}
	e, err := r2.Register("tenant", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Stats().Restored {
		t.Fatal("warm restart lost: entry generated cold")
	}
}

// TestConcurrentEarleyParseAndModify is the -race stress test for the
// overhauled Earley backend: parses sharing one entry (pooled charts,
// version-stamped grammar recompiles) race rule updates. Every parse
// must see a consistent rule set — before-or-after semantics, no torn
// compiled view.
func TestConcurrentEarleyParseAndModify(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{Source: `
B ::= "true"
B ::= "false"
B ::= B "or" B
B ::= B "and" B
START ::= B
`, Engine: engine.KindEarley})
	if err != nil {
		t.Fatal(err)
	}
	base, err := e.Tokens("true or false and true")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddRulesText(`B ::= "not" B`); err != nil {
		t.Fatal(err)
	}
	ext, err := e.Tokens("not true or false")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeleteRulesText(`B ::= "not" B`); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	stop := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				res, err := e.Parse(base, j%2 == 0)
				if err != nil {
					errs <- err
					return
				}
				if !res.Accepted {
					errs <- errorString("base sentence rejected")
					return
				}
				// The extension toggles; either verdict is fine, but the
				// parse must not error.
				if _, err := e.Parse(ext, false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.AddRulesText(`B ::= "not" B`); err != nil {
				errs <- err
				return
			}
			if _, err := e.DeleteRulesText(`B ::= "not" B`); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestExplicitEndMarkerInput guards the EOF-termination convention: a
// client that already supplies the documented "$" end marker must not
// end up with a doubled marker (which the engines reject as mid-stream
// EOF).
func TestExplicitEndMarkerInput(t *testing.T) {
	r := New()
	for _, kind := range []engine.Kind{engine.KindGLR, engine.KindLALR, engine.KindEarley} {
		e, err := r.Register("calc-"+kind.String(), Spec{Source: calcDetSrc, Engine: kind})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.ParseInput("n + n $", false)
		if err != nil || !res.Accepted {
			t.Errorf("engine %v: ParseInput with explicit $: accepted=%v err=%v", kind, res.Accepted, err)
		}
		toks, err := e.Tokens("n + n $")
		if err != nil {
			t.Fatal(err)
		}
		if n := len(toks); n != 4 || toks[n-1] != grammar.EOF {
			t.Errorf("engine %v: Tokens with explicit $ = %v, want 4 symbols ending in EOF", kind, toks)
		}
	}
}

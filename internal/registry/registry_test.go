package registry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ipg/internal/core"
	"ipg/internal/glr"
	"ipg/internal/grammar"
)

const boolSrc = `
START ::= B
B ::= "true" | "false"
B ::= B "or" B | B "and" B
`

const calcSDF = `module Calc
begin
  lexical syntax
    sorts DIGIT, NAT
    layout SPACE
    functions
      [0-9]    -> DIGIT
      DIGIT+   -> NAT
      [\ \t\n] -> SPACE
  context-free syntax
    sorts EXP
    priorities
      EXP "*" EXP -> EXP > EXP "+" EXP -> EXP
    functions
      NAT         -> EXP
      EXP "+" EXP -> EXP {left-assoc}
      EXP "*" EXP -> EXP {left-assoc}
end Calc
`

func TestRegisterAndParseRules(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	if e.Form() != FormRules {
		t.Errorf("sniffed form %v, want rules", e.Form())
	}
	if e.Version() != 1 {
		t.Errorf("fresh version %d, want 1", e.Version())
	}
	res, err := e.ParseInput("true or false", true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.Trees != 1 {
		t.Errorf("accepted=%v trees=%d", res.Accepted, res.Trees)
	}
	// Ambiguity is reported through the tree count.
	res, err = e.ParseInput("true or true or true", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trees != 2 {
		t.Errorf("ambiguous sentence trees=%d, want 2", res.Trees)
	}
}

func TestRegisterAndParseSDF(t *testing.T) {
	r := New()
	e, err := r.Register("calc", Spec{Source: calcSDF})
	if err != nil {
		t.Fatal(err)
	}
	if e.Form() != FormSDF {
		t.Errorf("sniffed form %v, want sdf", e.Form())
	}
	res, err := e.ParseInput("1 + 2 * 3", true)
	if err != nil {
		t.Fatal(err)
	}
	// Priorities filter the forest down to a single derivation.
	if !res.Accepted || res.Trees != 1 {
		t.Errorf("accepted=%v trees=%d, want 1 tree", res.Accepted, res.Trees)
	}
	if _, err := e.Tokens("nosuch"); err == nil {
		t.Error("unknown token name should error")
	}
}

func TestRegistryCatalog(t *testing.T) {
	r := New()
	if _, err := r.Register("", Spec{Source: boolSrc}); err == nil {
		t.Error("empty name should be rejected")
	}
	if _, err := r.Register("bad", Spec{Source: "START ::"}); err == nil {
		t.Error("malformed source should be rejected")
	}
	if _, err := r.Register("bool", Spec{Source: boolSrc}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("calc", Spec{Source: calcSDF}); err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); strings.Join(got, ",") != "bool,calc" {
		t.Errorf("names: %v", got)
	}
	if r.Len() != 2 || len(r.Entries()) != 2 {
		t.Errorf("len %d entries %d", r.Len(), len(r.Entries()))
	}
	// Replacement continues the version lineage.
	e2, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version() != 2 {
		t.Errorf("replacement version %d, want 2", e2.Version())
	}
	if r.Registered() != 3 {
		t.Errorf("registered counter %d, want 3", r.Registered())
	}
	if !r.Remove("calc") || r.Remove("calc") {
		t.Error("remove should report presence exactly once")
	}
	if _, ok := r.Get("calc"); ok {
		t.Error("removed entry still visible")
	}
}

func TestIncrementalUpdateThroughEntry(t *testing.T) {
	r := New()
	e, _ := r.Register("bool", Spec{Source: boolSrc})
	if _, err := e.ParseInput("not true", true); err == nil {
		t.Fatal("'not' should be unknown before the update")
	}
	n, err := e.AddRulesText(`B ::= "not" B`)
	if err != nil || n != 1 {
		t.Fatalf("add: n=%d err=%v", n, err)
	}
	if e.Version() != 2 {
		t.Errorf("version after add %d, want 2", e.Version())
	}
	res, err := e.ParseInput("not true or false", true)
	if err != nil || !res.Accepted {
		t.Fatalf("extended sentence: %v %v", res.Accepted, err)
	}
	n, err = e.DeleteRulesText(`B ::= "not" B`)
	if err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	if res, _ := e.Parse(mustTokens(t, e, "true or false"), true); !res.Accepted {
		t.Error("base language broken after delete")
	}
	st := e.Stats()
	if st.Version != 3 || st.Counters.StatesInvalidated == 0 {
		t.Errorf("stats after updates: %+v", st)
	}
}

func TestSDFEntryScannerExtension(t *testing.T) {
	r := New()
	e, _ := r.Register("calc", Spec{Source: calcSDF})
	if _, err := e.ParseText("7 % 2", true); err == nil {
		t.Fatal("'%' should not scan before the update")
	}
	if _, err := e.AddRulesText(`EXP ::= EXP "%" EXP`); err != nil {
		t.Fatal(err)
	}
	res, err := e.ParseText("7 % 2", true)
	if err != nil || !res.Accepted {
		t.Fatalf("after simultaneous lexical+syntactic update: %v %v", res.Accepted, err)
	}
}

func mustTokens(t *testing.T, e *Entry, text string) []grammar.Symbol {
	t.Helper()
	toks, err := e.Tokens(text)
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

// TestConcurrentSharedExpansion: many goroutines parse the same cold
// entry; double-checked expansion must expand each state exactly once,
// so the shared table ends with the same state count as a sequential
// parse, and every parse succeeds.
func TestConcurrentSharedExpansion(t *testing.T) {
	// Sequential baseline.
	seq := New()
	se, _ := seq.Register("bool", Spec{Source: boolSrc})
	seqRes, err := se.ParseInput("true or false and true", true)
	if err != nil || !seqRes.Accepted {
		t.Fatal(seqRes.Accepted, err)
	}
	seqExpanded := se.Generator().Counters().StatesExpanded

	r := New()
	e, _ := r.Register("bool", Spec{Source: boolSrc})
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				res, err := e.ParseInput("true or false and true", true)
				if err != nil {
					errs <- err
					return
				}
				if !res.Accepted {
					errs <- errNotAccepted
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c := e.Generator().Counters()
	if c.StatesExpanded != seqExpanded {
		t.Errorf("concurrent parses expanded %d states, sequential baseline %d (states must be expanded exactly once)",
			c.StatesExpanded, seqExpanded)
	}
	if c.ParsesServed != goroutines*20 {
		t.Errorf("parses served %d, want %d", c.ParsesServed, goroutines*20)
	}
	if c.HitRate() <= 0.5 {
		t.Errorf("hit rate %.2f implausibly low for %d repeated parses", c.HitRate(), goroutines*20)
	}
}

var errNotAccepted = errorString("parse rejected")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestConcurrentParseAndModifyStress is the -race stress test of the
// concurrent parse service: N goroutines parse through one shared entry
// while another goroutine interleaves AddRule/DeleteRule of the same
// rule. Every parse must see a consistent table — the base language is
// always accepted, the toggled extension is accepted or rejected
// (before-or-after semantics), and nothing panics or races.
func TestConcurrentParseAndModifyStress(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{Source: boolSrc, GC: core.PolicyRefCount})
	if err != nil {
		t.Fatal(err)
	}
	base, err := e.Tokens("true or false and true")
	if err != nil {
		t.Fatal(err)
	}
	// Intern the extension's terminal up front so reader goroutines can
	// tokenize the extended sentence even while the rule is absent.
	if _, err := e.AddRulesText(`B ::= "not" B`); err != nil {
		t.Fatal(err)
	}
	ext, err := e.Tokens("not true or false")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeleteRulesText(`B ::= "not" B`); err != nil {
		t.Fatal(err)
	}
	// Warm the shared table so the first modification finds complete
	// states to invalidate even if the writer goroutine runs first.
	if res, err := e.Parse(base, false); err != nil || !res.Accepted {
		t.Fatal(res.Accepted, err)
	}

	const (
		readers = 8
		parses  = 60
		modifyN = 40
	)
	var (
		wg       sync.WaitGroup
		accepted atomic.Uint64
		rejected atomic.Uint64
		failures atomic.Uint64
	)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < parses; j++ {
				// Base sentence: must be accepted under every table
				// revision.
				res, err := e.Parse(base, j%2 == 0)
				if err != nil || !res.Accepted {
					failures.Add(1)
					return
				}
				// Toggled sentence: accepted iff the parse ran against a
				// table revision containing the rule — either outcome is
				// consistent, an error or panic is not.
				res, err = e.Parse(ext, false)
				if err != nil {
					failures.Add(1)
					return
				}
				if res.Accepted {
					accepted.Add(1)
				} else {
					rejected.Add(1)
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < modifyN; j++ {
			if _, err := e.AddRulesText(`B ::= "not" B`); err != nil {
				failures.Add(1)
				return
			}
			if _, err := e.DeleteRulesText(`B ::= "not" B`); err != nil {
				failures.Add(1)
				return
			}
		}
	}()
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d goroutines saw an inconsistent table", n)
	}
	if accepted.Load()+rejected.Load() != readers*parses {
		t.Errorf("toggled-sentence outcomes %d+%d, want %d",
			accepted.Load(), rejected.Load(), readers*parses)
	}
	st := e.Stats()
	if st.Counters.ParsesServed != 2*readers*parses+1 { // +1 warm-up
		t.Errorf("parses served %d, want %d", st.Counters.ParsesServed, 2*readers*parses+1)
	}
	if st.Counters.StatesInvalidated == 0 {
		t.Error("modifications should have invalidated states")
	}
	// The table must still be usable and exactly reflect the final
	// grammar (rule deleted).
	if res, err := e.Parse(ext, true); err != nil || res.Accepted {
		t.Errorf("final table should reject the deleted extension: %v %v", res.Accepted, err)
	}
	if res, err := e.Parse(base, true); err != nil || !res.Accepted || res.Trees < 1 {
		t.Errorf("final table broken for the base language: %+v %v", res, err)
	}
}

// TestConcurrentUpdateInternsAndStats covers the entry-level races the
// generator's own lock cannot see: rule-text updates intern brand-new
// terminals into the shared symbol table while other goroutines parse
// and sample Stats. Run under -race.
func TestConcurrentUpdateInternsAndStats(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var failures atomic.Uint64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				res, err := e.ParseInput("true or false", j%2 == 0)
				if err != nil || !res.Accepted {
					failures.Add(1)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 40; j++ {
			if e.Stats().Rules < 4 {
				failures.Add(1)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			// Every iteration interns a previously unseen terminal.
			rule := fmt.Sprintf("B ::= %q B", fmt.Sprintf("kw%d", j))
			if _, err := e.AddRulesText(rule); err != nil {
				failures.Add(1)
				return
			}
			if _, err := e.DeleteRulesText(rule); err != nil {
				failures.Add(1)
				return
			}
		}
	}()
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d goroutines failed", failures.Load())
	}
}

// TestConcurrentSDFParses drives the heavier SDF path (scanner +
// priorities) from many goroutines.
func TestConcurrentSDFParses(t *testing.T) {
	r := New()
	e, _ := r.Register("calc", Spec{Source: calcSDF})
	var wg sync.WaitGroup
	var failures atomic.Uint64
	inputs := []string{"1 + 2 * 3", "4 * 5 + 6", "7", "8 + 9 + 10"}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				res, err := e.ParseInput(inputs[(i+j)%len(inputs)], true)
				if err != nil || !res.Accepted || res.Trees != 1 {
					failures.Add(1)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d concurrent SDF parses failed", failures.Load())
	}
}

// TestParseThroughRawEngine double-checks that Entry.Parse agrees with
// driving the engine directly on a quiescent table.
func TestParseThroughRawEngine(t *testing.T) {
	r := New()
	e, _ := r.Register("bool", Spec{Source: boolSrc})
	toks := mustTokens(t, e, "true and true")
	res, err := e.Parse(toks, true)
	if err != nil || !res.Accepted {
		t.Fatal(res.Accepted, err)
	}
	ok, err := glr.Recognize(e.Generator(), toks, glr.GSS)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
}

//go:build race

package registry

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately drops entries under race instrumentation, so pooled
// parse scratch misses make allocation counts meaningless there.
const raceEnabled = true

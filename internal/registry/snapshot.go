package registry

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"ipg/internal/engine"
	"ipg/internal/faultinject"
	"ipg/internal/lr"
	"ipg/internal/obs"
	"ipg/internal/snapshot"
)

// This file wires table snapshots through the registry: entries resume
// their lazily generated tables from a snapshot store on registration
// (when the grammar hash matches), and can be snapshotted at any time —
// on demand, on an interval, or at shutdown — while other goroutines
// keep parsing. A snapshot only blocks lazy expansion and modification,
// never the already-published fast path.

// ErrNoStore is returned by the snapshot methods when no snapshot store
// has been configured (SetSnapshotStore).
var ErrNoStore = errors.New("registry: no snapshot store configured")

// ErrUnknownGrammar is returned (wrapped with the name) when a snapshot
// is requested for a name with no registered entry.
var ErrUnknownGrammar = errors.New("registry: unknown grammar")

// ErrNotSnapshottable is returned when a snapshot is requested for an
// entry whose engine keeps no persistable table (only lazy GLR does).
// SnapshotAll skips such entries instead of failing.
var ErrNotSnapshottable = errors.New("registry: entry's engine does not support snapshots")

// SetSnapshotStore enables snapshot persistence through st (nil
// disables it). Call before serving traffic; it is not synchronized
// against concurrent Register/Snapshot calls.
func (r *Registry) SetSnapshotStore(st *snapshot.Store) { r.store = st }

// SetSnapshotRetry configures the bounded retry of failed snapshot
// saves: up to retries re-attempts per save, sleeping backoff, 2×
// backoff, 4× backoff … (capped at one second) between attempts. Zero
// retries (the default) fails on the first error. Call before serving
// traffic.
func (r *Registry) SetSnapshotRetry(retries int, backoff time.Duration) {
	r.snapRetryMax = retries
	r.snapRetryBackoff = backoff
}

// saveSnapshot writes snap through the store with the configured
// bounded-backoff retry. The fault-injection site lets the chaos
// harness fail writes deterministically.
func (r *Registry) saveSnapshot(snap *snapshot.Snapshot) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = r.trySave(snap)
		if err == nil {
			return nil
		}
		if attempt >= r.snapRetryMax {
			return err
		}
		r.snapRetries.Add(1)
		if d := r.snapRetryBackoff; d > 0 {
			d <<= attempt
			if d > time.Second {
				d = time.Second
			}
			time.Sleep(d)
		}
	}
}

func (r *Registry) trySave(snap *snapshot.Snapshot) error {
	if faultinject.Armed() {
		if ferr := faultinject.Fire(faultinject.SiteSnapshotSave); ferr != nil {
			return ferr
		}
	}
	return r.store.Save(snap)
}

// SnapshotRetries counts snapshot save attempts that were retried.
func (r *Registry) SnapshotRetries() uint64 { return r.snapRetries.Load() }

// SnapshotStore returns the configured store (nil when disabled).
func (r *Registry) SnapshotStore() *snapshot.Store { return r.store }

// SetLogger directs the registry's structured log events — snapshot
// restores, fallbacks and failures — to l. Call before serving
// traffic; nil silences logging.
func (r *Registry) SetLogger(l *slog.Logger) { r.logger = l }

// SetDefaultLimits sets the admission control applied to every spec
// registered with zero Limits. Call before serving traffic.
func (r *Registry) SetDefaultLimits(l Limits) { r.defaultLimits = l }

// DefaultLimits returns the registry-wide default admission control.
func (r *Registry) DefaultLimits() Limits { return r.defaultLimits }

// SetDefaultEngine sets the backend applied to every spec registered
// with engine.KindDefault (the zero value keeps lazy GLR). Call before
// serving traffic.
func (r *Registry) SetDefaultEngine(k engine.Kind) { r.defaultEngine = k }

// DefaultEngine returns the registry-wide default backend.
func (r *Registry) DefaultEngine() engine.Kind { return r.defaultEngine }

// log returns the configured logger, or a discard logger so call sites
// never nil-check. Logging happens off the parse hot path only
// (registration, snapshot writes), so the indirection costs nothing
// where it matters.
func (r *Registry) log() *slog.Logger {
	if r.logger != nil {
		return r.logger
	}
	return obs.NopLogger()
}

// tryRestore replaces the engine's cold table with one resumed from the
// store's snapshot, when the engine supports snapshots (lazy GLR) and a
// snapshot exists whose grammar hash matches the freshly compiled
// grammar. Every failure mode — unsupported engine, corrupt file, stale
// hash, unloadable table — logs a reason and leaves the cold table in
// place: a snapshot can be lost, but it must never corrupt a table or
// fail a registration.
func (r *Registry) tryRestore(e *Entry) {
	if r.store == nil {
		return
	}
	snapper := engine.SnapshotterOf(e.eng)
	if snapper == nil {
		r.log().Info("snapshot skipped: engine keeps no persistable table, generating cold",
			"grammar", e.name, "engine", e.eng.Kind().String())
		return
	}
	snap, err := r.store.Load(e.name)
	switch {
	case errors.Is(err, snapshot.ErrNotFound):
		return
	case err != nil:
		r.snapErrors.Add(1)
		r.log().Warn("snapshot unreadable, generating cold",
			"grammar", e.name, "err", err)
		return
	}
	if err := snap.ValidateFor(e.g); err != nil {
		r.snapRejected.Add(1)
		r.log().Warn("snapshot stale, generating cold",
			"grammar", e.name, "err", err)
		return
	}
	auto, err := lr.Load(e.g, bytes.NewReader(snap.Payload))
	if err != nil {
		r.snapErrors.Add(1)
		r.log().Warn("snapshot table load failed, generating cold",
			"grammar", e.name, "err", err)
		return
	}
	snapper.RestoreTable(auto)
	e.restored = true
	r.snapRestores.Add(1)
	r.log().Info("snapshot resumed",
		"grammar", e.name, "states", snap.States, "complete", snap.Complete,
		"path", r.store.Path(e.name))
}

// Snapshot serializes the entry's table — lazy frontier, publication
// flags, dirty history and work stats — into a validated snapshot. It
// returns ErrNotSnapshottable (wrapped) for engines without persistable
// tables. Concurrent parses on already-expanded states proceed while
// the table is serialized; expansions and rule updates wait.
func (e *Entry) Snapshot() (*snapshot.Snapshot, error) {
	e.updateMu.RLock()
	defer e.updateMu.RUnlock()
	snapper := engine.SnapshotterOf(e.eng)
	if snapper == nil {
		return nil, fmt.Errorf("%w: %q uses engine %s", ErrNotSnapshottable, e.name, e.eng.Kind())
	}
	var buf bytes.Buffer
	cov, err := snapper.SaveTable(&buf)
	if err != nil {
		return nil, fmt.Errorf("registry: snapshot %q: %w", e.name, err)
	}
	return &snapshot.Snapshot{
		Meta: snapshot.Meta{
			Name:        e.name,
			Form:        e.form.String(),
			Version:     e.version.Load(),
			GrammarHash: snapshot.Hash(e.g),
			CreatedUnix: snapshot.Now(),
			States:      cov.Initial + cov.Complete + cov.Dirty,
			Complete:    cov.Complete,
		},
		Payload: buf.Bytes(),
	}, nil
}

// SnapshotEntry snapshots one entry to the store and returns the
// written header. It reports ErrUnknownGrammar (wrapped) when name has
// no entry — e.g. it was removed concurrently.
func (r *Registry) SnapshotEntry(name string) (snapshot.Meta, error) {
	if r.store == nil {
		return snapshot.Meta{}, ErrNoStore
	}
	e, ok := r.Get(name)
	if !ok {
		return snapshot.Meta{}, fmt.Errorf("%w: %q", ErrUnknownGrammar, name)
	}
	return r.snapshotEntry(e)
}

// snapshotEntry persists one already-resolved entry.
func (r *Registry) snapshotEntry(e *Entry) (snapshot.Meta, error) {
	snap, err := e.Snapshot()
	if errors.Is(err, ErrNotSnapshottable) {
		// Capability gap, not a failure: leave the error counters alone.
		return snapshot.Meta{}, err
	}
	if err != nil {
		r.snapErrors.Add(1)
		return snapshot.Meta{}, err
	}
	if err := r.saveSnapshot(snap); err != nil {
		r.snapErrors.Add(1)
		return snapshot.Meta{}, err
	}
	r.snapSaves.Add(1)
	e.snapSaves.Add(1)
	r.lastSnapUnix.Store(time.Now().Unix())
	return snap.Meta, nil
}

// SnapshotAll snapshots every registered entry whose engine supports
// it, returning how many were written and the joined errors of the rest
// (entries on non-persistable engines are skipped silently — a capability
// gap, not a failure). Call it on shutdown and on a timer so a restarted
// service resumes warm.
func (r *Registry) SnapshotAll() (int, error) {
	if r.store == nil {
		return 0, ErrNoStore
	}
	var errs []error
	saved := 0
	for _, e := range r.Entries() {
		if _, err := r.snapshotEntry(e); err != nil {
			if !errors.Is(err, ErrNotSnapshottable) {
				errs = append(errs, err)
			}
			continue
		}
		saved++
	}
	return saved, errors.Join(errs...)
}

// SnapshotGC removes the snapshot files of grammars explicitly
// unregistered (Remove) since the last pass — the compaction side of a
// long-lived snapshot directory, where tenants come and go but their
// envelope files would otherwise accumulate forever. It returns the
// reclaimed names.
//
// Only explicit removals are compacted: a name merely absent from the
// registry may be an HTTP-registered grammar of a previous process run
// whose snapshot is exactly the warm restart it expects on
// re-registration, so absence is not treated as removal (use
// snapshot.Store.GC directly for a keep-list sweep). Names whose
// registration is mid-flight (between snapshot restore and publication)
// are likewise never touched.
func (r *Registry) SnapshotGC() ([]string, error) {
	if r.store == nil {
		return nil, ErrNoStore
	}
	restoring := map[string]bool{}
	for _, name := range r.restoringNames() {
		restoring[name] = true
	}
	r.mu.Lock()
	candidates := make([]string, 0, len(r.removed))
	for name := range r.removed {
		if !restoring[name] {
			candidates = append(candidates, name)
		}
	}
	r.mu.Unlock()

	var reclaimed []string
	for _, name := range candidates {
		r.store.Remove(name)
		// Forget the name whether or not a file existed; re-removal
		// after a future registration re-records it.
		r.mu.Lock()
		delete(r.removed, name)
		r.mu.Unlock()
		reclaimed = append(reclaimed, name)
	}
	sort.Strings(reclaimed)
	return reclaimed, nil
}

// SnapshotStats describes the snapshot subsystem for stats endpoints.
type SnapshotStats struct {
	// Enabled reports whether a store is configured; Dir is its
	// directory when enabled.
	Enabled bool
	Dir     string
	// Saves/Restores/Rejected/Errors count snapshot writes, successful
	// restores at registration, hash-mismatch rejections and
	// corrupt/unreadable failures; Retries counts save attempts that
	// were re-tried after a write error.
	Saves, Restores, Rejected, Errors, Retries uint64
	// LastSaveUnix is the time of the most recent successful save
	// (0 = never).
	LastSaveUnix int64
}

// SnapshotStats samples the snapshot subsystem counters.
func (r *Registry) SnapshotStats() SnapshotStats {
	st := SnapshotStats{
		Saves:        r.snapSaves.Load(),
		Restores:     r.snapRestores.Load(),
		Rejected:     r.snapRejected.Load(),
		Errors:       r.snapErrors.Load(),
		Retries:      r.snapRetries.Load(),
		LastSaveUnix: r.lastSnapUnix.Load(),
	}
	if r.store != nil {
		st.Enabled = true
		st.Dir = r.store.Dir()
	}
	return st
}

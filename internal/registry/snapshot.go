package registry

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"ipg/internal/core"
	"ipg/internal/lr"
	"ipg/internal/snapshot"
)

// This file wires table snapshots through the registry: entries resume
// their lazily generated tables from a snapshot store on registration
// (when the grammar hash matches), and can be snapshotted at any time —
// on demand, on an interval, or at shutdown — while other goroutines
// keep parsing. A snapshot only blocks lazy expansion and modification,
// never the already-published fast path.

// ErrNoStore is returned by the snapshot methods when no snapshot store
// has been configured (SetSnapshotStore).
var ErrNoStore = errors.New("registry: no snapshot store configured")

// ErrUnknownGrammar is returned (wrapped with the name) when a snapshot
// is requested for a name with no registered entry.
var ErrUnknownGrammar = errors.New("registry: unknown grammar")

// SetSnapshotStore enables snapshot persistence through st (nil
// disables it). Call before serving traffic; it is not synchronized
// against concurrent Register/Snapshot calls.
func (r *Registry) SetSnapshotStore(st *snapshot.Store) { r.store = st }

// SnapshotStore returns the configured store (nil when disabled).
func (r *Registry) SnapshotStore() *snapshot.Store { return r.store }

// SetLogf directs the registry's snapshot decisions (restores,
// fallbacks, failures) to f, e.g. log.Printf. Call before serving
// traffic; nil silences logging.
func (r *Registry) SetLogf(f func(format string, args ...any)) { r.logf = f }

// SetDefaultLimits sets the admission control applied to every spec
// registered with zero Limits. Call before serving traffic.
func (r *Registry) SetDefaultLimits(l Limits) { r.defaultLimits = l }

// DefaultLimits returns the registry-wide default admission control.
func (r *Registry) DefaultLimits() Limits { return r.defaultLimits }

func (r *Registry) logfSafe(format string, args ...any) {
	if r.logf != nil {
		r.logf(format, args...)
	}
}

// tryRestore replaces e's cold generator with one resumed from the
// store's snapshot, when one exists and its grammar hash matches the
// freshly compiled grammar. Every failure mode — corrupt file, stale
// hash, unloadable table — logs a reason and leaves the cold generator
// in place: a snapshot can be lost, but it must never corrupt a table
// or fail a registration.
func (r *Registry) tryRestore(e *Entry, opts *core.Options) {
	if r.store == nil {
		return
	}
	snap, err := r.store.Load(e.name)
	switch {
	case errors.Is(err, snapshot.ErrNotFound):
		return
	case err != nil:
		r.snapErrors.Add(1)
		r.logfSafe("snapshot %q: unreadable, generating cold: %v", e.name, err)
		return
	}
	if err := snap.ValidateFor(e.g); err != nil {
		r.snapRejected.Add(1)
		r.logfSafe("snapshot %q: stale, generating cold: %v", e.name, err)
		return
	}
	auto, err := lr.Load(e.g, bytes.NewReader(snap.Payload))
	if err != nil {
		r.snapErrors.Add(1)
		r.logfSafe("snapshot %q: table load failed, generating cold: %v", e.name, err)
		return
	}
	e.gen = core.NewFromAutomaton(auto, opts)
	e.restored = true
	r.snapRestores.Add(1)
	r.logfSafe("snapshot %q: resumed %d states (%d complete) from %s",
		e.name, snap.States, snap.Complete, r.store.Path(e.name))
}

// Snapshot serializes the entry's table — lazy frontier, publication
// flags, dirty history and work stats — into a validated snapshot.
// Concurrent parses on already-expanded states proceed while the table
// is serialized; expansions and rule updates wait.
func (e *Entry) Snapshot() (*snapshot.Snapshot, error) {
	e.updateMu.RLock()
	defer e.updateMu.RUnlock()
	var buf bytes.Buffer
	cov, err := e.gen.SaveTable(&buf)
	if err != nil {
		return nil, fmt.Errorf("registry: snapshot %q: %w", e.name, err)
	}
	return &snapshot.Snapshot{
		Meta: snapshot.Meta{
			Name:        e.name,
			Form:        e.form.String(),
			Version:     e.version.Load(),
			GrammarHash: snapshot.Hash(e.g),
			CreatedUnix: snapshot.Now(),
			States:      cov.Initial + cov.Complete + cov.Dirty,
			Complete:    cov.Complete,
		},
		Payload: buf.Bytes(),
	}, nil
}

// SnapshotEntry snapshots one entry to the store and returns the
// written header. It reports ErrUnknownGrammar (wrapped) when name has
// no entry — e.g. it was removed concurrently.
func (r *Registry) SnapshotEntry(name string) (snapshot.Meta, error) {
	if r.store == nil {
		return snapshot.Meta{}, ErrNoStore
	}
	e, ok := r.Get(name)
	if !ok {
		return snapshot.Meta{}, fmt.Errorf("%w: %q", ErrUnknownGrammar, name)
	}
	return r.snapshotEntry(e)
}

// snapshotEntry persists one already-resolved entry.
func (r *Registry) snapshotEntry(e *Entry) (snapshot.Meta, error) {
	snap, err := e.Snapshot()
	if err != nil {
		r.snapErrors.Add(1)
		return snapshot.Meta{}, err
	}
	if err := r.store.Save(snap); err != nil {
		r.snapErrors.Add(1)
		return snapshot.Meta{}, err
	}
	r.snapSaves.Add(1)
	r.lastSnapUnix.Store(time.Now().Unix())
	return snap.Meta, nil
}

// SnapshotAll snapshots every registered entry, returning how many were
// written and the joined errors of the rest. Call it on shutdown and on
// a timer so a restarted service resumes warm.
func (r *Registry) SnapshotAll() (int, error) {
	if r.store == nil {
		return 0, ErrNoStore
	}
	var errs []error
	saved := 0
	for _, e := range r.Entries() {
		if _, err := r.snapshotEntry(e); err != nil {
			errs = append(errs, err)
			continue
		}
		saved++
	}
	return saved, errors.Join(errs...)
}

// SnapshotStats describes the snapshot subsystem for stats endpoints.
type SnapshotStats struct {
	// Enabled reports whether a store is configured; Dir is its
	// directory when enabled.
	Enabled bool
	Dir     string
	// Saves/Restores/Rejected/Errors count snapshot writes, successful
	// restores at registration, hash-mismatch rejections and
	// corrupt/unreadable failures.
	Saves, Restores, Rejected, Errors uint64
	// LastSaveUnix is the time of the most recent successful save
	// (0 = never).
	LastSaveUnix int64
}

// SnapshotStats samples the snapshot subsystem counters.
func (r *Registry) SnapshotStats() SnapshotStats {
	st := SnapshotStats{
		Saves:        r.snapSaves.Load(),
		Restores:     r.snapRestores.Load(),
		Rejected:     r.snapRejected.Load(),
		Errors:       r.snapErrors.Load(),
		LastSaveUnix: r.lastSnapUnix.Load(),
	}
	if r.store != nil {
		st.Enabled = true
		st.Dir = r.store.Dir()
	}
	return st
}

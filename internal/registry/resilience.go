package registry

// This file is the registry's fault-tolerance layer: per-request
// cancellation armed from the request context, panic quarantine fed by
// the guarded engine dispatch, a per-grammar circuit breaker, the
// draining flag a graceful shutdown raises, a global memory budget
// across entries, and a latency shedder that rejects a fraction of
// requests while the service's p99 is inflated. Everything here is
// off the warm path or costs a handful of atomic loads; nothing
// allocates unless the request is actually cancellable or rejected.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ipg/internal/cancel"
)

// ErrQuarantined reports a breaker rejection: the grammar's engine
// panicked repeatedly and the entry is quarantined until a cooldown
// probe succeeds. Serve maps it to 503 with Retry-After.
var ErrQuarantined = errors.New("registry: grammar quarantined after repeated engine panics")

// ErrDraining reports a drain rejection: the service is shutting down
// and no longer admits new parses. Serve maps it to 503.
var ErrDraining = errors.New("registry: service is draining")

// ErrMemoryBudget reports an admission rejection against the global
// memory budget: the estimated retained bytes across all entries and
// sessions exceed the configured cap. Serve maps it to 429.
var ErrMemoryBudget = errors.New("registry: global memory budget exceeded")

// ErrShed reports a load-shedding rejection: the service's p99 latency
// is inflated beyond its baseline and a fraction of requests is being
// dropped to let it recover. Serve maps it to 429.
var ErrShed = errors.New("registry: request shed (latency inflation)")

// QuarantineError is the concrete breaker rejection: it matches
// ErrQuarantined via errors.Is and carries the suggested retry delay.
type QuarantineError struct {
	Grammar    string
	RetryAfter time.Duration
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("registry: grammar %q quarantined after repeated engine panics (retry in %s)",
		e.Grammar, e.RetryAfter.Round(time.Millisecond))
}

// Is makes errors.Is(err, ErrQuarantined) match.
func (e *QuarantineError) Is(target error) bool { return target == ErrQuarantined }

// BreakerConfig configures the per-grammar circuit breaker. The zero
// value disables it.
type BreakerConfig struct {
	// Threshold is how many consecutive engine panics open the breaker
	// (0 disables the breaker).
	Threshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe parse.
	Cooldown time.Duration
}

// Breaker states. The breaker is a standard three-state circuit:
// closed (serving), open (rejecting until cooldown), half-open (one
// probe parse in flight decides).
const (
	breakerClosed uint32 = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one entry's panic circuit. All fields are atomics: the
// admission check is lock-free and the state transitions are CAS-based,
// so a tripped tenant costs concurrent healthy tenants nothing.
type breaker struct {
	state    atomic.Uint32
	fails    atomic.Uint32 // consecutive engine panics
	openedNS atomic.Int64  // when the breaker last opened
	probing  atomic.Bool   // a half-open probe is in flight
	probeNS  atomic.Int64  // when the probe was admitted
	trips    atomic.Uint64
	rejected atomic.Uint64
}

// admit decides whether a request may proceed. On rejection it returns
// the suggested retry delay. In the half-open state exactly one request
// is admitted as the probe; a probe that never reports back (its
// request failed before the parse) is taken over after another
// cooldown, so the breaker cannot wedge half-open forever.
func (b *breaker) admit(cooldown time.Duration) (ok bool, retryAfter time.Duration) {
	now := time.Now().UnixNano()
	switch b.state.Load() {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if rem := cooldown - time.Duration(now-b.openedNS.Load()); rem > 0 {
			return false, rem
		}
		// Cooldown over: move to half-open. Whoever wins (or loses) the
		// CAS falls into the probe election below.
		b.state.CompareAndSwap(breakerOpen, breakerHalfOpen)
	}
	// Half-open: elect one probe.
	if b.probing.CompareAndSwap(false, true) {
		b.probeNS.Store(now)
		return true, 0
	}
	if time.Duration(now-b.probeNS.Load()) > cooldown {
		// The elected probe vanished (failed before parsing); take over.
		b.probeNS.Store(now)
		return true, 0
	}
	return false, cooldown
}

// onPanic records an engine panic: the probe failing reopens the
// breaker; enough consecutive failures trip a closed one.
func (b *breaker) onPanic(threshold int) {
	n := b.fails.Add(1)
	if b.state.Load() == breakerHalfOpen {
		b.reopen()
		return
	}
	if threshold > 0 && int(n) >= threshold &&
		b.state.CompareAndSwap(breakerClosed, breakerOpen) {
		b.openedNS.Store(time.Now().UnixNano())
		b.trips.Add(1)
	}
}

// onSuccess records a completed, panic-free parse: the failure streak
// resets and a successful probe closes the breaker.
func (b *breaker) onSuccess() {
	b.fails.Store(0)
	if b.state.Load() == breakerHalfOpen &&
		b.state.CompareAndSwap(breakerHalfOpen, breakerClosed) {
		b.probing.Store(false)
	}
}

// onInconclusive releases a probe whose parse neither succeeded nor
// panicked (canceled mid-drive): the breaker stays half-open and the
// next request probes again.
func (b *breaker) onInconclusive() {
	if b.state.Load() == breakerHalfOpen {
		b.probing.Store(false)
	}
}

func (b *breaker) reopen() {
	b.state.Store(breakerOpen)
	b.openedNS.Store(time.Now().UnixNano())
	b.trips.Add(1)
	b.probing.Store(false)
}

// stateName names the breaker state for stats and metrics.
func (b *breaker) stateName() string {
	switch b.state.Load() {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// BreakerStats snapshots one entry's circuit breaker.
type BreakerStats struct {
	// State is "closed", "open" or "half_open".
	State string
	// ConsecutiveFailures is the current panic streak.
	ConsecutiveFailures uint32
	// Trips counts closed→open (and probe-failure reopen) transitions.
	Trips uint64
	// Rejected counts requests refused while open.
	Rejected uint64
}

// resilience is the registry-global fault-tolerance state, shared with
// every entry by pointer (like the profile-label switch) so the
// admission gate reads it without reaching back into the registry.
type resilience struct {
	brkThreshold atomic.Int64
	brkCooldown  atomic.Int64 // nanoseconds

	draining      atomic.Bool
	drainRejected atomic.Uint64

	memBudget   atomic.Int64 // bytes; 0 = unlimited
	memUsage    atomic.Int64 // last RefreshMemoryUsage estimate
	memRejected atomic.Uint64

	shedActive atomic.Bool
	shedMod    atomic.Int64 // reject one request in shedMod while active
	shedSeq    atomic.Uint64
	shedShed   atomic.Uint64

	// Shedder tick state (serialized; ticks are infrequent).
	shedMu         sync.Mutex
	shedPrev       LatencySnapshot
	shedPrevOK     bool
	shedBaselineUS float64
}

// SetBreakerConfig installs the per-grammar circuit breaker
// configuration (applies to every entry; zero Threshold disables).
// Safe to call while serving.
func (r *Registry) SetBreakerConfig(cfg BreakerConfig) {
	r.res.brkThreshold.Store(int64(cfg.Threshold))
	r.res.brkCooldown.Store(int64(cfg.Cooldown))
}

// BreakerConfig returns the current breaker configuration.
func (r *Registry) BreakerConfig() BreakerConfig {
	return BreakerConfig{
		Threshold: int(r.res.brkThreshold.Load()),
		Cooldown:  time.Duration(r.res.brkCooldown.Load()),
	}
}

// SetDraining raises (or clears) the draining flag: while set, every
// admission is rejected with ErrDraining. In-flight parses are not
// interrupted by the flag itself — the serving layer cancels their
// request contexts when the drain timeout expires, which fires their
// cancellation flags with reason Shutdown.
func (r *Registry) SetDraining(on bool) { r.res.draining.Store(on) }

// Draining reports whether the registry is refusing new work.
func (r *Registry) Draining() bool { return r.res.draining.Load() }

// SetMemoryBudget installs the global retained-memory budget in bytes
// (0 disables). The budget is compared against the estimate refreshed
// by RefreshMemoryUsage; call that periodically (the serve layer's
// janitor does) or the check never fires.
func (r *Registry) SetMemoryBudget(bytes int64) { r.res.memBudget.Store(bytes) }

// Rough per-unit retained-size estimates for the global memory budget.
// They intentionally overestimate: an admission budget should fail
// early, and the point is bounding growth, not accounting bytes.
const (
	stateEstimateBytes = 768 // one parse-table state (actions + gotos + items)
	itemEstimateBytes  = 48  // one retained Earley item
	nodeEstimateBytes  = 96  // one retained forest node
	tokenEstimateBytes = 8   // one retained document token
)

// RefreshMemoryUsage recomputes the coarse estimate of retained bytes
// across every entry's parse table and every open session's chart,
// forest and document, and publishes it for the admission check. It
// returns the new estimate.
func (r *Registry) RefreshMemoryUsage() int64 {
	var total int64
	for _, e := range r.Entries() {
		info := e.eng.TableInfo()
		total += int64(info.States) * stateEstimateBytes
	}
	for _, st := range r.SessionStats() {
		total += int64(st.Items)*itemEstimateBytes +
			int64(st.ForestNodes)*nodeEstimateBytes +
			int64(st.Tokens)*tokenEstimateBytes
	}
	r.res.memUsage.Store(total)
	return total
}

// ShedConfig configures the p99-inflation load shedder. The zero value
// disables it.
type ShedConfig struct {
	// Factor activates shedding when the latest window's p99 exceeds
	// Factor times the healthy baseline (must be > 1).
	Factor float64
	// MinSamples ignores windows with fewer requests than this, so a
	// quiet service never sheds on noise.
	MinSamples uint64
	// DropPer rejects one request in DropPer while shedding is active
	// (e.g. 4 sheds 25% of load).
	DropPer int
}

// ShedTick advances the latency shedder by one window: it diffs the
// aggregate request-latency histogram against the previous tick,
// compares the window's p99 with an exponentially weighted baseline of
// healthy windows, and switches shedding on or off. The serve layer
// calls it on a timer; it reports whether shedding is now active.
func (r *Registry) ShedTick(cfg ShedConfig) bool {
	rs := &r.res
	if cfg.Factor <= 1 || cfg.DropPer < 1 {
		rs.shedActive.Store(false)
		return false
	}
	cur := r.aggregateLatency()
	rs.shedMu.Lock()
	defer rs.shedMu.Unlock()
	if !rs.shedPrevOK {
		rs.shedPrev, rs.shedPrevOK = cur, true
		return false
	}
	win := subLatency(cur, rs.shedPrev)
	rs.shedPrev = cur
	if win.Count < cfg.MinSamples {
		rs.shedActive.Store(false)
		return false
	}
	p99 := float64(win.PercentileUS(0.99))
	active := rs.shedBaselineUS > 0 && p99 > cfg.Factor*rs.shedBaselineUS
	if !active {
		// Learn the baseline from healthy windows only: while shedding,
		// the baseline stays frozen so recovery is judged against the
		// pre-incident norm.
		if rs.shedBaselineUS == 0 {
			rs.shedBaselineUS = p99
		} else {
			rs.shedBaselineUS = 0.8*rs.shedBaselineUS + 0.2*p99
		}
	}
	rs.shedMod.Store(int64(cfg.DropPer))
	rs.shedActive.Store(active)
	return active
}

// aggregateLatency merges every entry's request-latency histogram.
func (r *Registry) aggregateLatency() LatencySnapshot {
	var agg LatencySnapshot
	for _, e := range r.Entries() {
		agg.Add(e.lat.snapshot())
	}
	return agg
}

// subLatency diffs two snapshots of a monotone histogram (cur - prev).
func subLatency(cur, prev LatencySnapshot) LatencySnapshot {
	var d LatencySnapshot
	for i := range cur.Buckets {
		d.Buckets[i] = cur.Buckets[i] - prev.Buckets[i]
	}
	d.Count = cur.Count - prev.Count
	d.SumUS = cur.SumUS - prev.SumUS
	return d
}

// ResilienceStats samples the registry-global fault-tolerance state
// for stats endpoints and /metrics.
type ResilienceStats struct {
	Draining        bool
	DrainRejected   uint64
	Breaker         BreakerConfig
	MemBudgetBytes  int64
	MemUsageBytes   int64
	MemRejected     uint64
	ShedActive      bool
	Shed            uint64
	SnapshotRetries uint64
}

// Resilience samples the fault-tolerance counters.
func (r *Registry) Resilience() ResilienceStats {
	return ResilienceStats{
		Draining:        r.res.draining.Load(),
		DrainRejected:   r.res.drainRejected.Load(),
		Breaker:         r.BreakerConfig(),
		MemBudgetBytes:  r.res.memBudget.Load(),
		MemUsageBytes:   r.res.memUsage.Load(),
		MemRejected:     r.res.memRejected.Load(),
		ShedActive:      r.res.shedActive.Load(),
		Shed:            r.res.shedShed.Load(),
		SnapshotRetries: r.snapRetries.Load(),
	}
}

// admitResilience runs the registry-global admission checks shared by
// every entry: drain, breaker, memory budget, shedder. It is called
// from Entry.admit with e.res possibly nil (entries constructed outside
// a registry, e.g. in tests, skip all of it).
func (e *Entry) admitResilience() error {
	rs := e.res
	if rs == nil {
		return nil
	}
	if rs.draining.Load() {
		rs.drainRejected.Add(1)
		e.rejected.Add(1)
		return ErrDraining
	}
	if th := rs.brkThreshold.Load(); th > 0 {
		cooldown := time.Duration(rs.brkCooldown.Load())
		if ok, retry := e.brk.admit(cooldown); !ok {
			e.brk.rejected.Add(1)
			e.rejected.Add(1)
			return &QuarantineError{Grammar: e.name, RetryAfter: retry}
		}
	}
	if budget := rs.memBudget.Load(); budget > 0 {
		if usage := rs.memUsage.Load(); usage > budget {
			rs.memRejected.Add(1)
			e.rejected.Add(1)
			return fmt.Errorf("%w (estimated %d bytes, budget %d)", ErrMemoryBudget, usage, budget)
		}
	}
	if rs.shedActive.Load() {
		if mod := rs.shedMod.Load(); mod > 0 && rs.shedSeq.Add(1)%uint64(mod) == 0 {
			rs.shedShed.Add(1)
			e.rejected.Add(1)
			return fmt.Errorf("%w (1 in %d)", ErrShed, mod)
		}
	}
	return nil
}

// armCancel builds the parse's cancellation flag from the request
// context. Uncancellable contexts (Background — the warm path) arm
// nothing and return a nil flag, keeping the parse at 0 allocs/op.
// Cancellable contexts take a pooled flag and register an AfterFunc
// that fires it with the right reason: deadline expiry, client
// disconnect, or drain-timeout shutdown.
func (e *Entry) armCancel(ctx context.Context) (*cancel.Flag, func() bool) {
	if ctx == nil || ctx.Done() == nil {
		return nil, nil
	}
	fl := cancel.GetFlag()
	rs := e.res
	stop := context.AfterFunc(ctx, func() {
		reason := cancel.ClientGone
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			reason = cancel.Deadline
		} else if rs != nil && rs.draining.Load() {
			reason = cancel.Shutdown
		}
		fl.Cancel(reason)
	})
	return fl, stop
}

// disarmCancel undoes armCancel after the parse: the flag is recycled
// only when the AfterFunc provably never ran (stop returned true);
// otherwise it is left to the garbage collector, since the callback
// may still be touching it.
func disarmCancel(fl *cancel.Flag, stop func() bool) {
	if fl == nil {
		return
	}
	if stop() {
		cancel.PutFlag(fl)
	}
}

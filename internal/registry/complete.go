// Completion sessions: the registry's resource-managed wrapper around
// engine completion cursors (engine/complete.go). A CompletionSession
// is one retained cursor addressed by id — the constrained-decoding
// client opens it once, then streams feed/accepts/restore batches —
// under the same regime as document sessions: admission and rate
// limiting through the owning entry's gate, a registry-wide cursor cap,
// idle eviction by the serve janitor, and closure when the grammar
// entry is removed or replaced.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipg/internal/engine"
	"ipg/internal/grammar"
	"ipg/internal/obs"
)

// CompletionLimits bound the registry's completion-cursor population.
// Zero values mean unlimited (and, for IdleTimeout, never evict).
type CompletionLimits struct {
	// MaxCursors caps concurrently open cursors across all grammars.
	MaxCursors int
	// MaxPrefixTokens caps a cursor's position, at open and after every
	// feed batch.
	MaxPrefixTokens int
	// IdleTimeout is how long a cursor may go untouched before an
	// EvictIdleCompletions pass reclaims it.
	IdleTimeout time.Duration
}

// ErrCursorLimit reports cursor-admission rejection (serve: 429).
var ErrCursorLimit = errors.New("registry: too many open completion cursors")

// ErrPrefixTooLong reports a prefix over the per-cursor token budget
// (serve: 413).
var ErrPrefixTooLong = errors.New("registry: completion prefix exceeds token limit")

// ErrNoCursor reports an unknown, closed or evicted cursor id
// (serve: 404).
var ErrNoCursor = errors.New("registry: no such completion cursor")

// CompletionSession is one open completion cursor bound to one registry
// entry. All methods are safe for concurrent use; Apply passes through
// the owning entry's admission gate, so completion traffic obeys the
// same rate/concurrency limits as parses.
type CompletionSession struct {
	id        string
	entry     *Entry
	reg       *Registry
	created   time.Time
	engName   string
	maxTokens int

	lastUsed atomic.Int64 // unix nanoseconds

	mu      sync.Mutex
	cur     engine.Cursor
	queries uint64
	feeds   uint64
	closed  bool
}

// CompletionStat is the wire-shaped snapshot of one completion cursor.
type CompletionStat struct {
	ID      string `json:"id"`
	Grammar string `json:"grammar"`
	Engine  string `json:"engine"`
	Pos     int    `json:"pos"`
	Vocab   int    `json:"vocab"`
	Version uint64 `json:"version"`
	Queries uint64 `json:"queries,omitempty"`
	Feeds   uint64 `json:"feeds,omitempty"`
	IdleMs  int64  `json:"idle_ms"`
}

// CompletionTotals aggregates completion-cursor activity for metrics
// exposition. Counters are monotone: closed cursors' tallies roll into
// the totals before the cursor is dropped.
type CompletionTotals struct {
	Open    int
	Opened  uint64
	Evicted uint64
	Closed  uint64
	Queries uint64
	Feeds   uint64
}

// SetCompletionLimits installs the cursor admission limits (replacing
// the previous set wholesale). Safe to call while serving; already-open
// cursors are not retroactively evicted by a lower MaxCursors.
func (r *Registry) SetCompletionLimits(l CompletionLimits) {
	r.completionMu.Lock()
	defer r.completionMu.Unlock()
	r.completionLimits = l
}

// CompletionLimits returns the current cursor admission limits.
func (r *Registry) CompletionLimits() CompletionLimits {
	r.completionMu.Lock()
	defer r.completionMu.Unlock()
	return r.completionLimits
}

// OpenCompletion opens a completion cursor on e (an entry of this
// registry) and feeds it the prefix, resolved like any parse input —
// scanned source text for SDF entries, whitespace-separated terminal
// names otherwise. On a non-viable prefix the cursor is not retained
// and rejPos reports the index of the first rejected token (with
// engine.ErrRejected); rejPos is -1 otherwise.
func (r *Registry) OpenCompletion(e *Entry, prefix string, tr *obs.ParseTrace) (cs *CompletionSession, rejPos int, err error) {
	if err := e.admit(); err != nil {
		return nil, -1, err
	}
	defer e.release()
	defer e.observeCompletion(time.Now())

	r.completionMu.Lock()
	limits := r.completionLimits
	if max := limits.MaxCursors; max > 0 && len(r.completions) >= max {
		r.completionMu.Unlock()
		return nil, -1, fmt.Errorf("%w (limit %d)", ErrCursorLimit, max)
	}
	r.completionMu.Unlock()

	tr.BeginStage(obs.StageTokenize)
	toks, err := e.InputTokens(prefix)
	tr.EndStage(obs.StageTokenize)
	if err != nil {
		return nil, -1, err
	}
	if max := limits.MaxPrefixTokens; max > 0 && len(toks)-1 > max {
		return nil, -1, fmt.Errorf("%w (%d tokens, limit %d)", ErrPrefixTooLong, len(toks)-1, max)
	}
	tr.BeginStage(obs.StageComplete)
	cur, rejPos, err := engine.OpenCursor(e.eng, toks)
	tr.EndStage(obs.StageComplete)
	if err != nil {
		return nil, rejPos, err
	}
	cs = &CompletionSession{
		id:        fmt.Sprintf("c-%s-%d", e.name, r.completionSeq.Add(1)),
		entry:     e,
		reg:       r,
		created:   time.Now(),
		engName:   e.eng.Kind().String(),
		maxTokens: limits.MaxPrefixTokens,
		cur:       cur,
	}
	cs.touch()

	r.completionMu.Lock()
	// Re-check under the lock: concurrent opens may have raced past the
	// earlier unlocked-window check.
	if max := limits.MaxCursors; max > 0 && len(r.completions) >= max {
		r.completionMu.Unlock()
		cur.Close()
		return nil, -1, fmt.Errorf("%w (limit %d)", ErrCursorLimit, max)
	}
	if r.completions == nil {
		r.completions = map[string]*CompletionSession{}
	}
	r.completions[cs.id] = cs
	r.completionMu.Unlock()
	r.completionsOpened.Add(1)
	return cs, -1, nil
}

// CompleteOnce answers a one-shot accept-set query — open, feed the
// prefix, query, close — without retaining a cursor. It reports how
// many tokens the prefix held; on a non-viable prefix rejPos reports
// the first rejected token with engine.ErrRejected (-1 otherwise).
func (r *Registry) CompleteOnce(e *Entry, prefix string, dst *engine.TermSet, tr *obs.ParseTrace) (tokens, rejPos int, err error) {
	if err := e.admit(); err != nil {
		return 0, -1, err
	}
	defer e.release()
	defer e.observeCompletion(time.Now())
	tr.BeginStage(obs.StageTokenize)
	toks, err := e.InputTokens(prefix)
	tr.EndStage(obs.StageTokenize)
	if err != nil {
		return 0, -1, err
	}
	if max := r.CompletionLimits().MaxPrefixTokens; max > 0 && len(toks)-1 > max {
		return 0, -1, fmt.Errorf("%w (%d tokens, limit %d)", ErrPrefixTooLong, len(toks)-1, max)
	}
	tr.BeginStage(obs.StageComplete)
	rejPos, err = engine.Accepts(e.eng, toks, dst)
	tr.EndStage(obs.StageComplete)
	e.completions.Add(1)
	return len(toks) - 1, rejPos, err
}

// Completion returns the open cursor registered under id.
func (r *Registry) Completion(id string) (*CompletionSession, bool) {
	r.completionMu.Lock()
	defer r.completionMu.Unlock()
	cs, ok := r.completions[id]
	return cs, ok
}

// CloseCompletion closes and forgets the cursor registered under id,
// reporting whether it existed.
func (r *Registry) CloseCompletion(id string) bool {
	r.completionMu.Lock()
	cs, ok := r.completions[id]
	delete(r.completions, id)
	r.completionMu.Unlock()
	if !ok {
		return false
	}
	cs.close()
	r.completionsClosed.Add(1)
	return true
}

// EvictIdleCompletions reclaims cursors untouched for longer than the
// configured IdleTimeout, returning how many were evicted. A zero
// IdleTimeout disables eviction. The serve janitor calls this
// periodically; tests call it directly with a synthetic now.
func (r *Registry) EvictIdleCompletions(now time.Time) int {
	r.completionMu.Lock()
	idle := r.completionLimits.IdleTimeout
	if idle <= 0 {
		r.completionMu.Unlock()
		return 0
	}
	var victims []*CompletionSession
	for id, cs := range r.completions {
		if now.Sub(time.Unix(0, cs.lastUsed.Load())) > idle {
			delete(r.completions, id)
			victims = append(victims, cs)
		}
	}
	r.completionMu.Unlock()
	for _, cs := range victims {
		cs.close()
		r.completionsEvicted.Add(1)
	}
	return len(victims)
}

// CompletionCount returns the number of open cursors.
func (r *Registry) CompletionCount() int {
	r.completionMu.Lock()
	defer r.completionMu.Unlock()
	return len(r.completions)
}

// CompletionStats snapshots every open cursor, sorted by id.
func (r *Registry) CompletionStats() []CompletionStat {
	r.completionMu.Lock()
	open := make([]*CompletionSession, 0, len(r.completions))
	for _, cs := range r.completions {
		open = append(open, cs)
	}
	r.completionMu.Unlock()
	out := make([]CompletionStat, 0, len(open))
	for _, cs := range open {
		out = append(out, cs.Stat())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CompletionTotals aggregates live and closed cursor activity for the
// /metrics endpoint.
func (r *Registry) CompletionTotals() CompletionTotals {
	t := CompletionTotals{
		Opened:  r.completionsOpened.Load(),
		Evicted: r.completionsEvicted.Load(),
		Closed:  r.completionsClosed.Load(),
		Queries: r.closedQueries.Load(),
		Feeds:   r.closedFeeds.Load(),
	}
	r.completionMu.Lock()
	open := make([]*CompletionSession, 0, len(r.completions))
	for _, cs := range r.completions {
		open = append(open, cs)
	}
	r.completionMu.Unlock()
	t.Open = len(open)
	for _, cs := range open {
		cs.mu.Lock()
		if !cs.closed {
			t.Queries += cs.queries
			t.Feeds += cs.feeds
		}
		cs.mu.Unlock()
	}
	return t
}

// CloseAllCompletions closes every open cursor — the drain path's
// counterpart to CloseAllSessions. It returns how many were closed.
func (r *Registry) CloseAllCompletions() int {
	r.completionMu.Lock()
	victims := make([]*CompletionSession, 0, len(r.completions))
	for id, cs := range r.completions {
		delete(r.completions, id)
		victims = append(victims, cs)
	}
	r.completionMu.Unlock()
	for _, cs := range victims {
		cs.close()
		r.completionsClosed.Add(1)
	}
	return len(victims)
}

// closeCompletionsOf closes every cursor bound to entry e — called when
// the entry is removed or replaced, since cursors hold frontier state
// of the old engine's table.
func (r *Registry) closeCompletionsOf(e *Entry) {
	if e == nil {
		return
	}
	r.completionMu.Lock()
	var victims []*CompletionSession
	for id, cs := range r.completions {
		if cs.entry == e {
			delete(r.completions, id)
			victims = append(victims, cs)
		}
	}
	r.completionMu.Unlock()
	for _, cs := range victims {
		cs.close()
		r.completionsClosed.Add(1)
	}
}

// observeCompletion records one admitted completion request's
// end-to-end latency.
func (e *Entry) observeCompletion(start time.Time) {
	e.completeLat.observe(time.Since(start))
}

// close releases the cursor, rolling its counters into the registry's
// closed totals so metrics stay monotone.
func (cs *CompletionSession) close() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return
	}
	cs.reg.closedQueries.Add(cs.queries)
	cs.reg.closedFeeds.Add(cs.feeds)
	cs.cur.Close()
	cs.cur = nil
	cs.closed = true
}

func (cs *CompletionSession) touch() { cs.lastUsed.Store(time.Now().UnixNano()) }

// ID returns the cursor's registry-wide identifier.
func (cs *CompletionSession) ID() string { return cs.id }

// Grammar returns the name of the entry the cursor is bound to.
func (cs *CompletionSession) Grammar() string { return cs.entry.name }

// Entry returns the owning registry entry.
func (cs *CompletionSession) Entry() *Entry { return cs.entry }

// FeedTokens resolves input against the entry (source text for SDF,
// terminal names otherwise) into a token batch for Apply, dropping the
// end-marker terminator.
func (cs *CompletionSession) FeedTokens(input string) ([]grammar.Symbol, error) {
	toks, err := cs.entry.InputTokens(input)
	if err != nil {
		return nil, err
	}
	return toks[:len(toks)-1], nil
}

// Apply executes one batched cursor operation under a single admission
// pass: an optional restore (restore >= 0), a token feed, then — when
// dst is non-nil — an accept-set query. On a rejected token rejIdx
// reports its index in feed (with engine.ErrRejected) and the cursor
// keeps the tokens accepted before it; rejIdx is -1 otherwise. Errors
// surface engine.ErrCursorStale once the grammar has moved under the
// cursor; the session then refuses all further use and should be
// closed.
func (cs *CompletionSession) Apply(restore int, feed []grammar.Symbol, dst *engine.TermSet, tr *obs.ParseTrace) (rejIdx int, err error) {
	if err := cs.entry.admit(); err != nil {
		return -1, err
	}
	defer cs.entry.release()
	defer cs.entry.observeCompletion(time.Now())
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return -1, ErrNoCursor
	}
	tr.BeginStage(obs.StageComplete)
	defer tr.EndStage(obs.StageComplete)
	if restore >= 0 {
		if err := cs.cur.Restore(restore); err != nil {
			return -1, err
		}
	}
	if max := cs.maxTokens; max > 0 && cs.cur.Pos()+len(feed) > max {
		return -1, fmt.Errorf("%w (%d tokens, limit %d)", ErrPrefixTooLong, cs.cur.Pos()+len(feed), max)
	}
	for i, t := range feed {
		if err := cs.cur.Feed(t); err != nil {
			return i, err
		}
		cs.feeds++
	}
	if dst != nil {
		if err := cs.cur.Accepts(dst); err != nil {
			return -1, err
		}
		cs.queries++
	}
	cs.entry.completions.Add(1)
	cs.touch()
	return -1, nil
}

// Pos returns the cursor position (tokens fed so far).
func (cs *CompletionSession) Pos() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return 0
	}
	return cs.cur.Pos()
}

// Vocab returns the cursor's terminal vocabulary (nil once closed).
func (cs *CompletionSession) Vocab() *engine.Vocab {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return nil
	}
	return cs.cur.Vocab()
}

// Stat snapshots the cursor for the stat and list endpoints.
func (cs *CompletionSession) Stat() CompletionStat {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := CompletionStat{
		ID:      cs.id,
		Grammar: cs.entry.name,
		Engine:  cs.engName,
		IdleMs:  time.Since(time.Unix(0, cs.lastUsed.Load())).Milliseconds(),
	}
	if cs.closed {
		return out
	}
	v := cs.cur.Vocab()
	out.Pos = cs.cur.Pos()
	out.Vocab = v.Len()
	out.Version = v.Version
	out.Queries = cs.queries
	out.Feeds = cs.feeds
	return out
}

package registry

import (
	"errors"
	"log/slog"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipg/internal/snapshot"
)

func newStoreT(t *testing.T) *snapshot.Store {
	t.Helper()
	st, err := snapshot.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// logCapture collects registry log output for assertion: a locked
// byte sink behind a slog text handler.
type logCapture struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (lc *logCapture) Write(p []byte) (int, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.buf.Write(p)
}

func (lc *logCapture) logger() *slog.Logger {
	return slog.New(slog.NewTextHandler(lc, nil))
}

func (lc *logCapture) joined() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.buf.String()
}

func TestSnapshotRestoreResumesWarm(t *testing.T) {
	store := newStoreT(t)

	// Process 1: register, warm the table, snapshot, "die".
	r1 := New()
	r1.SetSnapshotStore(store)
	e1, err := r1.Register("calc", Spec{Source: calcSDF})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := e1.ParseInput("1 + 2 * 3", true); err != nil || !res.Accepted {
		t.Fatalf("warm parse: %v %v", err, res.Accepted)
	}
	warmExpanded := e1.Stats().Counters.StatesExpanded
	if warmExpanded == 0 {
		t.Fatal("warm parse expanded nothing")
	}
	if _, err := r1.SnapshotEntry("calc"); err != nil {
		t.Fatal(err)
	}
	if st := r1.SnapshotStats(); !st.Enabled || st.Saves != 1 || st.LastSaveUnix == 0 {
		t.Errorf("snapshot stats after save: %+v", st)
	}

	// Process 2: same store, same grammar — must resume, not re-earn.
	r2 := New()
	r2.SetSnapshotStore(store)
	e2, err := r2.Register("calc", Spec{Source: calcSDF})
	if err != nil {
		t.Fatal(err)
	}
	st2 := e2.Stats()
	if !st2.Restored {
		t.Fatal("entry did not restore from snapshot")
	}
	if st2.Complete == 0 {
		t.Fatal("restored table has no complete states")
	}
	res, err := e2.ParseInput("1 + 2 * 3", true)
	if err != nil || !res.Accepted || res.Trees != 1 {
		t.Fatalf("parse after restore: %v %+v", err, res)
	}
	// The acceptance criterion: the first parse after restart performs
	// zero lazy state expansions.
	if got := e2.Stats().Counters.StatesExpanded; got != 0 {
		t.Errorf("first parse after restore expanded %d states, want 0", got)
	}
	if r2.SnapshotStats().Restores != 1 {
		t.Errorf("restore not counted: %+v", r2.SnapshotStats())
	}
}

func TestCorruptSnapshotFallsBackCold(t *testing.T) {
	store := newStoreT(t)
	r1 := New()
	r1.SetSnapshotStore(store)
	if _, err := r1.Register("calc", Spec{Source: calcSDF}); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.SnapshotEntry("calc"); err != nil {
		t.Fatal(err)
	}

	// Truncate the snapshot file — a crash mid-disk-write, bit rot, etc.
	path := store.Path("calc")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var lc logCapture
	r2 := New()
	r2.SetSnapshotStore(store)
	r2.SetLogger(lc.logger())
	e, err := r2.Register("calc", Spec{Source: calcSDF})
	if err != nil {
		t.Fatalf("corrupt snapshot must not fail registration: %v", err)
	}
	if e.Stats().Restored {
		t.Error("corrupt snapshot must not restore")
	}
	if !strings.Contains(lc.joined(), "generating cold") {
		t.Errorf("fallback reason not logged: %q", lc.joined())
	}
	if r2.SnapshotStats().Errors != 1 {
		t.Errorf("corruption not counted: %+v", r2.SnapshotStats())
	}
	// The cold entry serves correct parses.
	if res, err := e.ParseInput("1 + 2 * 3", true); err != nil || !res.Accepted || res.Trees != 1 {
		t.Errorf("cold fallback parse: %v %+v", err, res)
	}
}

func TestStaleSnapshotRejectedByHash(t *testing.T) {
	store := newStoreT(t)
	r1 := New()
	r1.SetSnapshotStore(store)
	if _, err := r1.Register("g", Spec{Source: boolSrc}); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.SnapshotEntry("g"); err != nil {
		t.Fatal(err)
	}

	// The "same" grammar name re-registers with different rules: the
	// snapshot is stale and must be rejected, never resolved wrongly.
	var lc logCapture
	r2 := New()
	r2.SetSnapshotStore(store)
	r2.SetLogger(lc.logger())
	e, err := r2.Register("g", Spec{Source: boolSrc + "\nB ::= \"not\" B\n"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Restored {
		t.Error("stale snapshot must not restore")
	}
	if !strings.Contains(lc.joined(), "stale") {
		t.Errorf("rejection not logged: %q", lc.joined())
	}
	if r2.SnapshotStats().Rejected != 1 {
		t.Errorf("rejection not counted: %+v", r2.SnapshotStats())
	}
	if res, err := e.ParseInput("not true", false); err != nil || !res.Accepted {
		t.Errorf("cold entry must serve the new grammar: %v %v", err, res.Accepted)
	}
}

func TestSnapshotEntryErrors(t *testing.T) {
	r := New()
	if _, err := r.SnapshotEntry("x"); !errors.Is(err, ErrNoStore) {
		t.Errorf("no store: %v", err)
	}
	if _, err := r.SnapshotAll(); !errors.Is(err, ErrNoStore) {
		t.Errorf("no store: %v", err)
	}
	r.SetSnapshotStore(newStoreT(t))
	if _, err := r.SnapshotEntry("x"); err == nil || errors.Is(err, ErrNoStore) {
		t.Errorf("unknown entry: %v", err)
	}
	if n, err := r.SnapshotAll(); n != 0 || err != nil {
		t.Errorf("empty registry: %d %v", n, err)
	}
}

func TestSnapshotAllRoundTrip(t *testing.T) {
	store := newStoreT(t)
	r := New()
	r.SetSnapshotStore(store)
	if _, err := r.Register("bool", Spec{Source: boolSrc}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("calc", Spec{Source: calcSDF}); err != nil {
		t.Fatal(err)
	}
	n, err := r.SnapshotAll()
	if n != 2 || err != nil {
		t.Fatalf("snapshot all: %d %v", n, err)
	}
	names, err := store.List()
	if err != nil || strings.Join(names, ",") != "bool,calc" {
		t.Errorf("store contents: %v %v", names, err)
	}
}

func TestAdmissionMaxConcurrentParses(t *testing.T) {
	r := New()
	e, err := r.Register("bool", Spec{Source: boolSrc, Limits: Limits{MaxConcurrentParses: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only slot, then the next parse must be rejected with
	// ErrBusy rather than queue.
	e.inflight.Add(1)
	_, err = e.ParseInput("true", false)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy, got %v", err)
	}
	e.inflight.Add(-1)
	if _, err := e.ParseInput("true", false); err != nil {
		t.Fatalf("slot released, parse must succeed: %v", err)
	}
	st := e.Stats()
	if st.AdmissionRejected != 1 || st.Limits.MaxConcurrentParses != 1 {
		t.Errorf("stats: %+v", st)
	}

	// SDF entries must reject BEFORE the scan phase, which serializes on
	// the entry's scanner — a saturated entry must not queue there.
	sdfEntry, err := r.Register("calc", Spec{Source: calcSDF, Limits: Limits{MaxConcurrentParses: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sdfEntry.inflight.Add(1)
	if _, err := sdfEntry.ParseInput("1 + 2", false); !errors.Is(err, ErrBusy) {
		t.Fatalf("SDF parse with saturated entry: want ErrBusy, got %v", err)
	}
	if _, err := sdfEntry.ParseText("1 + 2", false); !errors.Is(err, ErrBusy) {
		t.Fatalf("ParseText with saturated entry: want ErrBusy, got %v", err)
	}
	sdfEntry.inflight.Add(-1)
	if res, err := sdfEntry.ParseInput("1 + 2", false); err != nil || !res.Accepted {
		t.Fatalf("slot released: %v", err)
	}
}

func TestAdmissionMaxForestNodes(t *testing.T) {
	r := New()
	r.SetDefaultLimits(Limits{MaxForestNodes: 3})
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	// The ambiguous sentence builds a forest beyond the cap.
	_, err = e.ParseInput("true or true or true", true)
	if !errors.Is(err, ErrForestLimit) {
		t.Fatalf("want ErrForestLimit, got %v", err)
	}
	if e.Stats().AdmissionRejected != 1 {
		t.Errorf("rejection not counted: %+v", e.Stats())
	}
	// Registry defaults apply, but explicit spec limits win.
	e2, err := r.Register("roomy", Spec{Source: boolSrc, Limits: Limits{MaxForestNodes: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := e2.ParseInput("true or true or true", true); err != nil || !res.Accepted {
		t.Errorf("roomy entry must accept: %v", err)
	}
}

// TestSnapshotWhileParsingStress runs the full concurrent triangle —
// parsers, a snapshotter on a tight loop, and a writer interleaving
// AddRule/DeleteRule — under -race, and checks the counters add up.
func TestSnapshotWhileParsingStress(t *testing.T) {
	store := newStoreT(t)
	r := New()
	r.SetSnapshotStore(store)
	e, err := r.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}

	const (
		parsers    = 8
		perParser  = 60
		writerIter = 20
	)
	var parses atomic.Uint64
	var snapshots atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Snapshotter: persist the live table as fast as it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := r.SnapshotEntry("bool"); err != nil {
				t.Errorf("snapshot during parse: %v", err)
				return
			}
			snapshots.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	// Writer: interleave rule addition and deletion.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerIter; i++ {
			if _, err := e.AddRulesText(`B ::= "not" B`); err != nil {
				t.Errorf("add: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
			if _, err := e.DeleteRulesText(`B ::= "not" B`); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()

	// Parsers: hammer the shared table.
	inputs := []string{"true", "true or false", "false and true or true", "true or"}
	for i := 0; i < parsers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perParser; j++ {
				in := inputs[(i+j)%len(inputs)]
				if _, err := e.Parse(mustTokens(t, e, in), j%2 == 0); err != nil {
					t.Errorf("parse %q: %v", in, err)
					return
				}
				parses.Add(1)
			}
		}(i)
	}

	// Wait for writer+parsers, then stop the snapshotter.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitParsers := parsers * perParser
	deadline := time.After(30 * time.Second)
	for parses.Load() < uint64(waitParsers) {
		select {
		case <-deadline:
			t.Fatalf("stress timed out at %d/%d parses", parses.Load(), waitParsers)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	<-done

	if snapshots.Load() == 0 {
		t.Error("snapshotter never ran")
	}
	st := e.Stats()
	if st.Counters.ParsesServed != uint64(waitParsers) {
		t.Errorf("ParsesServed %d, want %d", st.Counters.ParsesServed, waitParsers)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight %d after quiesce, want 0", st.Inflight)
	}
	if st.Counters.ActionCalls < st.Counters.CacheHits {
		t.Errorf("counters inconsistent: calls %d < hits %d", st.Counters.ActionCalls, st.Counters.CacheHits)
	}
	// The last snapshot on disk must be valid and restorable.
	r2 := New()
	r2.SetSnapshotStore(store)
	e2, err := r2.Register("bool", Spec{Source: boolSrc})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := e2.ParseInput("true or false", true); err != nil || !res.Accepted {
		t.Errorf("restore after stress: %v", err)
	}
}

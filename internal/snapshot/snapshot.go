// Package snapshot persists parse-table state across process restarts.
//
// The paper's economics depend on the lazily generated parse table being
// an asset: real workloads only ever generate ~60% of it (section 5.2),
// and every parse after the warm-up reuses that frontier for free. A
// service that throws the table away on restart forfeits exactly those
// savings. This package writes per-grammar snapshot files that a
// restarted service loads to resume its lazy frontiers instantly.
//
// A snapshot file is a small envelope around the lr table format:
//
//	ipg-snapshot v1\n
//	{...json header...}\n
//	<payload bytes>
//
// The header carries a grammar hash (so a stale snapshot is rejected
// instead of corrupting a live table), the payload length and a SHA-256
// checksum (so truncation and bit rot are detected), plus descriptive
// metadata for stats endpoints. Files are written atomically — temp file
// in the same directory, fsync, rename — so a crash mid-write leaves the
// previous snapshot intact, never a torn one.
package snapshot

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ipg/internal/grammar"
)

const magic = "ipg-snapshot v1"

// ErrNotFound is returned by Store.Load when no snapshot exists for the
// requested name.
var ErrNotFound = errors.New("snapshot: not found")

// ErrCorrupt wraps integrity failures: truncated payloads, checksum
// mismatches, malformed headers. Callers fall back to cold generation.
var ErrCorrupt = errors.New("snapshot: corrupt")

// ErrGrammarMismatch is returned by Meta.ValidateFor when the snapshot
// was taken from a different grammar than the one being registered.
var ErrGrammarMismatch = errors.New("snapshot: grammar hash mismatch")

// Meta is the snapshot header: everything needed to validate the payload
// before trusting it, plus descriptive fields for stats.
type Meta struct {
	// Name is the registry name the snapshot was taken under.
	Name string `json:"name"`
	// Form is the source form ("rules", "sdf") of the entry.
	Form string `json:"form,omitempty"`
	// Version is the entry's grammar revision at snapshot time.
	Version uint64 `json:"version"`
	// GrammarHash fingerprints the rule set (see Hash); a snapshot only
	// restores onto a grammar with the same hash.
	GrammarHash string `json:"grammar_hash"`
	// CreatedUnix is the snapshot time (seconds).
	CreatedUnix int64 `json:"created_unix"`
	// PayloadLen and PayloadSHA256 guard the payload against truncation
	// and corruption. Both describe the stored (possibly compressed)
	// bytes, so integrity is checked before any decompression runs.
	PayloadLen    int    `json:"payload_len"`
	PayloadSHA256 string `json:"payload_sha256"`
	// Encoding is how the stored payload bytes are wrapped: "" for raw,
	// "gzip" for a gzip-compressed table. Decode resolves it
	// transparently — Snapshot.Payload is always the raw table.
	Encoding string `json:"encoding,omitempty"`
	// States/Complete describe the table at snapshot time (for stats).
	States   int `json:"states"`
	Complete int `json:"complete"`
}

// ValidateFor checks that the snapshot was taken from g's exact rule
// set. A mismatch means the grammar changed between sessions; restoring
// would corrupt the table, so callers must generate cold instead.
func (m Meta) ValidateFor(g *grammar.Grammar) error {
	if h := Hash(g); h != m.GrammarHash {
		return fmt.Errorf("%w: snapshot %s, grammar %s", ErrGrammarMismatch, short(m.GrammarHash), short(h))
	}
	return nil
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// Snapshot is one persisted table: validated header plus the serialized
// lr automaton (the payload lr.Load reads).
type Snapshot struct {
	Meta
	Payload []byte
}

// Hash fingerprints a grammar's observable rule set: the start symbol
// and the sorted rule renderings. Two grammars with the same hash accept
// the same language with the same rule identities, which is exactly the
// condition under which a saved table resolves correctly at load time.
func Hash(g *grammar.Grammar) string {
	h := sha256.New()
	io.WriteString(h, g.Symbols().Name(g.Start()))
	io.WriteString(h, "\x00")
	for _, r := range g.SortedRuleStrings() {
		io.WriteString(h, r)
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Encode writes the envelope: magic, header line, payload. The header's
// integrity fields are computed here, so callers only fill the
// descriptive ones. Setting snap.Encoding to "gzip" compresses the
// payload on the way out (snap.Payload itself stays the raw table);
// Decode undoes it transparently.
func Encode(w io.Writer, snap *Snapshot) error {
	m := snap.Meta
	stored := snap.Payload
	switch m.Encoding {
	case "":
	case "gzip":
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(snap.Payload); err != nil {
			return fmt.Errorf("snapshot: gzip: %w", err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("snapshot: gzip: %w", err)
		}
		stored = buf.Bytes()
	default:
		return fmt.Errorf("snapshot: unknown payload encoding %q", m.Encoding)
	}
	m.PayloadLen = len(stored)
	sum := sha256.Sum256(stored)
	m.PayloadSHA256 = hex.EncodeToString(sum[:])
	header, err := json.Marshal(m)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, magic)
	bw.Write(header)
	bw.WriteByte('\n')
	bw.Write(stored)
	return bw.Flush()
}

// Decode reads and verifies an envelope: magic, header syntax, payload
// length and checksum. Any integrity failure is reported as ErrCorrupt
// so callers can distinguish "broken file" from "wrong grammar".
func Decode(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	magicLine, err := br.ReadString('\n')
	if err != nil || strings.TrimRight(magicLine, "\n") != magic {
		return nil, fmt.Errorf("%w: missing %q header", ErrCorrupt, magic)
	}
	headerLine, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	var m Meta
	if err := json.Unmarshal(bytes.TrimRight(headerLine, "\n"), &m); err != nil {
		return nil, fmt.Errorf("%w: bad header: %v", ErrCorrupt, err)
	}
	payload, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCorrupt, err)
	}
	if len(payload) != m.PayloadLen {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d (truncated?)", ErrCorrupt, len(payload), m.PayloadLen)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != m.PayloadSHA256 {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	// Integrity holds for the stored bytes; only now undo the encoding.
	switch m.Encoding {
	case "":
	case "gzip":
		zr, err := gzip.NewReader(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("%w: gzip header: %v", ErrCorrupt, err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("%w: gzip payload: %v", ErrCorrupt, err)
		}
		payload = raw
	default:
		return nil, fmt.Errorf("%w: unknown payload encoding %q", ErrCorrupt, m.Encoding)
	}
	return &Snapshot{Meta: m, Payload: payload}, nil
}

// Store manages the snapshot files of one directory, one file per
// grammar name. All methods are safe for concurrent use by multiple
// goroutines (atomic rename is the only mutation).
type Store struct {
	dir string
	// gzip compresses payloads written by Save (SetGzip). Loading is
	// always transparent: the envelope's encoding flag decides.
	gzip bool
}

// SetGzip makes Save gzip-compress table payloads. Reads stay
// transparent either way (the envelope records the encoding), so a
// directory may mix compressed and raw snapshots freely — e.g. after
// toggling the flag across restarts. Call before serving traffic.
func (st *Store) SetGzip(on bool) { st.gzip = on }

// NewStore opens (creating if needed) a snapshot directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("snapshot: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

const fileExt = ".ipgsnap"

// Path returns the file path a grammar name maps to. Names are
// percent-escaped so arbitrary registry names (slashes, dots, spaces)
// produce exactly one safe filename each.
func (st *Store) Path(name string) string {
	return filepath.Join(st.dir, url.PathEscape(name)+fileExt)
}

// Save writes a snapshot atomically: temp file in the same directory,
// fsync, rename over the previous file. A crash at any point leaves
// either the old snapshot or the new one — never a torn file.
func (st *Store) Save(snap *Snapshot) error {
	if st.gzip && snap.Encoding == "" {
		// Don't mutate the caller's snapshot; the encoding is a property
		// of this store's files, not of the table.
		compressed := *snap
		compressed.Encoding = "gzip"
		snap = &compressed
	}
	tmp, err := os.CreateTemp(st.dir, ".tmp-*"+fileExt)
	if err != nil {
		return fmt.Errorf("snapshot: save %q: %w", snap.Name, err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := Encode(tmp, snap); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: save %q: %w", snap.Name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: save %q: %w", snap.Name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: save %q: %w", snap.Name, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("snapshot: save %q: %w", snap.Name, err)
	}
	if err := os.Rename(tmp.Name(), st.Path(snap.Name)); err != nil {
		return fmt.Errorf("snapshot: save %q: %w", snap.Name, err)
	}
	return nil
}

// Load reads and verifies the snapshot for name. It returns ErrNotFound
// when no file exists and wraps ErrCorrupt on any integrity failure.
func (st *Store) Load(name string) (*Snapshot, error) {
	f, err := os.Open(st.Path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: load %q: %w", name, err)
	}
	defer f.Close()
	snap, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load %q: %w", name, err)
	}
	return snap, nil
}

// Remove deletes the snapshot for name, reporting whether one existed.
func (st *Store) Remove(name string) bool {
	return os.Remove(st.Path(name)) == nil
}

// GC compacts the directory: every snapshot file whose grammar name is
// not in keep is removed, and the removed names are returned. Long-lived
// directories otherwise accumulate envelopes for grammars that were
// unregistered, renamed, or belonged to departed tenants. Foreign files
// (wrong extension, temp files, undecodable names) are never touched.
func (st *Store) GC(keep []string) (removed []string, err error) {
	names, err := st.List()
	if err != nil {
		return nil, err
	}
	keepSet := make(map[string]bool, len(keep))
	for _, name := range keep {
		keepSet[name] = true
	}
	for _, name := range names {
		if keepSet[name] {
			continue
		}
		if rmErr := os.Remove(st.Path(name)); rmErr != nil && !errors.Is(rmErr, fs.ErrNotExist) {
			// Keep sweeping; report the first failure at the end.
			if err == nil {
				err = fmt.Errorf("snapshot: gc %q: %w", name, rmErr)
			}
			continue
		}
		removed = append(removed, name)
	}
	return removed, err
}

// List returns the names with a snapshot file, sorted.
func (st *Store) List() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var names []string
	for _, e := range entries {
		base := e.Name()
		if e.IsDir() || !strings.HasSuffix(base, fileExt) || strings.HasPrefix(base, ".tmp-") {
			continue
		}
		name, err := url.PathUnescape(strings.TrimSuffix(base, fileExt))
		if err != nil {
			continue // foreign file; not ours
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Now is the clock Save headers use; tests may override CreatedUnix
// directly instead.
func Now() int64 { return time.Now().Unix() }

package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipg/internal/grammar"
)

func testGrammar(t *testing.T) *grammar.Grammar {
	t.Helper()
	g, err := grammar.Parse(`
START ::= B
B ::= "true" | "false"
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testSnap(name string, payload string) *Snapshot {
	return &Snapshot{
		Meta:    Meta{Name: name, Form: "rules", Version: 1, GrammarHash: "abc", CreatedUnix: Now()},
		Payload: []byte(payload),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap := testSnap("calc", "ipg-table v2\nstart 0\n")
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "calc" || got.Version != 1 || got.GrammarHash != "abc" {
		t.Errorf("meta mangled: %+v", got.Meta)
	}
	if string(got.Payload) != string(snap.Payload) {
		t.Errorf("payload mangled: %q", got.Payload)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	snap := testSnap("x", strings.Repeat("payload line\n", 20))
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	for name, mangle := range map[string]func([]byte) []byte{
		"truncated payload": func(b []byte) []byte { return b[:len(b)-7] },
		"flipped bit":       func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-3] ^= 0x40; return c },
		"bad magic":         func(b []byte) []byte { return append([]byte("nope\n"), b...) },
		"no header":         func(b []byte) []byte { return []byte(magic + "\n") },
		"garbage header":    func(b []byte) []byte { return []byte(magic + "\n{not json\n") },
	} {
		t.Run(name, func(t *testing.T) {
			_, err := Decode(bytes.NewReader(mangle(whole)))
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("want ErrCorrupt, got %v", err)
			}
		})
	}
}

func TestStoreSaveLoad(t *testing.T) {
	st, err := NewStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap("calc", "table bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("calc")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "table bytes" {
		t.Errorf("payload: %q", got.Payload)
	}
	if _, err := st.Load("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing snapshot: %v", err)
	}
	// Atomic write leaves no temp files behind.
	entries, _ := os.ReadDir(st.Dir())
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	// Overwrite replaces, List sees one name.
	if err := st.Save(testSnap("calc", "newer bytes")); err != nil {
		t.Fatal(err)
	}
	got, _ = st.Load("calc")
	if string(got.Payload) != "newer bytes" {
		t.Errorf("overwrite lost: %q", got.Payload)
	}
	names, err := st.List()
	if err != nil || len(names) != 1 || names[0] != "calc" {
		t.Errorf("list: %v %v", names, err)
	}
	if !st.Remove("calc") || st.Remove("calc") {
		t.Error("remove semantics")
	}
}

func TestStoreEscapesNames(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	weird := "team/x grammar..v2"
	if err := st.Save(testSnap(weird, "p")); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(st.Path(weird)), "team%2F") {
		t.Errorf("path not escaped: %s", st.Path(weird))
	}
	if _, err := st.Load(weird); err != nil {
		t.Fatal(err)
	}
	names, _ := st.List()
	if len(names) != 1 || names[0] != weird {
		t.Errorf("list round-trip: %v", names)
	}
}

func TestGrammarHash(t *testing.T) {
	g1 := testGrammar(t)
	g2 := testGrammar(t)
	if Hash(g1) != Hash(g2) {
		t.Error("identical grammars must hash equal")
	}
	m := Meta{GrammarHash: Hash(g1)}
	if err := m.ValidateFor(g2); err != nil {
		t.Errorf("validate: %v", err)
	}
	// A rule change must change the hash.
	tmp, err := grammar.Parse(`B ::= "maybe"`, g2.Symbols())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tmp.Rules() {
		if err := g2.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	if Hash(g1) == Hash(g2) {
		t.Error("modified grammar must hash differently")
	}
	if err := m.ValidateFor(g2); !errors.Is(err, ErrGrammarMismatch) {
		t.Errorf("want ErrGrammarMismatch, got %v", err)
	}
}

func TestCorruptFileOnDisk(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap("g", strings.Repeat("x", 100))); err != nil {
		t.Fatal(err)
	}
	path := st.Path("g")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("g"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated file: want ErrCorrupt, got %v", err)
	}
}

func TestGzipEncodingRoundTrip(t *testing.T) {
	// A compressible payload so the size win is observable.
	payload := strings.Repeat("state 12 shift 34 reduce 56\n", 512)
	snap := testSnap("calc", payload)
	snap.Encoding = "gzip"

	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= len(payload) {
		t.Errorf("gzip envelope is %d bytes for a %d-byte payload", buf.Len(), len(payload))
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Encoding != "gzip" {
		t.Errorf("Encoding = %q, want gzip", got.Encoding)
	}
	if string(got.Payload) != payload {
		t.Error("gzip round trip mangled the payload")
	}
	// The caller's snapshot stays raw.
	if string(snap.Payload) != payload {
		t.Error("Encode mutated the caller's payload")
	}
}

func TestStoreGzipTransparentLoad(t *testing.T) {
	dir := t.TempDir()
	stRaw, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	stGz, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	stGz.SetGzip(true)

	payload := strings.Repeat("transition 7 -> 9 on EXP\n", 256)
	if err := stRaw.Save(testSnap("raw", payload)); err != nil {
		t.Fatal(err)
	}
	if err := stGz.Save(testSnap("gz", payload)); err != nil {
		t.Fatal(err)
	}

	rawInfo, err := os.Stat(stRaw.Path("raw"))
	if err != nil {
		t.Fatal(err)
	}
	gzInfo, err := os.Stat(stGz.Path("gz"))
	if err != nil {
		t.Fatal(err)
	}
	if gzInfo.Size() >= rawInfo.Size() {
		t.Errorf("gzip file %d bytes >= raw file %d bytes", gzInfo.Size(), rawInfo.Size())
	}

	// A mixed directory loads transparently through either store.
	for _, name := range []string{"raw", "gz"} {
		got, err := stRaw.Load(name)
		if err != nil {
			t.Fatalf("Load(%q): %v", name, err)
		}
		if string(got.Payload) != payload {
			t.Errorf("Load(%q) mangled the payload", name)
		}
	}
}

func TestDecodeRejectsUnknownEncoding(t *testing.T) {
	snap := testSnap("calc", "payload")
	snap.Encoding = "zstd"
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err == nil {
		t.Fatal("Encode accepted an unknown encoding")
	}
}

func TestStoreGC(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "tenant/c"} {
		if err := st.Save(testSnap(name, "payload")); err != nil {
			t.Fatal(err)
		}
	}
	// Foreign files must survive the sweep.
	foreign := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(foreign, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := st.GC([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("GC removed %v, want b and tenant/c", removed)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("store holds %v after GC, want [a]", names)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("GC touched a foreign file: %v", err)
	}

	// GC with everything kept is a no-op.
	removed, err = st.GC([]string{"a"})
	if err != nil || len(removed) != 0 {
		t.Fatalf("idempotent GC removed %v, err %v", removed, err)
	}
}

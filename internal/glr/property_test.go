package glr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// Property: the copying engine (the paper's PAR-PARSE) and the GSS engine
// accept the same sentences and represent the same number of parse trees,
// whenever the copying engine terminates within budget.
func TestEnginesEquivalentOnRandomGrammars(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grammar.Random(grammar.RandConfig{
			Nonterminals: 3, Terminals: 3, Rules: 6, EpsilonProb: 0.1,
		}, rng)
		auto := lr.New(g)
		auto.GenerateAll()
		for i := 0; i < 6; i++ {
			var input []grammar.Symbol
			if sent, ok := g.RandomSentence(rng, 6); ok && rng.Intn(2) == 0 {
				input = sent
			} else {
				terms := g.Symbols().Terminals()
				for j := 0; j < rng.Intn(5); j++ {
					s := terms[rng.Intn(len(terms))]
					if s != grammar.EOF {
						input = append(input, s)
					}
				}
			}
			resC, err := Parse(auto, input, &Options{Engine: Copying, MaxReductions: 1 << 16})
			if errors.Is(err, ErrNotFinitelyAmbiguous) {
				continue // cyclic grammar: outside the copying class
			}
			if err != nil {
				t.Fatalf("seed %d copying: %v", seed, err)
			}
			resG, err := Parse(auto, input, &Options{Engine: GSS})
			if err != nil {
				t.Fatalf("seed %d gss: %v", seed, err)
			}
			if resC.Accepted != resG.Accepted {
				t.Fatalf("seed %d: copying=%v gss=%v on %s\n%s",
					seed, resC.Accepted, resG.Accepted,
					g.Symbols().NamesOf(input), g.String())
			}
			if !resC.Accepted {
				continue
			}
			nc, errC := forest.TreeCount(resC.Root)
			ng, errG := forest.TreeCount(resG.Root)
			if errC != nil || errG != nil {
				continue // cyclic forests have no finite count
			}
			if nc != ng {
				t.Fatalf("seed %d: tree counts differ: copying=%d gss=%d on %s\n%s",
					seed, nc, ng, g.Symbols().NamesOf(input), g.String())
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every accepted parse's forest yields the input sentence.
func TestYieldProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grammar.Random(grammar.RandConfig{
			Nonterminals: 3, Terminals: 3, Rules: 6,
		}, rng)
		auto := lr.New(g)
		auto.GenerateAll()
		sent, ok := g.RandomSentence(rng, 7)
		if !ok {
			return true
		}
		res, err := Parse(auto, sent, &Options{Engine: GSS})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Accepted {
			t.Fatalf("seed %d: generated sentence rejected: %s\n%s",
				seed, g.Symbols().NamesOf(sent), g.String())
		}
		if res.Root == nil {
			return true // empty sentence of a nullable start: no tree root
		}
		y, err := forest.Yield(res.Root)
		if err != nil {
			return true // cyclic forest
		}
		if len(y) != len(sent) {
			t.Fatalf("seed %d: yield %s != input %s",
				seed, g.Symbols().NamesOf(y), g.Symbols().NamesOf(sent))
		}
		for i := range y {
			if y[i] != sent[i] {
				t.Fatalf("seed %d: yield %s != input %s",
					seed, g.Symbols().NamesOf(y), g.Symbols().NamesOf(sent))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: error positions are meaningful — rejected inputs report a
// position no later than the input length (the $ slot) and, for inputs
// with a valid prefix, at least the length of that prefix.
func TestErrorPosProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grammar.Random(grammar.RandConfig{
			Nonterminals: 3, Terminals: 3, Rules: 6,
		}, rng)
		auto := lr.New(g)
		auto.GenerateAll()
		terms := g.Symbols().Terminals()
		var input []grammar.Symbol
		for j := 0; j < rng.Intn(6); j++ {
			s := terms[rng.Intn(len(terms))]
			if s != grammar.EOF {
				input = append(input, s)
			}
		}
		res, err := Parse(auto, input, &Options{Engine: GSS})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Accepted {
			return res.ErrorPos == -1
		}
		return res.ErrorPos >= 0 && res.ErrorPos <= len(input)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package glr

import (
	"errors"
	"strings"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

func boolTable(t *testing.T) lr.Table {
	t.Helper()
	a := lr.New(fixtures.Booleans())
	a.GenerateAll()
	return a
}

func engines() []Engine { return []Engine{Copying, GSS} }

func TestAcceptSimple(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	for _, e := range engines() {
		for _, tc := range []struct {
			input string
			want  bool
		}{
			{"true", true},
			{"false", true},
			{"true or false", true},
			{"true and true and false", true},
			{"true or", false},
			{"or true", false},
			{"", false},
			{"true true", false},
		} {
			got, err := Recognize(tbl, fixtures.Tokens(g, tc.input), e)
			if err != nil {
				t.Fatalf("%v %q: %v", e, tc.input, err)
			}
			if got != tc.want {
				t.Errorf("%v Recognize(%q) = %v, want %v", e, tc.input, got, tc.want)
			}
		}
	}
}

func TestDeterministicEngine(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	res, err := Parse(tbl, fixtures.Tokens(g, "true or false"), &Options{Engine: Deterministic})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !res.Accepted {
		t.Fatal("should accept 'true or false'")
	}
	// A path through a conflict cell fails with ErrNondeterministic.
	_, err = Parse(tbl, fixtures.Tokens(g, "true or true or true"), &Options{Engine: Deterministic})
	if !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("want ErrNondeterministic, got %v", err)
	}
}

// TestFig42Trace replays the parsing of 'true or false' (Fig 4.2) and
// checks the parser's moves through the graph of item sets.
func TestFig42Trace(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	var ops []string
	_, err := Parse(tbl, fixtures.Tokens(g, "true or false"), &Options{
		Engine: Deterministic,
		Trace: func(ev Event) {
			if ev.Op == "reduce" {
				ops = append(ops, "reduce:"+ev.Rule.String(g.Symbols()))
				return
			}
			ops = append(ops, ev.Op)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"shift",             // true
		"reduce:B ::= true", // on or
		"goto",
		"shift",              // or
		"shift",              // false
		"reduce:B ::= false", // on $
		"goto",
		"reduce:B ::= B or B", // on $
		"goto",
		"accept",
	}
	if strings.Join(ops, "|") != strings.Join(want, "|") {
		t.Errorf("trace mismatch:\n got %v\nwant %v", ops, want)
	}
}

func TestParseTreeSimple(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	for _, e := range engines() {
		res, err := Parse(tbl, fixtures.Tokens(g, "true or false"), &Options{Engine: e})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if res.Root == nil {
			t.Fatalf("%v: no tree", e)
		}
		got := forest.String(res.Root, g.Symbols())
		if got != "B(B(true) or B(false))" {
			t.Errorf("%v: tree = %s", e, got)
		}
		n, err := forest.TreeCount(res.Root)
		if err != nil || n != 1 {
			t.Errorf("%v: TreeCount = %d, %v", e, n, err)
		}
	}
}

func TestAmbiguityBothEngines(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	// 'true or true or true': two parses (left- and right-associated).
	for _, e := range engines() {
		res, err := Parse(tbl, fixtures.Tokens(g, "true or true or true"), &Options{Engine: e})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if !res.Accepted {
			t.Fatalf("%v: rejected", e)
		}
		n, err := forest.TreeCount(res.Root)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if n != 2 {
			t.Errorf("%v: TreeCount = %d, want 2\n%s", e, n, forest.String(res.Root, g.Symbols()))
		}
	}
}

func TestAmbiguityCountCatalan(t *testing.T) {
	// A chain of n 'or's has Catalan(n) parses: 1, 2, 5, 14.
	tbl := boolTable(t)
	g := tbl.Grammar()
	catalan := []int64{1, 1, 2, 5, 14, 42}
	for n := 1; n <= 5; n++ {
		input := "true" + strings.Repeat(" or true", n)
		for _, e := range engines() {
			res, err := Parse(tbl, fixtures.Tokens(g, input), &Options{Engine: e})
			if err != nil {
				t.Fatalf("%v n=%d: %v", e, n, err)
			}
			c, err := forest.TreeCount(res.Root)
			if err != nil {
				t.Fatalf("%v n=%d: %v", e, n, err)
			}
			if c != catalan[n] {
				t.Errorf("%v: %d ors -> %d trees, want %d", e, n, c, catalan[n])
			}
		}
	}
}

func TestGSSSharingBeatsCopying(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	input := "true" + strings.Repeat(" or true", 8)
	toks := fixtures.Tokens(g, input)
	// The copying engine is exponential here (Catalan(8) = 1430 parses);
	// give it an explicit budget well above the default.
	resCopy, err := Parse(tbl, toks, &Options{Engine: Copying, MaxReductions: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	resGSS, err := Parse(tbl, toks, &Options{Engine: GSS})
	if err != nil {
		t.Fatal(err)
	}
	cc, _ := forest.TreeCount(resCopy.Root)
	cg, _ := forest.TreeCount(resGSS.Root)
	if cc != cg {
		t.Fatalf("tree counts differ: copying %d, gss %d", cc, cg)
	}
	if resGSS.Stats.Reduces >= resCopy.Stats.Reduces {
		t.Errorf("GSS should perform fewer reduces: gss %d, copying %d",
			resGSS.Stats.Reduces, resCopy.Stats.Reduces)
	}
}

func TestEpsilonGrammar(t *testing.T) {
	g := grammar.MustParse(`
START ::= A B
A ::= "a" | ε
B ::= "b"
`)
	a := lr.New(g)
	a.GenerateAll()
	for _, e := range engines() {
		for _, tc := range []struct {
			input string
			want  bool
		}{
			{"a b", true},
			{"b", true},
			{"a", false},
			{"", false},
		} {
			got, err := Recognize(a, fixtures.Tokens(g, tc.input), e)
			if err != nil {
				t.Fatalf("%v %q: %v", e, tc.input, err)
			}
			if got != tc.want {
				t.Errorf("%v Recognize(%q) = %v, want %v", e, tc.input, got, tc.want)
			}
		}
	}
}

func TestNullableStart(t *testing.T) {
	g := grammar.MustParse(`
START ::= A
A ::= ε | "x" A
`)
	a := lr.New(g)
	a.GenerateAll()
	for _, e := range engines() {
		got, err := Recognize(a, nil, e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if !got {
			t.Errorf("%v: empty sentence should be accepted", e)
		}
		got, err = Recognize(a, fixtures.Tokens(g, "x x x"), e)
		if err != nil || !got {
			t.Errorf("%v: 'x x x' should be accepted (err %v)", e, err)
		}
	}
}

func TestHiddenLeftRecursion(t *testing.T) {
	// A classic hard case for GLR implementations: nullable B hides the
	// left recursion of S.
	g := grammar.MustParse(`
START ::= S
S ::= B S "a" | "a"
B ::= ε
`)
	a := lr.New(g)
	a.GenerateAll()
	for _, input := range []string{"a", "a a", "a a a a"} {
		got, err := Recognize(a, fixtures.Tokens(g, input), GSS)
		if err != nil {
			t.Fatalf("GSS %q: %v", input, err)
		}
		if !got {
			t.Errorf("GSS should accept %q", input)
		}
	}
	if got, err := Recognize(a, fixtures.Tokens(g, "a a"), GSS); err != nil || !got {
		t.Errorf("GSS 'a a': %v %v", got, err)
	}
}

func TestCyclicGrammar(t *testing.T) {
	g := grammar.MustParse(`
START ::= A
A ::= A | "x"
`)
	a := lr.New(g)
	a.GenerateAll()

	// The copying engine spins on the unit cycle and trips its budget.
	_, err := Parse(a, fixtures.Tokens(g, "x"), &Options{Engine: Copying})
	if !errors.Is(err, ErrNotFinitelyAmbiguous) {
		t.Fatalf("copying engine: want ErrNotFinitelyAmbiguous, got %v", err)
	}

	// The GSS engine terminates, accepts, and produces a cyclic forest.
	res, err := Parse(a, fixtures.Tokens(g, "x"), &Options{Engine: GSS})
	if err != nil {
		t.Fatalf("GSS: %v", err)
	}
	if !res.Accepted {
		t.Fatal("GSS should accept 'x'")
	}
	if _, err := forest.TreeCount(res.Root); !errors.Is(err, forest.ErrCyclic) {
		t.Errorf("TreeCount of cyclic forest: want ErrCyclic, got %v", err)
	}
}

func TestInputValidation(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	b, _ := g.Symbols().Lookup("B")
	if _, err := Parse(tbl, []grammar.Symbol{b}, nil); err == nil {
		t.Error("nonterminal in input should be rejected")
	}
	tr, _ := g.Symbols().Lookup("true")
	if _, err := Parse(tbl, []grammar.Symbol{grammar.EOF, tr}, nil); err == nil {
		t.Error("$ before end of input should be rejected")
	}
	// Explicit trailing $ is allowed.
	if res, err := Parse(tbl, []grammar.Symbol{tr, grammar.EOF}, nil); err != nil || !res.Accepted {
		t.Errorf("explicit $ termination failed: %v %v", res.Accepted, err)
	}
}

func TestDisableTrees(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	for _, e := range engines() {
		res, err := Parse(tbl, fixtures.Tokens(g, "true or false"), &Options{Engine: e, DisableTrees: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted || res.Root != nil {
			t.Errorf("%v: DisableTrees gave Accepted=%v Root=%v", e, res.Accepted, res.Root)
		}
	}
}

func TestYieldMatchesInput(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	input := fixtures.Tokens(g, "true and false or true")
	for _, e := range engines() {
		res, err := Parse(tbl, input, &Options{Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		y, err := forest.Yield(res.Root)
		if err != nil {
			t.Fatal(err)
		}
		if len(y) != len(input) {
			t.Fatalf("%v: yield length %d, want %d", e, len(y), len(input))
		}
		for i := range y {
			if y[i] != input[i] {
				t.Errorf("%v: yield[%d] = %s, want %s", e, i,
					g.Symbols().Name(y[i]), g.Symbols().Name(input[i]))
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	res, err := Parse(tbl, fixtures.Tokens(g, "true or true or true"), &Options{Engine: Copying})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Shifts == 0 || res.Stats.Reduces == 0 || res.Stats.Copies == 0 {
		t.Errorf("copying stats not populated: %+v", res.Stats)
	}
	if res.Stats.MaxParsers < 2 {
		t.Errorf("ambiguous parse should split parsers: MaxParsers = %d", res.Stats.MaxParsers)
	}
	res, err = Parse(tbl, fixtures.Tokens(g, "true or true"), &Options{Engine: GSS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Nodes == 0 || res.Stats.Edges == 0 {
		t.Errorf("gss stats not populated: %+v", res.Stats)
	}
}

func TestUnknownEngine(t *testing.T) {
	tbl := boolTable(t)
	if _, err := Parse(tbl, nil, &Options{Engine: Engine(99)}); err == nil {
		t.Error("unknown engine should error")
	}
}

func TestRejectionProducesNoRoot(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	for _, e := range engines() {
		res, err := Parse(tbl, fixtures.Tokens(g, "true or"), &Options{Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted || res.Root != nil {
			t.Errorf("%v: rejection should produce no root", e)
		}
	}
}

package glr

import (
	"sort"
	"sync"

	"ipg/internal/forest"
	"ipg/internal/lr"
)

// Workspace is the reusable per-parse scratch of the parsing engines:
// GSS node and edge arenas, the dense state-indexed frontier pair, the
// pending-reduction stack, path-enumeration buffers, the action buffer
// driven through lr.Table.AppendActions, and the deterministic driver's
// stack. On a warm (already-expanded) table a parse that reuses a
// Workspace does no heap allocation in its token loop.
//
// A Workspace may be used by one parse at a time. Callers either supply
// one through Options.Workspace (and own its lifetime — e.g. one per
// worker goroutine, or checked out of their own pool), or leave it nil
// and the engines borrow one from an internal sync.Pool.
type Workspace struct {
	front, next frontierBuf
	nodes       nodeArena
	edges       edgeArena

	work     []pendingReduce
	paths    []gssPath
	children []*forest.Node
	labels   []*forest.Node
	actions  []lr.Action

	lastStates  []*lr.State
	acceptNodes []*gssNode

	// detStack is the deterministic LR-PARSE driver's stack (states and
	// attached forest nodes), reused across parses.
	detStack []detEntry
	// stackIDs renders the deterministic driver's trace events.
	stackIDs []int
}

// detEntry is one cell of the deterministic driver's stack.
type detEntry struct {
	state *lr.State
	node  *forest.Node
}

// begin readies the workspace for one parse: arenas rewind, buffers
// truncate. Capacities are kept, so steady-state reuse allocates
// nothing.
func (w *Workspace) begin() {
	w.nodes.reset()
	w.edges.reset()
	w.work = w.work[:0]
	w.paths = w.paths[:0]
	w.children = w.children[:0]
	w.labels = w.labels[:0]
	w.actions = w.actions[:0]
	w.lastStates = w.lastStates[:0]
	w.acceptNodes = w.acceptNodes[:0]
	w.detStack = w.detStack[:0]
}

// scrub drops every reference to memory the workspace does not own
// (table states, forest nodes, grammar rules), so a pooled workspace
// cannot pin a forest or a retired table between parses. Internal
// capacities (arenas, buffers, per-node edge slices) are kept.
func (w *Workspace) scrub() {
	w.nodes.scrub()
	w.edges.scrub()
	clear(w.work[:cap(w.work)])
	clear(w.children[:cap(w.children)])
	clear(w.labels[:cap(w.labels)])
	clear(w.actions[:cap(w.actions)])
	clear(w.lastStates[:cap(w.lastStates)])
	clear(w.detStack[:cap(w.detStack)])
	w.work = w.work[:0]
	w.children = w.children[:0]
	w.labels = w.labels[:0]
	w.actions = w.actions[:0]
	w.lastStates = w.lastStates[:0]
	w.detStack = w.detStack[:0]
}

// wsPool recycles workspaces for callers that do not manage their own.
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// workspaceFor resolves the workspace for one parse: the caller's, or a
// pooled one (pooled reports which; pooled workspaces are scrubbed and
// returned through releaseWorkspace).
func (o *Options) workspaceFor() (w *Workspace, pooled bool) {
	if o != nil && o.Workspace != nil {
		return o.Workspace, false
	}
	return wsPool.Get().(*Workspace), true
}

func releaseWorkspace(w *Workspace) {
	w.scrub()
	wsPool.Put(w)
}

// frontierBuf is a dense state-indexed frontier: membership is one
// bounds-checked load instead of a map probe, and the structure is
// reused across tokens and parses via a generation stamp (no clearing
// between sweeps). order keeps the deterministic iteration the engines
// rely on (ascending state ID), maintained by sorted insertion.
type frontierBuf struct {
	byState []*gssNode
	mark    []uint32
	gen     uint32
	order   []*gssNode
}

func (f *frontierBuf) reset() {
	f.gen++
	if f.gen == 0 {
		// Stamp wrapped: invalidate every slot once, then restart at 1.
		clear(f.mark)
		f.gen = 1
	}
	f.order = f.order[:0]
}

func (f *frontierBuf) get(s *lr.State) *gssNode {
	if id := s.ID; id < len(f.mark) && f.mark[id] == f.gen {
		return f.byState[id]
	}
	return nil
}

func (f *frontierBuf) add(n *gssNode) {
	id := n.state.ID
	if id >= len(f.mark) {
		f.grow(id + 1)
	}
	f.byState[id] = n
	f.mark[id] = f.gen
	// Insert keeping order sorted by state ID (IDs are unique within a
	// frontier, so strict search is enough).
	i := sort.Search(len(f.order), func(i int) bool { return f.order[i].state.ID > id })
	f.order = append(f.order, nil)
	copy(f.order[i+1:], f.order[i:])
	f.order[i] = n
}

func (f *frontierBuf) grow(n int) {
	size := 2 * len(f.mark)
	if size < n {
		size = n
	}
	if size < 64 {
		size = 64
	}
	byState := make([]*gssNode, size)
	mark := make([]uint32, size)
	copy(byState, f.byState)
	copy(mark, f.mark)
	f.byState, f.mark = byState, mark
}

func (f *frontierBuf) len() int { return len(f.order) }

// gssChunk is the GSS arena block size: blocks live for the workspace's
// lifetime and are rewound per parse, so block count tracks the peak
// frontier, not the input length.
const gssChunk = 64

// nodeArena hands out gssNodes from reusable fixed-size blocks. Element
// addresses are stable (blocks never reallocate), which the engines
// require: frontier entries and edges hold node pointers.
type nodeArena struct {
	chunks [][]gssNode
	n      int
}

func (a *nodeArena) get(s *lr.State) *gssNode {
	ci, off := a.n/gssChunk, a.n%gssChunk
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]gssNode, gssChunk))
	}
	a.n++
	nd := &a.chunks[ci][off]
	nd.state = s
	nd.edges = nd.edges[:0] // keep capacity: steady-state reuse is allocation-free
	return nd
}

func (a *nodeArena) reset() { a.n = 0 }

func (a *nodeArena) scrub() {
	for i := 0; i < a.n; i++ {
		nd := &a.chunks[i/gssChunk][i%gssChunk]
		nd.state = nil
		clear(nd.edges[:cap(nd.edges)])
		nd.edges = nd.edges[:0]
	}
}

// edgeArena is the same scheme for gssEdges; stable addresses matter
// because edge identity (the Nozohoor-Farshi mustUse restriction and
// ambiguity packing) is pointer identity.
type edgeArena struct {
	chunks [][]gssEdge
	n      int
}

func (a *edgeArena) get(to *gssNode, label *forest.Node) *gssEdge {
	ci, off := a.n/gssChunk, a.n%gssChunk
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]gssEdge, gssChunk))
	}
	a.n++
	e := &a.chunks[ci][off]
	e.to = to
	e.label = label
	return e
}

func (a *edgeArena) reset() { a.n = 0 }

func (a *edgeArena) scrub() {
	for i := 0; i < a.n; i++ {
		e := &a.chunks[i/gssChunk][i%gssChunk]
		e.to = nil
		e.label = nil
	}
}

package glr

import (
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

func names(g *grammar.Grammar, syms []grammar.Symbol) []string {
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = g.Symbols().Name(s)
	}
	return out
}

func TestErrorReporting(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	for _, e := range []Engine{Copying, GSS, Deterministic} {
		t.Run(e.String(), func(t *testing.T) {
			// "true or" fails at the end marker; true/false were
			// expected after 'or'.
			res, err := Parse(tbl, fixtures.Tokens(g, "true or"), &Options{Engine: e})
			if err != nil {
				t.Fatal(err)
			}
			if res.Accepted {
				t.Fatal("should reject")
			}
			if res.ErrorPos != 2 {
				t.Errorf("ErrorPos = %d, want 2 (the $ position)", res.ErrorPos)
			}
			exp := names(g, res.Expected)
			want := map[string]bool{"true": true, "false": true}
			for _, n := range exp {
				if !want[n] {
					t.Errorf("unexpected 'expected' entry %q", n)
				}
			}
			if len(exp) != 2 {
				t.Errorf("expected set = %v, want {true,false}", exp)
			}

			// "or true" fails immediately at position 0.
			res, err = Parse(tbl, fixtures.Tokens(g, "or true"), &Options{Engine: e})
			if err != nil {
				t.Fatal(err)
			}
			if res.ErrorPos != 0 {
				t.Errorf("ErrorPos = %d, want 0", res.ErrorPos)
			}

			// "true true": after B, or/and/$ are the options.
			res, err = Parse(tbl, fixtures.Tokens(g, "true true"), &Options{Engine: e})
			if err != nil {
				t.Fatal(err)
			}
			if res.ErrorPos != 1 {
				t.Errorf("ErrorPos = %d, want 1", res.ErrorPos)
			}
			hasEOF := false
			for _, s := range res.Expected {
				if s == grammar.EOF {
					hasEOF = true
				}
			}
			if !hasEOF {
				t.Errorf("expected set %v should include $ (accept was possible)",
					names(g, res.Expected))
			}
		})
	}
}

func TestAcceptedHasNoError(t *testing.T) {
	tbl := boolTable(t)
	g := tbl.Grammar()
	for _, e := range []Engine{Copying, GSS, Deterministic} {
		res, err := Parse(tbl, fixtures.Tokens(g, "true or false"), &Options{Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		if res.ErrorPos != -1 || len(res.Expected) != 0 {
			t.Errorf("%v: accepted parse carries error info: pos=%d expected=%v",
				e, res.ErrorPos, names(g, res.Expected))
		}
	}
}

func TestErrorReportingLazyTable(t *testing.T) {
	// Under lazy generation the frontier states are expanded by the
	// failing sweep's ACTION calls, so diagnostics work identically.
	g := fixtures.Booleans()
	// Use a fresh eager table for the reference and a lazy one via the
	// automaton with only Actions-driven expansion: the glr package
	// cannot import core (cycle), so emulate by partial generation.
	a := lr.New(g)
	a.GenerateAll()
	res, err := Parse(a, fixtures.Tokens(g, "true and and"), &Options{Engine: GSS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.ErrorPos != 2 {
		t.Errorf("pos = %d, want 2", res.ErrorPos)
	}
}

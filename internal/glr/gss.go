package glr

import (
	"sort"

	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// The GSS engine replaces PAR-PARSE's parser copies with a graph-
// structured stack: all simple parsers that are in the same state in the
// same sweep share one stack node, and alternative derivations of the same
// substring are packed locally in the parse forest. This removes the
// exponential blowup of the copying engine on densely ambiguous inputs and
// handles cyclic grammars (the resulting forests are cyclic; traversals
// report them). It is the "more efficient style" alluded to in the
// section 7 footnote.
//
// The implementation follows Tomita's algorithm with the conservative
// Nozohoor-Farshi repair for edges added to already-processed nodes: when
// a reduction creates a new edge on an existing frontier node, all pending
// reductions of the frontier are re-examined, restricted to paths that
// traverse the new edge. Termination needs no budget: nodes per sweep are
// bounded by the number of states, edges by node pairs, and re-examination
// only triggers on new edges.

type gssNode struct {
	state *lr.State
	edges []*gssEdge
}

type gssEdge struct {
	to *gssNode
	// label is a forest slot (mutable single-alt ambiguity node) so that
	// local ambiguity packing is visible to parents created earlier; nil
	// when tree building is off.
	label *forest.Node
}

func (n *gssNode) edgeTo(dest *gssNode) *gssEdge {
	for _, e := range n.edges {
		if e.to == dest {
			return e
		}
	}
	return nil
}

// frontier is the set of stack tops of one sweep, with deterministic
// iteration order (sorted by state ID).
type gssFrontier struct {
	byState map[*lr.State]*gssNode
	order   []*gssNode
}

func newFrontier() *gssFrontier {
	return &gssFrontier{byState: map[*lr.State]*gssNode{}}
}

func (f *gssFrontier) get(s *lr.State) (*gssNode, bool) {
	n, ok := f.byState[s]
	return n, ok
}

func (f *gssFrontier) add(n *gssNode) {
	f.byState[n.state] = n
	f.order = append(f.order, n)
	sort.Slice(f.order, func(i, j int) bool { return f.order[i].state.ID < f.order[j].state.ID })
}

func (f *gssFrontier) nodes() []*gssNode { return f.order }

func (f *gssFrontier) len() int { return len(f.byState) }

// pendingReduce is a deferred reduction: apply rule from node, considering
// only paths that traverse the mustUse edge (nil = all paths).
type pendingReduce struct {
	node    *gssNode
	rule    *grammar.Rule
	mustUse *gssEdge
}

func gssParse(tbl lr.Table, input []grammar.Symbol, opts *Options) (Result, error) {
	res := Result{Forest: opts.forest(), ErrorPos: -1}
	buildTrees := opts.trees()

	frontier := newFrontier()
	startNode := &gssNode{state: tbl.Start()}
	res.Stats.Nodes++
	frontier.add(startNode)

	var acceptNodes []*gssNode
	// Failure diagnostics: the frontier of the last processed sweep.
	var lastStates []*lr.State
	lastPos := 0

	for pos := 0; pos < len(input); pos++ {
		symbol := input[pos]
		res.Stats.Sweeps++
		if frontier.len() > res.Stats.MaxParsers {
			res.Stats.MaxParsers = frontier.len()
		}
		lastPos = pos

		// Phase 1: reductions (and accept detection) to fixpoint.
		var work []pendingReduce
		enqueueNode := func(n *gssNode) {
			for _, action := range tbl.Actions(n.state, symbol) {
				switch action.Kind {
				case lr.Reduce:
					work = append(work, pendingReduce{node: n, rule: action.Rule})
				case lr.Accept:
					res.Accepted = true
					res.Stats.Accepts++
					opts.trace(Event{Op: "accept", Token: symbol, Pos: pos})
					acceptNodes = append(acceptNodes, n)
				}
			}
		}
		for _, n := range frontier.nodes() {
			enqueueNode(n)
		}

		for len(work) > 0 {
			p := work[len(work)-1]
			work = work[:len(work)-1]
			res.Stats.Reduces++
			opts.trace(Event{Op: "reduce", Token: symbol, Pos: pos, Rule: p.rule})

			for _, path := range gssPaths(p.node, p.rule.Len(), p.mustUse) {
				dest := path.dest
				goState := tbl.Goto(dest.state, p.rule.Lhs)
				opts.trace(Event{Op: "goto", Token: symbol, Pos: pos, State: goState})

				var ruleNode *forest.Node
				if buildTrees {
					ruleNode = res.Forest.Rule(p.rule, path.children)
				}

				m, exists := frontier.get(goState)
				if !exists {
					m = &gssNode{state: goState}
					res.Stats.Nodes++
					frontier.add(m)
					edge := &gssEdge{to: dest}
					if buildTrees {
						edge.label = res.Forest.Slot(ruleNode)
					}
					m.edges = append(m.edges, edge)
					res.Stats.Edges++
					// A brand-new node: examine its own reductions (this
					// also expands its state under the lazy generator, so
					// later GOTOs through it meet the Appendix A
					// invariant).
					enqueueNode(m)
					continue
				}
				if edge := m.edgeTo(dest); edge != nil {
					// Local ambiguity: pack into the existing slot. The
					// hash-consed rule node makes repeated identical
					// reductions a no-op.
					if buildTrees {
						res.Forest.Pack(edge.label, ruleNode)
					}
					continue
				}
				edge := &gssEdge{to: dest}
				if buildTrees {
					edge.label = res.Forest.Slot(ruleNode)
				}
				m.edges = append(m.edges, edge)
				res.Stats.Edges++
				// New edge on an existing node: conservatively re-examine
				// every frontier node's reductions, restricted to paths
				// through the new edge (Nozohoor-Farshi).
				for _, n := range frontier.nodes() {
					for _, action := range tbl.Actions(n.state, symbol) {
						if action.Kind == lr.Reduce {
							work = append(work, pendingReduce{node: n, rule: action.Rule, mustUse: edge})
						}
					}
				}
			}
		}

		// Snapshot for failure diagnostics: every frontier state has been
		// expanded by the Actions calls above.
		lastStates = lastStates[:0]
		for _, n := range frontier.nodes() {
			lastStates = append(lastStates, n.state)
		}

		// Phase 2: shifts, synchronized as in PAR-PARSE.
		next := newFrontier()
		var leaf *forest.Node
		if buildTrees {
			leaf = res.Forest.Leaf(symbol, pos)
		}
		for _, n := range frontier.nodes() {
			for _, action := range tbl.Actions(n.state, symbol) {
				if action.Kind != lr.Shift {
					continue
				}
				res.Stats.Shifts++
				opts.trace(Event{Op: "shift", Token: symbol, Pos: pos, State: action.State})
				m, ok := next.get(action.State)
				if !ok {
					m = &gssNode{state: action.State}
					res.Stats.Nodes++
					next.add(m)
				}
				edge := &gssEdge{to: n}
				if buildTrees {
					edge.label = res.Forest.Slot(leaf)
				}
				m.edges = append(m.edges, edge)
				res.Stats.Edges++
			}
		}
		frontier = next
		if frontier.len() == 0 {
			break
		}
	}

	if res.Accepted && buildTrees {
		var roots []*forest.Node
		for _, n := range acceptNodes {
			for _, e := range n.edges {
				roots = append(roots, e.label)
			}
		}
		if len(roots) > 0 {
			res.Root = res.Forest.Ambiguity(roots...)
		}
	}
	if !res.Accepted {
		res.ErrorPos = lastPos
		res.Expected = expectedOf(tbl.Grammar(), lastStates)
	}
	return res, nil
}

// gssPath is one reduction path: the destination node (where GOTO applies)
// and the forest labels along the way in left-to-right rule order.
type gssPath struct {
	dest     *gssNode
	children []*forest.Node
}

// gssPaths enumerates all paths of exactly length edges starting at n,
// optionally restricted to paths traversing mustUse.
func gssPaths(n *gssNode, length int, mustUse *gssEdge) []gssPath {
	var out []gssPath
	// Labels are collected top-of-stack first, i.e. in reverse rule
	// order; they are reversed on emission.
	labels := make([]*forest.Node, 0, length)
	var walk func(cur *gssNode, remaining int, used bool)
	walk = func(cur *gssNode, remaining int, used bool) {
		if remaining == 0 {
			if mustUse != nil && !used {
				return
			}
			children := make([]*forest.Node, length)
			for i, l := range labels {
				children[length-1-i] = l
			}
			out = append(out, gssPath{dest: cur, children: children})
			return
		}
		for _, e := range cur.edges {
			labels = append(labels, e.label)
			walk(e.to, remaining-1, used || e == mustUse)
			labels = labels[:len(labels)-1]
		}
	}
	walk(n, length, false)
	return out
}

package glr

import (
	"ipg/internal/faultinject"
	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// The GSS engine replaces PAR-PARSE's parser copies with a graph-
// structured stack: all simple parsers that are in the same state in the
// same sweep share one stack node, and alternative derivations of the same
// substring are packed locally in the parse forest. This removes the
// exponential blowup of the copying engine on densely ambiguous inputs and
// handles cyclic grammars (the resulting forests are cyclic; traversals
// report them). It is the "more efficient style" alluded to in the
// section 7 footnote.
//
// The implementation follows Tomita's algorithm with the conservative
// Nozohoor-Farshi repair for edges added to already-processed nodes: when
// a reduction creates a new edge on an existing frontier node, all pending
// reductions of the frontier are re-examined, restricted to paths that
// traverse the new edge. Termination needs no budget: nodes per sweep are
// bounded by the number of states, edges by node pairs, and re-examination
// only triggers on new edges.
//
// All transient structures — GSS nodes and edges, the two frontiers, the
// pending-reduction stack and the path/action buffers — live in a
// Workspace (workspace.go) that is rewound per parse and recycled across
// parses, so the steady-state token loop over an already-expanded table
// performs no heap allocation.

type gssNode struct {
	state *lr.State
	edges []*gssEdge
}

type gssEdge struct {
	to *gssNode
	// label is a forest slot (mutable single-alt ambiguity node) so that
	// local ambiguity packing is visible to parents created earlier; nil
	// when tree building is off.
	label *forest.Node
}

func (n *gssNode) edgeTo(dest *gssNode) *gssEdge {
	for _, e := range n.edges {
		if e.to == dest {
			return e
		}
	}
	return nil
}

// pendingReduce is a deferred reduction: apply rule from node, considering
// only paths that traverse the mustUse edge (nil = all paths).
type pendingReduce struct {
	node    *gssNode
	rule    *grammar.Rule
	mustUse *gssEdge
}

// enqueueReduces appends n's reductions on symbol to the work stack and
// records accepts. For a state not yet expanded the AppendActions call
// performs the lazy expansion, so a brand-new GSS node examined here
// also meets the Appendix A invariant for later GOTOs through it.
func (w *Workspace) enqueueReduces(tbl lr.Table, n *gssNode, symbol grammar.Symbol, pos int, opts *Options, res *Result) {
	w.actions = tbl.AppendActions(w.actions[:0], n.state, symbol)
	for _, action := range w.actions {
		switch action.Kind {
		case lr.Reduce:
			w.work = append(w.work, pendingReduce{node: n, rule: action.Rule})
		case lr.Accept:
			res.Accepted = true
			res.Stats.Accepts++
			opts.trace(Event{Op: "accept", Token: symbol, Pos: pos})
			w.acceptNodes = append(w.acceptNodes, n)
		}
	}
}

func gssParse(tbl lr.Table, input []grammar.Symbol, opts *Options) (Result, error) {
	w, pooled := opts.workspaceFor()
	if pooled {
		defer releaseWorkspace(w)
	}
	buildTrees := opts.trees()
	res := Result{ErrorPos: -1}
	if buildTrees {
		// Recognition never touches a forest: it is only built when the
		// caller wants trees.
		res.Forest = opts.forest()
	}
	w.begin()

	front, next := &w.front, &w.next
	front.reset()
	startNode := w.nodes.get(tbl.Start())
	res.Stats.Nodes++
	front.add(startNode)

	// Failure diagnostics: the frontier of the last processed sweep.
	lastPos := 0

	fl := opts.cancelFlag()
	for pos := 0; pos < len(input); pos++ {
		// Per-sweep cancellation checkpoint; a second, masked check
		// sits inside the reduction fixpoint below for sweeps whose
		// reduction cascade dwarfs the token count.
		if fl.Hit() {
			return res, fl.Err(pos, len(input), uint64(res.Stats.Shifts+res.Stats.Reduces))
		}
		if faultinject.Armed() {
			faultinject.Step(faultinject.SiteDriveToken, pos, fl)
		}
		symbol := input[pos]
		res.Stats.Sweeps++
		if front.len() > res.Stats.MaxParsers {
			res.Stats.MaxParsers = front.len()
		}
		lastPos = pos

		// Phase 1: reductions (and accept detection) to fixpoint.
		w.work = w.work[:0]
		for _, n := range front.order {
			w.enqueueReduces(tbl, n, symbol, pos, opts, &res)
		}

		for len(w.work) > 0 {
			p := w.work[len(w.work)-1]
			w.work = w.work[:len(w.work)-1]
			res.Stats.Reduces++
			if res.Stats.Reduces&63 == 0 && fl.Hit() {
				return res, fl.Err(pos, len(input), uint64(res.Stats.Shifts+res.Stats.Reduces))
			}
			opts.trace(Event{Op: "reduce", Token: symbol, Pos: pos, Rule: p.rule})

			plen := p.rule.Len()
			w.paths = w.paths[:0]
			w.children = w.children[:0]
			w.collectPaths(p.node, plen, p.mustUse, buildTrees)
			for _, path := range w.paths {
				dest := path.dest
				goState := tbl.Goto(dest.state, p.rule.Lhs)
				opts.trace(Event{Op: "goto", Token: symbol, Pos: pos, State: goState})

				var ruleNode *forest.Node
				if buildTrees {
					ruleNode = res.Forest.Rule(p.rule, w.children[path.childOff:path.childOff+plen])
				}

				m := front.get(goState)
				if m == nil {
					m = w.nodes.get(goState)
					res.Stats.Nodes++
					front.add(m)
					var label *forest.Node
					if buildTrees {
						label = res.Forest.Slot(ruleNode)
					}
					m.edges = append(m.edges, w.edges.get(dest, label))
					res.Stats.Edges++
					// A brand-new node: examine its own reductions (this
					// also expands its state under the lazy generator, so
					// later GOTOs through it meet the Appendix A
					// invariant).
					w.enqueueReduces(tbl, m, symbol, pos, opts, &res)
					continue
				}
				if edge := m.edgeTo(dest); edge != nil {
					// Local ambiguity: pack into the existing slot. The
					// hash-consed rule node makes repeated identical
					// reductions a no-op.
					if buildTrees {
						res.Forest.Pack(edge.label, ruleNode)
					}
					continue
				}
				var label *forest.Node
				if buildTrees {
					label = res.Forest.Slot(ruleNode)
				}
				edge := w.edges.get(dest, label)
				m.edges = append(m.edges, edge)
				res.Stats.Edges++
				// New edge on an existing node: conservatively re-examine
				// every frontier node's reductions, restricted to paths
				// through the new edge (Nozohoor-Farshi).
				for _, n := range front.order {
					w.actions = tbl.AppendActions(w.actions[:0], n.state, symbol)
					for _, action := range w.actions {
						if action.Kind == lr.Reduce {
							w.work = append(w.work, pendingReduce{node: n, rule: action.Rule, mustUse: edge})
						}
					}
				}
			}
		}

		// Snapshot for failure diagnostics: every frontier state has been
		// expanded by the AppendActions calls above.
		w.lastStates = w.lastStates[:0]
		for _, n := range front.order {
			w.lastStates = append(w.lastStates, n.state)
		}

		// Phase 2: shifts, synchronized as in PAR-PARSE.
		next.reset()
		var leaf *forest.Node
		if buildTrees {
			leaf = res.Forest.Leaf(symbol, pos)
		}
		for _, n := range front.order {
			w.actions = tbl.AppendActions(w.actions[:0], n.state, symbol)
			for _, action := range w.actions {
				if action.Kind != lr.Shift {
					continue
				}
				res.Stats.Shifts++
				opts.trace(Event{Op: "shift", Token: symbol, Pos: pos, State: action.State})
				m := next.get(action.State)
				if m == nil {
					m = w.nodes.get(action.State)
					res.Stats.Nodes++
					next.add(m)
				}
				var label *forest.Node
				if buildTrees {
					label = res.Forest.Slot(leaf)
				}
				m.edges = append(m.edges, w.edges.get(n, label))
				res.Stats.Edges++
			}
		}
		front, next = next, front
		if front.len() == 0 {
			break
		}
	}

	if res.Accepted && buildTrees {
		var roots []*forest.Node
		for _, n := range w.acceptNodes {
			for _, e := range n.edges {
				roots = append(roots, e.label)
			}
		}
		if len(roots) > 0 {
			res.Root = res.Forest.Ambiguity(roots...)
		}
	}
	if !res.Accepted {
		res.ErrorPos = lastPos
		res.Expected = expectedOf(tbl.Grammar(), w.lastStates)
	}
	return res, nil
}

// gssPath is one reduction path: the destination node (where GOTO applies)
// and, when trees are built, the offset of the path's forest labels in
// the workspace's flat children buffer (left-to-right rule order).
type gssPath struct {
	dest     *gssNode
	childOff int
}

// collectPaths enumerates all paths of exactly length edges starting at
// n into w.paths/w.children, optionally restricted to paths traversing
// mustUse. Offsets (not sub-slices) index the flat children buffer, so
// its growth cannot invalidate earlier paths.
func (w *Workspace) collectPaths(n *gssNode, length int, mustUse *gssEdge, withChildren bool) {
	w.labels = w.labels[:0]
	w.walkPaths(n, length, false, mustUse, length, withChildren)
}

func (w *Workspace) walkPaths(cur *gssNode, remaining int, used bool, mustUse *gssEdge, length int, withChildren bool) {
	if remaining == 0 {
		if mustUse != nil && !used {
			return
		}
		off := len(w.children)
		if withChildren {
			// Labels were collected top-of-stack first, i.e. in reverse
			// rule order; emit them reversed.
			for i := length - 1; i >= 0; i-- {
				w.children = append(w.children, w.labels[i])
			}
		}
		w.paths = append(w.paths, gssPath{dest: cur, childOff: off})
		return
	}
	for _, e := range cur.edges {
		if withChildren {
			w.labels = append(w.labels, e.label)
		}
		w.walkPaths(e.to, remaining-1, used || e == mustUse, mustUse, length, withChildren)
		if withChildren {
			w.labels = w.labels[:len(w.labels)-1]
		}
	}
}

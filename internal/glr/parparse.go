package glr

import (
	"ipg/internal/faultinject"
	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// stackNode is one cell of an LRparser's stack. Stacks are immutable
// singly-linked lists, so the copy operation for parsers makes "the parse
// stacks become different objects which share the states on them" (section
// 3.2) by copying nothing but the head pointer.
type stackNode struct {
	state *lr.State
	node  *forest.Node // tree attached to the grammar symbol that led here
	prev  *stackNode
}

// lrParser is the object of type 'LRparser' of the paper: a single field
// holding the parse stack.
type lrParser struct {
	stack *stackNode
}

// copyParser implements copy(parser): a new parser whose stack shares all
// nodes with the original.
func copyParser(p *lrParser) *lrParser { return &lrParser{stack: p.stack} }

// parParse is PAR-PARSE (section 3.2): a dynamically varying pool of
// simple LR parsers running in pseudo-parallel, synchronized on their
// shift actions through the this-sweep and next-sweep pools.
func parParse(tbl lr.Table, input []grammar.Symbol, opts *Options) (Result, error) {
	w, pooled := opts.workspaceFor()
	if pooled {
		defer releaseWorkspace(w)
	}
	res := Result{ErrorPos: -1}
	buildTrees := opts.trees()
	if buildTrees {
		res.Forest = opts.forest()
	}
	budget := opts.budget(len(input))
	w.begin()

	accepted := false
	var roots []*forest.Node
	// Failure diagnostics: the states consulted in the last sweep.
	var lastStates []*lr.State
	lastPos := 0

	startParser := &lrParser{stack: &stackNode{state: tbl.Start()}}
	nextSweep := []*lrParser{startParser}

	fl := opts.cancelFlag()
	pos := -1
	for len(nextSweep) > 0 {
		pos++
		// Per-sweep cancellation checkpoint (the inner reduce loop is
		// already bounded by the reduction budget).
		if fl.Hit() {
			return res, fl.Err(pos, len(input), uint64(res.Stats.Shifts+res.Stats.Reduces))
		}
		if faultinject.Armed() {
			faultinject.Step(faultinject.SiteDriveToken, pos, fl)
		}
		symbol := input[pos]
		res.Stats.Sweeps++
		thisSweep := nextSweep
		nextSweep = nil
		if len(thisSweep) > res.Stats.MaxParsers {
			res.Stats.MaxParsers = len(thisSweep)
		}
		reducesThisSweep := 0
		lastStates = lastStates[:0]
		lastPos = pos

		for len(thisSweep) > 0 {
			parser := thisSweep[len(thisSweep)-1]
			thisSweep = thisSweep[:len(thisSweep)-1]
			if len(thisSweep)+len(nextSweep)+1 > res.Stats.MaxParsers {
				res.Stats.MaxParsers = len(thisSweep) + len(nextSweep) + 1
			}

			state := parser.stack.state
			w.actions = tbl.AppendActions(w.actions[:0], state, symbol)
			lastStates = append(lastStates, state)
			// For each action a copy of the parser is made and the action
			// is performed on the copy; with no actions the parser just
			// disappears (the error action).
			for _, action := range w.actions {
				parser2 := copyParser(parser)
				res.Stats.Copies++
				switch action.Kind {
				case lr.Shift:
					var leaf *forest.Node
					if buildTrees {
						leaf = res.Forest.Leaf(symbol, pos)
					}
					parser2.stack = &stackNode{state: action.State, node: leaf, prev: parser2.stack}
					opts.trace(Event{Op: "shift", Token: symbol, Pos: pos, State: action.State})
					res.Stats.Shifts++
					nextSweep = append(nextSweep, parser2)
				case lr.Reduce:
					reducesThisSweep++
					if reducesThisSweep > budget {
						return res, ErrNotFinitelyAmbiguous
					}
					n := action.Rule.Len()
					var children []*forest.Node
					if buildTrees {
						children = make([]*forest.Node, n)
					}
					for i := n - 1; i >= 0; i-- {
						if buildTrees {
							children[i] = parser2.stack.node
						}
						parser2.stack = parser2.stack.prev
					}
					var node *forest.Node
					if buildTrees {
						node = res.Forest.Rule(action.Rule, children)
					}
					opts.trace(Event{Op: "reduce", Token: symbol, Pos: pos, Rule: action.Rule})
					goState := tbl.Goto(parser2.stack.state, action.Rule.Lhs)
					parser2.stack = &stackNode{state: goState, node: node, prev: parser2.stack}
					opts.trace(Event{Op: "goto", Token: symbol, Pos: pos, State: goState})
					res.Stats.Reduces++
					thisSweep = append(thisSweep, parser2)
				case lr.Accept:
					accepted = true
					res.Stats.Accepts++
					opts.trace(Event{Op: "accept", Token: symbol, Pos: pos})
					if buildTrees && parser2.stack.node != nil {
						roots = append(roots, parser2.stack.node)
					}
				}
			}
		}
	}

	res.Accepted = accepted
	if accepted && buildTrees && len(roots) > 0 {
		res.Root = res.Forest.Ambiguity(roots...)
	}
	if !accepted {
		res.ErrorPos = lastPos
		res.Expected = expectedOf(tbl.Grammar(), lastStates)
	}
	return res, nil
}

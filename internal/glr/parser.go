// Package glr implements the parsing layer of the system: the simple
// deterministic LR parser LR-PARSE (section 3.1), the (pseudo-)parallel
// parser PAR-PARSE of section 3.2 — a faithful transcription using parser
// copies whose stacks share structure — and a graph-structured-stack
// Tomita engine with local ambiguity packing (the "improved sharing"
// mentioned in the section 7 footnote).
//
// All engines are driven by an lr.Table, so they work unchanged with the
// conventional generator (internal/lr), the lazy generator and the
// incremental generator (internal/core): the parser is the
// grammar-independent part of Fig 2.2(c).
package glr

import (
	"errors"
	"fmt"
	"sort"

	"ipg/internal/cancel"
	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// Engine selects the parsing algorithm.
type Engine uint8

const (
	// Copying is PAR-PARSE as published (section 3.2): one simple LR
	// parser per nondeterministic choice, copied on each action, stacks
	// sharing their tails.
	Copying Engine = iota
	// GSS is the graph-structured-stack variant: parsers at the same
	// state share one stack node per sweep and local ambiguities are
	// packed in the forest.
	GSS
	// Deterministic is LR-PARSE (section 3.1): at most one action per
	// step; it fails with ErrNondeterministic on a conflict.
	Deterministic
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case Copying:
		return "copying"
	case GSS:
		return "gss"
	case Deterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("Engine(%d)", uint8(e))
	}
}

// ErrNondeterministic is returned by the deterministic engine when ACTION
// returns more than one action ("LR-PARSE can only handle sets of at most
// one action correctly").
var ErrNondeterministic = errors.New("glr: parse table conflict (grammar not LR(0))")

// ErrNotFinitelyAmbiguous is returned when a sweep exceeds the reduction
// budget, which happens for cyclic grammars: PAR-PARSE is restricted to
// finitely ambiguous context-free grammars (section 2.1).
var ErrNotFinitelyAmbiguous = errors.New("glr: reduction budget exhausted (grammar not finitely ambiguous)")

// Event is a parser trace event; Fig 4.2's diagram of parser moves is a
// rendering of this stream.
type Event struct {
	// Op is "shift", "reduce", "goto", "accept" or "split".
	Op string
	// Token is the current input symbol.
	Token grammar.Symbol
	// Pos is the current token index.
	Pos int
	// State is the state acted upon (shift target for "shift", GOTO
	// target for "goto").
	State *lr.State
	// Rule is the reduced rule for "reduce".
	Rule *grammar.Rule
	// Stack is the state stack bottom-to-top after the event
	// (deterministic engine only). The slice is reused between events;
	// copy it if the trace callback retains it.
	Stack []int
}

// Stats counts parser work for the measurements of section 7.
type Stats struct {
	// Sweeps is the number of input symbols processed (including $).
	Sweeps int
	// Shifts, Reduces, Accepts count the actions performed.
	Shifts, Reduces, Accepts int
	// Copies counts parser copies (copying engine).
	Copies int
	// MaxParsers is the peak number of simultaneous parsers in a sweep
	// (copying engine) or GSS frontier size (GSS engine).
	MaxParsers int
	// Nodes and Edges count GSS allocation (GSS engine).
	Nodes, Edges int
}

// Result is the outcome of a parse.
type Result struct {
	// Accepted reports whether at least one simple parser accepted.
	Accepted bool
	// Root is the parse forest root (nil when !Accepted or tree building
	// is off). Multiple accepting parses are packed under one ambiguity
	// node.
	Root *forest.Node
	// Forest is the forest Root lives in. It is nil when tree building
	// is off: recognition never constructs a forest.
	Forest *forest.Forest
	// ErrorPos is the token index at which the last parser died, or -1
	// when the input was accepted. The end marker position signals
	// unexpected end of input.
	ErrorPos int
	// Expected lists the terminals that would have allowed progress at
	// ErrorPos (sorted by symbol).
	Expected []grammar.Symbol
	// Stats holds work counters.
	Stats Stats
}

// expectedOf collects the terminals the given states could have shifted
// (plus $ when one of them accepts) — the "expected here" diagnostic.
func expectedOf(g *grammar.Grammar, states []*lr.State) []grammar.Symbol {
	seen := map[grammar.Symbol]bool{}
	var out []grammar.Symbol
	add := func(s grammar.Symbol) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, st := range states {
		if st.Type != lr.Complete {
			continue
		}
		for sym := range st.Transitions {
			if g.Symbols().Kind(sym) == grammar.Terminal {
				add(sym)
			}
		}
		if st.Accept {
			add(grammar.EOF)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Options configures a parse. The zero value builds trees with the
// copying engine and a generous reduction budget.
type Options struct {
	// Engine selects the algorithm (default Copying).
	Engine Engine
	// DisableTrees skips forest construction (the paper's measurements
	// build trees; benchmarks can turn them off to isolate table costs).
	DisableTrees bool
	// Trace receives parser events when non-nil.
	Trace func(Event)
	// MaxReductions bounds reduce actions per sweep; 0 means
	// 1000 + 100×(input length). The bound only trips for grammars that
	// are not finitely ambiguous (cyclic grammars).
	MaxReductions int
	// Forest supplies an existing forest to build into (optional).
	Forest *forest.Forest
	// Workspace supplies reusable per-parse scratch (GSS arenas,
	// frontiers, action buffers), making the steady-state token loop
	// allocation-free. Nil borrows one from an internal pool. A
	// workspace serves one parse at a time, so an Options value carrying
	// one must not be shared by concurrent parses.
	Workspace *Workspace
	// Cancel, when non-nil, is polled at drive-loop checkpoints (every
	// token sweep, and every action step in the deterministic driver);
	// a fired flag aborts the parse with a *cancel.Error carrying the
	// position reached and the work done. Nil costs one pointer check
	// per checkpoint.
	Cancel *cancel.Flag
}

func (o *Options) cancelFlag() *cancel.Flag {
	if o == nil {
		return nil
	}
	return o.Cancel
}

func (o *Options) budget(inputLen int) int {
	if o != nil && o.MaxReductions > 0 {
		return o.MaxReductions
	}
	return 1000 + 100*inputLen
}

func (o *Options) forest() *forest.Forest {
	if o != nil && o.Forest != nil {
		return o.Forest
	}
	return forest.NewForest()
}

func (o *Options) trees() bool { return o == nil || !o.DisableTrees }

func (o *Options) trace(ev Event) {
	if o != nil && o.Trace != nil {
		o.Trace(ev)
	}
}

// Parse runs the selected engine on input. The end marker $ is appended
// when absent. Input symbols must be terminals of the table's grammar.
func Parse(tbl lr.Table, input []grammar.Symbol, opts *Options) (Result, error) {
	in, err := prepare(tbl.Grammar(), input)
	if err != nil {
		return Result{}, err
	}
	engine := Copying
	if opts != nil {
		engine = opts.Engine
	}
	switch engine {
	case Deterministic:
		return lrParse(tbl, in, opts)
	case Copying:
		return parParse(tbl, in, opts)
	case GSS:
		return gssParse(tbl, in, opts)
	default:
		return Result{}, fmt.Errorf("glr: unknown engine %v", engine)
	}
}

// Recognize is Parse without tree building.
func Recognize(tbl lr.Table, input []grammar.Symbol, engine Engine) (bool, error) {
	res, err := Parse(tbl, input, &Options{Engine: engine, DisableTrees: true})
	if err != nil {
		return false, err
	}
	return res.Accepted, nil
}

func prepare(g *grammar.Grammar, input []grammar.Symbol) ([]grammar.Symbol, error) {
	syms := g.Symbols()
	for i, s := range input {
		if s == grammar.EOF {
			if i != len(input)-1 {
				return nil, fmt.Errorf("glr: end marker $ at position %d before end of input", i)
			}
			return input, nil
		}
		if syms.Kind(s) != grammar.Terminal {
			return nil, fmt.Errorf("glr: input symbol %q at position %d is not a terminal", syms.Name(s), i)
		}
	}
	out := make([]grammar.Symbol, len(input)+1)
	copy(out, input)
	out[len(input)] = grammar.EOF
	return out, nil
}

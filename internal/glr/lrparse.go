package glr

import (
	"ipg/internal/faultinject"
	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// lrParse is LR-PARSE (section 3.1): a simple LR parser using a single
// stack of states. ACTION returning more than one action is an error for
// this engine. Tree building keeps a parallel stack of forest nodes —
// the paper omits trees from the pseudocode ("to keep things simple, we
// do not generate parse trees") but measures with tree building on.
//
// The stack and the action buffer live in the shared Workspace, and the
// action set is fetched through AppendActions, so the steady-state token
// loop of the deterministic driver allocates nothing.
func lrParse(tbl lr.Table, input []grammar.Symbol, opts *Options) (Result, error) {
	w, pooled := opts.workspaceFor()
	if pooled {
		defer releaseWorkspace(w)
	}
	buildTrees := opts.trees()
	res := Result{ErrorPos: -1}
	if buildTrees {
		res.Forest = opts.forest()
	}
	tracing := opts != nil && opts.Trace != nil

	w.begin()
	w.detStack = append(w.detStack, detEntry{state: tbl.Start()})

	// stackIDs renders the state stack for trace events only; the parse
	// itself never materializes it.
	stackIDs := func() []int {
		w.stackIDs = w.stackIDs[:0]
		for _, e := range w.detStack {
			w.stackIDs = append(w.stackIDs, e.state.ID)
		}
		return w.stackIDs
	}

	pos := 0
	symbol := input[pos]
	budget := opts.budget(len(input))
	fl := opts.cancelFlag()
	for {
		// Cancellation checkpoint: one nil check when unarmed, one
		// atomic load per action step when armed. Checking per step
		// (not per token) bounds abort latency even inside long reduce
		// chains.
		if fl.Hit() {
			return res, fl.Err(pos, len(input), uint64(res.Stats.Shifts+res.Stats.Reduces))
		}
		res.Stats.Sweeps++
		if res.Stats.Reduces > budget {
			return res, ErrNotFinitelyAmbiguous
		}
		state := w.detStack[len(w.detStack)-1].state
		w.actions = tbl.AppendActions(w.actions[:0], state, symbol)
		if len(w.actions) == 0 {
			// The error action: "the input read so far can never become
			// a sentence of the language any more."
			res.ErrorPos = pos
			res.Expected = expectedOf(tbl.Grammar(), []*lr.State{state})
			return res, nil
		}
		if len(w.actions) > 1 {
			return res, ErrNondeterministic
		}
		switch action := w.actions[0]; action.Kind {
		case lr.Shift:
			var leaf *forest.Node
			if buildTrees {
				leaf = res.Forest.Leaf(symbol, pos)
			}
			w.detStack = append(w.detStack, detEntry{state: action.State, node: leaf})
			if tracing {
				opts.trace(Event{Op: "shift", Token: symbol, Pos: pos, State: action.State, Stack: stackIDs()})
			}
			res.Stats.Shifts++
			pos++
			symbol = input[pos]
			if faultinject.Armed() {
				faultinject.Step(faultinject.SiteDriveToken, pos, fl)
			}
		case lr.Reduce:
			n := action.Rule.Len()
			var node *forest.Node
			if buildTrees {
				w.children = w.children[:0]
				for i := 0; i < n; i++ {
					w.children = append(w.children, w.detStack[len(w.detStack)-n+i].node)
				}
				node = res.Forest.Rule(action.Rule, w.children)
			}
			w.detStack = w.detStack[:len(w.detStack)-n]
			if tracing {
				opts.trace(Event{Op: "reduce", Token: symbol, Pos: pos, Rule: action.Rule, Stack: stackIDs()})
			}
			// GOTO is called on the uncovered stack top, which Appendix A
			// proves to be complete; lr.GotoOf checks the invariant.
			state = tbl.Goto(w.detStack[len(w.detStack)-1].state, action.Rule.Lhs)
			w.detStack = append(w.detStack, detEntry{state: state, node: node})
			if tracing {
				opts.trace(Event{Op: "goto", Token: symbol, Pos: pos, State: state, Stack: stackIDs()})
			}
			res.Stats.Reduces++
		case lr.Accept:
			res.Accepted = true
			res.Stats.Accepts++
			if buildTrees {
				res.Root = w.detStack[len(w.detStack)-1].node
			}
			if tracing {
				opts.trace(Event{Op: "accept", Token: symbol, Pos: pos, Stack: stackIDs()})
			}
			return res, nil
		}
	}
}

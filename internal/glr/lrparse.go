package glr

import (
	"ipg/internal/forest"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// lrParse is LR-PARSE (section 3.1): a simple LR parser using a single
// stack of states. ACTION returning more than one action is an error for
// this engine. Tree building keeps a parallel stack of forest nodes —
// the paper omits trees from the pseudocode ("to keep things simple, we
// do not generate parse trees") but measures with tree building on.
func lrParse(tbl lr.Table, input []grammar.Symbol, opts *Options) (Result, error) {
	res := Result{Forest: opts.forest(), ErrorPos: -1}
	buildTrees := opts.trees()

	type entry struct {
		state *lr.State
		node  *forest.Node
	}
	stack := []entry{{state: tbl.Start()}}

	stackIDs := func() []int {
		out := make([]int, len(stack))
		for i, e := range stack {
			out[i] = e.state.ID
		}
		return out
	}

	pos := 0
	symbol := input[pos]
	budget := opts.budget(len(input))
	for {
		res.Stats.Sweeps++
		if res.Stats.Reduces > budget {
			return res, ErrNotFinitelyAmbiguous
		}
		state := stack[len(stack)-1].state
		actions := tbl.Actions(state, symbol)
		if len(actions) == 0 {
			// The error action: "the input read so far can never become
			// a sentence of the language any more."
			res.ErrorPos = pos
			res.Expected = expectedOf(tbl.Grammar(), []*lr.State{state})
			return res, nil
		}
		if len(actions) > 1 {
			return res, ErrNondeterministic
		}
		switch action := actions[0]; action.Kind {
		case lr.Shift:
			var leaf *forest.Node
			if buildTrees {
				leaf = res.Forest.Leaf(symbol, pos)
			}
			stack = append(stack, entry{state: action.State, node: leaf})
			opts.trace(Event{Op: "shift", Token: symbol, Pos: pos, State: action.State, Stack: stackIDs()})
			res.Stats.Shifts++
			pos++
			symbol = input[pos]
		case lr.Reduce:
			n := action.Rule.Len()
			var node *forest.Node
			if buildTrees {
				children := make([]*forest.Node, n)
				for i := 0; i < n; i++ {
					children[i] = stack[len(stack)-n+i].node
				}
				node = res.Forest.Rule(action.Rule, children)
			}
			stack = stack[:len(stack)-n]
			opts.trace(Event{Op: "reduce", Token: symbol, Pos: pos, Rule: action.Rule, Stack: stackIDs()})
			// GOTO is called on the uncovered stack top, which Appendix A
			// proves to be complete; lr.GotoOf checks the invariant.
			state = tbl.Goto(stack[len(stack)-1].state, action.Rule.Lhs)
			stack = append(stack, entry{state: state, node: node})
			opts.trace(Event{Op: "goto", Token: symbol, Pos: pos, State: state, Stack: stackIDs()})
			res.Stats.Reduces++
		case lr.Accept:
			res.Accepted = true
			res.Stats.Accepts++
			if buildTrees {
				res.Root = stack[len(stack)-1].node
			}
			opts.trace(Event{Op: "accept", Token: symbol, Pos: pos, Stack: stackIDs()})
			return res, nil
		}
	}
}

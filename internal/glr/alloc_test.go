package glr

import (
	"testing"

	"ipg/internal/core"
	"ipg/internal/fixtures"
	"ipg/internal/grammar"
	"ipg/internal/lalr"
	"ipg/internal/lr"
)

// The central perf claim of the lazy generator is that the steady state
// — parsing over an already-expanded table — runs at plain-LR-driver
// speed. These regression tests pin the allocation half of that claim:
// with a caller-held Workspace the token loops of the GSS and the
// deterministic engines do zero heap allocations on a warm table.

// eofTokens tokenizes and appends the end marker, so prepare() passes
// the input through without copying.
func eofTokens(g *grammar.Grammar, text string) []grammar.Symbol {
	return append(fixtures.Tokens(g, text), grammar.EOF)
}

func TestGSSRecognizeAllocFree(t *testing.T) {
	g := fixtures.Booleans()
	gen := core.New(g, nil)
	input := eofTokens(g, "true or false and true")
	ws := new(Workspace)
	opts := &Options{Engine: GSS, DisableTrees: true, Workspace: ws}
	// Warm up: expand the lazy table and size the workspace buffers.
	for i := 0; i < 3; i++ {
		res, err := Parse(gen, input, opts)
		if err != nil || !res.Accepted {
			t.Fatalf("warm-up: %v %v", res.Accepted, err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		res, err := Parse(gen, input, opts)
		if err != nil || !res.Accepted {
			t.Fatalf("parse: %v %v", res.Accepted, err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state GSS Recognize loop allocates %.2f allocs/op, want 0", avg)
	}
	if res, err := Parse(gen, input, opts); err != nil || res.Forest != nil {
		t.Errorf("recognition built a forest (Forest=%v, err=%v), want none", res.Forest, err)
	}
}

func TestDeterministicRecognizeAllocFree(t *testing.T) {
	g := grammar.MustParse(`
START ::= E
E ::= E "+" "x" | "x"
`)
	tbl := lalr.Generate(g)
	if len(tbl.Conflicts()) != 0 {
		t.Fatalf("grammar not LALR(1): %v", tbl.Conflicts())
	}
	x, _ := g.Symbols().Lookup("x")
	plus, _ := g.Symbols().Lookup("+")
	input := []grammar.Symbol{x, plus, x, plus, x, grammar.EOF}
	ws := new(Workspace)
	opts := &Options{Engine: Deterministic, DisableTrees: true, Workspace: ws}
	for i := 0; i < 3; i++ {
		res, err := Parse(tbl, input, opts)
		if err != nil || !res.Accepted {
			t.Fatalf("warm-up: %v %v", res.Accepted, err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		res, err := Parse(tbl, input, opts)
		if err != nil || !res.Accepted {
			t.Fatalf("parse: %v %v", res.Accepted, err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state deterministic loop allocates %.2f allocs/op, want 0", avg)
	}
}

// TestWorkspaceReuseMatchesFresh guards the workspace recycling: a parse
// through a heavily reused workspace must produce exactly the result a
// fresh one does, including stats and forests.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	g := fixtures.Booleans()
	auto := lr.New(g)
	auto.GenerateAll()
	inputs := []string{
		"true",
		"true or false",
		"true or false and true or true",
		"true or or true", // rejected
	}
	ws := new(Workspace)
	for _, text := range inputs {
		toks := fixtures.Tokens(g, text)
		reused, err1 := Parse(auto, toks, &Options{Engine: GSS, Workspace: ws})
		fresh, err2 := Parse(auto, toks, &Options{Engine: GSS, Workspace: new(Workspace)})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%q: err mismatch %v vs %v", text, err1, err2)
		}
		if reused.Accepted != fresh.Accepted || reused.Stats != fresh.Stats ||
			reused.ErrorPos != fresh.ErrorPos {
			t.Errorf("%q: reused %+v vs fresh %+v", text, reused, fresh)
		}
		if (reused.Root == nil) != (fresh.Root == nil) {
			t.Errorf("%q: root nil-ness differs", text)
		}
	}
}

package lr

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"ipg/internal/grammar"
)

// RuleNumbers assigns each rule its position in grammar insertion order,
// matching the "no. rule" column of Fig 4.1(a). The map is keyed by rule
// value identity so it survives delete/re-add cycles.
func RuleNumbers(g *grammar.Grammar) map[string]int {
	m := make(map[string]int, g.Len())
	for i, r := range g.Rules() {
		m[r.Key()] = i
	}
	return m
}

// FormatTable renders the tabular ACTION/GOTO representation of the graph
// of item sets, in the style of Fig 4.1(b): one row per state, ACTION
// columns for every terminal (plus $), GOTO columns for every
// nonterminal. Conflicting actions are joined with '/'. Initial states
// render as "·" rows (not yet generated); dirty states as "~" rows.
func (a *Automaton) FormatTable() string {
	g := a.g
	t := g.Symbols()
	ruleNo := RuleNumbers(g)

	terms := t.Terminals()
	// $ last, like the figure.
	sort.Slice(terms, func(i, j int) bool {
		if (terms[i] == grammar.EOF) != (terms[j] == grammar.EOF) {
			return terms[j] == grammar.EOF
		}
		return t.Name(terms[i]) < t.Name(terms[j])
	})
	var nonterms []grammar.Symbol
	for _, n := range t.Nonterminals() {
		if n != g.Start() {
			nonterms = append(nonterms, n)
		}
	}

	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "state")
	for _, s := range terms {
		fmt.Fprintf(w, "\t%s", t.Name(s))
	}
	for _, s := range nonterms {
		fmt.Fprintf(w, "\t%s", t.Name(s))
	}
	fmt.Fprintln(w)

	for _, s := range a.States() {
		fmt.Fprintf(w, "%d", s.ID)
		if s.Type != Complete {
			mark := "·"
			if s.Type == Dirty {
				mark = "~"
			}
			for range terms {
				fmt.Fprintf(w, "\t%s", mark)
			}
			for range nonterms {
				fmt.Fprintf(w, "\t%s", mark)
			}
			fmt.Fprintln(w)
			continue
		}
		for _, sym := range terms {
			var cells []string
			if succ, ok := s.Transitions[sym]; ok {
				cells = append(cells, fmt.Sprintf("s%d", succ.ID))
			}
			for _, r := range s.Reductions {
				cells = append(cells, fmt.Sprintf("r%d", ruleNo[r.Key()]))
			}
			if sym == grammar.EOF && s.Accept {
				cells = append(cells, "acc")
			}
			fmt.Fprintf(w, "\t%s", strings.Join(cells, "/"))
		}
		for _, sym := range nonterms {
			if succ, ok := s.Transitions[sym]; ok {
				fmt.Fprintf(w, "\t%d", succ.ID)
			} else {
				fmt.Fprintf(w, "\t")
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// Dump renders the whole graph of item sets as deterministic text: per
// state its type, kernel, reductions, accept flag and transitions. Tests
// compare graph structure with it.
func (a *Automaton) Dump() string {
	t := a.g.Symbols()
	var b strings.Builder
	for _, s := range a.States() {
		fmt.Fprintf(&b, "state %d (%s)", s.ID, s.Type)
		if s == a.start {
			b.WriteString(" [start]")
		}
		b.WriteByte('\n')
		for _, it := range s.Kernel {
			fmt.Fprintf(&b, "  kernel: %s\n", it.String(t))
		}
		if s.Type == Complete {
			for _, r := range s.Reductions {
				fmt.Fprintf(&b, "  reduce: %s\n", r.String(t))
			}
			if s.Accept {
				b.WriteString("  accept\n")
			}
			for _, sym := range s.TransitionSymbols() {
				fmt.Fprintf(&b, "  %s -> %d\n", t.Name(sym), s.Transitions[sym].ID)
			}
		}
	}
	return b.String()
}

// DOT renders the graph of item sets in Graphviz format, in the style of
// the paper's figures: complete states as solid boxes, initial states as
// dashed boxes, dirty states as dotted boxes.
func (a *Automaton) DOT() string {
	t := a.g.Symbols()
	var b strings.Builder
	b.WriteString("digraph itemsets {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, s := range a.States() {
		style := "solid"
		switch s.Type {
		case Initial:
			style = "dashed"
		case Dirty:
			style = "dotted"
		}
		var label strings.Builder
		fmt.Fprintf(&label, "%d\\n", s.ID)
		for _, it := range s.Kernel {
			label.WriteString(escapeDOT(it.String(t)))
			label.WriteString("\\l")
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", style=%s];\n", s.ID, label.String(), style)
		if s.Type != Complete {
			continue
		}
		for _, sym := range s.TransitionSymbols() {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%s\"];\n", s.ID, s.Transitions[sym].ID, escapeDOT(t.Name(sym)))
		}
		if s.Accept {
			fmt.Fprintf(&b, "  acc%d [label=\"accept\", shape=plaintext];\n  n%d -> acc%d [label=\"$\"];\n", s.ID, s.ID, s.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

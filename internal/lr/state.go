package lr

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"ipg/internal/grammar"
)

// StateType is the type field of a set of items (section 4 and 6.2).
type StateType uint8

const (
	// Initial states have a kernel but no transitions/reductions yet.
	Initial StateType = iota
	// Complete states have been expanded for the current grammar.
	Complete
	// Dirty states were complete but were invalidated by a grammar
	// modification; they keep their old transitions as history so that
	// re-expansion can adjust reference counts (section 6.2). A dirty
	// state is expanded exactly like an initial one.
	Dirty
)

// String returns "initial", "complete" or "dirty".
func (t StateType) String() string {
	switch t {
	case Initial:
		return "initial"
	case Complete:
		return "complete"
	case Dirty:
		return "dirty"
	default:
		return fmt.Sprintf("StateType(%d)", uint8(t))
	}
}

// State is a set of items: a node in the directed graph of item sets that
// underlies both the parse table and the parsing states. Its fields are
// exactly those of the paper (kernel, transitions, reductions, type) plus
// the ref-count machinery of section 6.2 and a numeric ID for display.
type State struct {
	// ID is a unique number within one Automaton, used in diagrams and
	// the tabular parse-table rendering.
	ID int
	// Kernel holds the rules potentially being recognized in this state,
	// with dots marking progress. It is canonical (sorted, deduplicated)
	// and immutable except for the start state under START-rule
	// modification.
	Kernel Kernel
	// Type is initial, complete, or dirty.
	Type StateType

	// Transitions maps a symbol to the successor state: shift actions for
	// terminals, GOTO transitions for nonterminals. Valid only when Type
	// is Complete (for Dirty states the last valid value is kept in
	// OldTransitions).
	Transitions map[grammar.Symbol]*State
	// Accept records the special transition ($ accept).
	Accept bool
	// Reductions holds the rules recognized completely in this state.
	Reductions []*grammar.Rule

	// RefCount counts how many states refer to this one through their
	// (current) Transitions, plus one permanent reference for the start
	// state. Maintained by Automaton; used by the incremental
	// generator's deferred garbage collection.
	RefCount int

	// OldTransitions/OldAccept preserve the state of Transitions/Accept
	// at the moment the state was marked Dirty, so RE-EXPAND can release
	// references the re-expansion no longer creates.
	OldTransitions map[grammar.Symbol]*State
	OldAccept      bool

	// published is the concurrent-read publication flag: stored (with
	// release semantics) after Expand has filled Transitions/Reductions/
	// Accept, and cleared when a modification invalidates the state. A
	// reader that observes it true may use those fields without holding
	// any lock; a reader that observes it false must fall back to the
	// generator's expansion path. Writers (expansion, modification,
	// garbage collection) must already exclude each other.
	published atomic.Bool
}

// Published reports, with acquire semantics, whether the state's
// expansion has been published for lock-free concurrent reads.
func (s *State) Published() bool { return s.published.Load() }

// Publish marks the state's expansion visible to concurrent readers.
// Call only after Transitions/Reductions/Accept are fully written.
func (s *State) Publish() { s.published.Store(true) }

// Unpublish retracts the publication before invalidating the state.
// Call only while writers exclude all readers.
func (s *State) Unpublish() { s.published.Store(false) }

// TransitionSymbols returns the symbols with outgoing transitions in a
// deterministic order (sorted by symbol ID, i.e. interning order).
func (s *State) TransitionSymbols() []grammar.Symbol {
	out := make([]grammar.Symbol, 0, len(s.Transitions))
	for sym := range s.Transitions {
		out = append(out, sym)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the state header and kernel for diagnostics.
func (s *State) String(t *grammar.SymbolTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "state %d (%s)\n", s.ID, s.Type)
	for _, it := range s.Kernel {
		b.WriteString("  ")
		b.WriteString(it.String(t))
		b.WriteByte('\n')
	}
	return b.String()
}

// ActionKind discriminates parser actions.
type ActionKind uint8

const (
	// Shift advances over a terminal to Action.State.
	Shift ActionKind = iota
	// Reduce pops len(Action.Rule.Rhs) states and consults GOTO.
	Reduce
	// Accept reports that the whole input has been recognized.
	Accept
)

// String returns "shift", "reduce" or "accept".
func (k ActionKind) String() string {
	switch k {
	case Shift:
		return "shift"
	case Reduce:
		return "reduce"
	case Accept:
		return "accept"
	default:
		return fmt.Sprintf("ActionKind(%d)", uint8(k))
	}
}

// Action is one parser action. The error action is represented by an
// empty action set, as in the paper.
type Action struct {
	Kind  ActionKind
	State *State        // shift target, when Kind == Shift
	Rule  *grammar.Rule // reduced rule, when Kind == Reduce
}

// String renders the action like the parse-table cells of Fig 4.1(b):
// "s2", "r(B ::= true)", "acc".
func (a Action) String(t *grammar.SymbolTable) string {
	switch a.Kind {
	case Shift:
		return fmt.Sprintf("s%d", a.State.ID)
	case Reduce:
		return fmt.Sprintf("r(%s)", a.Rule.String(t))
	case Accept:
		return "acc"
	default:
		return "?"
	}
}

package lr

import (
	"strings"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/grammar"
)

// TestFig41Graph verifies the conventional generator reproduces the graph
// of item sets of Fig 4.1(c): 8 states with the published transition
// structure (state numbering may differ from the figure; the shape may
// not).
func TestFig41Graph(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()

	if a.Len() != 8 {
		t.Fatalf("graph has %d states, want 8\n%s", a.Len(), a.Dump())
	}
	syms := g.Symbols()
	b, _ := syms.Lookup("B")
	tr, _ := syms.Lookup("true")
	fa, _ := syms.Lookup("false")
	or, _ := syms.Lookup("or")
	and, _ := syms.Lookup("and")

	s0 := a.Start()
	if s0.Type != Complete {
		t.Fatal("start state not complete after GenerateAll")
	}
	if len(s0.Transitions) != 3 {
		t.Fatalf("start state has %d transitions, want 3 (B,true,false)", len(s0.Transitions))
	}
	s1 := s0.Transitions[b]
	sTrue := s0.Transitions[tr]
	sFalse := s0.Transitions[fa]
	if s1 == nil || sTrue == nil || sFalse == nil {
		t.Fatal("start state missing transitions")
	}

	// State 1 accepts on $ and shifts or/and.
	if !s1.Accept {
		t.Error("state after B should have the ($ accept) transition")
	}
	sOr := s1.Transitions[or]
	sAnd := s1.Transitions[and]
	if sOr == nil || sAnd == nil {
		t.Fatal("B-state missing or/and transitions")
	}

	// true/false states reduce their unit rules.
	if len(sTrue.Reductions) != 1 || sTrue.Reductions[0].String(syms) != `B ::= true` {
		t.Errorf("true-state reductions: %v", sTrue.Reductions)
	}
	if len(sFalse.Reductions) != 1 || sFalse.Reductions[0].String(syms) != `B ::= false` {
		t.Errorf("false-state reductions: %v", sFalse.Reductions)
	}

	// or/and states share the true/false states (Fig 4.1c shows the
	// re-used boxes 2 and 3).
	if sOr.Transitions[tr] != sTrue || sOr.Transitions[fa] != sFalse {
		t.Error("or-state should reuse the true/false states")
	}
	if sAnd.Transitions[tr] != sTrue || sAnd.Transitions[fa] != sFalse {
		t.Error("and-state should reuse the true/false states")
	}

	// The result states reduce the binary rules and allow continuing.
	s6 := sOr.Transitions[b]
	s7 := sAnd.Transitions[b]
	if s6 == nil || s7 == nil || s6 == s7 {
		t.Fatal("or/and result states wrong")
	}
	if len(s6.Reductions) != 1 || s6.Reductions[0].String(syms) != `B ::= B or B` {
		t.Errorf("or-result reductions: %v", s6.Reductions)
	}
	if s6.Transitions[or] != sOr || s6.Transitions[and] != sAnd {
		t.Error("or-result should loop back to or/and states")
	}
	if len(s7.Reductions) != 1 || s7.Reductions[0].String(syms) != `B ::= B and B` {
		t.Errorf("and-result reductions: %v", s7.Reductions)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a1 := New(fixtures.Booleans())
	a1.GenerateAll()
	a2 := New(fixtures.Booleans())
	a2.GenerateAll()
	if a1.Dump() != a2.Dump() {
		t.Error("GenerateAll is not deterministic")
	}
}

func TestActionsOf(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	syms := g.Symbols()
	tr, _ := syms.Lookup("true")
	or, _ := syms.Lookup("or")

	acts := a.Actions(a.Start(), tr)
	if len(acts) != 1 || acts[0].Kind != Shift {
		t.Fatalf("ACTION(0, true) = %v, want single shift", acts)
	}
	// In the true-state on 'or', only the reduce applies.
	sTrue := a.Start().Transitions[tr]
	acts = a.Actions(sTrue, or)
	if len(acts) != 1 || acts[0].Kind != Reduce {
		t.Fatalf("ACTION(true-state, or) = %v, want single reduce", acts)
	}
	// Error action: empty set.
	acts = a.Actions(a.Start(), or)
	if len(acts) != 0 {
		t.Fatalf("ACTION(0, or) = %v, want empty (error)", acts)
	}
	// Accept on $ in the B-state.
	b, _ := syms.Lookup("B")
	s1 := a.Start().Transitions[b]
	acts = a.Actions(s1, grammar.EOF)
	var haveAccept bool
	for _, ac := range acts {
		if ac.Kind == Accept {
			haveAccept = true
		}
	}
	if !haveAccept {
		t.Fatalf("ACTION(B-state, $) = %v, want accept", acts)
	}
}

func TestActionConflicts(t *testing.T) {
	// In the or-result state on 'or', both a shift and a reduce apply —
	// this is where the parallel parser splits (Fig 4.1b shows s5/r2).
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	syms := g.Symbols()
	b, _ := syms.Lookup("B")
	or, _ := syms.Lookup("or")
	sOr := a.Start().Transitions[b].Transitions[or]
	s6 := sOr.Transitions[b]
	acts := a.Actions(s6, or)
	if len(acts) != 2 {
		t.Fatalf("expected shift/reduce conflict, got %v", acts)
	}
	kinds := map[ActionKind]bool{}
	for _, ac := range acts {
		kinds[ac.Kind] = true
	}
	if !kinds[Shift] || !kinds[Reduce] {
		t.Errorf("conflict should contain shift and reduce: %v", acts)
	}
}

func TestGotoInvariantPanics(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g) // start state still initial
	defer func() {
		if recover() == nil {
			t.Error("GOTO on an initial state must panic (Appendix A)")
		}
	}()
	b, _ := g.Symbols().Lookup("B")
	GotoOf(a.Start(), b)
}

func TestGotoUndefinedPanics(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	or, _ := g.Symbols().Lookup("or")
	defer func() {
		if recover() == nil {
			t.Error("GOTO on missing transition must panic")
		}
	}()
	GotoOf(a.Start(), or) // start has no transition on 'or'
}

func TestRefCountsMatchInEdges(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	want := map[*State]int{a.Start(): 1} // root reference
	for _, s := range a.States() {
		for _, succ := range s.Transitions {
			want[succ]++
		}
	}
	for _, s := range a.States() {
		if s.RefCount != want[s] {
			t.Errorf("state %d refcount %d, want %d", s.ID, s.RefCount, want[s])
		}
	}
}

func TestEmptyGrammarAutomaton(t *testing.T) {
	// IPG starts interactive sessions with empty grammars; the automaton
	// must cope: a start state with an empty kernel that expands to
	// nothing.
	g := grammar.New(nil)
	a := New(g)
	a.GenerateAll()
	if a.Len() != 1 {
		t.Fatalf("empty grammar graph has %d states, want 1", a.Len())
	}
	if a.Start().Type != Complete {
		t.Error("start state should expand to complete")
	}
	if len(a.Start().Transitions) != 0 || a.Start().Accept {
		t.Error("empty grammar start state should have no actions")
	}
}

func TestEpsilonRuleAutomaton(t *testing.T) {
	g := grammar.MustParse(`
START ::= A
A ::= ε
A ::= "x" A
`)
	a := New(g)
	a.GenerateAll()
	// Start state closure contains A ::= . which is an immediate
	// reduction of an epsilon rule.
	s0 := a.Start()
	var haveEps bool
	for _, r := range s0.Reductions {
		if r.Len() == 0 {
			haveEps = true
		}
	}
	if !haveEps {
		t.Errorf("start state should reduce the epsilon rule:\n%s", a.Dump())
	}
}

func TestInternReuse(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	k := StartKernel(g)
	if s := a.Intern(k); s != a.Start() {
		t.Error("Intern of existing kernel should return the existing state")
	}
	created := a.Stats.StatesCreated
	a.Intern(k)
	if a.Stats.StatesCreated != created {
		t.Error("Intern of existing kernel should not create a state")
	}
}

func TestRemove(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	n := a.Len()
	var victim *State
	for _, s := range a.States() {
		if s != a.Start() {
			victim = s
			break
		}
	}
	a.Remove(victim)
	if a.Len() != n-1 {
		t.Errorf("Remove did not shrink the graph: %d -> %d", n, a.Len())
	}
	if _, ok := a.Lookup(victim.Kernel); ok {
		t.Error("removed state still in bookkeeping table")
	}
	if a.Stats.StatesRemoved != 1 {
		t.Errorf("StatesRemoved = %d, want 1", a.Stats.StatesRemoved)
	}
}

func TestStatsAccumulate(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	if a.Stats.Expansions != 8 {
		t.Errorf("Expansions = %d, want 8", a.Stats.Expansions)
	}
	if a.Stats.StatesCreated != 8 {
		t.Errorf("StatesCreated = %d, want 8", a.Stats.StatesCreated)
	}
	if a.Stats.ClosureItems == 0 {
		t.Error("ClosureItems not counted")
	}
}

func TestTypeCounts(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	i, c, d := a.TypeCounts()
	if i != 1 || c != 0 || d != 0 {
		t.Errorf("fresh automaton counts = %d/%d/%d, want 1/0/0", i, c, d)
	}
	a.GenerateAll()
	i, c, d = a.TypeCounts()
	if i != 0 || c != 8 || d != 0 {
		t.Errorf("generated counts = %d/%d/%d, want 0/8/0", i, c, d)
	}
}

func TestFormatTableFig41(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	table := a.FormatTable()
	for _, want := range []string{"state", "acc", "s", "r0", "true", "false"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	// The conflict cells of Fig 4.1(b) join shift and reduce with '/'.
	if !strings.Contains(table, "/") {
		t.Errorf("expected conflict cell with '/':\n%s", table)
	}
}

func TestFormatTableInitialRows(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	table := a.FormatTable()
	if !strings.Contains(table, "·") {
		t.Errorf("ungenerated states should render as '·':\n%s", table)
	}
}

func TestDOT(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	dot := a.DOT()
	for _, want := range []string{"digraph", "accept", "n0 ->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestResetStartKernel(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	// Add a START rule behind the automaton's back and reset.
	b, _ := g.Symbols().Lookup("B")
	not := g.Symbols().MustIntern("not", grammar.Terminal)
	if err := g.AddRule(grammar.NewRule(g.Start(), not, b)); err != nil {
		t.Fatal(err)
	}
	old := a.Start()
	a.ResetStartKernel()
	if a.Start() != old {
		t.Error("start state object should keep its identity")
	}
	if len(a.Start().Kernel) != 2 {
		t.Errorf("start kernel has %d items, want 2", len(a.Start().Kernel))
	}
	if got, ok := a.Lookup(a.Start().Kernel); !ok || got != old {
		t.Error("start state not re-keyed")
	}
}

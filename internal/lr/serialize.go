package lr

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ipg/internal/grammar"
)

// This file implements a textual persistence format for graphs of item
// sets, so generated (or partially generated!) parse tables survive
// process restarts — an interactive environment can resume a session
// without regenerating the table parts its inputs already paid for.
//
// Format (line-oriented):
//
//	ipg-table v1
//	start <id>
//	state <id> <initial|complete>
//	k <dot> <lhs> <rhs...>          (kernel item; symbols by name)
//	r <lhs> <rhs...>                (reduction)
//	a                               (accept transition)
//	t <sym> <stateID>               (transition)
//
// Rules are stored by value (left-hand side and right-hand side names)
// and resolved against the grammar at load time, so a table only loads
// against a grammar that still contains its rules. Dirty states are
// saved as initial (their history is a memory-only optimization).

const tableMagic = "ipg-table v1"

// Save serializes the graph of item sets.
func (a *Automaton) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := a.g.Symbols()
	fmt.Fprintln(bw, tableMagic)
	fmt.Fprintf(bw, "start %d\n", a.start.ID)
	for _, s := range a.States() {
		typ := "complete"
		if s.Type != Complete {
			typ = "initial"
		}
		fmt.Fprintf(bw, "state %d %s\n", s.ID, typ)
		for _, it := range s.Kernel {
			fmt.Fprintf(bw, "k %d %s", it.Dot, quoteName(names.Name(it.Rule.Lhs)))
			for _, sym := range it.Rule.Rhs {
				fmt.Fprintf(bw, " %s", quoteName(names.Name(sym)))
			}
			fmt.Fprintln(bw)
		}
		if s.Type != Complete {
			continue
		}
		for _, r := range s.Reductions {
			fmt.Fprintf(bw, "r %s", quoteName(names.Name(r.Lhs)))
			for _, sym := range r.Rhs {
				fmt.Fprintf(bw, " %s", quoteName(names.Name(sym)))
			}
			fmt.Fprintln(bw)
		}
		if s.Accept {
			fmt.Fprintln(bw, "a")
		}
		for _, sym := range s.TransitionSymbols() {
			fmt.Fprintf(bw, "t %s %d\n", quoteName(names.Name(sym)), s.Transitions[sym].ID)
		}
	}
	return bw.Flush()
}

// Load deserializes a graph of item sets against g, which must contain
// every rule the table references. Reference counts are recomputed.
func Load(g *grammar.Grammar, r io.Reader) (*Automaton, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() || sc.Text() != tableMagic {
		return nil, fmt.Errorf("lr: not an ipg table (missing %q header)", tableMagic)
	}

	a := &Automaton{g: g, states: make(map[string]*State)}
	byID := map[int]*State{}
	type pendingTrans struct {
		from *State
		sym  grammar.Symbol
		to   int
	}
	var trans []pendingTrans
	var cur *State
	startID := -1
	line := 1

	lookupSym := func(name string) (grammar.Symbol, error) {
		s, ok := g.Symbols().Lookup(name)
		if !ok {
			return grammar.NoSymbol, fmt.Errorf("lr: line %d: unknown symbol %q", line, name)
		}
		return s, nil
	}
	lookupRule := func(fields []string) (*grammar.Rule, error) {
		lhs, err := lookupSym(fields[0])
		if err != nil {
			return nil, err
		}
		rhs := make([]grammar.Symbol, 0, len(fields)-1)
		for _, f := range fields[1:] {
			s, err := lookupSym(f)
			if err != nil {
				return nil, err
			}
			rhs = append(rhs, s)
		}
		probe := grammar.NewRule(lhs, rhs...)
		rule, ok := g.Lookup(probe)
		if !ok {
			return nil, fmt.Errorf("lr: line %d: rule %s not in grammar", line, probe.String(g.Symbols()))
		}
		return rule, nil
	}

	var kernelItems []Item
	flushKernel := func() {
		if cur == nil {
			return
		}
		cur.Kernel = NewKernel(kernelItems)
		kernelItems = nil
	}

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields, err := splitQuoted(text)
		if err != nil {
			return nil, fmt.Errorf("lr: line %d: %v", line, err)
		}
		switch fields[0] {
		case "start":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lr: line %d: malformed start", line)
			}
			startID, err = strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("lr: line %d: %v", line, err)
			}
		case "state":
			if len(fields) != 3 {
				return nil, fmt.Errorf("lr: line %d: malformed state", line)
			}
			flushKernel()
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("lr: line %d: %v", line, err)
			}
			cur = &State{ID: id}
			if fields[2] == "complete" {
				cur.Type = Complete
				cur.Transitions = map[grammar.Symbol]*State{}
			}
			if byID[id] != nil {
				return nil, fmt.Errorf("lr: line %d: duplicate state %d", line, id)
			}
			byID[id] = cur
			if id >= a.nextID {
				a.nextID = id + 1
			}
			a.Stats.StatesCreated++
		case "k":
			if cur == nil || len(fields) < 3 {
				return nil, fmt.Errorf("lr: line %d: kernel item outside state", line)
			}
			dot, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("lr: line %d: %v", line, err)
			}
			rule, err := lookupRule(fields[2:])
			if err != nil {
				return nil, err
			}
			if dot < 0 || dot > rule.Len() {
				return nil, fmt.Errorf("lr: line %d: dot %d out of range", line, dot)
			}
			kernelItems = append(kernelItems, Item{Rule: rule, Dot: dot})
		case "r":
			if cur == nil || cur.Type != Complete || len(fields) < 2 {
				return nil, fmt.Errorf("lr: line %d: reduction outside complete state", line)
			}
			rule, err := lookupRule(fields[1:])
			if err != nil {
				return nil, err
			}
			cur.Reductions = append(cur.Reductions, rule)
		case "a":
			if cur == nil || cur.Type != Complete {
				return nil, fmt.Errorf("lr: line %d: accept outside complete state", line)
			}
			cur.Accept = true
		case "t":
			if cur == nil || cur.Type != Complete || len(fields) != 3 {
				return nil, fmt.Errorf("lr: line %d: malformed transition", line)
			}
			sym, err := lookupSym(fields[1])
			if err != nil {
				return nil, err
			}
			to, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("lr: line %d: %v", line, err)
			}
			trans = append(trans, pendingTrans{from: cur, sym: sym, to: to})
		default:
			return nil, fmt.Errorf("lr: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flushKernel()

	for _, s := range byID {
		key := s.Kernel.Key()
		if other, dup := a.states[key]; dup {
			return nil, fmt.Errorf("lr: states %d and %d share a kernel", other.ID, s.ID)
		}
		a.states[key] = s
		if s.Type == Complete {
			s.Publish()
		}
	}
	for _, pt := range trans {
		to, ok := byID[pt.to]
		if !ok {
			return nil, fmt.Errorf("lr: transition to unknown state %d", pt.to)
		}
		pt.from.Transitions[pt.sym] = to
		to.RefCount++
	}
	start, ok := byID[startID]
	if !ok {
		return nil, fmt.Errorf("lr: start state %d missing", startID)
	}
	a.start = start
	start.RefCount++
	return a, nil
}

// quoteName escapes a symbol name for the table format (names may
// contain spaces, e.g. separated-list auxiliaries).
func quoteName(name string) string { return strconv.Quote(name) }

// splitQuoted splits a line into the directive word followed by quoted
// or plain fields.
func splitQuoted(s string) ([]string, error) {
	var out []string
	for len(s) > 0 {
		switch s[0] {
		case ' ', '\t':
			s = s[1:]
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote")
			}
			field, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, field)
			s = s[end+1:]
		default:
			j := strings.IndexAny(s, " \t")
			if j < 0 {
				out = append(out, s)
				s = ""
			} else {
				out = append(out, s[:j])
				s = s[j:]
			}
		}
	}
	return out, nil
}

package lr

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ipg/internal/grammar"
)

// This file implements a textual persistence format for graphs of item
// sets, so generated (or partially generated!) parse tables survive
// process restarts — an interactive environment or a long-running parse
// service can resume a session without regenerating the table parts its
// inputs already paid for.
//
// Format v2 (line-oriented):
//
//	ipg-table v2
//	stats <expansions> <created> <removed> <closureItems>
//	start <id>
//	state <id> <initial|complete|dirty>
//	k <dot> <lhs> <rhs...>          (kernel item; symbols by name)
//	p                               (publication flag; complete states)
//	r <lhs> <rhs...>                (reduction)
//	a                               (accept transition)
//	t <sym> <stateID>               (transition)
//	ot <sym> <stateID>              (dirty history: old transition)
//	oa                              (dirty history: old accept)
//
// Version 2 round-trips the full lazy/incremental state, not just the
// automaton skeleton: dirty states keep their history (OldTransitions/
// OldAccept), so reference counts after a reload match the live table
// exactly and a resumed RE-EXPAND releases the same references it would
// have released before the restart; publication flags are explicit, so
// the concurrent fast path resumes warm; and the generator work counters
// (Stats) survive, so coverage measurements continue across restarts.
//
// Rules are stored by value (left-hand side and right-hand side names)
// and resolved against the grammar at load time, so a table only loads
// against a grammar that still contains its rules. Load also accepts the
// v1 format of earlier sessions, which stored dirty states as initial
// (dropping their history) and implied publication from completeness.

const (
	tableMagic   = "ipg-table v2"
	tableMagicV1 = "ipg-table v1"
)

// Save serializes the graph of item sets, including the lazy frontier
// (initial states), invalidation history (dirty states) and publication
// flags. The output is deterministic: states sorted by ID, transitions
// sorted by symbol — so Save∘Load∘Save is byte-identical.
func (a *Automaton) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := a.g.Symbols()
	fmt.Fprintln(bw, tableMagic)
	fmt.Fprintf(bw, "stats %d %d %d %d\n",
		a.Stats.Expansions, a.Stats.StatesCreated, a.Stats.StatesRemoved, a.Stats.ClosureItems)
	fmt.Fprintf(bw, "start %d\n", a.start.ID)
	for _, s := range a.States() {
		fmt.Fprintf(bw, "state %d %s\n", s.ID, s.Type)
		for _, it := range s.Kernel {
			fmt.Fprintf(bw, "k %d %s", it.Dot, quoteName(names.Name(it.Rule.Lhs)))
			for _, sym := range it.Rule.Rhs {
				fmt.Fprintf(bw, " %s", quoteName(names.Name(sym)))
			}
			fmt.Fprintln(bw)
		}
		switch s.Type {
		case Complete:
			if s.Published() {
				fmt.Fprintln(bw, "p")
			}
			for _, r := range s.Reductions {
				fmt.Fprintf(bw, "r %s", quoteName(names.Name(r.Lhs)))
				for _, sym := range r.Rhs {
					fmt.Fprintf(bw, " %s", quoteName(names.Name(sym)))
				}
				fmt.Fprintln(bw)
			}
			if s.Accept {
				fmt.Fprintln(bw, "a")
			}
			for _, sym := range s.TransitionSymbols() {
				fmt.Fprintf(bw, "t %s %d\n", quoteName(names.Name(sym)), s.Transitions[sym].ID)
			}
		case Dirty:
			// History keeps the references the state still holds; a resumed
			// re-expansion releases them exactly as the live table would.
			if s.OldAccept {
				fmt.Fprintln(bw, "oa")
			}
			for _, sym := range oldTransitionSymbols(s) {
				fmt.Fprintf(bw, "ot %s %d\n", quoteName(names.Name(sym)), s.OldTransitions[sym].ID)
			}
		}
	}
	return bw.Flush()
}

// oldTransitionSymbols sorts a dirty state's history symbols for
// deterministic output (mirrors TransitionSymbols).
func oldTransitionSymbols(s *State) []grammar.Symbol {
	out := make([]grammar.Symbol, 0, len(s.OldTransitions))
	for sym := range s.OldTransitions {
		out = append(out, sym)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Load deserializes a graph of item sets against g, which must contain
// every rule the table references. Reference counts are recomputed from
// current transitions plus dirty-state history (v2 keeps them identical
// to the live table that was saved). Both the v2 and the legacy v1
// format are accepted.
func Load(g *grammar.Grammar, r io.Reader) (*Automaton, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var v1 bool
	switch {
	case !sc.Scan():
		return nil, fmt.Errorf("lr: not an ipg table (missing %q header)", tableMagic)
	case sc.Text() == tableMagic:
	case sc.Text() == tableMagicV1:
		v1 = true
	default:
		return nil, fmt.Errorf("lr: not an ipg table (missing %q header)", tableMagic)
	}

	a := &Automaton{g: g, states: make(map[string]*State)}
	byID := map[int]*State{}
	type pendingTrans struct {
		from *State
		sym  grammar.Symbol
		to   int
		old  bool
	}
	var trans []pendingTrans
	var cur *State
	published := map[*State]bool{}
	startID := -1
	statsSeen := false
	line := 1

	lookupSym := func(name string) (grammar.Symbol, error) {
		s, ok := g.Symbols().Lookup(name)
		if !ok {
			return grammar.NoSymbol, fmt.Errorf("lr: line %d: unknown symbol %q", line, name)
		}
		return s, nil
	}
	lookupRule := func(fields []string) (*grammar.Rule, error) {
		lhs, err := lookupSym(fields[0])
		if err != nil {
			return nil, err
		}
		rhs := make([]grammar.Symbol, 0, len(fields)-1)
		for _, f := range fields[1:] {
			s, err := lookupSym(f)
			if err != nil {
				return nil, err
			}
			rhs = append(rhs, s)
		}
		probe := grammar.NewRule(lhs, rhs...)
		rule, ok := g.Lookup(probe)
		if !ok {
			return nil, fmt.Errorf("lr: line %d: rule %s not in grammar", line, probe.String(g.Symbols()))
		}
		return rule, nil
	}

	var kernelItems []Item
	flushKernel := func() {
		if cur == nil {
			return
		}
		cur.Kernel = NewKernel(kernelItems)
		kernelItems = nil
	}

	var stats Stats
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields, err := splitQuoted(text)
		if err != nil {
			return nil, fmt.Errorf("lr: line %d: %v", line, err)
		}
		switch fields[0] {
		case "stats":
			if len(fields) != 5 {
				return nil, fmt.Errorf("lr: line %d: malformed stats", line)
			}
			nums := make([]int, 4)
			for i, f := range fields[1:] {
				nums[i], err = strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("lr: line %d: %v", line, err)
				}
			}
			stats = Stats{Expansions: nums[0], StatesCreated: nums[1], StatesRemoved: nums[2], ClosureItems: nums[3]}
			statsSeen = true
		case "start":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lr: line %d: malformed start", line)
			}
			startID, err = strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("lr: line %d: %v", line, err)
			}
		case "state":
			if len(fields) != 3 {
				return nil, fmt.Errorf("lr: line %d: malformed state", line)
			}
			flushKernel()
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("lr: line %d: %v", line, err)
			}
			cur = &State{ID: id}
			switch fields[2] {
			case "initial":
				cur.Type = Initial
			case "complete":
				cur.Type = Complete
				cur.Transitions = map[grammar.Symbol]*State{}
			case "dirty":
				if v1 {
					return nil, fmt.Errorf("lr: line %d: dirty state in v1 table", line)
				}
				cur.Type = Dirty
			default:
				return nil, fmt.Errorf("lr: line %d: unknown state type %q", line, fields[2])
			}
			if byID[id] != nil {
				return nil, fmt.Errorf("lr: line %d: duplicate state %d", line, id)
			}
			byID[id] = cur
			if id >= a.nextID {
				a.nextID = id + 1
			}
			a.Stats.StatesCreated++
		case "k":
			if cur == nil || len(fields) < 3 {
				return nil, fmt.Errorf("lr: line %d: kernel item outside state", line)
			}
			dot, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("lr: line %d: %v", line, err)
			}
			rule, err := lookupRule(fields[2:])
			if err != nil {
				return nil, err
			}
			if dot < 0 || dot > rule.Len() {
				return nil, fmt.Errorf("lr: line %d: dot %d out of range", line, dot)
			}
			kernelItems = append(kernelItems, Item{Rule: rule, Dot: dot})
		case "p":
			if cur == nil || cur.Type != Complete {
				return nil, fmt.Errorf("lr: line %d: publication flag outside complete state", line)
			}
			published[cur] = true
		case "r":
			if cur == nil || cur.Type != Complete || len(fields) < 2 {
				return nil, fmt.Errorf("lr: line %d: reduction outside complete state", line)
			}
			rule, err := lookupRule(fields[1:])
			if err != nil {
				return nil, err
			}
			cur.Reductions = append(cur.Reductions, rule)
		case "a":
			if cur == nil || cur.Type != Complete {
				return nil, fmt.Errorf("lr: line %d: accept outside complete state", line)
			}
			cur.Accept = true
		case "oa":
			if cur == nil || cur.Type != Dirty {
				return nil, fmt.Errorf("lr: line %d: old accept outside dirty state", line)
			}
			cur.OldAccept = true
		case "t", "ot":
			old := fields[0] == "ot"
			if cur == nil || len(fields) != 3 {
				return nil, fmt.Errorf("lr: line %d: malformed transition", line)
			}
			if (old && cur.Type != Dirty) || (!old && cur.Type != Complete) {
				return nil, fmt.Errorf("lr: line %d: %s transition in %s state", line, fields[0], cur.Type)
			}
			sym, err := lookupSym(fields[1])
			if err != nil {
				return nil, err
			}
			to, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("lr: line %d: %v", line, err)
			}
			trans = append(trans, pendingTrans{from: cur, sym: sym, to: to, old: old})
		default:
			return nil, fmt.Errorf("lr: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flushKernel()

	for _, s := range byID {
		key := s.Kernel.Key()
		if other, dup := a.states[key]; dup {
			return nil, fmt.Errorf("lr: states %d and %d share a kernel", other.ID, s.ID)
		}
		a.states[key] = s
		switch {
		case s.Type == Complete && (v1 || published[s]):
			// v1 implied publication from completeness; v2 records the
			// actual flag so the concurrent fast path resumes exactly warm.
			s.Publish()
		case s.Type == Dirty:
			s.OldTransitions = map[grammar.Symbol]*State{}
		}
	}
	for _, pt := range trans {
		to, ok := byID[pt.to]
		if !ok {
			return nil, fmt.Errorf("lr: transition to unknown state %d", pt.to)
		}
		if pt.old {
			pt.from.OldTransitions[pt.sym] = to
		} else {
			pt.from.Transitions[pt.sym] = to
		}
		to.RefCount++
	}
	start, ok := byID[startID]
	if !ok {
		return nil, fmt.Errorf("lr: start state %d missing", startID)
	}
	a.start = start
	start.RefCount++
	if statsSeen {
		a.Stats = stats
	}
	return a, nil
}

// quoteName escapes a symbol name for the table format (names may
// contain spaces, e.g. separated-list auxiliaries).
func quoteName(name string) string { return strconv.Quote(name) }

// splitQuoted splits a line into the directive word followed by quoted
// or plain fields.
func splitQuoted(s string) ([]string, error) {
	var out []string
	for len(s) > 0 {
		switch s[0] {
		case ' ', '\t':
			s = s[1:]
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote")
			}
			field, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, field)
			s = s[end+1:]
		default:
			j := strings.IndexAny(s, " \t")
			if j < 0 {
				out = append(out, s)
				s = ""
			} else {
				out = append(out, s[:j])
				s = s[j:]
			}
		}
	}
	return out, nil
}

package lr

import (
	"strings"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/grammar"
)

func roundTrip(t *testing.T, a *Automaton, g *grammar.Grammar) *Automaton {
	t.Helper()
	var buf strings.Builder
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(g, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Load: %v\n%s", err, buf.String())
	}
	return loaded
}

func TestSerializeRoundTrip(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	loaded := roundTrip(t, a, g)
	if a.Dump() != loaded.Dump() {
		t.Errorf("round trip changed the graph:\n%s\n--- vs ---\n%s", a.Dump(), loaded.Dump())
	}
	if loaded.Start().ID != a.Start().ID {
		t.Error("start state lost")
	}
}

func TestSerializePartialTable(t *testing.T) {
	// A partially generated (lazy) table persists with its initial
	// states intact, so a later session resumes where this one stopped.
	g := fixtures.Booleans()
	a := New(g)
	a.Expand(a.Start()) // only the start state expanded
	loaded := roundTrip(t, a, g)
	i, c, _ := loaded.TypeCounts()
	if c != 1 || i != 3 {
		t.Errorf("partial table types: complete=%d initial=%d, want 1/3", c, i)
	}
	if a.Dump() != loaded.Dump() {
		t.Errorf("partial round trip mismatch")
	}
}

func TestSerializeRefCounts(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	loaded := roundTrip(t, a, g)
	for _, s := range loaded.States() {
		orig, ok := a.Lookup(s.Kernel)
		if !ok {
			t.Fatalf("state %d missing from original", s.ID)
		}
		if s.RefCount != orig.RefCount {
			t.Errorf("state %d refcount %d, want %d", s.ID, s.RefCount, orig.RefCount)
		}
	}
}

func TestSerializeQuotedNames(t *testing.T) {
	// Symbol names with spaces and quotes (separated-list auxiliaries,
	// literal terminals) must survive.
	g := grammar.New(nil)
	st := g.Symbols()
	lhs := st.MustIntern(`{X ","}+`, grammar.Nonterminal)
	quote := st.MustIntern(`"`, grammar.Terminal)
	space := st.MustIntern(`a b`, grammar.Terminal)
	if err := g.AddRule(grammar.NewRule(g.Start(), lhs)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRule(grammar.NewRule(lhs, quote, space)); err != nil {
		t.Fatal(err)
	}
	a := New(g)
	a.GenerateAll()
	loaded := roundTrip(t, a, g)
	if a.Dump() != loaded.Dump() {
		t.Errorf("quoted names mangled:\n%s\n--- vs ---\n%s", a.Dump(), loaded.Dump())
	}
}

// dirtyOne mimics the incremental generator's invalidate (refcount
// policy): the state keeps its transitions as history.
func dirtyOne(s *State) {
	s.Unpublish()
	s.OldTransitions = s.Transitions
	s.OldAccept = s.Accept
	s.Type = Dirty
	s.Transitions = nil
	s.Reductions = nil
	s.Accept = false
}

func TestSerializeDirtyHistory(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	var victim *State
	for _, s := range a.States() {
		if s != a.Start() && len(s.Transitions) > 0 {
			victim = s
			break
		}
	}
	if victim == nil {
		t.Fatal("no state with transitions")
	}
	dirtyOne(victim)
	loaded := roundTrip(t, a, g)
	lv, ok := loaded.Lookup(victim.Kernel)
	if !ok {
		t.Fatal("dirty state lost")
	}
	if lv.Type != Dirty {
		t.Fatalf("loaded type %v, want dirty", lv.Type)
	}
	if lv.Published() {
		t.Error("dirty state must not be published after load")
	}
	if len(lv.OldTransitions) != len(victim.OldTransitions) || lv.OldAccept != victim.OldAccept {
		t.Errorf("history lost: %d old transitions (want %d), oldAccept %v (want %v)",
			len(lv.OldTransitions), len(victim.OldTransitions), lv.OldAccept, victim.OldAccept)
	}
	// Reference counts must match the live table exactly: dirty history
	// still holds its references until RE-EXPAND releases them.
	for _, s := range loaded.States() {
		orig, ok := a.Lookup(s.Kernel)
		if !ok {
			t.Fatalf("state %d missing from original", s.ID)
		}
		if s.RefCount != orig.RefCount {
			t.Errorf("state %d refcount %d, want %d", s.ID, s.RefCount, orig.RefCount)
		}
	}
}

func TestSerializeByteIdentical(t *testing.T) {
	// Save∘Load∘Save is byte-identical, including stats and publication
	// flags — the golden property warm-restart snapshots rely on.
	g := fixtures.Booleans()
	a := New(g)
	a.Expand(a.Start())
	var first strings.Builder
	if err := a.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, a, g)
	var second strings.Builder
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("re-serialization differs:\n%s\n--- vs ---\n%s", first.String(), second.String())
	}
	if loaded.Stats != a.Stats {
		t.Errorf("stats lost: %+v want %+v", loaded.Stats, a.Stats)
	}
}

func TestSerializePublicationFlags(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	loaded := roundTrip(t, a, g)
	for _, s := range loaded.States() {
		if s.Type == Complete && !s.Published() {
			t.Errorf("state %d complete but unpublished after load", s.ID)
		}
	}
}

func TestLoadV1Compat(t *testing.T) {
	// Tables saved by earlier sessions (v1 header, publication implied,
	// no stats line) still load.
	g := fixtures.Booleans()
	text := tableMagicV1 + "\nstart 0\nstate 0 complete\nk 0 \"B\" \"true\"\nr \"B\" \"true\"\n"
	a, err := Load(g, strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Start().Published() {
		t.Error("v1 complete state should load published")
	}
	if a.Stats.StatesCreated != 1 {
		t.Errorf("v1 stats computed: %+v", a.Stats)
	}
	// v1 tables cannot contain dirty states.
	bad := tableMagicV1 + "\nstart 0\nstate 0 dirty\nk 0 \"B\" \"true\"\n"
	if _, err := Load(g, strings.NewReader(bad)); err == nil {
		t.Error("dirty state in v1 table should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	g := fixtures.Booleans()
	for name, text := range map[string]string{
		"bad magic":     "nope\n",
		"unknown sym":   tableMagic + "\nstart 0\nstate 0 initial\nk 0 \"NOPE\"\n",
		"missing rule":  tableMagic + "\nstart 0\nstate 0 initial\nk 0 \"B\" \"B\"\n",
		"bad dot":       tableMagic + "\nstart 0\nstate 0 initial\nk 9 \"B\" \"true\"\n",
		"dangling goto": tableMagic + "\nstart 0\nstate 0 complete\nk 0 \"B\" \"true\"\nt \"true\" 7\n",
		"no start":      tableMagic + "\nstart 3\nstate 0 initial\nk 0 \"B\" \"true\"\n",
		"dup state":     tableMagic + "\nstart 0\nstate 0 initial\nstate 0 initial\n",
		"bad type":      tableMagic + "\nstart 0\nstate 0 wobbly\n",
		"pub outside":   tableMagic + "\nstart 0\nstate 0 initial\nk 0 \"B\" \"true\"\np\n",
		"ot in complet": tableMagic + "\nstart 0\nstate 0 complete\nk 0 \"B\" \"true\"\not \"true\" 0\n",
		"oa in initial": tableMagic + "\nstart 0\nstate 0 initial\nk 0 \"B\" \"true\"\noa\n",
		"bad stats":     tableMagic + "\nstats 1 2\nstart 0\nstate 0 initial\nk 0 \"B\" \"true\"\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(g, strings.NewReader(text)); err == nil {
				t.Errorf("Load should fail for %s", name)
			}
		})
	}
}

func TestLoadedTableParses(t *testing.T) {
	g := fixtures.Booleans()
	a := New(g)
	a.GenerateAll()
	loaded := roundTrip(t, a, g)
	// Drive the loaded table directly through ACTION/GOTO.
	tr, _ := g.Symbols().Lookup("true")
	acts := loaded.Actions(loaded.Start(), tr)
	if len(acts) != 1 || acts[0].Kind != Shift {
		t.Fatalf("loaded table ACTION wrong: %v", acts)
	}
}

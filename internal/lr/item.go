// Package lr implements the LR(0) machinery shared by the conventional
// parser generator PG (section 4 of the paper), the lazy generator
// (section 5) and the incremental generator IPG (section 6): dotted items,
// sets of items with kernel/transitions/reductions/type fields, CLOSURE,
// EXPAND, and the conventional eager GENERATE-PARSER.
//
// The package exposes the graph of item sets directly — the paper keeps
// the kernel fields at parse time ("we shall not use these [tabular]
// parse tables further, because the lazy parser generator also needs the
// kernel field of each set of items during parsing") — and additionally
// offers the classical tabular ACTION/GOTO rendering of Fig 4.1(b).
package lr

import (
	"sort"
	"strconv"
	"strings"

	"ipg/internal/grammar"
)

// Item is a dotted rule A ::= α • β: a rule plus a cursor position
// 0 ≤ Dot ≤ len(Rhs). Items are compared by rule value (not pointer), so
// kernels survive delete/re-add cycles of equal rules.
type Item struct {
	Rule *grammar.Rule
	Dot  int
}

// NewItem returns the item for rule with the dot at position dot.
func NewItem(rule *grammar.Rule, dot int) Item {
	if dot < 0 || dot > rule.Len() {
		panic("lr: item dot out of range")
	}
	return Item{Rule: rule, Dot: dot}
}

// AtEnd reports whether the dot is at the end of the rule (the rule has
// been recognized completely).
func (it Item) AtEnd() bool { return it.Dot == it.Rule.Len() }

// AfterDot returns the symbol immediately after the dot, or NoSymbol when
// the dot is at the end.
func (it Item) AfterDot() grammar.Symbol {
	if it.AtEnd() {
		return grammar.NoSymbol
	}
	return it.Rule.Rhs[it.Dot]
}

// Advance returns the item with the dot moved one symbol to the right.
func (it Item) Advance() Item {
	if it.AtEnd() {
		panic("lr: Advance past end of rule")
	}
	return Item{Rule: it.Rule, Dot: it.Dot + 1}
}

// Key is the item's value identity: rule value key plus dot. The LALR
// lookahead machinery keys its closure bookkeeping on it, so it is
// exported (and cheaper than String, which resolves symbol names).
func (it Item) Key() string {
	return it.Rule.Key() + "@" + strconv.Itoa(it.Dot)
}

// String renders the item with a '.' cursor, e.g. "B ::= B . or B".
func (it Item) String(t *grammar.SymbolTable) string {
	var b strings.Builder
	b.WriteString(t.Name(it.Rule.Lhs))
	b.WriteString(" ::=")
	for i, s := range it.Rule.Rhs {
		if i == it.Dot {
			b.WriteString(" .")
		}
		b.WriteByte(' ')
		b.WriteString(t.Name(s))
	}
	if it.AtEnd() {
		b.WriteString(" .")
	}
	return b.String()
}

// Kernel is a canonicalized set of items: sorted by item key, duplicates
// removed. Two kernels are equal iff their Key()s are equal.
type Kernel []Item

// NewKernel canonicalizes items into a Kernel.
func NewKernel(items []Item) Kernel {
	k := make(Kernel, len(items))
	copy(k, items)
	sort.Slice(k, func(i, j int) bool { return k[i].Key() < k[j].Key() })
	// Deduplicate (equal value keys).
	out := k[:0]
	prev := ""
	for _, it := range k {
		ik := it.Key()
		if ik == prev {
			continue
		}
		out = append(out, it)
		prev = ik
	}
	return out
}

// Key returns the canonical identity of the kernel, usable as a map key.
func (k Kernel) Key() string {
	var b strings.Builder
	for i, it := range k {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(it.Key())
	}
	return b.String()
}

// Contains reports whether the kernel contains an item value-equal to it.
func (k Kernel) Contains(it Item) bool {
	return k.Index(it) >= 0
}

// Index returns the position of the item value-equal to it in the
// canonical kernel order, or -1 when absent. The LALR propagation
// network addresses lookahead slots by (state, kernel index); since a
// state's kernel is its identity, those indices are stable for the
// state's whole lifetime.
func (k Kernel) Index(it Item) int {
	want := it.Key()
	for i, x := range k {
		if x.Key() == want {
			return i
		}
	}
	return -1
}

// String renders the kernel one item per line in canonical order.
func (k Kernel) String(t *grammar.SymbolTable) string {
	var b strings.Builder
	for i, it := range k {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(it.String(t))
	}
	return b.String()
}

// Closure extends kernel with all rules that may become applicable
// (CLOSURE, section 4): while some item A ::= α • B β is in the closure
// and B ::= γ is a rule of g, the item B ::= • γ is added. The result
// preserves first-appearance order: kernel items first (in the order
// given), then closure items in discovery order, which makes EXPAND's
// transition ordering — and therefore state numbering — deterministic.
func Closure(g *grammar.Grammar, kernel []Item) []Item {
	closure := make([]Item, 0, len(kernel)*2)
	seen := make(map[string]bool, len(kernel)*2)
	add := func(it Item) {
		k := it.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		closure = append(closure, it)
	}
	for _, it := range kernel {
		add(it)
	}
	for i := 0; i < len(closure); i++ {
		b := closure[i].AfterDot()
		if b == grammar.NoSymbol || g.Symbols().Kind(b) != grammar.Nonterminal {
			continue
		}
		for _, r := range g.RulesFor(b) {
			add(Item{Rule: r, Dot: 0})
		}
	}
	return closure
}

package lr

import (
	"fmt"
	"sort"

	"ipg/internal/grammar"
)

// Table is the parser-facing view of a generated parser: the control
// structure PAR-PARSE is driven by (section 3.2). The conventional
// Automaton implements it directly; the lazy/incremental generator in
// internal/core implements it by expanding states on demand inside
// Actions.
type Table interface {
	// Grammar returns the grammar the table was generated from.
	Grammar() *grammar.Grammar
	// Start returns the state in which parsing starts.
	Start() *State
	// Actions returns the set of possible actions in state s on terminal
	// sym (ACTION, section 4/5). An empty result is the error action.
	Actions(s *State, sym grammar.Symbol) []Action
	// AppendActions appends the same action set to dst and returns the
	// extended slice. It is the allocation-free form of Actions: the
	// parse engines call it with a reused buffer, so the steady-state
	// token loop does no per-call heap allocation.
	AppendActions(dst []Action, s *State, sym grammar.Symbol) []Action
	// Goto returns the successor of s on nonterminal sym (GOTO,
	// section 4). Per Appendix A it must only be called on complete
	// states; implementations check this invariant.
	Goto(s *State, sym grammar.Symbol) *State
}

// Stats counts generator work, for the measurements of section 7.
type Stats struct {
	// Expansions is the number of EXPAND calls (initial/dirty state →
	// complete state), including re-expansions.
	Expansions int
	// StatesCreated is the total number of states ever created,
	// including states later removed by garbage collection.
	StatesCreated int
	// StatesRemoved is the number of states removed by garbage
	// collection.
	StatesRemoved int
	// ClosureItems is the total number of items produced by all CLOSURE
	// computations, a proxy for generator work.
	ClosureItems int
}

// Automaton is the graph of item sets for a grammar, together with the
// bookkeeping table Itemsets (here a map from canonical kernel keys to
// states). It provides the mechanisms — state creation, CLOSURE, EXPAND —
// shared by every generation strategy; the strategies themselves are:
//
//   - conventional (PG, section 4): GenerateAll, then use as a Table;
//   - lazy / incremental (IPG, sections 5–6): internal/core drives the
//     same automaton, expanding by need and invalidating on modification.
type Automaton struct {
	g      *grammar.Grammar
	states map[string]*State // canonical kernel key -> state
	start  *State
	nextID int

	// Stats accumulates generator work counters.
	Stats Stats
}

// New builds the first part of the graph of item sets: only the start
// state, with kernel {START ::= • β | START ::= β ∈ Grammar}, of type
// initial (GENERATE-PARSER, section 5.1). No expansion happens here.
func New(g *grammar.Grammar) *Automaton {
	a := &Automaton{
		g:      g,
		states: make(map[string]*State),
	}
	a.start = a.Intern(StartKernel(g))
	a.start.RefCount++ // permanent root reference
	return a
}

// StartKernel computes the start state's kernel for the current rule set
// of g.
func StartKernel(g *grammar.Grammar) Kernel {
	var items []Item
	for _, r := range g.RulesFor(g.Start()) {
		items = append(items, Item{Rule: r, Dot: 0})
	}
	return NewKernel(items)
}

// Grammar returns the automaton's grammar.
func (a *Automaton) Grammar() *grammar.Grammar { return a.g }

// Start returns the start state.
func (a *Automaton) Start() *State { return a.start }

// Len returns the number of states currently in the graph.
func (a *Automaton) Len() int { return len(a.states) }

// States returns all states sorted by ID. The slice is fresh; the states
// are shared.
func (a *Automaton) States() []*State {
	out := make([]*State, 0, len(a.states))
	for _, s := range a.states {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the state with the given kernel, if present.
func (a *Automaton) Lookup(k Kernel) (*State, bool) {
	s, ok := a.states[k.Key()]
	return s, ok
}

// Intern returns the state with kernel k, creating it as an initial state
// if necessary.
func (a *Automaton) Intern(k Kernel) *State {
	key := k.Key()
	if s, ok := a.states[key]; ok {
		return s
	}
	s := &State{ID: a.nextID, Kernel: k, Type: Initial}
	a.nextID++
	a.states[key] = s
	a.Stats.StatesCreated++
	return s
}

// Remove deletes s from the bookkeeping table. Used by the incremental
// generator's garbage collector; the caller is responsible for reference
// counts.
func (a *Automaton) Remove(s *State) {
	key := s.Kernel.Key()
	if a.states[key] == s {
		delete(a.states, key)
		a.Stats.StatesRemoved++
	}
}

// ResetStartKernel recomputes the start state's kernel after a START-rule
// modification (MODIFY's A = START case) and re-keys the bookkeeping
// table. The start state object keeps its identity.
func (a *Automaton) ResetStartKernel() {
	delete(a.states, a.start.Kernel.Key())
	a.start.Kernel = StartKernel(a.g)
	// A distinct state with the new kernel may already exist (e.g. the
	// modification re-added rules of an earlier grammar). The start state
	// wins the key; the other state becomes unreachable garbage.
	a.states[a.start.Kernel.Key()] = a.start
}

// Expand transforms an initial (or dirty) set of items into a complete one
// (EXPAND, section 4): it computes the transitions and reductions fields
// from the closure of the kernel under the current grammar. Newly created
// successor states are returned in deterministic (first-appearance) order.
// Reference counts of all new transition targets are incremented; callers
// re-expanding a dirty state release the old references afterwards
// (RE-EXPAND, section 6.2).
func (a *Automaton) Expand(s *State) []*State {
	cl := Closure(a.g, s.Kernel)
	a.Stats.ClosureItems += len(cl)
	a.Stats.Expansions++

	s.Transitions = make(map[grammar.Symbol]*State)
	s.Reductions = nil
	s.Accept = false

	// Partition the closure by the symbol after the dot, preserving
	// first-appearance order for deterministic state numbering.
	var order []grammar.Symbol
	moved := make(map[grammar.Symbol][]Item)
	for _, it := range cl {
		sym := it.AfterDot()
		if sym == grammar.NoSymbol {
			// Dot at the end: accept for START, reduce otherwise.
			if it.Rule.Lhs == a.g.Start() {
				s.Accept = true
			} else {
				s.Reductions = append(s.Reductions, it.Rule)
			}
			continue
		}
		if _, ok := moved[sym]; !ok {
			order = append(order, sym)
		}
		moved[sym] = append(moved[sym], it.Advance())
	}

	var created []*State
	for _, sym := range order {
		kernel := NewKernel(moved[sym])
		key := kernel.Key()
		succ, existed := a.states[key]
		if !existed {
			succ = a.Intern(kernel)
			created = append(created, succ)
		}
		s.Transitions[sym] = succ
		succ.RefCount++
	}
	s.Type = Complete
	s.Publish()
	return created
}

// GenerateAll is the conventional GENERATE-PARSER of section 4: it expands
// initial sets of items until none remain, building the complete graph up
// front. States are processed in creation order, so numbering is
// deterministic (breadth-first from the start state).
func (a *Automaton) GenerateAll() {
	queue := make([]*State, 0, len(a.states))
	for _, s := range a.States() {
		if s.Type != Complete {
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s.Type == Complete {
			continue
		}
		queue = append(queue, a.Expand(s)...)
	}
}

// ActionsOf deduces the parser actions available in a complete state from
// its transitions and reductions fields (ACTION, section 4): reduces for
// every completely recognized rule, a shift if a transition on sym exists,
// and accept if the special ($ accept) transition exists and sym is $.
func ActionsOf(s *State, sym grammar.Symbol) []Action {
	return AppendActionsOf(make([]Action, 0, len(s.Reductions)+1), s, sym)
}

// AppendActionsOf is ActionsOf into a caller-supplied buffer: the shared
// allocation-free ACTION implementation behind Table.AppendActions.
func AppendActionsOf(dst []Action, s *State, sym grammar.Symbol) []Action {
	if s.Type != Complete {
		panic(fmt.Sprintf("lr: ActionsOf on %s state %d", s.Type, s.ID))
	}
	for _, r := range s.Reductions {
		dst = append(dst, Action{Kind: Reduce, Rule: r})
	}
	if succ, ok := s.Transitions[sym]; ok {
		dst = append(dst, Action{Kind: Shift, State: succ})
	}
	if sym == grammar.EOF && s.Accept {
		dst = append(dst, Action{Kind: Accept})
	}
	return dst
}

// Actions implements Table for the conventional (fully generated)
// automaton. The state must already be complete; use the lazy generator
// in internal/core for by-need expansion.
func (a *Automaton) Actions(s *State, sym grammar.Symbol) []Action {
	return ActionsOf(s, sym)
}

// AppendActions implements Table; see AppendActionsOf.
func (a *Automaton) AppendActions(dst []Action, s *State, sym grammar.Symbol) []Action {
	return AppendActionsOf(dst, s, sym)
}

// Goto implements Table: the successor of s on nonterminal sym after a
// reduction. Appendix A proves GOTO is only called on complete states;
// Goto checks that invariant on every call, so the proof is exercised by
// the entire test suite.
func (a *Automaton) Goto(s *State, sym grammar.Symbol) *State {
	return GotoOf(s, sym)
}

// GotoOf is the shared GOTO implementation; see Automaton.Goto.
func GotoOf(s *State, sym grammar.Symbol) *State {
	if s.Type != Complete {
		panic(fmt.Sprintf("lr: GOTO called on %s state %d (violates Appendix A invariant)", s.Type, s.ID))
	}
	succ, ok := s.Transitions[sym]
	if !ok {
		panic(fmt.Sprintf("lr: GOTO(%d, sym %d) undefined (graph of item sets corrupt)", s.ID, sym))
	}
	return succ
}

// SweepUnreachable removes every state unreachable from the start state
// and recomputes the reference counts of the survivors. Reachability
// follows current transitions of complete states and the history of
// dirty states (which may be re-linked by later re-expansions). This is
// the "conventional mark-and-sweep garbage collector" the paper proposes
// for cyclic garbage, which reference counting admittedly cannot
// reclaim; the incremental table-repair paths also use it to reclaim
// orphan chains after splicing. The removed states are returned (order
// unspecified); the caller owns any synchronization.
func (a *Automaton) SweepUnreachable() []*State {
	reachable := map[*State]bool{a.start: true}
	queue := []*State{a.start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		visit := func(succ *State) {
			if !reachable[succ] {
				reachable[succ] = true
				queue = append(queue, succ)
			}
		}
		for _, succ := range s.Transitions {
			visit(succ)
		}
		for _, succ := range s.OldTransitions {
			visit(succ)
		}
	}

	var removed []*State
	for _, s := range a.states {
		if !reachable[s] {
			removed = append(removed, s)
		}
	}
	for _, s := range removed {
		a.Remove(s)
	}
	// Recompute reference counts of the survivors (this also repairs any
	// drift from cycles the counts could not see).
	for s := range reachable {
		s.RefCount = 0
	}
	a.start.RefCount = 1 // permanent root reference
	for s := range reachable {
		for _, succ := range s.Transitions {
			succ.RefCount++
		}
		for _, succ := range s.OldTransitions {
			succ.RefCount++
		}
	}
	return removed
}

// TypeCounts returns how many states are initial, complete and dirty —
// the lazy-coverage measurement of section 5.2 reads these.
func (a *Automaton) TypeCounts() (initial, complete, dirty int) {
	for _, s := range a.states {
		switch s.Type {
		case Initial:
			initial++
		case Complete:
			complete++
		case Dirty:
			dirty++
		}
	}
	return
}

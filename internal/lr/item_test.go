package lr

import (
	"strings"
	"testing"

	"ipg/internal/fixtures"
	"ipg/internal/grammar"
)

func TestItemBasics(t *testing.T) {
	g := fixtures.Booleans()
	b, _ := g.Symbols().Lookup("B")
	rules := g.RulesFor(b)
	var orRule *grammar.Rule
	for _, r := range rules {
		if r.Len() == 3 {
			or, _ := g.Symbols().Lookup("or")
			if r.Rhs[1] == or {
				orRule = r
			}
		}
	}
	if orRule == nil {
		t.Fatal("or rule not found")
	}

	it := NewItem(orRule, 0)
	if it.AtEnd() {
		t.Error("dot-0 item should not be at end")
	}
	if it.AfterDot() != b {
		t.Errorf("AfterDot = %s, want B", g.Symbols().Name(it.AfterDot()))
	}
	it = it.Advance().Advance().Advance()
	if !it.AtEnd() {
		t.Error("fully advanced item should be at end")
	}
	if it.AfterDot() != grammar.NoSymbol {
		t.Error("AfterDot at end should be NoSymbol")
	}
}

func TestItemAdvancePastEnd(t *testing.T) {
	g := fixtures.Booleans()
	r := g.RulesFor(g.Start())[0]
	it := NewItem(r, r.Len())
	defer func() {
		if recover() == nil {
			t.Error("Advance past end should panic")
		}
	}()
	it.Advance()
}

func TestNewItemRangeCheck(t *testing.T) {
	g := fixtures.Booleans()
	r := g.RulesFor(g.Start())[0]
	defer func() {
		if recover() == nil {
			t.Error("NewItem with out-of-range dot should panic")
		}
	}()
	NewItem(r, r.Len()+1)
}

func TestItemString(t *testing.T) {
	g := fixtures.Booleans()
	b, _ := g.Symbols().Lookup("B")
	var andRule *grammar.Rule
	and, _ := g.Symbols().Lookup("and")
	for _, r := range g.RulesFor(b) {
		if r.Len() == 3 && r.Rhs[1] == and {
			andRule = r
		}
	}
	got := NewItem(andRule, 1).String(g.Symbols())
	if got != "B ::= B . and B" {
		t.Errorf("item renders as %q", got)
	}
	got = NewItem(andRule, 3).String(g.Symbols())
	if got != "B ::= B and B ." {
		t.Errorf("end item renders as %q", got)
	}
}

func TestKernelCanonicalization(t *testing.T) {
	g := fixtures.Booleans()
	b, _ := g.Symbols().Lookup("B")
	rules := g.RulesFor(b)
	i0 := NewItem(rules[0], 0)
	i1 := NewItem(rules[1], 0)

	k1 := NewKernel([]Item{i0, i1})
	k2 := NewKernel([]Item{i1, i0, i0}) // different order, duplicate
	if k1.Key() != k2.Key() {
		t.Errorf("kernels differ: %q vs %q", k1.Key(), k2.Key())
	}
	if len(k2) != 2 {
		t.Errorf("duplicate not removed: %d items", len(k2))
	}
	if !k1.Contains(i0) || !k1.Contains(i1) {
		t.Error("Contains failed for member items")
	}
}

func TestKernelValueIdentityAcrossRuleObjects(t *testing.T) {
	// Two distinct *Rule objects with equal value must produce equal
	// kernels — the incremental generator relies on this when a rule is
	// deleted and later re-added.
	g := fixtures.Booleans()
	b, _ := g.Symbols().Lookup("B")
	tr, _ := g.Symbols().Lookup("true")
	r1 := grammar.NewRule(b, tr)
	r2 := grammar.NewRule(b, tr)
	if r1 == r2 {
		t.Fatal("test needs distinct objects")
	}
	k1 := NewKernel([]Item{NewItem(r1, 1)})
	k2 := NewKernel([]Item{NewItem(r2, 1)})
	if k1.Key() != k2.Key() {
		t.Error("value-equal rules produced different kernel keys")
	}
}

func TestClosureBooleans(t *testing.T) {
	g := fixtures.Booleans()
	cl := Closure(g, StartKernel(g))
	// START ::= .B plus the four B rules.
	if len(cl) != 5 {
		var lines []string
		for _, it := range cl {
			lines = append(lines, it.String(g.Symbols()))
		}
		t.Fatalf("closure has %d items, want 5:\n%s", len(cl), strings.Join(lines, "\n"))
	}
	// Kernel item first.
	if cl[0].Rule.Lhs != g.Start() {
		t.Error("closure should preserve kernel-first order")
	}
}

func TestClosureTerminalAfterDot(t *testing.T) {
	g := grammar.MustParse(`
START ::= "x" A
A ::= "a"
`)
	cl := Closure(g, StartKernel(g))
	if len(cl) != 1 {
		t.Fatalf("dot before terminal must not close: %d items", len(cl))
	}
}

func TestClosureChained(t *testing.T) {
	g := grammar.MustParse(`
START ::= A
A ::= B
B ::= C
C ::= "c"
`)
	cl := Closure(g, StartKernel(g))
	if len(cl) != 4 {
		t.Fatalf("transitive closure has %d items, want 4", len(cl))
	}
}

func TestClosureLeftRecursive(t *testing.T) {
	g := grammar.MustParse(`
START ::= E
E ::= E "+" "x" | "x"
`)
	cl := Closure(g, StartKernel(g))
	// START::=.E, E::=.E+x, E::=.x — recursion must terminate.
	if len(cl) != 3 {
		t.Fatalf("closure has %d items, want 3", len(cl))
	}
}

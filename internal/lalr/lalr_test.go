package lalr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipg/internal/fixtures"
	"ipg/internal/glr"
	"ipg/internal/grammar"
	"ipg/internal/lr"
)

// The classic LALR(1)-but-not-SLR(1) grammar (dragon book example 4.48):
// S ::= L = R | R ; L ::= * R | id ; R ::= L.
const lalrNotSLR = `
START ::= S
S ::= L "=" R
S ::= R
L ::= "*" R
L ::= "id"
R ::= L
`

func TestLALRGrammarNoConflicts(t *testing.T) {
	tbl := Generate(grammar.MustParse(lalrNotSLR))
	if n := len(tbl.Conflicts()); n != 0 {
		t.Fatalf("LALR(1) grammar reports %d conflicts:\n%s", n, tbl.String())
	}
}

func TestLALRParsesDeterministically(t *testing.T) {
	g := grammar.MustParse(lalrNotSLR)
	tbl := Generate(g)
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"id", true},
		{"id = id", true},
		{"* id = * * id", true},
		{"id =", false},
		{"= id", false},
		{"id id", false},
	} {
		res, err := glr.Parse(tbl, fixtures.Tokens(g, tc.input), &glr.Options{Engine: glr.Deterministic})
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if res.Accepted != tc.want {
			t.Errorf("parse(%q) = %v, want %v", tc.input, res.Accepted, tc.want)
		}
	}
}

func TestAmbiguousGrammarHasConflicts(t *testing.T) {
	tbl := Generate(fixtures.Booleans())
	if len(tbl.Conflicts()) == 0 {
		t.Fatal("ambiguous booleans grammar should have LALR conflicts")
	}
	for _, c := range tbl.Conflicts() {
		if c.Kind != "shift/reduce" {
			t.Errorf("booleans conflicts should be shift/reduce, got %s", c.Kind)
		}
	}
}

func TestLALRResolvesLR0Conflicts(t *testing.T) {
	// An LALR(1) (even SLR(1)) grammar that is not LR(0): the classic
	// expression grammar. LR(0) tables make the parallel parser split;
	// LALR lookaheads keep it deterministic.
	src := `
START ::= E
E ::= E "+" T
E ::= T
T ::= T "*" F
T ::= F
F ::= "x"
F ::= "(" E ")"
`
	g := grammar.MustParse(src)
	tbl := Generate(g)
	if n := len(tbl.Conflicts()); n != 0 {
		t.Fatalf("expression grammar reports %d conflicts:\n%s", n, tbl.String())
	}
	res, err := glr.Parse(tbl, fixtures.Tokens(g, "x + x * ( x + x )"),
		&glr.Options{Engine: glr.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Error("expression should be accepted")
	}

	// The same grammar drives LR(0)+parallel parsing with splits.
	lr0 := lr.New(grammar.MustParse(src))
	lr0.GenerateAll()
	_, err = glr.Parse(lr0, fixtures.Tokens(g, "x + x"), &glr.Options{Engine: glr.Deterministic})
	if err == nil {
		t.Log("note: LR(0) table happened to be deterministic on this path")
	}
}

func TestEpsilonReduceLookaheads(t *testing.T) {
	// Epsilon reductions never appear in kernels; their lookaheads come
	// from the LR(1) closure pass.
	g := grammar.MustParse(`
START ::= A "b"
A ::= "a" | ε
`)
	tbl := Generate(g)
	if n := len(tbl.Conflicts()); n != 0 {
		t.Fatalf("grammar reports %d conflicts:\n%s", n, tbl.String())
	}
	for _, tc := range []struct {
		input string
		want  bool
	}{
		{"a b", true},
		{"b", true},
		{"a", false},
	} {
		res, err := glr.Parse(tbl, fixtures.Tokens(g, tc.input), &glr.Options{Engine: glr.Deterministic})
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if res.Accepted != tc.want {
			t.Errorf("parse(%q) = %v, want %v", tc.input, res.Accepted, tc.want)
		}
	}
}

func TestLookaheadsDiagnostic(t *testing.T) {
	g := grammar.MustParse(lalrNotSLR)
	tbl := Generate(g)
	// Find a state reducing R ::= L and check $ and = are distinguished
	// (the SLR failure mode is reducing R ::= L on '=').
	var found bool
	for _, s := range tbl.Automaton().States() {
		for _, r := range s.Reductions {
			if r.String(g.Symbols()) == "R ::= L" {
				found = true
				las := tbl.Lookaheads(s, r)
				if len(las) == 0 {
					t.Errorf("state %d: empty lookahead for R ::= L", s.ID)
				}
			}
		}
	}
	if !found {
		t.Fatal("no state reduces R ::= L")
	}
}

// Property: on random grammars, LALR-filtered parallel parsing accepts
// exactly what LR(0) parallel parsing accepts (lookaheads prune parsers,
// never change the language).
func TestLALRLanguagePreservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grammar.Random(grammar.RandConfig{Nonterminals: 3, Terminals: 3, Rules: 6}, rng)
		lalrTbl := Generate(g)
		lr0 := lr.New(g)
		lr0.GenerateAll()
		for i := 0; i < 8; i++ {
			var input []grammar.Symbol
			if sent, ok := g.RandomSentence(rng, 7); ok && rng.Intn(2) == 0 {
				input = sent
			} else {
				terms := g.Symbols().Terminals()
				for j := 0; j < rng.Intn(5); j++ {
					s := terms[rng.Intn(len(terms))]
					if s != grammar.EOF {
						input = append(input, s)
					}
				}
			}
			a, err := glr.Recognize(lalrTbl, input, glr.GSS)
			if err != nil {
				t.Fatalf("seed %d lalr: %v", seed, err)
			}
			b, err := glr.Recognize(lr0, input, glr.GSS)
			if err != nil {
				t.Fatalf("seed %d lr0: %v", seed, err)
			}
			if a != b {
				t.Fatalf("seed %d: LALR accepts=%v, LR(0) accepts=%v on %s",
					seed, a, b, g.Symbols().NamesOf(input))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestActionsOnInitialPanics(t *testing.T) {
	g := grammar.MustParse(lalrNotSLR)
	tbl := Generate(g)
	s := &lr.State{Type: lr.Initial}
	defer func() {
		if recover() == nil {
			t.Error("Actions on initial state should panic")
		}
	}()
	tbl.Actions(s, grammar.EOF)
}
